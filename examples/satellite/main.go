// Satellite link (the paper's Fig. 11(a) scenario): 42 Mbit/s, 800 ms RTT,
// 0.74% random loss — the conditions that break loss-based control (CUBIC
// misreads random loss as congestion) and delay-sensitive online learners
// (Vivace's control frequency is RTT-bound). Jury's normalized signals are
// insensitive to both, so it keeps high utilization with low inflation.
package main

import (
	"fmt"
	"sort"

	"repro/internal/exp"
)

func main() {
	rows, err := exp.Fig11Satellite(exp.Fig11Options{
		Schemes: []string{"jury", "cubic", "bbr", "vivace", "vegas", "aurora"},
		Seed:    11,
	})
	if err != nil {
		panic(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ThroughputBps > rows[j].ThroughputBps })

	fmt.Println("satellite link: 42 Mbps, 800 ms RTT, 0.74% random loss")
	fmt.Println()
	fmt.Println("scheme    thr(Mbps)  utilization  delay inflation")
	for _, r := range rows {
		fmt.Printf("%-8s  %9.1f  %11.2f  %14.3fx\n",
			r.Scheme, r.ThroughputBps/1e6, r.ThroughputBps/42e6, r.NormalizedDelay)
	}
	fmt.Println("\n(the paper reports Jury above 75% utilization with <5% latency")
	fmt.Println(" inflation, while CUBIC/Vegas collapse on the random loss)")
}
