package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// State is the live surface of the observatory: a bounded ring of the most
// recent fairness snapshots plus a fan-out to SSE subscribers. One State
// outlives many runs (it belongs to the Runtime, not the Observer), so a
// sweep's debug endpoint shows a continuous feed across scenarios.
//
// Publishing is cheap and never blocks the simulation: the ring write is a
// short mutex hold and subscriber sends are non-blocking (a slow consumer
// drops snapshots rather than stalling shard 0's worker).
type State struct {
	mu   sync.Mutex
	ring [stateRingSize]FairnessSnapshot
	n    uint64
	subs map[chan FairnessSnapshot]struct{}
}

const stateRingSize = 512

// NewState returns an empty live surface.
func NewState() *State {
	return &State{subs: make(map[chan FairnessSnapshot]struct{})}
}

func (s *State) publish(snap FairnessSnapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ring[s.n%stateRingSize] = snap
	s.n++
	for ch := range s.subs {
		select {
		case ch <- snap:
		default: // slow subscriber: drop, never stall the simulation
		}
	}
	s.mu.Unlock()
}

// Latest returns the most recent snapshot (ok=false before the first one).
func (s *State) Latest() (FairnessSnapshot, bool) {
	if s == nil {
		return FairnessSnapshot{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return FairnessSnapshot{}, false
	}
	return s.ring[(s.n-1)%stateRingSize], true
}

// Recent returns up to the stateRingSize most recent snapshots, oldest
// first.
func (s *State) Recent() []FairnessSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := uint64(0)
	if s.n > stateRingSize {
		start = s.n - stateRingSize
	}
	out := make([]FairnessSnapshot, 0, s.n-start)
	for i := start; i < s.n; i++ {
		out = append(out, s.ring[i%stateRingSize])
	}
	return out
}

// subscribe registers a snapshot channel; the returned func unsubscribes.
func (s *State) subscribe() (chan FairnessSnapshot, func()) {
	ch := make(chan FairnessSnapshot, 64)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}
}

// fairnessPage is the /fairness JSON shape.
type fairnessPage struct {
	Live   bool               `json:"live"`
	Latest *FairnessSnapshot  `json:"latest,omitempty"`
	Recent []FairnessSnapshot `json:"recent"`
}

// ServeHTTP answers /fairness with the latest snapshot plus the recent ring
// as JSON. Mount it and StreamHandler on the telemetry debug server via
// DebugServer.Handle.
func (s *State) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	page := fairnessPage{Recent: s.Recent()}
	if latest, ok := s.Latest(); ok {
		page.Live = true
		page.Latest = &latest
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(page)
}

// StreamHandler serves the snapshot feed as server-sent events: one
// `data: <snapshot JSON>` frame per FairnessSnapshot, starting with the most
// recent one so a new subscriber renders immediately. The stream ends when
// the client disconnects.
func (s *State) StreamHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		ch, cancel := s.subscribe()
		defer cancel()
		write := func(snap FairnessSnapshot) bool {
			b, err := json.Marshal(snap)
			if err != nil {
				return false
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return false
			}
			w.Write(b)
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return false
			}
			fl.Flush()
			return true
		}
		if latest, ok := s.Latest(); ok && !write(latest) {
			return
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case snap := <-ch:
				if !write(snap) {
					return
				}
			}
		}
	})
}
