package telemetry

import (
	"fmt"
	"time"
)

// RPCServerStats is the structural slice of agentrpc.Server the hub
// exports (Decisions and Panics are mutex-guarded, safe to call from the
// debug HTTP goroutine).
type RPCServerStats interface {
	Decisions() int64
	Panics() int64
}

// ExportRPCServer registers callback gauges mirroring the inference
// server's served-request and policy-panic counters.
func (h *Hub) ExportRPCServer(s RPCServerStats) {
	if h == nil || s == nil {
		return
	}
	h.Registry.GaugeFunc("rpc_server_decisions", "requests served by the local inference server",
		func() float64 { return float64(s.Decisions()) })
	h.Registry.GaugeFunc("rpc_server_panics", "connections dropped by a panicking policy",
		func() float64 { return float64(s.Panics()) })
}

// RPCDaemonStats is the structural slice of the hardened inference daemon
// (agentrpc.Server) the hub exports: batching efficiency, admission-control
// shedding, hot-swap/rollback history, deadline enforcement, and per-tenant
// decision accounting. All methods are atomic- or mutex-backed, safe to call
// from the debug HTTP goroutine.
type RPCDaemonStats interface {
	RPCServerStats
	Batches() int64
	BatchedRequests() int64
	Shed() int64
	NonFinite() int64
	Swaps() int64
	Rollbacks() int64
	Timeouts() int64
	WriteDrops() int64
	QueueDepth() int
	ActiveConns() int
	PolicyVersion() int64
	TenantDecisions(name string) int64
	OnTenant(fn func(name string))
}

// ExportRPCDaemon registers callback gauges mirroring the full serving
// surface of the inference daemon, including one decisions gauge per tenant
// label (registered lazily as tenants announce themselves).
func (h *Hub) ExportRPCDaemon(s RPCDaemonStats) {
	if h == nil || s == nil {
		return
	}
	h.ExportRPCServer(s)
	r := h.Registry
	r.GaugeFunc("rpc_server_batches", "policy executions (batched or single) run by the daemon",
		func() float64 { return float64(s.Batches()) })
	r.GaugeFunc("rpc_server_batched_requests", "requests that entered batch execution",
		func() float64 { return float64(s.BatchedRequests()) })
	r.GaugeFunc("rpc_server_shed", "requests shed with BUSY by admission control",
		func() float64 { return float64(s.Shed()) })
	r.GaugeFunc("rpc_server_nonfinite", "decisions suppressed by the non-finite output guard",
		func() float64 { return float64(s.NonFinite()) })
	r.GaugeFunc("rpc_server_swaps", "successful policy hot-swaps",
		func() float64 { return float64(s.Swaps()) })
	r.GaugeFunc("rpc_server_rollbacks", "automatic policy-version rollbacks",
		func() float64 { return float64(s.Rollbacks()) })
	r.GaugeFunc("rpc_server_timeouts", "requests that outlived the serving deadline",
		func() float64 { return float64(s.Timeouts()) })
	r.GaugeFunc("rpc_server_write_drops", "connections dropped by the response write deadline",
		func() float64 { return float64(s.WriteDrops()) })
	r.GaugeFunc("rpc_server_queue_depth", "admitted requests awaiting batch execution",
		func() float64 { return float64(s.QueueDepth()) })
	r.GaugeFunc("rpc_server_active_conns", "currently served connections",
		func() float64 { return float64(s.ActiveConns()) })
	r.GaugeFunc("rpc_server_policy_version", "id of the serving policy version",
		func() float64 { return float64(s.PolicyVersion()) })
	s.OnTenant(func(name string) {
		tenant := name
		r.GaugeFunc("rpc_tenant_decisions_"+tenantMetricName(tenant),
			"decisions served for tenant "+tenant,
			func() float64 { return float64(s.TenantDecisions(tenant)) })
	})
}

// tenantMetricName maps a tenant label onto the metric-name alphabet.
// Sanitization is lossy ("team-a" and "team.a" both become "team_a"), and a
// collision would silently fold two tenants' gauges into one — the later
// registration re-points the GaugeFunc. Any label that sanitization altered
// therefore carries a short FNV-1a hash of the *original* label, which keeps
// distinct tenants distinct while leaving already-clean names untouched.
func tenantMetricName(tenant string) string {
	clean := sanitizeMetricName(tenant)
	if clean == tenant {
		return clean
	}
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint64(tenant[i])) * prime
	}
	return fmt.Sprintf("%s_%06x", clean, h&0xffffff)
}

// sanitizeMetricName maps an arbitrary tenant label onto the Prometheus
// metric-name alphabet ([a-zA-Z0-9_]); everything else becomes '_'.
func sanitizeMetricName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// RPCClientHook returns a latency hook for agentrpc.Client.SetLatencyHook:
// it feeds the round-trip histogram and the remote/fallback decision
// counters. Returns nil when the hub is disabled, so the client keeps its
// zero-cost nil-hook fast path.
func (h *Hub) RPCClientHook() func(d time.Duration, remote bool) {
	if h == nil {
		return nil
	}
	lat := h.Registry.Histogram("rpc_decide_seconds", "client-observed decision round-trip latency", ExpBuckets(1e-5, 2, 16))
	remoteC := h.Registry.Counter("rpc_remote_decisions_total", "policy decisions answered by the inference service")
	fallbackC := h.Registry.Counter("rpc_fallback_decisions_total", "policy decisions served by the local fallback")
	return func(d time.Duration, remote bool) {
		lat.Observe(d.Seconds())
		if remote {
			remoteC.Inc()
		} else {
			fallbackC.Inc()
		}
	}
}
