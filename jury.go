// Package jury is the public API of this repository: a from-scratch Go
// implementation of "Achieving Fairness Generalizability for Learning-based
// Congestion Control with Jury" (Tian et al., EuroSys '25), together with
// the substrates it needs — a deterministic packet-level network emulator,
// a TD3/DDPG training stack, and every baseline congestion-control scheme
// from the paper's evaluation.
//
// Quick start — run one Jury flow over an emulated bottleneck:
//
//	net := jury.NewNetwork(jury.NetworkConfig{Seed: 1})
//	link := net.AddLink(jury.LinkConfig{Rate: 100e6, Delay: 15 * time.Millisecond, BufferBytes: 750_000})
//	flow := net.AddFlow(jury.FlowConfig{
//		Name: "demo",
//		Path: []*jury.Link{link},
//		CC:   func() jury.CC { return jury.NewController(1) },
//	})
//	net.Run(60 * time.Second)
//	fmt.Println(flow.Stats())
//
// The three design elements of the paper live in internal/core and surface
// here: the bandwidth-agnostic signal transformation (Signals,
// Transformer), the decision-range policy abstraction (Policy,
// ReferencePolicy, NNPolicy), and the occupancy-driven post-processing
// (EstimateOccupancy, PostProcess). Training runs through TrainPolicy,
// and every table/figure of the paper is reproduced by the benchmarks in
// bench_test.go (see DESIGN.md and EXPERIMENTS.md).
package jury

import (
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rl"
)

// Core controller types (the paper's contribution).
type (
	// Config holds Jury's hyperparameters (Table 2 defaults).
	Config = core.Config
	// Controller is the Jury congestion controller (Fig. 2 pipeline).
	Controller = core.Jury
	// Policy maps the stacked bandwidth-agnostic state to a decision range.
	Policy = core.Policy
	// ReferencePolicy is the deterministic converged-policy stand-in.
	ReferencePolicy = core.ReferencePolicy
	// NNPolicy wraps a trained actor network.
	NNPolicy = core.NNPolicy
	// Signals is the output of the §3.1 signal transformation.
	Signals = core.Signals
	// Transformer implements the signal transformation block.
	Transformer = core.Transformer
	// OccupancyEstimator implements the filtered Eq. 5 estimator.
	OccupancyEstimator = core.OccupancyEstimator
	// TrainingDomain is the Table 1 environment distribution.
	TrainingDomain = core.TrainingDomain
	// TrainOptions configures TD3 training.
	TrainOptions = core.TrainOptions
)

// Emulator types (the Mahimahi/Pantheon substitute).
type (
	// Network is a deterministic packet-level emulation.
	Network = netsim.Network
	// NetworkConfig seeds and configures a Network.
	NetworkConfig = netsim.Config
	// Link is a bottleneck with a DropTail byte queue.
	Link = netsim.Link
	// LinkConfig describes a link (rate or trace, delay, buffer, loss).
	LinkConfig = netsim.LinkConfig
	// Flow is a bulk sender driving one congestion controller.
	Flow = netsim.Flow
	// FlowConfig describes a flow (path, scheme, start, duration, RTT).
	FlowConfig = netsim.FlowConfig
	// FlowStats summarizes a flow's lifetime.
	FlowStats = netsim.FlowStats
	// SeriesPoint is one recorded sample of a flow time series.
	SeriesPoint = netsim.SeriesPoint
	// CC is the congestion-control algorithm interface all schemes satisfy.
	CC = cc.Algorithm
	// IntervalStats is the per-control-interval feedback aggregate.
	IntervalStats = cc.IntervalStats
)

// DefaultConfig returns the paper's Table 2 hyperparameters.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultTrainingDomain returns the paper's Table 1 environment ranges.
func DefaultTrainingDomain() TrainingDomain { return core.DefaultTrainingDomain() }

// NewController returns a Jury controller with default configuration and
// the reference policy, seeded for one flow.
func NewController(seed uint64) *Controller { return core.NewDefault(seed) }

// NewControllerWithPolicy returns a Jury controller driving a custom policy
// (e.g. an NNPolicy loaded from trained weights).
func NewControllerWithPolicy(cfg Config, p Policy) *Controller { return core.New(cfg, p) }

// NewReferencePolicy returns the tuned deterministic reference policy.
func NewReferencePolicy() *ReferencePolicy { return core.NewReferencePolicy() }

// NewNetwork returns an empty emulated network.
func NewNetwork(cfg NetworkConfig) *Network { return netsim.New(cfg) }

// EstimateOccupancy inverts Eq. 4 to recover a flow's bottleneck share from
// one (rate change, throughput change) pair (Eq. 5).
func EstimateOccupancy(rateChange, thrRatio float64) (float64, bool) {
	return core.EstimateOccupancy(rateChange, thrRatio)
}

// PostProcess implements Eq. 6: the action chosen inside the decision range
// (mu, delta) for a flow with the given bandwidth-occupancy estimate.
func PostProcess(mu, delta, ratioBW float64) float64 {
	return core.PostProcess(mu, delta, ratioBW)
}

// Reward computes the Eq. 9 training reward.
func Reward(cfg Config, ratioBW float64, rtt, rttMin time.Duration, loss, lossMin float64) float64 {
	return core.Reward(cfg, ratioBW, rtt, rttMin, loss, lossMin)
}

// TrainPolicy trains a Jury actor with TD3 over emulated Table 1
// environments and returns the agent plus per-epoch statistics. Wrap the
// returned agent's Actor in an NNPolicy to deploy it.
func TrainPolicy(opts TrainOptions) (*rl.TD3, *rl.TrainResult, error) {
	return core.TrainPolicy(opts)
}

// DefaultTrainOptions returns a laptop-scale training budget.
func DefaultTrainOptions(seed uint64) TrainOptions { return core.DefaultTrainOptions(seed) }

// Multi-objective extension (§3.3 via MOCC; see internal/core).

// Preference weights the throughput/delay/loss objectives.
type Preference = core.Preference

// DefaultPreference is the uniform preference (MOReward == Reward).
func DefaultPreference() Preference { return core.DefaultPreference() }

// MOReward is the preference-weighted generalization of Eq. 9.
func MOReward(cfg Config, pref Preference, ratioBW float64, rtt, rttMin time.Duration, loss, lossMin float64) float64 {
	return core.MOReward(cfg, pref, ratioBW, rtt, rttMin, loss, lossMin)
}

// NewControllerWithPreference builds a Jury controller realizing the given
// objective preference; fairness is preference-independent.
func NewControllerWithPreference(cfg Config, pref Preference) *Controller {
	return core.NewWithPreference(cfg, pref)
}
