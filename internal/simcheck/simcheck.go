// Package simcheck is the simulation correctness harness: runtime invariant
// checking, event-stream digests, and the metamorphic/differential test
// layer for the emulator stack (simcore, netsim, core).
//
// The north-star system runs millions of scenarios whose figures are only as
// trustworthy as the emulator underneath; after the hot paths were rebuilt
// around pooled events, packet free-lists, and ring-buffered interval
// statistics, the dominant risk is *silent* corruption that still produces
// plausible curves. A Checker attaches to a netsim.Network as a Tap plus a
// simcore event hook and continuously verifies:
//
//   - packet conservation per flow: sent = acked + lost + in-flight, with
//     in-flight never negative (catches free-list double-release/reuse);
//   - DropTail queue accounting per link: the checker's independently
//     maintained byte count matches Link.QueueBytes() and never exceeds the
//     configured capacity;
//   - RTT floor: every ACK's RTT is at least the flow's propagation-only
//     base RTT (queueing and jitter only ever add delay);
//   - virtual-clock monotonicity across the whole event stream;
//   - controller sanity: cwnd and pacing rate are finite and non-negative
//     whenever the flow transmits;
//   - interval-statistics closure: every delivered cc.IntervalStats has
//     non-negative fields and acked+lost ≤ sent (catches the send-interval
//     ring misattributing stale feedback after a wrap);
//   - link throughput ≤ capacity over the run (fixed-rate links).
//
// Tests attach it via Attach; production experiment runs enable it with
// exp.Scenario.Check or the JURY_SIMCHECK environment variable (see
// internal/exp). The checker also folds every executed event into an FNV-1a
// stream digest, which the golden determinism tests compare across runs and
// across PRs.
package simcheck

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

// maxRecorded bounds how many violations are kept with full detail; a
// systematically broken simulation would otherwise accumulate one violation
// per packet. The total count is always exact.
const maxRecorded = 64

// Violation describes one invariant breach.
type Violation struct {
	Time   time.Duration // virtual time of the breach
	Rule   string        // "conservation", "queue", "rtt-floor", "clock", "control", "interval", "capacity", "faults"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v %s: %s", v.Time, v.Rule, v.Detail)
}

// flowAcct is the checker's independent per-flow ledger.
type flowAcct struct {
	sent      int64
	acked     int64
	lost      int64
	intervals int64
}

// linkAcct is the checker's independent per-link ledger.
type linkAcct struct {
	qBytes    int64
	enqueued  int64
	departed  int64
	dropped   int64
	enqBytes  int64
	depBytes  int64
	dropBytes int64
	maxPkt    int64 // largest packet seen (capacity-check slack)

	// Independent fault-injection counts, cross-checked against
	// Link.FaultStats at Finish.
	burstDrops    int64
	blackoutDrops int64
	reordered     int64
	duplicated    int64
	jitterSpikes  int64
}

func (a *linkAcct) hasFaults() bool {
	return a.burstDrops != 0 || a.blackoutDrops != 0 || a.reordered != 0 ||
		a.duplicated != 0 || a.jitterSpikes != 0
}

// Checker verifies runtime invariants of one Network. Attach it before Run;
// call Finish after the run for end-of-run checks and the final verdict.
//
// The checker is safe under sharded execution (netsim.Network.RunSharded):
// the per-flow and per-link ledgers are created up front at Attach and each
// is only ever written by the shard owning its object, the event-stream
// fold runs on the coordinator's single merge goroutine, and the shared
// violation record is the one mutex-guarded path (cold — it only runs when
// an invariant actually breaks).
type Checker struct {
	net   *netsim.Network
	flows map[*netsim.Flow]*flowAcct
	links map[*netsim.Link]*linkAcct

	mu         sync.Mutex // guards violations + nViolation + onViolation
	violations []Violation
	nViolation int64

	// onViolation, if set, is invoked (under mu) for every recorded breach.
	// The observability layer uses it to trigger flight-recorder dumps.
	onViolation func(Violation)

	lastEventAt time.Duration
	events      uint64
	stream      uint64 // FNV-1a fold of the executed event stream
}

// Attach installs a Checker on the network as its Tap and engine event hook,
// replacing any previous ones. Flows and links added after Attach are picked
// up lazily, which is only safe for sequential runs; sharded runs need the
// full topology in place first (netsim builds networks fully before running,
// so this is the natural order anyway).
func Attach(n *netsim.Network) *Checker {
	c := &Checker{
		net:    n,
		flows:  make(map[*netsim.Flow]*flowAcct, len(n.Flows())),
		links:  make(map[*netsim.Link]*linkAcct, len(n.Links())),
		stream: fnvOffset,
	}
	for _, f := range n.Flows() {
		c.flows[f] = &flowAcct{}
	}
	for _, l := range n.Links() {
		c.links[l] = &linkAcct{}
	}
	n.SetTap(c)
	n.Engine().SetEventHook(c.onEvent)
	return c
}

// violate records a breach at virtual time at (detail formatting is skipped
// once the record cap is reached, keeping broken runs cheap). The time comes
// from the caller because under sharded execution only the clock of the
// shard that observed the breach may be read.
func (c *Checker) violate(at time.Duration, rule, format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nViolation++
	if len(c.violations) >= maxRecorded {
		return
	}
	v := Violation{
		Time:   at,
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	}
	c.violations = append(c.violations, v)
	if c.onViolation != nil {
		c.onViolation(v)
	}
}

// SetViolationHook installs a callback invoked for each recorded violation
// (at most maxRecorded times per run). The callback runs under the checker's
// violation mutex and may fire from any shard's goroutine; it must not call
// back into the checker.
func (c *Checker) SetViolationHook(fn func(Violation)) {
	c.mu.Lock()
	c.onViolation = fn
	c.mu.Unlock()
}

func (c *Checker) flow(f *netsim.Flow) *flowAcct {
	a := c.flows[f]
	if a == nil {
		a = &flowAcct{}
		c.flows[f] = a
	}
	return a
}

func (c *Checker) link(l *netsim.Link) *linkAcct {
	a := c.links[l]
	if a == nil {
		a = &linkAcct{}
		c.links[l] = a
	}
	return a
}

// onEvent is the simcore hook: clock monotonicity plus the stream digest.
func (c *Checker) onEvent(at time.Duration, seq uint64) {
	if at < c.lastEventAt {
		c.violate(at, "clock", "event at %v after clock reached %v", at, c.lastEventAt)
	}
	c.lastEventAt = at
	c.events++
	c.stream = fnvFold(c.stream, uint64(at))
}

// checkControl verifies the controller's externally visible state.
func (c *Checker) checkControl(f *netsim.Flow) {
	cwnd := f.CC().CWND()
	if math.IsNaN(cwnd) || math.IsInf(cwnd, 0) || cwnd < 0 {
		c.violate(f.Now(), "control", "flow %s cwnd %v", f.Name(), cwnd)
	}
	rate := f.CC().PacingRate()
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
		c.violate(f.Now(), "control", "flow %s pacing rate %v", f.Name(), rate)
	}
}

// PacketSent implements netsim.Tap.
func (c *Checker) PacketSent(f *netsim.Flow, bytes int) {
	a := c.flow(f)
	a.sent++
	if bytes <= 0 {
		c.violate(f.Now(), "conservation", "flow %s sent packet of %d bytes", f.Name(), bytes)
	}
	c.checkControl(f)
}

// PacketAcked implements netsim.Tap.
func (c *Checker) PacketAcked(f *netsim.Flow, bytes int, rtt time.Duration) {
	a := c.flow(f)
	a.acked++
	if inflight := a.sent - a.acked - a.lost; inflight < 0 {
		c.violate(f.Now(), "conservation", "flow %s in-flight %d after ack (sent %d acked %d lost %d)",
			f.Name(), inflight, a.sent, a.acked, a.lost)
	}
	if base := f.BaseRTT(); rtt < base {
		c.violate(f.Now(), "rtt-floor", "flow %s RTT %v below propagation floor %v", f.Name(), rtt, base)
	}
}

// PacketLost implements netsim.Tap.
func (c *Checker) PacketLost(f *netsim.Flow, bytes int) {
	a := c.flow(f)
	a.lost++
	if inflight := a.sent - a.acked - a.lost; inflight < 0 {
		c.violate(f.Now(), "conservation", "flow %s in-flight %d after loss (sent %d acked %d lost %d)",
			f.Name(), inflight, a.sent, a.acked, a.lost)
	}
}

// checkQueue cross-validates the link's queue byte count against the
// checker's own ledger and the configured capacity.
func (c *Checker) checkQueue(l *netsim.Link, a *linkAcct) {
	q := l.QueueBytes()
	if q != a.qBytes {
		c.violate(l.Now(), "queue", "link queue %d B but ledger says %d B", q, a.qBytes)
	}
	if q < 0 {
		c.violate(l.Now(), "queue", "link queue %d B negative", q)
	}
	if capBytes := int64(l.Config().BufferBytes); q > capBytes {
		c.violate(l.Now(), "queue", "link queue %d B exceeds capacity %d B", q, capBytes)
	}
}

// QueueEnqueued implements netsim.Tap.
func (c *Checker) QueueEnqueued(l *netsim.Link, bytes int) {
	a := c.link(l)
	a.enqueued++
	a.enqBytes += int64(bytes)
	a.qBytes += int64(bytes)
	if int64(bytes) > a.maxPkt {
		a.maxPkt = int64(bytes)
	}
	c.checkQueue(l, a)
}

// QueueDeparted implements netsim.Tap.
func (c *Checker) QueueDeparted(l *netsim.Link, bytes int) {
	a := c.link(l)
	a.departed++
	a.depBytes += int64(bytes)
	a.qBytes -= int64(bytes)
	c.checkQueue(l, a)
}

// QueueDropped implements netsim.Tap.
func (c *Checker) QueueDropped(l *netsim.Link, bytes int, random bool) {
	a := c.link(l)
	a.dropped++
	a.dropBytes += int64(bytes)
}

// FaultInjected implements netsim.Tap: an independent count per fault kind,
// cross-checked against the link's own FaultStats at Finish. Fault drops
// engage the sender's normal loss detection, so the per-flow conservation
// ledger needs no special case; duplicates never appear in flow accounting
// at all (only in the link's queue ledger, which sees their enqueue and
// departure like any other packet).
func (c *Checker) FaultInjected(l *netsim.Link, f *netsim.Flow, kind netsim.FaultKind, bytes int) {
	a := c.link(l)
	switch kind {
	case netsim.FaultBurstLoss:
		a.burstDrops++
	case netsim.FaultBlackout:
		a.blackoutDrops++
	case netsim.FaultReorder:
		a.reordered++
	case netsim.FaultDuplicate:
		a.duplicated++
	case netsim.FaultJitter:
		a.jitterSpikes++
	default:
		c.violate(l.Now(), "faults", "unknown fault kind %d on flow %s", kind, f.Name())
	}
	if bytes <= 0 {
		c.violate(l.Now(), "faults", "%v fault on flow %s with %d bytes", kind, f.Name(), bytes)
	}
	if l.Config().Faults == nil {
		c.violate(l.Now(), "faults", "%v fault on a link with no fault config", kind)
	}
}

// IntervalDelivered implements netsim.Tap: every delivered interval must
// close its own books.
func (c *Checker) IntervalDelivered(f *netsim.Flow, s cc.IntervalStats) {
	a := c.flow(f)
	a.intervals++
	if s.AckedPackets < 0 || s.LostPackets < 0 || s.SentPackets < 0 ||
		s.AckedBytes < 0 || s.SentBytes < 0 {
		c.violate(f.Now(), "interval", "flow %s negative interval counters %+v", f.Name(), s)
	}
	if s.AckedPackets+s.LostPackets > s.SentPackets {
		c.violate(f.Now(), "interval", "flow %s interval acked %d + lost %d > sent %d (stale feedback misattributed)",
			f.Name(), s.AckedPackets, s.LostPackets, s.SentPackets)
	}
	if s.AvgRTT < 0 || s.MinRTT < 0 {
		c.violate(f.Now(), "interval", "flow %s negative interval RTT (avg %v min %v)", f.Name(), s.AvgRTT, s.MinRTT)
	}
	if s.AckedPackets > 0 && s.AvgRTT < s.MinRTT {
		c.violate(f.Now(), "interval", "flow %s interval avg RTT %v below min %v", f.Name(), s.AvgRTT, s.MinRTT)
	}
}

// SampleRecorded implements netsim.Tap: recorded samples are derived from
// counters the other callbacks already cross-check, so only basic sanity is
// verified here (the point must not travel backwards in time or report a
// negative rate).
func (c *Checker) SampleRecorded(f *netsim.Flow, p netsim.SeriesPoint) {
	if p.ThroughputBps < 0 {
		c.violate(p.T, "interval", "flow %s recorded negative throughput %v", f.Name(), p.ThroughputBps)
	}
	if p.T < 0 {
		c.violate(p.T, "clock", "flow %s recorded sample at negative time %v", f.Name(), p.T)
	}
}

// Finish runs the end-of-run checks and returns every violation found.
//
//   - per-flow conservation against the flow's own lifetime statistics
//     (sent must match exactly; acked/lost are cross-checked only for flows
//     that never stop early, since a stopped flow's stats intentionally
//     exclude post-stop feedback);
//   - per-link byte conservation: enqueued = departed + still queued;
//   - fixed-rate links cannot have delivered more than capacity × elapsed.
func (c *Checker) Finish() []Violation {
	now := c.net.Now()
	for _, f := range c.net.Flows() {
		a := c.flows[f]
		if a == nil {
			continue // never sent
		}
		st := f.Stats()
		if a.sent != st.SentPackets {
			c.violate(f.Now(), "conservation", "flow %s checker sent %d != stats sent %d", f.Name(), a.sent, st.SentPackets)
		}
		if inflight := a.sent - a.acked - a.lost; inflight < 0 {
			c.violate(f.Now(), "conservation", "flow %s final in-flight %d", f.Name(), inflight)
		}
		if f.Config().Duration == 0 {
			if a.acked != st.AckedPackets || a.lost != st.LostPackets {
				c.violate(f.Now(), "conservation", "flow %s checker acked/lost %d/%d != stats %d/%d",
					f.Name(), a.acked, a.lost, st.AckedPackets, st.LostPackets)
			}
		}
	}
	for _, l := range c.net.Links() {
		a := c.links[l]
		if a == nil {
			continue
		}
		if got := a.enqBytes - a.depBytes; got != l.QueueBytes() {
			c.violate(l.Now(), "queue", "link final queue %d B but enqueued-departed = %d B", l.QueueBytes(), got)
		}
		if fs := l.FaultStats(); fs != (netsim.FaultStats{}) || a.hasFaults() {
			if fs.BurstDrops != a.burstDrops || fs.BlackoutDrops != a.blackoutDrops ||
				fs.Reordered != a.reordered || fs.Duplicated != a.duplicated ||
				fs.JitterSpikes != a.jitterSpikes {
				c.violate(l.Now(), "faults", "link fault stats %+v but ledger counted burst %d blackout %d reorder %d dup %d jitter %d",
					fs, a.burstDrops, a.blackoutDrops, a.reordered, a.duplicated, a.jitterSpikes)
			}
		}
		cfg := l.Config()
		if cfg.Trace == nil && cfg.Rate > 0 && now > 0 {
			// Slack: per-packet serialization times round down to whole
			// nanoseconds (a relative error < 1e-6 at any realistic rate)
			// and one packet may straddle the end of the run.
			budget := cfg.Rate*now.Seconds()*(1+1e-6) + float64(2*a.maxPkt*8)
			if delivered := float64(l.Stats().DeliveredBytes) * 8; delivered > budget {
				c.violate(l.Now(), "capacity", "link delivered %.0f bits > capacity budget %.0f bits over %v",
					delivered, budget, now)
			}
		}
	}
	return c.Violations()
}

// Violations returns the recorded breaches (capped at maxRecorded; see
// Count for the exact total).
func (c *Checker) Violations() []Violation { return c.violations }

// Count returns the exact number of violations observed.
func (c *Checker) Count() int64 { return c.nViolation }

// Err returns nil if no invariant was violated, otherwise an error
// summarizing the first breach and the total count.
func (c *Checker) Err() error {
	if c.nViolation == 0 {
		return nil
	}
	return fmt.Errorf("simcheck: %d invariant violation(s), first: %s", c.nViolation, c.violations[0])
}

// Events returns how many engine events the checker observed.
func (c *Checker) Events() uint64 { return c.events }
