// Package metrics implements the evaluation metrics of the paper: Jain's
// fairness index, link utilization, queuing delay, and summary statistics
// over per-flow time series.
package metrics

import (
	"math"
	"sort"
	"time"

	"repro/internal/netsim"
)

// FlowSeries is the read-only view of a flow the series metrics need. Both
// live *netsim.Flow values and stored run summaries (exp.FlowSummary,
// reconstructed from the WAL-backed run store) satisfy it, so every figure
// and table computes identically from a cached record and a fresh run.
type FlowSeries interface {
	Name() string
	BaseRTT() time.Duration
	Series() []netsim.SeriesPoint
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over the given
// allocations. It is 1 for perfectly equal shares and 1/n when one flow
// takes everything. Empty or all-zero input yields 0.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	// Normalize by the maximum first: the index is scale invariant and this
	// keeps the squares finite for arbitrarily large allocations.
	var max float64
	for _, v := range x {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, v := range x {
		if v < 0 {
			v = 0
		}
		v /= max
		sum += v
		sumsq += v * v
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(x)) * sumsq)
}

// MeanThroughput averages a flow's recorded throughput over [from, to].
func MeanThroughput(f FlowSeries, from, to time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range f.Series() {
		if p.T >= from && p.T <= to {
			sum += p.ThroughputBps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanQueuingDelayMS averages (AvgRTT − base RTT) in milliseconds over
// [from, to], skipping samples with no RTT.
func MeanQueuingDelayMS(f FlowSeries, from, to time.Duration) float64 {
	var sum float64
	var n int
	base := f.BaseRTT()
	for _, p := range f.Series() {
		if p.T >= from && p.T <= to && p.AvgRTT > 0 {
			d := float64(p.AvgRTT-base) / float64(time.Millisecond)
			if d < 0 {
				d = 0
			}
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanRTT averages a flow's recorded RTT over [from, to].
func MeanRTT(f FlowSeries, from, to time.Duration) time.Duration {
	var sum time.Duration
	var n int64
	for _, p := range f.Series() {
		if p.T >= from && p.T <= to && p.AvgRTT > 0 {
			sum += p.AvgRTT
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// TimewiseJain computes Jain's index at each recording instant across the
// flows that are active (non-zero throughput window) and returns the mean —
// the "average Jain index" of the paper's Fig. 6, which penalizes both
// unequal equilibria and slow convergence.
func TimewiseJain[F FlowSeries](flows []F) float64 {
	series := make(map[time.Duration][]float64)
	for _, f := range flows {
		for _, p := range f.Series() {
			series[p.T] = append(series[p.T], p.ThroughputBps)
		}
	}
	var sum float64
	var n int
	for _, shares := range series {
		if len(shares) < 2 {
			continue // a lone flow is trivially fair; skip
		}
		sum += JainIndex(shares)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a sorted copy. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Percentiles returns the percentiles (0..100, nearest-rank) of xs for each
// p in ps, sorting once — use it instead of repeated Percentile calls when
// several quantiles of the same sample are needed. Empty xs yields all
// zeros.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		switch {
		case p <= 0:
			out[i] = s[0]
		case p >= 100:
			out[i] = s[len(s)-1]
		default:
			rank := int(math.Ceil(p/100*float64(len(s)))) - 1
			if rank < 0 {
				rank = 0
			}
			out[i] = s[rank]
		}
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// ConvergenceTime reports how long after `start` the flow first sustains at
// least `fraction` of `fairShare` for `hold` consecutive recorded samples.
// It returns -1 if the flow never converges within its series. The paper
// reads this quantity off the Fig. 7 dynamics ("convergence speed is a
// little slower in large BDP links").
func ConvergenceTime(f FlowSeries, start time.Duration, fairShare float64, fraction float64, hold int) time.Duration {
	if hold < 1 {
		hold = 1
	}
	target := fraction * fairShare
	run := 0
	var runStart time.Duration
	for _, p := range f.Series() {
		if p.T < start {
			continue
		}
		if p.ThroughputBps >= target {
			if run == 0 {
				runStart = p.T
			}
			run++
			if run >= hold {
				return runStart - start
			}
		} else {
			run = 0
		}
	}
	return -1
}
