package nn

import "math"

// AllFinite reports whether every accumulated gradient is finite. Training
// loops use it to discard poisoned updates (a single NaN reward or exploding
// backward pass would otherwise irreversibly corrupt the weights).
func (g *Grads) AllFinite() bool {
	for i := range g.W {
		if !allFinite(g.W[i]) || !allFinite(g.B[i]) {
			return false
		}
	}
	return true
}

// AllFinite reports whether every weight and bias of the network is finite.
func (m *MLP) AllFinite() bool {
	for _, l := range m.Layers {
		if !allFinite(l.W) || !allFinite(l.B) {
			return false
		}
	}
	return true
}

func allFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
