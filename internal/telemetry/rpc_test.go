package telemetry

import "testing"

// TestTenantMetricNameCollision pins the collision fix: two distinct tenant
// labels that sanitize to the same metric-name string must still yield
// distinct gauge names, while labels already in the metric alphabet pass
// through untouched.
func TestTenantMetricNameCollision(t *testing.T) {
	a, b := tenantMetricName("team-a"), tenantMetricName("team.a")
	if sanitizeMetricName("team-a") != sanitizeMetricName("team.a") {
		t.Fatal("test premise broken: labels no longer collide after sanitizing")
	}
	if a == b {
		t.Fatalf("tenantMetricName collision: %q and %q both map to %q", "team-a", "team.a", a)
	}
	if got := tenantMetricName("clean_name_7"); got != "clean_name_7" {
		t.Errorf("clean label altered: %q", got)
	}
	// Stability: the suffix depends only on the label.
	if again := tenantMetricName("team-a"); again != a {
		t.Errorf("tenantMetricName not stable: %q then %q", a, again)
	}
}

// TestTenantMetricNameLeadingDigit covers the sanitizer's leading-digit
// rule interacting with the hash suffix: "9flows" is altered (leading digit
// becomes '_'), so it must gain a suffix and stay distinct from a literal
// "_flows" tenant.
func TestTenantMetricNameLeadingDigit(t *testing.T) {
	if got, clean := tenantMetricName("9flows"), tenantMetricName("_flows"); got == clean {
		t.Fatalf("%q and %q collide as %q", "9flows", "_flows", got)
	}
}
