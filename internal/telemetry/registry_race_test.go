package telemetry

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketValidation pins the construction-time rejection of
// bucket slices Observe cannot binary-search: empty, unsorted, duplicated,
// and NaN-bearing slices all fail with ErrBadBuckets; a valid slice is
// copied (caller mutation cannot corrupt the histogram).
func TestHistogramBucketValidation(t *testing.T) {
	r := NewRegistry()
	bad := [][]float64{
		nil,
		{},
		{2, 1},               // unsorted
		{1, 1},               // duplicate
		{1, 2, 2, 3},         // duplicate mid-slice
		{1, math.NaN()},      // NaN
		{math.NaN()},         // lone NaN
		{3, 2, 1},            // descending
		{1, 2, math.Inf(-1)}, // -Inf after finite
	}
	for i, bs := range bad {
		if _, err := r.TryHistogram(fmt.Sprintf("h_bad_%d", i), "", bs); !errors.Is(err, ErrBadBuckets) {
			t.Errorf("buckets %v: err = %v, want ErrBadBuckets", bs, err)
		}
	}
	// Valid boundary shapes: single bucket, +Inf as last bound, negatives.
	for i, bs := range [][]float64{
		{1},
		{-5, 0, 5},
		{1, math.Inf(1)},
	} {
		h, err := r.TryHistogram(fmt.Sprintf("h_ok_%d", i), "", bs)
		if err != nil || h == nil {
			t.Fatalf("valid buckets %v rejected: %v", bs, err)
		}
	}
	// Histogram (the panicking variant) must reject too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Histogram with empty buckets did not panic")
			}
		}()
		r.Histogram("h_panic", "", nil)
	}()
	// The copied-bounds guarantee: mutate the input after construction.
	in := []float64{1, 2, 3}
	h := r.Histogram("h_copy", "", in)
	in[0] = 99
	h.Observe(1.5)
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("sample landed in bucket counts[1]=%d after caller mutated input bounds", got)
	}
}

// TestHistogramObserveBoundaries pins the bucket edge semantics: bounds are
// inclusive upper limits and the +Inf slot catches the rest.
func TestHistogramObserveBoundaries(t *testing.T) {
	h := NewRegistry().Histogram("h_edges", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 11, math.Inf(1)} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2} // (-inf,1], (1,10], (10,+inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: %d samples, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
}

// TestRegistryConcurrentGetOrCreate hammers the get-or-create paths from
// many goroutines under -race: same-name registration must converge on one
// instrument, different names must all materialize, and exposition must be
// safe to run mid-registration.
func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 64
	var wg sync.WaitGroup

	// Same-name races: every worker must get the same instrument back.
	sameC := make([]*Counter, workers)
	sameG := make([]*Gauge, workers)
	sameH := make([]*Histogram, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sameC[w] = r.Counter("shared_total", "")
			sameG[w] = r.Gauge("shared_gauge", "")
			sameH[w] = r.Histogram("shared_hist", "", []float64{1, 2, 4})
			sameC[w].Inc()
			sameH[w].Observe(1)
			// Distinct names: one family per worker.
			for i := 0; i < perWorker; i++ {
				r.Counter(fmt.Sprintf("w%d_c%d_total", w, i), "").Inc()
				r.GaugeFunc(fmt.Sprintf("w%d_f%d", w, i), "", func() float64 { return 1 })
			}
		}(w)
	}
	// Exposition races registration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 32; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
			}
			if err := r.WriteJSON(io.Discard); err != nil {
				t.Errorf("WriteJSON: %v", err)
			}
		}
	}()
	wg.Wait()

	for w := 1; w < workers; w++ {
		if sameC[w] != sameC[0] || sameG[w] != sameG[0] || sameH[w] != sameH[0] {
			t.Fatalf("worker %d received a different instrument for a shared name", w)
		}
	}
	if got := sameC[0].Value(); got != workers {
		t.Errorf("shared counter = %d, want %d", got, workers)
	}
	if got := sameH[0].Count(); got != workers {
		t.Errorf("shared histogram count = %d, want %d", got, workers)
	}
	if got := r.Counter("w3_c7_total", "").Value(); got != 1 {
		t.Errorf("per-worker counter = %d, want 1", got)
	}
}
