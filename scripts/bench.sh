#!/bin/sh
# bench.sh — run the hot-path micro-benchmarks and record them as
# BENCH_harness.json for before/after comparison.
#
# Covers the per-step allocation work: event scheduling (simcore), full
# scenario simulation (exp), NN inference/backprop scratch buffers (nn),
# and the TD3 update loop (rl). Usage:
#
#   scripts/bench.sh             # writes BENCH_harness.json in the repo root
#   OUT=/tmp/b.json scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."
OUT=${OUT:-BENCH_harness.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'BenchmarkEngineSchedule' -benchmem ./internal/simcore | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkMLPForward|BenchmarkMLPBackward' -benchmem ./internal/nn | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkTD3Update' -benchmem ./internal/rl | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkScenario' -benchtime 3x -benchmem ./internal/exp | tee -a "$TMP"

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    nsop = ""; bop = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") nsop = $(i - 1)
        if ($(i) == "B/op") bop = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (nsop == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", name, nsop
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
' "$TMP" > "$OUT"
echo "wrote $OUT"
