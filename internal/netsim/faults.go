package netsim

import (
	"time"

	"repro/internal/faults"
	"repro/internal/simcore"
)

// FaultKind labels one class of injected-fault event (see Tap.FaultInjected).
type FaultKind int

const (
	// FaultBurstLoss is a Gilbert–Elliott drop on arrival.
	FaultBurstLoss FaultKind = iota
	// FaultBlackout is a drop because the link was in a flap outage.
	FaultBlackout
	// FaultReorder is a deferred enqueue (the packet re-arrives later).
	FaultReorder
	// FaultDuplicate is a duplicate copy joining the queue alongside the
	// original.
	FaultDuplicate
	// FaultJitter is a propagation delay spike.
	FaultJitter
)

func (k FaultKind) String() string {
	switch k {
	case FaultBurstLoss:
		return "burst-loss"
	case FaultBlackout:
		return "blackout"
	case FaultReorder:
		return "reorder"
	case FaultDuplicate:
		return "duplicate"
	case FaultJitter:
		return "jitter"
	}
	return "unknown"
}

// FaultStats counts what a link's fault injector has done over the run.
type FaultStats struct {
	BurstDrops    int64 // Gilbert–Elliott drops
	BlackoutDrops int64 // drops while the link was flapped down
	Reordered     int64 // packets whose enqueue was deferred
	Duplicated    int64 // duplicate copies created
	JitterSpikes  int64 // propagation delay spikes
}

// Drops returns the total packets dropped by fault processes (as opposed to
// the link's own random-loss and DropTail drops).
func (s FaultStats) Drops() int64 { return s.BurstDrops + s.BlackoutDrops }

// linkFaults applies a faults.Config to one link. Each process owns an RNG
// stream derived once from the link's stream, so (a) a link without faults
// consumes exactly the same RNG state as before this subsystem existed —
// golden digests of fault-free scenarios are unchanged — and (b) toggling
// one fault type never shifts the realization of another.
type linkFaults struct {
	link *Link
	cfg  faults.Config

	ge   *faults.GilbertElliott
	flap *faults.Flap

	reorderRNG *simcore.RNG
	dupRNG     *simcore.RNG
	jitterRNG  *simcore.RNG

	// reArriveFn is the long-lived delayed-re-enqueue callback for reordered
	// packets (see simcore.Engine.ScheduleArg).
	reArriveFn func(any)

	stats FaultStats
}

func newLinkFaults(l *Link) *linkFaults {
	lf := &linkFaults{link: l, cfg: *l.cfg.Faults}
	// One draw from the link RNG, then unconditional child splits: every
	// process stream is fixed by the link seed alone, regardless of which
	// fault types the config enables.
	frng := l.rng.Split(0xfa17)
	geRNG := frng.Split(1)
	flapRNG := frng.Split(2)
	lf.reorderRNG = frng.Split(3)
	lf.dupRNG = frng.Split(4)
	lf.jitterRNG = frng.Split(5)
	if lf.cfg.GE != nil {
		lf.ge = faults.NewGilbertElliott(*lf.cfg.GE, geRNG)
	}
	if lf.cfg.Flap != nil {
		lf.flap = faults.NewFlap(*lf.cfg.Flap, flapRNG)
	}
	lf.reArriveFn = func(a any) { l.enqueue(a.(*packet)) }
	return lf
}

// admit runs the arrival-side fault pipeline on a packet and reports whether
// the caller should continue into normal queueing. A false return means the
// packet was consumed here: dropped (blackout/burst loss, with the sender's
// loss detection engaged) or deferred (reordering).
func (lf *linkFaults) admit(p *packet) bool {
	l := lf.link
	if lf.flap != nil && lf.flap.Down(l.eng.Now()) {
		lf.stats.BlackoutDrops++
		if tap := l.net.tap; tap != nil {
			tap.FaultInjected(l, p.flow, FaultBlackout, p.size)
		}
		l.dropToSender(p)
		return false
	}
	if lf.ge != nil && lf.ge.Drop() {
		lf.stats.BurstDrops++
		if tap := l.net.tap; tap != nil {
			tap.FaultInjected(l, p.flow, FaultBurstLoss, p.size)
		}
		l.dropToSender(p)
		return false
	}
	if lf.cfg.DupProb > 0 && lf.dupRNG.Bernoulli(lf.cfg.DupProb) {
		lf.stats.Duplicated++
		if tap := l.net.tap; tap != nil {
			tap.FaultInjected(l, p.flow, FaultDuplicate, p.size)
		}
		// The copy joins the queue immediately (bypassing the fault
		// pipeline) and is discarded at the far side of this link; its cost
		// is the buffer space and serialization time it burns.
		l.enqueue(l.cloneDup(p))
	}
	if lf.cfg.ReorderProb > 0 && lf.reorderRNG.Bernoulli(lf.cfg.ReorderProb) {
		lf.stats.Reordered++
		if tap := l.net.tap; tap != nil {
			tap.FaultInjected(l, p.flow, FaultReorder, p.size)
		}
		d := time.Duration(lf.reorderRNG.Float64() * float64(lf.cfg.ReorderMaxDelay))
		if d < time.Nanosecond {
			d = time.Nanosecond
		}
		l.eng.ScheduleArgAfter(d, lf.reArriveFn, p)
		return false
	}
	return true
}

// delaySpike returns an extra propagation delay for a departing packet
// (zero for most packets; a uniform spike in (0, JitterMax] with
// probability JitterProb).
func (lf *linkFaults) delaySpike(p *packet) time.Duration {
	if lf.cfg.JitterProb == 0 || !lf.jitterRNG.Bernoulli(lf.cfg.JitterProb) {
		return 0
	}
	lf.stats.JitterSpikes++
	l := lf.link
	if tap := l.net.tap; tap != nil {
		tap.FaultInjected(l, p.flow, FaultJitter, p.size)
	}
	d := time.Duration(lf.jitterRNG.Float64() * float64(lf.cfg.JitterMax))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

// FaultStats returns the link's fault-injection counters (zero value if the
// link has no fault config).
func (l *Link) FaultStats() FaultStats {
	if l.faults == nil {
		return FaultStats{}
	}
	return l.faults.stats
}
