package telemetry_test

import (
	"io"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/telemetry"
)

// parityScenario is a checked multi-scheme dumbbell: long enough for drops,
// interval stats, and Jury decision-guard counters to all fire.
func parityScenario() exp.Scenario {
	return exp.Scenario{
		Name:        "telemetry-parity",
		Rate:        20e6,
		OneWayDelay: 20 * time.Millisecond,
		BufferBytes: 64 * 1500,
		Flows: []exp.FlowSpec{
			{Scheme: "cubic"},
			{Scheme: "jury", Start: 500 * time.Millisecond},
		},
		Horizon: 3 * time.Second,
		Seed:    7,
		Check:   true,
	}
}

// TestTelemetryDigestParity pins the determinism contract of the telemetry
// layer: attaching the full observer stack (metrics, tracer, jury exports)
// must leave a checked run's event-stream digest bit-identical, because
// telemetry only observes — it never draws randomness or schedules events.
func TestTelemetryDigestParity(t *testing.T) {
	if exp.Telemetry != nil {
		t.Fatal("test requires the package-level hub to start nil")
	}
	base, err := exp.Run(parityScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !base.Checked || base.Digest == 0 {
		t.Fatalf("baseline run not checked (checked=%v digest=%#x)", base.Checked, base.Digest)
	}

	hub := &telemetry.Hub{
		Registry: telemetry.NewRegistry(),
		Tracer:   telemetry.NewTracer(telemetry.NewSink(io.Discard)),
	}
	exp.Telemetry = hub
	defer func() { exp.Telemetry = nil }()
	instr, err := exp.Run(parityScenario())
	if err != nil {
		t.Fatal(err)
	}
	if instr.Digest != base.Digest {
		t.Fatalf("telemetry perturbed the simulation: digest %#016x (instrumented) != %#016x (bare)",
			instr.Digest, base.Digest)
	}

	// The observer must actually have seen the run.
	r := hub.Registry
	if r.Counter("sim_packets_sent_total", "").Value() == 0 {
		t.Error("sim_packets_sent_total stayed 0 under an instrumented run")
	}
	if r.Counter("sim_intervals_total", "").Value() == 0 {
		t.Error("sim_intervals_total stayed 0 under an instrumented run")
	}
	if r.Counter("exp_runs_finished_total", "").Value() != 1 {
		t.Errorf("exp_runs_finished_total = %d, want 1", r.Counter("exp_runs_finished_total", "").Value())
	}
	if r.Histogram("sim_ack_rtt_seconds", "", nil).Count() == 0 {
		t.Error("sim_ack_rtt_seconds saw no samples")
	}
}

// TestRunManyInstrumented: the sweep path emits progress and keeps results
// identical to bare runs.
func TestRunManyInstrumented(t *testing.T) {
	jobs := []exp.Scenario{parityScenario(), parityScenario()}
	jobs[1].Seed = 11
	jobs[1].Name = "telemetry-parity-b"

	bare, err := exp.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}

	hub := &telemetry.Hub{
		Registry: telemetry.NewRegistry(),
		Tracer:   telemetry.NewTracer(telemetry.NewSink(io.Discard)),
	}
	exp.Telemetry = hub
	defer func() { exp.Telemetry = nil }()
	instr, err := exp.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if bare[i].Digest != instr[i].Digest {
			t.Errorf("job %d digest mismatch: %#x != %#x", i, instr[i].Digest, bare[i].Digest)
		}
	}
	if got := hub.Registry.Counter("exp_runs_finished_total", "").Value(); got != 2 {
		t.Errorf("exp_runs_finished_total = %d, want 2", got)
	}
}
