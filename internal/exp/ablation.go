package exp

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// AblationRow reports one Jury variant's fairness and performance on the
// canonical 3-flow unseen-environment scenario.
type AblationRow struct {
	Variant     string
	Jain        float64 // time-averaged Jain index
	Utilization float64
	QueueMS     float64
}

// AblationOptions parameterizes the ablation study.
type AblationOptions struct {
	Rate     float64
	Stagger  time.Duration
	Lifetime time.Duration
	Seed     uint64
}

func (o *AblationOptions) defaults() {
	if o.Rate == 0 {
		o.Rate = 200e6 // outside the training domain
	}
	if o.Stagger == 0 {
		o.Stagger = 20 * time.Second
	}
	if o.Lifetime == 0 {
		o.Lifetime = 60 * time.Second
	}
}

// zeroDeltaPolicy collapses the decision range to its mean: the
// post-processing phase becomes a no-op (a = μ for every flow), removing
// the paper's fairness mechanism.
type zeroDeltaPolicy struct{ inner core.Policy }

func (p zeroDeltaPolicy) Decide(state []float64) (float64, float64) {
	mu, _ := p.inner.Decide(state)
	return mu, 0
}

// AblationVariants returns the design-choice ablations of DESIGN.md, each a
// factory for one flow's controller.
func AblationVariants() map[string]func(seed uint64) cc.Algorithm {
	return map[string]func(seed uint64) cc.Algorithm{
		"jury-full": func(seed uint64) cc.Algorithm {
			return core.NewDefault(seed)
		},
		"no-post-processing": func(seed uint64) cc.Algorithm {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			return core.New(cfg, zeroDeltaPolicy{core.NewReferencePolicy()})
		},
		"no-exploration-action": func(seed uint64) cc.Algorithm {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.ExploreProb = 0
			return core.New(cfg, core.NewReferencePolicy())
		},
		"no-signal-filter": func(seed uint64) cc.Algorithm {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.OccupancyWindow = 1 // raw per-interval Eq. 5 samples
			return core.New(cfg, core.NewReferencePolicy())
		},
	}
}

// RunAblation runs the 3-flow scenario for each variant (in sorted variant
// order, one simulation per worker).
func RunAblation(o AblationOptions) ([]AblationRow, error) {
	o.defaults()
	variants := AblationVariants()
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]AblationRow, len(names))
	err := parallelFor(len(names), func(vi int) error {
		mk := variants[names[vi]]
		n := netsim.New(netsim.Config{Seed: o.Seed})
		link := n.AddLink(netsim.LinkConfig{
			Rate: o.Rate, Delay: 15 * time.Millisecond,
			BufferBytes: int(1.5 * o.Rate / 8 * 0.030),
		})
		for i := 0; i < 3; i++ {
			seed := o.Seed*100 + uint64(i) + 1
			n.AddFlow(netsim.FlowConfig{
				Name:  fmt.Sprintf("f%d", i),
				Path:  []*netsim.Link{link},
				Start: time.Duration(i) * o.Stagger,
				CC:    func() cc.Algorithm { return mk(seed) },
			})
		}
		horizon := 2*o.Stagger + o.Lifetime
		n.Run(horizon)
		var q float64
		for _, f := range n.Flows() {
			q += metrics.MeanQueuingDelayMS(f, horizon/2, horizon)
		}
		rows[vi] = AblationRow{
			Variant:     names[vi],
			Jain:        metrics.TimewiseJain(n.Flows()),
			Utilization: link.Utilization(horizon),
			QueueMS:     q / float64(len(n.Flows())),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
