package bbr

import (
	"testing"
	"time"

	"repro/internal/cc"
)

// drive feeds the controller a steady ACK stream corresponding to the given
// delivery rate (bits/s) and RTT for the given duration; returns end time.
func drive(b *BBR, start, dur time.Duration, rate float64, rtt time.Duration) time.Duration {
	const mss = 1500
	gap := time.Duration(float64(mss*8) / rate * float64(time.Second))
	for now := start; now < start+dur; now += gap {
		b.OnAck(cc.Ack{Now: now, SentAt: now - rtt, RTT: rtt, Bytes: mss})
	}
	return start + dur
}

func TestStartupExitsOnBandwidthPlateau(t *testing.T) {
	b := New()
	b.Init(0)
	// Steady 50 Mbps for many RTTs: bandwidth stops growing, STARTUP ends.
	drive(b, time.Millisecond, 2*time.Second, 50e6, 30*time.Millisecond)
	if b.State() == int(stateStartup) {
		t.Fatal("still in STARTUP after a 2s bandwidth plateau")
	}
}

func TestBandwidthEstimateTracksDeliveryRate(t *testing.T) {
	b := New()
	b.Init(0)
	drive(b, time.Millisecond, 2*time.Second, 50e6, 30*time.Millisecond)
	bw := b.btlBw.Value()
	if bw < 40e6 || bw > 60e6 {
		t.Fatalf("btlBw %v, want ~50e6", bw)
	}
}

func TestCwndIsGainTimesBDP(t *testing.T) {
	b := New()
	b.Init(0)
	end := drive(b, time.Millisecond, 3*time.Second, 50e6, 30*time.Millisecond)
	drive(b, end, 2*time.Second, 50e6, 30*time.Millisecond)
	// BDP = 50e6 * 0.030 / 8 / 1500 = 125 packets; cwnd ≈ 2*BDP in ProbeBW.
	w := b.CWND()
	if w < 150 || w > 400 {
		t.Fatalf("cwnd %v, want ~250 (2x BDP)", w)
	}
}

func TestProbeRTTTriggersPeriodically(t *testing.T) {
	b := New()
	b.Init(0)
	sawProbeRTT := false
	now := time.Millisecond
	for i := 0; i < 30; i++ {
		now = drive(b, now, 500*time.Millisecond, 50e6, 30*time.Millisecond)
		if b.State() == int(stateProbeRTT) {
			sawProbeRTT = true
			if b.CWND() != minCwnd {
				t.Fatalf("PROBE_RTT cwnd %v, want %v", b.CWND(), float64(minCwnd))
			}
		}
	}
	if !sawProbeRTT {
		t.Fatal("never entered PROBE_RTT in 15s")
	}
}

func TestPacingGainCyclesInProbeBW(t *testing.T) {
	b := New()
	b.Init(0)
	now := drive(b, time.Millisecond, 3*time.Second, 50e6, 30*time.Millisecond)
	if b.State() != int(stateProbeBW) {
		t.Skipf("not yet in ProbeBW (state %d)", b.State())
	}
	gains := map[float64]bool{}
	for i := 0; i < 40; i++ {
		now = drive(b, now, 30*time.Millisecond, 50e6, 30*time.Millisecond)
		gains[b.pacingGain] = true
	}
	if !gains[1.25] || !gains[0.75] || !gains[1.0] {
		t.Fatalf("gain cycle incomplete: %v", gains)
	}
}

func TestLossIsIgnored(t *testing.T) {
	b := New()
	b.Init(0)
	drive(b, time.Millisecond, time.Second, 50e6, 30*time.Millisecond)
	w := b.CWND()
	for i := 0; i < 100; i++ {
		b.OnLoss(cc.Loss{Now: time.Second, SentAt: 900 * time.Millisecond})
	}
	if b.CWND() != w {
		t.Fatalf("loss changed cwnd: %v -> %v", w, b.CWND())
	}
}

func TestPacingRateFollowsGainTimesBw(t *testing.T) {
	b := New()
	b.Init(0)
	if b.PacingRate() != 0 {
		t.Fatal("pacing before any sample should be 0 (unpaced)")
	}
	drive(b, time.Millisecond, 5*time.Second, 50e6, 30*time.Millisecond)
	rate := b.PacingRate()
	want := b.pacingGain * b.btlBw.Value()
	if rate != want {
		t.Fatalf("pacing %v, want gain*btlBw=%v", rate, want)
	}
}

func TestBBRIdentity(t *testing.T) {
	if New().Name() != "bbr" {
		t.Fatal("name wrong")
	}
}
