package obs

import (
	"bufio"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/cc/reno"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// buildDumbbell builds a 2-flow single-bottleneck network.
func buildDumbbell(seed uint64) (*netsim.Network, time.Duration) {
	n := netsim.New(netsim.Config{Seed: seed})
	link := n.AddLink(netsim.LinkConfig{
		Rate:        20e6,
		Delay:       20 * time.Millisecond,
		BufferBytes: 64 * 1500,
	})
	algs := []func() cc.Algorithm{
		func() cc.Algorithm { return cubic.New() },
		func() cc.Algorithm { return reno.New() },
	}
	for i, mk := range algs {
		mk := mk
		n.AddFlow(netsim.FlowConfig{
			Name:  []string{"cubic-0", "reno-1"}[i],
			Path:  []*netsim.Link{link},
			Start: time.Duration(i) * time.Second,
			CC:    mk,
		})
	}
	return n, 8 * time.Second
}

// buildParkingLot builds a two-bottleneck topology that partitions into two
// shards (both links have positive delay, so the cut has lookahead).
func buildParkingLot(seed uint64) (*netsim.Network, time.Duration) {
	n := netsim.New(netsim.Config{Seed: seed})
	a := n.AddLink(netsim.LinkConfig{Rate: 20e6, Delay: 10 * time.Millisecond, BufferBytes: 64 * 1500})
	b := n.AddLink(netsim.LinkConfig{Rate: 15e6, Delay: 10 * time.Millisecond, BufferBytes: 64 * 1500})
	n.AddFlow(netsim.FlowConfig{Name: "f-a", Path: []*netsim.Link{a}, CC: func() cc.Algorithm { return cubic.New() }})
	n.AddFlow(netsim.FlowConfig{Name: "f-ab", Path: []*netsim.Link{a, b}, CC: func() cc.Algorithm { return reno.New() }})
	n.AddFlow(netsim.FlowConfig{Name: "f-b", Path: []*netsim.Link{b}, CC: func() cc.Algorithm { return cubic.New() }})
	return n, 6 * time.Second
}

// TestStreamingJainMatchesPostHocSequential pins the core exactness claim:
// the cumulative streaming Jain equals metrics.TimewiseJain computed
// post-hoc from the full series, on a sequential run.
func TestStreamingJainMatchesPostHocSequential(t *testing.T) {
	n, horizon := buildDumbbell(41)
	rt := New(Options{Window: 500 * time.Millisecond})
	ob := rt.Attach(n, 1)
	n.Run(horizon)
	sum := ob.Finish(horizon)
	want := metrics.TimewiseJain(n.Flows())
	if math.Abs(sum.FinalJain-want) > 1e-6 {
		t.Fatalf("streaming Jain %.9f vs post-hoc %.9f", sum.FinalJain, want)
	}
	if len(ob.Snapshots()) < int(horizon/(500*time.Millisecond))-1 {
		t.Errorf("only %d snapshots over %v at 500ms cadence", len(ob.Snapshots()), horizon)
	}
	if sum.Samples == 0 || sum.RateP50 <= 0 {
		t.Errorf("summary not populated: %+v", sum)
	}
}

// TestStreamingJainMatchesPostHocSharded repeats the exactness claim on a
// genuinely sharded run: per-shard accumulators merged at coordinator
// barriers must fold instants split across shards back together.
func TestStreamingJainMatchesPostHocSharded(t *testing.T) {
	n, horizon := buildParkingLot(43)
	rt := New(Options{Window: 300 * time.Millisecond})
	ob := rt.Attach(n, 2)
	sr, err := n.RunSharded(horizon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Partition.Shards != 2 {
		t.Fatalf("expected 2 shards, got %d", sr.Partition.Shards)
	}
	sum := ob.Finish(horizon)
	want := metrics.TimewiseJain(n.Flows())
	if math.Abs(sum.FinalJain-want) > 1e-6 {
		t.Fatalf("streaming Jain %.9f vs post-hoc %.9f (sharded)", sum.FinalJain, want)
	}
	if len(ob.Snapshots()) == 0 {
		t.Fatal("no snapshots emitted from sharded run")
	}
}

// TestGroupTableOverflowQuantizes feeds more distinct instants than the
// table holds and checks samples are never lost: they fold into quantized
// groups (and at worst the catch-all), keeping memory fixed.
func TestGroupTableOverflowQuantizes(t *testing.T) {
	g := groupTable{quantum: int64(200 * time.Millisecond)}
	const samples = 10000
	for i := 0; i < samples; i++ {
		g.add(int64(i)*7919+1, 1.0) // distinct pseudo-random instants
	}
	var n int64
	for i := range g.slots {
		n += g.slots[i].n
	}
	n += g.overflow.n
	if n != samples {
		t.Fatalf("table holds %d samples, want %d", n, samples)
	}
	if g.used > groupSlots {
		t.Fatalf("used %d beyond capacity", g.used)
	}
}

// TestSampleRecordedAllocs pins zero allocations on the streaming hot path.
func TestSampleRecordedAllocs(t *testing.T) {
	n, _ := buildDumbbell(1)
	rt := New(Options{})
	ob := rt.Attach(n, 1)
	f := n.Flows()[0]
	p := netsim.SeriesPoint{T: 200 * time.Millisecond, ThroughputBps: 1e6, AvgRTT: 40 * time.Millisecond}
	if allocs := testing.AllocsPerRun(1000, func() { ob.SampleRecorded(f, p) }); allocs != 0 {
		t.Errorf("SampleRecorded allocates %.1f per op", allocs)
	}
}

// TestFlightRecorderDump runs with a lossy link (drops land in the ring)
// and checks a triggered dump produces ordered, non-empty JSONL.
func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	n := netsim.New(netsim.Config{Seed: 9})
	link := n.AddLink(netsim.LinkConfig{
		Rate:        5e6,
		Delay:       10 * time.Millisecond,
		BufferBytes: 8 * 1500, // shallow: forces overflow drops
	})
	for i := 0; i < 2; i++ {
		name := []string{"c0", "c1"}[i]
		n.AddFlow(netsim.FlowConfig{Name: name, Path: []*netsim.Link{link}, CC: func() cc.Algorithm { return cubic.New() }})
	}
	rt := New(Options{FlightDir: dir, FlightSize: 128})
	ob := rt.Attach(n, 1)
	n.Run(4 * time.Second)
	path, err := ob.DumpFlight("test-trigger")
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("dump produced no file")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines, lastVT := 0, int64(-1)
	for sc.Scan() {
		line := sc.Text()
		if lines == 0 {
			if !strings.Contains(line, `"flight":"test-trigger"`) {
				t.Errorf("header line %q missing reason", line)
			}
		} else if !strings.Contains(line, `"vt_ns":`) {
			t.Errorf("entry line %q not JSONL", line)
		}
		lines++
		_ = lastVT
	}
	if lines < 10 {
		t.Fatalf("dump has %d lines; expected a populated ring", lines)
	}
	// Dumps are capped: hammering the trigger must not grow the directory
	// unboundedly.
	for i := 0; i < 50; i++ {
		ob.DumpFlight("again")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) > 8 {
		t.Errorf("%d dump files, cap is 8", len(entries))
	}
	if filepath.Ext(path) != ".jsonl" {
		t.Errorf("dump file %q not .jsonl", path)
	}
}

// TestFootprintBoundedByShards pins the O(shards), not O(flows), memory
// claim at the accounting level: footprint is identical for 2-flow and
// many-flow networks.
func TestFootprintBoundedByShards(t *testing.T) {
	small, _ := buildDumbbell(1)
	rtA := New(Options{})
	obA := rtA.Attach(small, 4)

	big := netsim.New(netsim.Config{Seed: 2})
	link := big.AddLink(netsim.LinkConfig{Rate: 100e6, Delay: 10 * time.Millisecond, BufferBytes: 64 * 1500})
	for i := 0; i < 500; i++ {
		big.AddFlow(netsim.FlowConfig{
			Name: "f" + string(rune('a'+i%26)) + string(rune('0'+i%10)),
			Path: []*netsim.Link{link},
			CC:   func() cc.Algorithm { return cubic.New() },
		})
	}
	rtB := New(Options{})
	obB := rtB.Attach(big, 4)
	if obA.FootprintBytes() != obB.FootprintBytes() {
		t.Fatalf("footprint scales with flows: %d vs %d", obA.FootprintBytes(), obB.FootprintBytes())
	}
	if fp := obB.FootprintBytes(); fp > 8<<20 {
		t.Errorf("footprint %d B for 4 shards; expected well under 8 MiB", fp)
	}
}

// TestStatePublishAndRecent covers the live ring.
func TestStatePublishAndRecent(t *testing.T) {
	s := NewState()
	if _, ok := s.Latest(); ok {
		t.Fatal("empty state reports a snapshot")
	}
	for i := 1; i <= stateRingSize+10; i++ {
		s.publish(FairnessSnapshot{T: time.Duration(i), CumJain: 0.9})
	}
	latest, ok := s.Latest()
	if !ok || latest.T != time.Duration(stateRingSize+10) {
		t.Fatalf("latest = %v ok=%v", latest.T, ok)
	}
	recent := s.Recent()
	if len(recent) != stateRingSize {
		t.Fatalf("recent holds %d, want %d", len(recent), stateRingSize)
	}
	if recent[0].T != time.Duration(11) {
		t.Errorf("oldest retained %v, want 11", recent[0].T)
	}
}
