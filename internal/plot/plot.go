// Package plot renders line charts and scatter plots as standalone SVG
// documents using only the standard library, so the experiment harness can
// regenerate the paper's figures as images (cmd/juryplot), not just rows.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line or point set.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Points bool // scatter instead of line
}

// Chart is a 2-D chart with axes, ticks, and a legend.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int // pixels; default 640
	Height int // pixels; default 360
	// YMin/YMax optionally pin the y range (both zero = auto).
	YMin, YMax float64
}

// palette holds line colors (colorblind-safe Okabe-Ito subset).
var palette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7",
	"#56B4E9", "#E69F00", "#000000", "#F0E442",
}

const (
	marginLeft   = 64
	marginRight  = 16
	marginTop    = 36
	marginBottom = 48
)

// SVG renders the chart. It never fails: degenerate data produces an empty
// grid with the title, which is the most debuggable output for a harness.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 360
	}
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)

	xmin, xmax, ymin, ymax := c.bounds()

	xpix := func(x float64) float64 {
		if xmax == xmin {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-xmin)/(xmax-xmin)*plotW
	}
	ypix := func(y float64) float64 {
		if ymax == ymin {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`,
		marginLeft, escape(c.Title))

	// Grid and ticks.
	for _, t := range ticks(xmin, xmax, 6) {
		px := xpix(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`,
			px, marginTop, px, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`,
			px, marginTop+plotH+16, fmtTick(t))
	}
	for _, t := range ticks(ymin, ymax, 5) {
		py := ypix(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`,
			marginLeft, py, marginLeft+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`,
			marginLeft-6, py+4, fmtTick(t))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`,
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`,
		marginLeft+plotW/2, h-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		if s.Points {
			for j := range s.X {
				if j < len(s.Y) && finite(s.X[j]) && finite(s.Y[j]) {
					fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`, xpix(s.X[j]), ypix(s.Y[j]), color)
				}
			}
		} else {
			var pts []string
			for j := range s.X {
				if j < len(s.Y) && finite(s.X[j]) && finite(s.Y[j]) {
					pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpix(s.X[j]), ypix(s.Y[j])))
				}
			}
			if len(pts) > 1 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
					strings.Join(pts, " "), color)
			}
		}
		// Legend entry.
		lx := marginLeft + 8
		ly := marginTop + 10 + 16*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2.5"/>`,
			lx, ly, lx+18, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`,
			lx+24, ly+4, escape(s.Name))
	}

	b.WriteString(`</svg>`)
	return b.String()
}

// bounds computes the data extents, honouring pinned Y limits.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) { // no data
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}
	return
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ticks returns ~n round tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

// fmtTick renders a tick value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av < 0.01:
		return fmt.Sprintf("%.1e", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
