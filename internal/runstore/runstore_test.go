package runstore

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
)

// randRecord builds a pseudo-random record from rng. Slices are nil when
// empty so decoded records compare DeepEqual to their sources.
func randRecord(rng *rand.Rand) *Record {
	rec := &Record{
		Scenario:    randName(rng, "scn"),
		Seed:        rng.Uint64(),
		AppendedAt:  1 + rng.Int63n(1e18),
		Horizon:     time.Duration(rng.Int63n(int64(time.Hour))),
		Digest:      rng.Uint64(),
		Checked:     rng.Intn(2) == 0,
		Utilization: rng.Float64(),
		FaultDrops:  rng.Int63n(1000),
		Reordered:   rng.Int63n(1000),
		Duplicated:  rng.Int63n(1000),
		Events:      rng.Int63n(1e9),
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		rec.Schemes = append(rec.Schemes, randName(rng, "cc"))
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		f := FlowRecord{
			BaseRTT:   time.Duration(rng.Int63n(int64(time.Second))),
			Degraded:  rng.Int63n(50),
			NonFinite: rng.Int63n(50),
		}
		f.Stats.Name = randName(rng, "flow")
		f.Stats.SentPackets = rng.Int63n(1e6)
		f.Stats.AckedBytes = rng.Int63n(1e9)
		f.Stats.AvgRTT = time.Duration(rng.Int63n(int64(time.Second)))
		f.Stats.AvgThroughputBps = rng.Float64() * 1e9
		f.Stats.LossRate = rng.Float64()
		for j, m := 0, rng.Intn(4); j < m; j++ {
			f.Series = append(f.Series, netsim.SeriesPoint{
				T:             time.Duration(j) * time.Second,
				ThroughputBps: rng.Float64() * 1e8,
				SendRateBps:   rng.Float64() * 1e8,
				AvgRTT:        time.Duration(rng.Int63n(int64(time.Second))),
				LossRate:      rng.Float64(),
				Cwnd:          rng.Float64() * 1e5,
				PacingBps:     rng.Float64() * 1e8,
			})
		}
		rec.Flows = append(rec.Flows, f)
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		rec.ShardExecuted = append(rec.ShardExecuted, rng.Int63n(1e7))
	}
	rec.Key = KeyOf(appendRecord(nil, rec)) // any distinct deterministic key
	return rec
}

func randName(rng *rand.Rand, prefix string) string {
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := []byte(prefix + "-")
	for i, n := 0, 1+rng.Intn(8); i < n; i++ {
		b = append(b, letters[rng.Intn(len(letters))])
	}
	return string(b)
}

func randRecords(seed int64, n int) []*Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]*Record, 0, n)
	seen := map[Key]bool{}
	for len(recs) < n {
		r := randRecord(rng)
		if seen[r.Key] {
			continue
		}
		seen[r.Key] = true
		recs = append(recs, r)
	}
	return recs
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return st
}

func putAll(t *testing.T, st *Store, recs []*Record) {
	t.Helper()
	for i, r := range recs {
		if err := st.Put(r); err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
	}
}

// requireSameRecords asserts got is bit-identical to want, in order: every
// record re-encodes to the same bytes as its reference.
func requireSameRecords(t *testing.T, got, want []*Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(appendRecord(nil, got[i]), appendRecord(nil, want[i])) {
			t.Fatalf("record %d differs after reload:\n got %+v\nwant %+v", i, got[i], want[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d not DeepEqual after reload:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestRoundTripPolicies is the store round-trip property: a random batch of
// records appended under each fsync policy reloads bit-identically and in
// insertion order, with or without an intervening compaction.
func TestRoundTripPolicies(t *testing.T) {
	for _, pol := range []Policy{FsyncAlways, FsyncInterval, FsyncNever} {
		for _, compact := range []bool{false, true} {
			name := pol.String()
			if compact {
				name += "-compacted"
			}
			t.Run(name, func(t *testing.T) {
				recs := randRecords(int64(pol)*7+1, 12)
				dir := t.TempDir()
				st := mustOpen(t, Options{Dir: dir, Fsync: pol})
				putAll(t, st, recs[:8])
				if compact {
					if err := st.Compact(); err != nil {
						t.Fatalf("Compact: %v", err)
					}
				}
				putAll(t, st, recs[8:])
				requireSameRecords(t, st.Records(), recs)
				if err := st.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}

				re := mustOpen(t, Options{Dir: dir, Fsync: pol})
				defer re.Close()
				if re.Repair().Dirty() {
					t.Fatalf("clean close reported dirty repair: %+v", re.Repair())
				}
				requireSameRecords(t, re.Records(), recs)
				for _, want := range recs {
					got, ok := re.Get(want.Key)
					if !ok {
						t.Fatalf("Get(%s) missing", want.Key.Short())
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("Get(%s) differs", want.Key.Short())
					}
				}
			})
		}
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	recs := randRecords(3, 10)
	st := mustOpen(t, Options{Dir: dir, CompactEvery: 4})
	putAll(t, st, recs)
	if c := st.StoreStats().Compactions; c != 2 {
		t.Fatalf("%d auto-compactions after 10 appends with CompactEvery=4, want 2", c)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, Options{Dir: dir})
	defer re.Close()
	requireSameRecords(t, re.Records(), recs)
}

func TestQueries(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	defer st.Close()
	recs := randRecords(11, 6)
	recs[0].Scenario, recs[3].Scenario = "same", "same"
	recs[1].Schemes = []string{"jury", "cubic"}
	recs[2].Checked, recs[2].Digest = true, 0xfeed
	recs[4].AppendedAt, recs[5].AppendedAt = 100, 200
	putAll(t, st, recs)

	if got := st.ByScenario("same"); len(got) != 2 || got[0] != recs[0] || got[1] != recs[3] {
		t.Fatalf("ByScenario(same) = %v", got)
	}
	found := false
	for _, r := range st.ByScheme("cubic") {
		if r == recs[1] {
			found = true
		}
	}
	if !found {
		t.Fatal("ByScheme(cubic) missed the record")
	}
	if got := st.ByDigest(0xfeed); len(got) != 1 || got[0] != recs[2] {
		t.Fatalf("ByDigest = %v", got)
	}
	got := st.Between(time.Unix(0, 100), time.Unix(0, 201))
	if len(got) != 2 || got[0] != recs[4] || got[1] != recs[5] {
		t.Fatalf("Between = %v", got)
	}
	if st.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(recs))
	}
}

// TestLastWinsAndDigestMismatch: re-putting a key replaces the record in
// place; two checked records under the same key with different digests are a
// determinism violation and must be refused.
func TestLastWinsAndDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	recs := randRecords(17, 2)
	old := recs[0]
	old.Checked, old.Digest = true, 0x1111
	putAll(t, st, recs)

	upd := *old
	upd.Utilization = 0.123
	if err := st.Put(&upd); err != nil {
		t.Fatalf("same-digest re-put refused: %v", err)
	}
	all := st.Records()
	if len(all) != 2 || all[0] != &upd {
		t.Fatalf("last-wins re-put did not replace in place: %v", all)
	}

	bad := *old
	bad.Digest = 0x2222
	err := st.Put(&bad)
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("digest mismatch not refused: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The duplicate append survives the WAL; reload still dedups to 2.
	re := mustOpen(t, Options{Dir: dir})
	defer re.Close()
	requireSameRecords(t, re.Records(), []*Record{&upd, recs[1]})
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	recs := randRecords(23, 3)
	st := mustOpen(t, Options{Dir: dir})
	putAll(t, st, recs)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a read-only open must report the damage without
	// touching the file.
	walPath := filepath.Join(dir, "wal.log")
	if err := appendBytes(walPath, []byte("torn-tail-garbage")); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	ro := mustOpen(t, Options{Dir: dir, ReadOnly: true})
	defer ro.Close()
	requireSameRecords(t, ro.Records(), recs)
	if !ro.Repair().Dirty() {
		t.Fatal("read-only open missed the torn tail")
	}
	if err := ro.Put(recs[0]); err != ErrReadOnly {
		t.Fatalf("read-only Put = %v, want ErrReadOnly", err)
	}
	if err := ro.Compact(); err != ErrReadOnly {
		t.Fatalf("read-only Compact = %v, want ErrReadOnly", err)
	}
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("read-only open modified the WAL")
	}

	// A writable open repairs the same damage on disk.
	rw := mustOpen(t, Options{Dir: dir})
	defer rw.Close()
	if !rw.Repair().Dirty() {
		t.Fatal("writable open missed the torn tail")
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store still damaged after writable reopen: %+v", rep)
	}
}

func appendBytes(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestPutAfterCloseAndPolicyParsing(t *testing.T) {
	st := mustOpen(t, Options{Dir: t.TempDir()})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(randRecords(1, 1)[0]); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	for _, c := range []struct {
		in   string
		want Policy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"never", FsyncNever}} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Fatalf("Policy(%v).String() = %q", got, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}
