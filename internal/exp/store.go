// Run-store wiring: content keys for scenarios and huge-mesh runs, and the
// conversions between live RunResults and stored runstore.Records. See
// DESIGN.md "Run store" and EXPERIMENTS.md "Resumable sweeps".
package exp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/telemetry"
	"repro/internal/traces"
)

// KeySchemaVersion is folded into every content key. Bump it whenever the
// key schema changes — a field added or removed, an encoding reordered, a
// new run input that affects results — so stale records can never be
// mistaken for the output of the new code. The bump procedure is:
//
//  1. increment KeySchemaVersion;
//  2. regenerate the pinned keys in TestScenarioKeyStability (run with
//     -run TestScenarioKeyStability -v and copy the reported values);
//  3. note the bump in DESIGN.md "Run store / key schema".
//
// Old records stay readable (the record format is versioned separately) but
// stop matching, so they are re-run and re-stored — exactly the safe
// behavior when the meaning of a key changes.
// Version history: 2 added HugeOptions.BufferBytes to the huge key.
const KeySchemaVersion = 2

// Store, when non-nil, records every completed cacheable run. StoreResume
// additionally serves runs whose key is already stored without simulating.
// Use AttachStore to set both.
var (
	Store       *runstore.Store
	StoreResume bool
)

// StoreCompact, when true, drops the per-flow time series from stored
// records, keeping only lifetime stats, the precomputed late-window mean,
// and (when the obs layer is attached) the streaming summary. At a million
// flows the series dominate record size by orders of magnitude; the
// fairness tables are written to fall back on FlowSummary.LateMeanBps and
// RunResult.Stream, so compact records stay fully usable.
var StoreCompact bool

// liveRuns counts actual simulator executions (cache hits excluded); the
// warm-store tests pin it to zero.
var liveRuns atomic.Int64

// AttachStore points the harness at a run store and exports its repair and
// occupancy figures on the telemetry registry (when a hub is live).
func AttachStore(st *runstore.Store, resume bool) {
	Store, StoreResume = st, resume
	hub := Telemetry
	if st == nil || !hub.Enabled() {
		return
	}
	rep := st.Repair()
	hub.Registry.Counter("runstore_repair_torn_bytes_total",
		"bytes dropped by run-store startup repair").Add(rep.DroppedTornBytes)
	if rep.Dirty() {
		hub.Registry.Counter("runstore_repairs_total",
			"run-store opens that needed startup repair").Inc()
	}
	hub.Registry.GaugeFunc("runstore_records",
		"distinct run records in the attached store",
		func() float64 { return float64(st.Len()) })
}

// storeCounter returns the named hub counter, or a nil (no-op) counter when
// telemetry is off.
func storeCounter(name, help string) *telemetry.Counter {
	if hub := Telemetry; hub.Enabled() {
		return hub.Registry.Counter(name, help)
	}
	return nil
}

// Key-buffer append helpers. The canonical key serialization is
// little-endian fixed-width fields with length-prefixed strings and
// explicit presence tags — unambiguous, so two different configurations can
// never serialize to the same buffer.
func keyU8(b []byte, v uint8) []byte   { return append(b, v) }
func keyU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func keyU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func keyI64(b []byte, v int64) []byte  { return keyU64(b, uint64(v)) }
func keyF64(b []byte, v float64) []byte {
	return keyU64(b, math.Float64bits(v))
}
func keyStr(b []byte, s string) []byte {
	b = keyU32(b, uint32(len(s)))
	return append(b, s...)
}
func keyBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// keyTrace fingerprints a capacity trace. Known concrete types serialize
// exactly; an unknown Trace implementation is fingerprinted by sampling its
// rate at 256 evenly spaced instants of the horizon, which is deterministic
// and captures any behavior a discrete-event run can observe at that
// resolution.
func keyTrace(b []byte, tr traces.Trace, horizon time.Duration) []byte {
	switch t := tr.(type) {
	case nil:
		return keyU8(b, 0)
	case traces.Constant:
		b = keyU8(b, 1)
		return keyF64(b, float64(t))
	case *traces.Step:
		b = keyU8(b, 2)
		b = keyU32(b, uint32(len(t.Points)))
		for _, p := range t.Points {
			b = keyI64(b, int64(p.At))
			b = keyF64(b, p.Rate)
		}
		return keyI64(b, int64(t.Loop))
	default:
		b = keyU8(b, 3)
		const samples = 256
		for i := 0; i < samples; i++ {
			b = keyF64(b, t.RateAt(horizon*time.Duration(i)/samples))
		}
		return b
	}
}

// ScenarioKey derives the content address of a scenario run: a hash over
// every input that determines the result — link configuration, trace,
// faults, flow specs, horizon, seed, the effective check and shard settings
// — plus KeySchemaVersion. The scenario Name is deliberately excluded (it
// labels, it does not simulate). A scenario using a FlowSpec.CC factory
// override is not cacheable (function identity cannot be fingerprinted) and
// reports ok = false.
func ScenarioKey(s Scenario) (key runstore.Key, ok bool) {
	for _, fs := range s.Flows {
		if fs.CC != nil {
			return key, false
		}
	}
	b := make([]byte, 0, 256)
	b = append(b, "jury-scenario"...)
	b = keyU32(b, KeySchemaVersion)
	b = keyF64(b, s.Rate)
	b = keyTrace(b, s.Trace, s.Horizon)
	b = keyI64(b, int64(s.OneWayDelay))
	b = keyI64(b, int64(s.BufferBytes))
	b = keyF64(b, s.LossRate)
	b = keyI64(b, int64(s.PacketSize))
	b = keyFaults(b, s)
	b = keyU32(b, uint32(len(s.Flows)))
	for _, fs := range s.Flows {
		b = keyStr(b, fs.Scheme)
		b = keyI64(b, int64(fs.Start))
		b = keyI64(b, int64(fs.Duration))
		b = keyI64(b, int64(fs.ExtraOneWay))
	}
	b = keyI64(b, int64(s.Horizon))
	b = keyU64(b, s.Seed)
	b = keyBool(b, s.Check || ForceCheck)
	b = keyU32(b, uint32(effectiveShards(s)))
	return runstore.KeyOf(b), true
}

func effectiveShards(s Scenario) int {
	if s.Shards != 0 {
		return s.Shards
	}
	return DefaultShards
}

func keyFaults(b []byte, s Scenario) []byte {
	c := s.Faults
	if !c.Enabled() {
		return keyU8(b, 0)
	}
	b = keyU8(b, 1)
	if c.GE == nil {
		b = keyU8(b, 0)
	} else {
		b = keyU8(b, 1)
		b = keyF64(b, c.GE.PGoodBad)
		b = keyF64(b, c.GE.PBadGood)
		b = keyF64(b, c.GE.LossGood)
		b = keyF64(b, c.GE.LossBad)
	}
	b = keyF64(b, c.ReorderProb)
	b = keyI64(b, int64(c.ReorderMaxDelay))
	b = keyF64(b, c.DupProb)
	b = keyF64(b, c.JitterProb)
	b = keyI64(b, int64(c.JitterMax))
	if c.Flap == nil {
		return keyU8(b, 0)
	}
	b = keyU8(b, 1)
	b = keyI64(b, int64(c.Flap.MeanUp))
	return keyI64(b, int64(c.Flap.MeanDown))
}

// HugeKey derives the content address of a RunHuge execution from its
// resolved options; ok is false when a custom CC factory makes the run
// uncacheable. Callers must pass options with defaults applied.
func HugeKey(o HugeOptions, customCC bool) (key runstore.Key, ok bool) {
	if customCC {
		return key, false
	}
	b := make([]byte, 0, 96)
	b = append(b, "jury-huge"...)
	b = keyU32(b, KeySchemaVersion)
	b = keyU32(b, uint32(o.Segments))
	b = keyU32(b, uint32(o.TotalFlows))
	b = keyF64(b, o.Rate)
	b = keyI64(b, int64(o.BufferBytes))
	b = keyI64(b, int64(o.Horizon))
	b = keyU32(b, uint32(o.Shards))
	b = keyU64(b, o.Seed)
	b = keyBool(b, o.Check || ForceCheck)
	return runstore.KeyOf(b), true
}

// recordFromResult converts a completed live run into its stored form.
func recordFromResult(key runstore.Key, s Scenario, r *RunResult) *runstore.Record {
	rec := &runstore.Record{
		Key:         key,
		Scenario:    s.Name,
		Schemes:     scenarioSchemes(s),
		Seed:        s.Seed,
		Horizon:     s.Horizon,
		Digest:      r.Digest,
		Checked:     r.Checked,
		Utilization: r.Utilization,
		FaultDrops:  r.LinkSummary.FaultDrops,
		Reordered:   r.LinkSummary.Reordered,
		Duplicated:  r.LinkSummary.Duplicated,
	}
	rec.Flows = make([]runstore.FlowRecord, 0, len(r.FlowSummaries))
	for _, f := range r.FlowSummaries {
		fr := runstore.FlowRecord{
			BaseRTT:     f.baseRTT,
			Stats:       f.stats,
			Degraded:    f.degraded,
			NonFinite:   f.nonFinite,
			LateMeanBps: f.lateMeanBps,
			Series:      f.series,
		}
		if StoreCompact {
			fr.Series = nil
		}
		rec.Flows = append(rec.Flows, fr)
	}
	rec.Stream = streamToRecord(r.Stream)
	return rec
}

// streamToRecord / streamFromRecord convert between the live obs summary and
// its stored mirror (field-for-field; the mirror exists so runstore never
// imports obs).
func streamToRecord(s *obs.StreamSummary) *runstore.StreamSummary {
	if s == nil {
		return nil
	}
	return &runstore.StreamSummary{
		FinalJain:     s.FinalJain,
		MinWindowJain: s.MinWindowJain,
		Snapshots:     s.Snapshots,
		Samples:       s.Samples,
		RateP50:       s.RateP50,
		RateP95:       s.RateP95,
		RateP99:       s.RateP99,
		RTTP50:        s.RTTP50,
		RTTP95:        s.RTTP95,
		RTTP99:        s.RTTP99,
		Drops:         s.Drops,
		Faults:        s.Faults,
		Degraded:      s.Degraded,
	}
}

func streamFromRecord(s *runstore.StreamSummary) *obs.StreamSummary {
	if s == nil {
		return nil
	}
	return &obs.StreamSummary{
		FinalJain:     s.FinalJain,
		MinWindowJain: s.MinWindowJain,
		Snapshots:     s.Snapshots,
		Samples:       s.Samples,
		RateP50:       s.RateP50,
		RateP95:       s.RateP95,
		RateP99:       s.RateP99,
		RTTP50:        s.RTTP50,
		RTTP95:        s.RTTP95,
		RTTP99:        s.RTTP99,
		Drops:         s.Drops,
		Faults:        s.Faults,
		Degraded:      s.Degraded,
	}
}

// scenarioSchemes lists the distinct schemes of a scenario in flow order.
func scenarioSchemes(s Scenario) []string {
	seen := make(map[string]bool, len(s.Flows))
	var out []string
	for _, fs := range s.Flows {
		if !seen[fs.Scheme] {
			seen[fs.Scheme] = true
			out = append(out, fs.Scheme)
		}
	}
	return out
}

// resultFromRecord reconstructs the consumer-facing view of a stored run.
func resultFromRecord(s Scenario, rec *runstore.Record) *RunResult {
	r := &RunResult{
		Scenario:    s,
		Utilization: rec.Utilization,
		Digest:      rec.Digest,
		Checked:     rec.Checked,
		Cached:      true,
		LinkSummary: LinkSummary{
			FaultDrops: rec.FaultDrops,
			Reordered:  rec.Reordered,
			Duplicated: rec.Duplicated,
		},
	}
	r.FlowSummaries = make([]*FlowSummary, 0, len(rec.Flows))
	for i := range rec.Flows {
		f := &rec.Flows[i]
		r.FlowSummaries = append(r.FlowSummaries, &FlowSummary{
			name:        f.Stats.Name,
			baseRTT:     f.BaseRTT,
			stats:       f.Stats,
			series:      f.Series,
			degraded:    f.Degraded,
			nonFinite:   f.NonFinite,
			lateMeanBps: f.LateMeanBps,
		})
	}
	r.Stream = streamFromRecord(rec.Stream)
	return r
}

// hugeRecord converts a completed RunHuge into its stored form.
func hugeRecord(key runstore.Key, o HugeOptions, res *HugeResult) *runstore.Record {
	return &runstore.Record{
		Key:           key,
		Scenario:      fmt.Sprintf("huge-%dseg-%dflows", o.Segments, o.TotalFlows),
		Schemes:       []string{"cubic"},
		Seed:          o.Seed,
		Horizon:       o.Horizon,
		Digest:        res.Digest,
		Checked:       res.Digest != 0,
		Events:        res.Events,
		ShardExecuted: append([]int64(nil), res.ExecutedPerShard...),
		Stream:        streamToRecord(res.Stream),
	}
}

// hugeFromRecord reconstructs a HugeResult from a stored record; the
// topology echo fields come from the resolved options (they are key
// inputs, so they necessarily match the stored run's).
func hugeFromRecord(o HugeOptions, rec *runstore.Record) *HugeResult {
	return &HugeResult{
		FlowCount:        o.TotalFlows,
		Segments:         o.Segments,
		ShardCount:       len(rec.ShardExecuted),
		Events:           rec.Events,
		ExecutedPerShard: append([]int64(nil), rec.ShardExecuted...),
		Digest:           rec.Digest,
		Stream:           streamFromRecord(rec.Stream),
	}
}
