package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestSketchQuantileAccuracy pins the relative error bound of the
// log-bucketed sketch against exact nearest-rank quantiles over a
// log-uniform sample.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s sketch
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := math.Pow(10, rng.Float64()*8-2) // 1e-2 .. 1e6
		xs = append(xs, v)
		s.observe(v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.01, 0.5, 0.9, 0.95, 0.99} {
		exact := xs[int(q*float64(len(xs)-1))]
		got := s.quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.07 {
			t.Errorf("q=%v: sketch %v vs exact %v (rel err %.3f > 0.07)", q, got, exact, rel)
		}
	}
}

// TestSketchZeroAndClamp covers the zero bucket and out-of-range clamping.
func TestSketchZeroAndClamp(t *testing.T) {
	var s sketch
	for _, v := range []float64{0, -1, math.NaN()} {
		s.observe(v)
	}
	if s.zero != 3 || s.n != 3 {
		t.Fatalf("zero bucket %d / n %d, want 3/3", s.zero, s.n)
	}
	if got := s.quantile(0.5); got != 0 {
		t.Errorf("all-zero median %v, want 0", got)
	}
	s.observe(1e300) // above range: clamps into the top bucket, no panic
	s.observe(1e-300)
	if got := s.quantile(1); got <= 0 {
		t.Errorf("max quantile %v after clamped observe", got)
	}
}

// TestSketchMerge checks merge equals observing the union.
func TestSketchMerge(t *testing.T) {
	var a, b, u sketch
	for i := 1; i <= 1000; i++ {
		v := float64(i)
		if i%2 == 0 {
			a.observe(v)
		} else {
			b.observe(v)
		}
		u.observe(v)
	}
	a.merge(&b)
	if a.n != u.n || a.zero != u.zero {
		t.Fatalf("merged n=%d zero=%d, want %d/%d", a.n, a.zero, u.n, u.zero)
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if got, want := a.quantile(q), u.quantile(q); got != want {
			t.Errorf("q=%v: merged %v != union %v", q, got, want)
		}
	}
}

// TestSketchObserveAllocs pins the zero-allocation hot path.
func TestSketchObserveAllocs(t *testing.T) {
	var s sketch
	if allocs := testing.AllocsPerRun(1000, func() { s.observe(123.4) }); allocs != 0 {
		t.Errorf("observe allocates %.1f per op", allocs)
	}
}
