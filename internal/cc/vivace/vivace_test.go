package vivace

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
)

func TestUtilityShape(t *testing.T) {
	// More throughput is better, all else equal.
	if Utility(10, 0, 0) <= Utility(5, 0, 0) {
		t.Fatal("utility not increasing in throughput")
	}
	// Latency growth and loss are penalized.
	if Utility(10, 0.1, 0) >= Utility(10, 0, 0) {
		t.Fatal("latency gradient not penalized")
	}
	if Utility(10, 0, 0.05) >= Utility(10, 0, 0) {
		t.Fatal("loss not penalized")
	}
	// Concavity (diminishing returns): the Vivace fairness argument rests
	// on the throughput term being strictly concave.
	d1 := Utility(11, 0, 0) - Utility(10, 0, 0)
	d2 := Utility(101, 0, 0) - Utility(100, 0, 0)
	if d2 >= d1 {
		t.Fatal("throughput term not concave")
	}
	if Utility(0, 0, 0) != 0 {
		t.Fatal("zero throughput utility not 0")
	}
}

// tickStats builds one 10ms tick worth of stats for a delivery rate.
func tickStats(now time.Duration, rate float64, rtt time.Duration, lost int64) cc.IntervalStats {
	bytes := int64(rate / 8 * 0.010)
	return cc.IntervalStats{
		Now:          now,
		Interval:     tick,
		AckedBytes:   bytes,
		AckedPackets: bytes / 1500,
		LostPackets:  lost,
		AvgRTT:       rtt,
		MinRTT:       rtt,
		FlowMinRTT:   rtt,
	}
}

// runMIs drives the controller through wall-clock dur where the network
// delivers min(sendRate, capacity) with RTT inflation when overloaded.
func runMIs(v *Vivace, start, dur time.Duration, capacity float64, baseRTT time.Duration) time.Duration {
	now := start
	for ; now < start+dur; now += tick {
		sendRate := v.PacingRate()
		delivered := math.Min(sendRate, capacity)
		rtt := baseRTT
		var lost int64
		if sendRate > capacity {
			over := (sendRate - capacity) / capacity
			rtt = baseRTT + time.Duration(over*float64(20*time.Millisecond))
			lost = int64(over * 10)
		}
		// Feed an RTT sample so the MI length tracks srtt.
		v.OnAck(cc.Ack{Now: now, SentAt: now - rtt, RTT: rtt, Bytes: 1500})
		v.OnInterval(tickStats(now, delivered, rtt, lost))
	}
	return now
}

func TestStartingPhaseDoublesRate(t *testing.T) {
	v := New(1)
	v.Init(0)
	r0 := v.Rate()
	// Huge capacity: utility keeps rising, rate keeps doubling.
	runMIs(v, tick, 2*time.Second, 1e9, 30*time.Millisecond)
	if v.Rate() < 8*r0 {
		t.Fatalf("starting phase grew %v -> %v, want ≥8x", r0, v.Rate())
	}
}

func TestConvergesNearCapacity(t *testing.T) {
	v := New(2)
	v.Init(0)
	runMIs(v, tick, 30*time.Second, 50e6, 30*time.Millisecond)
	r := v.Rate()
	if r < 30e6 || r > 70e6 {
		t.Fatalf("rate %v after 30s on a 50 Mbps link", r)
	}
}

func TestProbingAlternatesAroundBaseRate(t *testing.T) {
	v := New(3)
	v.Init(0)
	now := runMIs(v, tick, 10*time.Second, 20e6, 30*time.Millisecond)
	if v.ph == phaseStarting {
		t.Fatal("still in STARTING after 10s of congestion feedback")
	}
	// Collect enforced rates over a few MIs: they must straddle the base.
	seenAbove, seenBelow := false, false
	for i := 0; i < 40; i++ {
		base := v.Rate()
		if v.PacingRate() > base {
			seenAbove = true
		}
		if v.PacingRate() < base {
			seenBelow = true
		}
		now = runMIs(v, now, 100*time.Millisecond, 20e6, 30*time.Millisecond)
	}
	if !seenAbove || !seenBelow {
		t.Fatalf("probing did not perturb in both directions (above=%v below=%v)", seenAbove, seenBelow)
	}
}

func TestRateFloor(t *testing.T) {
	v := New(4)
	v.Init(0)
	// Pathological feedback: everything lost.
	now := tick
	for i := 0; i < 3000; i++ {
		v.OnAck(cc.Ack{Now: now, SentAt: now - 100*time.Millisecond, RTT: 100 * time.Millisecond, Bytes: 1500})
		v.OnInterval(cc.IntervalStats{Now: now, Interval: tick, LostPackets: 20, AvgRTT: 100 * time.Millisecond})
		now += tick
	}
	if v.Rate() < minRate {
		t.Fatalf("rate %v fell below floor %v", v.Rate(), float64(minRate))
	}
}

func TestMILengthTracksRTT(t *testing.T) {
	v := New(5)
	v.Init(0)
	runMIs(v, tick, time.Second, 1e9, 200*time.Millisecond)
	if v.miLen < 150*time.Millisecond {
		t.Fatalf("MI length %v does not track the 200ms RTT", v.miLen)
	}
}

func TestVivaceIdentity(t *testing.T) {
	v := New(0)
	if v.Name() != "vivace" {
		t.Fatal("name wrong")
	}
	if v.ControlInterval() != tick {
		t.Fatal("control interval wrong")
	}
	if v.CWND() < 10 {
		t.Fatal("cwnd floor missing")
	}
}
