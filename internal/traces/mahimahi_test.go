package traces

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestParseMahimahiConstantRate(t *testing.T) {
	// One delivery per millisecond = 1500 B/ms = 12 Mbit/s.
	var b strings.Builder
	for ms := 0; ms < 1000; ms++ {
		b.WriteString(strconv.Itoa(ms) + "\n")
	}
	tr, err := ParseMahimahi(strings.NewReader(b.String()), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for at := time.Duration(0); at < time.Second; at += 50 * time.Millisecond {
		if r := tr.RateAt(at); math.Abs(r-12e6)/12e6 > 0.01 {
			t.Fatalf("rate %v at %v, want 12e6", r, at)
		}
	}
	// Looping: beyond the span it repeats.
	if r := tr.RateAt(1500 * time.Millisecond); math.Abs(r-12e6)/12e6 > 0.01 {
		t.Fatalf("looped rate %v", r)
	}
}

func TestParseMahimahiStepChange(t *testing.T) {
	// First 500 ms: 2 deliveries/ms (24 Mbps); next 500 ms: none (0 Mbps
	// apart from the final-bucket artifact).
	var b strings.Builder
	for ms := 0; ms < 500; ms++ {
		b.WriteString(strconv.Itoa(ms) + "\n" + strconv.Itoa(ms) + "\n")
	}
	b.WriteString("999\n") // keep the span at 1 s
	tr, err := ParseMahimahi(strings.NewReader(b.String()), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r := tr.RateAt(200 * time.Millisecond); math.Abs(r-24e6)/24e6 > 0.01 {
		t.Fatalf("busy-half rate %v", r)
	}
	if r := tr.RateAt(700 * time.Millisecond); r > 1e6 {
		t.Fatalf("idle-half rate %v", r)
	}
}

func TestParseMahimahiRejectsGarbage(t *testing.T) {
	cases := []string{
		"",        // empty
		"abc\n",   // not a number
		"-5\n",    // negative
		"10\n5\n", // unsorted
	}
	for i, c := range cases {
		if _, err := ParseMahimahi(strings.NewReader(c), 0); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestParseMahimahiSkipsCommentsAndBlanks(t *testing.T) {
	in := "# verizon downlink\n\n0\n1\n2\n"
	if _, err := ParseMahimahi(strings.NewReader(in), 0); err != nil {
		t.Fatal(err)
	}
}

func TestMahimahiRoundTrip(t *testing.T) {
	// Synthesize an LTE trace, export to Mahimahi, re-import: mean rates
	// must agree within quantization error.
	orig, err := SynthesizeLTE(DefaultLTE(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMahimahi(&buf, orig, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	back, err := ParseMahimahi(&buf, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	origMean := MeanRate(orig, 10*time.Second, 100*time.Millisecond)
	backMean := MeanRate(back, 10*time.Second, 100*time.Millisecond)
	if math.Abs(origMean-backMean)/origMean > 0.05 {
		t.Fatalf("round-trip mean %v vs original %v", backMean, origMean)
	}
}

func TestWriteMahimahiRejectsBadSpan(t *testing.T) {
	if err := WriteMahimahi(&bytes.Buffer{}, Constant(1e6), 0); err == nil {
		t.Fatal("zero span accepted")
	}
}
