// LTE responsiveness (the paper's Fig. 12 scenario): a synthetic cellular
// trace fluctuates between 1 and 15 Mbit/s every half second; a responsive
// controller must track the capacity up and down. Jury's interval-based
// control follows the swings, while Vivace's multi-RTT monitor intervals
// and Aurora's out-of-domain inputs lag behind.
package main

import (
	"fmt"
	"time"

	"repro/internal/exp"
)

func main() {
	rows, err := exp.Fig12LTEResponsiveness(exp.Fig12Options{
		Schemes: []string{"jury", "aurora", "vivace"},
		Seed:    3,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("sending rate vs. LTE capacity (Mbps):")
	fmt.Println("t(s)  capacity     jury   aurora   vivace")
	rates := map[string]map[time.Duration]float64{}
	var order []time.Duration
	for _, r := range rows {
		if rates[r.Scheme] == nil {
			rates[r.Scheme] = map[time.Duration]float64{}
		}
		rates[r.Scheme][r.T] = r.SendRateBps
		if r.Scheme == "capacity" {
			order = append(order, r.T)
		}
	}
	for _, t := range order {
		fmt.Printf("%4d  %8.2f %8.2f %8.2f %8.2f\n",
			int(t.Seconds()),
			rates["capacity"][t]/1e6,
			rates["jury"][t]/1e6,
			rates["aurora"][t]/1e6,
			rates["vivace"][t]/1e6)
	}

	fmt.Println("\ncapacity tracking (mean min(rate,cap)/cap; 1.0 = perfect):")
	for _, scheme := range []string{"jury", "aurora", "vivace"} {
		fmt.Printf("  %-7s %.3f\n", scheme, exp.Fig12Tracking(rows, scheme))
	}
}
