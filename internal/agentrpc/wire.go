package agentrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// This file isolates the wire framing (request: u32 count | count × f64
// state) into pure encode/decode helpers shared by the client and server —
// and, because they take no sockets, directly fuzzable.

// errOversizedFrame reports a request whose count exceeds maxStateDim; the
// server drops the connection on it rather than allocating attacker-chosen
// amounts of memory.
var errOversizedFrame = errors.New("agentrpc: request frame exceeds maxStateDim")

// appendRequest appends the wire encoding of one request frame to dst and
// returns the extended slice. An empty state encodes a ping.
func appendRequest(dst []byte, state []float64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(state)))
	for _, v := range state {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// requestReader decodes request frames from a byte stream, reusing its
// scratch buffers across frames (the server keeps one per connection).
type requestReader struct {
	r   io.Reader
	hdr [4]byte
	raw []byte
	buf []float64
}

func newRequestReader(r io.Reader) *requestReader {
	return &requestReader{r: r, raw: make([]byte, 0, 64*8), buf: make([]float64, 0, 64)}
}

// next reads one frame. It returns ping=true for a zero-count frame, or a
// state slice valid until the following call. Errors are io errors from the
// underlying reader or errOversizedFrame for a count above maxStateDim.
func (d *requestReader) next() (state []float64, ping bool, err error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return nil, false, err
	}
	count := binary.LittleEndian.Uint32(d.hdr[:])
	if count > maxStateDim {
		return nil, false, fmt.Errorf("%w: count %d", errOversizedFrame, count)
	}
	if count == 0 {
		return nil, true, nil
	}
	need := int(count) * 8
	if cap(d.raw) < need {
		d.raw = make([]byte, need)
	}
	d.raw = d.raw[:need]
	if _, err := io.ReadFull(d.r, d.raw); err != nil {
		return nil, false, err
	}
	d.buf = d.buf[:0]
	for i := 0; i < int(count); i++ {
		d.buf = append(d.buf, math.Float64frombits(binary.LittleEndian.Uint64(d.raw[i*8:])))
	}
	return d.buf, false, nil
}
