package rl

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/simcore"
)

// Config parameterizes a TD3 agent. Zero fields take the defaults of
// DefaultConfig, which mirror the paper's Table 2.
type Config struct {
	StateDim  int
	ActionDim int
	Hidden    []int // hidden layer widths (paper: two 128-wide layers)

	ActorLR  float64 // σ in the paper: 5e-4
	CriticLR float64 // η in the paper: 1e-3
	Gamma    float64 // discount: 0.98
	Tau      float64 // soft target update rate
	Batch    int     // 64

	// TD3 additions (§3.5): delayed policy updates, target policy
	// smoothing, clipped double-Q is always on.
	PolicyDelay int
	TargetNoise float64
	NoiseClip   float64

	GradClip float64
	Seed     uint64
}

// DefaultConfig returns the paper's hyperparameters (Table 2) for the given
// state/action dimensions.
func DefaultConfig(stateDim, actionDim int) Config {
	return Config{
		StateDim:    stateDim,
		ActionDim:   actionDim,
		Hidden:      []int{128, 128},
		ActorLR:     5e-4,
		CriticLR:    1e-3,
		Gamma:       0.98,
		Tau:         0.005,
		Batch:       64,
		PolicyDelay: 2,
		TargetNoise: 0.2,
		NoiseClip:   0.5,
		GradClip:    10,
		Seed:        1,
	}
}

// TD3 is a deterministic-policy actor-critic agent with clipped double
// Q-learning, delayed policy updates, and target policy smoothing.
type TD3 struct {
	cfg Config
	rng *simcore.RNG

	Actor       *nn.MLP
	actorTarget *nn.MLP
	critic1     *nn.MLP
	critic2     *nn.MLP
	c1Target    *nn.MLP
	c2Target    *nn.MLP

	actorOpt *nn.Adam
	c1Opt    *nn.Adam
	c2Opt    *nn.Adam

	actorGrads *nn.Grads
	c1Grads    *nn.Grads
	c2Grads    *nn.Grads

	// Reusable buffers for Update's per-transition inner loops (scratch
	// forward/backward buffers, traces, state++action concatenation), so a
	// training step allocates nothing in steady state.
	criticScratch *nn.Scratch
	actorScratch  *nn.Scratch
	discardGrads  *nn.Grads // critic grads discarded during the actor update
	c1Trace       *nn.Trace
	c2Trace       *nn.Trace
	actorTrace    *nn.Trace
	saBuf         []float64
	dOutBuf       []float64

	updates        int
	skippedUpdates int64
	batch          []Transition
}

// SkippedUpdates counts optimizer steps discarded because the batch produced
// non-finite gradients (e.g. a NaN reward that slipped into the replay
// buffer). Skipping keeps one poisoned transition from destroying the
// weights; the soft target updates still run, so training continues.
func (t *TD3) SkippedUpdates() int64 { return t.skippedUpdates }

// NewTD3 builds an agent. The actor ends in tanh (actions in [-1,1]^d); the
// critics map (state ++ action) to a scalar value.
func NewTD3(cfg Config) *TD3 {
	if cfg.StateDim <= 0 || cfg.ActionDim <= 0 {
		panic(fmt.Sprintf("rl: bad dims %d/%d", cfg.StateDim, cfg.ActionDim))
	}
	def := DefaultConfig(cfg.StateDim, cfg.ActionDim)
	if cfg.Hidden == nil {
		cfg.Hidden = def.Hidden
	}
	if cfg.ActorLR == 0 {
		cfg.ActorLR = def.ActorLR
	}
	if cfg.CriticLR == 0 {
		cfg.CriticLR = def.CriticLR
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = def.Gamma
	}
	if cfg.Tau == 0 {
		cfg.Tau = def.Tau
	}
	if cfg.Batch == 0 {
		cfg.Batch = def.Batch
	}
	if cfg.PolicyDelay == 0 {
		cfg.PolicyDelay = def.PolicyDelay
	}
	if cfg.TargetNoise == 0 {
		cfg.TargetNoise = def.TargetNoise
	}
	if cfg.NoiseClip == 0 {
		cfg.NoiseClip = def.NoiseClip
	}
	if cfg.GradClip == 0 {
		cfg.GradClip = def.GradClip
	}

	rng := simcore.NewRNG(cfg.Seed)
	actorSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	actorSizes = append(actorSizes, cfg.ActionDim)
	actorActs := make([]nn.Activation, len(actorSizes)-1)
	for i := range actorActs {
		actorActs[i] = nn.ReLU
	}
	actorActs[len(actorActs)-1] = nn.Tanh

	criticSizes := append([]int{cfg.StateDim + cfg.ActionDim}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)
	criticActs := make([]nn.Activation, len(criticSizes)-1)
	for i := range criticActs {
		criticActs[i] = nn.ReLU
	}
	criticActs[len(criticActs)-1] = nn.Linear

	t := &TD3{
		cfg:     cfg,
		rng:     rng,
		Actor:   nn.NewMLP(rng.Split(1), actorSizes, actorActs),
		critic1: nn.NewMLP(rng.Split(2), criticSizes, criticActs),
		critic2: nn.NewMLP(rng.Split(3), criticSizes, criticActs),
	}
	t.actorTarget = t.Actor.Clone()
	t.c1Target = t.critic1.Clone()
	t.c2Target = t.critic2.Clone()
	t.actorOpt = nn.NewAdam(t.Actor, cfg.ActorLR)
	t.c1Opt = nn.NewAdam(t.critic1, cfg.CriticLR)
	t.c2Opt = nn.NewAdam(t.critic2, cfg.CriticLR)
	t.actorGrads = nn.NewGrads(t.Actor)
	t.c1Grads = nn.NewGrads(t.critic1)
	t.c2Grads = nn.NewGrads(t.critic2)
	t.criticScratch = nn.NewScratch(t.critic1)
	t.actorScratch = nn.NewScratch(t.Actor)
	t.discardGrads = nn.NewGrads(t.critic1)
	t.c1Trace = nn.NewTrace(t.critic1)
	t.c2Trace = nn.NewTrace(t.critic2)
	t.actorTrace = nn.NewTrace(t.Actor)
	t.saBuf = make([]float64, 0, cfg.StateDim+cfg.ActionDim)
	t.dOutBuf = make([]float64, 1)
	return t
}

// Act returns the deterministic policy action for state, plus Gaussian
// exploration noise of the given standard deviation, clipped to [-1, 1].
func (t *TD3) Act(state []float64, noiseStd float64) []float64 {
	a := t.Actor.Forward(state)
	for i := range a {
		if noiseStd > 0 {
			a[i] += t.rng.Norm(0, noiseStd)
		}
		a[i] = clip(a[i], -1, 1)
	}
	return a
}

func clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Q1 evaluates the first critic (exposed for tests and diagnostics).
func (t *TD3) Q1(state, action []float64) float64 {
	return t.critic1.Forward(concat(state, action))[0]
}

func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// concatInto writes a followed by b into dst[:0], growing dst only if its
// capacity is too small.
func concatInto(dst, a, b []float64) []float64 {
	dst = append(dst[:0], a...)
	return append(dst, b...)
}

// Update performs one TD3 training step on a batch sampled from buf and
// returns the mean critic TD error (diagnostic). Every PolicyDelay-th call
// also updates the actor and the target networks.
func (t *TD3) Update(buf *ReplayBuffer) float64 {
	if buf.Len() < t.cfg.Batch {
		return 0
	}
	t.batch = buf.Sample(t.rng, t.cfg.Batch, t.batch)
	batch := t.batch

	t.c1Grads.Zero()
	t.c2Grads.Zero()
	var tdErr float64
	for _, tr := range batch {
		// Target action with smoothing noise (TD3 trick #3). aT lives in the
		// actor scratch; it is consumed by the concat below.
		aT := t.actorTarget.ForwardInto(tr.NextState, t.actorScratch)
		for i := range aT {
			noise := clip(t.rng.Norm(0, t.cfg.TargetNoise), -t.cfg.NoiseClip, t.cfg.NoiseClip)
			aT[i] = clip(aT[i]+noise, -1, 1)
		}
		// Clipped double-Q target (TD3 trick #1).
		t.saBuf = concatInto(t.saBuf, tr.NextState, aT)
		q1T := t.c1Target.ForwardInto(t.saBuf, t.criticScratch)[0]
		q2T := t.c2Target.ForwardInto(t.saBuf, t.criticScratch)[0]
		y := tr.Reward
		if !tr.Done {
			y += t.cfg.Gamma * math.Min(q1T, q2T)
		}

		t.saBuf = concatInto(t.saBuf, tr.State, tr.Action)
		tr1 := t.critic1.ForwardTraceInto(t.saBuf, t.c1Trace)
		tr2 := t.critic2.ForwardTraceInto(t.saBuf, t.c2Trace)
		e1 := tr1.Output()[0] - y
		e2 := tr2.Output()[0] - y
		tdErr += math.Abs(e1)
		t.dOutBuf[0] = 2 * e1
		t.critic1.BackwardInto(tr1, t.dOutBuf, t.c1Grads, t.criticScratch)
		t.dOutBuf[0] = 2 * e2
		t.critic2.BackwardInto(tr2, t.dOutBuf, t.c2Grads, t.criticScratch)
	}
	inv := 1 / float64(len(batch))
	t.c1Grads.Scale(inv)
	t.c2Grads.Scale(inv)
	t.c1Grads.ClipNorm(t.cfg.GradClip)
	t.c2Grads.ClipNorm(t.cfg.GradClip)
	if t.c1Grads.AllFinite() && t.c2Grads.AllFinite() {
		t.c1Opt.Step(t.critic1, t.c1Grads)
		t.c2Opt.Step(t.critic2, t.c2Grads)
	} else {
		t.skippedUpdates++
		tdErr = 0 // the TD error of a poisoned batch is meaningless
	}

	t.updates++
	if t.updates%t.cfg.PolicyDelay == 0 { // delayed policy update (TD3 trick #2)
		t.actorGrads.Zero()
		t.discardGrads.Zero() // critic grads discarded; only dIn matters
		for _, tr := range batch {
			actTr := t.Actor.ForwardTraceInto(tr.State, t.actorTrace)
			a := actTr.Output()
			t.saBuf = concatInto(t.saBuf, tr.State, a)
			cTr := t.critic1.ForwardTraceInto(t.saBuf, t.c1Trace)
			// Maximize Q: dLoss/dQ = -1; get dQ/d(state++action), keep the
			// action slice, push through the actor. dIn aliases the critic
			// scratch; the actor backward uses its own scratch, so slicing
			// dAction out of it is safe.
			t.dOutBuf[0] = -1
			dIn := t.critic1.BackwardInto(cTr, t.dOutBuf, t.discardGrads, t.criticScratch)
			dAction := dIn[len(tr.State):]
			t.Actor.BackwardInto(actTr, dAction, t.actorGrads, t.actorScratch)
		}
		t.actorGrads.Scale(inv)
		t.actorGrads.ClipNorm(t.cfg.GradClip)
		if t.actorGrads.AllFinite() {
			t.actorOpt.Step(t.Actor, t.actorGrads)
		} else {
			t.skippedUpdates++
		}

		nn.SoftUpdate(t.actorTarget, t.Actor, t.cfg.Tau)
		nn.SoftUpdate(t.c1Target, t.critic1, t.cfg.Tau)
		nn.SoftUpdate(t.c2Target, t.critic2, t.cfg.Tau)
	}
	return tdErr * inv
}
