package agentrpc

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/simcheck"
)

// runParitySim runs the canonical two-flow shared-bottleneck scenario with
// each flow's Jury controller driven by the supplied policy factory, and
// returns the simulation's event digest.
func runParitySim(t *testing.T, mkPolicy func(flow int) core.Policy) uint64 {
	t.Helper()
	n := netsim.New(netsim.Config{Seed: 11})
	l := n.AddLink(netsim.LinkConfig{Rate: 30e6, Delay: 15 * time.Millisecond, BufferBytes: 225_000})
	for i := 0; i < 2; i++ {
		i := i
		cfg := core.DefaultConfig()
		cfg.Seed = uint64(100 + i)
		n.AddFlow(netsim.FlowConfig{
			Name: []string{"a", "b"}[i], Path: []*netsim.Link{l},
			CC: func() cc.Algorithm { return core.New(cfg, mkPolicy(i)) },
		})
	}
	ck := simcheck.Attach(n)
	n.Run(20 * time.Second)
	if vs := ck.Finish(); len(vs) > 0 {
		t.Fatalf("invariant violations: %v", vs)
	}
	return ck.Digest()
}

// TestDigestParityAgainstDaemon: a simulation whose decisions come from a
// healthy daemon must be bit-for-bit identical to the in-process run. The
// wire carries raw f64 bits and the per-request serving path runs the exact
// same code, so the digests — which hash every packet event — must match.
// This is the end-to-end proof that the serving layer adds fault tolerance
// without perturbing a single decision.
func TestDigestParityAgainstDaemon(t *testing.T) {
	local := runParitySim(t, func(int) core.Policy { return core.NewReferencePolicy() })

	srv, err := Serve("127.0.0.1:0", core.NewReferencePolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clients := make([]*Client, 0, 2)
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	remote := runParitySim(t, func(flow int) core.Policy {
		// Generous timeout: simulated time is decoupled from wall time, so a
		// scheduler hiccup must not push a healthy decision onto the fallback.
		cl, err := DialConfig(srv.Addr(), core.AIMDPolicy{}, ClientConfig{
			Timeout: 10 * time.Second,
			Tenant:  []string{"flow-a", "flow-b"}[flow],
		})
		if err != nil {
			t.Fatalf("dial for flow %d: %v", flow, err)
		}
		clients = append(clients, cl)
		return cl
	})

	var fallbacks int64
	for _, cl := range clients {
		fallbacks += cl.FallbackDecisions()
	}
	if fallbacks != 0 {
		t.Fatalf("%d decisions fell back against a healthy daemon", fallbacks)
	}
	if remote != local {
		t.Fatalf("digest mismatch: daemon-driven %016x != in-process %016x", remote, local)
	}
	if srv.Decisions() == 0 {
		t.Fatal("daemon served no decisions")
	}
	// Multi-tenancy rides along: both flows are accounted separately.
	if srv.TenantDecisions("flow-a") == 0 || srv.TenantDecisions("flow-b") == 0 {
		t.Fatalf("per-tenant accounting empty: a=%d b=%d",
			srv.TenantDecisions("flow-a"), srv.TenantDecisions("flow-b"))
	}
}
