// Package nn is a small dense neural-network library built for the TD3/DDPG
// training stack in internal/rl: multilayer perceptrons with ReLU/tanh/
// sigmoid activations, reverse-mode gradients (including input gradients,
// which actor-critic updates need), Adam, soft target updates, and JSON
// serialization. Everything is deterministic given a seeded RNG.
package nn

import (
	"fmt"
	"math"

	"repro/internal/simcore"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Tanh
	Sigmoid
)

func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// apply computes the activation elementwise in place.
func (a Activation) apply(v []float64) {
	switch a {
	case ReLU:
		for i, x := range v {
			if x < 0 {
				v[i] = 0
			}
		}
	case Tanh:
		for i, x := range v {
			v[i] = math.Tanh(x)
		}
	case Sigmoid:
		for i, x := range v {
			v[i] = 1 / (1 + math.Exp(-x))
		}
	}
}

// derivFromOutput returns dact/dz given the activated output y (all our
// activations admit that form, which avoids caching z).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Dense is one fully connected layer: y = act(W·x + b), with W stored
// row-major (Out rows of In columns).
type Dense struct {
	In, Out int
	W       []float64
	B       []float64
	Act     Activation
}

// MLP is a feed-forward stack of Dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes and per-layer activations
// (len(acts) must equal len(sizes)-1). Weights use Xavier/He-style fan-in
// scaled initialization from the provided RNG.
func NewMLP(rng *simcore.RNG, sizes []int, acts []Activation) *MLP {
	if len(sizes) < 2 || len(acts) != len(sizes)-1 {
		panic(fmt.Sprintf("nn: bad MLP shape sizes=%v acts=%v", sizes, acts))
	}
	m := &MLP{}
	for i := 0; i < len(sizes)-1; i++ {
		in, out := sizes[i], sizes[i+1]
		l := &Dense{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out), Act: acts[i]}
		scale := math.Sqrt(2 / float64(in)) // He init (good for ReLU, fine for tanh heads)
		if acts[i] == Tanh || acts[i] == Sigmoid || acts[i] == Linear {
			scale = math.Sqrt(1 / float64(in)) // Xavier-ish for saturating heads
		}
		for j := range l.W {
			l.W[j] = rng.NormFloat64() * scale
		}
		m.Layers = append(m.Layers, l)
	}
	return m
}

// InputDim reports the expected input width.
func (m *MLP) InputDim() int { return m.Layers[0].In }

// OutputDim reports the output width.
func (m *MLP) OutputDim() int { return m.Layers[len(m.Layers)-1].Out }

// Forward runs inference, allocating the output.
func (m *MLP) Forward(x []float64) []float64 {
	cur := x
	for _, l := range m.Layers {
		next := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			sum := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, xi := range cur {
				sum += row[i] * xi
			}
			next[o] = sum
		}
		l.Act.apply(next)
		cur = next
	}
	return cur
}

// Scratch holds reusable ping-pong buffers for ForwardInto and BackwardInto,
// sized to the widest layer of the MLP it was built for. A Scratch is not
// safe for concurrent use; give each goroutine its own.
type Scratch struct {
	a, b []float64
}

// NewScratch allocates scratch buffers wide enough for every layer of m.
func NewScratch(m *MLP) *Scratch {
	w := m.Layers[0].In
	for _, l := range m.Layers {
		if l.In > w {
			w = l.In
		}
		if l.Out > w {
			w = l.Out
		}
	}
	return &Scratch{a: make([]float64, w), b: make([]float64, w)}
}

// ForwardInto runs inference using s's buffers instead of allocating. The
// returned slice aliases the scratch and is valid only until the next
// ForwardInto/BackwardInto call with the same Scratch.
func (m *MLP) ForwardInto(x []float64, s *Scratch) []float64 {
	cur := x
	useA := true
	for _, l := range m.Layers {
		next := s.b[:l.Out]
		if useA {
			next = s.a[:l.Out]
		}
		useA = !useA
		for o := 0; o < l.Out; o++ {
			sum := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, xi := range cur {
				sum += row[i] * xi
			}
			next[o] = sum
		}
		l.Act.apply(next)
		cur = next
	}
	return cur
}

// Trace caches the per-layer activations of one forward pass so Backward
// can run. acts[0] is the input; acts[i+1] is layer i's output.
type Trace struct {
	acts [][]float64
}

// Output returns the network output of the traced pass.
func (t *Trace) Output() []float64 { return t.acts[len(t.acts)-1] }

// NewTrace allocates a reusable Trace shaped for m (see ForwardTraceInto).
func NewTrace(m *MLP) *Trace {
	tr := &Trace{acts: make([][]float64, len(m.Layers)+1)}
	tr.acts[0] = make([]float64, m.Layers[0].In)
	for i, l := range m.Layers {
		tr.acts[i+1] = make([]float64, l.Out)
	}
	return tr
}

// ForwardTraceInto runs inference recording activations into tr, which must
// have been built by NewTrace for an MLP of m's shape. The input is copied
// into tr's own buffer, so tr never aliases x. Returns tr.
func (m *MLP) ForwardTraceInto(x []float64, tr *Trace) *Trace {
	copy(tr.acts[0], x)
	cur := tr.acts[0]
	for li, l := range m.Layers {
		next := tr.acts[li+1]
		for o := 0; o < l.Out; o++ {
			sum := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, xi := range cur {
				sum += row[i] * xi
			}
			next[o] = sum
		}
		l.Act.apply(next)
		cur = next
	}
	return tr
}

// ForwardTrace runs inference and records the activations.
func (m *MLP) ForwardTrace(x []float64) *Trace {
	tr := &Trace{acts: make([][]float64, 0, len(m.Layers)+1)}
	tr.acts = append(tr.acts, x)
	cur := x
	for _, l := range m.Layers {
		next := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			sum := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, xi := range cur {
				sum += row[i] * xi
			}
			next[o] = sum
		}
		l.Act.apply(next)
		tr.acts = append(tr.acts, next)
		cur = next
	}
	return tr
}

// Grads accumulates parameter gradients with the same shapes as the MLP.
type Grads struct {
	W [][]float64
	B [][]float64
}

// NewGrads allocates a zeroed gradient buffer for m.
func NewGrads(m *MLP) *Grads {
	g := &Grads{}
	for _, l := range m.Layers {
		g.W = append(g.W, make([]float64, len(l.W)))
		g.B = append(g.B, make([]float64, len(l.B)))
	}
	return g
}

// Zero clears the accumulated gradients.
func (g *Grads) Zero() {
	for i := range g.W {
		clearSlice(g.W[i])
		clearSlice(g.B[i])
	}
}

func clearSlice(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Add accumulates o's gradients into g. The deterministic pairwise shard
// reduction of the batched TD3 update is built on it; o must have been
// allocated for the same network shape.
func (g *Grads) Add(o *Grads) {
	for i := range g.W {
		gw, ow := g.W[i], o.W[i]
		for j := range gw {
			gw[j] += ow[j]
		}
		gb, ob := g.B[i], o.B[i]
		for j := range gb {
			gb[j] += ob[j]
		}
	}
}

// Scale multiplies all gradients by s (e.g. 1/batchSize).
func (g *Grads) Scale(s float64) {
	for i := range g.W {
		for j := range g.W[i] {
			g.W[i][j] *= s
		}
		for j := range g.B[i] {
			g.B[i][j] *= s
		}
	}
}

// ClipNorm rescales the gradients if their global L2 norm exceeds max.
func (g *Grads) ClipNorm(max float64) {
	if max <= 0 {
		return
	}
	var sq float64
	for i := range g.W {
		for _, v := range g.W[i] {
			sq += v * v
		}
		for _, v := range g.B[i] {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if norm > max {
		g.Scale(max / norm)
	}
}

// Backward accumulates parameter gradients into g for the traced pass given
// dOut = dLoss/dOutput, and returns dLoss/dInput (actor-critic updates
// backpropagate the critic's input gradient into the actor).
func (m *MLP) Backward(tr *Trace, dOut []float64, g *Grads) []float64 {
	delta := make([]float64, len(dOut))
	copy(delta, dOut)
	for li := len(m.Layers) - 1; li >= 0; li-- {
		l := m.Layers[li]
		in := tr.acts[li]
		out := tr.acts[li+1]
		// Through the activation.
		for o := range delta {
			delta[o] *= l.Act.derivFromOutput(out[o])
		}
		// Parameter gradients.
		gw := g.W[li]
		gb := g.B[li]
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			gb[o] += d
			row := gw[o*l.In : (o+1)*l.In]
			for i, xi := range in {
				row[i] += d * xi
			}
		}
		// Input gradient for the next (previous) layer.
		next := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i := range next {
				next[i] += d * row[i]
			}
		}
		delta = next
	}
	return delta
}

// BackwardInto is Backward using s's ping-pong buffers for the per-layer
// deltas instead of allocating. The returned input gradient aliases the
// scratch and is valid only until the next use of s.
func (m *MLP) BackwardInto(tr *Trace, dOut []float64, g *Grads, s *Scratch) []float64 {
	delta := s.a[:len(dOut)]
	copy(delta, dOut)
	useA := false // delta occupies a; the first input-gradient buffer is b
	for li := len(m.Layers) - 1; li >= 0; li-- {
		l := m.Layers[li]
		in := tr.acts[li]
		out := tr.acts[li+1]
		for o := range delta {
			delta[o] *= l.Act.derivFromOutput(out[o])
		}
		gw := g.W[li]
		gb := g.B[li]
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			gb[o] += d
			row := gw[o*l.In : (o+1)*l.In]
			for i, xi := range in {
				row[i] += d * xi
			}
		}
		next := s.b[:l.In]
		if useA {
			next = s.a[:l.In]
		}
		useA = !useA
		clearSlice(next)
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i := range next {
				next[i] += d * row[i]
			}
		}
		delta = next
	}
	return delta
}

// Clone returns a deep copy (used to spawn target networks).
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Dense{In: l.In, Out: l.Out, Act: l.Act,
			W: append([]float64(nil), l.W...),
			B: append([]float64(nil), l.B...)}
		c.Layers = append(c.Layers, nl)
	}
	return c
}

// SoftUpdate moves target's parameters toward src: θ' ← τ·θ + (1−τ)·θ'.
func SoftUpdate(target, src *MLP, tau float64) {
	for li := range target.Layers {
		tl, sl := target.Layers[li], src.Layers[li]
		for i := range tl.W {
			tl.W[i] += tau * (sl.W[i] - tl.W[i])
		}
		for i := range tl.B {
			tl.B[i] += tau * (sl.B[i] - tl.B[i])
		}
	}
}
