package exp

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/vegas"
	"repro/internal/obs"
)

// canonicalScenarios mirror the two golden scenarios pinned in
// internal/simcheck/testdata/golden.txt: a clean cubic dumbbell and a lossy
// Jury dumbbell. The sharded-parity gate in check.sh runs them at -shards=1
// and -shards=4 and requires identical digests.
func canonicalScenarios() []Scenario {
	bdp := func(rate float64, rtt time.Duration) int {
		return int(rate / 8 * rtt.Seconds())
	}
	return []Scenario{
		{
			Name: "cubic-dumbbell", Rate: 24e6, OneWayDelay: 15 * time.Millisecond,
			BufferBytes: bdp(24e6, 30*time.Millisecond), Horizon: 8 * time.Second, Seed: 41,
			Flows: []FlowSpec{{Scheme: "cubic"}, {Scheme: "cubic", Start: time.Second}},
			Check: true,
		},
		{
			Name: "jury-lossy-dumbbell", Rate: 30e6, OneWayDelay: 10 * time.Millisecond,
			BufferBytes: bdp(30e6, 20*time.Millisecond) * 3 / 2, LossRate: 0.003,
			Horizon: 8 * time.Second, Seed: 43,
			Flows: []FlowSpec{{Scheme: "jury"}, {Scheme: "jury", Start: time.Second}},
			Check: true,
		},
	}
}

// TestShardedDigestParity is the acceptance gate for the sharded engine: the
// two canonical golden scenarios must produce bit-identical digests at
// -shards=1 and -shards=4. A dumbbell is one bottleneck — it partitions into
// a single shard whatever the cap — so this pins the guarantee that asking
// for shards never changes what a scenario computes.
func TestShardedDigestParity(t *testing.T) {
	for _, s := range canonicalScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			seq := s
			seq.Shards = 1
			a, err := Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			shd := s
			shd.Shards = 4
			b, err := Run(shd)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Checked || !b.Checked {
				t.Fatal("digest parity requires checked runs")
			}
			if a.Digest != b.Digest {
				t.Fatalf("digest diverged: shards=1 %016x, shards=4 %016x", a.Digest, b.Digest)
			}
		})
	}
}

// TestHugeShardedDigestParity exercises real multi-shard execution: a small
// loss-free huge mesh (vegas keeps queues near-empty, so no packet drops on
// foreign shards — the one documented divergence) must digest identically at
// 1 and 4 shards.
func TestHugeShardedDigestParity(t *testing.T) {
	opt := HugeOptions{
		Segments:   4,
		TotalFlows: 96,
		Rate:       200e6,
		Horizon:    1500 * time.Millisecond,
		Seed:       5,
		Check:      true,
		CC:         func(uint64) cc.Algorithm { return vegas.New() },
	}
	one := opt
	one.Shards = 1
	a, err := RunHuge(one)
	if err != nil {
		t.Fatal(err)
	}
	four := opt
	four.Shards = 4
	b, err := RunHuge(four)
	if err != nil {
		t.Fatal(err)
	}
	if a.ShardCount != 1 || b.ShardCount != 4 {
		t.Fatalf("shard counts %d/%d, want 1/4", a.ShardCount, b.ShardCount)
	}
	if a.Events != b.Events {
		t.Fatalf("event counts diverged: %d vs %d", a.Events, b.Events)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digest diverged: shards=1 %016x, shards=4 %016x", a.Digest, b.Digest)
	}
}

// TestHugeEnvShardedDigestParity is the reduced-flow smoke gate check.sh runs
// under -race with JURY_HUGE_FLOWS=5000: a loss-free mesh built through the
// environment override (TotalFlows left zero) must digest identically
// sequentially and at 4 shards. Without the variable set it pins a small
// population itself so the ordinary test run stays fast.
func TestHugeEnvShardedDigestParity(t *testing.T) {
	if os.Getenv(HugeFlowsEnv) == "" {
		t.Setenv(HugeFlowsEnv, "600")
	}
	want, _ := strconv.Atoi(os.Getenv(HugeFlowsEnv))
	opt := HugeOptions{
		// Capacity scales with the population so per-flow bandwidth stays
		// constant, and the buffers are 4 BDP deep so slow-start overshoot
		// during the staggered ramp is absorbed: vegas then keeps queues
		// shallow and the run stays drop-free, as the digest-parity contract
		// requires (a drop on a foreign shard is the one documented
		// sequential/sharded divergence).
		Rate:        2e6 * float64(want),
		BufferBytes: int(2e6 * float64(want) / 8 * 0.120),
		Horizon:     700 * time.Millisecond,
		Seed:        11,
		Check:       true,
		CC:          func(uint64) cc.Algorithm { return vegas.New() },
	}
	one := opt
	one.Shards = 1
	a, err := RunHuge(one)
	if err != nil {
		t.Fatal(err)
	}
	four := opt
	four.Shards = 4
	b, err := RunHuge(four)
	if err != nil {
		t.Fatal(err)
	}
	if a.FlowCount != want || b.FlowCount != want {
		t.Fatalf("env-driven flow counts %d/%d, want %d from %s", a.FlowCount, b.FlowCount, want, HugeFlowsEnv)
	}
	if b.ShardCount != 4 {
		t.Fatalf("sharded run used %d shards, want 4", b.ShardCount)
	}
	if a.Events != b.Events {
		t.Fatalf("event counts diverged: %d vs %d", a.Events, b.Events)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digest diverged: shards=1 %016x, shards=4 %016x", a.Digest, b.Digest)
	}
}

// TestHugeFlowsEnvWiring pins the precedence of the flow-population override:
// the environment variable applies exactly when TotalFlows is zero.
func TestHugeFlowsEnvWiring(t *testing.T) {
	t.Setenv(HugeFlowsEnv, "123")
	n, o := BuildHuge(HugeOptions{})
	if len(n.Flows()) != 123 || o.TotalFlows != 123 {
		t.Fatalf("env override built %d flows (resolved %d), want 123", len(n.Flows()), o.TotalFlows)
	}
	n, o = BuildHuge(HugeOptions{TotalFlows: 48})
	if len(n.Flows()) != 48 || o.TotalFlows != 48 {
		t.Fatalf("explicit TotalFlows built %d flows (resolved %d), want 48", len(n.Flows()), o.TotalFlows)
	}
}

// TestHugeBuildShape pins the mesh's structure: flow population, spanning
// flows, and that the chain partitions into the requested shard count.
func TestHugeBuildShape(t *testing.T) {
	n, o := BuildHuge(HugeOptions{Segments: 6, TotalFlows: 200, Shards: 3, Seed: 1})
	if got := len(n.Flows()); got != 200 {
		t.Fatalf("built %d flows, want 200", got)
	}
	if got := len(n.Links()); got != o.Segments {
		t.Fatalf("built %d links, want %d", got, o.Segments)
	}
	spanning := 0
	for _, f := range n.Flows() {
		if len(f.Config().Path) > 1 {
			spanning++
		}
	}
	if want := (200 + spanStride - 1) / spanStride; spanning != want {
		t.Fatalf("%d spanning flows, want %d", spanning, want)
	}
	p, err := n.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 3 {
		t.Fatalf("mesh partitioned into %d shards, want 3", p.Shards)
	}
	if p.Window <= 0 {
		t.Fatalf("mesh shards exchange events, want positive window, got %v", p.Window)
	}
}

// liveBytesPerFlow builds a mesh of the resolved default population (so
// JURY_HUGE_FLOWS applies) and reports the live heap bytes it retains per
// flow after a full collection — the flyweight figure bench.sh records and
// gates under --compare.
func liveBytesPerFlow() float64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	n, o := BuildHuge(HugeOptions{Seed: 7})
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	bpf := float64(after.HeapAlloc-before.HeapAlloc) / float64(o.TotalFlows)
	runtime.KeepAlive(n)
	return bpf
}

// reportMemory attaches the memory metrics to a benchmark: live bytes per
// built flow and the heap's OS-level high-water mark over the run so far.
func reportMemory(b *testing.B) {
	b.ReportMetric(liveBytesPerFlow(), "bytes/flow")
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapSys), "peak-heap-bytes")
}

// BenchObsEnv, when set non-empty, attaches the streaming fairness observer
// to the huge benchmarks: live snapshots stream from the coordinator
// barriers while the mesh runs, and each shard count reports the observer's
// fixed footprint (obs-bytes, O(shards × window), not O(flows)) plus the
// snapshot count — the million-flow-scale observability proof:
//
//	JURY_HUGE_FLOWS=10000 JURY_BENCH_OBS=1 \
//	    go test -bench BenchmarkScenarioHuge -benchtime 1x ./internal/exp
const BenchObsEnv = "JURY_BENCH_OBS"

// BenchmarkScenarioHuge measures the sharded engine on the parking-lot mesh
// (JURY_HUGE_FLOWS flows, default 10_000) at 1/2/4/8 shards. The headline
// metric is events/sec; speedup over shards=1 requires a multi-core runner —
// on one core the extra shards only add synchronization overhead. Each shard
// count also reports bytes/flow (live heap per built flow) and
// peak-heap-bytes so memory regressions gate alongside throughput.
func BenchmarkScenarioHuge(b *testing.B) {
	if os.Getenv(BenchObsEnv) != "" {
		Obs = obs.New(obs.Options{})
		defer func() { Obs = nil }()
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			var stream *obs.StreamSummary
			for i := 0; i < b.N; i++ {
				res, err := RunHuge(HugeOptions{Shards: shards, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
				stream = res.Stream
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			reportMemory(b)
			if stream != nil {
				b.ReportMetric(float64(stream.Snapshots), "snapshots")
				b.ReportMetric(stream.FinalJain, "final-jain")
			}
		})
	}
}

// MillionFlowsEnv overrides BenchmarkScenarioMillion's flow population
// (default 1_000_000); bench.sh smoke runs set it low.
const MillionFlowsEnv = "JURY_MILLION_FLOWS"

// BenchmarkScenarioMillion is the million-flow capacity proof: one sharded
// run of the parking-lot mesh at 8 shards with a shortened horizon, reporting
// events/sec, bytes/flow, and peak heap. Run it with -benchtime 1x; a full
// million-flow iteration is minutes, not microseconds.
func BenchmarkScenarioMillion(b *testing.B) {
	flows := 1_000_000
	if v, err := strconv.Atoi(os.Getenv(MillionFlowsEnv)); err == nil && v > 0 {
		flows = v
	}
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := RunHuge(HugeOptions{
			TotalFlows: flows,
			Shards:     8,
			Horizon:    500 * time.Millisecond,
			Seed:       7,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")

	// The bytes/flow probe builds at the benchmark's own scale so the figure
	// reflects million-flow packing, not the 10k default.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	n, _ := BuildHuge(HugeOptions{TotalFlows: flows, Seed: 7})
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(flows), "bytes/flow")
	}
	runtime.KeepAlive(n)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapSys), "peak-heap-bytes")
}
