package cctest

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/exp"
)

// seedMatrixEnv is one cell of the environment axis of the property matrix.
type seedMatrixEnv struct {
	name    string
	rate    float64
	owd     time.Duration
	bdpFrac float64 // buffer as a fraction of BDP
	loss    float64
}

// seedMatrixEnvs spans the regimes the paper's evaluation sweeps: clean
// broadband, deep-buffered DSL-like, randomly lossy wireless-like, and a
// long-fat shallow-buffered path.
var seedMatrixEnvs = []seedMatrixEnv{
	{"clean", 24e6, 10 * time.Millisecond, 1, 0},
	{"deep-buffer", 12e6, 20 * time.Millisecond, 4, 0},
	{"lossy", 24e6, 10 * time.Millisecond, 1, 0.01},
	{"long-shallow", 48e6, 40 * time.Millisecond, 0.5, 0},
}

var seedMatrixSeeds = []uint64{1, 2}

// TestSeedMatrixInvariants runs every scheme the harness knows (Jury plus
// all ten baselines) across the environment × seed matrix with the simcheck
// invariant checker attached, and asserts the properties that must hold for
// ANY congestion controller, however badly tuned: no emulator invariant is
// violated, delivered throughput never exceeds capacity, and per-flow loss
// accounting closes (acked + lost never exceeds sent).
func TestSeedMatrixInvariants(t *testing.T) {
	horizon := 12 * time.Second
	if testing.Short() {
		horizon = 6 * time.Second
	}
	for _, scheme := range exp.Schemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			for _, env := range seedMatrixEnvs {
				for _, seed := range seedMatrixSeeds {
					s := exp.Scenario{
						Name:        fmt.Sprintf("matrix/%s/%s/seed%d", scheme, env.name, seed),
						Rate:        env.rate,
						OneWayDelay: env.owd,
						LossRate:    env.loss,
						Horizon:     horizon,
						Seed:        seed,
						Check:       true,
						Flows: []exp.FlowSpec{
							{Scheme: scheme},
							{Scheme: scheme, Start: horizon / 4},
						},
					}
					s.BufferBytes = s.BufferBDP(env.bdpFrac)
					res, err := exp.Run(s)
					if err != nil {
						t.Fatalf("%s: %v", s.Name, err)
					}
					if !res.Checked {
						t.Fatalf("%s: ran without the invariant checker", s.Name)
					}
					if res.Utilization > 1.001 {
						t.Errorf("%s: utilization %v > 1: delivered more than capacity", s.Name, res.Utilization)
					}
					for _, f := range res.Flows {
						st := f.Stats()
						if st.AckedPackets+st.LostPackets > st.SentPackets {
							t.Errorf("%s flow %s: acked %d + lost %d > sent %d",
								s.Name, st.Name, st.AckedPackets, st.LostPackets, st.SentPackets)
						}
						if st.AvgThroughputBps > env.rate*1.001 {
							t.Errorf("%s flow %s: throughput %v exceeds link rate %v",
								s.Name, st.Name, st.AvgThroughputBps, env.rate)
						}
					}
				}
			}
		})
	}
}
