package obs

import "math"

// The quantile sketch is a fixed-size log-bucketed histogram over positive
// float64 samples: the bucket index is carved straight out of the float's
// bit pattern (biased exponent plus the top sketchSubBits mantissa bits), so
// Observe is a shift, a mask, and an array increment — no allocation, no
// search, no floating-point work. With 8 sub-buckets per octave the relative
// quantile error is bounded by half a bucket width, ≤ ~6%: ample for the
// p50/p95/p99 rate and RTT panels of a live fairness feed.
//
// The covered range is 2^-sketchSpan .. 2^+sketchSpan (≈1e-18 .. 1e18);
// samples outside clamp into the edge buckets, zero/negative/NaN samples
// count into a dedicated zero bucket. Two sketches merge by adding their
// arrays, which is what the per-shard accumulators do at a coordinator
// barrier.
const (
	sketchSubBits = 3                              // mantissa bits per bucket
	sketchSub     = 1 << sketchSubBits             // sub-buckets per octave
	sketchSpan    = 60                             // octaves on each side of 1.0
	sketchBuckets = (2*sketchSpan + 1) * sketchSub // total array size
	sketchMinExp  = 1023 - sketchSpan              // lowest biased exponent covered
)

type sketch struct {
	n       int64 // total samples, including the zero bucket
	zero    int64 // samples ≤ 0 (or NaN)
	buckets [sketchBuckets]int64
}

// observe records one sample. Hot path: no allocations, no branches beyond
// range clamping.
func (s *sketch) observe(v float64) {
	s.n++
	if !(v > 0) { // catches 0, negatives, and NaN in one comparison
		s.zero++
		return
	}
	bits := math.Float64bits(v)
	idx := int(bits>>(52-sketchSubBits)) - sketchMinExp*sketchSub
	if idx < 0 {
		idx = 0
	} else if idx >= sketchBuckets {
		idx = sketchBuckets - 1
	}
	s.buckets[idx]++
}

// merge folds other into s.
func (s *sketch) merge(other *sketch) {
	s.n += other.n
	s.zero += other.zero
	for i := range s.buckets {
		s.buckets[i] += other.buckets[i]
	}
}

// bucketValue returns the representative (midpoint) value of bucket idx.
func bucketValue(idx int) float64 {
	exp := idx/sketchSub + sketchMinExp
	sub := idx % sketchSub
	lo := math.Ldexp(1+float64(sub)/sketchSub, exp-1023)
	hi := math.Ldexp(1+float64(sub+1)/sketchSub, exp-1023)
	return (lo + hi) / 2
}

// quantile returns the q-th quantile (0..1) by nearest-rank walk, 0 when
// the sketch is empty. The zero bucket sorts below every positive bucket.
func (s *sketch) quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.n-1))
	cum := s.zero
	if rank < cum {
		return 0
	}
	for i := range s.buckets {
		cum += s.buckets[i]
		if rank < cum {
			return bucketValue(i)
		}
	}
	return bucketValue(sketchBuckets - 1)
}

func (s *sketch) reset() {
	*s = sketch{}
}
