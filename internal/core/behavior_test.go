package core_test

// Emulator-driven behaviour tests: Jury's headline properties — high
// utilization with a shallow queue, fairness convergence inside and far
// outside the training domain, and RTT fairness — demonstrated end to end.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// lateMean averages a flow's throughput over the trailing window.
func lateMean(f *netsim.Flow, from time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range f.Series() {
		if p.T >= from {
			sum += p.ThroughputBps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestJurySingleFlowHighUtilLowQueue(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 1})
	l := n.AddLink(netsim.LinkConfig{Rate: 50e6, Delay: 15 * time.Millisecond, BufferBytes: 375_000})
	f := n.AddFlow(netsim.FlowConfig{Name: "j", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return core.NewDefault(1) }})
	n.Run(60 * time.Second)

	if u := l.Utilization(60 * time.Second); u < 0.85 {
		t.Fatalf("utilization %v, want ≥0.85", u)
	}
	// Steady-state queuing delay: paper reports 3.5-7.2 ms; allow <15 ms.
	var q float64
	var qn int
	for _, p := range f.Series() {
		if p.T > 30*time.Second && p.AvgRTT > 0 {
			q += float64(p.AvgRTT-f.BaseRTT()) / float64(time.Millisecond)
			qn++
		}
	}
	if q/float64(qn) > 15 {
		t.Fatalf("queuing delay %v ms, want shallow", q/float64(qn))
	}
	if lr := f.Stats().LossRate; lr > 0.005 {
		t.Fatalf("loss rate %v, want ~0", lr)
	}
}

func TestJuryFairnessInTrainingDomain(t *testing.T) {
	// 60 Mbps (inside Table 1), two flows, second joins at t=20s.
	n := netsim.New(netsim.Config{Seed: 2})
	l := n.AddLink(netsim.LinkConfig{Rate: 60e6, Delay: 15 * time.Millisecond, BufferBytes: 450_000})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return core.NewDefault(1) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l}, Start: 20 * time.Second,
		CC: func() cc.Algorithm { return core.NewDefault(2) }})
	n.Run(100 * time.Second)

	a, b := lateMean(f1, 60*time.Second), lateMean(f2, 60*time.Second)
	jain := metrics.JainIndex([]float64{a, b})
	if jain < 0.95 {
		t.Fatalf("late Jain index %v (shares %v / %v Mbps)", jain, a/1e6, b/1e6)
	}
	if (a+b)/60e6 < 0.85 {
		t.Fatalf("combined utilization %v", (a+b)/60e6)
	}
}

func TestJuryFairnessGeneralizesBeyondTraining(t *testing.T) {
	if testing.Short() {
		// The claim is specifically about a link 3.5x beyond the training
		// maximum; shrinking the rate or horizon would test something else.
		t.Skip("full-scale unseen-environment emulation")
	}
	// The headline claim (Fig. 1 vs Fig. 7b): a 350 Mbps link is 3.5x the
	// training maximum, and fairness must hold anyway.
	n := netsim.New(netsim.Config{Seed: 3})
	l := n.AddLink(netsim.LinkConfig{Rate: 350e6, Delay: 15 * time.Millisecond, BufferBytes: 1_312_500})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return core.NewDefault(1) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l}, Start: 30 * time.Second,
		CC: func() cc.Algorithm { return core.NewDefault(2) }})
	n.Run(120 * time.Second)

	a, b := lateMean(f1, 80*time.Second), lateMean(f2, 80*time.Second)
	jain := metrics.JainIndex([]float64{a, b})
	if jain < 0.95 {
		t.Fatalf("unseen-env late Jain %v (shares %v / %v Mbps)", jain, a/1e6, b/1e6)
	}
	if (a+b)/350e6 < 0.8 {
		t.Fatalf("combined utilization %v on the unseen link", (a+b)/350e6)
	}
}

func TestJuryRTTFairness(t *testing.T) {
	// Two flows with 3x different base RTTs share a 60 Mbps bottleneck;
	// Jury's occupancy estimation is RTT-independent (§5.1.2).
	n := netsim.New(netsim.Config{Seed: 4})
	l := n.AddLink(netsim.LinkConfig{Rate: 60e6, Delay: 15 * time.Millisecond, BufferBytes: 450_000})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "near", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return core.NewDefault(1) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "far", Path: []*netsim.Link{l}, ExtraOneWay: 30 * time.Millisecond,
		CC: func() cc.Algorithm { return core.NewDefault(2) }})
	n.Run(120 * time.Second)

	a, b := lateMean(f1, 70*time.Second), lateMean(f2, 70*time.Second)
	ratio := math.Max(a, b) / math.Min(a, b)
	if ratio > 1.5 {
		t.Fatalf("RTT-heterogeneous share ratio %v (%v vs %v Mbps)", ratio, a/1e6, b/1e6)
	}
}

func TestJuryLossResilience(t *testing.T) {
	// 0.5% random loss (5x the training max): Jury must keep utilization
	// high where loss-based CC collapses (Fig. 10c).
	n := netsim.New(netsim.Config{Seed: 5})
	l := n.AddLink(netsim.LinkConfig{Rate: 50e6, Delay: 15 * time.Millisecond, BufferBytes: 375_000, LossRate: 0.005})
	n.AddFlow(netsim.FlowConfig{Name: "j", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return core.NewDefault(1) }})
	n.Run(60 * time.Second)
	if u := l.Utilization(60 * time.Second); u < 0.75 {
		t.Fatalf("utilization %v at 0.5%% random loss", u)
	}
}

func TestJuryHighBDPConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale high-BDP emulation")
	}
	// 350 Mbps, 150 ms RTT (Fig. 7c): convergence is slower but must reach
	// high utilization.
	n := netsim.New(netsim.Config{Seed: 6})
	bdp := int(350e6 / 8 * 0.150)
	l := n.AddLink(netsim.LinkConfig{Rate: 350e6, Delay: 75 * time.Millisecond, BufferBytes: bdp})
	f := n.AddFlow(netsim.FlowConfig{Name: "j", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return core.NewDefault(1) }})
	n.Run(120 * time.Second)
	if thr := lateMean(f, 60*time.Second); thr/350e6 < 0.8 {
		t.Fatalf("late throughput %v Mbps on the high-BDP link", thr/1e6)
	}
}

func TestJuryOccupancyTracksTruth(t *testing.T) {
	// One Jury flow against a pinned 30 Mbps Manual flow on a 60 Mbps link:
	// at equilibrium Jury's occupancy estimate should hover near its true
	// ~50% share.
	n := netsim.New(netsim.Config{Seed: 7})
	l := n.AddLink(netsim.LinkConfig{Rate: 60e6, Delay: 15 * time.Millisecond, BufferBytes: 450_000})
	var j *core.Jury
	n.AddFlow(netsim.FlowConfig{Name: "jury", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { j = core.NewDefault(1); return j }})
	n.AddFlow(netsim.FlowConfig{Name: "cbr", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return cc.NewManual(30e6) }})
	// Sample occupancy over the last 30s.
	var samples []float64
	for s := 60; s <= 90; s += 2 {
		n.Run(time.Duration(s) * time.Second)
		samples = append(samples, j.Occupancy())
	}
	var mean float64
	for _, v := range samples {
		mean += v
	}
	mean /= float64(len(samples))
	if mean < 0.2 || mean > 0.85 {
		t.Fatalf("mean occupancy estimate %v for a ~0.5 true share", mean)
	}
}

func TestJuryDeterministicRuns(t *testing.T) {
	run := func() int64 {
		n := netsim.New(netsim.Config{Seed: 8})
		l := n.AddLink(netsim.LinkConfig{Rate: 40e6, Delay: 15 * time.Millisecond, BufferBytes: 300_000})
		f := n.AddFlow(netsim.FlowConfig{Name: "j", Path: []*netsim.Link{l},
			CC: func() cc.Algorithm { return core.NewDefault(9) }})
		n.Run(20 * time.Second)
		return f.Stats().AckedBytes
	}
	if run() != run() {
		t.Fatal("same-seed Jury runs diverged")
	}
}

func TestJuryManyFlowsShareFairly(t *testing.T) {
	// 6 flows on 90 Mbps: Jain over late-window shares must be high.
	n := netsim.New(netsim.Config{Seed: 9})
	l := n.AddLink(netsim.LinkConfig{Rate: 90e6, Delay: 15 * time.Millisecond, BufferBytes: 675_000})
	flows := make([]*netsim.Flow, 6)
	for i := range flows {
		seed := uint64(i) + 1
		flows[i] = n.AddFlow(netsim.FlowConfig{
			Name: fmt.Sprintf("j%d", i), Path: []*netsim.Link{l},
			Start: time.Duration(i) * 5 * time.Second,
			CC:    func() cc.Algorithm { return core.NewDefault(seed) },
		})
	}
	n.Run(150 * time.Second)
	shares := make([]float64, len(flows))
	for i, f := range flows {
		shares[i] = lateMean(f, 100*time.Second)
	}
	if jain := metrics.JainIndex(shares); jain < 0.9 {
		t.Fatalf("6-flow late Jain %v (shares %v)", jain, shares)
	}
}

func TestJuryRobustToPathJitter(t *testing.T) {
	// ±3ms of per-packet jitter on a 30ms-RTT path injects exactly the RTT
	// noise §3.4's averaging is meant to absorb: utilization must hold.
	n := netsim.New(netsim.Config{Seed: 11})
	l := n.AddLink(netsim.LinkConfig{Rate: 40e6, Delay: 15 * time.Millisecond,
		BufferBytes: 300_000, JitterStd: 3 * time.Millisecond})
	n.AddFlow(netsim.FlowConfig{Name: "j", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return core.NewDefault(1) }})
	n.Run(60 * time.Second)
	if u := l.Utilization(60 * time.Second); u < 0.75 {
		t.Fatalf("utilization %v under path jitter", u)
	}
}

func TestPreferenceTradeoffOnEmulator(t *testing.T) {
	// The MOCC-style extension (§3.3): a delay-weighted preference must
	// hold a shallower queue than a throughput-weighted one, at a modest
	// utilization cost.
	run := func(pref core.Preference) (float64, float64) {
		n := netsim.New(netsim.Config{Seed: 5})
		l := n.AddLink(netsim.LinkConfig{Rate: 40e6, Delay: 15 * time.Millisecond, BufferBytes: 600_000})
		f := n.AddFlow(netsim.FlowConfig{Name: "p", Path: []*netsim.Link{l},
			CC: func() cc.Algorithm {
				cfg := core.DefaultConfig()
				cfg.Seed = 5
				return core.NewWithPreference(cfg, pref)
			}})
		n.Run(40 * time.Second)
		return l.Utilization(40 * time.Second), metrics.MeanQueuingDelayMS(f, 20*time.Second, 40*time.Second)
	}
	utilT, queueT := run(core.Preference{Throughput: 0.7, Delay: 0.2, Loss: 0.1})
	utilD, queueD := run(core.Preference{Throughput: 0.15, Delay: 0.75, Loss: 0.1})
	if queueD >= queueT {
		t.Fatalf("delay preference queue %.1f ms not below throughput preference %.1f ms", queueD, queueT)
	}
	if utilD < 0.75 || utilT < 0.85 {
		t.Fatalf("preference utilizations too low: thr-pref %.3f, delay-pref %.3f", utilT, utilD)
	}
}
