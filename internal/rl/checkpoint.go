package rl

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/nn"
)

// Checkpoint is the on-disk snapshot of a training run: the six TD3 networks
// plus the loop state needed to continue where the process died. Optimizer
// moments and the replay buffer are deliberately not persisted — they are
// cheap to rebuild (Adam re-warms within a few updates, the buffer refills
// from the next collection rounds) and would dominate the file size.
type Checkpoint struct {
	Epoch          int       `json:"epoch"` // next epoch to run
	Noise          float64   `json:"noise"`
	EpochRewards   []float64 `json:"epoch_rewards"`
	Updates        int       `json:"updates"`
	SkippedUpdates int64     `json:"skipped_updates"`

	Actor       *nn.MLP `json:"actor"`
	ActorTarget *nn.MLP `json:"actor_target"`
	Critic1     *nn.MLP `json:"critic1"`
	Critic2     *nn.MLP `json:"critic2"`
	C1Target    *nn.MLP `json:"c1_target"`
	C2Target    *nn.MLP `json:"c2_target"`
}

// snapshot captures the agent's networks and update counters. The MLP
// pointers alias live weights; SaveCheckpoint serializes immediately, before
// the next Update can mutate them.
func (t *TD3) snapshot() *Checkpoint {
	return &Checkpoint{
		Updates:        t.updates,
		SkippedUpdates: t.skippedUpdates,
		Actor:          t.Actor,
		ActorTarget:    t.actorTarget,
		Critic1:        t.critic1,
		Critic2:        t.critic2,
		C1Target:       t.c1Target,
		C2Target:       t.c2Target,
	}
}

// Restore copies a checkpoint's weights and counters into the agent. The
// checkpoint's network shapes must match the agent's (the agent keeps its
// own optimizer state, scratch buffers, and RNG, all of which are sized at
// construction).
func (t *TD3) Restore(ck *Checkpoint) error {
	pairs := []struct {
		name string
		dst  *nn.MLP
		src  *nn.MLP
	}{
		{"actor", t.Actor, ck.Actor},
		{"actor target", t.actorTarget, ck.ActorTarget},
		{"critic1", t.critic1, ck.Critic1},
		{"critic2", t.critic2, ck.Critic2},
		{"critic1 target", t.c1Target, ck.C1Target},
		{"critic2 target", t.c2Target, ck.C2Target},
	}
	for _, p := range pairs {
		if err := checkShape(p.name, p.dst, p.src); err != nil {
			return err
		}
		if !p.src.AllFinite() {
			return fmt.Errorf("rl: checkpoint %s has non-finite weights", p.name)
		}
	}
	for _, p := range pairs {
		nn.SoftUpdate(p.dst, p.src, 1) // tau=1: exact copy
	}
	t.updates = ck.Updates
	t.skippedUpdates = ck.SkippedUpdates
	return nil
}

func checkShape(name string, dst, src *nn.MLP) error {
	if src == nil {
		return fmt.Errorf("rl: checkpoint is missing the %s network", name)
	}
	if len(src.Layers) != len(dst.Layers) {
		return fmt.Errorf("rl: checkpoint %s has %d layers, agent has %d",
			name, len(src.Layers), len(dst.Layers))
	}
	for i := range src.Layers {
		if src.Layers[i].In != dst.Layers[i].In || src.Layers[i].Out != dst.Layers[i].Out {
			return fmt.Errorf("rl: checkpoint %s layer %d is %dx%d, agent wants %dx%d",
				name, i, src.Layers[i].In, src.Layers[i].Out,
				dst.Layers[i].In, dst.Layers[i].Out)
		}
	}
	return nil
}

// SaveCheckpoint writes ck to path atomically: the JSON is written to a
// temporary file in the same directory, fsynced, and renamed over the
// target. A crash at any point leaves either the previous checkpoint or the
// new one, never a truncated file.
func SaveCheckpoint(path string, ck *Checkpoint) (err error) {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("rl: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("rl: checkpoint temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return fmt.Errorf("rl: write checkpoint: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("rl: sync checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("rl: close checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("rl: publish checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("rl: corrupt checkpoint %s: %w", path, err)
	}
	return ck, nil
}
