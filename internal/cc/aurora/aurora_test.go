package aurora

import (
	"testing"
	"time"

	"repro/internal/cc"
)

func mkStats(acked int64, rtt time.Duration, lost, sent int64) cc.IntervalStats {
	return cc.IntervalStats{
		Interval:     30 * time.Millisecond,
		AckedBytes:   acked * 1500,
		AckedPackets: acked,
		SentBytes:    sent * 1500,
		SentPackets:  sent,
		LostPackets:  lost,
		AvgRTT:       rtt,
		MinRTT:       rtt,
		FlowMinRTT:   30 * time.Millisecond,
		DeliverySpan: 30 * time.Millisecond,
	}
}

func TestProbesWhenUncongested(t *testing.T) {
	a := New(DefaultConfig(), nil)
	a.Init(0)
	r0 := a.Rate()
	for i := 0; i < 50; i++ {
		a.OnInterval(mkStats(100, 30*time.Millisecond, 0, 100))
	}
	if a.Rate() <= r0 {
		t.Fatalf("rate did not grow: %v -> %v", r0, a.Rate())
	}
}

func TestBacksOffOnLatencyGrowth(t *testing.T) {
	a := New(DefaultConfig(), nil)
	a.Init(0)
	for i := 0; i < 20; i++ {
		a.OnInterval(mkStats(100, 30*time.Millisecond, 0, 100))
	}
	r := a.Rate()
	// RTT ramping up steeply.
	for i := 1; i <= 20; i++ {
		rtt := 30*time.Millisecond + time.Duration(i)*5*time.Millisecond
		a.OnInterval(mkStats(100, rtt, 0, 100))
	}
	if a.Rate() >= r {
		t.Fatalf("rate did not back off under latency growth: %v -> %v", r, a.Rate())
	}
}

func TestBacksOffOnHeavyLoss(t *testing.T) {
	a := New(DefaultConfig(), nil)
	a.Init(0)
	for i := 0; i < 20; i++ {
		a.OnInterval(mkStats(100, 30*time.Millisecond, 0, 100))
	}
	r := a.Rate()
	for i := 0; i < 10; i++ {
		a.OnInterval(mkStats(80, 30*time.Millisecond, 20, 100))
	}
	if a.Rate() >= r {
		t.Fatalf("rate did not back off under heavy loss: %v -> %v", r, a.Rate())
	}
}

func TestOutOfDomainProbingStalls(t *testing.T) {
	// The published generalization failure (Fig. 10a): probing stops once
	// the rate leaves ~3x the training envelope.
	cfg := DefaultConfig()
	a := New(cfg, nil)
	a.Init(0)
	a.rate = 3.5 * cfg.TrainedMaxRate
	r := a.Rate()
	for i := 0; i < 50; i++ {
		a.OnInterval(mkStats(1000, 30*time.Millisecond, 0, 1000))
	}
	if a.Rate() > r {
		t.Fatalf("out-of-domain rate kept growing: %v -> %v", r, a.Rate())
	}
}

func TestBlackoutHalvesViaAction(t *testing.T) {
	a := New(DefaultConfig(), nil)
	a.Init(0)
	a.rate = 50e6
	a.OnInterval(cc.IntervalStats{Interval: 30 * time.Millisecond, SentPackets: 100, LostPackets: 100})
	if a.Rate() >= 50e6 {
		t.Fatal("blackout did not reduce the rate")
	}
}

func TestRewardShape(t *testing.T) {
	if Reward(50e6, 30*time.Millisecond, 0) <= Reward(10e6, 30*time.Millisecond, 0) {
		t.Fatal("reward not increasing in throughput")
	}
	if Reward(50e6, 100*time.Millisecond, 0) >= Reward(50e6, 30*time.Millisecond, 0) {
		t.Fatal("reward not penalizing latency")
	}
	if Reward(50e6, 30*time.Millisecond, 0.05) >= Reward(50e6, 30*time.Millisecond, 0) {
		t.Fatal("reward not penalizing loss")
	}
}

func TestStateDimAndIdentity(t *testing.T) {
	a := New(DefaultConfig(), nil)
	a.Init(0)
	a.OnInterval(mkStats(100, 30*time.Millisecond, 0, 100))
	if len(a.LastState()) != StateDim {
		t.Fatalf("state dim %d, want %d", len(a.LastState()), StateDim)
	}
	if a.Name() != "aurora" {
		t.Fatal("name wrong")
	}
	if a.CWND() < 10 {
		t.Fatal("cwnd floor missing")
	}
}

func TestRateBounds(t *testing.T) {
	a := New(DefaultConfig(), nil)
	for i := 0; i < 2000; i++ {
		a.applyAction(-1)
	}
	if a.Rate() < 0.1e6 {
		t.Fatalf("rate %v fell through the floor", a.Rate())
	}
}
