// Package rl implements the reinforcement-learning substrate the paper
// trains Jury with (§3.5): an experience replay buffer, DDPG-style
// actor-critic updates with the three TD3 additions (clipped double
// Q-learning, delayed policy updates, target policy smoothing), and a
// Gym-like environment interface plus parallel experience collection.
package rl

import (
	"repro/internal/simcore"
)

// Transition is one (s, a, r, s', done) tuple.
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
}

// ReplayBuffer is a fixed-capacity ring of transitions with uniform
// sampling.
type ReplayBuffer struct {
	buf  []Transition
	next int
	n    int
	idx  []int // preallocated sampling scratch, sized on first use
}

// NewReplayBuffer returns an empty buffer with the given capacity.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &ReplayBuffer{buf: make([]Transition, capacity)}
}

// Add inserts a transition, evicting the oldest when full.
func (r *ReplayBuffer) Add(t Transition) {
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Len reports the number of stored transitions.
func (r *ReplayBuffer) Len() int { return r.n }

// SampleIndices draws batch positions uniformly with replacement into the
// buffer's preallocated index scratch and returns it (valid until the next
// Sample/SampleIndices call). Steady state allocates nothing; the RNG
// stream is identical to Sample's.
func (r *ReplayBuffer) SampleIndices(rng *simcore.RNG, batch int) []int {
	if cap(r.idx) < batch {
		r.idx = make([]int, batch)
	}
	idx := r.idx[:batch]
	for i := range idx {
		idx[i] = int(rng.Intn(r.n))
	}
	return idx
}

// At returns the stored transition at buffer position i (as produced by
// SampleIndices). The pointer is valid until Add overwrites the slot.
func (r *ReplayBuffer) At(i int) *Transition { return &r.buf[i] }

// Sample draws batch transitions uniformly with replacement into dst
// (allocating if dst is short) and returns it.
func (r *ReplayBuffer) Sample(rng *simcore.RNG, batch int, dst []Transition) []Transition {
	if r.n == 0 {
		return dst[:0]
	}
	if cap(dst) < batch {
		dst = make([]Transition, batch)
	}
	dst = dst[:batch]
	for i, j := range r.SampleIndices(rng, batch) {
		dst[i] = r.buf[j]
	}
	return dst
}

// Env is the Gym-like environment interface Jury's training loop drives.
// Implementations wrap the network emulator (see internal/core).
type Env interface {
	// Reset starts a new episode and returns the initial state.
	Reset() []float64
	// Step applies an action and returns the next state, reward, and
	// whether the episode finished.
	Step(action []float64) (next []float64, reward float64, done bool)
}
