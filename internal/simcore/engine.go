// Package simcore provides a deterministic discrete-event simulation engine:
// a virtual clock, a time-ordered event queue, and seeded random number
// generation. It is the foundation of the network emulator in
// internal/netsim and of the RL training environments.
package simcore

import (
	"fmt"
	"time"
)

// Event is a scheduled callback. Events with equal timestamps fire in
// causal order: first by the virtual time they were *scheduled* at, then by
// insertion sequence (FIFO). In a single-engine run insertion order is
// already nondecreasing in schedule time — the clock never moves backwards —
// so the schedAt key changes nothing there; its purpose is sharded runs,
// where the coordinator injects cross-shard events at window barriers
// (insertion-late) but stamps them with their original schedule time, which
// restores the exact tie order a sequential replay would have produced.
//
// Events are pooled: once an event has fired (or a cancelled event has been
// drained), the engine recycles its storage for a future Schedule call.
// Callers therefore never hold *Event directly — Schedule returns a Timer
// handle carrying a generation number, so operations on a stale handle are
// safe no-ops instead of corrupting an unrelated recycled event.
type Event struct {
	at      time.Duration
	schedAt time.Duration
	seq     uint64

	// Exactly one of fn/argFn is set. argFn+arg lets hot paths schedule a
	// per-object callback without allocating a fresh closure per event.
	fn    func()
	argFn func(any)
	arg   any

	// index is the event's heap slot when >= 0, idxWheel (-2) while parked
	// in a timer-wheel slot, and idxFree (-1) when not queued at all.
	index     int
	gen       uint64 // bumped on recycle; Timer handles check it
	cancelled bool
}

// Timer is a cancellable handle to a scheduled event. The zero value is an
// inert handle: Cancel and Active are no-ops on it. Handles are plain
// values; copying one is fine.
type Timer struct {
	ev  *Event
	gen uint64
}

// Cancel prevents the pending event from firing. Cancelling an event that
// has already fired, was already cancelled, or whose storage has been
// recycled for a newer event is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.cancelled = true
	}
}

// Active reports whether the event is still queued and uncancelled. Queued
// means resident in the heap or parked in a timer-wheel slot — wheel
// residency is an internal staging detail, not a semantic difference.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled && t.ev.index != idxFree
}

// At reports the virtual time at which the event fires (0 for inert or
// recycled handles).
func (t Timer) At() time.Duration {
	if t.ev == nil || t.ev.gen != t.gen {
		return 0
	}
	return t.ev.at
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by
// (time, schedule time, sequence).
// Children of slot i live at 4i+1..4i+4 and its parent at (i-1)/4, so the
// tree is half as deep as a binary heap: pushes (which only walk up) compare
// against half as many ancestors, and a deep queue keeps more of the
// frequently-touched top levels in cache. Pops scan up to four children per
// level, but levels are cheap to scan — the four *Event pointers are
// adjacent — and there are half as many of them.
//
// Because (at, schedAt, seq) is a total order (seq is unique per event), the
// pop sequence is independent of heap shape: any arity yields the same event
// order, so golden simcheck digests are unaffected by this layout.
type eventHeap []*Event

func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	return a.seq < b.seq
}

// push appends ev and sifts it up to its position.
func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = ev
	ev.index = i
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	q := *h
	top := q[0]
	n := len(q) - 1
	ev := q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	top.index = idxFree
	if n == 0 {
		return top
	}
	// Sift the displaced last element down from the root.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if eventBefore(q[j], q[m]) {
				m = j
			}
		}
		if !eventBefore(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].index = i
		i = m
	}
	q[i] = ev
	ev.index = i
	return top
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	queue   timerWheel
	nextSeq uint64
	running bool
	stopped bool

	// free is the event free-list: fired/drained events are recycled here so
	// steady-state simulation schedules without heap allocation (packet-level
	// runs schedule one event per packet hop).
	free []*Event

	// slab batches the allocations that grow the event population: when the
	// free-list is empty, alloc carves the next event out of this block
	// instead of paying one heap allocation per new in-flight event while a
	// fresh engine ramps up to its working set.
	slab []Event

	// eventHook, when non-nil, observes every executed event (its firing
	// time and sequence number) just before the callback runs. The
	// correctness harness (internal/simcheck) uses it to verify clock
	// monotonicity and to fold the full event stream into a digest, so two
	// runs of the same scenario can be compared bit-for-bit.
	eventHook func(at time.Duration, seq uint64)
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending reports how many events are queued (including cancelled ones that
// have not yet been drained).
func (e *Engine) Pending() int { return e.queue.size() }

// Len is the queue length — identical to Pending, exported under the name
// the shard coordinator and its tests use for "events left in this engine".
func (e *Engine) Len() int { return e.queue.size() }

// PendingEvents reports how many queued events are still live, i.e. not yet
// cancelled. Unlike Pending it excludes cancelled-but-undrained entries; it
// scans the queue (O(n)), so it is meant for tests and debug surfaces, not
// per-event hot paths.
func (e *Engine) PendingEvents() int {
	return e.queue.live()
}

// NextAt reports the firing time of the earliest queued event. ok is false
// when the queue is empty. Cancelled events still count: they occupy the
// queue until drained, and treating them as real keeps the answer cheap —
// amortized O(1), with an occasional wheel-slot migration to establish the
// heap top as the global minimum.
func (e *Engine) NextAt() (at time.Duration, ok bool) {
	ev := e.queue.min()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// alloc takes an event from the free-list (or allocates one) and enqueues
// it at the given time, stamped as scheduled now.
func (e *Engine) alloc(at time.Duration) *Event {
	return e.allocSched(at, e.now)
}

// allocSched is alloc with an explicit schedule stamp. The stamp is part of
// the queue ordering key, so it must be final before the event is enqueued —
// mutating it afterwards would corrupt the heap invariant for equal-time
// ties. InjectArg passes the cross-shard origin time here.
func (e *Engine) allocSched(at, schedAt time.Duration) *Event {
	if at < e.now {
		panic(fmt.Sprintf("simcore: schedule at %v before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		if len(e.slab) == 0 {
			e.slab = make([]Event, 64)
		}
		ev = &e.slab[0]
		e.slab = e.slab[1:]
	}
	ev.at = at
	ev.schedAt = schedAt
	ev.seq = e.nextSeq
	ev.cancelled = false
	e.nextSeq++
	e.queue.push(ev, e.now)
	return ev
}

// release returns a fired or drained event to the free-list, invalidating
// outstanding Timer handles via the generation counter.
func (e *Engine) release(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// Schedule queues fn to run at absolute virtual time at and returns a
// cancellable handle. Scheduling in the past (before Now) panics: it always
// indicates a simulation bug, and silently clamping would corrupt causality.
func (e *Engine) Schedule(at time.Duration, fn func()) Timer {
	ev := e.alloc(at)
	ev.fn = fn
	return Timer{ev: ev, gen: ev.gen}
}

// ScheduleAfter queues fn to run after delay d from the current time.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// ScheduleArg queues fn(arg) at absolute virtual time at. Unlike Schedule,
// it takes a long-lived callback plus a per-event argument, so hot paths
// (one event per packet hop) do not allocate a closure per call.
func (e *Engine) ScheduleArg(at time.Duration, fn func(any), arg any) Timer {
	ev := e.alloc(at)
	ev.argFn = fn
	ev.arg = arg
	return Timer{ev: ev, gen: ev.gen}
}

// ScheduleArgAfter queues fn(arg) after delay d from the current time.
func (e *Engine) ScheduleArgAfter(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.ScheduleArg(e.now+d, fn, arg)
}

// InjectArg queues fn(arg) at time at, stamped as if it had been scheduled at
// virtual time schedAt. The shard coordinator uses it to deliver cross-shard
// events at window barriers: the event was logically scheduled on its source
// shard at schedAt (< at, by the lookahead), and carrying that stamp into the
// destination heap makes equal-time ties resolve exactly as a sequential
// replay would — by who scheduled first, not by who happened to be inserted
// first. schedAt after at panics: such an event would claim to be scheduled
// after it fires.
func (e *Engine) InjectArg(at, schedAt time.Duration, fn func(any), arg any) Timer {
	if schedAt > at {
		panic(fmt.Sprintf("simcore: inject at %v scheduled later, at %v", at, schedAt))
	}
	ev := e.allocSched(at, schedAt)
	ev.argFn = fn
	ev.arg = arg
	return Timer{ev: ev, gen: ev.gen}
}

// SetEventHook registers fn to observe every executed event. The hook runs
// on the simulation goroutine immediately before each event's callback, with
// the event's firing time and global sequence number. A nil fn detaches the
// hook. At most one hook is registered at a time; observers that need to
// stack (internal/simcheck plus internal/telemetry) read the current hook
// with EventHook and chain it inside their own.
func (e *Engine) SetEventHook(fn func(at time.Duration, seq uint64)) {
	e.eventHook = fn
}

// EventHook returns the currently registered hook (nil if none), so a new
// observer can chain the previous one instead of displacing it.
func (e *Engine) EventHook() func(at time.Duration, seq uint64) {
	return e.eventHook
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue empties, the horizon is
// reached, or Stop is called. Events scheduled exactly at the horizon still
// fire; events strictly after it remain queued. It returns the number of
// events executed.
func (e *Engine) Run(horizon time.Duration) int {
	executed := e.exec(horizon, true)
	if e.now < horizon && !e.stopped {
		// Advance the clock to the horizon so repeated Run calls observe
		// monotonic time even when the queue drains early.
		e.now = horizon
	}
	return executed
}

// RunUntil executes events strictly before stop — the half-open window
// [Now, stop) the shard coordinator advances engines by. Unlike Run it does
// not advance the clock past the last executed event, so an event injected
// for exactly time stop can still be scheduled afterwards. It returns the
// number of events executed.
func (e *Engine) RunUntil(stop time.Duration) int {
	return e.exec(stop, false)
}

// exec is the shared event loop: it fires events with at < bound, plus
// at == bound when inclusive.
func (e *Engine) exec(bound time.Duration, inclusive bool) int {
	if e.running {
		panic("simcore: Run re-entered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	executed := 0
	for !e.stopped {
		ev := e.queue.min()
		if ev == nil || ev.at > bound || (!inclusive && ev.at == bound) {
			break
		}
		e.queue.popMin()
		if ev.cancelled {
			e.release(ev)
			continue
		}
		e.now = ev.at
		if e.eventHook != nil {
			e.eventHook(ev.at, ev.seq)
		}
		if ev.argFn != nil {
			ev.argFn(ev.arg)
		} else {
			ev.fn()
		}
		executed++
		e.release(ev)
	}
	return executed
}

// AdvanceTo moves the idle clock forward to t without executing anything.
// The shard coordinator uses it to leave every engine at exactly the run
// horizon after the final window. Moving the clock backwards, or advancing
// it mid-Run, panics — both would corrupt causality.
func (e *Engine) AdvanceTo(t time.Duration) {
	if e.running {
		panic("simcore: AdvanceTo during Run")
	}
	if t < e.now {
		panic(fmt.Sprintf("simcore: AdvanceTo %v before now %v", t, e.now))
	}
	e.now = t
}
