package simcheck

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.txt with the current digests")

// goldenScenarios are the canonical runs whose full event-stream digests are
// pinned in testdata/golden.txt. A digest change means the simulation now
// executes differently: either an intentional behaviour change (rerun with
// -update and explain the change in the commit) or accidental cross-PR
// nondeterminism — which is exactly what this test exists to catch.
var goldenScenarios = []struct {
	name string
	run  func(t *testing.T) *Checker
}{
	{"cubic-dumbbell", func(t *testing.T) *Checker {
		n, ck := buildDumbbell(41, 24e6, 15*time.Millisecond, bdpBytes(24e6, 30*time.Millisecond), 0, 2,
			func(int) cc.Algorithm { return cubic.New() })
		n.Run(8 * time.Second)
		if vs := ck.Finish(); len(vs) > 0 {
			t.Fatalf("violations: %v", vs)
		}
		return ck
	}},
	{"jury-lossy-dumbbell", func(t *testing.T) *Checker {
		n, ck := buildDumbbell(43, 30e6, 10*time.Millisecond, bdpBytes(30e6, 20*time.Millisecond)*3/2, 0.003, 2,
			func(i int) cc.Algorithm { return core.NewDefault(uint64(i) + 3) })
		n.Run(8 * time.Second)
		if vs := ck.Finish(); len(vs) > 0 {
			t.Fatalf("violations: %v", vs)
		}
		return ck
	}},
}

const goldenPath = "testdata/golden.txt"

func readGolden(t *testing.T) map[string]uint64 {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	defer f.Close()
	out := map[string]uint64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			t.Fatalf("malformed golden digest %q: %v", fields[1], err)
		}
		out[fields[0]] = v
	}
	return out
}

// TestGoldenEventStreamDigests pins the digest of the canonical scenarios
// across PRs.
func TestGoldenEventStreamDigests(t *testing.T) {
	digests := make(map[string]uint64, len(goldenScenarios))
	for _, gs := range goldenScenarios {
		ck := gs.run(t)
		digests[gs.name] = ck.Digest()
	}
	if *updateGolden {
		var b strings.Builder
		b.WriteString("# Golden event-stream digests (simcheck.Checker.Digest).\n")
		b.WriteString("# Regenerate with: go test ./internal/simcheck -run TestGolden -update\n")
		for _, gs := range goldenScenarios {
			fmt.Fprintf(&b, "%s 0x%016x\n", gs.name, digests[gs.name])
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %v", digests)
		return
	}
	want := readGolden(t)
	for _, gs := range goldenScenarios {
		w, ok := want[gs.name]
		if !ok {
			t.Errorf("scenario %s missing from %s (run -update)", gs.name, goldenPath)
			continue
		}
		if got := digests[gs.name]; got != w {
			t.Errorf("scenario %s digest %#016x != golden %#016x — the simulation executes "+
				"differently than when the golden file was recorded (intentional change? rerun "+
				"with -update; otherwise hunt the nondeterminism)", gs.name, got, w)
		}
	}
}
