package telemetry

import (
	"fmt"
	"os"
	"time"
)

// Hub bundles one process's telemetry: the metric registry, the span/event
// tracer, and the optional debug server. A nil *Hub is the disabled state —
// every method no-ops — so instrumented packages hold a possibly-nil hub
// and never branch beyond a nil check.
type Hub struct {
	Registry *Registry
	Tracer   *Tracer

	sink  *Sink
	debug *DebugServer
}

// Options mirrors the CLI surface every binary exposes: -telemetry,
// -trace-out, and -debug-addr. Setting TraceOut or DebugAddr implies
// Enabled.
type Options struct {
	Enabled   bool
	TraceOut  string // JSONL spans/events path ("-" for stderr)
	DebugAddr string // live debug endpoint address, e.g. 127.0.0.1:8787
}

// Setup builds a Hub from CLI options. With everything off it returns
// (nil, nil): the disabled hub. Call Close when the run finishes to flush
// the trace sink and stop the debug server.
func Setup(o Options) (*Hub, error) {
	if !o.Enabled && o.TraceOut == "" && o.DebugAddr == "" {
		return nil, nil
	}
	h := &Hub{Registry: NewRegistry()}
	if o.TraceOut != "" {
		var err error
		if o.TraceOut == "-" {
			h.sink = NewSink(nopCloser{os.Stderr})
		} else {
			f, ferr := os.Create(o.TraceOut)
			if ferr != nil {
				err = ferr
			} else {
				h.sink = NewSink(f)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: trace output: %w", err)
		}
		h.Tracer = NewTracer(h.sink)
	}
	if o.DebugAddr != "" {
		d, err := ServeDebug(o.DebugAddr, h.Registry)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("telemetry: debug server: %w", err)
		}
		h.debug = d
	}
	h.preRegister()
	return h, nil
}

type nopCloser struct{ w *os.File }

func (n nopCloser) Write(p []byte) (int, error) { return n.w.Write(p) }

// preRegister creates the core metric families of all three runtime domains
// up front, so the exposition page always shows the full schema (zeros
// included) even before — or without — the corresponding subsystem running.
func (h *Hub) preRegister() {
	r := h.Registry
	// sim domain
	r.Counter("sim_packets_sent_total", "packets transmitted by all flows")
	r.Counter("sim_packets_acked_total", "acknowledgments delivered to senders")
	r.Counter("sim_packets_lost_total", "sender-detected packet losses")
	r.Counter("sim_queue_drops_total", "packets discarded by link queues (overflow + random)")
	r.Counter("sim_faults_injected_total", "fault-injector actions on packets")
	r.Counter("sim_intervals_total", "interval statistics delivered to controllers")
	r.Counter("sim_engine_events_total", "discrete events executed by instrumented engines")
	r.Histogram("sim_ack_rtt_seconds", "per-ACK round-trip time", ExpBuckets(1e-3, 2, 14))
	r.Gauge("sim_virtual_time_seconds", "virtual clock of the most recently attached network")
	// train domain
	r.Gauge("train_epoch", "last completed training epoch")
	r.Gauge("train_mean_reward", "mean per-step reward of the last epoch")
	r.Gauge("train_td_error", "mean TD error of the last epoch's final update")
	r.Gauge("train_replay_occupancy", "transitions resident in the replay buffer")
	r.Gauge("train_skipped_updates", "optimizer steps skipped on non-finite gradients")
	r.Counter("train_epochs_total", "training epochs completed")
	r.Histogram("train_update_phase_seconds", "wall time of each epoch's TD3 update phase", ExpBuckets(1e-3, 2, 16))
	r.Histogram("train_checkpoint_seconds", "wall time of atomic checkpoint writes", ExpBuckets(1e-4, 2, 14))
	// rpc domain
	r.Counter("rpc_remote_decisions_total", "policy decisions answered by the inference service")
	r.Counter("rpc_fallback_decisions_total", "policy decisions served by the local fallback")
	r.Histogram("rpc_decide_seconds", "client-observed decision round-trip latency", ExpBuckets(1e-5, 2, 16))
	r.Gauge("rpc_server_decisions", "requests served by the local inference server")
	r.Gauge("rpc_server_panics", "connections dropped by a panicking policy")
	r.Gauge("rpc_server_batches", "policy executions (batched or single) run by the daemon")
	r.Gauge("rpc_server_batched_requests", "requests that entered batch execution")
	r.Gauge("rpc_server_shed", "requests shed with BUSY by admission control")
	r.Gauge("rpc_server_nonfinite", "decisions suppressed by the non-finite output guard")
	r.Gauge("rpc_server_swaps", "successful policy hot-swaps")
	r.Gauge("rpc_server_rollbacks", "automatic policy-version rollbacks")
	r.Gauge("rpc_server_timeouts", "requests that outlived the serving deadline")
	r.Gauge("rpc_server_write_drops", "connections dropped by the response write deadline")
	r.Gauge("rpc_server_queue_depth", "admitted requests awaiting batch execution")
	r.Gauge("rpc_server_active_conns", "currently served connections")
	r.Gauge("rpc_server_policy_version", "id of the serving policy version")
	// exp domain
	r.Counter("exp_runs_started_total", "scenario runs started")
	r.Counter("exp_runs_finished_total", "scenario runs finished successfully")
	r.Counter("exp_runs_failed_total", "scenario runs that returned an error")
	r.Counter("exp_panic_retries_total", "scenario runs retried after a panic")
	r.Histogram("exp_run_seconds", "wall time of one scenario run", ExpBuckets(1e-3, 2, 18))
}

// Enabled reports whether the hub is live.
func (h *Hub) Enabled() bool { return h != nil }

// Debug returns the hub's live debug server (nil when none is running),
// letting callers mount extra endpoints via DebugServer.Handle.
func (h *Hub) Debug() *DebugServer {
	if h == nil {
		return nil
	}
	return h.debug
}

// DebugAddr reports the bound debug address ("" when none).
func (h *Hub) DebugAddr() string {
	if h == nil {
		return ""
	}
	return h.debug.Addr()
}

// StartSpan opens a span on the hub's tracer (inert span when disabled or
// when no trace output is configured).
func (h *Hub) StartSpan(name string, virtual time.Duration) Span {
	if h == nil {
		return Span{}
	}
	return h.Tracer.Start(name, virtual)
}

// Event emits a structured event on the hub's tracer (no-op when disabled).
func (h *Hub) Event(domain, name string, virtual time.Duration, kvs ...KV) {
	if h == nil {
		return
	}
	h.Tracer.Event(domain, name, virtual, kvs...)
}

// Flush drains the trace sink.
func (h *Hub) Flush() error {
	if h == nil {
		return nil
	}
	return h.sink.Flush()
}

// Close flushes the trace sink and stops the debug server.
func (h *Hub) Close() error {
	if h == nil {
		return nil
	}
	err := h.sink.Close()
	if cerr := h.debug.Close(); err == nil {
		err = cerr
	}
	return err
}
