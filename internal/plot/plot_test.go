package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Throughput dynamics",
		XLabel: "time (s)",
		YLabel: "Mbps",
		Series: []Series{
			{Name: "flow-0", X: []float64{0, 1, 2, 3}, Y: []float64{0, 40, 45, 48}},
			{Name: "flow-1", X: []float64{1, 2, 3}, Y: []float64{0, 20, 25}},
			{Name: "pareto", X: []float64{1, 2}, Y: []float64{3, 4}, Points: true},
		},
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	svg := sampleChart().SVG()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestSVGContainsExpectedElements(t *testing.T) {
	svg := sampleChart().SVG()
	for _, want := range []string{"<polyline", "<circle", "Throughput dynamics", "flow-0", "flow-1", "Mbps", "time (s)"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := &Chart{Title: `<script>"x"&y</script>`, Series: []Series{{Name: "a<b", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	svg := c.SVG()
	if strings.Contains(svg, "<script>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b") {
		t.Fatal("series name not escaped")
	}
}

func TestSVGHandlesDegenerateData(t *testing.T) {
	cases := []*Chart{
		{Title: "empty"},
		{Title: "one-point", Series: []Series{{Name: "p", X: []float64{1}, Y: []float64{1}}}},
		{Title: "flat", Series: []Series{{Name: "f", X: []float64{0, 1}, Y: []float64{5, 5}}}},
		{Title: "nan", Series: []Series{{Name: "n", X: []float64{0, math.NaN(), 2}, Y: []float64{1, 2, math.Inf(1)}}}},
	}
	for _, c := range cases {
		svg := c.SVG()
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
			t.Fatalf("%s: malformed envelope", c.Title)
		}
		if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
			t.Fatalf("%s: non-finite coordinates leaked into SVG", c.Title)
		}
	}
}

func TestTicksAreRoundAndCover(t *testing.T) {
	if err := quick.Check(func(loRaw, spanRaw float64) bool {
		lo := math.Mod(loRaw, 1000)
		span := math.Abs(math.Mod(spanRaw, 1000)) + 0.1
		ts := ticks(lo, lo+span, 6)
		if len(ts) == 0 || len(ts) > 15 {
			return false
		}
		for _, t := range ts {
			if t < lo-span/1e6 || t > lo+span*(1+1e-6) {
				return false
			}
		}
		// Strictly increasing.
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500000: "1.5M",
		2500:    "2.5k",
		0.5:     "0.5",
	}
	for in, want := range cases {
		if got := fmtTick(in); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestYRangePinning(t *testing.T) {
	c := sampleChart()
	c.YMin, c.YMax = 0, 100
	_, _, ymin, ymax := c.bounds()
	if ymin != 0 || ymax != 100 {
		t.Fatalf("pinned bounds %v..%v", ymin, ymax)
	}
}
