#!/bin/sh
# profile.sh — capture profiles from a live run through the telemetry debug
# endpoint. Builds jurysim, starts a long scenario with -debug-addr, waits
# for /metrics to come up, and pulls profiles for `go tool pprof`.
#
# Default mode writes one CPU profile:
#
#   scripts/profile.sh                                    # 10s of the default scenario
#   PROF_SECONDS=30 OUT=/tmp/cpu.pprof scripts/profile.sh
#   scripts/profile.sh -scheme cubic,jury -rate 200 -duration 600s
#
# Bundle mode (--bundle) captures the whole observability surface in one
# shot — heap and goroutine snapshots, a CPU profile, and the live /fairness
# page from the streaming observer — into a timestamped directory:
#
#   scripts/profile.sh --bundle                           # profiles/<UTC stamp>/
#   OUTDIR=/tmp/bundle scripts/profile.sh --bundle -scheme jury -flows 8
#
# Extra arguments replace the default jurysim scenario flags. Virtual time
# runs much faster than wall time (~600 virtual seconds per wall second per
# 100 Mbps-class flow pair is typical), so pick a -duration whose *wall*
# time outlives the profile window; the default scenario lasts a few wall
# minutes and is killed once the capture completes.
set -eu
cd "$(dirname "$0")/.."

PROF_SECONDS=${PROF_SECONDS:-10}
OUT=${OUT:-cpu.pprof}
ADDR=${ADDR:-127.0.0.1:8791}

MODE=single
if [ "${1:-}" = "--bundle" ]; then
    MODE=bundle
    shift
fi

BINDIR=$(mktemp -d)
go build -o "$BINDIR/jurysim" ./cmd/jurysim

if [ $# -eq 0 ]; then
    set -- -scheme cubic,jury -rate 100 -duration 36000s
fi
# Bundle mode needs the streaming observer live for the /fairness snapshot.
if [ "$MODE" = bundle ]; then
    set -- "$@" -obs
fi
"$BINDIR/jurysim" "$@" -debug-addr "$ADDR" >/dev/null 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$BINDIR"' EXIT

i=0
until curl -sf "http://$ADDR/metrics" >/dev/null 2>&1; do
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "profile.sh: jurysim exited before the debug endpoint came up" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "profile.sh: debug endpoint never came up on $ADDR" >&2
        exit 1
    fi
    sleep 0.2
done

if [ "$MODE" = single ]; then
    echo "profiling http://$ADDR for ${PROF_SECONDS}s..."
    curl -sf -o "$OUT" "http://$ADDR/debug/pprof/profile?seconds=$PROF_SECONDS"
    echo "wrote $OUT  (inspect: go tool pprof $OUT)"
    exit 0
fi

# --bundle: heap + goroutine snapshots, the CPU profile, and the live
# fairness page, into one timestamped directory. The instantaneous captures
# land first so the bundle is useful even if the run ends mid CPU window.
OUTDIR=${OUTDIR:-profiles/$(date -u +%Y%m%dT%H%M%SZ)}
mkdir -p "$OUTDIR"
echo "bundling http://$ADDR into $OUTDIR (CPU window ${PROF_SECONDS}s)..."
curl -sf -o "$OUTDIR/heap.pprof" "http://$ADDR/debug/pprof/heap"
curl -sf -o "$OUTDIR/goroutine.pprof" "http://$ADDR/debug/pprof/goroutine"
curl -sf -o "$OUTDIR/fairness.json" "http://$ADDR/fairness" ||
    echo "profile.sh: /fairness unavailable (no -obs surface?)" >&2
curl -sf -o "$OUTDIR/cpu.pprof" "http://$ADDR/debug/pprof/profile?seconds=$PROF_SECONDS"
# A second fairness snapshot after the CPU window shows how far the run
# advanced while profiled.
curl -sf -o "$OUTDIR/fairness-after.json" "http://$ADDR/fairness" || true
ls -l "$OUTDIR"
echo "bundle in $OUTDIR  (inspect: go tool pprof $OUTDIR/cpu.pprof; juryplot fairness -in $OUTDIR/fairness.json)"
