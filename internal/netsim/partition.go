package netsim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/simcore"
)

// This file partitions a topology into shards for space-parallel execution
// on a simcore.Coordinator. The only inter-shard interactions in the
// emulator are packets traversing propagation-delay links — a packet that
// finishes serializing on link A arrives at the next link B one propagation
// delay later, an ACK reaches its sender one return leg after delivery, and
// a drop's loss-detection event reaches the sender one (at least base) RTT
// after the drop — so cutting the topology across propagation edges gives
// every cross-shard event a positive static lookahead, the precondition for
// conservative windowed synchronization.

// ErrZeroDelayCut reports a shard assignment that separates two links
// adjacent in some flow's path across a zero-propagation-delay edge: the
// downstream link would see packets the very instant the upstream link
// finishes serializing them, leaving no lookahead to synchronize on.
var ErrZeroDelayCut = errors.New("netsim: zero-delay link adjacency cut across shards")

// Partition maps every link and flow of a network to a shard and records
// the synchronization bounds of that cut.
type Partition struct {
	// Shards is the number of shards (1 = sequential, no synchronization).
	Shards int
	// LinkShard and FlowShard give each link/flow's shard by creation index.
	// A flow always lives on its first link's shard, so a freshly sent
	// packet's first arrival never crosses shards.
	LinkShard []int
	FlowShard []int
	// Lookahead[i][j] is the minimum virtual delay of any event shard i can
	// emit for shard j (0 = no such event exists): packet handoffs across
	// cut links, ACK return legs, and drop loss-detection bounds.
	Lookahead [][]time.Duration
	// Window is the global conservative synchronization window: the minimum
	// non-zero pairwise lookahead. 0 means the shards never exchange events
	// and can run fully independently.
	Window time.Duration
}

// lookaheadInto folds one candidate delay into the pairwise matrix.
func (p *Partition) lookaheadInto(src, dst int, d time.Duration) {
	if src == dst || d <= 0 {
		return
	}
	if cur := p.Lookahead[src][dst]; cur == 0 || d < cur {
		p.Lookahead[src][dst] = d
	}
}

// Partition computes a shard assignment with at most maxShards shards:
// links bound by zero-delay adjacencies stay together, and the resulting
// atoms are balanced across shards by traffic weight (largest first). A
// single-bottleneck topology — or maxShards ≤ 1 — yields one shard, which
// RunSharded executes sequentially with zero synchronization overhead.
func (n *Network) Partition(maxShards int) (*Partition, error) {
	nl := len(n.links)
	if nl == 0 {
		return nil, fmt.Errorf("netsim: partitioning a network with no links")
	}
	// Union links that may not be separated: consecutive path hops whose
	// upstream propagation delay is zero.
	parent := make([]int, nl)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	idx := make(map[*Link]int, nl)
	for i, l := range n.links {
		idx[l] = i
	}
	for _, f := range n.flows {
		for h := 0; h+1 < len(f.cfg.Path); h++ {
			if f.cfg.Path[h].cfg.Delay <= 0 {
				a, b := find(idx[f.cfg.Path[h]]), find(idx[f.cfg.Path[h+1]])
				if a != b {
					parent[b] = a
				}
			}
		}
	}
	// Collect atoms (in first-link order, for determinism) and weigh them by
	// the traffic they will carry: links plus the flows that touch them.
	atomOf := make([]int, nl)
	var atoms []int // representative link index per atom
	seen := map[int]int{}
	for i := range n.links {
		r := find(i)
		a, ok := seen[r]
		if !ok {
			a = len(atoms)
			seen[r] = a
			atoms = append(atoms, r)
		}
		atomOf[i] = a
	}
	weight := make([]int, len(atoms))
	for i := range n.links {
		weight[atomOf[i]]++
	}
	for _, f := range n.flows {
		for _, l := range f.cfg.Path {
			weight[atomOf[idx[l]]]++
		}
	}
	if maxShards < 1 {
		maxShards = 1
	}
	shards := len(atoms)
	if shards > maxShards {
		shards = maxShards
	}
	// Largest-weight-first bin packing into the emptiest shard. Ties break
	// on atom order, so the assignment is deterministic.
	order := make([]int, len(atoms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weight[order[a]] > weight[order[b]] })
	load := make([]int, shards)
	atomShard := make([]int, len(atoms))
	for _, a := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		atomShard[a] = best
		load[best] += weight[a]
	}
	assign := make([]int, nl)
	for i := range n.links {
		assign[i] = atomShard[atomOf[i]]
	}
	return n.PartitionAssign(assign)
}

// PartitionAssign validates an explicit link→shard assignment and computes
// its lookahead bounds. It returns ErrZeroDelayCut if two links adjacent in
// some flow's path are assigned to different shards across a zero-delay
// edge. Shard indices must cover 0..max contiguously.
func (n *Network) PartitionAssign(linkShard []int) (*Partition, error) {
	if len(linkShard) != len(n.links) {
		return nil, fmt.Errorf("netsim: assignment covers %d links, network has %d", len(linkShard), len(n.links))
	}
	shards := 0
	for i, s := range linkShard {
		if s < 0 {
			return nil, fmt.Errorf("netsim: link %d assigned to negative shard %d", i, s)
		}
		if s+1 > shards {
			shards = s + 1
		}
	}
	used := make([]bool, shards)
	for _, s := range linkShard {
		used[s] = true
	}
	for s, u := range used {
		if !u {
			return nil, fmt.Errorf("netsim: shard %d has no links", s)
		}
	}
	p := &Partition{
		Shards:    shards,
		LinkShard: linkShard,
		FlowShard: make([]int, len(n.flows)),
		Lookahead: make([][]time.Duration, shards),
	}
	for i := range p.Lookahead {
		p.Lookahead[i] = make([]time.Duration, shards)
	}
	idx := make(map[*Link]int, len(n.links))
	for i, l := range n.links {
		idx[l] = i
	}
	for fi, f := range n.flows {
		fs := linkShard[idx[f.cfg.Path[0]]]
		p.FlowShard[fi] = fs
		for h := 0; h+1 < len(f.cfg.Path); h++ {
			up, down := f.cfg.Path[h], f.cfg.Path[h+1]
			su, sd := linkShard[idx[up]], linkShard[idx[down]]
			if su == sd {
				continue
			}
			if up.cfg.Delay <= 0 {
				return nil, fmt.Errorf("%w: links %d -> %d on flow %q", ErrZeroDelayCut, idx[up], idx[down], f.cfg.Name)
			}
			p.lookaheadInto(su, sd, up.cfg.Delay)
		}
		// ACK return leg: delivery on the last link's shard, reception on the
		// flow's shard, one full return leg apart.
		sl := linkShard[idx[f.cfg.Path[len(f.cfg.Path)-1]]]
		p.lookaheadInto(sl, fs, f.returnLeg)
		// Drop loss-detection: any link on the path may discard a packet and
		// notify the sender. The notification delay is the packet's send-time
		// srtt stamp; every RTT sample is ≥ baseRTT, so max(baseRTT, 1ms) is
		// a static floor (the 1ms from Flow.lossDetectDelay's clamp).
		la := f.baseRTT
		if la < time.Millisecond {
			la = time.Millisecond
		}
		for _, l := range f.cfg.Path {
			p.lookaheadInto(linkShard[idx[l]], fs, la)
		}
	}
	for i := range p.Lookahead {
		for _, d := range p.Lookahead[i] {
			if d > 0 && (p.Window == 0 || d < p.Window) {
				p.Window = d
			}
		}
	}
	return p, nil
}

// ShardRun reports how a sharded execution went.
type ShardRun struct {
	// Partition is the assignment the run used.
	Partition *Partition
	// Executed is the number of events each shard executed.
	Executed []int64
	// BarrierRounds is how many barrier episodes the coordinator used (0 for
	// a sequential fallback run) and FusedWindows how many windows skipped
	// the cross-shard exchange phase entirely.
	BarrierRounds int64
	FusedWindows  int64
}

// RunSharded executes the simulation to the horizon on up to maxShards
// shards. With one shard (or a topology that only partitions into one) it
// falls straight through to the sequential Run — identical behavior, zero
// synchronization overhead. With more, links and flows are pinned to
// per-shard engines and advanced in conservative lock-step windows by a
// simcore.Coordinator; the network's primary engine becomes shard 0, so
// observers attached to it (simcheck, telemetry) see the merged
// time-ordered event stream of all shards.
//
// Determinism: a sharded run is bit-reproducible for a given shard count,
// and its simcheck event-stream digest matches the sequential run of the
// same scenario exactly, except for scenarios where a flow's packet is
// dropped by a link owned by a different shard (there the loss-detection
// delay is the send-time srtt stamp rather than the srtt at drop time — see
// packet.lossDelay).
//
// Taps fire concurrently from different shards in a sharded run; the taps
// in this repository (simcheck's checker, telemetry's observer) are
// shard-safe.
func (n *Network) RunSharded(horizon time.Duration, maxShards int) (*ShardRun, error) {
	p, err := n.Partition(maxShards)
	if err != nil {
		return nil, err
	}
	if p.Shards <= 1 {
		executed := n.Run(horizon)
		return &ShardRun{Partition: p, Executed: []int64{int64(executed)}}, nil
	}
	engines := make([]*simcore.Engine, p.Shards)
	engines[0] = n.eng
	for i := 1; i < p.Shards; i++ {
		engines[i] = simcore.NewEngine()
	}
	coord := simcore.NewCoordinator(engines, p.Window)
	if n.whDue != nil {
		// The window hook rides the coordinator's exchange barrier instead of
		// the engine event hook: fire runs on shard 0's worker with every
		// other worker parked, so it may merge per-shard observer state.
		coord.SetWindowHook(n.whDue, n.whFire)
	}
	// Re-pool packets per shard so every arena stays single-goroutine: a
	// flow allocates and releases on its own shard, a link clones and
	// releases duplicates on its own shard.
	n.shardArenas = make([]pktArena, p.Shards)
	for i, l := range n.links {
		l.shard = p.LinkShard[i]
		l.eng = engines[l.shard]
		l.xs = coord.Shard(l.shard)
		l.arena = &n.shardArenas[l.shard]
	}
	for i, f := range n.flows {
		f.shard = p.FlowShard[i]
		f.eng = engines[f.shard]
		f.arena = &n.shardArenas[f.shard]
	}
	for _, f := range n.flows {
		f.armStart()
		f.reserveSeries(horizon)
	}
	coord.Run(horizon)
	return &ShardRun{
		Partition:     p,
		Executed:      coord.ExecutedPerShard(),
		BarrierRounds: coord.BarrierRounds(),
		FusedWindows:  coord.FusedWindows(),
	}, nil
}
