package exp

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/faults"
	"repro/internal/runstore"
	"repro/internal/traces"
)

// attachTestStore opens a store in a temp dir, attaches it globally, and
// restores the previous attachment on cleanup.
func attachTestStore(t *testing.T, dir string, resume bool) *runstore.Store {
	t.Helper()
	st, err := runstore.Open(runstore.Options{Dir: dir, Fsync: runstore.FsyncNever})
	if err != nil {
		t.Fatalf("runstore.Open: %v", err)
	}
	prevStore, prevResume := Store, StoreResume
	Store, StoreResume = st, resume
	t.Cleanup(func() {
		Store, StoreResume = prevStore, prevResume
		st.Close()
	})
	return st
}

// storeJobs is a small cacheable batch mixing schemes, faults-free links,
// staggered starts, and RTT heterogeneity.
func storeJobs() []Scenario {
	return []Scenario{
		{
			Name: "store-cubic-pair", Rate: 20e6, OneWayDelay: 10 * time.Millisecond,
			BufferBytes: 50_000, Horizon: 3 * time.Second, Seed: 11,
			Flows: []FlowSpec{{Scheme: "cubic"}, {Scheme: "cubic", Start: time.Second}},
		},
		{
			Name: "store-bbr-lossy", Rate: 25e6, OneWayDelay: 8 * time.Millisecond,
			BufferBytes: 60_000, LossRate: 0.002, Horizon: 3 * time.Second, Seed: 12,
			Flows: []FlowSpec{{Scheme: "bbr"}, {Scheme: "cubic", ExtraOneWay: 15 * time.Millisecond}},
		},
		{
			Name: "store-vegas-solo", Rate: 15e6, OneWayDelay: 12 * time.Millisecond,
			BufferBytes: 40_000, Horizon: 2 * time.Second, Seed: 13,
			Flows: []FlowSpec{{Scheme: "vegas"}},
		},
	}
}

// summaryFingerprint serializes everything a figure runner can read from a
// result via the stored-summary surface, so cached and live results compare
// byte-identical or not at all.
func summaryFingerprint(r *RunResult) string {
	var b []byte
	b = fmt.Appendf(b, "util=%v checked=%v digest=%016x link=%+v\n",
		r.Utilization, r.Checked, r.Digest, r.LinkSummary)
	for _, f := range r.FlowSummaries {
		deg, nf := f.JuryCounters()
		b = fmt.Appendf(b, "%s rtt=%v stats=%+v jury=%d/%d\n", f.Name(), f.BaseRTT(), f.Stats(), deg, nf)
		for _, p := range f.Series() {
			b = fmt.Appendf(b, "%+v\n", p)
		}
	}
	return string(b)
}

// TestRunManyWarmStoreSkipsSimulation: a warm resumable store serves a
// repeat sweep with ZERO simulator invocations and digest-identical results,
// and a warm non-resuming store re-runs everything while re-verifying
// digests against the stored records.
func TestRunManyWarmStoreSkipsSimulation(t *testing.T) {
	jobs := storeJobs()
	attachTestStore(t, t.TempDir(), true)

	liveRuns.Store(0)
	cold, err := RunMany(jobs)
	if err != nil {
		t.Fatalf("cold RunMany: %v", err)
	}
	if n := liveRuns.Load(); n != int64(len(jobs)) {
		t.Fatalf("cold sweep executed %d simulations, want %d", n, len(jobs))
	}
	if Store.Len() != len(jobs) {
		t.Fatalf("store holds %d records after %d runs", Store.Len(), len(jobs))
	}

	liveRuns.Store(0)
	warm, err := RunMany(jobs)
	if err != nil {
		t.Fatalf("warm RunMany: %v", err)
	}
	if n := liveRuns.Load(); n != 0 {
		t.Fatalf("warm sweep executed %d simulations, want 0", n)
	}
	for i := range jobs {
		if !warm[i].Cached {
			t.Fatalf("warm result %d not marked Cached", i)
		}
		if warm[i].Digest != cold[i].Digest {
			t.Fatalf("job %d: warm digest %016x != cold %016x", i, warm[i].Digest, cold[i].Digest)
		}
		if got, want := summaryFingerprint(warm[i]), summaryFingerprint(cold[i]); got != want {
			t.Fatalf("job %d: cached result differs from live run:\n got %s\nwant %s", i, got, want)
		}
	}

	// Recording without resuming re-executes and re-verifies digests.
	StoreResume = false
	liveRuns.Store(0)
	if _, err := RunMany(jobs); err != nil {
		t.Fatalf("re-verify RunMany: %v", err)
	}
	if n := liveRuns.Load(); n != int64(len(jobs)) {
		t.Fatalf("non-resume sweep executed %d simulations, want %d", n, len(jobs))
	}
}

// walFrameEnds parses a WAL image and returns the byte offset after the
// header and after each framed record — every legal truncation point.
func walFrameEnds(t *testing.T, wal []byte) []int {
	t.Helper()
	const headerLen, frameHdrLen = 16, 8
	ends := []int{headerLen}
	off := headerLen
	for off < len(wal) {
		if len(wal)-off < frameHdrLen {
			t.Fatalf("torn reference WAL at offset %d", off)
		}
		n := int(binary.LittleEndian.Uint32(wal[off:]))
		off += frameHdrLen + n
		if off > len(wal) {
			t.Fatalf("reference WAL frame overruns the file")
		}
		ends = append(ends, off)
	}
	return ends
}

// TestKillAndResumeSweep is the resumability proof: a robustness sweep killed
// after any number of completed records — and once mid-record — resumes into
// a byte-identical final table, re-running exactly the dropped records.
func TestKillAndResumeSweep(t *testing.T) {
	opts := RobustnessOptions{
		Schemes:  []string{"bbr", "cubic"},
		Cases:    RobustnessCases()[:2], // clean + burst-loss
		Rate:     20e6,
		Flows:    2,
		Lifetime: 3 * time.Second,
		Seed:     7,
	}
	refDir := t.TempDir()
	attachTestStore(t, refDir, true)
	want, err := RobustnessTable(opts)
	if err != nil {
		t.Fatalf("reference RobustnessTable: %v", err)
	}
	total := len(opts.Schemes) * len(opts.Cases)
	if Store.Len() != total {
		t.Fatalf("reference sweep stored %d records, want %d", Store.Len(), total)
	}
	if err := Store.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(refDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	ends := walFrameEnds(t, wal)
	if len(ends) != total+1 {
		t.Fatalf("reference WAL has %d records, want %d", len(ends)-1, total)
	}

	// cutAt truncates the WAL image at a byte offset ("kill -9 here") and
	// re-runs the sweep against the surviving prefix.
	cutAt := func(cut, wantLive int, wantDirty bool) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st := attachTestStore(t, dir, true)
		if st.Repair().Dirty() != wantDirty {
			t.Fatalf("cut at %d: repair dirty = %v, want %v", cut, st.Repair().Dirty(), wantDirty)
		}
		liveRuns.Store(0)
		got, err := RobustnessTable(opts)
		if err != nil {
			t.Fatalf("cut at %d: resumed RobustnessTable: %v", cut, err)
		}
		if n := liveRuns.Load(); n != int64(wantLive) {
			t.Fatalf("cut at %d: resumed sweep re-ran %d records, want exactly the %d dropped", cut, n, wantLive)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut at %d: resumed table differs from the uninterrupted run:\n got %+v\nwant %+v", cut, got, want)
		}
		if st.Len() != total {
			t.Fatalf("cut at %d: store holds %d records after resume, want %d", cut, st.Len(), total)
		}
	}

	for k, end := range ends {
		cutAt(end, total-k, false)
	}
	// One mid-record kill: the torn half-frame must be repaired away and
	// only the torn record re-run.
	cutAt((ends[1]+ends[2])/2, total-1, true)
}

// TestRetryPathLeavesStoreIntact is the regression test for the half-written
// record hazard: garbage past the store's good offset (a crashed Put, a
// foreign append) plus a sweep whose panicking run is retried must still
// produce a store holding exactly the completed records, each intact.
func TestRetryPathLeavesStoreIntact(t *testing.T) {
	dir := t.TempDir()
	attachTestStore(t, dir, true)
	first, err := Run(storeJobs()[2])
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a torn append landing after the good record.
	if f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		t.Fatal(err)
	} else {
		if _, err := f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	// A sweep mixing a transient panic (retried, uncacheable) with a
	// cacheable run whose Put must land after the torn bytes are healed.
	var calls atomic.Int64
	jobs := []Scenario{
		tinyScenario("flaky-store", func(uint64) cc.Algorithm {
			if calls.Add(1) == 1 {
				panic("transient")
			}
			return cubic.New()
		}),
		storeJobs()[0],
	}
	results, err := RunMany(jobs)
	if err != nil {
		t.Fatalf("RunMany with retry: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("panic seam called %d times, want 2 (initial + retry)", calls.Load())
	}
	if results[0].Cached || results[1].Cached {
		t.Fatal("live runs wrongly marked cached")
	}
	if err := Store.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := runstore.Open(runstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Repair().Dirty() {
		t.Fatalf("torn bytes survived to reopen: %+v", re.Repair())
	}
	recs := re.Records()
	if len(recs) != 2 {
		t.Fatalf("store holds %d records, want exactly the 2 completed cacheable runs", len(recs))
	}
	if recs[0].Digest != first.Digest || recs[0].Scenario != "store-vegas-solo" {
		t.Fatalf("first record corrupted: %+v", recs[0])
	}
	if recs[1].Scenario != "store-cubic-pair" || recs[1].Digest != results[1].Digest {
		t.Fatalf("second record corrupted: %+v", recs[1])
	}
}

// TestRunHugeStoreHit: a repeated huge-mesh run is served from the store
// without building or executing the mesh, with an identical result.
func TestRunHugeStoreHit(t *testing.T) {
	attachTestStore(t, t.TempDir(), true)
	o := HugeOptions{Segments: 2, TotalFlows: 64, Rate: 50e6, Horizon: 200 * time.Millisecond, Shards: 2, Seed: 5}
	liveRuns.Store(0)
	cold, err := RunHuge(o)
	if err != nil {
		t.Fatalf("cold RunHuge: %v", err)
	}
	if liveRuns.Load() != 1 || Store.Len() != 1 {
		t.Fatalf("cold huge run: liveRuns=%d, stored=%d", liveRuns.Load(), Store.Len())
	}
	liveRuns.Store(0)
	warm, err := RunHuge(o)
	if err != nil {
		t.Fatalf("warm RunHuge: %v", err)
	}
	if liveRuns.Load() != 0 {
		t.Fatal("warm huge run executed the simulator")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached huge result differs:\n got %+v\nwant %+v", warm, cold)
	}
	// A custom controller factory is uncacheable.
	o.CC = func(uint64) cc.Algorithm { return cubic.New() }
	liveRuns.Store(0)
	if _, err := RunHuge(o); err != nil {
		t.Fatal(err)
	}
	if liveRuns.Load() != 1 || Store.Len() != 1 {
		t.Fatalf("custom-CC huge run: liveRuns=%d, stored=%d (must run live, must not store)", liveRuns.Load(), Store.Len())
	}
}

// keyStabilityScenarios are the canonical pinned-key scenarios. They pin
// every key input: link knobs, traces, faults, flow specs, seeds, shards.
func keyStabilityScenarios() []Scenario {
	basic := Scenario{
		Name: "canon-basic", Rate: 50e6, OneWayDelay: 10 * time.Millisecond,
		BufferBytes: 100_000, PacketSize: 1500, Horizon: 10 * time.Second,
		Seed: 42, Shards: 1,
		Flows: []FlowSpec{
			{Scheme: "cubic"},
			{Scheme: "bbr", Start: 2 * time.Second, Duration: 6 * time.Second, ExtraOneWay: 5 * time.Millisecond},
		},
	}
	withFaults := basic
	withFaults.Name = "canon-faults"
	withFaults.Shards = 2
	withFaults.Faults = &faults.Config{
		GE:          &faults.GEConfig{PGoodBad: 0.002, PBadGood: 0.25, LossGood: 0, LossBad: 1},
		ReorderProb: 0.01, ReorderMaxDelay: 10 * time.Millisecond,
		DupProb:    0.005,
		JitterProb: 0.02, JitterMax: 5 * time.Millisecond,
		Flap: &faults.FlapConfig{MeanUp: 15 * time.Second, MeanDown: 150 * time.Millisecond},
	}
	constTrace := basic
	constTrace.Name = "canon-const-trace"
	constTrace.Trace = traces.Constant(30e6)
	stepTrace := basic
	stepTrace.Name = "canon-step-trace"
	stepTrace.Trace = &traces.Step{
		Points: []traces.Point{{At: 0, Rate: 40e6}, {At: 5 * time.Second, Rate: 20e6}},
		Loop:   10 * time.Second,
	}
	return []Scenario{basic, withFaults, constTrace, stepTrace}
}

// TestScenarioKeyStability pins the content hash of canonical scenarios. A
// failure here means the key schema changed: every stored record becomes
// unreachable under the new keys. If the change is intentional, bump
// KeySchemaVersion (see its doc comment for the procedure) and repin with
// JURY_PRINT_KEYS=1 go test -run TestScenarioKeyStability -v ./internal/exp.
func TestScenarioKeyStability(t *testing.T) {
	want := map[string]string{
		"canon-basic":       "1d59e6e02e67229dd6709bed1670c4081e42bf5ab4c981f7d2066184bce45445",
		"canon-faults":      "9cb0d094cc296f6f64a72370909da76a224d647f525f998dae0aca799b3697ba",
		"canon-const-trace": "02bb19bbc0c3fc04a5a193b6880d5fc22003851d74b3af2129c4d3dd7e8c6638",
		"canon-step-trace":  "e21ef44acf5cf3fa976bd8511b9a6b8514a23760f247c1a6ffc1e596612da5a7",
	}
	for _, s := range keyStabilityScenarios() {
		key, ok := ScenarioKey(s)
		if !ok {
			t.Fatalf("canonical scenario %q not cacheable", s.Name)
		}
		if os.Getenv("JURY_PRINT_KEYS") != "" {
			t.Logf("%q: %q,", s.Name, key.String())
			continue
		}
		if key.String() != want[s.Name] {
			t.Errorf("scenario %q key = %s, want %s\n(key schema changed: bump KeySchemaVersion and repin — see its doc comment)",
				s.Name, key.String(), want[s.Name])
		}
	}

	o := HugeOptions{Segments: 4, TotalFlows: 1000, Rate: 1e9, Horizon: time.Second, Shards: 4, Seed: 3}
	hkey, ok := HugeKey(o, false)
	if !ok {
		t.Fatal("canonical huge options not cacheable")
	}
	const wantHuge = "891f016829bbcea1059c1792e1c0778321e9e76fbf6a31a8fe0a4ceec71932ef"
	if os.Getenv("JURY_PRINT_KEYS") != "" {
		t.Logf("huge: %q,", hkey.String())
	} else if hkey.String() != wantHuge {
		t.Errorf("huge key = %s, want %s (bump KeySchemaVersion and repin)", hkey.String(), wantHuge)
	}

	// Inputs that must (and must not) move the key.
	base := keyStabilityScenarios()[0]
	baseKey, _ := ScenarioKey(base)
	renamed := base
	renamed.Name = "renamed"
	if k, _ := ScenarioKey(renamed); k != baseKey {
		t.Error("scenario Name leaked into the key (it labels, it does not simulate)")
	}
	for _, mut := range []struct {
		name string
		mod  func(*Scenario)
	}{
		{"Rate", func(s *Scenario) { s.Rate = 60e6 }},
		{"OneWayDelay", func(s *Scenario) { s.OneWayDelay = 20 * time.Millisecond }},
		{"BufferBytes", func(s *Scenario) { s.BufferBytes = 50_000 }},
		{"LossRate", func(s *Scenario) { s.LossRate = 0.001 }},
		{"Seed", func(s *Scenario) { s.Seed = 43 }},
		{"Shards", func(s *Scenario) { s.Shards = 2 }},
		{"Horizon", func(s *Scenario) { s.Horizon = 11 * time.Second }},
		{"scheme", func(s *Scenario) { s.Flows[0].Scheme = "vegas" }},
		{"flow start", func(s *Scenario) { s.Flows[1].Start = 3 * time.Second }},
		{"trace", func(s *Scenario) { s.Trace = traces.Constant(50e6) }},
		{"faults", func(s *Scenario) { s.Faults = &faults.Config{DupProb: 0.01} }},
	} {
		s := base
		s.Flows = append([]FlowSpec(nil), base.Flows...)
		mut.mod(&s)
		if k, _ := ScenarioKey(s); k == baseKey {
			t.Errorf("changing %s did not change the key", mut.name)
		}
	}
	custom := base
	custom.Flows = append([]FlowSpec(nil), base.Flows...)
	custom.Flows[0].CC = func(uint64) cc.Algorithm { return cubic.New() }
	if _, ok := ScenarioKey(custom); ok {
		t.Error("FlowSpec.CC override must be uncacheable (function identity has no fingerprint)")
	}
}
