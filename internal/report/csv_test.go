package report

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

func TestWriteFlowSeriesCSV(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 1})
	l := n.AddLink(netsim.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return cc.NewManual(5e6) }})
	n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return cc.NewManual(3e6) }})
	n.Run(5 * time.Second)

	var buf bytes.Buffer
	if err := WriteFlowSeriesCSV(&buf, n.Flows()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output not parseable CSV: %v", err)
	}
	if len(recs) < 20 {
		t.Fatalf("only %d records", len(recs))
	}
	if recs[0][0] != "flow" || len(recs[0]) != 8 {
		t.Fatalf("header %v", recs[0])
	}
	seen := map[string]bool{}
	for _, r := range recs[1:] {
		seen[r[0]] = true
		if _, err := strconv.ParseFloat(r[2], 64); err != nil {
			t.Fatalf("non-numeric throughput %q", r[2])
		}
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("flows missing from CSV: %v", seen)
	}
}

func TestWriteRowsCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteRowsCSV(&buf, []string{"x", "y"}, [][]string{{"1", "2"}, {"a,b", "3"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("comma field not quoted: %q", out)
	}
	if !strings.HasPrefix(out, "x,y\n") {
		t.Fatalf("header wrong: %q", out)
	}
}
