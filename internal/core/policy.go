package core

import (
	"math"

	"repro/internal/cc"
	"repro/internal/nn"
)

// Policy maps the stacked bandwidth-agnostic state to a decision range:
// mean μ ∈ [−1, 1] and radius δ ∈ [0, 1]. Flows sharing a bottleneck see
// identical states and therefore produce identical ranges — the consensus
// point the post-processing phase differentiates (§2.3).
type Policy interface {
	Decide(state []float64) (mu, delta float64)
}

// NNPolicy adapts a trained actor network (internal/rl TD3 actor): output 0
// is μ directly (tanh ∈ [−1,1]); output 1 maps [−1,1] → [0,1] as δ.
type NNPolicy struct {
	Net *nn.MLP

	// scratch makes per-decision inference allocation-free. Lazily built so
	// zero-value construction (NNPolicy{Net: ...}) keeps working.
	scratch *nn.Scratch

	// bscratch backs DecideBatch (see serving.go), grown on demand to the
	// largest batch seen.
	bscratch *nn.BatchScratch
}

// Decide implements Policy.
func (p *NNPolicy) Decide(state []float64) (float64, float64) {
	if p.scratch == nil {
		p.scratch = nn.NewScratch(p.Net)
	}
	out := p.Net.ForwardInto(state, p.scratch)
	mu := cc.Clamp(out[0], -1, 1)
	delta := cc.Clamp((out[1]+1)/2, 0, 1)
	return mu, delta
}

// ActionToRange converts a raw 2-D agent action in [−1,1]² to (μ, δ) the
// same way NNPolicy does — training code uses it so the replayed actions
// and the deployed policy share one convention.
func ActionToRange(action []float64) (mu, delta float64) {
	return cc.Clamp(action[0], -1, 1), cc.Clamp((action[1]+1)/2, 0, 1)
}

// ReferencePolicy is a deterministic, hand-derived stand-in for a converged
// Jury actor (see DESIGN.md substitutions). It reacts only to the
// bandwidth-agnostic signals, exactly like the learned policy would, and it
// encodes the asymmetric delay-gradient behaviour a policy trained with
// Eq. 9 converges to — the reward's (RTT − RTT_min) term makes standing
// queues costly even though the state only carries RTT *differences*:
//
//   - ΔRTT flat and loss flat: the bottleneck queue is stable (empty at the
//     operating point) — probe up with μ = ProbeGain;
//   - ΔRTT > ε: the queue is building — back off in proportion;
//   - ΔRTT < −ε: the queue is draining — hold (μ = 0) until it empties
//     rather than re-probe into a half-full queue;
//   - loss growth always subtracts with a large gain.
//
// δ is a fixed fraction of the decision range, leaving the fairness
// differentiation entirely to the occupancy post-processing. Because
// fairness in Jury is carried by that post-processing, any policy of this
// shape converges to a fair share; a learned policy only sharpens the
// utilization/latency trade-off.
type ReferencePolicy struct {
	// ProbeGain is μ when the bottleneck shows no congestion.
	ProbeGain float64
	// RTTGain scales the response to the overload fraction ΔRTT/Δt (Eq. 1).
	RTTGain float64
	// RTTEps is the ΔRTT/Δt dead band treated as "flat".
	RTTEps float64
	// LossGain scales the response to loss growth.
	LossGain float64
	// Delta is the constant decision radius.
	Delta float64
}

// NewReferencePolicy returns the tuned reference policy used by the
// experiment harness when no trained weights are supplied.
func NewReferencePolicy() *ReferencePolicy {
	// ProbeGain equals Delta: under flat signals a = μ + (1−2r)·δ =
	// δ·(2−2r), so a flow holding its entire fair share (r→1) holds its
	// rate while smaller flows climb — the calibration a policy trained
	// against the post-processing phase converges to.
	return &ReferencePolicy{ProbeGain: 0.5, RTTGain: 10, RTTEps: 0.02, LossGain: 25, Delta: 0.5}
}

// Decide implements Policy. The state layout is the Transformer's: pairs of
// (ΔRTT_norm, lossRatio) with the most recent pair last.
func (p *ReferencePolicy) Decide(state []float64) (float64, float64) {
	// ΔRTT: average the diffs across the whole window. Consecutive diffs
	// telescope, so this is (RTT_now − RTT_oldest)/window — the per-interval
	// sampling noise of intermediate RTTs cancels and only genuine drift
	// survives.
	var drtt float64
	var n int
	// Loss: sum the loss-ratio signals over the window. Each entry is
	// ≈ ln((1−L_t)/(1−L_{t−1})), so the sum telescopes to the *net* loss
	// change across the window: the symmetric up/down noise of a steady
	// random-loss link cancels (that is how Jury stays efficient on lossy
	// paths, Fig. 10c), while loss onsets and congestion-overflow bursts
	// leave a net drop that triggers the back-off.
	var lossSum float64
	for i := 0; i+1 < len(state); i += 2 {
		drtt += state[i]
		lossSum += state[i+1]
		n++
	}
	if n > 0 {
		drtt /= float64(n)
	}
	netDrop := math.Max(0, -lossSum)
	var mu float64
	switch {
	case drtt > p.RTTEps:
		mu = -p.RTTGain * (drtt - p.RTTEps) // queue building: back off
	case drtt < -p.RTTEps:
		mu = 0 // queue draining: hold until flat
	default:
		mu = p.ProbeGain // flat: probe for bandwidth
	}
	mu -= p.LossGain * netDrop
	return cc.Clamp(mu, -1, 1), p.Delta
}

// capturedPolicy lets a training environment inject agent actions into a
// running Jury controller and observe the states it would feed the policy.
type capturedPolicy struct {
	next      [2]float64 // pending (μ, δ)
	lastState []float64
	asked     bool
}

// Decide implements Policy: report the pending action, record the state.
func (p *capturedPolicy) Decide(state []float64) (float64, float64) {
	p.lastState = state
	p.asked = true
	return p.next[0], p.next[1]
}
