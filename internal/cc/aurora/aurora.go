// Package aurora implements the Aurora baseline (Jay et al., ICML'19): a
// vanilla single-flow DRL congestion controller. Its state is a history of
// (latency gradient, latency ratio, sending ratio) triples; its action is a
// multiplicative sending-rate change. Aurora optimizes a throughput-scaled
// reward with no fairness machinery, which is why the paper shows it
// underutilizing links outside its training bandwidth (Fig. 10a) and
// inflating latency on high-delay/lossy paths (Fig. 10f/g).
//
// The package provides both a trainable pipeline (state/reward definitions
// compatible with internal/rl's TD3) and a deterministic SurrogatePolicy
// reproducing the published converged behaviour, parameterized by the
// training domain so its out-of-domain failure modes are faithful (see
// DESIGN.md substitutions).
package aurora

import (
	"time"

	"repro/internal/cc"
)

// HistoryLen is the number of stacked monitor intervals in the state
// (Aurora uses a history of length 10).
const HistoryLen = 10

// StateDim is the policy input width.
const StateDim = 3 * HistoryLen

// Policy maps Aurora's state to a rate-change action in [-1, 1].
type Policy interface {
	Act(state []float64) float64
}

// Config parameterizes the Aurora controller.
type Config struct {
	Interval time.Duration // monitor interval (we align with Jury's 30 ms)
	// Alpha scales the multiplicative rate adjustment per action, as in the
	// Aurora paper: x ← x·(1+αa) for a ≥ 0, x ← x/(1−αa) for a < 0.
	Alpha float64
	// TrainedMaxRate is the highest sending rate (bits/s) the policy saw in
	// training. The surrogate policy's behaviour degrades above it, which
	// is Aurora's documented generalization failure.
	TrainedMaxRate float64
	Seed           uint64
}

// DefaultConfig mirrors the retraining setup of §5 (Table 1 domain).
func DefaultConfig() Config {
	return Config{
		Interval:       30 * time.Millisecond,
		Alpha:          0.025,
		TrainedMaxRate: 100e6,
		Seed:           1,
	}
}

// Aurora is the controller. Construct with New.
type Aurora struct {
	cfg    Config
	policy Policy

	rate   float64 // bits/second
	minRTT time.Duration

	prevRTT  time.Duration
	history  []float64 // ring of 3*HistoryLen entries
	intvSeen int

	lastState  []float64
	lastReward float64
}

// New returns an Aurora controller driving the given policy (nil selects
// the surrogate converged policy).
func New(cfg Config, policy Policy) *Aurora {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Millisecond
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.025
	}
	a := &Aurora{
		cfg:     cfg,
		policy:  policy,
		rate:    2e6, // Aurora starts at a low fixed rate
		history: make([]float64, StateDim),
	}
	if a.policy == nil {
		sp := NewSurrogatePolicy(cfg)
		sp.attach(a)
		a.policy = sp
	}
	return a
}

// Name implements cc.Algorithm.
func (a *Aurora) Name() string { return "aurora" }

// Init implements cc.Algorithm.
func (a *Aurora) Init(time.Duration) {}

// OnAck implements cc.Algorithm.
func (a *Aurora) OnAck(cc.Ack) {}

// OnLoss implements cc.Algorithm (loss enters via interval stats).
func (a *Aurora) OnLoss(cc.Loss) {}

// ControlInterval implements cc.IntervalAlgorithm.
func (a *Aurora) ControlInterval() time.Duration { return a.cfg.Interval }

// OnInterval implements cc.IntervalAlgorithm: update the state history,
// query the policy, and apply the multiplicative rate change.
func (a *Aurora) OnInterval(s cc.IntervalStats) {
	if s.FlowMinRTT > 0 {
		a.minRTT = s.FlowMinRTT
	}
	if s.AckedPackets == 0 {
		// No feedback at all: halve the rate (Aurora's timeout behaviour).
		if s.LostPackets > 0 {
			a.applyAction(-1)
		}
		return
	}

	// State features (Aurora §5.1): latency gradient d(RTT)/dt, latency
	// ratio RTT/RTT_min, and sending ratio sent/acked.
	var latGrad float64
	if a.prevRTT > 0 {
		latGrad = (s.AvgRTT - a.prevRTT).Seconds() / s.Interval.Seconds()
	}
	a.prevRTT = s.AvgRTT
	latRatio := 1.0
	if a.minRTT > 0 {
		latRatio = float64(s.AvgRTT) / float64(a.minRTT)
	}
	sendRatio := 1.0
	if s.AckedPackets > 0 {
		sendRatio = float64(s.SentPackets) / float64(s.AckedPackets)
	}

	copy(a.history, a.history[3:])
	n := len(a.history)
	a.history[n-3] = cc.Clamp(latGrad, -1, 1)
	a.history[n-2] = cc.Clamp(latRatio-1, 0, 10)
	a.history[n-1] = cc.Clamp(sendRatio-1, 0, 10)
	a.intvSeen++

	a.lastState = append(a.lastState[:0], a.history...)
	action := cc.Clamp(a.policy.Act(a.lastState), -1, 1)
	a.applyAction(action)
	a.lastReward = Reward(s.Throughput(), s.AvgRTT, s.LossRate())
}

// applyAction performs Aurora's multiplicative rate update.
func (a *Aurora) applyAction(act float64) {
	if act >= 0 {
		a.rate *= 1 + a.cfg.Alpha*act
	} else {
		a.rate /= 1 - a.cfg.Alpha*act
	}
	if a.rate < 0.1e6 {
		a.rate = 0.1e6
	}
	if a.rate > 20e9 {
		a.rate = 20e9
	}
}

// Reward is Aurora's linear reward: 10·throughput − 1000·latency −
// 2000·loss, with throughput in packets/second scaled as in the paper's
// open-source gym (we use Mbit/s and seconds, preserving the weights'
// relative balance).
func Reward(thrBps float64, rtt time.Duration, loss float64) float64 {
	return 10*thrBps/1e6 - 1000*rtt.Seconds() - 2000*loss
}

// CWND implements cc.Algorithm: Aurora is purely rate-based; the window
// only bounds the inflight data to 2·rate·RTT.
func (a *Aurora) CWND() float64 {
	rtt := a.minRTT
	if rtt == 0 {
		rtt = 100 * time.Millisecond
	}
	w := 2 * a.rate * rtt.Seconds() / 8 / 1500
	if w < 10 {
		w = 10
	}
	return w
}

// PacingRate implements cc.Algorithm.
func (a *Aurora) PacingRate() float64 { return a.rate }

// Rate exposes the current sending rate for tests.
func (a *Aurora) Rate() float64 { return a.rate }

// LastState exposes the most recent policy input (training harness).
func (a *Aurora) LastState() []float64 { return a.lastState }

// LastReward exposes the most recent reward (training harness).
func (a *Aurora) LastReward() float64 { return a.lastReward }

// SurrogatePolicy reproduces a converged Aurora actor deterministically,
// with the published behaviours encoded explicitly (DESIGN.md):
//
//   - in-domain it is a competent latency-ratio controller that holds a
//     standing queue of ~30% of the base RTT (Aurora is known to trade
//     latency for throughput, hence its proportional latency inflation in
//     Fig. 10f/g);
//   - it keeps no fairness machinery, so competing Auroras converge to
//     whatever queue equilibrium they reach first (low Jain in Fig. 6);
//   - beyond ~3x its training rate envelope its inputs leave the trained
//     distribution and it stops probing — the >300 Mbps under-utilization
//     of Fig. 10(a) and the LTE mismatch of Fig. 12.
type SurrogatePolicy struct {
	cfg Config
	au  *Aurora // set via attach for rate-envelope introspection
}

// NewSurrogatePolicy builds the surrogate for the given config.
func NewSurrogatePolicy(cfg Config) *SurrogatePolicy {
	return &SurrogatePolicy{cfg: cfg}
}

// Act implements Policy. State entries hold (latency gradient, latency
// ratio − 1, sending ratio − 1) triples, newest last.
func (p *SurrogatePolicy) Act(state []float64) float64 {
	n := len(state)
	latRatio := state[n-2]  // RTT/minRTT − 1
	sendRatio := state[n-1] // sent/acked − 1
	var grad float64
	var cnt int
	for i := 0; i+2 < n; i += 3 {
		grad += state[i]
		cnt++
	}
	if cnt > 0 {
		grad /= float64(cnt)
	}
	// Out-of-distribution stall: a policy never trained beyond its domain
	// stops producing the probing actions that got it there.
	if p.au != nil && p.cfg.TrainedMaxRate > 0 && p.au.rate > 3*p.cfg.TrainedMaxRate {
		return -0.1
	}
	switch {
	case sendRatio > 0.10: // >10% of the window unacked: heavy loss
		return -1
	case latRatio > 0.5 || grad > 0.05:
		// Queue well past the trained operating point: retreat.
		return cc.Clamp(-8*grad-1.2*(latRatio-0.5), -1, 0)
	case latRatio < 0.3:
		return 0.8 // below the trained standing-queue target: probe
	default:
		return 0 // inside the target band: hold
	}
}

// attach gives the surrogate access to the controller's sending rate, which
// a trained policy implicitly carries in its input normalization.
func (p *SurrogatePolicy) attach(a *Aurora) { p.au = a }
