package core

import (
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/netsim"
	"repro/internal/rl"
	"repro/internal/simcore"
)

// EnvConfig parameterizes the RL training environment: each episode is one
// emulated scenario sampled from the Table 1 domain, with the agent driving
// one Jury flow among 2-10 competitors (§5: a mix of homogeneous flows and
// Cubic flows).
type EnvConfig struct {
	Jury    Config
	Domain  TrainingDomain
	Episode time.Duration // episode length (default 20 s)
	// CubicCompetitorProb is the probability that each competitor runs
	// Cubic rather than Jury-with-reference-policy. The reference policy
	// stands in for "another flow running the current policy" (true
	// self-play would need policy snapshots; see DESIGN.md).
	CubicCompetitorProb float64
	Seed                uint64
}

// DefaultEnvConfig returns the training setup used by cmd/jurytrain.
func DefaultEnvConfig(seed uint64) EnvConfig {
	return EnvConfig{
		Jury:                DefaultConfig(),
		Domain:              DefaultTrainingDomain(),
		Episode:             20 * time.Second,
		CubicCompetitorProb: 0.3,
		Seed:                seed,
	}
}

// TrainingEnv adapts the emulator to the rl.Env interface. Each Step
// enforces one decision range (μ, δ) for one control interval of the
// agent-controlled Jury flow and returns the next stacked state and the
// Eq. 9 reward.
type TrainingEnv struct {
	cfg EnvConfig
	rng *simcore.RNG

	net     *netsim.Network
	jury    *Jury
	capture *capturedPolicy
	endAt   time.Duration
	episode int
}

var _ rl.Env = (*TrainingEnv)(nil)

// NewTrainingEnv returns a training environment.
func NewTrainingEnv(cfg EnvConfig) *TrainingEnv {
	if cfg.Episode <= 0 {
		cfg.Episode = 20 * time.Second
	}
	return &TrainingEnv{cfg: cfg, rng: simcore.NewRNG(cfg.Seed ^ 0x7e57)}
}

// Reset implements rl.Env: sample a fresh scenario and run it until the
// agent's policy is first consulted.
func (e *TrainingEnv) Reset() []float64 {
	e.episode++
	d := e.cfg.Domain
	bw := e.rng.Range(d.MinBandwidth, d.MaxBandwidth)
	rtt := time.Duration(e.rng.Range(float64(d.MinRTT), float64(d.MaxRTT)))
	bdp := bw / 8 * rtt.Seconds()
	buf := int(bdp * e.rng.Range(d.MinBufferBDP, d.MaxBufferBDP))
	loss := e.rng.Range(d.MinLoss, d.MaxLoss)
	nFlows := d.MinFlows
	if d.MaxFlows > d.MinFlows {
		nFlows += e.rng.Intn(d.MaxFlows - d.MinFlows + 1)
	}

	e.net = netsim.New(netsim.Config{Seed: e.rng.Uint64()})
	link := e.net.AddLink(netsim.LinkConfig{
		Rate: bw, Delay: rtt / 2, BufferBytes: buf, LossRate: loss,
	})

	e.capture = &capturedPolicy{next: [2]float64{0.5, 0.5}}
	juryCfg := e.cfg.Jury
	juryCfg.Seed = e.rng.Uint64()
	e.jury = New(juryCfg, e.capture)
	e.net.AddFlow(netsim.FlowConfig{
		Name: "agent",
		Path: []*netsim.Link{link},
		CC:   func() cc.Algorithm { return e.jury },
	})
	for i := 1; i < nFlows; i++ {
		start := time.Duration(e.rng.Range(0, float64(e.cfg.Episode)/2))
		var mk func() cc.Algorithm
		if e.rng.Bernoulli(e.cfg.CubicCompetitorProb) {
			mk = func() cc.Algorithm { return cubic.New() }
		} else {
			seed := e.rng.Uint64()
			mk = func() cc.Algorithm {
				cfg := e.cfg.Jury
				cfg.Seed = seed
				return New(cfg, NewReferencePolicy())
			}
		}
		e.net.AddFlow(netsim.FlowConfig{
			Name:  "competitor",
			Path:  []*netsim.Link{link},
			Start: start,
			CC:    mk,
		})
	}
	e.endAt = e.cfg.Episode
	e.runUntilAsked()
	return e.state()
}

// runUntilAsked advances the emulation until the captured policy is
// consulted again or the episode ends.
func (e *TrainingEnv) runUntilAsked() {
	e.capture.asked = false
	step := e.cfg.Jury.Interval
	for !e.capture.asked && e.net.Now() < e.endAt {
		e.net.Run(e.net.Now() + step)
	}
}

// state returns a copy of the captured policy input (zeroed if the policy
// was never consulted, e.g. an all-slow-start episode).
func (e *TrainingEnv) state() []float64 {
	if e.capture.lastState == nil {
		return make([]float64, e.cfg.Jury.StateDim())
	}
	out := make([]float64, len(e.capture.lastState))
	copy(out, e.capture.lastState)
	return out
}

// Step implements rl.Env: enforce the agent's raw action (2-D in [−1,1]²,
// mapped by ActionToRange) for the next control decision.
func (e *TrainingEnv) Step(action []float64) ([]float64, float64, bool) {
	mu, delta := ActionToRange(action)
	e.capture.next = [2]float64{mu, delta}
	e.runUntilAsked()
	done := e.net.Now() >= e.endAt
	return e.state(), e.jury.LastReward(), done
}

// Jury exposes the agent-controlled controller (diagnostics/tests).
func (e *TrainingEnv) Jury() *Jury { return e.jury }
