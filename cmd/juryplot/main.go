// Command juryplot regenerates the paper's figures as SVG images: the
// throughput-dynamics panels (Fig. 1, 7, 8), the signal studies (Fig. 4,
// 5), the Pareto scatters (Fig. 11, 13), and the LTE trace (Fig. 12).
//
// Examples:
//
//	juryplot -fig fig7b -out fig7b.svg
//	juryplot -fig fig12 -out fig12.svg
//
// It can also render a telemetry trace captured with any binary's
// -trace-out flag: the sim-domain "interval" events become a per-flow
// throughput-over-virtual-time chart:
//
//	jurysim -scheme cubic,jury -trace-out run.jsonl
//	juryplot -trace run.jsonl -out run.svg
//
// The fairness subcommand renders a streaming fairness capture (the
// /fairness page or an SSE capture of /fairness/stream from a run launched
// with -obs) as Jain-over-virtual-time:
//
//	juryplot fairness -in fairness.json -out fairness.svg
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/exp"
	"repro/internal/plot"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "fairness" {
		runFairness(os.Args[2:])
		return
	}
	var (
		fig   = flag.String("fig", "", "figure id: fig1a fig1b fig4 fig5 fig7a..fig7h fig8 fig11a fig11b fig12 fig13a fig13b")
		trace = flag.String("trace", "", "plot a telemetry JSONL trace (sim interval events) instead of a figure")
		out   = flag.String("out", "", "output SVG path (default <fig>.svg or trace.svg)")
		seed  = flag.Uint64("seed", 1, "random seed")
		full  = flag.Bool("full", false, "run at the paper's full scale")
	)
	flag.Parse()
	if *fig == "" && *trace == "" {
		flag.Usage()
		os.Exit(2)
	}
	var chart *plot.Chart
	var err error
	if *trace != "" {
		if *out == "" {
			*out = "trace.svg"
		}
		chart, err = traceChart(*trace)
	} else {
		if *out == "" {
			*out = *fig + ".svg"
		}
		chart, err = build(*fig, *seed, *full)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "juryplot:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, []byte(chart.SVG()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "juryplot:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// traceLine is the subset of a telemetry JSONL line the trace plot needs
// (sim-domain "interval" events; everything else is skipped).
type traceLine struct {
	T      string  `json:"t"`
	Domain string  `json:"domain"`
	Name   string  `json:"name"`
	VTNS   int64   `json:"vt_ns"`
	Flow   string  `json:"flow"`
	ThrBps float64 `json:"thr_bps"`
}

// traceChart renders per-flow throughput over virtual time from a telemetry
// trace captured with -trace-out.
func traceChart(path string) (*plot.Chart, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byFlow := map[string]*plot.Series{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var tl traceLine
		if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lines, err)
		}
		if tl.T != "event" || tl.Domain != "sim" || tl.Name != "interval" {
			continue
		}
		s, ok := byFlow[tl.Flow]
		if !ok {
			s = &plot.Series{Name: tl.Flow}
			byFlow[tl.Flow] = s
			order = append(order, tl.Flow)
		}
		s.X = append(s.X, float64(tl.VTNS)/1e9)
		s.Y = append(s.Y, tl.ThrBps/1e6)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("%s: no sim interval events (was the trace captured with -trace-out?)", path)
	}
	sort.Strings(order)
	c := &plot.Chart{Title: "telemetry trace: " + path, XLabel: "virtual time (s)", YLabel: "throughput (Mbps)"}
	for _, name := range order {
		c.Series = append(c.Series, *byFlow[name])
	}
	return c, nil
}

// seriesChart converts flow series rows into a time/Mbps chart.
func seriesChart(title string, rows []exp.FlowSeriesRow) *plot.Chart {
	byFlow := map[string]*plot.Series{}
	var order []string
	for _, r := range rows {
		s, ok := byFlow[r.Flow]
		if !ok {
			s = &plot.Series{Name: r.Flow}
			byFlow[r.Flow] = s
			order = append(order, r.Flow)
		}
		s.X = append(s.X, r.T.Seconds())
		s.Y = append(s.Y, r.Mbps)
	}
	sort.Strings(order)
	c := &plot.Chart{Title: title, XLabel: "time (s)", YLabel: "throughput (Mbps)"}
	for _, name := range order {
		c.Series = append(c.Series, *byFlow[name])
	}
	return c
}

// paretoChart converts Fig. 11/13 rows into a scatter.
func paretoChart(title string, rows []exp.Fig11Row, unit float64, yLabel string) *plot.Chart {
	c := &plot.Chart{Title: title, XLabel: "normalized one-way delay", YLabel: yLabel}
	for _, r := range rows {
		c.Series = append(c.Series, plot.Series{
			Name:   r.Scheme,
			X:      []float64{r.NormalizedDelay},
			Y:      []float64{r.ThroughputBps / unit},
			Points: true,
		})
	}
	return c
}

func build(fig string, seed uint64, full bool) (*plot.Chart, error) {
	fig7opts := exp.Fig7Options{Seed: seed}
	if !full {
		fig7opts.Stagger, fig7opts.Lifetime = 20*time.Second, 60*time.Second
	}
	switch fig {
	case "fig1a", "fig1b":
		o := exp.Fig1Options{Seed: seed}
		if !full {
			o.Stagger, o.Lifetime = 20*time.Second, 60*time.Second
		}
		res, err := exp.Fig1AstraeaGeneralization(o)
		if err != nil {
			return nil, err
		}
		if fig == "fig1a" {
			return seriesChart("Fig 1(a): Astraea, 100 Mbps (trained region)", res.InDomainSeries), nil
		}
		return seriesChart("Fig 1(b): Astraea, 350 Mbps (unseen)", res.OutDomainSeries), nil
	case "fig4":
		rows, err := exp.Fig4SignalPhases(exp.Fig4Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		var rate, thr, rtt, loss plot.Series
		rate.Name, thr.Name, rtt.Name, loss.Name = "send rate", "throughput", "RTT", "loss"
		// Scaled to [0,1] like the paper's Fig. 4.
		maxRTT := 0.0
		for _, r := range rows {
			if v := float64(r.AvgRTT); v > maxRTT {
				maxRTT = v
			}
		}
		for _, r := range rows {
			x := r.SendRateBps / 1e6
			rate.X = append(rate.X, x)
			rate.Y = append(rate.Y, r.SendRateBps/250e6)
			thr.X = append(thr.X, x)
			thr.Y = append(thr.Y, r.ThroughputBps/250e6)
			rtt.X = append(rtt.X, x)
			rtt.Y = append(rtt.Y, float64(r.AvgRTT)/maxRTT)
			loss.X = append(loss.X, x)
			loss.Y = append(loss.Y, r.LossRate)
		}
		return &plot.Chart{
			Title:  "Fig 4: packet statistics vs. sending rate (scaled to [0,1])",
			XLabel: "sending rate (Mbps)", YLabel: "scaled value",
			Series: []plot.Series{thr, rtt, loss},
		}, nil
	case "fig5":
		rows, err := exp.Fig5OccupancyProbe(exp.Fig5Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		var resp, est plot.Series
		resp.Name, resp.Points = "thr change (+10% probe)", true
		est.Name, est.Points = "Eq.5 estimate", true
		for _, r := range rows {
			resp.X = append(resp.X, r.Share)
			resp.Y = append(resp.Y, r.ThrChangeRatio)
			est.X = append(est.X, r.Share)
			est.Y = append(est.Y, r.EstimatedShare)
		}
		return &plot.Chart{
			Title:  "Fig 5: throughput response vs. occupancy",
			XLabel: "true share", YLabel: "ratio",
			Series: []plot.Series{resp, est},
		}, nil
	case "fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f", "fig7g", "fig7h":
		id := fig[len(fig)-1:]
		for _, p := range exp.Fig7Panels() {
			if p.ID == id {
				res, err := exp.Fig7Convergence(p, fig7opts)
				if err != nil {
					return nil, err
				}
				title := fmt.Sprintf("Fig 7(%s): %s, %.0f Mbps, %v RTT, %.1f%% loss (Jain %.3f)",
					id, p.Scheme, p.Rate/1e6, p.RTT, p.Loss*100, res.Jain)
				return seriesChart(title, res.Series), nil
			}
		}
		return nil, fmt.Errorf("unknown panel %s", fig)
	case "fig8":
		o := exp.Fig8Options{Seed: seed}
		if !full {
			o.Stagger, o.Lifetime = 20*time.Second, 100*time.Second
		}
		res, err := exp.Fig8RTTFairness(o)
		if err != nil {
			return nil, err
		}
		return seriesChart(fmt.Sprintf("Fig 8: RTT fairness (late Jain %.3f)", res.LateJain), res.Series), nil
	case "fig11a":
		rows, err := exp.Fig11Satellite(exp.Fig11Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return paretoChart("Fig 11(a): satellite (42 Mbps / 800 ms / 0.74% loss)", rows, 1e6, "throughput (Mbps)"), nil
	case "fig11b":
		rows, err := exp.Fig11HighSpeed(exp.Fig11Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return paretoChart("Fig 11(b): 10 Gbps / 15 ms", rows, 1e9, "throughput (Gbps)"), nil
	case "fig12":
		rows, err := exp.Fig12LTEResponsiveness(exp.Fig12Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		byScheme := map[string]*plot.Series{}
		var order []string
		for _, r := range rows {
			s, ok := byScheme[r.Scheme]
			if !ok {
				s = &plot.Series{Name: r.Scheme}
				byScheme[r.Scheme] = s
				order = append(order, r.Scheme)
			}
			s.X = append(s.X, r.T.Seconds())
			s.Y = append(s.Y, r.SendRateBps/1e6)
		}
		sort.Strings(order)
		c := &plot.Chart{Title: "Fig 12: LTE responsiveness", XLabel: "time (s)", YLabel: "sending rate (Mbps)"}
		for _, n := range order {
			c.Series = append(c.Series, *byScheme[n])
		}
		return c, nil
	case "fig13a", "fig13b":
		rows, err := exp.Fig13WAN(fig == "fig13a", exp.Fig13Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		name := "intra-continental"
		if fig == "fig13b" {
			name = "inter-continental"
		}
		return paretoChart("Fig 13: emulated "+name+" WAN", rows, 1e6, "throughput (Mbps)"), nil
	default:
		return nil, fmt.Errorf("unknown figure %q", fig)
	}
}
