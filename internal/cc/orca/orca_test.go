package orca

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

func mkStats(acked int64, rtt time.Duration, lost int64, minRTT time.Duration) cc.IntervalStats {
	return cc.IntervalStats{
		Interval:     200 * time.Millisecond,
		AckedBytes:   acked * 1500,
		AckedPackets: acked,
		SentBytes:    acked * 1500,
		SentPackets:  acked,
		LostPackets:  lost,
		AvgRTT:       rtt,
		MinRTT:       rtt,
		FlowMinRTT:   minRTT,
		DeliverySpan: 200 * time.Millisecond,
	}
}

func TestBoostsCubicWhenUnderutilized(t *testing.T) {
	o := New(DefaultConfig(), nil)
	o.Init(0)
	o.minRTT = 30 * time.Millisecond
	// Establish a throughput ceiling, then run below it with no queue.
	o.OnInterval(mkStats(1000, 30*time.Millisecond, 0, 30*time.Millisecond))
	w := o.CWND()
	o.OnInterval(mkStats(500, 30*time.Millisecond, 0, 30*time.Millisecond))
	if o.LastExponent() <= 0 {
		t.Fatalf("exponent %v, want positive boost", o.LastExponent())
	}
	if o.CWND() <= w {
		t.Fatalf("cwnd not boosted: %v -> %v", w, o.CWND())
	}
}

func TestShrinksOnQueueBuildup(t *testing.T) {
	o := New(DefaultConfig(), nil)
	o.Init(0)
	o.minRTT = 30 * time.Millisecond
	o.OnInterval(mkStats(1000, 30*time.Millisecond, 0, 30*time.Millisecond))
	o.cubic.SetCWND(500)
	o.OnInterval(mkStats(1000, 60*time.Millisecond, 0, 30*time.Millisecond))
	if o.LastExponent() >= 0 {
		t.Fatalf("exponent %v with a 2x RTT, want negative", o.LastExponent())
	}
}

func TestOutOfDomainCollapse(t *testing.T) {
	// Base RTT 150 ms (2.5x the training max): the learned layer outputs
	// its collapsed exponent (Fig. 10f).
	o := New(DefaultConfig(), nil)
	o.Init(0)
	o.minRTT = 150 * time.Millisecond
	o.OnInterval(mkStats(1000, 150*time.Millisecond, 0, 150*time.Millisecond))
	if o.LastExponent() != -1 {
		t.Fatalf("out-of-domain exponent %v, want -1", o.LastExponent())
	}
}

func TestLossPathGoesThroughCubic(t *testing.T) {
	o := New(DefaultConfig(), nil)
	o.Init(0)
	// Grow cubic, then hit it with a loss: the hybrid inherits the cut.
	for i := 0; i < 50; i++ {
		o.OnAck(cc.Ack{Now: time.Duration(i) * time.Millisecond, SentAt: 0, RTT: 30 * time.Millisecond, Bytes: 1500})
	}
	w := o.CWND()
	o.OnLoss(cc.Loss{Now: time.Second, SentAt: 900 * time.Millisecond})
	if o.CWND() >= w {
		t.Fatalf("loss did not cut the hybrid window: %v -> %v", w, o.CWND())
	}
}

func TestInDomainUtilization(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 1})
	l := n.AddLink(netsim.LinkConfig{Rate: 50e6, Delay: 15 * time.Millisecond, BufferBytes: 375_000})
	n.AddFlow(netsim.FlowConfig{Name: "o", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return New(DefaultConfig(), nil) }})
	n.Run(60 * time.Second)
	if u := l.Utilization(60 * time.Second); u < 0.8 {
		t.Fatalf("in-domain utilization %v", u)
	}
}

func TestLossyLinkDegradation(t *testing.T) {
	// 1% random loss: CUBIC underneath collapses and the 2^a boost cannot
	// recover full rate (Fig. 10c).
	n := netsim.New(netsim.Config{Seed: 2})
	l := n.AddLink(netsim.LinkConfig{Rate: 50e6, Delay: 15 * time.Millisecond, BufferBytes: 375_000, LossRate: 0.01})
	n.AddFlow(netsim.FlowConfig{Name: "o", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return New(DefaultConfig(), nil) }})
	n.Run(60 * time.Second)
	if u := l.Utilization(60 * time.Second); u > 0.75 {
		t.Fatalf("utilization %v at 1%% loss — Orca's documented degradation did not reproduce", u)
	}
}

func TestHighDelayCollapseEndToEnd(t *testing.T) {
	// 200 ms base RTT, far outside the 10-60 ms training range.
	n := netsim.New(netsim.Config{Seed: 3})
	l := n.AddLink(netsim.LinkConfig{Rate: 50e6, Delay: 100 * time.Millisecond, BufferBytes: 1_250_000})
	n.AddFlow(netsim.FlowConfig{Name: "o", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return New(DefaultConfig(), nil) }})
	n.Run(60 * time.Second)
	if u := l.Utilization(60 * time.Second); u > 0.5 {
		t.Fatalf("utilization %v at 200ms base RTT — expected out-of-domain collapse", u)
	}
}

func TestIdentity(t *testing.T) {
	o := New(DefaultConfig(), nil)
	if o.Name() != "orca" || o.PacingRate() != 0 {
		t.Fatal("identity wrong")
	}
	if o.ControlInterval() != 200*time.Millisecond {
		t.Fatal("monitor period wrong")
	}
}
