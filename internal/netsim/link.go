package netsim

import (
	"time"

	"repro/internal/faults"
	"repro/internal/simcore"
	"repro/internal/traces"
)

// LinkConfig describes one directional link.
type LinkConfig struct {
	// Rate is the fixed capacity in bits/second. Ignored if Trace is set.
	Rate float64
	// Trace, if non-nil, drives a time-varying capacity.
	Trace traces.Trace
	// Delay is the one-way propagation delay of this link.
	Delay time.Duration
	// BufferBytes is the DropTail queue capacity in bytes.
	BufferBytes int
	// LossRate is the i.i.d. probability that an arriving packet is
	// corrupted (dropped before queueing), modeling non-congestive loss.
	LossRate float64
	// JitterStd adds per-packet propagation jitter: each packet's
	// propagation delay is Delay + |N(0, JitterStd)|. Jitter causes RTT
	// noise and packet reordering, the empirical-signal noise §3.4's
	// filtering is designed to absorb.
	JitterStd time.Duration
	// Faults attaches deterministic fault processes (burst loss, reordering,
	// duplication, jitter spikes, blackouts) to the link; nil injects
	// nothing. See internal/faults and Link.FaultStats.
	Faults *faults.Config
}

// LinkStats aggregates what a link has carried.
type LinkStats struct {
	DeliveredBytes   int64 // bytes that finished serialization
	DeliveredPackets int64
	OverflowDrops    int64 // DropTail drops
	RandomDrops      int64 // loss-rate drops
	MaxQueueBytes    int64 // high-water mark of the queue
}

// Link is a store-and-forward directional link with a DropTail byte queue.
type Link struct {
	net *Network
	cfg LinkConfig
	rng *simcore.RNG

	// eng is the engine this link's events run on: the network's single
	// engine normally, the owning shard's engine in a sharded run. shard is
	// the owning shard's index and xs its cross-shard send handle (nil in
	// sequential runs; only consulted when a destination shard differs).
	eng   *simcore.Engine
	shard int
	xs    *simcore.Shard

	queue  []*packet
	qHead  int
	qBytes int64
	busy   bool

	// arena is the owning shard's packet pool. The link draws duplicate
	// copies (fault injection) from it rather than from the flow's shard:
	// in a sharded run the copy is created and destroyed on this link's
	// shard, and the owning flow's pool may belong to another shard.
	arena *pktArena

	// faults, when non-nil, applies the configured fault processes (see
	// faults.go). Built only when the config enables at least one process,
	// so fault-free links consume no extra RNG state and stay bit-identical
	// to their pre-fault-subsystem behavior.
	faults *linkFaults

	stats LinkStats
}

func newLink(n *Network, cfg LinkConfig, rng *simcore.RNG) *Link {
	l := &Link{net: n, cfg: cfg, rng: rng, eng: n.eng, arena: &n.seqArena}
	if cfg.BufferBytes > 0 {
		// Size the queue for a buffer full of minimum-size packets, doubled
		// because the lazy head compaction in finishTx lets the live window
		// drift up to halfway through the backing array before sliding back.
		l.queue = make([]*packet, 0, 2*(cfg.BufferBytes/DefaultPacketSize+1))
	}
	if cfg.Faults.Enabled() {
		l.faults = newLinkFaults(l)
	}
	return l
}

// linkFinishTx is the shared serialization-done dispatcher: the packet's
// current hop identifies the link, so no per-link closure is needed and the
// ScheduleArg path stays allocation-free.
func linkFinishTx(a any) {
	p := a.(*packet)
	p.flow.cfg.Path[p.hop].finishTx(p)
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueBytes reports the current queue occupancy in bytes.
func (l *Link) QueueBytes() int64 { return l.qBytes }

// Shard reports which shard the link runs on (0 in sequential runs).
func (l *Link) Shard() int { return l.shard }

// Now reports the virtual time of the link's own engine. Identical to
// Network.Now in sequential runs; in sharded runs it is the only clock a
// tap callback fired by this link may read without racing other shards.
func (l *Link) Now() time.Duration { return l.eng.Now() }

// rateAt reports the capacity in bits/second at virtual time t.
func (l *Link) rateAt(t time.Duration) float64 {
	if l.cfg.Trace != nil {
		return l.cfg.Trace.RateAt(t)
	}
	return l.cfg.Rate
}

// Utilization reports delivered bits divided by capacity·elapsed, using the
// mean capacity over [0, elapsed] for trace-driven links.
func (l *Link) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	var capacity float64
	if l.cfg.Trace != nil {
		capacity = traces.MeanRate(l.cfg.Trace, elapsed, 100*time.Millisecond)
	} else {
		capacity = l.cfg.Rate
	}
	if capacity <= 0 {
		return 0
	}
	return float64(l.stats.DeliveredBytes) * 8 / (capacity * elapsed.Seconds())
}

// arrive is called when a packet reaches this link (after the previous
// hop's propagation). It runs the fault pipeline (if configured), then
// random loss and DropTail queueing.
func (l *Link) arrive(p *packet) {
	if l.faults != nil && !l.faults.admit(p) {
		return // dropped by a fault process, or deferred for reordering
	}
	l.enqueue(p)
}

// enqueue applies random loss and DropTail queueing. It is the re-entry
// point for reordered packets (whose deferred arrival must not run the
// fault pipeline twice) and for duplicate copies.
func (l *Link) enqueue(p *packet) {
	if l.cfg.LossRate > 0 && l.rng.Bernoulli(l.cfg.LossRate) {
		l.stats.RandomDrops++
		if tap := l.net.tap; tap != nil {
			tap.QueueDropped(l, p.size, true)
		}
		l.dropped(p)
		return
	}
	if l.qBytes+int64(p.size) > int64(l.cfg.BufferBytes) {
		l.stats.OverflowDrops++
		if tap := l.net.tap; tap != nil {
			tap.QueueDropped(l, p.size, false)
		}
		l.dropped(p)
		return
	}
	l.queue = append(l.queue, p)
	l.qBytes += int64(p.size)
	if l.qBytes > l.stats.MaxQueueBytes {
		l.stats.MaxQueueBytes = l.qBytes
	}
	if tap := l.net.tap; tap != nil {
		tap.QueueEnqueued(l, p.size)
	}
	if !l.busy {
		l.startTx()
	}
}

// dropped routes a discarded packet to its terminal accounting: real
// packets feed the sender's loss detection; duplicate copies were never
// counted as sent, so they are recycled directly.
func (l *Link) dropped(p *packet) {
	if p.dup {
		l.releaseDup(p)
		return
	}
	l.dropToSender(p)
}

// dropToSender engages the sender's loss detection for a packet this link
// discarded. When the flow lives on this shard the delay comes from its
// live srtt exactly as in a sequential run; when it lives on another shard
// the link may not read that state, so the detection event crosses with the
// delay stamped on the packet at send time (see packet.lossDelay — always
// ≥ the inter-shard lookahead).
func (l *Link) dropToSender(p *packet) {
	f := p.flow
	if f.shard != l.shard {
		l.xs.Send(f.shard, l.eng.Now()+p.lossDelay, flowLossDetected, p)
		return
	}
	f.onDrop(p)
}

// cloneDup takes a pooled packet shaped like p, marked as a fault-injected
// duplicate (see packet.dup).
func (l *Link) cloneDup(p *packet) *packet {
	d := l.arena.alloc()
	d.flow = p.flow
	d.size = p.size
	d.sentAt = p.sentAt
	d.hop = p.hop
	d.ctrlIdx = p.ctrlIdx
	d.lossDelay = p.lossDelay
	d.dup = true
	return d
}

// releaseDup recycles a duplicate copy once the link is done with it.
func (l *Link) releaseDup(p *packet) {
	l.arena.release(p)
}

// startTx begins serializing the packet at the head of the queue.
func (l *Link) startTx() {
	p := l.queue[l.qHead]
	l.busy = true
	rate := l.rateAt(l.eng.Now())
	if rate < 1 {
		rate = 1 // avoid division blow-ups on pathological traces
	}
	txDur := time.Duration(float64(p.size) * 8 / rate * float64(time.Second))
	if txDur < time.Nanosecond {
		txDur = time.Nanosecond
	}
	l.eng.ScheduleArgAfter(txDur, linkFinishTx, p)
}

// finishTx completes serialization: the packet leaves the queue and enters
// propagation toward the next hop.
func (l *Link) finishTx(p *packet) {
	l.queue[l.qHead] = nil
	l.qHead++
	if l.qHead > 64 && l.qHead*2 >= len(l.queue) {
		l.queue = append(l.queue[:0], l.queue[l.qHead:]...)
		l.qHead = 0
	}
	l.qBytes -= int64(p.size)
	l.stats.DeliveredBytes += int64(p.size)
	l.stats.DeliveredPackets++
	if tap := l.net.tap; tap != nil {
		tap.QueueDeparted(l, p.size)
	}

	if p.dup {
		// The receiver side of the link discards duplicate copies; the
		// copy's whole cost — buffer space and serialization time — has been
		// paid by now.
		l.releaseDup(p)
	} else {
		prop := l.cfg.Delay
		if l.cfg.JitterStd > 0 {
			j := l.rng.Norm(0, float64(l.cfg.JitterStd))
			if j < 0 {
				j = -j
			}
			prop += time.Duration(j)
		}
		if l.faults != nil {
			prop += l.faults.delaySpike(p)
		}
		// The packet's next arrival belongs to the next hop's shard; this
		// link's propagation delay is exactly the lookahead the partitioner
		// guaranteed for that cut, so the cross-send never violates the
		// coordinator's window.
		dst := l.shard
		if nh := p.hop + 1; nh < len(p.flow.cfg.Path) {
			dst = p.flow.cfg.Path[nh].shard
		}
		if dst != l.shard {
			l.xs.Send(dst, l.eng.Now()+prop, flowAdvance, p)
		} else {
			l.eng.ScheduleArgAfter(prop, flowAdvance, p)
		}
	}

	if l.qHead < len(l.queue) {
		l.startTx()
	} else {
		l.busy = false
	}
}
