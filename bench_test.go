// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs a scaled-down but shape-faithful version of the
// corresponding experiment (this machine has one CPU; the paper used a
// testbed — see DESIGN.md) and reports the figure's headline quantities as
// benchmark metrics; run with -v to also get the underlying rows. The full
// published protocol is available through cmd/juryexp with -full.
//
//	go test -bench=. -benchmem
package jury_test

import (
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
)

// benchSeed keeps all benchmark runs deterministic.
const benchSeed = 42

// BenchmarkTab01TrainingDomain prints Table 1 from the live configuration.
func BenchmarkTab01TrainingDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Tab1Rows()
		if len(rows) != 5 {
			b.Fatal("table 1 incomplete")
		}
		for _, r := range rows {
			b.Logf("%s", r)
		}
	}
}

// BenchmarkTab02Hyperparameters prints Table 2 from the live configuration.
func BenchmarkTab02Hyperparameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Tab2Rows()
		if len(rows) != 9 {
			b.Fatal("table 2 incomplete")
		}
		for _, r := range rows {
			b.Logf("%s", r)
		}
	}
}

// BenchmarkTab03ScaleFairness reproduces Table 3: long/short flow mixes and
// heterogeneous-RTT mixes at scale. The paper's headline is that per-class
// mean throughputs are nearly equal (11.4 vs 10.9 Mbps; 10.3 vs 11.1 Mbps).
func BenchmarkTab03ScaleFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := exp.Tab3Options{Repeats: 2, Lifetime: 60 * time.Second, Seed: benchSeed}
		ls, err := exp.Tab3LongShort(o)
		if err != nil {
			b.Fatal(err)
		}
		hr, err := exp.Tab3HeteroRTT(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range append(ls, hr...) {
			b.Logf("%-11s %-10s %7.1f Mbps  delayRatio %.2f  (%d flows)",
				r.Experiment, r.Class, r.ThrMbps, r.DelayRatio, r.Flows)
		}
		report := func(name string, a, bb exp.Tab3Row) {
			ratio := a.ThrMbps / bb.ThrMbps
			if ratio < 1 {
				ratio = 1 / ratio
			}
			b.ReportMetric(ratio, name)
		}
		report("long/short-ratio", ls[1], ls[2])
		report("rtt-class-ratio", hr[0], hr[1])
	}
}

// BenchmarkFig01AstraeaGeneralization reproduces Fig. 1: Astraea's fairness
// inside its training region vs. its failure on an unseen 350 Mbps link.
func BenchmarkFig01AstraeaGeneralization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig1AstraeaGeneralization(exp.Fig1Options{
			Stagger: 20 * time.Second, Lifetime: 60 * time.Second, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.InDomainJain, "jain-100Mbps")
		b.ReportMetric(res.OutOfDomainJain, "jain-350Mbps")
		if res.OutOfDomainJain >= res.InDomainJain {
			b.Fatalf("generalization failure did not reproduce: in=%.3f out=%.3f",
				res.InDomainJain, res.OutOfDomainJain)
		}
	}
}

// BenchmarkFig04SignalPhases reproduces Fig. 4: the three-phase response of
// throughput/RTT/loss to a rising sending rate.
func BenchmarkFig04SignalPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig4SignalPhases(exp.Fig4Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("rate %6.1f Mbps  thr %6.1f Mbps  rtt %5.1f ms  loss %.3f",
				r.SendRateBps/1e6, r.ThroughputBps/1e6, float64(r.AvgRTT)/1e6, r.LossRate)
		}
		b.ReportMetric(float64(len(rows)), "ramp-points")
	}
}

// BenchmarkFig05OccupancyProbe reproduces Fig. 5: smaller flows gain more
// throughput from the same +10% probe, and Eq. 5 recovers the share.
func BenchmarkFig05OccupancyProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig5OccupancyProbe(exp.Fig5Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		var maxErr float64
		for _, r := range rows {
			b.Logf("share %.2f  thrChange %.4f  Eq.5 estimate %.2f", r.Share, r.ThrChangeRatio, r.EstimatedShare)
			if e := abs(r.EstimatedShare - r.Share); e > maxErr {
				maxErr = e
			}
		}
		b.ReportMetric(maxErr, "max-share-est-error")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkFig06JainIndex reproduces Fig. 6: the average Jain index of
// three homogeneous flows per scheme across random environments. The paper
// reports Jury highest at 0.94.
func BenchmarkFig06JainIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig6JainIndex(exp.Fig6Options{
			Runs: 4, Stagger: 20 * time.Second, Lifetime: 60 * time.Second,
			MaxRate: 250e6, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		var jury, best float64
		for _, r := range rows {
			b.Logf("%-8s meanJain %.3f  [p5 %.3f, p95 %.3f] over %d runs", r.Scheme, r.MeanJain, r.P5, r.P95, r.Runs)
			if r.Scheme == "jury" {
				jury = r.MeanJain
			}
			if r.MeanJain > best {
				best = r.MeanJain
			}
			b.ReportMetric(r.MeanJain, "jain-"+r.Scheme)
		}
		if jury < best-1e-9 {
			b.Logf("note: jury %.3f not strictly highest (best %.3f) at this reduced scale", jury, best)
		}
	}
}

// BenchmarkFig07JuryConvergence reproduces Fig. 7(a-d): Jury converging
// across bandwidths, RTTs, and loss rates.
func BenchmarkFig07JuryConvergence(b *testing.B) {
	o := exp.Fig7Options{Stagger: 20 * time.Second, Lifetime: 60 * time.Second, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		for _, p := range exp.Fig7Panels()[:4] {
			res, err := exp.Fig7Convergence(p, o)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("panel %s (%s, %.0f Mbps, %v RTT, %.1f%% loss): Jain %.3f, utilization %.3f",
				p.ID, p.Scheme, p.Rate/1e6, p.RTT, p.Loss*100, res.Jain, res.Utilization)
			b.ReportMetric(res.Jain, "jain-7"+p.ID)
			b.ReportMetric(res.Utilization, "util-7"+p.ID)
			if res.Jain < 0.6 {
				b.Fatalf("panel %s Jain %.3f — Jury convergence broke", p.ID, res.Jain)
			}
		}
	}
}

// BenchmarkFig07BaselineFailures reproduces Fig. 7(e-h): the baselines'
// published failure modes under the same conditions Jury handles.
func BenchmarkFig07BaselineFailures(b *testing.B) {
	o := exp.Fig7Options{Stagger: 20 * time.Second, Lifetime: 60 * time.Second, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		for _, p := range exp.Fig7Panels()[4:] {
			res, err := exp.Fig7Convergence(p, o)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("panel %s (%s): Jain %.3f, utilization %.3f", p.ID, p.Scheme, res.Jain, res.Utilization)
			b.ReportMetric(res.Jain, "jain-7"+p.ID)
			b.ReportMetric(res.Utilization, "util-7"+p.ID)
		}
	}
}

// BenchmarkFig08RTTFairness reproduces Fig. 8: five Jury flows with base
// RTTs from 70 to 210 ms share a 100 Mbps link near-equally.
func BenchmarkFig08RTTFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig8RTTFairness(exp.Fig8Options{
			Stagger: 20 * time.Second, Lifetime: 100 * time.Second, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j, s := range res.LateShares {
			b.Logf("flow %d: %.1f Mbps (avg RTT %.0f ms)", j, s/1e6, res.AvgRTTms[j])
		}
		b.ReportMetric(res.LateJain, "late-jain")
		if res.LateJain < 0.8 {
			b.Fatalf("RTT fairness broke: late Jain %.3f", res.LateJain)
		}
	}
}

// BenchmarkFig09Friendliness reproduces Fig. 9: each scheme's throughput
// ratio against a competing Cubic flow across base RTTs.
func BenchmarkFig09Friendliness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig9Friendliness(exp.Fig9Options{
			RTTs:     []time.Duration{50 * time.Millisecond, 150 * time.Millisecond, 300 * time.Millisecond},
			Lifetime: 60 * time.Second,
			Seed:     benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, r := range rows {
			b.Logf("%-8s rtt %v: thr/cubic %.3f", r.Scheme, r.RTT, r.Ratio)
			sums[r.Scheme] += r.Ratio
			counts[r.Scheme]++
		}
		for s, sum := range sums {
			b.ReportMetric(sum/float64(counts[s]), "ratio-"+s)
		}
	}
}

// BenchmarkFig10PerformanceSweeps reproduces Fig. 10: single-flow link
// utilization and queuing delay across bandwidth, delay, loss, and buffer
// sweeps for every scheme.
func BenchmarkFig10PerformanceSweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig10PerformanceSweeps(exp.Fig10Options{
			Lifetime:   30 * time.Second,
			Losses:     []float64{0, 0.005, 0.015},
			BufferBDPs: []float64{0.5, 2, 8, 16},
			Seed:       benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Aggregate the figure's headline: mean utilization per scheme over
		// all sweep points (Jury's consistency claim), plus Jury's worst.
		util := map[string][]float64{}
		for _, r := range rows {
			b.Logf("%-8s %-9s x=%-6.3g util %.3f  queue %.1f ms", r.Scheme, r.Param, r.X, r.Utilization, r.QueuingDelay)
			util[r.Scheme] = append(util[r.Scheme], r.Utilization)
		}
		for s, us := range util {
			b.ReportMetric(metrics.Mean(us), "util-"+s)
		}
		if worst := metrics.Percentile(util["jury"], 0); worst < 0.5 {
			b.Logf("note: jury worst-case utilization %.3f", worst)
		}
	}
}

// BenchmarkFig11Satellite reproduces Fig. 11(a): the 42 Mbps / 800 ms RTT /
// 0.74% loss satellite link.
func BenchmarkFig11Satellite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig11Satellite(exp.Fig11Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("%-8s %6.1f Mbps  normDelay %.3f", r.Scheme, r.ThroughputBps/1e6, r.NormalizedDelay)
			if r.Scheme == "jury" {
				b.ReportMetric(r.ThroughputBps/42e6, "jury-utilization")
				b.ReportMetric(r.NormalizedDelay, "jury-norm-delay")
			}
		}
	}
}

// BenchmarkFig11HighSpeed reproduces Fig. 11(b): the 10 Gbps / 15 ms link.
func BenchmarkFig11HighSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig11HighSpeed(exp.Fig11Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("%-8s %7.2f Gbps  normDelay %.3f", r.Scheme, r.ThroughputBps/1e9, r.NormalizedDelay)
			if r.Scheme == "jury" {
				b.ReportMetric(r.ThroughputBps/10e9, "jury-utilization")
			}
		}
	}
}

// BenchmarkFig12LTEResponsiveness reproduces Fig. 12: tracking a
// fluctuating cellular link.
func BenchmarkFig12LTEResponsiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig12LTEResponsiveness(exp.Fig12Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range []string{"jury", "astraea", "orca", "aurora", "vivace"} {
			tr := exp.Fig12Tracking(rows, s)
			b.Logf("%-8s capacity tracking %.3f", s, tr)
			b.ReportMetric(tr, "tracking-"+s)
		}
	}
}

// BenchmarkFig13RealWorldWAN reproduces Fig. 13 on the emulated WAN
// profiles (see DESIGN.md substitutions).
func BenchmarkFig13RealWorldWAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, intra := range []bool{true, false} {
			label := "intra"
			if !intra {
				label = "inter"
			}
			rows, err := exp.Fig13WAN(intra, exp.Fig13Options{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				b.Logf("%s %-8s %7.1f Mbps  normDelay %.3f", label, r.Scheme, r.ThroughputBps/1e6, r.NormalizedDelay)
				if r.Scheme == "jury" {
					b.ReportMetric(r.ThroughputBps/1e6, label+"-jury-mbps")
				}
			}
		}
	}
}

// BenchmarkFig14CPUOverhead reproduces Fig. 14: control-path cost per
// scheme. Absolute values reflect this repository's pure-Go stacks; the
// shape (classic ≪ DRL; Jury's post-processing free) is the claim.
func BenchmarkFig14CPUOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig14CPUOverhead(exp.Fig14Options{Seed: benchSeed, Iters: 5000})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("%s", r.String())
			b.ReportMetric(r.CPUPercent, "cpu%-"+r.Scheme)
		}
	}
}

// BenchmarkAblations runs the design-choice ablations DESIGN.md calls out:
// removing the post-processing phase (δ=0), the exploration-action rule, or
// the occupancy signal filter, each on the 3-flow unseen-environment
// scenario. The paper's argument predicts the no-post-processing variant
// loses the fairness guarantee.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunAblation(exp.AblationOptions{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		var full, noPP float64
		for _, r := range rows {
			b.Logf("%-22s jain %.3f  util %.3f  queue %.1f ms", r.Variant, r.Jain, r.Utilization, r.QueueMS)
			b.ReportMetric(r.Jain, "jain-"+r.Variant)
			switch r.Variant {
			case "jury-full":
				full = r.Jain
			case "no-post-processing":
				noPP = r.Jain
			}
		}
		if noPP >= full {
			b.Logf("note: post-processing ablation did not reduce fairness at this scale (full %.3f, ablated %.3f)", full, noPP)
		}
	}
}

// BenchmarkMultiBottleneck covers the §5.1 multi-bottleneck fairness claim
// on a parking-lot topology: a flow crossing two bottlenecks shares each
// link fairly with its local cross flow.
func BenchmarkMultiBottleneck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunMultiBottleneck(exp.MultiBottleneckOptions{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("long %.1f Mbps, cross1 %.1f, cross2 %.1f (link jains %.3f / %.3f)",
			res.LongMbps, res.Cross1Mbps, res.Cross2Mbps, res.Link1Jain, res.Link2Jain)
		b.ReportMetric(res.Link1Jain, "link1-jain")
		b.ReportMetric(res.Link2Jain, "link2-jain")
	}
}
