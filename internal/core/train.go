package core

import (
	"repro/internal/rl"
)

// TrainOptions controls TrainPolicy, the end-to-end TD3 training entry
// point (§3.5/§4): 8 parallel actors collect experience from emulated
// Table 1 scenarios while a central learner updates the networks.
type TrainOptions struct {
	Env             EnvConfig
	Epochs          int
	Actors          int
	StepsPerActor   int
	UpdatesPerEpoch int
	// UpdateWorkers shards each TD3 update's minibatch across this many
	// goroutines (see rl.Config.Workers); the trained weights are
	// bit-identical for every value, so it is purely a throughput knob.
	UpdateWorkers int
	Seed          uint64
	Progress      func(epoch int, meanReward, tdErr float64)
	// Observer, if non-nil, receives structured training telemetry (see
	// rl.TrainObserver; internal/telemetry provides the implementation).
	Observer rl.TrainObserver
}

// DefaultTrainOptions returns a laptop-scale training budget (the paper
// trained for 4 hours on 80 cores + a GPU; see DESIGN.md substitutions).
func DefaultTrainOptions(seed uint64) TrainOptions {
	return TrainOptions{
		Env:             DefaultEnvConfig(seed),
		Epochs:          60,
		Actors:          8,
		StepsPerActor:   512,
		UpdatesPerEpoch: 128,
		Seed:            seed,
	}
}

// TrainPolicy trains a Jury actor with TD3 on emulated environments and
// returns the agent (whose Actor can be wrapped in NNPolicy) along with
// per-epoch reward statistics.
func TrainPolicy(opts TrainOptions) (*rl.TD3, *rl.TrainResult, error) {
	cfg := rl.DefaultConfig(opts.Env.Jury.StateDim(), 2)
	cfg.ActorLR = 5e-4  // σ, Table 2
	cfg.CriticLR = 1e-3 // η, Table 2
	cfg.Gamma = 0.98    // Table 2
	cfg.Batch = 64      // Table 2
	cfg.Seed = opts.Seed
	cfg.Workers = opts.UpdateWorkers
	agent := rl.NewTD3(cfg)

	res, err := rl.Train(rl.TrainConfig{
		Agent: agent,
		EnvFactory: func(actor int) rl.Env {
			ec := opts.Env
			ec.Seed = opts.Seed ^ (uint64(actor)+1)*0x9e3779b97f4a7c15
			return NewTrainingEnv(ec)
		},
		Actors:          opts.Actors,
		Epochs:          opts.Epochs,
		StepsPerActor:   opts.StepsPerActor,
		UpdatesPerEpoch: opts.UpdatesPerEpoch,
		WarmupEpochs:    2,
		NoiseStd:        0.3,
		Seed:            opts.Seed,
		Progress:        opts.Progress,
		Observer:        opts.Observer,
	})
	if err != nil {
		return nil, nil, err
	}
	return agent, res, nil
}
