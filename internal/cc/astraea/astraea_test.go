package astraea

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

func TestSurrogateDifferentiatesInDomain(t *testing.T) {
	p := NewSurrogatePolicy(DefaultConfig())
	// Same congestion, different throughput features: the larger flow must
	// yield more (the fairness mechanism of §2.2).
	mkState := func(thrNorm float64) []float64 {
		s := make([]float64, StateDim)
		n := len(s)
		s[n-5] = thrNorm
		s[n-4] = 1
		s[n-3] = 0.5 // latRatio-1
		s[n-2] = 0.1 // latGrad
		return s
	}
	big := p.Act(mkState(0.8))
	small := p.Act(mkState(0.2))
	if big >= small {
		t.Fatalf("large flow yields %v, small %v — differentiation inverted", big, small)
	}
}

func TestSurrogateSaturatesOutOfDomain(t *testing.T) {
	p := NewSurrogatePolicy(DefaultConfig())
	mkState := func(thrNorm float64) []float64 {
		s := make([]float64, StateDim)
		n := len(s)
		s[n-5] = thrNorm
		s[n-3] = 0.5
		s[n-2] = 0.1
		return s
	}
	// Two flows both beyond the training max look identical: thrNorm clamps
	// to 1 for both, so their actions are equal and fairness cannot emerge.
	if p.Act(mkState(1.0)) != p.Act(mkState(1.0)) {
		t.Fatal("saturated states should yield identical actions")
	}
}

func TestInDomainFairness(t *testing.T) {
	// 80 Mbps (inside the training domain): two Astraea flows converge.
	n := netsim.New(netsim.Config{Seed: 1})
	l := n.AddLink(netsim.LinkConfig{Rate: 80e6, Delay: 15 * time.Millisecond, BufferBytes: 600_000})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return New(DefaultConfig(), nil) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l}, Start: 20 * time.Second,
		CC: func() cc.Algorithm { return New(DefaultConfig(), nil) }})
	n.Run(120 * time.Second)
	a := metrics.MeanThroughput(f1, 80*time.Second, 120*time.Second)
	b := metrics.MeanThroughput(f2, 80*time.Second, 120*time.Second)
	if j := metrics.JainIndex([]float64{a, b}); j < 0.9 {
		t.Fatalf("in-domain Jain %v (%v vs %v Mbps)", j, a/1e6, b/1e6)
	}
}

func TestOutOfDomainUnfairness(t *testing.T) {
	// The Fig. 1 reproduction: on a 350 Mbps link the late-arriving flow
	// never reaches parity, unlike in domain.
	n := netsim.New(netsim.Config{Seed: 2})
	l := n.AddLink(netsim.LinkConfig{Rate: 350e6, Delay: 15 * time.Millisecond, BufferBytes: 1_312_500})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return New(DefaultConfig(), nil) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l}, Start: 20 * time.Second,
		CC: func() cc.Algorithm { return New(DefaultConfig(), nil) }})
	n.Run(120 * time.Second)
	a := metrics.MeanThroughput(f1, 80*time.Second, 120*time.Second)
	b := metrics.MeanThroughput(f2, 80*time.Second, 120*time.Second)
	ratio := math.Max(a, b) / math.Min(a, b)
	if ratio < 1.5 {
		t.Fatalf("out-of-domain flows converged (ratio %v, %v vs %v Mbps) — the Fig. 1 failure did not reproduce",
			ratio, a/1e6, b/1e6)
	}
}

func TestControllerMechanics(t *testing.T) {
	a := New(DefaultConfig(), nil)
	a.Init(0)
	if a.Name() != "astraea" {
		t.Fatal("name wrong")
	}
	w := a.CWND()
	// Startup doubling on empty intervals.
	a.OnInterval(cc.IntervalStats{Interval: 30 * time.Millisecond})
	if a.CWND() != 2*w {
		t.Fatalf("startup did not double: %v -> %v", w, a.CWND())
	}
	// Blackout backs off.
	a.cwnd = 100
	a.OnInterval(cc.IntervalStats{Interval: 30 * time.Millisecond, SentPackets: 10, LostPackets: 10})
	if a.CWND() >= 100 {
		t.Fatal("blackout did not back off")
	}
}

func TestRewardShape(t *testing.T) {
	cfg := DefaultConfig()
	base := 30 * time.Millisecond
	if Reward(cfg, 50e6, base, base, 0) <= Reward(cfg, 10e6, base, base, 0) {
		t.Fatal("reward not increasing in throughput")
	}
	if Reward(cfg, 50e6, base+30*time.Millisecond, base, 0) >= Reward(cfg, 50e6, base, base, 0) {
		t.Fatal("reward not penalizing queueing")
	}
	if Reward(cfg, 50e6, base, base, 0.05) >= Reward(cfg, 50e6, base, base, 0) {
		t.Fatal("reward not penalizing loss")
	}
}
