package exp

import (
	"os"
	"testing"
)

// TestMain forces the simcheck invariant checker onto every scenario the
// experiment tests run: each figure and table of the short suite doubles as
// an invariant audit of the emulator, and any violation fails the test that
// triggered it.
func TestMain(m *testing.M) {
	ForceCheck = true
	os.Exit(m.Run())
}
