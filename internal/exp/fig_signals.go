package exp

import (
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Fig4Row is one sample of the Fig. 4 study: how throughput, RTT, and loss
// respond as a single flow ramps its sending rate through the three queue
// phases (empty → queuing → overflowing).
type Fig4Row struct {
	SendRateBps   float64
	ThroughputBps float64
	AvgRTT        time.Duration
	LossRate      float64
}

// Fig4Options parameterizes the signal-phase study. Zero value = paper
// setup: 100 Mbps, 30 ms RTT, 750 KB buffer.
type Fig4Options struct {
	Rate        float64
	OneWayDelay time.Duration
	BufferBytes int
	Seed        uint64
}

func (o *Fig4Options) defaults() {
	if o.Rate == 0 {
		o.Rate = 100e6
	}
	if o.OneWayDelay == 0 {
		o.OneWayDelay = 15 * time.Millisecond
	}
	if o.BufferBytes == 0 {
		o.BufferBytes = 750_000
	}
}

// Fig4SignalPhases ramps a single manual flow from 10% to 250% of the link
// capacity and records the feedback at each step, reproducing Fig. 4's
// phase structure.
func Fig4SignalPhases(o Fig4Options) ([]Fig4Row, error) {
	o.defaults()
	var rows []Fig4Row
	const holdPer = 4 * time.Second
	// The ramp is fine-grained around capacity so the intermediate
	// "queuing" phase — RTT inflating while throughput is capped but the
	// buffer has not yet overflowed — is visible, exactly as in Fig. 4.
	var fractions []float64
	for f := 0.1; f < 0.9; f += 0.1 {
		fractions = append(fractions, f)
	}
	for f := 0.9; f < 1.1; f += 0.01 {
		fractions = append(fractions, f)
	}
	for f := 1.1; f <= 2.5; f += 0.2 {
		fractions = append(fractions, f)
	}
	n := netsim.New(netsim.Config{Seed: o.Seed + 1})
	l := n.AddLink(netsim.LinkConfig{Rate: o.Rate, Delay: o.OneWayDelay, BufferBytes: o.BufferBytes})
	man := cc.NewManual(0.1 * o.Rate)
	f := n.AddFlow(netsim.FlowConfig{Name: "probe", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return man }})
	for i, frac := range fractions {
		rate := o.Rate * frac
		man.SetRate(rate)
		start := time.Duration(i) * holdPer
		n.Run(start + holdPer)
		// Measure over the second half of the hold, after transients.
		from, to := start+holdPer/2, start+holdPer
		row := Fig4Row{
			SendRateBps:   rate,
			ThroughputBps: metrics.MeanThroughput(f, from, to),
			AvgRTT:        metrics.MeanRTT(f, from, to),
		}
		var lost, acked float64
		for _, p := range f.Series() {
			if p.T >= from && p.T <= to {
				lost += p.LossRate
				acked++
			}
		}
		if acked > 0 {
			row.LossRate = lost / acked
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5Row is one sample of the Fig. 5 study: the observed throughput change
// when a flow occupying a given share of the link increases its rate 10%.
type Fig5Row struct {
	Share          float64 // the probing flow's pre-probe share of capacity
	ThrChangeRatio float64 // thr_after / thr_before
	EstimatedShare float64 // Eq. 5 inversion of the observed pair
}

// Fig5Options parameterizes the occupancy-probe study.
type Fig5Options struct {
	Rate        float64
	OneWayDelay time.Duration
	BufferBytes int
	Seed        uint64
}

func (o *Fig5Options) defaults() {
	if o.Rate == 0 {
		o.Rate = 100e6
	}
	if o.OneWayDelay == 0 {
		o.OneWayDelay = 15 * time.Millisecond
	}
	if o.BufferBytes == 0 {
		o.BufferBytes = 750_000
	}
}

// Fig5OccupancyProbe sweeps the probing flow's share of a saturated 2-flow
// bottleneck and measures the throughput response to a +10% rate change,
// then inverts it with Eq. 5 — reproducing both Fig. 5 and the estimator's
// calibration curve.
func Fig5OccupancyProbe(o Fig5Options) ([]Fig5Row, error) {
	o.defaults()
	var rows []Fig5Row
	for _, share := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		n := netsim.New(netsim.Config{Seed: o.Seed + uint64(share*100)})
		l := n.AddLink(netsim.LinkConfig{Rate: o.Rate, Delay: o.OneWayDelay, BufferBytes: o.BufferBytes})
		// Offered loads sum to 120% of capacity so the bottleneck is
		// saturated and shares are admission-proportional (Eq. 2).
		probe := cc.NewManual(1.2 * share * o.Rate)
		other := cc.NewManual(1.2 * (1 - share) * o.Rate)
		fp := n.AddFlow(netsim.FlowConfig{Name: "probe", Path: []*netsim.Link{l},
			CC: func() cc.Algorithm { return probe }})
		n.AddFlow(netsim.FlowConfig{Name: "other", Path: []*netsim.Link{l},
			CC: func() cc.Algorithm { return other }})
		n.Run(20 * time.Second)
		before := metrics.MeanThroughput(fp, 10*time.Second, 20*time.Second)
		probe.SetRate(1.1 * 1.2 * share * o.Rate) // the +10% probe
		n.Run(40 * time.Second)
		after := metrics.MeanThroughput(fp, 30*time.Second, 40*time.Second)
		if before <= 0 {
			continue
		}
		ratio := after / before
		est, _ := core.EstimateOccupancy(1.1, ratio)
		rows = append(rows, Fig5Row{
			Share:          before / o.Rate,
			ThrChangeRatio: ratio,
			EstimatedShare: est,
		})
	}
	return rows, nil
}
