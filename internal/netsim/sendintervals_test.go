package netsim

import (
	"testing"
	"time"

	"repro/internal/cc"
)

// recordingIA is an interval algorithm that records every delivered
// interval for inspection.
type recordingIA struct {
	cc.Manual
	interval time.Duration
	stats    []cc.IntervalStats
}

func (r *recordingIA) ControlInterval() time.Duration { return r.interval }
func (r *recordingIA) OnInterval(s cc.IntervalStats)  { r.stats = append(r.stats, s) }
func (r *recordingIA) Name() string                   { return "recorder" }

func TestSendIntervalConservation(t *testing.T) {
	// Every packet sent in an interval must surface as acked or lost in
	// that interval's delivered statistics — across loss and queueing.
	rec := &recordingIA{interval: 30 * time.Millisecond}
	rec.Manual = *cc.NewManual(15e6)
	n := New(Config{Seed: 3})
	l := n.AddLink(LinkConfig{Rate: 10e6, Delay: 20 * time.Millisecond, BufferBytes: 40_000, LossRate: 0.01})
	n.AddFlow(FlowConfig{Name: "f", Path: []*Link{l}, CC: func() cc.Algorithm { return rec }})
	n.Run(20 * time.Second)

	if len(rec.stats) < 100 {
		t.Fatalf("only %d intervals delivered", len(rec.stats))
	}
	var totalSent, totalAcked, totalLost int64
	for i, s := range rec.stats {
		if s.AckedPackets+s.LostPackets != s.SentPackets {
			t.Fatalf("interval %d: sent %d != acked %d + lost %d",
				i, s.SentPackets, s.AckedPackets, s.LostPackets)
		}
		totalSent += s.SentPackets
		totalAcked += s.AckedPackets
		totalLost += s.LostPackets
	}
	if totalLost == 0 {
		t.Fatal("no losses despite oversending with random loss")
	}
	if totalAcked+totalLost != totalSent {
		t.Fatal("global conservation violated")
	}
}

func TestSendIntervalsDeliveredInOrderAndOnTime(t *testing.T) {
	rec := &recordingIA{interval: 30 * time.Millisecond}
	rec.Manual = *cc.NewManual(5e6)
	n := New(Config{Seed: 4})
	l := n.AddLink(LinkConfig{Rate: 10e6, Delay: 50 * time.Millisecond, BufferBytes: 100_000})
	n.AddFlow(FlowConfig{Name: "f", Path: []*Link{l}, CC: func() cc.Algorithm { return rec }})
	n.Run(10 * time.Second)

	var prev time.Duration
	for i, s := range rec.stats {
		if s.Now < prev {
			t.Fatalf("interval %d delivered at %v before previous %v", i, s.Now, prev)
		}
		prev = s.Now
	}
	// Delivery lags the send interval by roughly one RTT (100 ms base):
	// with 30 ms intervals, interval k closes at (k+1)*30ms and should be
	// delivered within a few hundred ms after.
	if rec.stats[10].Now > 2*time.Second {
		t.Fatalf("interval 10 delivered only at %v", rec.stats[10].Now)
	}
}

func TestSendIntervalEnforcedRateSnapshot(t *testing.T) {
	rec := &recordingIA{interval: 30 * time.Millisecond}
	rec.Manual = *cc.NewManual(8e6)
	n := New(Config{Seed: 5})
	l := n.AddLink(LinkConfig{Rate: 100e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	n.AddFlow(FlowConfig{Name: "f", Path: []*Link{l}, CC: func() cc.Algorithm { return rec }})
	n.Run(5 * time.Second)
	for i, s := range rec.stats {
		if s.SentPackets > 0 && s.EnforcedRateBps != 8e6 {
			t.Fatalf("interval %d enforced rate %v, want 8e6", i, s.EnforcedRateBps)
		}
	}
}

func TestSendIntervalDeliverySpanReflectsBottleneck(t *testing.T) {
	// Oversending at 2x: each interval's packets drain at link rate, so the
	// delivery rate ≈ capacity, well below the send rate.
	rec := &recordingIA{interval: 30 * time.Millisecond}
	rec.Manual = *cc.NewManual(20e6)
	n := New(Config{Seed: 6})
	l := n.AddLink(LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 200_000})
	n.AddFlow(FlowConfig{Name: "f", Path: []*Link{l}, CC: func() cc.Algorithm { return rec }})
	n.Run(10 * time.Second)
	late := rec.stats[len(rec.stats)/2:]
	var sumRate float64
	var cnt int
	for _, s := range late {
		if s.AckedPackets >= 5 {
			sumRate += s.DeliveryRate()
			cnt++
		}
	}
	rate := sumRate / float64(cnt)
	if rate < 8e6 || rate > 12e6 {
		t.Fatalf("delivery rate %v, want ~capacity 10e6 (send rate 20e6)", rate)
	}
}

func TestSendIntervalDeliveryRateTracksSendWhenIdleLink(t *testing.T) {
	rec := &recordingIA{interval: 30 * time.Millisecond}
	rec.Manual = *cc.NewManual(8e6)
	n := New(Config{Seed: 7})
	l := n.AddLink(LinkConfig{Rate: 100e6, Delay: 10 * time.Millisecond, BufferBytes: 200_000})
	n.AddFlow(FlowConfig{Name: "f", Path: []*Link{l}, CC: func() cc.Algorithm { return rec }})
	n.Run(10 * time.Second)
	late := rec.stats[len(rec.stats)/2:]
	var sumRate float64
	var cnt int
	for _, s := range late {
		if s.AckedPackets >= 5 {
			sumRate += s.DeliveryRate()
			cnt++
		}
	}
	rate := sumRate / float64(cnt)
	// On an underutilized link the delivery spacing mirrors the send
	// spacing: delivery rate ≈ send rate.
	if rate < 5e6 || rate > 12e6 {
		t.Fatalf("delivery rate %v, want ~send rate 8e6", rate)
	}
}

func TestEmptyIntervalsStillDelivered(t *testing.T) {
	// A rate so low that most 30 ms intervals carry no packets: empty
	// intervals must still be delivered (Jury's slow-start depends on it).
	rec := &recordingIA{interval: 30 * time.Millisecond}
	rec.Manual = *cc.NewManual(100e3) // ~8 packets/second
	n := New(Config{Seed: 8})
	l := n.AddLink(LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	n.AddFlow(FlowConfig{Name: "f", Path: []*Link{l}, CC: func() cc.Algorithm { return rec }})
	n.Run(3 * time.Second)
	empty := 0
	for _, s := range rec.stats {
		if s.SentPackets == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("no empty intervals delivered at 100 kbit/s")
	}
}
