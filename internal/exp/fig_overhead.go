package exp

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/astraea"
	"repro/internal/cc/aurora"
	"repro/internal/cc/orca"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/simcore"
)

// Fig14Row is one scheme's control-path cost.
type Fig14Row struct {
	Scheme        string
	NsPerAck      float64
	NsPerDecision float64 // per control interval (0 for ack-clocked schemes)
	// CPUPercent is the derived single-core utilization for a 100 Mbps /
	// 30 ms flow: ack processing at line rate plus periodic decisions.
	CPUPercent float64
}

// Fig14Options parameterizes the overhead measurement.
type Fig14Options struct {
	Schemes []string
	// AckRate is the ACK arrival rate used to derive CPU%, default 8333/s
	// (100 Mbps of 1500-byte packets).
	AckRate float64
	Iters   int
	Seed    uint64
}

func (o *Fig14Options) defaults() {
	if o.Schemes == nil {
		// The paper's Fig. 14 set, plus jury-ref (post-processing without
		// NN inference) as the built-in ablation: the paper reports no
		// measurable difference between Jury with and without the
		// post-processing phase.
		o.Schemes = []string{"aurora", "vivace", "copa", "remy", "orca", "cubic", "bbr", "vegas", "jury", "jury-ref"}
	}
	if o.AckRate == 0 {
		o.AckRate = 100e6 / 8 / 1500
	}
	if o.Iters == 0 {
		o.Iters = 20000
	}
}

// nnActPolicy adapts a raw MLP to the scalar-action policy interfaces of
// the DRL baselines, so the overhead measurement exercises real 2x128
// inference like the deployed systems do. Inference reuses a per-policy
// scratch, matching the allocation-free deployment path.
type nnActPolicy struct {
	net     *nn.MLP
	scratch *nn.Scratch
}

func newNNActPolicy(net *nn.MLP) *nnActPolicy {
	return &nnActPolicy{net: net, scratch: nn.NewScratch(net)}
}

func (p *nnActPolicy) Act(state []float64) float64 { return p.net.ForwardInto(state, p.scratch)[0] }

// newOverheadScheme builds each scheme with NN-backed policies where the
// deployed system runs NN inference.
func newOverheadScheme(name string, seed uint64) (cc.Algorithm, error) {
	rng := simcore.NewRNG(seed)
	mlp := func(in int) *nn.MLP {
		return nn.NewMLP(rng, []int{in, 128, 128, 1}, []nn.Activation{nn.ReLU, nn.ReLU, nn.Tanh})
	}
	switch name {
	case "jury":
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		actor := nn.NewMLP(rng, []int{cfg.StateDim(), 128, 128, 2}, []nn.Activation{nn.ReLU, nn.ReLU, nn.Tanh})
		return core.New(cfg, &core.NNPolicy{Net: actor}), nil
	case "jury-ref":
		return core.NewDefault(seed), nil
	case "aurora":
		return aurora.New(aurora.DefaultConfig(), newNNActPolicy(mlp(aurora.StateDim))), nil
	case "astraea":
		return astraea.New(astraea.DefaultConfig(), newNNActPolicy(mlp(astraea.StateDim))), nil
	case "orca":
		return orca.New(orca.DefaultConfig(), newNNActPolicy(mlp(orca.StateDim))), nil
	default:
		return NewScheme(name, seed)
	}
}

// Fig14CPUOverhead measures each scheme's per-ACK and per-decision costs
// and derives the Fig. 14 CPU utilization. Absolute values reflect this
// repository's pure-Go implementations (the paper compares kernel C,
// userspace C++, and Python stacks); the published *shape* — classic
// schemes nearly free, DRL inference dominating, Jury's post-processing
// adding nothing measurable — is preserved. See DESIGN.md.
func Fig14CPUOverhead(o Fig14Options) ([]Fig14Row, error) {
	o.defaults()
	var rows []Fig14Row
	for _, name := range o.Schemes {
		alg, err := newOverheadScheme(name, o.Seed+hash(name))
		if err != nil {
			return nil, err
		}
		alg.Init(0)

		// Per-ACK cost.
		ack := cc.Ack{RTT: 30 * time.Millisecond, Bytes: 1500}
		start := time.Now()
		for i := 0; i < o.Iters; i++ {
			ack.Now = time.Duration(i) * 120 * time.Microsecond
			ack.SentAt = ack.Now - ack.RTT
			alg.OnAck(ack)
			alg.CWND()
			alg.PacingRate()
		}
		perAck := float64(time.Since(start).Nanoseconds()) / float64(o.Iters)

		// Per-decision cost for interval schemes.
		var perDecision float64
		var decisionRate float64
		if ia, ok := alg.(cc.IntervalAlgorithm); ok {
			iv := ia.ControlInterval()
			decisionRate = 1 / iv.Seconds()
			st := cc.IntervalStats{
				Interval:     iv,
				AckedBytes:   375_000,
				AckedPackets: 250,
				SentBytes:    375_000,
				SentPackets:  250,
				AvgRTT:       31 * time.Millisecond,
				MinRTT:       30 * time.Millisecond,
				FlowMinRTT:   30 * time.Millisecond,
				DeliverySpan: iv,
			}
			start = time.Now()
			for i := 0; i < o.Iters; i++ {
				st.Now = time.Duration(i+1) * iv
				ia.OnInterval(st)
			}
			perDecision = float64(time.Since(start).Nanoseconds()) / float64(o.Iters)
		}

		cpu := (perAck*o.AckRate + perDecision*decisionRate) / 1e9 * 100
		rows = append(rows, Fig14Row{
			Scheme:        name,
			NsPerAck:      perAck,
			NsPerDecision: perDecision,
			CPUPercent:    cpu,
		})
	}
	return rows, nil
}

// String renders a row for the CLI.
func (r Fig14Row) String() string {
	return fmt.Sprintf("%-9s %8.0f ns/ack %10.0f ns/decision %8.4f %% CPU",
		r.Scheme, r.NsPerAck, r.NsPerDecision, r.CPUPercent)
}
