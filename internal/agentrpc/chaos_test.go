package agentrpc

import (
	"errors"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file is the daemon's chaos harness: a fault-injecting net.Conn
// wrapper swept across every socket failure mode the serving path must
// survive, in the style of the runstore crash matrix. Every fault must
// degrade the client to its AIMD-safe fallback within the per-decision
// deadline budget, the breaker must trip (no per-decision network latency
// while the fault persists) and recover after the fault heals, the
// counters must account for every decision, and nothing may leak a
// goroutine.

// pipeListener is an in-memory net.Listener over net.Pipe. Pipe writes are
// synchronous (they block until the peer reads), which is exactly what the
// write-deadline regression test needs — real TCP buffers a 17-byte
// response and a stalled reader would never surface.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands the server side of a fresh pipe to Accept and returns the
// client side.
func (l *pipeListener) dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// Fault modes injected by faultConn.
const (
	faultNone         = iota
	faultHungRead     // responses never arrive; reads block to the deadline
	faultSlowLoris    // one response byte arrives, the rest never do
	faultStallWrite   // request writes stall to the write deadline
	faultMidFrameKill // the connection dies after half a request frame
)

// faultConn wraps a live client connection and injects the active fault
// mode. Deadlines set by the client are honoured: a blocked read or write
// returns os.ErrDeadlineExceeded (a net.Error with Timeout() true) when the
// recorded deadline passes, exactly like a real socket.
type faultConn struct {
	net.Conn
	mode *atomic.Int32

	mu sync.Mutex
	rd time.Time
	wd time.Time
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd, c.wd = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wd = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// blockUntil sleeps to the recorded deadline and returns the same error a
// real socket would. A missing deadline falls back to a short cap so a
// buggy client that forgot its deadline fails the test instead of hanging.
func (c *faultConn) blockUntil(deadline time.Time) error {
	if deadline.IsZero() {
		deadline = time.Now().Add(2 * time.Second)
	}
	if d := time.Until(deadline); d > 0 {
		time.Sleep(d)
	}
	return os.ErrDeadlineExceeded
}

func (c *faultConn) Read(b []byte) (int, error) {
	switch c.mode.Load() {
	case faultHungRead:
		c.mu.Lock()
		d := c.rd
		c.mu.Unlock()
		return 0, c.blockUntil(d)
	case faultSlowLoris:
		// Deliver exactly one byte, then starve: io.ReadFull(respSize) can
		// never finish and must hit the deadline.
		n, err := c.Conn.Read(b[:1])
		if err != nil {
			return n, err
		}
		c.mu.Lock()
		d := c.rd
		c.mu.Unlock()
		return n, c.blockUntil(d)
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	switch c.mode.Load() {
	case faultStallWrite:
		c.mu.Lock()
		d := c.wd
		c.mu.Unlock()
		return 0, c.blockUntil(d)
	case faultMidFrameKill:
		n, err := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		if err == nil {
			err = errors.New("connection killed mid-frame")
		}
		return n, err
	}
	return c.Conn.Write(b)
}

// gatePolicy blocks inside Decide while its gate is held and the first
// state value matches the jam marker — the BUSY-storm test uses it to pin
// the batcher mid-execution deterministically.
type gatePolicy struct{ gate chan struct{} }

func (p gatePolicy) Decide(state []float64) (float64, float64) {
	if len(state) > 0 && state[0] == jamMarker {
		<-p.gate
	}
	return 0.5, 0.5
}

const jamMarker = -12345

// chaosBudget is the per-decision wall-clock bound every fault must respect:
// one transport deadline, at most one dial, and scheduling grace.
func chaosBudget(cfg ClientConfig) time.Duration {
	return cfg.Timeout + cfg.DialTimeout + 200*time.Millisecond
}

// checkGoroutines fails the test if the goroutine count has not returned to
// the baseline within a generous window.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// decideAndCount runs one Decide, asserting the budget, and returns whether
// the answer came from the fallback.
func decideAndCount(t *testing.T, cl *Client, cfg ClientConfig, state []float64, fb constPolicy) bool {
	t.Helper()
	start := time.Now()
	mu, delta := cl.Decide(state)
	if took := time.Since(start); took > chaosBudget(cfg) {
		t.Fatalf("decision took %v, budget %v", took, chaosBudget(cfg))
	}
	return mu == fb.mu && delta == fb.delta
}

// TestChaosMatrix sweeps the socket fault modes: for each, a healthy client
// suffers the fault, must serve AIMD-safe fallback decisions within the
// budget, trip its breaker (trips ≥ 1), recover after the fault heals
// (recoveries ≥ 1, remote decisions resume), and account for every decision
// as exactly one of remote/fallback. Each subtest also checks for goroutine
// leaks. Run under -race by scripts/check.sh.
func TestChaosMatrix(t *testing.T) {
	modes := []struct {
		name string
		mode int32
	}{
		{"hung-read", faultHungRead},
		{"slow-loris", faultSlowLoris},
		{"stalled-write", faultStallWrite},
		{"mid-frame-kill", faultMidFrameKill},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			srv, err := Serve("127.0.0.1:0", echoPolicy{})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			var mode atomic.Int32
			cfg := ClientConfig{
				Timeout:         50 * time.Millisecond,
				BreakerTrip:     3,
				BreakerCooldown: 40 * time.Millisecond,
				JitterSeed:      7,
			}
			fb := constPolicy{0.25, 0.75}
			cl, err := dialWith(srv.Addr(), fb, cfg, func(addr string, timeout time.Duration) (net.Conn, error) {
				conn, err := net.DialTimeout("tcp", addr, timeout)
				if err != nil {
					return nil, err
				}
				return &faultConn{Conn: conn, mode: &mode}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			cfg = cl.cfg // capture the applied defaults for the budget

			var calls int64
			// Healthy round trip first: the fault hits an established flow.
			if decideAndCount(t, cl, cfg, []float64{1}, fb) {
				t.Fatal("healthy decision did not go remote")
			}
			calls++

			mode.Store(m.mode)
			for i := 0; i < 12; i++ {
				if !decideAndCount(t, cl, cfg, []float64{1}, fb) {
					t.Fatalf("decision %d under %s not served by the fallback", i, m.name)
				}
				calls++
			}
			if cl.BreakerTrips() < 1 {
				t.Fatalf("breaker never tripped under %s", m.name)
			}
			// With the breaker open, decisions must be instant — no network.
			attempts := cl.DialAttempts()
			for i := 0; i < 5; i++ {
				start := time.Now()
				cl.Decide([]float64{1})
				calls++
				if took := time.Since(start); cl.BreakerOpen() && took > 10*time.Millisecond {
					t.Fatalf("open-breaker decision took %v", took)
				}
			}
			if cl.BreakerOpen() && cl.DialAttempts() != attempts {
				t.Fatal("open breaker still dialing")
			}

			// Heal: half-open probes must rediscover the service.
			mode.Store(faultNone)
			deadline := time.Now().Add(5 * time.Second)
			remoteBefore := cl.RemoteDecisions()
			for cl.RemoteDecisions() == remoteBefore {
				if time.Now().After(deadline) {
					t.Fatalf("client never recovered from %s", m.name)
				}
				decideAndCount(t, cl, cfg, []float64{1}, fb)
				calls++
				time.Sleep(5 * time.Millisecond)
			}
			if cl.BreakerRecoveries() < 1 {
				t.Fatal("recovery not recorded by the breaker")
			}
			if got := cl.RemoteDecisions() + cl.FallbackDecisions(); got != calls {
				t.Fatalf("accounting: %d remote + %d fallback != %d calls",
					cl.RemoteDecisions(), cl.FallbackDecisions(), calls)
			}

			cl.Close()
			srv.Close()
			checkGoroutines(t, base)
		})
	}
}

// TestChaosBusyStorm jams the batcher mid-execution with no queue, so every
// request is shed with a typed BUSY: the client must fall back instantly
// (the connection stays healthy — no dial churn), trip its breaker on
// consecutive BUSYs, and recover once the jam clears.
func TestChaosBusyStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	gate := make(chan struct{})
	srv, err := ServeConfig("127.0.0.1:0", gatePolicy{gate}, Config{MaxQueue: -1, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := ClientConfig{
		Timeout:         100 * time.Millisecond,
		BreakerTrip:     3,
		BreakerCooldown: 40 * time.Millisecond,
		JitterSeed:      7,
	}
	fb := constPolicy{0.25, 0.75}
	cl, err := DialConfig(srv.Addr(), fb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cfg = cl.cfg

	var calls int64
	if decideAndCount(t, cl, cfg, []float64{1}, fb) {
		t.Fatal("healthy decision did not go remote")
	}
	calls++

	// Jam the batcher: a raw connection parks one request inside Decide.
	jam, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer jam.Close()
	if _, err := jam.Write(appendRequest(nil, []float64{jamMarker})); err != nil {
		t.Fatal(err)
	}
	// Wait until the jam request is actually inside the policy (the batcher
	// stops receiving, so a probe decision is shed).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Shed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batcher never jammed")
		}
		decideAndCount(t, cl, cfg, []float64{1}, fb)
		calls++
		time.Sleep(2 * time.Millisecond)
	}

	dials := cl.DialAttempts()
	for i := 0; i < 8; i++ {
		if !decideAndCount(t, cl, cfg, []float64{1}, fb) && !cl.BreakerOpen() {
			t.Fatalf("decision %d during the storm neither shed nor fallback", i)
		}
		calls++
	}
	if cl.BusyResponses() < 1 {
		t.Fatal("no BUSY responses recorded")
	}
	if cl.BreakerTrips() < 1 {
		t.Fatal("breaker never tripped on the BUSY storm")
	}
	if cl.DialAttempts() != dials {
		t.Fatal("BUSY responses caused dial churn — the connection should stay up")
	}

	// Clear the jam; the breaker's half-open probe must find the service.
	close(gate)
	remoteBefore := cl.RemoteDecisions()
	deadline = time.Now().Add(5 * time.Second)
	for cl.RemoteDecisions() == remoteBefore {
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after the storm")
		}
		decideAndCount(t, cl, cfg, []float64{1}, fb)
		calls++
		time.Sleep(5 * time.Millisecond)
	}
	if cl.BreakerRecoveries() < 1 {
		t.Fatal("recovery not recorded")
	}
	if got := cl.RemoteDecisions() + cl.FallbackDecisions(); got != calls {
		t.Fatalf("accounting: %d remote + %d fallback != %d calls",
			cl.RemoteDecisions(), cl.FallbackDecisions(), calls)
	}
	if srv.Shed() < cl.BusyResponses() {
		t.Fatalf("server shed %d < client BUSY %d", srv.Shed(), cl.BusyResponses())
	}

	cl.Close()
	jam.Close()
	srv.Close()
	checkGoroutines(t, base)
}

// TestChaosPanicMidBatch drives a policy that panics on poisoned states:
// the batch gets typed ERR responses (the connection survives), the client
// falls back within budget and trips its breaker, and healthy states serve
// again immediately — the daemon itself never dies.
func TestChaosPanicMidBatch(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, err := Serve("127.0.0.1:0", panicPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := ClientConfig{
		Timeout:         100 * time.Millisecond,
		BreakerTrip:     3,
		BreakerCooldown: 40 * time.Millisecond,
		JitterSeed:      7,
	}
	fb := constPolicy{0.25, 0.75}
	cl, err := DialConfig(srv.Addr(), fb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cfg = cl.cfg

	var calls int64
	if decideAndCount(t, cl, cfg, []float64{1}, fb) {
		t.Fatal("healthy decision did not go remote")
	}
	calls++

	dials := cl.DialAttempts()
	for i := 0; i < 6; i++ {
		if !decideAndCount(t, cl, cfg, []float64{-1}, fb) && !cl.BreakerOpen() {
			t.Fatalf("poisoned decision %d not served by the fallback", i)
		}
		calls++
	}
	if srv.Panics() < 1 {
		t.Fatal("server recorded no panics")
	}
	if cl.BreakerTrips() < 1 {
		t.Fatal("breaker never tripped on ERR responses")
	}
	if cl.DialAttempts() != dials {
		t.Fatal("typed ERR responses caused dial churn — the connection should stay up")
	}

	// Healthy states must serve again without restarting anything.
	remoteBefore := cl.RemoteDecisions()
	deadline := time.Now().Add(5 * time.Second)
	for cl.RemoteDecisions() == remoteBefore {
		if time.Now().After(deadline) {
			t.Fatal("daemon never answered again after mid-batch panics")
		}
		decideAndCount(t, cl, cfg, []float64{1}, fb)
		calls++
		time.Sleep(5 * time.Millisecond)
	}
	if cl.BreakerRecoveries() < 1 {
		t.Fatal("recovery not recorded")
	}
	if got := cl.RemoteDecisions() + cl.FallbackDecisions(); got != calls {
		t.Fatalf("accounting: %d remote + %d fallback != %d calls",
			cl.RemoteDecisions(), cl.FallbackDecisions(), calls)
	}

	cl.Close()
	srv.Close()
	checkGoroutines(t, base)
}

// TestClientShedsAboveMaxPending: more concurrent Decide callers than
// MaxPending must be served from the fallback immediately instead of
// queueing behind the connection mutex.
func TestClientShedsAboveMaxPending(t *testing.T) {
	gate := make(chan struct{})
	srv, err := ServeConfig("127.0.0.1:0", gatePolicy{gate}, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fb := constPolicy{0.25, 0.75}
	cl, err := DialConfig(srv.Addr(), fb, ClientConfig{
		Timeout:    500 * time.Millisecond,
		MaxPending: 2,
		JitterSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Park one decision inside the daemon, then pile callers on the client.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl.Decide([]float64{jamMarker})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for cl.pendingN.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked decision never started")
		}
		time.Sleep(time.Millisecond)
	}
	const burst = 8
	shedBefore := cl.ShedDecisions()
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		go func() {
			defer wg.Done()
			cl.Decide([]float64{1})
		}()
	}
	for cl.ShedDecisions() == shedBefore {
		if time.Now().After(deadline) {
			t.Fatal("no caller was shed above MaxPending")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if cl.ShedDecisions() == 0 {
		t.Fatal("shed decisions not recorded")
	}
}
