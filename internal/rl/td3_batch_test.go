package rl

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/simcore"
)

// fillBuffer seeds a replay buffer with deterministic random transitions.
func fillBuffer(stateDim, actionDim, n int, seed uint64) *ReplayBuffer {
	buf := NewReplayBuffer(4 * n)
	rng := simcore.NewRNG(seed)
	for i := 0; i < n; i++ {
		s := make([]float64, stateDim)
		nx := make([]float64, stateDim)
		a := make([]float64, actionDim)
		for j := range s {
			s[j] = rng.Range(-1, 1)
			nx[j] = rng.Range(-1, 1)
		}
		for j := range a {
			a[j] = rng.Range(-1, 1)
		}
		buf.Add(Transition{
			State: s, Action: a, Reward: rng.Range(-1, 1),
			NextState: nx, Done: rng.Bernoulli(0.1),
		})
	}
	return buf
}

func mlpWeightsEqual(a, b *nn.MLP) bool {
	for li := range a.Layers {
		la, lb := a.Layers[li], b.Layers[li]
		for i := range la.W {
			if la.W[i] != lb.W[i] {
				return false
			}
		}
		for i := range la.B {
			if la.B[i] != lb.B[i] {
				return false
			}
		}
	}
	return true
}

// TestUpdateWorkerCountDeterminism is the parallel-update determinism
// contract: from identical seeds and replay contents, Update must produce
// bit-identical weights for every worker count. The batch is sharded the
// same way regardless of Workers and the shard gradients are folded in a
// fixed pairwise order, so the only thing Workers may change is wall-clock.
func TestUpdateWorkerCountDeterminism(t *testing.T) {
	const steps = 7 // crosses several PolicyDelay boundaries
	run := func(workers int) *TD3 {
		cfg := Config{
			StateDim: 6, ActionDim: 2, Hidden: []int{24, 16},
			Batch: 20, // not a multiple of the shard height: exercises the ragged tail shard
			Seed:  77, Workers: workers,
		}
		agent := NewTD3(cfg)
		buf := fillBuffer(cfg.StateDim, cfg.ActionDim, 256, 78)
		for i := 0; i < steps; i++ {
			agent.Update(buf)
		}
		return agent
	}

	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if !mlpWeightsEqual(ref.Actor, got.Actor) {
			t.Fatalf("Workers=%d: actor weights differ from Workers=1", workers)
		}
		if !mlpWeightsEqual(ref.critic1, got.critic1) || !mlpWeightsEqual(ref.critic2, got.critic2) {
			t.Fatalf("Workers=%d: critic weights differ from Workers=1", workers)
		}
		if !mlpWeightsEqual(ref.actorTarget, got.actorTarget) ||
			!mlpWeightsEqual(ref.c1Target, got.c1Target) ||
			!mlpWeightsEqual(ref.c2Target, got.c2Target) {
			t.Fatalf("Workers=%d: target weights differ from Workers=1", workers)
		}
	}
}

// TestUpdateAllocFree pins the serial update's steady-state allocation
// contract (the benchmark asserts the same; this fails faster and under
// -race).
func TestUpdateAllocFree(t *testing.T) {
	cfg := Config{StateDim: 8, ActionDim: 2, Hidden: []int{16, 8}, Batch: 32, Seed: 5}
	agent := NewTD3(cfg)
	buf := fillBuffer(cfg.StateDim, cfg.ActionDim, 128, 6)
	agent.Update(buf) // warm the replay index scratch
	avg := testing.AllocsPerRun(20, func() {
		agent.Update(buf)
	})
	if avg != 0 {
		t.Fatalf("Update allocates %v per call at Workers<=1, want 0", avg)
	}
}

// TestUpdateAllocFreeWorkers pins the multi-worker steady state to the same
// zero-allocation contract as the serial path: after the first Update spawns
// the persistent shard pool, further Updates must not allocate on the calling
// goroutine (the old spawn-per-Update scheme paid a closure plus WaitGroup
// per call).
func TestUpdateAllocFreeWorkers(t *testing.T) {
	for _, workers := range []int{2, 4} {
		cfg := Config{StateDim: 8, ActionDim: 2, Hidden: []int{16, 8}, Batch: 32, Seed: 5, Workers: workers}
		agent := NewTD3(cfg)
		buf := fillBuffer(cfg.StateDim, cfg.ActionDim, 128, 6)
		agent.Update(buf) // warm the replay index scratch and spawn the pool
		avg := testing.AllocsPerRun(20, func() {
			agent.Update(buf)
		})
		agent.Close()
		if avg != 0 {
			t.Fatalf("Update allocates %v per call at Workers=%d, want 0", avg, workers)
		}
	}
}

func BenchmarkReplaySample(b *testing.B) {
	buf := fillBuffer(8, 2, 1024, 9)
	rng := simcore.NewRNG(10)
	var dst []Transition
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = buf.Sample(rng, 64, dst)
	}
	if len(dst) != 64 {
		b.Fatal("short sample")
	}
}
