package netsim

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/faults"
)

// faultDumbbell runs a 2-flow cubic dumbbell with the given fault config and
// returns the network after the run.
func faultDumbbell(t *testing.T, seed uint64, fc *faults.Config) *Network {
	t.Helper()
	n := New(Config{Seed: seed})
	l := n.AddLink(LinkConfig{
		Rate:        20e6,
		Delay:       10 * time.Millisecond,
		BufferBytes: 50_000,
		Faults:      fc,
	})
	for i := 0; i < 2; i++ {
		n.AddFlow(FlowConfig{
			Name: "f" + string(rune('0'+i)),
			Path: []*Link{l},
			CC:   func() cc.Algorithm { return cubic.New() },
		})
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	n.Run(8 * time.Second)
	return n
}

// closed asserts the flow-level conservation that must survive any fault
// config: packets the sender counted can only be acked, lost, or in flight.
func closed(t *testing.T, n *Network) {
	t.Helper()
	for _, f := range n.Flows() {
		st := f.Stats()
		if inflight := st.SentPackets - st.AckedPackets - st.LostPackets; inflight < 0 {
			t.Errorf("flow %s: negative in-flight (sent %d acked %d lost %d)",
				st.Name, st.SentPackets, st.AckedPackets, st.LostPackets)
		}
		if st.AckedPackets == 0 {
			t.Errorf("flow %s: nothing delivered under faults", st.Name)
		}
	}
}

func TestBurstLossDropsAndAccountingCloses(t *testing.T) {
	n := faultDumbbell(t, 1, &faults.Config{
		GE: &faults.GEConfig{PGoodBad: 0.005, PBadGood: 0.25, LossBad: 1},
	})
	fs := n.Links()[0].FaultStats()
	if fs.BurstDrops == 0 {
		t.Fatal("no burst drops injected")
	}
	var lost int64
	for _, f := range n.Flows() {
		lost += f.Stats().LostPackets
	}
	if lost < fs.BurstDrops {
		t.Errorf("flows detected %d losses but the injector dropped %d", lost, fs.BurstDrops)
	}
	closed(t, n)
}

func TestBlackoutDropsEverythingWhileDown(t *testing.T) {
	n := faultDumbbell(t, 2, &faults.Config{
		Flap: &faults.FlapConfig{MeanUp: 900 * time.Millisecond, MeanDown: 100 * time.Millisecond},
	})
	fs := n.Links()[0].FaultStats()
	if fs.BlackoutDrops == 0 {
		t.Fatal("no blackout drops despite ~10%% downtime")
	}
	closed(t, n)
}

func TestDuplicationWastesLinkCapacityOnly(t *testing.T) {
	n := faultDumbbell(t, 3, &faults.Config{DupProb: 0.05})
	l := n.Links()[0]
	fs := l.FaultStats()
	if fs.Duplicated == 0 {
		t.Fatal("no duplicates injected")
	}
	// Duplicates consume link capacity but never surface in sender
	// accounting: the link must have delivered more packets than the flows
	// ever sent minus what it dropped.
	var sent int64
	for _, f := range n.Flows() {
		sent += f.Stats().SentPackets
	}
	st := l.Stats()
	if st.DeliveredPackets+st.OverflowDrops+st.RandomDrops <= sent {
		t.Errorf("duplicates invisible at the link: delivered %d + dropped %d ≤ sent %d",
			st.DeliveredPackets, st.OverflowDrops+st.RandomDrops, sent)
	}
	closed(t, n)
}

func TestReorderAndJitterKeepFlowsAlive(t *testing.T) {
	n := faultDumbbell(t, 4, &faults.Config{
		ReorderProb:     0.03,
		ReorderMaxDelay: 15 * time.Millisecond,
		JitterProb:      0.05,
		JitterMax:       8 * time.Millisecond,
	})
	fs := n.Links()[0].FaultStats()
	if fs.Reordered == 0 || fs.JitterSpikes == 0 {
		t.Fatalf("faults not exercised: %+v", fs)
	}
	closed(t, n)
}

// TestFaultRunsDeterministic re-runs the same fault config and seed and
// demands identical flow statistics and fault counters.
func TestFaultRunsDeterministic(t *testing.T) {
	cfg := &faults.Config{
		GE:              &faults.GEConfig{PGoodBad: 0.01, PBadGood: 0.3, LossBad: 1},
		ReorderProb:     0.02,
		ReorderMaxDelay: 10 * time.Millisecond,
		DupProb:         0.01,
		JitterProb:      0.02,
		JitterMax:       5 * time.Millisecond,
		Flap:            &faults.FlapConfig{MeanUp: 2 * time.Second, MeanDown: 100 * time.Millisecond},
	}
	a := faultDumbbell(t, 7, cfg)
	b := faultDumbbell(t, 7, cfg)
	if fa, fb := a.Links()[0].FaultStats(), b.Links()[0].FaultStats(); fa != fb {
		t.Fatalf("fault stats diverged: %+v vs %+v", fa, fb)
	}
	for i := range a.Flows() {
		if sa, sb := a.Flows()[i].Stats(), b.Flows()[i].Stats(); sa != sb {
			t.Fatalf("flow %d stats diverged:\n%+v\n%+v", i, sa, sb)
		}
	}
}

// TestFaultConfigValidatedByNetwork ensures broken fault configs are caught
// at Validate time.
func TestFaultConfigValidatedByNetwork(t *testing.T) {
	n := New(Config{Seed: 1})
	l := n.AddLink(LinkConfig{
		Rate:        10e6,
		Delay:       5 * time.Millisecond,
		BufferBytes: 10_000,
		Faults:      &faults.Config{ReorderProb: 0.5}, // no ReorderMaxDelay
	})
	n.AddFlow(FlowConfig{Name: "f", Path: []*Link{l}, CC: func() cc.Algorithm { return cubic.New() }})
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted a reorder config with no max delay")
	}
}
