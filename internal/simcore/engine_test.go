package simcore

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 40} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	n := e.Run(100)
	if n != 5 {
		t.Fatalf("executed %d events, want 5", n)
	}
	want := []time.Duration{10, 10, 20, 30, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run(10)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ }) // exactly at horizon: fires
	e.Schedule(21, func() { fired++ }) // after horizon: stays queued
	e.Run(20)
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	// A second Run picks up where the first left off.
	e.Run(30)
	if fired != 3 {
		t.Fatalf("fired %d after second run, want 3", fired)
	}
}

func TestEngineClockAdvancesToHorizonWhenIdle(t *testing.T) {
	e := NewEngine()
	e.Run(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("idle clock at %v, want 1s", e.Now())
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(10, func() {
		order = append(order, "a")
		e.ScheduleAfter(5, func() { order = append(order, "b") })
	})
	e.Schedule(12, func() { order = append(order, "c") })
	e.Run(100)
	want := []string{"a", "c", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run(100)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.Run(10)
	if fired != 1 {
		t.Fatalf("fired %d, want 1 (stopped)", fired)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first samples")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRNGUniformMean(t *testing.T) {
	r := NewRNG(99)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %.4f, want ~0.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %.4f, want ~1", variance)
	}
}

func TestRNGBernoulliRate(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("bernoulli(0.3) rate %.4f", rate)
	}
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%20) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) produced %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f, want ~1", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(21)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}
