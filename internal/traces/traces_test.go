package traces

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstantTrace(t *testing.T) {
	tr := Constant(100e6)
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if tr.RateAt(at) != 100e6 {
			t.Fatalf("constant trace returned %v at %v", tr.RateAt(at), at)
		}
	}
}

func TestStepTraceLookup(t *testing.T) {
	tr := NewStep([]Point{
		{At: 0, Rate: 10e6},
		{At: time.Second, Rate: 20e6},
		{At: 3 * time.Second, Rate: 5e6},
	})
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10e6},
		{500 * time.Millisecond, 10e6},
		{time.Second, 20e6},
		{2 * time.Second, 20e6},
		{3 * time.Second, 5e6},
		{time.Hour, 5e6},
	}
	for _, c := range cases {
		if got := tr.RateAt(c.at); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestStepTraceSortsPoints(t *testing.T) {
	tr := NewStep([]Point{
		{At: 2 * time.Second, Rate: 2},
		{At: 0, Rate: 1},
	})
	if tr.RateAt(time.Second) != 1 {
		t.Fatal("unsorted points not handled")
	}
}

func TestStepTraceLoop(t *testing.T) {
	tr := NewStep([]Point{
		{At: 0, Rate: 1},
		{At: time.Second, Rate: 2},
	})
	tr.Loop = 2 * time.Second
	if tr.RateAt(2500*time.Millisecond) != 1 {
		t.Fatalf("loop lookup failed: %v", tr.RateAt(2500*time.Millisecond))
	}
	if tr.RateAt(3500*time.Millisecond) != 2 {
		t.Fatalf("loop lookup failed: %v", tr.RateAt(3500*time.Millisecond))
	}
}

func TestStepEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty step trace did not panic")
		}
	}()
	NewStep(nil)
}

func TestLTETraceBounds(t *testing.T) {
	cfg := DefaultLTE(42)
	tr, err := SynthesizeLTE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for at := time.Duration(0); at < 2*cfg.Length; at += 100 * time.Millisecond {
		r := tr.RateAt(at)
		if r < cfg.Min || r > cfg.Max {
			t.Fatalf("LTE rate %v at %v outside [%v, %v]", r, at, cfg.Min, cfg.Max)
		}
	}
}

func TestLTETraceMeanNearConfig(t *testing.T) {
	cfg := DefaultLTE(7)
	tr, err := SynthesizeLTE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := MeanRate(tr, cfg.Length, cfg.Interval)
	if math.Abs(mean-cfg.Mean)/cfg.Mean > 0.35 {
		t.Fatalf("LTE mean %v too far from configured %v", mean, cfg.Mean)
	}
}

func TestLTETraceActuallyFluctuates(t *testing.T) {
	tr, err := SynthesizeLTE(DefaultLTE(3))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for at := time.Duration(0); at < 60*time.Second; at += 500 * time.Millisecond {
		r := tr.RateAt(at)
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if hi/lo < 2 {
		t.Fatalf("LTE trace too flat: min %v max %v", lo, hi)
	}
}

func TestLTETraceDeterministic(t *testing.T) {
	a, _ := SynthesizeLTE(DefaultLTE(9))
	b, _ := SynthesizeLTE(DefaultLTE(9))
	for at := time.Duration(0); at < 10*time.Second; at += 250 * time.Millisecond {
		if a.RateAt(at) != b.RateAt(at) {
			t.Fatal("same-seed LTE traces diverge")
		}
	}
}

func TestLTEConfigValidation(t *testing.T) {
	bad := []LTEConfig{
		{Mean: 0, Min: 1, Max: 2, Interval: time.Second, Length: time.Minute},
		{Mean: 5, Min: 10, Max: 2, Interval: time.Second, Length: time.Minute},
		{Mean: 5, Min: 1, Max: 10, Interval: 0, Length: time.Minute},
		{Mean: 5, Min: 1, Max: 10, Interval: time.Minute, Length: time.Second},
	}
	for i, cfg := range bad {
		if _, err := SynthesizeLTE(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestJitteredBoundsAndDeterminism(t *testing.T) {
	j := &Jittered{Base: Constant(100e6), Period: time.Second, Amplitude: 0.2, Seed: 5}
	for at := time.Duration(0); at < time.Minute; at += 100 * time.Millisecond {
		r := j.RateAt(at)
		if r < 80e6-1 || r > 120e6+1 {
			t.Fatalf("jittered rate %v outside ±20%%", r)
		}
		if r != j.RateAt(at) {
			t.Fatal("jittered trace not deterministic")
		}
	}
}

func TestJitteredZeroAmplitudePassesThrough(t *testing.T) {
	j := &Jittered{Base: Constant(42), Period: time.Second}
	if j.RateAt(5*time.Second) != 42 {
		t.Fatal("zero-amplitude jitter modified the rate")
	}
}

func TestMeanRateOfStep(t *testing.T) {
	tr := NewStep([]Point{
		{At: 0, Rate: 10},
		{At: time.Second, Rate: 30},
	})
	// Over [0, 2s): 1s at 10 + 1s at 30 = mean 20.
	got := MeanRate(tr, 2*time.Second, 10*time.Millisecond)
	if math.Abs(got-20) > 0.5 {
		t.Fatalf("mean rate %v, want ~20", got)
	}
}

func TestStepRateAtNeverPanics(t *testing.T) {
	tr := NewStep([]Point{{At: time.Second, Rate: 5}})
	if err := quick.Check(func(ms uint32) bool {
		r := tr.RateAt(time.Duration(ms) * time.Millisecond)
		return r == 5
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
