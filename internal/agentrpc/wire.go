package agentrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// This file isolates the wire framing into pure encode/decode helpers shared
// by the client and server — and, because they take no sockets, directly
// fuzzable.
//
// Request stream (little endian), one frame per message:
//
//	decide: u32 count (1..maxStateDim) | count × f64 state
//	ping:   u32 0
//	hello:  u32 0xffffffff | u8 len | len × byte tenant name
//
// Response (always respSize bytes):
//
//	u8 status | f64 mu | f64 delta
//
// A decide is answered with statusOK and the decision, statusBusy when
// admission control shed the request, or statusErr when the policy failed
// (panic, non-finite output, server-side deadline). BUSY and ERR are *typed*
// responses: the stream stays in sync and the connection stays usable, the
// client just serves that one decision from its local fallback. A ping is
// answered with statusOK and zeros. A hello carries the connection's tenant
// label for per-tenant accounting and has no response.

// errOversizedFrame reports a request whose count exceeds maxStateDim; the
// server drops the connection on it rather than allocating attacker-chosen
// amounts of memory.
var errOversizedFrame = errors.New("agentrpc: request frame exceeds maxStateDim")

// Response status codes.
const (
	statusOK   byte = 0
	statusBusy byte = 1 // admission control shed the request
	statusErr  byte = 2 // policy panic, non-finite output, or serving deadline
)

// respSize is the fixed response frame length: status byte + two f64.
const respSize = 1 + 8 + 8

// helloMagic marks a tenant-hello frame. It deliberately decodes as an
// impossible state count so old decoders reject rather than misparse it.
const helloMagic = 0xffffffff

// maxTenantLen bounds hello names (they become metric labels).
const maxTenantLen = 255

// frameKind discriminates decoded request frames.
type frameKind uint8

const (
	frameDecide frameKind = iota
	framePing
	frameHello
)

// frame is one decoded request-stream message. state aliases the reader's
// scratch buffer and is valid until the following next call.
type frame struct {
	kind   frameKind
	state  []float64
	tenant string
}

// appendRequest appends the wire encoding of one decide frame to dst and
// returns the extended slice. An empty state encodes a ping.
func appendRequest(dst []byte, state []float64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(state)))
	for _, v := range state {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// appendHello appends the wire encoding of a tenant-hello frame to dst.
// Names longer than maxTenantLen are truncated.
func appendHello(dst []byte, tenant string) []byte {
	if len(tenant) > maxTenantLen {
		tenant = tenant[:maxTenantLen]
	}
	dst = binary.LittleEndian.AppendUint32(dst, helloMagic)
	dst = append(dst, byte(len(tenant)))
	return append(dst, tenant...)
}

// appendResponse appends the fixed-size response frame to dst.
func appendResponse(dst []byte, status byte, mu, delta float64) []byte {
	dst = append(dst, status)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(mu))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(delta))
}

// readResponse reads one response frame into buf and decodes it.
func readResponse(r io.Reader, buf *[respSize]byte) (status byte, mu, delta float64, err error) {
	if _, err = io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, 0, err
	}
	mu = math.Float64frombits(binary.LittleEndian.Uint64(buf[1:]))
	delta = math.Float64frombits(binary.LittleEndian.Uint64(buf[9:]))
	return buf[0], mu, delta, nil
}

// requestReader decodes request frames from a byte stream, reusing its
// scratch buffers across frames (the server keeps one per connection).
type requestReader struct {
	r    io.Reader
	hdr  [4]byte
	raw  []byte
	buf  []float64
	name []byte
}

func newRequestReader(r io.Reader) *requestReader {
	return &requestReader{r: r, raw: make([]byte, 0, 64*8), buf: make([]float64, 0, 64)}
}

// next reads one frame. The returned frame's state (and tenant backing
// bytes) are valid until the following call. Errors are io errors from the
// underlying reader or errOversizedFrame for a count above maxStateDim.
func (d *requestReader) next() (frame, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return frame{}, err
	}
	count := binary.LittleEndian.Uint32(d.hdr[:])
	switch {
	case count == 0:
		return frame{kind: framePing}, nil
	case count == helloMagic:
		var ln [1]byte
		if _, err := io.ReadFull(d.r, ln[:]); err != nil {
			return frame{}, err
		}
		if cap(d.name) < int(ln[0]) {
			d.name = make([]byte, ln[0])
		}
		d.name = d.name[:ln[0]]
		if _, err := io.ReadFull(d.r, d.name); err != nil {
			return frame{}, err
		}
		return frame{kind: frameHello, tenant: string(d.name)}, nil
	case count > maxStateDim:
		return frame{}, fmt.Errorf("%w: count %d", errOversizedFrame, count)
	}
	need := int(count) * 8
	if cap(d.raw) < need {
		d.raw = make([]byte, need)
	}
	d.raw = d.raw[:need]
	if _, err := io.ReadFull(d.r, d.raw); err != nil {
		return frame{}, err
	}
	d.buf = d.buf[:0]
	for i := 0; i < int(count); i++ {
		d.buf = append(d.buf, math.Float64frombits(binary.LittleEndian.Uint64(d.raw[i*8:])))
	}
	return frame{kind: frameDecide, state: d.buf}, nil
}
