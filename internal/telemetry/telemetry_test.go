package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "other help"); again != c {
		t.Fatal("Counter is not get-or-create")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %g, want 556.5", h.Sum())
	}
	// Bucket occupancy: bounds are inclusive upper limits, then +Inf.
	want := []int64{2, 1, 1, 1} // {0.5,1}, {5}, {50}, {500}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("count=%d sum=%g, want 8000/8000", h.Count(), h.Sum())
	}
}

func TestExpBuckets(t *testing.T) {
	bs := ExpBuckets(1e-3, 2, 5)
	if len(bs) != 5 {
		t.Fatalf("len = %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", bs)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "runs").Add(3)
	r.Gauge("vt_seconds", "virtual time").Set(1.5)
	r.GaugeFunc("live", "callback", func() float64 { return 42 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE runs_total counter\nruns_total 3\n",
		"# TYPE vt_seconds gauge\nvt_seconds 1.5\n",
		"live 42\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`, // cumulative
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 2.55\nlat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestGaugeFuncTakesOverPreRegisteredGauge: preRegister publishes plain
// gauges for the whole schema before subsystems attach; when the owning
// subsystem later registers the live callback under the same name, the
// exposition must show the callback's value exactly once — not a stale
// zero, and not a duplicate series.
func TestGaugeFuncTakesOverPreRegisteredGauge(t *testing.T) {
	r := NewRegistry()
	r.Gauge("rpc_server_decisions", "requests served")
	r.GaugeFunc("rpc_server_decisions", "requests served", func() float64 { return 827 })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "\nrpc_server_decisions "); n != 1 {
		t.Fatalf("gauge exposed %d times, want 1:\n%s", n, out)
	}
	if !strings.Contains(out, "rpc_server_decisions 827\n") {
		t.Fatalf("callback value shadowed by the pre-registered gauge:\n%s", out)
	}

	b.Reset()
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"rpc_server_decisions": 827`) {
		t.Fatalf("JSON exposition shadowed the callback:\n%s", b.String())
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "runs").Inc()
	r.Gauge("g", "").Set(7)
	r.Histogram("h", "", []float64{1}).Observe(0.5)

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if string(out["runs_total"]) != "1" {
		t.Errorf("runs_total = %s", out["runs_total"])
	}
	var hj struct {
		Count   int64   `json:"count"`
		Sum     float64 `json:"sum"`
		Buckets []int64 `json:"buckets"`
	}
	if err := json.Unmarshal(out["h"], &hj); err != nil {
		t.Fatal(err)
	}
	if hj.Count != 1 || hj.Sum != 0.5 || len(hj.Buckets) != 2 || hj.Buckets[0] != 1 {
		t.Errorf("histogram JSON = %+v", hj)
	}
}

func TestTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSink(&buf)
	tr := NewTracer(sink)

	sp := tr.Start("run:alpha", 0)
	sp.End(3*time.Second, Str("outcome", "ok"))
	tr.Event("sim", "drop", 250*time.Millisecond,
		Str("kind", "overflow"), I64("bytes", 1500),
		F64("bad", math.Inf(1)), F64("thr", 1e6), Dur("d", time.Millisecond))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Lines() != 2 {
		t.Fatalf("lines = %d, want 2", sink.Lines())
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var span map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("span line not JSON: %v\n%s", err, lines[0])
	}
	if span["t"] != "span" || span["name"] != "run:alpha" || span["outcome"] != "ok" {
		t.Errorf("span = %v", span)
	}
	if span["vt_ns"].(float64) != 3e9 {
		t.Errorf("vt_ns = %v, want 3e9", span["vt_ns"])
	}
	if span["wall_ns"].(float64) < 0 {
		t.Errorf("negative wall_ns: %v", span["wall_ns"])
	}

	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("event line not JSON: %v\n%s", err, lines[1])
	}
	if ev["t"] != "event" || ev["domain"] != "sim" || ev["name"] != "drop" {
		t.Errorf("event = %v", ev)
	}
	if ev["kind"] != "overflow" || ev["bytes"].(float64) != 1500 || ev["thr"].(float64) != 1e6 {
		t.Errorf("event fields = %v", ev)
	}
	if v, present := ev["bad"]; !present || v != nil {
		t.Errorf("non-finite float should expose as null, got %v (present=%v)", v, present)
	}
	if ev["vt_ns"].(float64) != 2.5e8 {
		t.Errorf("vt_ns = %v", ev["vt_ns"])
	}
	if ev["d"].(float64) != 1e6 {
		t.Errorf("Dur field = %v, want 1e6 ns", ev["d"])
	}
}

// TestNilSafety: the entire disabled surface must be callable on nils.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	var g *Gauge
	g.Set(1)
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("x", "", func() float64 { return 0 })
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	tr.Event("sim", "x", 0)
	tr.Start("x", 0).End(0)
	var s *Sink
	s.writeLine(nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var hub *Hub
	if hub.Enabled() {
		t.Fatal("nil hub must be disabled")
	}
	hub.Event("exp", "x", 0)
	hub.StartSpan("x", 0).End(0)
	if hub.Training() != nil {
		t.Fatal("nil hub must return a nil training observer")
	}
	hub.Training().EpochEnd(0, 0, 0, 0, 0, 0, 0)
	hub.Training().CheckpointSaved(0, 0)
	hub.ExportRPCServer(nil)
	if hub.RPCClientHook() != nil {
		t.Fatal("nil hub must return a nil RPC hook")
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	var d *DebugServer
	if d.Addr() != "" || d.Close() != nil {
		t.Fatal("nil debug server must no-op")
	}
}

// TestDisabledZeroAlloc pins the "provably zero hot-path cost" contract:
// every disabled-path operation an instrumented hot loop can hit must not
// allocate.
func TestDisabledZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var hub *Hub
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
		h.Observe(1)
	}); n != 0 {
		t.Fatalf("nil instruments allocate %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if hub.Enabled() {
			t.Fatal("unreachable")
		}
	}); n != 0 {
		t.Fatalf("nil hub check allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		hub.StartSpan("x", 0).End(0)
	}); n != 0 {
		t.Fatalf("inert span allocates %.1f/op", n)
	}
}

// TestEnabledEventZeroAlloc: the pooled line scratch keeps steady-state
// event emission allocation-free for fixed-kind fields.
func TestEnabledEventZeroAlloc(t *testing.T) {
	tr := NewTracer(NewSink(io.Discard))
	tr.Event("sim", "warm", 0, I64("x", 1)) // warm the pool
	if n := testing.AllocsPerRun(1000, func() {
		tr.Event("sim", "interval", time.Second, I64("sent", 10), F64("thr", 1e6))
	}); n > 0 {
		t.Fatalf("enabled event emission allocates %.1f/op", n)
	}
}

func TestRecordCoordinatorCounters(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	h, err := Setup(Options{TraceOut: tracePath})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	RecordCoordinator(h, 12, 5)
	RecordCoordinator(h, 3, 1) // counters accumulate across runs
	if got := h.Registry.Counter("sim_barrier_rounds_total", "").Value(); got != 15 {
		t.Fatalf("sim_barrier_rounds_total = %d, want 15", got)
	}
	if got := h.Registry.Counter("sim_fused_windows_total", "").Value(); got != 6 {
		t.Fatalf("sim_fused_windows_total = %d, want 6", got)
	}
	RecordCoordinator(nil, 1, 1) // disabled hub: must not panic
}

func TestSetupDisabled(t *testing.T) {
	h, err := Setup(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h != nil {
		t.Fatal("all-off Setup must return a nil hub")
	}
}

func TestSetupTraceAndDebug(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	h, err := Setup(Options{TraceOut: tracePath, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if !h.Enabled() {
		t.Fatal("hub should be enabled")
	}
	h.Event("exp", "hello", 0, Str("k", "v"))
	h.Registry.Counter("sim_packets_sent_total", "").Add(9)

	addr := h.DebugAddr()
	if addr == "" {
		t.Fatal("no debug address")
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	// preRegister guarantees all three domains are present even before the
	// corresponding subsystems run.
	for _, want := range []string{
		"sim_packets_sent_total 9",
		"train_epochs_total 0",
		"rpc_remote_decisions_total 0",
		"exp_runs_started_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var js map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &js); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if js["sim_packets_sent_total"].(float64) != 9 {
		t.Errorf("json sim_packets_sent_total = %v", js["sim_packets_sent_total"])
	}
	if !strings.Contains(get("/debug/vars"), "memstats") {
		t.Error("/debug/vars lacks memstats")
	}
	if !strings.Contains(get("/"), "/debug/pprof/") {
		t.Error("index page lacks endpoint listing")
	}

	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"hello"`) {
		t.Errorf("trace file missing event: %s", data)
	}
}
