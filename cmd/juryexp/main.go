// Command juryexp reproduces the paper's tables and figures by id and
// prints the corresponding rows. Run with -list to see every experiment.
//
// Examples:
//
//	juryexp -exp fig6                 # scaled-down fairness comparison
//	juryexp -exp fig6 -full           # the paper's full 60-run protocol
//	juryexp -exp fig7a                # Jury convergence, 50 Mbps panel
//	juryexp -exp tab3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

var experiments = []struct {
	id   string
	desc string
	run  func(full bool, seed uint64) error
}{
	{"tab1", "Table 1: training environment ranges", runTab1},
	{"tab2", "Table 2: training hyperparameters", runTab2},
	{"tab3", "Table 3: long/short flows and heterogeneous RTTs at scale", runTab3},
	{"fig1", "Fig. 1: Astraea fairness fails outside its training region", runFig1},
	{"fig4", "Fig. 4: signal phases vs. increasing sending rate", runFig4},
	{"fig5", "Fig. 5: throughput response to a +10% probe vs. occupancy", runFig5},
	{"fig6", "Fig. 6: average Jain index across random environments", runFig6},
	{"fig7", "Fig. 7: all eight convergence panels (parallel)", runFig7All},
	{"fig7a", "Fig. 7(a): 3 Jury flows, 50 Mbps / 30 ms", runFig7("a")},
	{"fig7b", "Fig. 7(b): 3 Jury flows, 350 Mbps / 30 ms", runFig7("b")},
	{"fig7c", "Fig. 7(c): 3 Jury flows, 350 Mbps / 150 ms", runFig7("c")},
	{"fig7d", "Fig. 7(d): 3 Jury flows, 350 Mbps / 150 ms / 0.2% loss", runFig7("d")},
	{"fig7e", "Fig. 7(e): Astraea, 350 Mbps / 30 ms", runFig7("e")},
	{"fig7f", "Fig. 7(f): Vivace, 350 Mbps / 150 ms", runFig7("f")},
	{"fig7g", "Fig. 7(g): BBR, 350 Mbps / 150 ms / 0.2% loss", runFig7("g")},
	{"fig7h", "Fig. 7(h): Orca, 350 Mbps / 150 ms / 0.2% loss", runFig7("h")},
	{"fig8", "Fig. 8: RTT fairness (5 Jury flows, 70-210 ms)", runFig8},
	{"fig9", "Fig. 9: friendliness vs. Cubic across RTTs", runFig9},
	{"fig10", "Fig. 10: utilization and queuing-delay sweeps", runFig10},
	{"fig11a", "Fig. 11(a): satellite link", runFig11a},
	{"fig11b", "Fig. 11(b): 10 Gbps link", runFig11b},
	{"fig12", "Fig. 12: LTE responsiveness", runFig12},
	{"fig13a", "Fig. 13(a): intra-continental emulated WAN", runFig13(true)},
	{"fig13b", "Fig. 13(b): inter-continental emulated WAN", runFig13(false)},
	{"fig14", "Fig. 14: CPU overhead per scheme", runFig14},
	{"ablation", "Ablations: post-processing / exploration / filtering removed", runAblation},
	{"multibtl", "Multi-bottleneck (parking lot) fairness (§5.1)", runMultiBottleneck},
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "store" {
		if err := storeMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "juryexp store:", err)
			os.Exit(1)
		}
		return
	}
	var (
		id     = flag.String("exp", "", "experiment id (see -list)")
		full   = flag.Bool("full", false, "run at the paper's full scale (slow on one CPU)")
		seed   = flag.Uint64("seed", 1, "random seed")
		list   = flag.Bool("list", false, "list experiments")
		shards = flag.Int("shards", 1, "max shards for space-parallel scenario execution (1 = sequential; results are shard-count independent)")

		storeDir   = flag.String("store", "", "record completed runs in a WAL-backed store at this directory")
		resume     = flag.Bool("resume", false, "serve runs already present in -store without re-simulating")
		storeFsync = flag.String("store-fsync", "interval", `store durability: "always", "interval", or "never"`)

		telemetryOn = flag.Bool("telemetry", false, "enable the telemetry hub (implied by -trace-out/-debug-addr)")
		traceOut    = flag.String("trace-out", "", `write JSONL spans/events to this path ("-" for stderr)`)
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /metrics.json, /debug/pprof, /debug/vars on this address")
		obsOn       = flag.Bool("obs", false, "attach the streaming fairness observer (live /fairness on -debug-addr)")
		obsWindow   = flag.Duration("obs-window", 500*time.Millisecond, "fairness snapshot cadence in virtual time")
		flightDir   = flag.String("flight-dir", "", "write flight-recorder JSONL dumps here on anomaly triggers (implies -obs)")
		compact     = flag.Bool("store-compact", false, "store records without per-flow series (tables fall back on precomputed late means and the stream summary)")
	)
	flag.Parse()
	hub, err := telemetry.Setup(telemetry.Options{Enabled: *telemetryOn, TraceOut: *traceOut, DebugAddr: *debugAddr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "juryexp:", err)
		os.Exit(1)
	}
	exp.Telemetry = hub
	defer hub.Close()
	exp.SetupObs(*obsOn, *obsWindow, *flightDir, hub)
	exp.DefaultShards = *shards
	exp.StoreCompact = *compact
	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "juryexp: -resume requires -store DIR")
		os.Exit(2)
	}
	if *storeDir != "" {
		pol, err := runstore.ParsePolicy(*storeFsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "juryexp:", err)
			os.Exit(2)
		}
		st, err := runstore.Open(runstore.Options{Dir: *storeDir, Fsync: pol, CompactEvery: 256})
		if err != nil {
			fmt.Fprintln(os.Stderr, "juryexp:", err)
			os.Exit(1)
		}
		if rep := st.Repair(); rep.Dirty() {
			fmt.Fprintf(os.Stderr, "store: repaired on open (wal: %q, snapshot: %q, %d bytes dropped)\n",
				rep.WALNote, rep.SnapshotNote, rep.DroppedTornBytes)
		}
		fmt.Fprintf(os.Stderr, "store: %d records at %s (resume=%v)\n", st.Len(), *storeDir, *resume)
		exp.AttachStore(st, *resume)
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "juryexp: store close:", err)
			}
		}()
	}
	if addr := hub.DebugAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/\n", addr)
	}
	if *list || *id == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-7s %s\n", e.id, e.desc)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}
	for _, e := range experiments {
		if e.id == *id {
			start := time.Now()
			if err := e.run(*full, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "juryexp:", err)
				os.Exit(1)
			}
			fmt.Printf("\n[%s completed in %v]\n", e.id, time.Since(start).Round(time.Millisecond))
			return
		}
	}
	fmt.Fprintf(os.Stderr, "juryexp: unknown experiment %q (use -list)\n", *id)
	os.Exit(2)
}

// storeMain implements `juryexp store <ls|verify|compact> DIR`: offline
// inspection and maintenance of a run store.
func storeMain(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: juryexp store <ls|verify|compact> DIR")
	}
	cmd, dir := args[0], args[1]
	switch cmd {
	case "ls":
		st, err := runstore.Open(runstore.Options{Dir: dir, ReadOnly: true})
		if err != nil {
			return err
		}
		defer st.Close()
		var table [][]string
		for _, r := range st.Records() {
			table = append(table, []string{
				r.Key.Short(), r.Scenario, strings.Join(r.Schemes, ","),
				fmt.Sprint(r.Seed), fmt.Sprintf("%016x", r.Digest), fmt.Sprint(r.Checked),
				time.Unix(0, r.AppendedAt).UTC().Format("2006-01-02T15:04:05Z"),
			})
		}
		fmt.Print(exp.FormatTable([]string{"key", "scenario", "schemes", "seed", "digest", "checked", "appended"}, table))
		fmt.Printf("%d records\n", st.Len())
		return nil
	case "verify":
		rep, err := runstore.Verify(dir)
		if err != nil {
			return err
		}
		describe := func(name string, f runstore.FileReport) {
			if !f.Present {
				fmt.Printf("%-9s absent\n", name)
				return
			}
			fmt.Printf("%-9s %d records, %d bytes, header ok=%v, torn=%d", name, f.Records, f.Bytes, f.HeaderOK, f.Torn)
			if f.Note != "" {
				fmt.Printf("  (%s)", f.Note)
			}
			fmt.Println()
		}
		describe("snapshot", rep.Snapshot)
		describe("wal", rep.WAL)
		if !rep.Clean() {
			return fmt.Errorf("store at %s is damaged (repairable: reopen it writable)", dir)
		}
		fmt.Println("clean")
		return nil
	case "compact":
		st, err := runstore.Open(runstore.Options{Dir: dir})
		if err != nil {
			return err
		}
		if err := st.Compact(); err != nil {
			st.Close()
			return err
		}
		fmt.Printf("compacted %d records into snapshot\n", st.Len())
		return st.Close()
	default:
		return fmt.Errorf("unknown store command %q (want ls, verify, or compact)", cmd)
	}
}

func runTab1(bool, uint64) error {
	fmt.Println("Table 1 — DRL training environment:")
	for _, r := range exp.Tab1Rows() {
		fmt.Println(" ", r)
	}
	return nil
}

func runTab2(bool, uint64) error {
	fmt.Println("Table 2 — training hyperparameters:")
	for _, r := range exp.Tab2Rows() {
		fmt.Println(" ", r)
	}
	return nil
}

func runTab3(full bool, seed uint64) error {
	o := exp.Tab3Options{Seed: seed}
	if full {
		o.Repeats = 20
	}
	rows1, err := exp.Tab3LongShort(o)
	if err != nil {
		return err
	}
	rows2, err := exp.Tab3HeteroRTT(o)
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range append(rows1, rows2...) {
		table = append(table, []string{r.Experiment, r.Class,
			fmt.Sprintf("%.1f", r.ThrMbps), fmt.Sprintf("%.2f", r.DelayRatio), fmt.Sprint(r.Flows)})
	}
	fmt.Print(exp.FormatTable([]string{"experiment", "class", "thr(Mbps)", "delayRatio", "flows"}, table))
	return nil
}

func runFig1(full bool, seed uint64) error {
	o := exp.Fig1Options{Seed: seed}
	if !full {
		o.Stagger, o.Lifetime = 20*time.Second, 60*time.Second
	}
	res, err := exp.Fig1AstraeaGeneralization(o)
	if err != nil {
		return err
	}
	fmt.Printf("Astraea time-averaged Jain index:\n  in training region  (100 Mbps): %.3f\n  unseen environment  (350 Mbps): %.3f\n",
		res.InDomainJain, res.OutOfDomainJain)
	return nil
}

func runFig4(bool, uint64) error {
	rows, err := exp.Fig4SignalPhases(exp.Fig4Options{})
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			exp.FmtMbps(r.SendRateBps), exp.FmtMbps(r.ThroughputBps),
			fmt.Sprintf("%.1f", float64(r.AvgRTT)/1e6), fmt.Sprintf("%.3f", r.LossRate),
		})
	}
	fmt.Print(exp.FormatTable([]string{"rate(Mbps)", "thr(Mbps)", "rtt(ms)", "loss"}, table))
	return nil
}

func runFig5(bool, uint64) error {
	rows, err := exp.Fig5OccupancyProbe(exp.Fig5Options{})
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%.2f", r.Share), fmt.Sprintf("%.4f", r.ThrChangeRatio),
			fmt.Sprintf("%.2f", r.EstimatedShare),
		})
	}
	fmt.Print(exp.FormatTable([]string{"share", "thrChange(+10% probe)", "Eq.5 estimate"}, table))
	return nil
}

func runFig6(full bool, seed uint64) error {
	o := exp.Fig6Options{Seed: seed}
	if full {
		o.Runs = 60
		o.Stagger = 60 * time.Second
		o.Lifetime = 180 * time.Second
	}
	rows, err := exp.Fig6JainIndex(o)
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.Scheme,
			fmt.Sprintf("%.3f", r.MeanJain), fmt.Sprintf("%.3f", r.P5), fmt.Sprintf("%.3f", r.P95),
			fmt.Sprint(r.Runs)})
	}
	fmt.Print(exp.FormatTable([]string{"scheme", "meanJain", "p5", "p95", "runs"}, table))
	return nil
}

func runFig7(panel string) func(bool, uint64) error {
	return func(full bool, seed uint64) error {
		var p exp.Fig7Panel
		for _, cand := range exp.Fig7Panels() {
			if cand.ID == panel {
				p = cand
			}
		}
		o := exp.Fig7Options{Seed: seed}
		if !full {
			o.Stagger, o.Lifetime = 20*time.Second, 60*time.Second
		}
		res, err := exp.Fig7Convergence(p, o)
		if err != nil {
			return err
		}
		fmt.Printf("panel %s: %s @ %s Mbps / %v RTT / %.1f%% loss — time-averaged Jain %.3f, utilization %.3f\n",
			p.ID, p.Scheme, exp.FmtMbps(p.Rate), p.RTT, p.Loss*100, res.Jain, res.Utilization)
		printSeries(res.Series)
		return nil
	}
}

func runFig7All(full bool, seed uint64) error {
	o := exp.Fig7Options{Seed: seed}
	if !full {
		o.Stagger, o.Lifetime = 20*time.Second, 60*time.Second
	}
	results, err := exp.Fig7AllPanels(o)
	if err != nil {
		return err
	}
	for _, res := range results {
		p := res.Panel
		fmt.Printf("panel %s: %s @ %s Mbps / %v RTT / %.1f%% loss — time-averaged Jain %.3f, utilization %.3f\n",
			p.ID, p.Scheme, exp.FmtMbps(p.Rate), p.RTT, p.Loss*100, res.Jain, res.Utilization)
	}
	return nil
}

func printSeries(series []exp.FlowSeriesRow) {
	byT := map[time.Duration]map[string]float64{}
	var order []time.Duration
	flows := map[string]bool{}
	for _, r := range series {
		if byT[r.T] == nil {
			byT[r.T] = map[string]float64{}
			order = append(order, r.T)
		}
		byT[r.T][r.Flow] = r.Mbps
		flows[r.Flow] = true
	}
	var names []string
	for f := range flows {
		names = append(names, f)
	}
	for _, t := range order {
		fmt.Printf("  t=%4ds", int(t.Seconds()))
		for _, f := range names {
			fmt.Printf("  %s=%7.1f", f, byT[t][f])
		}
		fmt.Println()
	}
}

func runFig8(full bool, seed uint64) error {
	o := exp.Fig8Options{Seed: seed}
	if !full {
		o.Stagger, o.Lifetime = 20*time.Second, 100*time.Second
	}
	res, err := exp.Fig8RTTFairness(o)
	if err != nil {
		return err
	}
	fmt.Printf("late shares (Mbps):")
	for _, s := range res.LateShares {
		fmt.Printf(" %.1f", s/1e6)
	}
	fmt.Printf("\nlate Jain: %.3f\navg RTTs (ms):", res.LateJain)
	for _, r := range res.AvgRTTms {
		fmt.Printf(" %.0f", r)
	}
	fmt.Println()
	return nil
}

func runFig9(full bool, seed uint64) error {
	o := exp.Fig9Options{Seed: seed}
	if !full {
		o.Lifetime = 60 * time.Second
		o.RTTs = []time.Duration{50 * time.Millisecond, 150 * time.Millisecond, 300 * time.Millisecond}
	}
	rows, err := exp.Fig9Friendliness(o)
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.Scheme, r.RTT.String(), fmt.Sprintf("%.3f", r.Ratio)})
	}
	fmt.Print(exp.FormatTable([]string{"scheme", "rtt", "thr/cubic"}, table))
	return nil
}

func runFig10(full bool, seed uint64) error {
	o := exp.Fig10Options{Seed: seed}
	if full {
		o.Lifetime = 120 * time.Second
		o.Bandwidths = []float64{10e6, 50e6, 100e6, 200e6, 300e6, 400e6, 500e6, 600e6}
		o.Delays = []time.Duration{15, 30, 45, 60, 80, 100, 120}
		for i := range o.Delays {
			o.Delays[i] *= time.Millisecond
		}
	}
	rows, err := exp.Fig10PerformanceSweeps(o)
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.Scheme, r.Param, fmt.Sprintf("%.3g", r.X),
			fmt.Sprintf("%.3f", r.Utilization), fmt.Sprintf("%.1f", r.QueuingDelay)})
	}
	fmt.Print(exp.FormatTable([]string{"scheme", "param", "x", "utilization", "queue(ms)"}, table))
	return nil
}

func printPareto(rows []exp.Fig11Row) {
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.Scheme, exp.FmtMbps(r.ThroughputBps),
			fmt.Sprintf("%.3f", r.NormalizedDelay)})
	}
	fmt.Print(exp.FormatTable([]string{"scheme", "thr(Mbps)", "normDelay"}, table))
}

func runFig11a(full bool, seed uint64) error {
	rows, err := exp.Fig11Satellite(exp.Fig11Options{Seed: seed})
	if err != nil {
		return err
	}
	printPareto(rows)
	return nil
}

func runFig11b(full bool, seed uint64) error {
	rows, err := exp.Fig11HighSpeed(exp.Fig11Options{Seed: seed})
	if err != nil {
		return err
	}
	printPareto(rows)
	return nil
}

func runFig12(full bool, seed uint64) error {
	o := exp.Fig12Options{Seed: seed}
	rows, err := exp.Fig12LTEResponsiveness(o)
	if err != nil {
		return err
	}
	schemes := map[string]bool{}
	for _, r := range rows {
		if r.Scheme != "capacity" {
			schemes[r.Scheme] = true
		}
	}
	var table [][]string
	for s := range schemes {
		table = append(table, []string{s, fmt.Sprintf("%.3f", exp.Fig12Tracking(rows, s))})
	}
	fmt.Print(exp.FormatTable([]string{"scheme", "capacity tracking"}, table))
	return nil
}

func runFig13(intra bool) func(bool, uint64) error {
	return func(full bool, seed uint64) error {
		rows, err := exp.Fig13WAN(intra, exp.Fig13Options{Seed: seed})
		if err != nil {
			return err
		}
		printPareto(rows)
		return nil
	}
}

func runAblation(full bool, seed uint64) error {
	o := exp.AblationOptions{Seed: seed}
	if full {
		o.Stagger, o.Lifetime = 60*time.Second, 180*time.Second
	}
	rows, err := exp.RunAblation(o)
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.Variant, fmt.Sprintf("%.3f", r.Jain),
			fmt.Sprintf("%.3f", r.Utilization), fmt.Sprintf("%.1f", r.QueueMS)})
	}
	fmt.Print(exp.FormatTable([]string{"variant", "jain", "utilization", "queue(ms)"}, table))
	return nil
}

func runMultiBottleneck(full bool, seed uint64) error {
	res, err := exp.RunMultiBottleneck(exp.MultiBottleneckOptions{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("long (both links): %.1f Mbps\n", res.LongMbps)
	fmt.Printf("cross link1: %.1f Mbps (Jain %.3f)\n", res.Cross1Mbps, res.Link1Jain)
	fmt.Printf("cross link2: %.1f Mbps (Jain %.3f)\n", res.Cross2Mbps, res.Link2Jain)
	return nil
}

func runFig14(full bool, seed uint64) error {
	rows, err := exp.Fig14CPUOverhead(exp.Fig14Options{Seed: seed})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", strings.TrimSpace(r.String()))
	}
	return nil
}
