package core

import (
	"math"
	"time"

	"repro/internal/cc"
)

// This file implements the multi-objective extension the paper points to in
// §3.3: "MOCC [24] provides a multi-objective DRL-based CC framework that
// can adapt to different preferences simultaneously without retraining,
// which can be adopted in our method." Following MOCC, a preference vector
// weights the throughput/delay/loss objectives; the preference conditions
// both the reward (for training) and, for the deterministic reference
// policy, the response gains (for deployment without retraining). Jury's
// fairness is unaffected either way: the occupancy post-processing runs
// outside the preference-conditioned part.

// Preference weights the three CC objectives. Weights are relative; use
// Normalize to scale them to sum 1.
type Preference struct {
	Throughput float64
	Delay      float64
	Loss       float64
}

// DefaultPreference is the uniform preference, under which MOReward reduces
// exactly to the Eq. 9 reward.
func DefaultPreference() Preference {
	return Preference{Throughput: 1.0 / 3, Delay: 1.0 / 3, Loss: 1.0 / 3}
}

// Normalize returns the preference scaled to sum to 1. A non-positive sum
// yields the uniform preference.
func (p Preference) Normalize() Preference {
	t, d, l := math.Max(p.Throughput, 0), math.Max(p.Delay, 0), math.Max(p.Loss, 0)
	sum := t + d + l
	if sum <= 0 {
		return DefaultPreference()
	}
	return Preference{Throughput: t / sum, Delay: d / sum, Loss: l / sum}
}

// MOReward is the preference-weighted generalization of Eq. 9:
//
//	R = 3w_T·ratio^ζ − ratio·(3w_D·β1·(RTT−RTT_min) − 3w_L·β2·(1−L)/(1−L_min))
//
// The factor 3 makes the uniform preference reproduce Eq. 9 exactly, so a
// preference-conditioned agent trained with MOReward subsumes the paper's
// single-objective agent.
func MOReward(cfg Config, pref Preference, ratioBW float64, rtt, rttMin time.Duration, loss, lossMin float64) float64 {
	p := pref.Normalize()
	if ratioBW < 0 {
		ratioBW = 0
	}
	if ratioBW > 1 {
		ratioBW = 1
	}
	drttUS := float64(rtt-rttMin) / float64(time.Microsecond)
	if drttUS < 0 {
		drttUS = 0
	}
	lossTerm := (1 - clampLoss(loss)) / (1 - clampLoss(lossMin))
	return 3*p.Throughput*math.Pow(ratioBW, cfg.Zeta) -
		ratioBW*(3*p.Delay*cfg.Beta1*drttUS-3*p.Loss*cfg.Beta2*lossTerm)
}

// NewPreferencePolicy returns a reference policy whose gains realize the
// given preference, the deployment-side counterpart of MOReward for the
// non-learned policy:
//
//   - the delay weight scales the ΔRTT response (and shrinks its dead band),
//     so delay-heavy preferences back off earlier and harder;
//   - the loss weight scales the loss response;
//   - the throughput weight scales the probe magnitude — with ProbeGain and
//     Delta kept equal so the μ=δ hold-at-fair-share calibration (and hence
//     the fairness guarantee) is preserved for every preference.
func NewPreferencePolicy(pref Preference) *ReferencePolicy {
	p := pref.Normalize()
	base := NewReferencePolicy()
	wT, wD, wL := 3*p.Throughput, 3*p.Delay, 3*p.Loss

	probe := cc.Clamp(base.ProbeGain*math.Sqrt(wT), 0.15, 0.9)
	return &ReferencePolicy{
		ProbeGain: probe,
		Delta:     probe, // μ=δ calibration: fairness is preference-independent
		RTTGain:   base.RTTGain * wD,
		RTTEps:    cc.Clamp(base.RTTEps/math.Max(wD, 0.25), 0.005, 0.08),
		LossGain:  base.LossGain * wL,
	}
}

// NewWithPreference builds a Jury controller realizing the preference.
func NewWithPreference(cfg Config, pref Preference) *Jury {
	return New(cfg, NewPreferencePolicy(pref))
}
