package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves live debug endpoints while a run is in flight:
//
//	/metrics       — the registry in Prometheus text format
//	/metrics.json  — the registry as JSON
//	/debug/vars    — expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  — CPU/heap/goroutine/block profiles (net/http/pprof)
//
// It binds synchronously (so the caller learns the ephemeral port) and
// serves in a background goroutine.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// ServeDebug starts a debug server on addr ("127.0.0.1:0" for an ephemeral
// port) exposing reg.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "jury debug endpoint\n\n"+
			"  /metrics          Prometheus text exposition\n"+
			"  /metrics.json     JSON exposition\n"+
			"  /debug/vars       expvar\n"+
			"  /debug/pprof/     pprof profiles (profile?seconds=N for CPU)\n"+
			"  /fairness         latest streaming fairness snapshot (when obs is attached)\n"+
			"  /fairness/stream  fairness snapshots as server-sent events\n")
	})
	d := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		mux: mux,
	}
	go d.srv.Serve(ln)
	return d, nil
}

// Handle mounts an extra handler on the debug mux — the seam higher layers
// (the obs fairness surfaces) use to publish live endpoints without the
// telemetry package importing them. Safe before any request is served;
// panics on a duplicate pattern like http.ServeMux does.
func (d *DebugServer) Handle(pattern string, h http.Handler) {
	if d == nil {
		return
	}
	d.mux.Handle(pattern, h)
}

// Addr reports the bound address (host:port).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close stops the server.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
