package exp

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/traces"
)

// Fig10Row is one point of the performance sweeps: a scheme's single-flow
// link utilization and mean queuing delay at one parameter setting.
type Fig10Row struct {
	Scheme       string
	Param        string  // "bandwidth", "delay", "loss", "buffer"
	X            float64 // Mbps, ms, loss fraction, or BDP multiple
	Utilization  float64
	QueuingDelay float64 // ms
}

// Fig10Options scales the sweeps. The paper sweeps 10-600 Mbps, 15-120 ms
// one-way delay, 0-1.5% loss, and 0.2-16x BDP buffers; zero value runs the
// same ranges with fewer points and shorter flows.
type Fig10Options struct {
	Schemes  []string
	Lifetime time.Duration
	Seed     uint64

	Bandwidths []float64       // bits/second
	Delays     []time.Duration // one-way
	Losses     []float64
	BufferBDPs []float64
}

func (o *Fig10Options) defaults() {
	if o.Schemes == nil {
		o.Schemes = []string{"jury", "astraea", "orca", "aurora", "vivace", "bbr", "cubic", "vegas"}
	}
	if o.Lifetime == 0 {
		o.Lifetime = 40 * time.Second
	}
	if o.Bandwidths == nil {
		o.Bandwidths = []float64{10e6, 100e6, 300e6, 600e6}
	}
	if o.Delays == nil {
		o.Delays = []time.Duration{15 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond, 120 * time.Millisecond}
	}
	if o.Losses == nil {
		o.Losses = []float64{0, 0.002, 0.005, 0.01, 0.015}
	}
	if o.BufferBDPs == nil {
		o.BufferBDPs = []float64{0.2, 0.5, 1, 2, 4, 8, 16}
	}
}

// baseline parameters held constant while one dimension sweeps.
const (
	fig10BaseRate = 100e6
	fig10BaseOWD  = 15 * time.Millisecond
	fig10BaseBDP  = 2.0
)

// Fig10PerformanceSweeps runs all four single-flow sweeps for each scheme.
func Fig10PerformanceSweeps(o Fig10Options) ([]Fig10Row, error) {
	o.defaults()
	var jobs []Scenario
	var rows []Fig10Row
	add := func(scheme, param string, x float64, rate float64, owd time.Duration, loss, bufBDP float64) {
		s := Scenario{
			Name:        fmt.Sprintf("fig10-%s-%s-%v", scheme, param, x),
			Rate:        rate,
			OneWayDelay: owd,
			LossRate:    loss,
			Seed:        o.Seed + hash(scheme+param) + uint64(x*1000),
			Horizon:     o.Lifetime,
			Flows:       []FlowSpec{{Scheme: scheme}},
		}
		s.BufferBytes = s.BufferBDP(bufBDP)
		if rate >= 500e6 {
			s.PacketSize = 6000 // bound event counts on fast links
		}
		jobs = append(jobs, s)
		rows = append(rows, Fig10Row{Scheme: scheme, Param: param, X: x})
	}
	for _, scheme := range o.Schemes {
		for _, bw := range o.Bandwidths {
			add(scheme, "bandwidth", bw/1e6, bw, fig10BaseOWD, 0, fig10BaseBDP)
		}
		for _, d := range o.Delays {
			add(scheme, "delay", float64(d)/1e6, fig10BaseRate, d, 0, fig10BaseBDP)
		}
		for _, l := range o.Losses {
			add(scheme, "loss", l, fig10BaseRate, fig10BaseOWD, l, fig10BaseBDP)
		}
		for _, b := range o.BufferBDPs {
			add(scheme, "buffer", b, fig10BaseRate, fig10BaseOWD, 0, b)
		}
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		rows[i].Utilization = res.Utilization
		rows[i].QueuingDelay = metrics.MeanQueuingDelayMS(res.FlowSummaries[0], o.Lifetime/2, o.Lifetime)
	}
	return rows, nil
}

// Fig11Row is one scheme's outcome on a challenging link.
type Fig11Row struct {
	Scheme        string
	ThroughputBps float64
	// NormalizedDelay is mean one-way delay / base one-way delay (the
	// paper's x-axis); 1.0 means no inflation.
	NormalizedDelay float64
}

// Fig11Options selects the challenging-conditions runs.
type Fig11Options struct {
	Schemes  []string
	Lifetime time.Duration
	Seed     uint64
}

func (o *Fig11Options) defaults(schemes []string) {
	if o.Schemes == nil {
		o.Schemes = schemes
	}
	if o.Lifetime == 0 {
		o.Lifetime = 60 * time.Second
	}
}

// runPareto runs one flow per scheme over the given link and reports the
// throughput/latency Pareto points.
func runPareto(o Fig11Options, rate float64, owd time.Duration, loss float64, bufBDP float64, pktSize int) ([]Fig11Row, error) {
	jobs := make([]Scenario, 0, len(o.Schemes))
	for _, scheme := range o.Schemes {
		s := Scenario{
			Name:        fmt.Sprintf("pareto-%s", scheme),
			Rate:        rate,
			OneWayDelay: owd,
			LossRate:    loss,
			PacketSize:  pktSize,
			Seed:        o.Seed + hash(scheme),
			Horizon:     o.Lifetime,
			Flows:       []FlowSpec{{Scheme: scheme}},
		}
		s.BufferBytes = s.BufferBDP(bufBDP)
		jobs = append(jobs, s)
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig11Row, 0, len(results))
	for i, res := range results {
		rows = append(rows, paretoRow(o.Schemes[i], res, o.Lifetime))
	}
	return rows, nil
}

// paretoRow reduces one single-flow run to its throughput/latency point.
func paretoRow(scheme string, res *RunResult, lifetime time.Duration) Fig11Row {
	f := res.FlowSummaries[0]
	thr := metrics.MeanThroughput(f, lifetime/3, lifetime)
	rtt := metrics.MeanRTT(f, lifetime/3, lifetime)
	norm := 1.0
	if base := f.BaseRTT(); base > 0 && rtt > 0 {
		norm = float64(rtt) / float64(base)
	}
	return Fig11Row{Scheme: scheme, ThroughputBps: thr, NormalizedDelay: norm}
}

// Fig11Satellite reproduces Fig. 11(a): 42 Mbps, 800 ms RTT, 0.74% loss.
func Fig11Satellite(o Fig11Options) ([]Fig11Row, error) {
	o.defaults([]string{"jury", "astraea", "orca", "aurora", "vivace", "bbr", "cubic", "vegas"})
	return runPareto(o, 42e6, 400*time.Millisecond, 0.0074, 1, 0)
}

// Fig11HighSpeed reproduces Fig. 11(b): a 10 Gbps / 15 ms link (MSS scaled
// to bound event counts; see DESIGN.md).
func Fig11HighSpeed(o Fig11Options) ([]Fig11Row, error) {
	o.defaults([]string{"jury", "astraea", "vivace", "bbr", "cubic", "vegas"})
	if o.Lifetime == 60*time.Second {
		o.Lifetime = 30 * time.Second
	}
	return runPareto(o, 10e9, 7500*time.Microsecond, 0, 2, 60000)
}

// Fig12Row is one sample of the LTE responsiveness trace.
type Fig12Row struct {
	T           time.Duration
	Scheme      string // "capacity" rows carry the trace itself
	SendRateBps float64
}

// Fig12Options parameterizes the LTE responsiveness study.
type Fig12Options struct {
	Schemes  []string
	Lifetime time.Duration
	Seed     uint64
}

func (o *Fig12Options) defaults() {
	if o.Schemes == nil {
		o.Schemes = []string{"jury", "astraea", "orca", "aurora", "vivace"}
	}
	if o.Lifetime == 0 {
		o.Lifetime = 60 * time.Second
	}
}

// Fig12LTEResponsiveness runs each scheme over the synthetic LTE trace and
// records its sending rate against the capacity.
func Fig12LTEResponsiveness(o Fig12Options) ([]Fig12Row, error) {
	o.defaults()
	cfg := traces.DefaultLTE(o.Seed + 99)
	tr, err := traces.SynthesizeLTE(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Fig12Row
	for t := time.Duration(0); t < o.Lifetime; t += time.Second {
		rows = append(rows, Fig12Row{T: t, Scheme: "capacity", SendRateBps: tr.RateAt(t)})
	}
	jobs := make([]Scenario, 0, len(o.Schemes))
	for _, scheme := range o.Schemes {
		jobs = append(jobs, Scenario{
			Name:        "fig12-" + scheme,
			Trace:       tr,
			Rate:        cfg.Mean,
			OneWayDelay: 15 * time.Millisecond,
			BufferBytes: int(cfg.Mean / 8 * 0.5), // generous cellular buffer
			Seed:        o.Seed + hash(scheme),
			Horizon:     o.Lifetime,
			Flows:       []FlowSpec{{Scheme: scheme}},
		})
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		scheme := o.Schemes[i]
		var acc float64
		var n int
		next := time.Second
		for _, p := range res.FlowSummaries[0].Series() {
			acc += p.SendRateBps
			n++
			if p.T >= next {
				rows = append(rows, Fig12Row{T: next, Scheme: scheme, SendRateBps: acc / float64(n)})
				acc, n = 0, 0
				next += time.Second
			}
		}
	}
	return rows, nil
}

// Fig12Tracking summarizes responsiveness as the mean utilization of the
// time-varying capacity (1.0 = perfectly tracked, never exceeded).
func Fig12Tracking(rows []Fig12Row, scheme string) float64 {
	caps := map[time.Duration]float64{}
	for _, r := range rows {
		if r.Scheme == "capacity" {
			caps[r.T] = r.SendRateBps
		}
	}
	var sum float64
	var n int
	for _, r := range rows {
		if r.Scheme != scheme {
			continue
		}
		if c, ok := caps[r.T]; ok && c > 0 {
			u := r.SendRateBps / c
			if u > 1 {
				u = 1
			}
			sum += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fig13Options selects the emulated "real-world WAN" runs.
type Fig13Options struct {
	Schemes  []string
	Lifetime time.Duration
	Seed     uint64
}

func (o *Fig13Options) defaults() {
	if o.Schemes == nil {
		o.Schemes = []string{"jury", "astraea", "orca", "aurora", "vivace", "bbr", "cubic", "vegas"}
	}
	if o.Lifetime == 0 {
		o.Lifetime = 30 * time.Second
	}
}

// Fig13WAN emulates the AWS paths of Fig. 13 (see DESIGN.md substitutions):
// intra-continental ≈ 1.4 Gbps with ~35 ms RTT, inter-continental ≈
// 1.2 Gbps with ~220 ms RTT, both with ±15% capacity jitter standing in for
// cross traffic.
func Fig13WAN(intra bool, o Fig13Options) ([]Fig11Row, error) {
	o.defaults()
	rate, owd := 1.4e9, 17500*time.Microsecond
	if !intra {
		rate, owd = 1.2e9, 110*time.Millisecond
	}
	jobs := make([]Scenario, 0, len(o.Schemes))
	for _, scheme := range o.Schemes {
		s := Scenario{
			Name:        fmt.Sprintf("fig13-%s", scheme),
			Trace:       &traces.Jittered{Base: traces.Constant(rate), Period: 500 * time.Millisecond, Amplitude: 0.15, Seed: o.Seed + 7},
			Rate:        rate,
			OneWayDelay: owd,
			PacketSize:  9000,
			Seed:        o.Seed + hash(scheme),
			Horizon:     o.Lifetime,
			Flows:       []FlowSpec{{Scheme: scheme}},
		}
		s.BufferBytes = s.BufferBDP(1.5)
		jobs = append(jobs, s)
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig11Row, 0, len(results))
	for i, res := range results {
		rows = append(rows, paretoRow(o.Schemes[i], res, o.Lifetime))
	}
	return rows, nil
}
