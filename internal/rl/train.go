package rl

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/simcore"
)

// TrainObserver receives training-loop telemetry. All methods are called
// synchronously from the training goroutine; implementations must be cheap
// (internal/telemetry's TrainingObserver satisfies this interface). A nil
// Observer field disables the calls entirely.
type TrainObserver interface {
	// EpochEnd fires after each collection/update round with the epoch's
	// statistics and the wall time of its two phases.
	EpochEnd(epoch int, meanReward, tdErr float64, replayLen int, skippedUpdates int64, collectDur, updateDur time.Duration)
	// CheckpointSaved fires after each atomic checkpoint write.
	CheckpointSaved(epoch int, dur time.Duration)
}

// TrainConfig drives the distributed training loop of §4: several parallel
// actors collect experience against independent environments while a single
// learner performs batched TD3 updates between collection rounds.
type TrainConfig struct {
	Agent *TD3
	// EnvFactory builds an independent environment for actor i. Called once
	// per actor; environments persist across epochs (they re-Reset).
	EnvFactory func(actor int) Env

	Actors          int     // parallel experience collectors (paper: 8)
	Epochs          int     // collection/update rounds
	StepsPerActor   int     // env steps per actor per epoch
	UpdatesPerEpoch int     // TD3 updates per epoch
	BufferSize      int     // replay capacity
	WarmupEpochs    int     // epochs with uniform-random actions
	NoiseStd        float64 // exploration noise at epoch 0
	NoiseDecay      float64 // multiplicative decay per epoch
	Seed            uint64

	// Progress, if non-nil, is called after each epoch with the mean
	// per-step reward of the epoch's fresh experience and the mean TD error.
	Progress func(epoch int, meanReward, tdErr float64)

	// Observer, if non-nil, receives structured training telemetry
	// (per-epoch statistics, phase timings, checkpoint latency).
	Observer TrainObserver

	// CheckpointPath, if non-empty, makes Train write an atomic checkpoint
	// (temp file + rename) every CheckpointEvery epochs, so a killed run
	// loses at most CheckpointEvery epochs of work.
	CheckpointPath  string
	CheckpointEvery int // default 1
	// Resume loads CheckpointPath (if it exists) before training and
	// continues from the recorded epoch. The replay buffer and optimizer
	// moments are rebuilt, not restored; see Checkpoint.
	Resume bool
}

// TrainResult summarizes a training run.
type TrainResult struct {
	EpochRewards []float64 // mean per-step reward per epoch
	FinalTDErr   float64
}

// Train runs the collection/update loop and returns per-epoch statistics.
func Train(cfg TrainConfig) (*TrainResult, error) {
	if cfg.Agent == nil || cfg.EnvFactory == nil {
		return nil, fmt.Errorf("rl: Train needs an agent and an env factory")
	}
	if cfg.Actors <= 0 {
		cfg.Actors = 8
	}
	if cfg.StepsPerActor <= 0 {
		cfg.StepsPerActor = 256
	}
	if cfg.UpdatesPerEpoch <= 0 {
		cfg.UpdatesPerEpoch = 64
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 1 << 17
	}
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.3
	}
	if cfg.NoiseDecay == 0 {
		cfg.NoiseDecay = 0.995
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}

	startEpoch := 0
	noise := cfg.NoiseStd
	res := &TrainResult{}
	if cfg.Resume && cfg.CheckpointPath != "" {
		ck, err := LoadCheckpoint(cfg.CheckpointPath)
		switch {
		case err == nil:
			if err := cfg.Agent.Restore(ck); err != nil {
				return nil, err
			}
			startEpoch = ck.Epoch
			noise = ck.Noise
			res.EpochRewards = append(res.EpochRewards, ck.EpochRewards...)
		case os.IsNotExist(err):
			// First run: nothing to resume from.
		default:
			return nil, fmt.Errorf("rl: resume: %w", err)
		}
	}

	buf := NewReplayBuffer(cfg.BufferSize)
	envs := make([]Env, cfg.Actors)
	states := make([][]float64, cfg.Actors)
	for i := range envs {
		envs[i] = cfg.EnvFactory(i)
		states[i] = envs[i].Reset()
	}
	actionDim := cfg.Agent.cfg.ActionDim

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		// Snapshot the policy so collectors can run concurrently with no
		// locking; each collector gets its own RNG stream.
		policy := cfg.Agent.Actor.Clone()
		warmup := epoch < cfg.WarmupEpochs

		var collectStart time.Time
		if cfg.Observer != nil {
			collectStart = time.Now()
		}

		type chunk struct {
			transitions []Transition
			rewardSum   float64
			steps       int
			endState    []float64
		}
		chunks := make([]chunk, cfg.Actors)
		var wg sync.WaitGroup
		for ai := 0; ai < cfg.Actors; ai++ {
			wg.Add(1)
			go func(ai int) {
				defer wg.Done()
				rng := simcore.NewRNG(cfg.Seed ^ uint64(epoch)*0x9e3779b97f4a7c15 ^ uint64(ai)<<32)
				c := &chunks[ai]
				var p *nn.MLP
				if !warmup {
					p = policy
				}
				c.transitions, c.rewardSum, c.endState =
					collect(envs[ai], states[ai], p, actionDim, cfg.StepsPerActor, noise, rng)
				c.steps = cfg.StepsPerActor
			}(ai)
		}
		wg.Wait()

		var rewardSum float64
		var steps int
		for ai := range chunks {
			for _, tr := range chunks[ai].transitions {
				buf.Add(tr)
			}
			rewardSum += chunks[ai].rewardSum
			steps += chunks[ai].steps
			states[ai] = chunks[ai].endState
		}

		var collectDur time.Duration
		var updateStart time.Time
		if cfg.Observer != nil {
			updateStart = time.Now()
			collectDur = updateStart.Sub(collectStart)
		}
		var tdErr float64
		for u := 0; u < cfg.UpdatesPerEpoch; u++ {
			tdErr = cfg.Agent.Update(buf)
		}
		meanReward := rewardSum / float64(steps)
		res.EpochRewards = append(res.EpochRewards, meanReward)
		res.FinalTDErr = tdErr
		if cfg.Observer != nil {
			cfg.Observer.EpochEnd(epoch, meanReward, tdErr, buf.Len(),
				cfg.Agent.SkippedUpdates(), collectDur, time.Since(updateStart))
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, meanReward, tdErr)
		}
		noise *= cfg.NoiseDecay

		if cfg.CheckpointPath != "" && ((epoch+1)%cfg.CheckpointEvery == 0 || epoch+1 == cfg.Epochs) {
			ck := cfg.Agent.snapshot()
			ck.Epoch = epoch + 1
			ck.Noise = noise
			ck.EpochRewards = res.EpochRewards
			ckStart := time.Now()
			if err := SaveCheckpoint(cfg.CheckpointPath, ck); err != nil {
				return nil, err
			}
			if cfg.Observer != nil {
				cfg.Observer.CheckpointSaved(epoch+1, time.Since(ckStart))
			}
		}
	}
	return res, nil
}

// collect runs one actor's experience-gathering loop: steps env interactions
// driven by the policy snapshot (nil = uniform-random warmup actions).
// Observations are copied the moment the env hands them over — environments
// are free to reuse one observation buffer across Step/Reset calls (Step
// may clobber the slice it returned last time mid-call), and replay
// transitions outlive this collection round by many epochs.
func collect(env Env, state []float64, policy *nn.MLP, actionDim, steps int, noise float64, rng *simcore.RNG) (trs []Transition, rewardSum float64, endState []float64) {
	trs = make([]Transition, 0, steps)
	state = cloneFloats(state)
	for s := 0; s < steps; s++ {
		var action []float64
		if policy == nil {
			action = make([]float64, actionDim)
			for i := range action {
				action[i] = rng.Range(-1, 1)
			}
		} else {
			action = forwardWithNoise(policy, state, noise, rng)
		}
		next, reward, done := env.Step(action)
		next = cloneFloats(next)
		trs = append(trs, Transition{
			State: state, Action: action, Reward: reward,
			NextState: next, Done: done,
		})
		rewardSum += reward
		if done {
			state = cloneFloats(env.Reset())
		} else {
			// next is already collect-owned; sharing it with the stored
			// NextState is safe because transitions are read-only.
			state = next
		}
	}
	return trs, rewardSum, state
}

func cloneFloats(v []float64) []float64 {
	return append([]float64(nil), v...)
}

// forwardWithNoise evaluates a policy snapshot with exploration noise using
// the collector's own RNG (the shared agent RNG is not goroutine-safe).
func forwardWithNoise(policy *nn.MLP, state []float64, noiseStd float64, rng *simcore.RNG) []float64 {
	a := policy.Forward(state)
	for i := range a {
		if noiseStd > 0 {
			a[i] += rng.Norm(0, noiseStd)
		}
		a[i] = clip(a[i], -1, 1)
	}
	return a
}
