package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// The flight recorder is the black-box layer of the observatory: every shard
// keeps a bounded ring of its most recent noteworthy simulation events
// (interval feedback, queue drops, injected faults, invariant violations),
// and a trigger — simcheck violation, degraded-decision increment, fault
// burst, or panic — freezes the rings and dumps their merged, time-ordered
// contents as JSONL. A million-flow run cannot be traced end to end; the
// last few thousand events per shard before the trigger usually can explain
// it.

// Flight-entry kinds. The A..D payload slots are kind-specific:
//
//	kind       A               B                C            D
//	interval   thr (bps)       avg RTT (s)      lost pkts    cwnd
//	drop       bytes           1 if random      —            —
//	fault      bytes           fault kind code  —            —
//	violation  —               —                —            —
//	snapshot   window Jain     cum Jain         samples      —
const (
	flightInterval uint8 = iota
	flightDrop
	flightFault
	flightViolation
	flightSnapshot
)

var flightKindNames = [...]string{"interval", "drop", "fault", "violation", "snapshot"}

// FlightEntry is one ring slot. Fixed-size fields plus one string reference:
// writing an entry never allocates (flow names are interned by netsim).
type FlightEntry struct {
	VT    int64 // virtual time, nanoseconds
	Kind  uint8
	Shard uint16
	Flow  string // "" for link- or run-scoped entries
	Rule  string // violation rule, "" otherwise
	A     float64
	B     float64
	C     float64
	D     float64
}

// flightRing is one shard's ring. The mutex is uncontended in steady state —
// a shard's events execute on one goroutine — and only sees cross-goroutine
// traffic during a dump.
type flightRing struct {
	mu     sync.Mutex
	e      []FlightEntry
	writes uint64
	_      [24]byte // keep neighbouring rings off one cache line
}

func (r *flightRing) record(e FlightEntry) {
	r.mu.Lock()
	r.e[r.writes%uint64(len(r.e))] = e
	r.writes++
	r.mu.Unlock()
}

// snapshotInto appends the ring's entries, oldest first, to dst.
func (r *flightRing) snapshotInto(dst []FlightEntry) []FlightEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.writes
	size := uint64(len(r.e))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	for i := start; i < n; i++ {
		dst = append(dst, r.e[i%size])
	}
	return dst
}

// Recorder is the per-run flight recorder: one ring per shard, dumped as
// JSONL into dir on trigger. A nil Recorder no-ops everywhere.
type Recorder struct {
	rings []flightRing
	dir   string
	seq   atomic.Int32
	max   int32
}

func newRecorder(shards, size int, dir string, maxDumps int) *Recorder {
	if size <= 0 {
		size = 2048
	}
	if maxDumps <= 0 {
		maxDumps = 8
	}
	r := &Recorder{rings: make([]flightRing, shards), dir: dir, max: int32(maxDumps)}
	for i := range r.rings {
		r.rings[i].e = make([]FlightEntry, size)
	}
	return r
}

func (r *Recorder) record(shard int, e FlightEntry) {
	if r == nil {
		return
	}
	if shard < 0 || shard >= len(r.rings) {
		shard = 0
	}
	e.Shard = uint16(shard)
	r.rings[shard].record(e)
}

// Dump freezes every ring and writes the merged, VT-ordered entries to
// flight-<seq>-<reason>.jsonl under the recorder's directory. The first
// line is a header object carrying the reason; each following line is one
// entry. Dump count is capped (default 8) so a systematically broken run
// cannot fill the disk; capped or unconfigured (no directory) dumps return
// ("", nil).
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil || r.dir == "" {
		return "", nil
	}
	seq := r.seq.Add(1)
	if seq > r.max {
		return "", nil
	}
	var all []FlightEntry
	for i := range r.rings {
		all = r.rings[i].snapshotInto(all)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].VT < all[j].VT })
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(r.dir, fmt.Sprintf("flight-%03d-%s.jsonl", seq, sanitizeReason(reason)))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(f, "{\"flight\":%q,\"entries\":%d,\"shards\":%d}\n", reason, len(all), len(r.rings))
	for _, e := range all {
		kind := "unknown"
		if int(e.Kind) < len(flightKindNames) {
			kind = flightKindNames[e.Kind]
		}
		fmt.Fprintf(f, "{\"vt_ns\":%d,\"kind\":%q,\"shard\":%d", e.VT, kind, e.Shard)
		if e.Flow != "" {
			fmt.Fprintf(f, ",\"flow\":%q", e.Flow)
		}
		if e.Rule != "" {
			fmt.Fprintf(f, ",\"rule\":%q", e.Rule)
		}
		fmt.Fprintf(f, ",\"a\":%g,\"b\":%g,\"c\":%g,\"d\":%g}\n", e.A, e.B, e.C, e.D)
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// Dumps reports how many dump triggers have fired (including any suppressed
// by the cap).
func (r *Recorder) Dumps() int {
	if r == nil {
		return 0
	}
	return int(r.seq.Load())
}

func sanitizeReason(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			b[i] = '-'
		}
	}
	if len(b) == 0 {
		return "trigger"
	}
	return string(b)
}
