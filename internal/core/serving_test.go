package core

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/simcore"
)

// TestDecideBatchMatchesScalar: the batched serving path must agree with
// per-request inference within float tolerance at every batch size,
// including sizes above the lazily grown scratch.
func TestDecideBatchMatchesScalar(t *testing.T) {
	const dim = 12
	net := nn.NewMLP(simcore.NewRNG(3), []int{dim, 24, 24, 2}, []nn.Activation{nn.ReLU, nn.ReLU, nn.Tanh})
	batched := &NNPolicy{Net: net}
	scalar := &NNPolicy{Net: net}
	for _, rows := range []int{1, 7, 64, 200} {
		x := make([]float64, rows*dim)
		for i := range x {
			x[i] = math.Sin(float64(i)) * 0.3
		}
		mus := make([]float64, rows)
		deltas := make([]float64, rows)
		batched.DecideBatch(x, rows, mus, deltas)
		for r := 0; r < rows; r++ {
			mu, delta := scalar.Decide(x[r*dim : (r+1)*dim])
			if math.Abs(mus[r]-mu) > 1e-9 || math.Abs(deltas[r]-delta) > 1e-9 {
				t.Fatalf("rows=%d row=%d: batch (%v, %v) != scalar (%v, %v)", rows, r, mus[r], deltas[r], mu, delta)
			}
			if delta < 0 || delta > 1 || mu < -1 || mu > 1 {
				t.Fatalf("decision out of range: (%v, %v)", mu, delta)
			}
		}
	}
	if got := batched.InputDim(); got != dim {
		t.Fatalf("InputDim = %d, want %d", got, dim)
	}
}

// TestAIMDPolicy: net loss across the window backs off, anything else
// probes, and the decision radius is always zero (no differentiation for a
// blind flow).
func TestAIMDPolicy(t *testing.T) {
	cases := []struct {
		state  []float64
		wantMu float64
	}{
		{nil, 1},
		{[]float64{0, 0, 0, 0}, 1},
		{[]float64{0.5, 0.01, -0.2, 0.02}, 1},  // net loss positive: probe
		{[]float64{0.5, -0.04, 0.1, 0.01}, -1}, // net drop: back off
	}
	for i, c := range cases {
		mu, delta := (AIMDPolicy{}).Decide(c.state)
		if mu != c.wantMu || delta != 0 {
			t.Fatalf("case %d: (%v, %v), want (%v, 0)", i, mu, delta, c.wantMu)
		}
	}
}

func TestPolicyFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	actor := nn.NewMLP(simcore.NewRNG(5), []int{8, 16, 2}, []nn.Activation{nn.ReLU, nn.Tanh})
	path := filepath.Join(dir, "ck.json")
	if err := rl.SaveCheckpoint(path, &rl.Checkpoint{Actor: actor}); err != nil {
		t.Fatal(err)
	}
	p, err := PolicyFromCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.InputDim() != 8 {
		t.Fatalf("loaded actor dim %d", p.InputDim())
	}
	mu, delta := p.Decide(make([]float64, 8))
	if math.IsNaN(mu) || delta < 0 || delta > 1 {
		t.Fatalf("loaded policy answered (%v, %v)", mu, delta)
	}

	// A checkpoint without an actor (e.g. a critics-only artifact from a
	// future format change) must be rejected with a clear error, and weights
	// that fail to parse must not load. (Non-finite weights cannot even be
	// encoded — json rejects NaN — so AllFinite is a second line of defense;
	// the runtime guard is covered by the daemon tests.)
	bad := filepath.Join(dir, "bad.json")
	if err := rl.SaveCheckpoint(bad, &rl.Checkpoint{}); err != nil {
		t.Fatal(err)
	}
	if _, err := PolicyFromCheckpoint(bad); err == nil {
		t.Fatal("actor-less checkpoint accepted")
	}
	if _, err := PolicyFromCheckpoint(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestPolicyFromActorFile(t *testing.T) {
	dir := t.TempDir()
	actor := nn.NewMLP(simcore.NewRNG(5), []int{6, 12, 2}, []nn.Activation{nn.ReLU, nn.Tanh})
	data, err := json.Marshal(actor)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "actor.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := PolicyFromActorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.InputDim() != 6 {
		t.Fatalf("loaded actor dim %d", p.InputDim())
	}
	if _, err := PolicyFromActorFile(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing actor accepted")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PolicyFromActorFile(path); err == nil {
		t.Fatal("corrupt actor accepted")
	}
}
