package exp

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/vegas"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// withObs installs a fresh obs runtime for the duration of one test body and
// restores the package global afterwards.
func withObs(t *testing.T, o obs.Options, body func(rt *obs.Runtime)) {
	t.Helper()
	if Obs != nil {
		t.Fatal("test requires the package-level obs runtime to start nil")
	}
	rt := obs.New(o)
	Obs = rt
	defer func() { Obs = nil }()
	body(rt)
}

// TestObsStreamingJainMatchesPostHoc is the headline exactness gate: on both
// canonical golden scenarios, the cumulative streaming Jain produced live by
// the constant-memory observer must agree with metrics.TimewiseJain computed
// post-hoc from the full recorded series to within 1e-6.
func TestObsStreamingJainMatchesPostHoc(t *testing.T) {
	for _, s := range canonicalScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			withObs(t, obs.Options{Window: 500 * time.Millisecond}, func(rt *obs.Runtime) {
				r, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				if r.Stream == nil {
					t.Fatal("run with obs attached produced no streaming summary")
				}
				want := metrics.TimewiseJain(r.FlowSummaries)
				if math.Abs(r.Stream.FinalJain-want) > 1e-6 {
					t.Fatalf("streaming Jain %.9f vs post-hoc %.9f", r.Stream.FinalJain, want)
				}
				if r.Stream.Samples == 0 || r.Stream.Snapshots == 0 {
					t.Fatalf("summary not populated: %+v", r.Stream)
				}
				latest, ok := rt.State().Latest()
				if !ok || latest.T == 0 {
					t.Error("live state saw no snapshots")
				}
			})
		})
	}
}

// TestObsDigestParity pins the determinism contract: attaching the streaming
// observer must leave a checked run's event-stream digest bit-identical,
// because obs only observes at taps and window barriers — it never draws
// randomness or schedules events.
func TestObsDigestParity(t *testing.T) {
	for _, s := range canonicalScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			base, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !base.Checked || base.Digest == 0 {
				t.Fatalf("baseline run not checked (checked=%v digest=%#x)", base.Checked, base.Digest)
			}
			withObs(t, obs.Options{Window: 250 * time.Millisecond}, func(rt *obs.Runtime) {
				instr, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				if instr.Digest != base.Digest {
					t.Fatalf("obs perturbed the simulation: digest %#016x (observed) != %#016x (bare)",
						instr.Digest, base.Digest)
				}
			})
		})
	}
}

// TestObsShardedDigestParity repeats the parity claim where the window hook
// rides the coordinator barrier: a sharded huge run with obs attached must
// digest identically to the same run without it.
func TestObsShardedDigestParity(t *testing.T) {
	opt := HugeOptions{
		Segments:   4,
		TotalFlows: 96,
		Rate:       200e6,
		Horizon:    1500 * time.Millisecond,
		Seed:       5,
		Shards:     4,
		Check:      true,
	}
	// A custom CC makes the run uncacheable, so no store interference; the
	// loss-free vegas mesh is the same digest-parity regime the sharded
	// engine tests pin.
	opt.CC = func(uint64) cc.Algorithm { return vegas.New() }
	bare, err := RunHuge(opt)
	if err != nil {
		t.Fatal(err)
	}
	withObs(t, obs.Options{Window: 200 * time.Millisecond}, func(rt *obs.Runtime) {
		instr, err := RunHuge(opt)
		if err != nil {
			t.Fatal(err)
		}
		if instr.Digest != bare.Digest {
			t.Fatalf("obs perturbed the sharded run: %#016x != %#016x", instr.Digest, bare.Digest)
		}
		if instr.Stream == nil || instr.Stream.Samples == 0 {
			t.Fatalf("sharded huge run produced no streaming summary: %+v", instr.Stream)
		}
		if instr.Stream.FinalJain <= 0 || instr.Stream.FinalJain > 1 {
			t.Fatalf("FinalJain %v out of range", instr.Stream.FinalJain)
		}
	})
}

// TestObsFlightRecorderOnFaults runs a fault-injected scenario and requires a
// non-empty flight dump: injected losses must land in the ring as fault
// events and the burst trigger must fire a JSONL dump on its own.
func TestObsFlightRecorderOnFaults(t *testing.T) {
	dir := t.TempDir()
	s := Scenario{
		Name:        "obs-faulty",
		Rate:        20e6,
		OneWayDelay: 10 * time.Millisecond,
		BufferBytes: 64 * 1500,
		Horizon:     4 * time.Second,
		Seed:        3,
		Faults: &faults.Config{
			GE: &faults.GEConfig{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 1},
		},
		Flows: []FlowSpec{{Scheme: "cubic"}, {Scheme: "cubic"}},
	}
	withObs(t, obs.Options{FlightDir: dir, FaultBurst: 16}, func(rt *obs.Runtime) {
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stream == nil || r.Stream.Faults == 0 {
			t.Fatalf("fault-injected run recorded no faults: %+v", r.Stream)
		}
		dumps, _ := filepath.Glob(filepath.Join(dir, "*.jsonl"))
		if len(dumps) == 0 {
			t.Fatal("fault burst produced no flight dump")
		}
		info, err := os.Stat(dumps[0])
		if err != nil || info.Size() == 0 {
			t.Fatalf("flight dump %q empty (err %v)", dumps[0], err)
		}
	})
}

// BenchmarkScenarioObs is BenchmarkScenario with the streaming observer
// attached: same scenario, same iteration shape, so the ns/op ratio between
// the two is the obs tax on the hot path. bench.sh records both and
// --compare fails when the ratio regresses more than 5% against the
// baseline's ratio.
func BenchmarkScenarioObs(b *testing.B) {
	if Obs != nil {
		b.Fatal("benchmark requires the package-level obs runtime to start nil")
	}
	Obs = obs.New(obs.Options{Window: 500 * time.Millisecond})
	defer func() { Obs = nil }()
	s := Scenario{
		Name: "bench", Rate: 30e6, OneWayDelay: 10 * time.Millisecond,
		BufferBytes: 75_000, Horizon: 5 * time.Second, Seed: 7,
		Flows: []FlowSpec{{Scheme: "jury"}, {Scheme: "jury", Start: time.Second}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObsStreamSurvivesStore pins the compact round trip: a run stored with
// StoreCompact keeps no series, yet the cached result still carries the
// streaming summary and per-flow late means, and RobustnessTable rows built
// from it match the live run's fairness to the late-mean approximation.
func TestObsStreamSurvivesStore(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(runstore.Options{Dir: dir, Fsync: runstore.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	Store, StoreResume, StoreCompact = st, true, true
	defer func() { Store, StoreResume, StoreCompact = nil, false, false }()

	s := canonicalScenarios()[0]
	var liveJain float64
	withObs(t, obs.Options{Window: 500 * time.Millisecond}, func(rt *obs.Runtime) {
		live, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if live.Cached {
			t.Fatal("first run reported cached")
		}
		liveJain = live.Stream.FinalJain
	})

	cached, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("second run not served from the store")
	}
	if cached.Stream == nil {
		t.Fatal("cached result lost the streaming summary")
	}
	if math.Abs(cached.Stream.FinalJain-liveJain) > 1e-12 {
		t.Fatalf("stream summary changed through the store: %v vs %v", cached.Stream.FinalJain, liveJain)
	}
	for _, f := range cached.FlowSummaries {
		if len(f.Series()) != 0 {
			t.Fatalf("compact record kept a %d-point series", len(f.Series()))
		}
		if f.LateMeanBps() <= 0 {
			t.Fatalf("flow %s has no late-window mean in compact record", f.Name())
		}
	}
}
