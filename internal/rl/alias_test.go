package rl

import (
	"fmt"
	"testing"

	"repro/internal/simcore"
)

// reusingEnv mutates one observation buffer in place on every Reset/Step,
// the worst case the collector's defensive copies must tolerate. Its reward
// equals the state value at step time, so any transition whose stored State
// was later mutated is detectable as State[0] != Reward.
type reusingEnv struct {
	obs  []float64
	tick float64
}

func (e *reusingEnv) Reset() []float64 {
	if e.obs == nil {
		e.obs = make([]float64, 1)
	}
	e.tick++
	e.obs[0] = e.tick
	return e.obs
}

func (e *reusingEnv) Step(action []float64) ([]float64, float64, bool) {
	reward := e.obs[0]
	e.tick++
	e.obs[0] = e.tick // clobbers the buffer previously returned as "state"
	return e.obs, reward, false
}

func TestCollectCopiesEnvBuffers(t *testing.T) {
	// Drive Train's collector directly against the buffer-reusing env. The
	// reward is computed from the live state at step time, so a stored
	// State that still equals the reward proves collect copied it before
	// the env clobbered its buffer; without the copies every transition
	// would hold the env's final tick value.
	env := &reusingEnv{}
	state := env.Reset()
	trs, _, endState := collect(env, state, nil, 1, 32, 0, simcore.NewRNG(23))
	if len(trs) != 32 {
		t.Fatalf("collected %d transitions, want 32", len(trs))
	}
	for i, tr := range trs {
		if tr.State[0] != tr.Reward {
			t.Fatalf("transition %d: stored State %v mutated after the fact (reward %v)", i, tr.State[0], tr.Reward)
		}
		if tr.NextState[0] != tr.Reward+1 {
			t.Fatalf("transition %d: stored NextState %v mutated (want %v)", i, tr.NextState[0], tr.Reward+1)
		}
	}
	if endState[0] != trs[len(trs)-1].NextState[0] {
		t.Fatalf("endState %v does not match last NextState %v", endState[0], trs[len(trs)-1].NextState[0])
	}
}

func benchUpdate(b *testing.B, workers int) {
	cfg := DefaultConfig(15, 1)
	cfg.Hidden = []int{64, 32}
	cfg.Seed = 31
	cfg.Workers = workers
	agent := NewTD3(cfg)
	buf := NewReplayBuffer(4096)
	rng := simcore.NewRNG(32)
	for i := 0; i < 1024; i++ {
		s := make([]float64, cfg.StateDim)
		n := make([]float64, cfg.StateDim)
		for j := range s {
			s[j] = rng.Range(-1, 1)
			n[j] = rng.Range(-1, 1)
		}
		buf.Add(Transition{
			State:     s,
			Action:    []float64{rng.Range(-1, 1)},
			Reward:    rng.Range(-1, 1),
			NextState: n,
			Done:      rng.Bernoulli(0.1),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Update(buf)
	}
}

func BenchmarkTD3Update(b *testing.B) { benchUpdate(b, 0) }

// BenchmarkTD3UpdateWorkers measures the sharded update. The weights are
// bit-identical to the serial path at every worker count, so this isolates
// the pure coordination cost/benefit (on a single-CPU box it is all cost).
func BenchmarkTD3UpdateWorkers(b *testing.B) {
	for _, w := range []int{2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { benchUpdate(b, w) })
	}
}
