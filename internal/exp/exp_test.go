package exp

import (
	"math"
	"testing"
	"time"
)

func TestNewSchemeRegistry(t *testing.T) {
	for _, name := range Schemes {
		alg, err := NewScheme(name, 1)
		if err != nil {
			t.Fatalf("scheme %s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("scheme %s has empty name", name)
		}
	}
	if _, err := NewScheme("nonsense", 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunValidatesScenario(t *testing.T) {
	if _, err := Run(Scenario{Name: "no-horizon", Rate: 1e6, BufferBytes: 100, Flows: []FlowSpec{{Scheme: "cubic"}}}); err == nil {
		t.Fatal("horizon-less scenario accepted")
	}
	if _, err := Run(Scenario{Name: "bad-scheme", Rate: 1e6, BufferBytes: 10000, Horizon: time.Second, Flows: []FlowSpec{{Scheme: "nope"}}}); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestRunBasicScenario(t *testing.T) {
	s := Scenario{
		Name:        "basic",
		Rate:        20e6,
		OneWayDelay: 10 * time.Millisecond,
		Horizon:     20 * time.Second,
		Seed:        1,
		Flows:       []FlowSpec{{Scheme: "jury"}, {Scheme: "cubic", Start: 5 * time.Second}},
	}
	s.BufferBytes = s.BufferBDP(1.5)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("flows %d", len(res.Flows))
	}
	if res.Utilization < 0.5 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

func TestBufferBDP(t *testing.T) {
	s := Scenario{Rate: 100e6, OneWayDelay: 15 * time.Millisecond}
	// BDP = 100e6/8 * 0.030 = 375000 bytes.
	if got := s.BufferBDP(1); got != 375000 {
		t.Fatalf("BDP %d, want 375000", got)
	}
	if got := s.BufferBDP(2); got != 750000 {
		t.Fatalf("2 BDP %d", got)
	}
}

func TestFig4PhasesShape(t *testing.T) {
	rows, err := Fig4SignalPhases(Fig4Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 20 {
		t.Fatalf("rows %d", len(rows))
	}
	// Phase 1 (well below capacity): throughput tracks rate, no queue.
	first := rows[0]
	if math.Abs(first.ThroughputBps-first.SendRateBps)/first.SendRateBps > 0.1 {
		t.Fatalf("under-capacity throughput %v for rate %v", first.ThroughputBps, first.SendRateBps)
	}
	// Phase 3 (far above capacity): throughput capped at capacity, loss on.
	last := rows[len(rows)-1]
	if last.ThroughputBps > 105e6 {
		t.Fatalf("over-capacity throughput %v", last.ThroughputBps)
	}
	if last.LossRate <= 0.1 {
		t.Fatalf("no loss at 2.5x capacity: %v", last.LossRate)
	}
	// RTT grows monotonically-ish from first to the saturation region.
	if last.AvgRTT <= first.AvgRTT {
		t.Fatalf("RTT did not grow: %v -> %v", first.AvgRTT, last.AvgRTT)
	}
	// The loss-free middle region has inflated RTT but capped throughput —
	// the "queuing" phase between the two transitions.
	var sawQueuingPhase bool
	for _, r := range rows {
		if r.LossRate < 0.01 && r.AvgRTT > first.AvgRTT+5*time.Millisecond && r.ThroughputBps > 90e6 {
			sawQueuingPhase = true
		}
	}
	if !sawQueuingPhase {
		t.Fatal("no distinct queuing phase observed")
	}
}

func TestFig5MonotoneResponse(t *testing.T) {
	rows, err := Fig5OccupancyProbe(Fig5Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 7 {
		t.Fatalf("rows %d", len(rows))
	}
	// Smaller share -> larger throughput gain from the same +10% probe
	// (Fig. 5). Compare the small-share third against the large-share third.
	smallGain := 0.0
	largeGain := 0.0
	var sn, ln int
	for _, r := range rows {
		if r.Share < 0.35 {
			smallGain += r.ThrChangeRatio
			sn++
		}
		if r.Share > 0.65 {
			largeGain += r.ThrChangeRatio
			ln++
		}
	}
	if sn == 0 || ln == 0 {
		t.Fatalf("share sweep incomplete: %+v", rows)
	}
	if smallGain/float64(sn) <= largeGain/float64(ln) {
		t.Fatalf("throughput gain not decreasing in share: small %v vs large %v",
			smallGain/float64(sn), largeGain/float64(ln))
	}
}

func TestFig6SmallRun(t *testing.T) {
	rows, err := Fig6JainIndex(Fig6Options{
		Runs: 2, Stagger: 10 * time.Second, Lifetime: 30 * time.Second,
		MaxRate: 120e6, Schemes: []string{"jury", "cubic"}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanJain < 0.3 || r.MeanJain > 1 {
			t.Fatalf("%s mean Jain %v out of range", r.Scheme, r.MeanJain)
		}
		if r.P5 > r.P95 {
			t.Fatalf("%s percentiles inverted", r.Scheme)
		}
	}
}

func TestFig7PanelRuns(t *testing.T) {
	panels := Fig7Panels()
	if len(panels) != 8 {
		t.Fatalf("panels %d, want 8", len(panels))
	}
	res, err := Fig7Convergence(panels[0], Fig7Options{Stagger: 10 * time.Second, Lifetime: 30 * time.Second, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jain < 0.5 {
		t.Fatalf("jury 50 Mbps panel Jain %v", res.Jain)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series rows")
	}
}

func TestFig9SmallRun(t *testing.T) {
	rows, err := Fig9Friendliness(Fig9Options{
		Rate:     50e6,
		RTTs:     []time.Duration{60 * time.Millisecond},
		Lifetime: 40 * time.Second,
		Schemes:  []string{"jury", "vegas"},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio <= 0 || math.IsInf(r.Ratio, 0) {
			t.Fatalf("%s ratio %v", r.Scheme, r.Ratio)
		}
	}
	// Vegas is famously starved by loss-based Cubic: its ratio must be
	// below Jury's.
	var jury, vegas float64
	for _, r := range rows {
		switch r.Scheme {
		case "jury":
			jury = r.Ratio
		case "vegas":
			vegas = r.Ratio
		}
	}
	if vegas >= jury {
		t.Fatalf("vegas ratio %v not below jury %v", vegas, jury)
	}
}

func TestFig12TrackingSummary(t *testing.T) {
	rows := []Fig12Row{
		{T: time.Second, Scheme: "capacity", SendRateBps: 10e6},
		{T: time.Second, Scheme: "x", SendRateBps: 8e6},
		{T: 2 * time.Second, Scheme: "capacity", SendRateBps: 10e6},
		{T: 2 * time.Second, Scheme: "x", SendRateBps: 12e6}, // capped at 1
	}
	got := Fig12Tracking(rows, "x")
	if math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("tracking %v, want 0.9", got)
	}
	if Fig12Tracking(rows, "absent") != 0 {
		t.Fatal("absent scheme should track 0")
	}
}

func TestFig14Overhead(t *testing.T) {
	rows, err := Fig14CPUOverhead(Fig14Options{
		Schemes: []string{"jury", "jury-ref", "cubic"},
		Iters:   2000,
		Seed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig14Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
		if r.NsPerAck < 0 || r.CPUPercent < 0 {
			t.Fatalf("negative cost: %+v", r)
		}
	}
	// NN inference must dominate the reference policy's hand play.
	if byName["jury"].NsPerDecision <= byName["jury-ref"].NsPerDecision {
		t.Fatalf("NN decision %v not above reference %v",
			byName["jury"].NsPerDecision, byName["jury-ref"].NsPerDecision)
	}
	// Cubic's ack path must be far cheaper than an NN decision.
	if byName["cubic"].NsPerAck >= byName["jury"].NsPerDecision {
		t.Fatalf("cubic ack %v not below NN decision %v",
			byName["cubic"].NsPerAck, byName["jury"].NsPerDecision)
	}
}

func TestTableRenderers(t *testing.T) {
	if len(Tab1Rows()) != 5 {
		t.Fatal("Tab1 rows")
	}
	if len(Tab2Rows()) != 9 {
		t.Fatal("Tab2 rows")
	}
	out := FormatTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if out == "" {
		t.Fatal("empty table")
	}
}

func TestMultiBottleneckFairness(t *testing.T) {
	res, err := RunMultiBottleneck(MultiBottleneckOptions{Lifetime: 90 * time.Second, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Each bottleneck is shared between the long flow and one cross flow:
	// both links should be near max-min fair (50/50).
	if res.Link1Jain < 0.85 || res.Link2Jain < 0.85 {
		t.Fatalf("parking-lot fairness broke: link1 %.3f link2 %.3f (long %.1f, cross %.1f/%.1f Mbps)",
			res.Link1Jain, res.Link2Jain, res.LongMbps, res.Cross1Mbps, res.Cross2Mbps)
	}
	// The cross flows must each get a solid share of their links.
	if res.Cross1Mbps < 20 || res.Cross2Mbps < 20 {
		t.Fatalf("cross flows starved: %.1f / %.1f Mbps", res.Cross1Mbps, res.Cross2Mbps)
	}
}
