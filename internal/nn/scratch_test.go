package nn

import (
	"testing"

	"repro/internal/simcore"
)

func TestForwardIntoMatchesForward(t *testing.T) {
	m := newTestMLP(11)
	s := NewScratch(m)
	xs := [][]float64{
		{0.5, -1, 0.25},
		{0, 0, 0},
		{-2, 3, 0.125},
	}
	for _, x := range xs {
		want := m.Forward(x)
		got := m.ForwardInto(x, s)
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("x=%v: ForwardInto=%v Forward=%v", x, got, want)
			}
		}
	}
}

func TestForwardTraceIntoMatchesForwardTrace(t *testing.T) {
	m := newTestMLP(12)
	tr := NewTrace(m)
	x := []float64{0.5, -1, 0.25}
	want := m.ForwardTrace(x)
	got := m.ForwardTraceInto(x, tr)
	if got != tr {
		t.Fatal("ForwardTraceInto must return its argument")
	}
	for li := range want.acts {
		for i := range want.acts[li] {
			if got.acts[li][i] != want.acts[li][i] {
				t.Fatalf("layer %d act %d: %v vs %v", li, i, got.acts[li], want.acts[li])
			}
		}
	}
	// The trace must own its input buffer: mutating x afterwards must not
	// change the recorded activations.
	x[0] = 99
	if tr.acts[0][0] == 99 {
		t.Fatal("trace aliases caller input")
	}
}

func TestBackwardIntoMatchesBackward(t *testing.T) {
	m := newTestMLP(13)
	s := NewScratch(m)
	x := []float64{0.3, -0.7, 1.1}
	dOut := []float64{1.0, -0.5}

	tr := m.ForwardTrace(x)
	gWant := NewGrads(m)
	dInWant := m.Backward(tr, dOut, gWant)

	tr2 := NewTrace(m)
	m.ForwardTraceInto(x, tr2)
	gGot := NewGrads(m)
	dInGot := m.BackwardInto(tr2, dOut, gGot, s)

	if len(dInGot) != len(dInWant) {
		t.Fatalf("input grad len %d vs %d", len(dInGot), len(dInWant))
	}
	for i := range dInWant {
		if dInGot[i] != dInWant[i] {
			t.Fatalf("input grad %d: %v vs %v", i, dInGot, dInWant)
		}
	}
	for li := range gWant.W {
		for j := range gWant.W[li] {
			if gGot.W[li][j] != gWant.W[li][j] {
				t.Fatalf("W grad layer %d idx %d: %v vs %v", li, j, gGot.W[li][j], gWant.W[li][j])
			}
		}
		for j := range gWant.B[li] {
			if gGot.B[li][j] != gWant.B[li][j] {
				t.Fatalf("B grad layer %d idx %d: %v vs %v", li, j, gGot.B[li][j], gWant.B[li][j])
			}
		}
	}
}

func TestScratchReuseAcrossCalls(t *testing.T) {
	// Repeated ForwardInto calls with one scratch must keep producing
	// results identical to the allocating path (no stale-state leakage).
	m := newTestMLP(14)
	s := NewScratch(m)
	rng := simcore.NewRNG(99)
	x := make([]float64, m.InputDim())
	for iter := 0; iter < 50; iter++ {
		for i := range x {
			x[i] = rng.Range(-2, 2)
		}
		want := m.Forward(x)
		got := m.ForwardInto(x, s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: %v vs %v", iter, got, want)
			}
		}
	}
}

func benchMLP() *MLP {
	rng := simcore.NewRNG(7)
	// Jury/Astraea-sized policy net.
	return NewMLP(rng, []int{15, 64, 32, 1}, []Activation{ReLU, ReLU, Tanh})
}

func BenchmarkMLPForward(b *testing.B) {
	m := benchMLP()
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkF64 = m.Forward(x)[0]
		}
	})
	b.Run("into", func(b *testing.B) {
		s := NewScratch(m)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkF64 = m.ForwardInto(x, s)[0]
		}
	})
}

func BenchmarkMLPBackward(b *testing.B) {
	m := benchMLP()
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	dOut := []float64{1}
	b.Run("alloc", func(b *testing.B) {
		g := NewGrads(m)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := m.ForwardTrace(x)
			g.Zero()
			sinkSlice = m.Backward(tr, dOut, g)
		}
	})
	b.Run("into", func(b *testing.B) {
		g := NewGrads(m)
		s := NewScratch(m)
		tr := NewTrace(m)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.ForwardTraceInto(x, tr)
			g.Zero()
			sinkSlice = m.BackwardInto(tr, dOut, g, s)
		}
	})
}

var (
	sinkF64   float64
	sinkSlice []float64
)
