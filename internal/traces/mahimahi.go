package traces

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Mahimahi trace compatibility. The paper trains and evaluates over
// Mahimahi link shells (§4), whose packet-delivery trace format is one
// integer per line: a millisecond timestamp at which one MTU-sized (1500 B)
// packet delivery opportunity occurs; the file loops forever. This parser
// converts such a file into a piecewise-constant Trace so recorded cellular
// traces (e.g. the Verizon LTE captures used by Fig. 12's lineage) can
// drive the emulator directly.

// MahimahiMTU is the packet size a Mahimahi delivery opportunity carries.
const MahimahiMTU = 1500

// maxMahimahiBuckets bounds the piecewise-constant representation of a
// parsed trace (2^22 buckets ≈ 4.8 days at the default 100 ms bucket).
// Real captures are minutes long; a larger span is almost certainly a
// corrupt file, and honoring it would allocate gigabytes.
const maxMahimahiBuckets = 1 << 22

// maxMahimahiMs is the largest timestamp that converts to a time.Duration
// without overflowing int64 nanoseconds. Larger values used to wrap the
// conversion negative and panic the bucket indexing.
const maxMahimahiMs = int64(1<<63-1) / int64(time.Millisecond)

// ParseMahimahi reads a Mahimahi packet-delivery trace and returns a
// looping step trace whose rate over each bucket (default 100 ms) is the
// number of delivery opportunities in the bucket times the MTU.
func ParseMahimahi(r io.Reader, bucket time.Duration) (*Step, error) {
	if bucket <= 0 {
		bucket = 100 * time.Millisecond
	}
	sc := bufio.NewScanner(r)
	var deliveries []int64 // ms timestamps
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ms, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traces: mahimahi line %d: %q is not a millisecond timestamp", line, text)
		}
		if ms < 0 {
			return nil, fmt.Errorf("traces: mahimahi line %d: negative timestamp %d", line, ms)
		}
		if ms >= maxMahimahiMs {
			return nil, fmt.Errorf("traces: mahimahi line %d: timestamp %d ms overflows", line, ms)
		}
		if n := len(deliveries); n > 0 && ms < deliveries[n-1] {
			return nil, fmt.Errorf("traces: mahimahi line %d: timestamps not sorted (%d after %d)", line, ms, deliveries[n-1])
		}
		deliveries = append(deliveries, ms)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(deliveries) == 0 {
		return nil, fmt.Errorf("traces: empty mahimahi trace")
	}

	span := time.Duration(deliveries[len(deliveries)-1]+1) * time.Millisecond
	// Ceiling division without span+bucket-1, which can overflow int64 when
	// the span is near the Duration limit.
	nb := int64(span) / int64(bucket)
	if int64(span)%int64(bucket) != 0 {
		nb++
	}
	if nb < 1 {
		nb = 1
	}
	if nb > maxMahimahiBuckets {
		return nil, fmt.Errorf("traces: mahimahi span %v needs %d buckets of %v (max %d)",
			span, nb, bucket, maxMahimahiBuckets)
	}
	buckets := int(nb)
	counts := make([]int, buckets)
	for _, ms := range deliveries {
		idx := int(time.Duration(ms) * time.Millisecond / bucket)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	points := make([]Point, buckets)
	for i, c := range counts {
		points[i] = Point{
			At:   time.Duration(i) * bucket,
			Rate: float64(c) * MahimahiMTU * 8 / bucket.Seconds(),
		}
	}
	s := NewStep(points)
	s.Loop = time.Duration(buckets) * bucket
	return s, nil
}

// WriteMahimahi renders a trace as a Mahimahi packet-delivery file covering
// [0, span): one line per MTU delivery opportunity. It is the inverse of
// ParseMahimahi up to bucket quantization, useful for exporting synthetic
// LTE traces to real Mahimahi shells.
func WriteMahimahi(w io.Writer, tr Trace, span time.Duration) error {
	if span <= 0 {
		return fmt.Errorf("traces: non-positive span %v", span)
	}
	bw := bufio.NewWriter(w)
	var carry float64 // fractional packets carried between milliseconds
	for ms := int64(0); ms < span.Milliseconds(); ms++ {
		rate := tr.RateAt(time.Duration(ms) * time.Millisecond)
		carry += rate / 8 / MahimahiMTU / 1000 // packets this millisecond
		for carry >= 1 {
			if _, err := fmt.Fprintln(bw, ms); err != nil {
				return err
			}
			carry--
		}
	}
	return bw.Flush()
}
