package simcheck

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/vegas"
	"repro/internal/netsim"
)

// shardedParkingLot is a loss-free 3-bottleneck chain: vegas keeps queues
// near-empty, so no packet ever drops and the sharded event stream must
// reproduce the sequential one bit-for-bit (drops on foreign shards are the
// one documented divergence — see netsim.Network.RunSharded).
func shardedParkingLot(seed uint64) *netsim.Network {
	n := netsim.New(netsim.Config{Seed: seed})
	l0 := n.AddLink(netsim.LinkConfig{Rate: 40e6, Delay: 8 * time.Millisecond, BufferBytes: 512_000})
	l1 := n.AddLink(netsim.LinkConfig{Rate: 40e6, Delay: 7 * time.Millisecond, BufferBytes: 512_000})
	l2 := n.AddLink(netsim.LinkConfig{Rate: 40e6, Delay: 6 * time.Millisecond, BufferBytes: 512_000})
	links := []*netsim.Link{l0, l1, l2}
	n.AddFlow(netsim.FlowConfig{
		Name: "long", Path: links,
		CC: func() cc.Algorithm { return vegas.New() },
	})
	for i, l := range links {
		l := l
		n.AddFlow(netsim.FlowConfig{
			Name: fmt.Sprintf("local-%d", i), Path: []*netsim.Link{l},
			Start:       time.Duration(i) * 200 * time.Millisecond,
			ExtraOneWay: time.Duration(i) * time.Millisecond,
			CC:          func() cc.Algorithm { return vegas.New() },
		})
	}
	return n
}

// TestShardedDigestMatchesSequential is the determinism guarantee of the
// sharded engine: the full simcheck digest — event-stream fold, event
// count, per-flow statistics and series, per-link counters — of a 3-shard
// run is bit-identical to the sequential run of the same topology.
func TestShardedDigestMatchesSequential(t *testing.T) {
	const horizon = 5 * time.Second

	seq := shardedParkingLot(17)
	ckSeq := Attach(seq)
	seq.Run(horizon)
	if vs := ckSeq.Finish(); len(vs) != 0 {
		t.Fatalf("sequential run violated invariants: %v", vs[0])
	}

	shd := shardedParkingLot(17)
	ckShd := Attach(shd)
	sr, err := shd.RunSharded(horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Partition.Shards != 3 {
		t.Fatalf("parking lot ran on %d shards, want 3", sr.Partition.Shards)
	}
	if vs := ckShd.Finish(); len(vs) != 0 {
		t.Fatalf("sharded run violated invariants: %v", vs[0])
	}
	for _, l := range shd.Links() {
		if l.Stats().OverflowDrops != 0 || l.Stats().RandomDrops != 0 {
			t.Fatal("parity scenario dropped packets; redesign it loss-free")
		}
	}

	if ckSeq.Events() != ckShd.Events() {
		t.Fatalf("event counts differ: sequential %d, sharded %d", ckSeq.Events(), ckShd.Events())
	}
	if ckSeq.StreamHash() != ckShd.StreamHash() {
		t.Fatalf("event-stream hash differs: sequential %016x, sharded %016x",
			ckSeq.StreamHash(), ckShd.StreamHash())
	}
	if ckSeq.Digest() != ckShd.Digest() {
		t.Fatalf("digest differs: sequential %016x, sharded %016x", ckSeq.Digest(), ckShd.Digest())
	}
}

// TestShardedDigestRepeatable: two sharded runs at the same shard count are
// bit-identical even with drops in play (cubic overload, foreign-shard
// losses included).
func TestShardedDigestRepeatable(t *testing.T) {
	run := func() uint64 {
		n := shardedParkingLot(23)
		// Oversubscribe with extra unpaced senders to force DropTail drops.
		for i, l := range n.Links() {
			l := l
			n.AddFlow(netsim.FlowConfig{
				Name: fmt.Sprintf("blast-%d", i), Path: []*netsim.Link{l},
				CC: func() cc.Algorithm { return cc.NewManual(60e6) },
			})
		}
		ck := Attach(n)
		if _, err := n.RunSharded(3*time.Second, 3); err != nil {
			t.Fatal(err)
		}
		ck.Finish()
		if err := ck.Err(); err != nil {
			t.Fatal(err)
		}
		return ck.Digest()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("repeated sharded runs diverged: %016x vs %016x", a, b)
	}
}
