// Package core implements Jury, the paper's contribution: a DRL-based
// congestion controller whose fairness is decoupled from the learned policy.
//
// The pipeline (Fig. 2 of the paper) has three blocks:
//
//  1. Signal transformation (§3.1): raw per-interval statistics become
//     bandwidth-agnostic signals — the RTT difference ΔRTT = RTT_t − RTT_{t−1}
//     (Eq. 1) and the loss ratio (1−L_t)/(1−L_{t−1}) feed the policy; the
//     multiplicative rate change x_t/x_{t−1} and throughput change
//     thr_t/thr_{t−1} feed the occupancy estimator.
//  2. A policy (DRL actor or the deterministic reference policy) maps the
//     stacked signal history to a decision range (μ, δ). Because the inputs
//     carry no bandwidth information, every flow sharing a bottleneck
//     computes the same range.
//  3. Post-processing (§3.2): the flow's bandwidth-occupancy estimate
//     ratio_bw (Eq. 5) picks the point a = μ + (1−2·ratio_bw)·δ (Eq. 6)
//     inside the range, making large flows conservative and small flows
//     aggressive; the action multiplicatively updates cwnd (Eq. 7) and the
//     pacing rate follows (Eq. 8).
package core

import (
	"fmt"
	"time"
)

// Config holds Jury's hyperparameters. Defaults (DefaultConfig) follow
// Table 2 of the paper.
type Config struct {
	// Interval is the control interval (Table 2: 30 ms).
	Interval time.Duration
	// Alpha is the action control coefficient of Eq. 7 (Table 2: 0.025).
	Alpha float64
	// Beta1 weighs the RTT term of the reward, with RTT measured in
	// microseconds (Table 2: 1e-5).
	Beta1 float64
	// Beta2 weighs the loss term of the reward (Table 2: 5).
	Beta2 float64
	// Zeta is the concave throughput exponent of Eq. 9, 0 < ζ < 1.
	Zeta float64
	// HistoryLen is how many intervals of signals are stacked into the
	// policy input state (§3.5 "stack signals from a window of intervals").
	HistoryLen int

	// ExploreLow/ExploreHigh bound the near-zero action band that triggers
	// the exploration rule, and ExploreProb is the probability of replacing
	// such an action with ±1 (§3.4 "Exploration Action").
	ExploreLow  float64
	ExploreHigh float64
	ExploreProb float64

	// MinIntervalPackets is the statistics-significance threshold: with
	// fewer feedback packets in an interval, Jury maximally increases the
	// rate instead of consulting the model (§3.4, doubling as slow start).
	MinIntervalPackets int64

	// OccupancyWindow is the moving-average length for the occupancy
	// estimate, and OccupancyMin/Max are the outlier bounds (§3.4 "Signal
	// Averaging and Filtering").
	OccupancyWindow int
	OccupancyMin    float64
	OccupancyMax    float64

	// SignalClamp bounds each normalized input signal to [-SignalClamp,
	// +SignalClamp] before it reaches the policy.
	SignalClamp float64

	// MinCwnd floors the congestion window (packets).
	MinCwnd float64
	// MaxCwnd caps the congestion window (packets). Eq. 7 is a pure
	// multiplicative update; without a ceiling a flow whose signals go flat
	// at a saturated bottleneck (RTT pinned at the full buffer, loss steady
	// so the ratio signal telescopes to zero) ratchets its window upward
	// without bound. Deployed Jury inherits the kernel's window limit; the
	// emulation needs an explicit one. Zero selects the default.
	MaxCwnd float64
	// CollapseLoss is the congestion-collapse guard: when an interval's
	// loss rate reaches this level, the window is far beyond what the path
	// delivers and Jury retreats maximally instead of consulting the model
	// (generalizing the §3.4 blackout rule). The policy itself cannot see
	// this — its loss signal carries only interval-to-interval *changes*,
	// so a steady severe loss level is invisible to it by design. Well
	// above any random-loss environment Jury must stay efficient in
	// (Fig. 10c uses ≤1%). Zero selects the default.
	CollapseLoss float64

	// Seed drives the exploration-action coin flips.
	Seed uint64
}

// DefaultConfig returns the paper's hyperparameters (Table 2) plus the
// implementation constants documented in DESIGN.md.
func DefaultConfig() Config {
	return Config{
		Interval:           30 * time.Millisecond,
		Alpha:              0.025,
		Beta1:              1e-5,
		Beta2:              5,
		Zeta:               0.9,
		HistoryLen:         8,
		ExploreLow:         -0.05,
		ExploreHigh:        0.05,
		ExploreProb:        0.5,
		MinIntervalPackets: 8,
		OccupancyWindow:    32,
		OccupancyMin:       0.02,
		OccupancyMax:       1.0,
		SignalClamp:        1.0,
		MinCwnd:            2,
		MaxCwnd:            1 << 17,
		CollapseLoss:       0.1,
		Seed:               1,
	}
}

// Validate reports the first configuration problem, if any.
func (c Config) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("core: non-positive control interval %v", c.Interval)
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("core: alpha %v outside (0,1)", c.Alpha)
	case c.Zeta <= 0 || c.Zeta >= 1:
		return fmt.Errorf("core: zeta %v outside (0,1) (Eq. 9 requires 0<ζ<1)", c.Zeta)
	case c.HistoryLen < 1:
		return fmt.Errorf("core: history length %d < 1", c.HistoryLen)
	case c.ExploreLow > c.ExploreHigh:
		return fmt.Errorf("core: exploration band [%v,%v] inverted", c.ExploreLow, c.ExploreHigh)
	case c.OccupancyWindow < 1:
		return fmt.Errorf("core: occupancy window %d < 1", c.OccupancyWindow)
	case c.OccupancyMin < 0 || c.OccupancyMax > 1 || c.OccupancyMin >= c.OccupancyMax:
		return fmt.Errorf("core: occupancy bounds [%v,%v] invalid", c.OccupancyMin, c.OccupancyMax)
	case c.MaxCwnd != 0 && c.MaxCwnd < c.MinCwnd:
		return fmt.Errorf("core: max cwnd %v below min cwnd %v", c.MaxCwnd, c.MinCwnd)
	case c.CollapseLoss < 0 || c.CollapseLoss > 1:
		return fmt.Errorf("core: collapse-loss threshold %v outside [0,1]", c.CollapseLoss)
	}
	return nil
}

// StateDim reports the policy input width: HistoryLen stacked intervals of
// the two bandwidth-agnostic signals (ΔRTT, loss ratio).
func (c Config) StateDim() int { return 2 * c.HistoryLen }

// TrainingDomain is the training-environment distribution of Table 1.
type TrainingDomain struct {
	MinBandwidth float64       // bits/second
	MaxBandwidth float64       // bits/second
	MinRTT       time.Duration // base round-trip
	MaxRTT       time.Duration
	MinBufferBDP float64 // buffer as a multiple of the BDP
	MaxBufferBDP float64
	MinLoss      float64
	MaxLoss      float64
	MinFlows     int // competing flows simulated during training (§5)
	MaxFlows     int
}

// DefaultTrainingDomain returns Table 1: 20–100 Mbps, 10–60 ms base RTT,
// 0.8–1.5 BDP buffers, 0–0.1% loss, with 2–10 competing flows.
func DefaultTrainingDomain() TrainingDomain {
	return TrainingDomain{
		MinBandwidth: 20e6,
		MaxBandwidth: 100e6,
		MinRTT:       10 * time.Millisecond,
		MaxRTT:       60 * time.Millisecond,
		MinBufferBDP: 0.8,
		MaxBufferBDP: 1.5,
		MinLoss:      0,
		MaxLoss:      0.001,
		MinFlows:     2,
		MaxFlows:     10,
	}
}
