package core

import (
	"math"

	"repro/internal/cc"
)

// EstimateOccupancy inverts Eq. 4 to recover a flow's share of the
// bottleneck capacity from one (rate change, throughput change) pair:
//
//	ratio_bw = (a − thrRatio) / (thrRatio · (a − 1))     (Eq. 5)
//
// where a = x_t/x_{t−1} is the enforced multiplicative rate change and
// thrRatio = thr_t/thr_{t−1} the observed throughput response. The second
// return value is false when the pair is uninformative: a ≈ 1 (no probe —
// the formula is 0/0) or a non-positive throughput ratio.
func EstimateOccupancy(rateChange, thrRatio float64) (float64, bool) {
	const probeEps = 5e-3
	if math.Abs(rateChange-1) < probeEps || thrRatio <= 0 {
		return 0, false
	}
	est := (rateChange - thrRatio) / (thrRatio * (rateChange - 1))
	if math.IsNaN(est) || math.IsInf(est, 0) {
		return 0, false
	}
	return est, true
}

// OccupancyEstimator maintains the filtered bandwidth-occupancy estimate of
// §3.4. Linearizing Eq. 4 around a → 1 gives
//
//	d ln(thr) / d ln(x) = 1 − ratio_bw,
//
// so the estimator regresses y = Δln(throughput) on x = Δln(sending rate)
// over a sliding window and reports ratio = 1 − Σxy/Σx². This is exactly the
// probe-magnitude-weighted average of per-interval Eq. 5 samples (weights
// x², i.e. larger rate swings count quadratically more), which simultaneously
// implements the paper's moving-average smoothing and outlier damping, and
// it turns the sender's own stochastic rate fluctuations into additional
// probes: when the bottleneck is underutilized the throughput tracks the
// rate exactly (slope 1 → ratio 0), when the flow holds the whole bottleneck
// the throughput ignores the rate (slope 0 → ratio 1), and under
// proportional sharing the slope is 1 − share exactly (Eq. 4).
type OccupancyEstimator struct {
	cfg  Config
	xs   []float64
	ys   []float64
	next int
	n    int
}

// NewOccupancyEstimator returns an estimator seeded as a "small flow": with
// no information Jury behaves aggressively, which doubles as startup probing.
func NewOccupancyEstimator(cfg Config) *OccupancyEstimator {
	return &OccupancyEstimator{
		cfg: cfg,
		xs:  make([]float64, cfg.OccupancyWindow),
		ys:  make([]float64, cfg.OccupancyWindow),
	}
}

// Update folds one interval's signals in and returns the filtered estimate.
func (e *OccupancyEstimator) Update(sig Signals) float64 {
	if !sig.Valid || sig.RateChange <= 0 || sig.ThrChange <= 0 {
		return e.Value()
	}
	x := math.Log(sig.RateChange)
	y := math.Log(sig.ThrChange)
	// Outlier bound: discard pathological swings (> 4x in one interval).
	if math.Abs(x) > 1.4 || math.Abs(y) > 1.4 {
		return e.Value()
	}
	e.xs[e.next] = x
	e.ys[e.next] = y
	e.next = (e.next + 1) % len(e.xs)
	if e.n < len(e.xs) {
		e.n++
	}
	return e.Value()
}

// Value reports the current filtered estimate; before any informative
// sample it reports the aggressive-side floor.
func (e *OccupancyEstimator) Value() float64 {
	var sxx, sxy float64
	for i := 0; i < e.n; i++ {
		sxx += e.xs[i] * e.xs[i]
		sxy += e.xs[i] * e.ys[i]
	}
	if sxx < 1e-8 {
		return e.cfg.OccupancyMin
	}
	return cc.Clamp(1-sxy/sxx, e.cfg.OccupancyMin, e.cfg.OccupancyMax)
}

// Samples reports how many informative samples the filter holds.
func (e *OccupancyEstimator) Samples() int { return e.n }
