// Package reno implements TCP NewReno-style AIMD congestion control: slow
// start, congestion avoidance with one-packet-per-RTT growth, and a
// multiplicative halving on each loss event. It is the AIMD reference whose
// "large flows yield more" principle Jury's post-processing generalizes
// (§2.2 of the paper).
package reno

import (
	"time"

	"repro/internal/cc"
)

const (
	initialWindow = 10
	minWindow     = 2
)

// Reno is a NewReno AIMD controller. Construct with New.
type Reno struct {
	cwnd     float64
	ssthresh float64
	// inRecovery marks a congestion episode: losses of packets sent before
	// lastLoss belong to the same event, and growth pauses until an ACK for
	// a post-event packet arrives.
	inRecovery bool
	lastLoss   time.Duration
}

// New returns a Reno controller with the standard initial window.
func New() *Reno {
	return &Reno{cwnd: initialWindow, ssthresh: 1e9}
}

// Name implements cc.Algorithm.
func (r *Reno) Name() string { return "reno" }

// Init implements cc.Algorithm.
func (r *Reno) Init(time.Duration) {}

// OnAck implements cc.Algorithm: exponential growth in slow start, additive
// (1/cwnd per ACK) growth in congestion avoidance.
func (r *Reno) OnAck(a cc.Ack) {
	if r.inRecovery && a.SentAt >= r.lastLoss {
		r.inRecovery = false
	}
	if r.inRecovery {
		return
	}
	if r.cwnd < r.ssthresh {
		r.cwnd++
	} else {
		r.cwnd += 1 / r.cwnd
	}
}

// OnLoss implements cc.Algorithm. Losses within one recovery episode count
// as a single congestion event (NewReno's per-window cut).
func (r *Reno) OnLoss(l cc.Loss) {
	if r.inRecovery && l.SentAt < r.lastLoss {
		return
	}
	r.inRecovery = true
	r.lastLoss = l.Now
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < minWindow {
		r.ssthresh = minWindow
	}
	r.cwnd = r.ssthresh
}

// CWND implements cc.Algorithm.
func (r *Reno) CWND() float64 { return r.cwnd }

// PacingRate implements cc.Algorithm. Reno is ack-clocked (unpaced).
func (r *Reno) PacingRate() float64 { return 0 }
