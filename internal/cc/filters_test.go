package cc

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEWMASeedsWithFirstSample(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Seeded() {
		t.Fatal("zero EWMA reports seeded")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v, want 10", got)
	}
	if got := e.Update(20); got != 15 {
		t.Fatalf("second update = %v, want 15", got)
	}
	e.Reset()
	if e.Seeded() || e.Value() != 0 {
		t.Fatal("reset did not clear EWMA")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Update(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Fatalf("EWMA of constant 7 = %v", e.Value())
	}
}

func TestMovingAverageWindow(t *testing.T) {
	m := NewMovingAverage(3)
	m.Update(1)
	m.Update(2)
	if got := m.Value(); got != 1.5 {
		t.Fatalf("partial window mean %v, want 1.5", got)
	}
	m.Update(3)
	m.Update(4) // evicts 1
	if got := m.Value(); got != 3 {
		t.Fatalf("full window mean %v, want 3", got)
	}
	if m.Len() != 3 {
		t.Fatalf("len %d, want 3", m.Len())
	}
	m.Reset()
	if m.Len() != 0 || m.Value() != 0 {
		t.Fatal("reset did not clear moving average")
	}
}

func TestMovingAverageMatchesNaive(t *testing.T) {
	if err := quick.Check(func(samples []float64, size uint8) bool {
		n := int(size%10) + 1
		m := NewMovingAverage(n)
		var window []float64
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e6 {
				continue
			}
			m.Update(s)
			window = append(window, s)
			if len(window) > n {
				window = window[1:]
			}
			naive := 0.0
			for _, v := range window {
				naive += v
			}
			naive /= float64(len(window))
			if math.Abs(m.Value()-naive) > 1e-6*(1+math.Abs(naive)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindowedMaxExpiry(t *testing.T) {
	w := NewWindowedMax(10 * time.Second)
	w.Update(0, 5)
	w.Update(1*time.Second, 3)
	if got := w.Value(); got != 5 {
		t.Fatalf("max %v, want 5", got)
	}
	// 5 was recorded at t=0; at t=11s it is older than the window.
	w.Update(11*time.Second, 2)
	if got := w.Value(); got != 3 {
		t.Fatalf("max after expiry %v, want 3", got)
	}
}

func TestWindowedMaxIsMaxOfRecentSamples(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		w := NewWindowedMax(100 * time.Millisecond)
		type sample struct {
			at time.Duration
			v  float64
		}
		var hist []sample
		now := time.Duration(0)
		for _, r := range raw {
			now += time.Duration(r%20) * time.Millisecond
			v := float64(r % 997)
			w.Update(now, v)
			hist = append(hist, sample{now, v})
			naive := math.Inf(-1)
			for _, h := range hist {
				if now-h.at <= 100*time.Millisecond {
					naive = math.Max(naive, h.v)
				}
			}
			if w.Value() != naive {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWindowedMinRTT(t *testing.T) {
	w := NewWindowedMinRTT(10 * time.Second)
	w.Update(0, 30*time.Millisecond)
	w.Update(time.Second, 50*time.Millisecond)
	if got := w.Value(); got != 30*time.Millisecond {
		t.Fatalf("min %v, want 30ms", got)
	}
	w.Update(12*time.Second, 40*time.Millisecond)
	if got := w.Value(); got != 40*time.Millisecond {
		t.Fatalf("min after expiry %v, want 40ms", got)
	}
}

func TestWindowedMinRTTLifetime(t *testing.T) {
	w := NewWindowedMinRTT(0) // never expires
	w.Update(0, 30*time.Millisecond)
	w.Update(time.Hour, 50*time.Millisecond)
	if got := w.Value(); got != 30*time.Millisecond {
		t.Fatalf("lifetime min %v, want 30ms", got)
	}
}

func TestIntervalStatsThroughput(t *testing.T) {
	s := IntervalStats{Interval: 100 * time.Millisecond, AckedBytes: 125000}
	// 125000 bytes in 0.1 s = 10 Mbit/s.
	if got := s.Throughput(); math.Abs(got-10e6) > 1 {
		t.Fatalf("throughput %v, want 10e6", got)
	}
	if (IntervalStats{}).Throughput() != 0 {
		t.Fatal("zero-interval throughput not 0")
	}
}

func TestIntervalStatsLossRate(t *testing.T) {
	s := IntervalStats{AckedPackets: 90, LostPackets: 10}
	if got := s.LossRate(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("loss rate %v, want 0.1", got)
	}
	if (IntervalStats{}).LossRate() != 0 {
		t.Fatal("empty-interval loss rate not 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}
