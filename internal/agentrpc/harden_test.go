package agentrpc

import (
	"io"
	"net"
	"testing"
	"time"
)

// panicPolicy panics when the first state value is negative — a stand-in
// for poisoned weights or buggy experiment code inside the service.
type panicPolicy struct{}

func (panicPolicy) Decide(state []float64) (float64, float64) {
	if len(state) > 0 && state[0] < 0 {
		panic("poisoned inference")
	}
	return 0.5, 0.5
}

// TestDialBackoffSuppressesDialStorm: with the service dead, a burst of
// decisions must not pay one connect timeout each — after the first failed
// dial, redials are suppressed until the backoff window expires.
func TestDialBackoffSuppressesDialStorm(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), constPolicy{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Decide([]float64{1}) // healthy round trip
	srv.Close()

	before := cl.DialAttempts()
	start := time.Now()
	for i := 0; i < 50; i++ {
		mu, delta := cl.Decide([]float64{1})
		if cl.RemoteDecisions() > 1 && (mu != 0.25 || delta != 0.75) {
			t.Fatalf("decision %d not from fallback: (%v, %v)", i, mu, delta)
		}
	}
	// 50 calls, each would previously have paid up to a full dial timeout.
	// With backoff, at most a handful of dials fit in the elapsed window.
	attempts := cl.DialAttempts() - before
	elapsed := time.Since(start)
	if max := 2 + int64(elapsed/dialBackoffBase); attempts > max {
		t.Fatalf("%d dial attempts in %v — backoff not suppressing the storm (max %d)",
			attempts, elapsed, max)
	}
	if cl.FallbackDecisions() == 0 {
		t.Fatal("no fallback decisions recorded")
	}
}

// TestClientReconnectsAfterServerReturns: backoff must delay redials, not
// prevent them — when the service comes back, remote decisions resume.
func TestClientReconnectsAfterServerReturns(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cl, err := Dial(addr, constPolicy{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Decide([]float64{1})
	srv.Close()
	for i := 0; i < 3; i++ {
		cl.Decide([]float64{1}) // fail, enter backoff
	}

	srv2, err := Serve(addr, echoPolicy{})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	remoteBefore := cl.RemoteDecisions()
	deadline := time.Now().Add(10 * time.Second)
	for cl.RemoteDecisions() == remoteBefore {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected to the returned service")
		}
		cl.Decide([]float64{1})
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerSurvivesPanickingPolicy: a panic costs the offending connection
// only; the listener keeps serving and the client recovers by redialing.
func TestServerSurvivesPanickingPolicy(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", panicPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), constPolicy{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if mu, _ := cl.Decide([]float64{1}); mu != 0.5 {
		t.Fatalf("healthy decision answered %v, want 0.5", mu)
	}
	// Poisoned state: the server connection dies mid-request, the client
	// must fall back rather than hang or crash.
	if mu, delta := cl.Decide([]float64{-1}); mu != 0.25 || delta != 0.75 {
		t.Fatalf("poisoned decision (%v, %v), want the fallback (0.25, 0.75)", mu, delta)
	}
	if got := srv.Panics(); got != 1 {
		t.Fatalf("server recorded %d panics, want 1", got)
	}
	// The service itself must still be alive for a fresh (healthy) request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if mu, _ := cl.Decide([]float64{1}); mu == 0.5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never answered again after a policy panic")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDropsHungConnection: a connected peer that never sends a request
// must be reclaimed by the read deadline, not hold its goroutine forever.
func TestServerDropsHungConnection(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetReadTimeout(50 * time.Millisecond)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must close the connection, observed here as
	// EOF (or a reset) on our read within a few timeout periods.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil || err == io.ErrNoProgress {
		t.Fatalf("hung connection read returned %v, want closed-by-server", err)
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never dropped the hung connection")
	}
}
