// Package remy implements a RemyCC-style rule-table congestion controller
// (Winstein & Balakrishnan, SIGCOMM'13). Remy proper ships machine-optimized
// rule tables that were never published; this package implements the full
// RemyCC runtime — the three-feature sender state (ACK inter-arrival EWMA,
// send inter-arrival EWMA, RTT ratio) and per-ACK table-driven window/pacing
// actions — with a coarse hand-seeded default table (see DESIGN.md
// substitutions). In this repository Remy only appears in the CPU-overhead
// comparison (Fig. 14), which measures the control path, not table quality.
package remy

import (
	"time"

	"repro/internal/cc"
)

// State is RemyCC's three-feature congestion signal.
type State struct {
	AckEWMA  float64 // smoothed ACK inter-arrival time, milliseconds
	SendEWMA float64 // smoothed sender inter-send time (of acked pkts), ms
	RTTRatio float64 // last RTT / min RTT
}

// Action is one rule's response.
type Action struct {
	WindowMult  float64 // m: cwnd ← m·cwnd + b
	WindowInc   float64 // b
	IntersendMS float64 // τ: minimum time between sends (pacing), ms
}

// Rule is one cell of the rule table: a box in state space and its action.
type Rule struct {
	Lo, Hi State // inclusive lower bound, exclusive upper bound
	Act    Action
}

// contains reports whether s falls in the rule's box.
func (r Rule) contains(s State) bool {
	return s.AckEWMA >= r.Lo.AckEWMA && s.AckEWMA < r.Hi.AckEWMA &&
		s.SendEWMA >= r.Lo.SendEWMA && s.SendEWMA < r.Hi.SendEWMA &&
		s.RTTRatio >= r.Lo.RTTRatio && s.RTTRatio < r.Hi.RTTRatio
}

const inf = 1e18

// DefaultTable is a coarse stand-in for a Remy-optimized table: probe while
// the path shows no queueing, hold in a moderate band, and back off
// multiplicatively once the RTT ratio indicates a standing queue.
func DefaultTable() []Rule {
	any := State{0, 0, 0}
	cap := State{inf, inf, inf}
	return []Rule{
		{Lo: any, Hi: State{inf, inf, 1.15}, Act: Action{WindowMult: 1.0, WindowInc: 0.5, IntersendMS: 0}},
		{Lo: State{0, 0, 1.15}, Hi: State{inf, inf, 1.7}, Act: Action{WindowMult: 1.0, WindowInc: 0.05, IntersendMS: 0.1}},
		{Lo: State{0, 0, 1.7}, Hi: State{inf, inf, 2.5}, Act: Action{WindowMult: 0.98, WindowInc: 0, IntersendMS: 0.3}},
		{Lo: State{0, 0, 2.5}, Hi: cap, Act: Action{WindowMult: 0.9, WindowInc: 0, IntersendMS: 1}},
	}
}

// Remy is a rule-table controller. Construct with New.
type Remy struct {
	table []Rule
	cwnd  float64

	state    State
	lastAck  time.Duration
	lastSent time.Duration
	minRTT   time.Duration

	intersend float64 // current τ, ms

	inRecovery bool
	lastLoss   time.Duration
}

// New returns a Remy controller using the given table (nil = DefaultTable).
func New(table []Rule) *Remy {
	if table == nil {
		table = DefaultTable()
	}
	return &Remy{table: table, cwnd: 10}
}

// Name implements cc.Algorithm.
func (r *Remy) Name() string { return "remy" }

// Init implements cc.Algorithm.
func (r *Remy) Init(time.Duration) {}

// Lookup returns the action for state s (the last matching rule wins ties;
// the default table is ordered from no-queue to deep-queue).
func (r *Remy) Lookup(s State) Action {
	for _, rule := range r.table {
		if rule.contains(s) {
			return rule.Act
		}
	}
	// Out-of-table states fall back to a conservative hold.
	return Action{WindowMult: 1, WindowInc: 0, IntersendMS: 1}
}

// OnAck implements cc.Algorithm: update the three-feature state and apply
// the matched rule's action.
func (r *Remy) OnAck(a cc.Ack) {
	const alpha = 1.0 / 8
	if r.minRTT == 0 || a.RTT < r.minRTT {
		r.minRTT = a.RTT
	}
	if r.lastAck != 0 {
		gap := float64(a.Now-r.lastAck) / float64(time.Millisecond)
		r.state.AckEWMA += alpha * (gap - r.state.AckEWMA)
	}
	if r.lastSent != 0 {
		gap := float64(a.SentAt-r.lastSent) / float64(time.Millisecond)
		if gap >= 0 {
			r.state.SendEWMA += alpha * (gap - r.state.SendEWMA)
		}
	}
	r.lastAck = a.Now
	r.lastSent = a.SentAt
	r.state.RTTRatio = float64(a.RTT) / float64(r.minRTT)

	if r.inRecovery {
		if a.SentAt >= r.lastLoss {
			r.inRecovery = false
		} else {
			return
		}
	}
	act := r.Lookup(r.state)
	r.cwnd = act.WindowMult*r.cwnd + act.WindowInc/r.cwnd
	r.intersend = act.IntersendMS
	if r.cwnd < 2 {
		r.cwnd = 2
	}
	if r.cwnd > 1e6 {
		r.cwnd = 1e6
	}
}

// OnLoss implements cc.Algorithm: RemyCC tables were trained without loss
// signals; like deployed Remy evaluations we add a single multiplicative cut
// per loss event so the controller survives DropTail overflow.
func (r *Remy) OnLoss(l cc.Loss) {
	if r.inRecovery && l.SentAt < r.lastLoss {
		return
	}
	r.inRecovery = true
	r.lastLoss = l.Now
	r.cwnd /= 2
	if r.cwnd < 2 {
		r.cwnd = 2
	}
}

// CWND implements cc.Algorithm.
func (r *Remy) CWND() float64 { return r.cwnd }

// PacingRate implements cc.Algorithm: the rule's intersend time τ sets a
// packet-per-τ pacing rate; τ=0 means ack-clocked.
func (r *Remy) PacingRate() float64 {
	if r.intersend <= 0 {
		return 0
	}
	return 1500 * 8 / (r.intersend / 1e3)
}

// StateSnapshot exposes the current feature vector for tests.
func (r *Remy) StateSnapshot() State { return r.state }
