// Command jurysim runs an ad-hoc emulated scenario: one bottleneck link,
// any mix of congestion-control schemes, and prints per-flow results.
//
// Examples:
//
//	jurysim -scheme jury -rate 100 -rtt 30 -flows 3 -duration 120
//	jurysim -scheme cubic,jury -rate 50 -rtt 40 -loss 0.005
//
// The "faults" subcommand runs the robustness table instead: every scheme
// under every deterministic fault case (burst loss, reordering, duplication,
// jitter, link flaps, combined), with fairness, utilization, and
// graceful-degradation counters per cell:
//
//	jurysim faults -schemes jury,bbr,cubic -rate 60 -rtt 30 -flows 3 -duration 60
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/agentrpc"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// setupTelemetry builds a hub from the shared -telemetry/-trace-out/
// -debug-addr flags, installs it on the experiment harness, and returns it
// (nil when everything is off). The caller must Close it before exiting so
// the trace buffer flushes.
func setupTelemetry(enabled bool, traceOut, debugAddr string) *telemetry.Hub {
	hub, err := telemetry.Setup(telemetry.Options{Enabled: enabled, TraceOut: traceOut, DebugAddr: debugAddr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurysim:", err)
		os.Exit(1)
	}
	exp.Telemetry = hub
	if addr := hub.DebugAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/\n", addr)
	}
	return hub
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "faults" {
		runFaults(os.Args[2:])
		return
	}
	var (
		schemes  = flag.String("scheme", "jury", "comma-separated schemes; a single name is replicated -flows times")
		rateMbps = flag.Float64("rate", 100, "bottleneck capacity, Mbps")
		rttMS    = flag.Float64("rtt", 30, "base round-trip time, ms")
		lossRate = flag.Float64("loss", 0, "random loss fraction, e.g. 0.001")
		bufBDP   = flag.Float64("buffer", 1.5, "buffer size in BDP multiples")
		flows    = flag.Int("flows", 1, "number of flows when -scheme is a single name")
		stagger  = flag.Duration("stagger", 0, "delay between consecutive flow starts")
		duration = flag.Duration("duration", 60*time.Second, "simulation horizon")
		seed     = flag.Uint64("seed", 1, "random seed")
		series   = flag.Bool("series", false, "print 1-second throughput series per flow")
		csvPath  = flag.String("csv", "", "write per-flow time series as CSV to this path")
		shards   = flag.Int("shards", 1, "max shards for space-parallel execution (1 = sequential; results are shard-count independent)")

		telemetryOn = flag.Bool("telemetry", false, "enable the telemetry hub (implied by -trace-out/-debug-addr)")
		traceOut    = flag.String("trace-out", "", `write JSONL spans/events to this path ("-" for stderr)`)
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /metrics.json, /debug/pprof, /debug/vars on this address")
		obsOn       = flag.Bool("obs", false, "attach the streaming fairness observer (live /fairness on -debug-addr)")
		obsWindow   = flag.Duration("obs-window", 500*time.Millisecond, "fairness snapshot cadence in virtual time")
		flightDir   = flag.String("flight-dir", "", "write flight-recorder JSONL dumps here on anomaly triggers (implies -obs)")

		daemonAddr = flag.String("daemon-addr", "", "drive jury flows from a juryserve inference daemon at this address (AIMD-safe fallback on failure)")
	)
	flag.Parse()
	hub := setupTelemetry(*telemetryOn, *traceOut, *debugAddr)
	defer hub.Close()
	exp.SetupObs(*obsOn, *obsWindow, *flightDir, hub)
	exp.DefaultShards = *shards

	names := strings.Split(*schemes, ",")
	if len(names) == 1 && *flows > 1 {
		single := names[0]
		names = nil
		for i := 0; i < *flows; i++ {
			names = append(names, single)
		}
	}

	s := exp.Scenario{
		Name:        "jurysim",
		Rate:        *rateMbps * 1e6,
		OneWayDelay: time.Duration(*rttMS/2) * time.Millisecond,
		LossRate:    *lossRate,
		Horizon:     *duration,
		Seed:        *seed,
	}
	s.BufferBytes = s.BufferBDP(*bufBDP)
	var clients []*agentrpc.Client
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	for i, name := range names {
		spec := exp.FlowSpec{
			Scheme: strings.TrimSpace(name),
			Start:  time.Duration(i) * *stagger,
		}
		// Each daemon-driven jury flow gets its own client (one connection,
		// one tenant label) with the AIMD-safe fallback, so a daemon outage
		// degrades the flow instead of freezing it.
		if *daemonAddr != "" && spec.Scheme == "jury" {
			cl, err := agentrpc.DialConfig(*daemonAddr, core.AIMDPolicy{}, agentrpc.ClientConfig{
				Timeout: 10 * time.Second, // simulated time outruns wall time; don't fall back on scheduler hiccups
				Tenant:  fmt.Sprintf("jurysim-flow-%d", i),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "jurysim: daemon dial:", err)
				os.Exit(1)
			}
			cl.SetLatencyHook(hub.RPCClientHook())
			clients = append(clients, cl)
			spec.CC = func(seed uint64) cc.Algorithm {
				cfg := core.DefaultConfig()
				cfg.Seed = seed
				return core.New(cfg, cl)
			}
		}
		s.Flows = append(s.Flows, spec)
	}

	res, err := exp.Run(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurysim:", err)
		os.Exit(1)
	}

	fmt.Printf("link: %.1f Mbps, %.0f ms RTT, %.2f%% loss, %d B buffer — utilization %.3f\n",
		*rateMbps, *rttMS, *lossRate*100, s.BufferBytes, res.Utilization)
	var shares []float64
	rows := make([][]string, 0, len(res.Flows))
	for _, f := range res.Flows {
		st := f.Stats()
		shares = append(shares, st.AvgThroughputBps)
		rows = append(rows, []string{
			f.Name(),
			exp.FmtMbps(st.AvgThroughputBps),
			fmt.Sprintf("%.1f", float64(st.AvgRTT)/1e6),
			fmt.Sprintf("%.1f", float64(st.MinRTT)/1e6),
			fmt.Sprintf("%.3f%%", st.LossRate*100),
		})
	}
	fmt.Print(exp.FormatTable([]string{"flow", "Mbps", "avgRTT(ms)", "minRTT(ms)", "loss"}, rows))
	if len(res.Flows) > 1 {
		fmt.Printf("Jain index (lifetime means): %.3f\n", metrics.JainIndex(shares))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jurysim:", err)
			os.Exit(1)
		}
		if err := report.WriteFlowSeriesCSV(f, res.Flows); err != nil {
			fmt.Fprintln(os.Stderr, "jurysim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "jurysim:", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}

	if *series {
		printSeries(res)
	}
}

// runFaults is the `jurysim faults` subcommand: the robustness table of
// EXPERIMENTS.md (every scheme × every fault case, run checked and in
// parallel).
func runFaults(args []string) {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	var (
		schemes  = fs.String("schemes", "jury,bbr,cubic", "comma-separated schemes to stress")
		rateMbps = fs.Float64("rate", 60, "bottleneck capacity, Mbps")
		rttMS    = fs.Float64("rtt", 30, "base round-trip time, ms")
		flows    = fs.Int("flows", 3, "homogeneous flows per scenario")
		duration = fs.Duration("duration", 60*time.Second, "simulation horizon")
		seed     = fs.Uint64("seed", 1, "random seed")

		telemetryOn = fs.Bool("telemetry", false, "enable the telemetry hub (implied by -trace-out/-debug-addr)")
		traceOut    = fs.String("trace-out", "", `write JSONL spans/events to this path ("-" for stderr)`)
		debugAddr   = fs.String("debug-addr", "", "serve /metrics, /metrics.json, /debug/pprof, /debug/vars on this address")
		obsOn       = fs.Bool("obs", false, "attach the streaming fairness observer (live /fairness on -debug-addr)")
		obsWindow   = fs.Duration("obs-window", 500*time.Millisecond, "fairness snapshot cadence in virtual time")
		flightDir   = fs.String("flight-dir", "", "write flight-recorder JSONL dumps here on anomaly triggers (implies -obs)")
	)
	fs.Parse(args)
	hub := setupTelemetry(*telemetryOn, *traceOut, *debugAddr)
	defer hub.Close()
	exp.SetupObs(*obsOn, *obsWindow, *flightDir, hub)

	o := exp.RobustnessOptions{
		Rate:     *rateMbps * 1e6,
		OneWay:   time.Duration(*rttMS/2) * time.Millisecond,
		Flows:    *flows,
		Lifetime: *duration,
		Seed:     *seed,
	}
	for _, name := range strings.Split(*schemes, ",") {
		if name = strings.TrimSpace(name); name != "" {
			o.Schemes = append(o.Schemes, name)
		}
	}
	rows, err := exp.RobustnessTable(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurysim:", err)
		os.Exit(1)
	}
	fmt.Printf("robustness table: %.1f Mbps, %.0f ms RTT, %d flows, %v, seed %d (all runs invariant-checked)\n",
		*rateMbps, *rttMS, *flows, *duration, *seed)
	fmt.Print(exp.FormatRobustnessTable(rows))
}

func printSeries(res *exp.RunResult) {
	for _, f := range res.Flows {
		fmt.Printf("\n%s throughput (Mbps) per second:\n", f.Name())
		var acc float64
		var n int
		next := time.Second
		for _, p := range f.Series() {
			acc += p.ThroughputBps
			n++
			if p.T >= next {
				fmt.Printf("  t=%3ds %8.2f\n", int(next.Seconds()), acc/float64(n)/1e6)
				acc, n = 0, 0
				next += time.Second
			}
		}
	}
}
