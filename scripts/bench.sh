#!/bin/sh
# bench.sh — run the hot-path micro-benchmarks and record them as
# BENCH_harness.json for before/after comparison.
#
# Covers the per-step allocation work: event scheduling (simcore), full
# scenario simulation (exp), NN inference/backprop and the batched kernels
# (nn), replay sampling and the TD3 update loop (rl). Usage:
#
#   scripts/bench.sh             # writes BENCH_harness.json in the repo root
#   OUT=/tmp/b.json scripts/bench.sh
#   scripts/bench.sh --smoke     # 1-iteration run: verifies the benchmarks
#                                # still execute (check.sh calls this)
#   scripts/bench.sh --compare   # re-run and fail on a >20% ns/op regression
#                                # or any allocs/op increase vs the recorded
#                                # baseline (BASE=<file> to override)
set -eu
cd "$(dirname "$0")/.."

BENCHES='BenchmarkEngineSchedule|BenchmarkMLPForward|BenchmarkMLPBackward|BenchmarkReplaySample|BenchmarkTD3Update|BenchmarkScenario|BenchmarkServeBatch'

MODE=record
case "${1:-}" in
--smoke) MODE=smoke ;;
--compare) MODE=compare ;;
"") ;;
*) echo "usage: $0 [--smoke|--compare]" >&2; exit 2 ;;
esac

if [ "$MODE" = smoke ]; then
    # One iteration per benchmark: proves the harness still runs end to end
    # without paying for statistically stable timings. The huge-mesh scenario
    # is scaled down from its default 10k flows (and the million-flow capacity
    # proof from its default 1M) unless the caller overrides.
    JURY_HUGE_FLOWS=${JURY_HUGE_FLOWS:-400} \
    JURY_MILLION_FLOWS=${JURY_MILLION_FLOWS:-2000} \
    go test -run '^$' -bench "$BENCHES" -benchtime 1x -benchmem \
        ./internal/simcore ./internal/nn ./internal/rl ./internal/exp \
        ./internal/agentrpc >/dev/null
    echo "bench smoke OK"
    exit 0
fi

if [ "$MODE" = compare ]; then
    # The comparison run keeps the million-flow proof small: its figures of
    # merit (bytes/flow, allocs) are recorded by the full record runs, and a
    # 1M-flow iteration would dominate the gate's wall time. Override with
    # JURY_MILLION_FLOWS to compare at full scale.
    JURY_MILLION_FLOWS=${JURY_MILLION_FLOWS:-20000}
    export JURY_MILLION_FLOWS
fi

TMP=$(mktemp)
JSONTMP=$(mktemp)
trap 'rm -f "$TMP" "$JSONTMP"' EXIT

go test -run '^$' -bench 'BenchmarkEngineSchedule' -benchmem ./internal/simcore | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkMLPForward|BenchmarkMLPBackward' -benchmem ./internal/nn | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkReplaySample|BenchmarkTD3Update' -benchmem ./internal/rl | tee -a "$TMP"
# The plain scenario and its obs-attached twin run back to back: the ns/op
# ratio between them is the streaming-observability tax, gated under
# --compare (it may not regress >5% vs the baseline's ratio).
go test -run '^$' -bench 'BenchmarkScenario$|BenchmarkScenarioObs$' -benchtime 3x -benchmem ./internal/exp | tee -a "$TMP"
# The huge parking-lot mesh (10k flows by default) runs once per shard count:
# a single iteration is already millions of events, and the events/sec column
# is the figure of merit for the sharded engine.
go test -run '^$' -bench 'BenchmarkScenarioHuge' -benchtime 1x -benchmem ./internal/exp | tee -a "$TMP"
# The million-flow capacity proof (JURY_MILLION_FLOWS flows, default 1_000_000,
# 8 shards, shortened horizon): one iteration records events/sec plus the
# memory figures — bytes/flow and peak heap — that gate under --compare.
go test -run '^$' -bench 'BenchmarkScenarioMillion' -benchtime 1x -benchmem -timeout 60m ./internal/exp | tee -a "$TMP"
# The inference-daemon serving path: decisions/sec through the batcher at
# batch sizes 1, 64, and 1024 (single-request latency floor up to full GEMM
# coalescing).
go test -run '^$' -bench 'BenchmarkServeBatch' -benchmem ./internal/agentrpc | tee -a "$TMP"

# The _meta entry records provenance (plus free-form NOTES from the caller,
# e.g. shard-count speedup observations); --compare's parser only loads lines
# naming a "Benchmark...", so it is ignored by the regression gate.
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)
awk -v commit="$COMMIT" -v stamp="$STAMP" -v notes="${NOTES:-}" '
BEGIN {
    print "{"
    printf "  \"_meta\": {\"commit\": \"%s\", \"recorded_at\": \"%s\"", commit, stamp
    if (notes != "") printf ", \"notes\": \"%s\"", notes
    printf "}"
    first = 0
}
/^Benchmark/ {
    name = $1
    nsop = ""; bop = ""; allocs = ""; eps = ""; dps = ""; bpf = ""; peak = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") nsop = $(i - 1)
        if ($(i) == "B/op") bop = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
        if ($(i) == "events/sec") eps = $(i - 1)
        if ($(i) == "decisions/sec") dps = $(i - 1)
        if ($(i) == "bytes/flow") bpf = $(i - 1)
        if ($(i) == "peak-heap-bytes") peak = $(i - 1)
    }
    if (nsop == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", name, nsop
    if (eps != "") printf ", \"events_per_sec\": %s", eps
    if (dps != "") printf ", \"decisions_per_sec\": %s", dps
    if (bpf != "") printf ", \"bytes_per_flow\": %s", bpf
    if (peak != "") printf ", \"peak_heap_bytes\": %s", peak
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
' "$TMP" > "$JSONTMP"

if [ "$MODE" = record ]; then
    OUT=${OUT:-BENCH_harness.json}
    cp "$JSONTMP" "$OUT"
    echo "wrote $OUT"
    exit 0
fi

# --compare: fresh run vs recorded baseline. ns/op gets 20% headroom (shared
# machines throttle); allocs/op is exact — the pooling work must never rot.
# The huge-mesh benchmarks run a single iteration of 8 goroutines on whatever
# cores the container grants that second, so their wall time swings ±40%
# run-to-run: they get 2x headroom (their regression signal is allocs/op and
# the recorded events/sec trend, not a 1-iteration timing).
BASE=${BASE:-BENCH_harness.json}
if [ ! -f "$BASE" ]; then
    echo "bench.sh --compare: baseline $BASE not found" >&2
    exit 1
fi
awk '
function load(line,   name, n, parts) {
    if (!match(line, /"Benchmark[^"]*"/)) return ""
    name = substr(line, RSTART + 1, RLENGTH - 2)
    ns[name] = val(line, "ns_per_op")
    al[name] = val(line, "allocs_per_op")
    bf[name] = val(line, "bytes_per_flow")
    return name
}
function val(line, key,   re, s) {
    re = "\"" key "\": *[0-9.]+"
    if (!match(line, re)) return ""
    s = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *", "", s)
    return s
}
NR == FNR { if ((n = load($0)) != "") { bns[n] = ns[n]; bal[n] = al[n]; bbf[n] = bf[n] } next }
{ load($0) }
END {
    bad = 0
    for (n in ns) {
        if (!(n in bns)) { printf "NEW   %-50s %12s ns/op\n", n, ns[n]; continue }
        status = "ok"
        headroom = (n ~ /ScenarioHuge|ScenarioMillion/) ? 2.00 : 1.20
        if (bns[n] + 0 > 0 && ns[n] + 0 > bns[n] * headroom) {
            status = "SLOWER"; bad = 1
        }
        if (al[n] != "" && bal[n] != "" && al[n] + 0 > bal[n] + 0) {
            status = "ALLOCS"; bad = 1
        }
        # Memory gate: live bytes per built flow, 25% headroom. Applies only
        # to ScenarioHuge (both sides run the same default population there;
        # ScenarioMillion compares at reduced scale, where per-network fixed
        # costs amortize differently). Skipped when either side lacks the
        # metric, so old baselines keep comparing.
        if (n ~ /ScenarioHuge/ && bf[n] != "" && bbf[n] != "" && bf[n] + 0 > bbf[n] * 1.25) {
            status = "MEMORY"; bad = 1
        }
        printf "%-6s %-50s %12s -> %-12s ns/op  allocs %s -> %s", \
            status, n, bns[n], ns[n], bal[n], al[n]
        if (bf[n] != "" && bbf[n] != "") printf "  bytes/flow %s -> %s", bbf[n], bf[n]
        printf "\n"
    }
    # Obs overhead gate: the ratio of ScenarioObs ns/op to Scenario ns/op is
    # the streaming-observability tax. Absolute timings swing with machine
    # load, but both benchmarks run in the same process seconds apart, so
    # their ratio is stable — it may not regress more than 5% against the
    # baseline ratio. Skipped when either side lacks the obs benchmark (old
    # baselines keep comparing).
    ob = ""; ba = ""
    for (n in ns) {
        if (n ~ /^BenchmarkScenarioObs(-|$)/) ob = n
        else if (n ~ /^BenchmarkScenario(-|$)/) ba = n
    }
    if (ob != "" && ba != "" && (ob in bns) && (ba in bns) && \
        bns[ba] + 0 > 0 && bns[ob] + 0 > 0 && ns[ba] + 0 > 0 && ns[ob] + 0 > 0) {
        r = (ns[ob] + 0) / (ns[ba] + 0)
        br = (bns[ob] + 0) / (bns[ba] + 0)
        printf "RATIO  obs-overhead (ScenarioObs/Scenario ns/op)   %.4f -> %.4f\n", br, r
        if (r > br * 1.05) {
            printf "OBS    streaming-observability overhead ratio regressed >5%%\n"
            bad = 1
        }
    }
    exit bad
}
' "$BASE" "$JSONTMP" || { echo "bench.sh --compare: regression vs $BASE" >&2; exit 1; }
echo "bench compare OK (baseline $BASE)"
