// Package vivace implements PCC Vivace (Dong et al., NSDI'18), the online
// learning baseline: the sender runs paired monitor intervals at rate
// r·(1±ε), scores each with a latency-gradient utility function, and moves
// the rate along the utility gradient with confidence amplification. Its
// control frequency is RTT-bound, which is exactly the slow-convergence
// behaviour the paper shows in Fig. 7(f) and Fig. 12.
package vivace

import (
	"math"
	"time"

	"repro/internal/cc"
	"repro/internal/simcore"
)

const (
	// Utility function constants from the Vivace paper: U(x) = x^Exponent −
	// B·x·(dRTT/dt) − C·x·L, with x in Mbit/s.
	Exponent = 0.9
	B        = 900.0
	C        = 11.35

	// Epsilon is the probing rate perturbation.
	Epsilon = 0.05

	tick      = 10 * time.Millisecond
	minMI     = 50 * time.Millisecond
	startRate = 2e6 // 2 Mbit/s
	minRate   = 0.2e6
	maxConf   = 8
)

type phase int

const (
	phaseStarting  phase = iota
	phaseProbeUp         // measuring r·(1+ε)
	phaseProbeDown       // measuring r·(1−ε)
)

// miAgg accumulates one monitor interval.
type miAgg struct {
	start      time.Duration
	ackedBytes int64
	acked      int64
	lost       int64
	firstRTT   time.Duration
	lastRTT    time.Duration
}

// Vivace is a PCC Vivace controller. Construct with New.
type Vivace struct {
	rate    float64 // base rate, bits/second
	current float64 // rate actually enforced this MI
	ph      phase

	mi       miAgg
	miLen    time.Duration
	srtt     time.Duration
	rng      *simcore.RNG
	upFirst  bool // probe order randomization
	uUp      float64
	uPrev    float64
	havePrev bool

	conf    int // consecutive same-direction moves
	lastDir int
}

// New returns a Vivace controller in its STARTING phase.
func New(seed uint64) *Vivace {
	return &Vivace{
		rate:    startRate,
		current: startRate,
		ph:      phaseStarting,
		miLen:   minMI,
		rng:     simcore.NewRNG(seed),
	}
}

// Name implements cc.Algorithm.
func (v *Vivace) Name() string { return "vivace" }

// Init implements cc.Algorithm.
func (v *Vivace) Init(now time.Duration) { v.mi.start = now }

// OnAck implements cc.Algorithm (RTT bookkeeping only; control is MI-based).
func (v *Vivace) OnAck(a cc.Ack) {
	if v.srtt == 0 {
		v.srtt = a.RTT
	} else {
		v.srtt += (a.RTT - v.srtt) / 8
	}
}

// OnLoss implements cc.Algorithm. Loss enters the MI utility, not a direct
// window cut.
func (v *Vivace) OnLoss(cc.Loss) {}

// ControlInterval implements cc.IntervalAlgorithm.
func (v *Vivace) ControlInterval() time.Duration { return tick }

// OnInterval implements cc.IntervalAlgorithm: accumulate the tick into the
// current monitor interval and close the MI when it has lasted ~2 RTTs.
//
// Feedback (ACKs and loss detections) trails the packets that caused it by
// one RTT, so an MI spans two RTTs and scores only the feedback arriving in
// its second half — that feedback belongs to this MI's own packets, not to
// the previous probe's. This per-MI attribution is exactly why PCC schemes
// need multiple RTTs per decision, the slow-convergence behaviour the paper
// highlights (Fig. 7(f), Fig. 12).
func (v *Vivace) OnInterval(s cc.IntervalStats) {
	v.miLen = 2 * v.srtt
	if v.miLen < 2*minMI {
		v.miLen = 2 * minMI
	}
	if s.Now-v.mi.start >= v.miLen/2 {
		v.mi.ackedBytes += s.AckedBytes
		v.mi.acked += s.AckedPackets
		v.mi.lost += s.LostPackets
		if s.AvgRTT > 0 {
			if v.mi.firstRTT == 0 {
				v.mi.firstRTT = s.AvgRTT
			}
			v.mi.lastRTT = s.AvgRTT
		}
	}
	if s.Now-v.mi.start < v.miLen {
		return
	}
	// Statistical significance: don't score an MI from a handful of
	// packets unless it has stretched well past its nominal length.
	if v.mi.acked+v.mi.lost < 20 && s.Now-v.mi.start < 4*v.miLen {
		return
	}
	u := v.utility(s.Now)
	v.mi = miAgg{start: s.Now}
	v.step(u)
}

// utility scores the just-finished MI. Following PCC, the throughput term
// uses the rate the sender *enforced* during the MI (the decision variable),
// while the penalty terms use measured loss and latency gradient — measured
// goodput would add sampling noise larger than the ±ε probe signal.
func (v *Vivace) utility(now time.Duration) float64 {
	// Stats were collected over the second half of the MI.
	dur := (now - v.mi.start).Seconds() / 2
	if dur <= 0 {
		dur = v.miLen.Seconds() / 2
	}
	xMbps := v.current / 1e6
	var loss float64
	if v.mi.acked+v.mi.lost > 0 {
		loss = float64(v.mi.lost) / float64(v.mi.acked+v.mi.lost)
	}
	var dldt float64
	if v.mi.firstRTT > 0 && v.mi.lastRTT > v.mi.firstRTT {
		dldt = (v.mi.lastRTT - v.mi.firstRTT).Seconds() / dur
	}
	// Latency-gradient noise filter (Vivace §4.2): transient jitter of a few
	// packets would otherwise dominate the utility via the B·x·dldt term.
	if dldt < 0.02 {
		dldt = 0
	}
	return utilityFn(xMbps, dldt, loss)
}

// utilityFn is the Vivace utility (exported via Utility for tests).
func utilityFn(xMbps, dldt, loss float64) float64 {
	if xMbps <= 0 {
		return 0
	}
	return math.Pow(xMbps, Exponent) - B*xMbps*dldt - C*xMbps*loss
}

// Utility exposes the utility function for tests and analysis.
func Utility(xMbps, dldt, loss float64) float64 { return utilityFn(xMbps, dldt, loss) }

// step advances the PCC state machine with the utility of the closed MI.
func (v *Vivace) step(u float64) {
	switch v.ph {
	case phaseStarting:
		// A 5% margin keeps low-packet-count utility noise from aborting
		// startup prematurely.
		if !v.havePrev || u >= v.uPrev-0.05*absf(v.uPrev) {
			v.havePrev = true
			if u > v.uPrev {
				v.uPrev = u
			}
			v.rate *= 2
			v.current = v.rate
			return
		}
		// Utility dropped: undo the last doubling and start probing.
		v.rate /= 2
		v.ph = phaseProbeUp
		v.upFirst = v.rng.Bernoulli(0.5)
		v.current = v.probeRate(true)
	case phaseProbeUp:
		v.uUp = u
		v.ph = phaseProbeDown
		v.current = v.probeRate(false)
	case phaseProbeDown:
		uDown := u
		uUp := v.uUp
		if !v.upFirst {
			// The "up" MI actually ran second; swap the scores.
			uUp, uDown = uDown, uUp
		}
		v.move(uUp, uDown)
		v.ph = phaseProbeUp
		v.upFirst = v.rng.Bernoulli(0.5)
		v.current = v.probeRate(true)
	}
}

// probeRate returns the rate for the next probe MI, honouring the random
// up/down ordering.
func (v *Vivace) probeRate(firstOfPair bool) float64 {
	up := firstOfPair == v.upFirst
	if up {
		return v.rate * (1 + Epsilon)
	}
	return v.rate * (1 - Epsilon)
}

// move applies one gradient step with confidence amplification and the
// swing bound ω from the Vivace paper.
func (v *Vivace) move(uUp, uDown float64) {
	gamma := (uUp - uDown) / (2 * Epsilon * v.rate / 1e6) // utility per Mbps
	dir := 1
	if gamma < 0 {
		dir = -1
	}
	if dir == v.lastDir {
		if v.conf < maxConf {
			v.conf++
		}
	} else {
		v.conf = 0
	}
	v.lastDir = dir

	// Rate-proportional step gain so convergence speed is scale-free, with
	// confidence amplification; the swing bound ω caps the per-step change.
	theta := 0.02 * v.rate * float64(v.conf+1)
	delta := theta * gamma
	omega := 0.05 + 0.02*float64(v.conf)
	if omega > 0.3 {
		omega = 0.3
	}
	delta = cc.Clamp(delta, -omega*v.rate, omega*v.rate)
	v.rate += delta
	if v.rate < minRate {
		v.rate = minRate
	}
}

// absf is math.Abs without shadowing concerns in hot paths.
func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// CWND implements cc.Algorithm: a loose bound of 2 rate·RTT so the flow is
// rate-limited, not window-limited.
func (v *Vivace) CWND() float64 {
	if v.srtt == 0 {
		return 100
	}
	w := 2 * v.current * v.srtt.Seconds() / 8 / 1500
	if w < 10 {
		w = 10
	}
	return w
}

// PacingRate implements cc.Algorithm.
func (v *Vivace) PacingRate() float64 { return v.current }

// Rate exposes the base (unperturbed) rate for tests.
func (v *Vivace) Rate() float64 { return v.rate }
