// Package traces provides bottleneck bandwidth traces for the network
// emulator: constant rates, piecewise-constant step traces, and a synthetic
// LTE generator reproducing the rapid capacity fluctuation of the cellular
// traces used in the paper's Fig. 12 (which come from Winstein et al.,
// NSDI'13 — proprietary capture; see DESIGN.md for the substitution note).
package traces

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simcore"
)

// Trace reports a link's capacity over time. Implementations are
// piecewise-constant: the rate returned at time t holds until the next
// breakpoint.
type Trace interface {
	// RateAt reports the capacity in bits/second at virtual time t.
	RateAt(t time.Duration) float64
}

// Constant is a fixed-capacity trace.
type Constant float64

// RateAt implements Trace.
func (c Constant) RateAt(time.Duration) float64 { return float64(c) }

// Point is one breakpoint of a step trace: the capacity becomes Rate at
// time At and holds until the next point.
type Point struct {
	At   time.Duration
	Rate float64 // bits/second
}

// Step is a piecewise-constant trace defined by sorted breakpoints. Before
// the first point it reports the first point's rate; after the last it holds
// the last rate. If Loop is positive, the trace repeats with that period.
type Step struct {
	Points []Point
	Loop   time.Duration
}

// NewStep builds a step trace, sorting points by time. It panics on an empty
// point list: a capacity-less link is always a configuration bug.
func NewStep(points []Point) *Step {
	if len(points) == 0 {
		panic("traces: step trace needs at least one point")
	}
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &Step{Points: sorted}
}

// RateAt implements Trace.
func (s *Step) RateAt(t time.Duration) float64 {
	if s.Loop > 0 {
		t = t % s.Loop
	}
	// Binary search for the last point at or before t.
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].At > t })
	if i == 0 {
		return s.Points[0].Rate
	}
	return s.Points[i-1].Rate
}

// LTEConfig parameterizes the synthetic cellular trace generator.
type LTEConfig struct {
	Mean     float64       // long-run mean capacity, bits/second
	Min      float64       // floor, bits/second
	Max      float64       // ceiling, bits/second
	Interval time.Duration // how often capacity changes
	Length   time.Duration // trace length (then loops)
	// Volatility is the per-step standard deviation as a fraction of Mean;
	// LTE links commonly swing 30-50% between seconds.
	Volatility float64
	Seed       uint64
}

// DefaultLTE mirrors the ~5 Mbps cellular link of the paper's Fig. 12:
// capacity fluctuates every 500 ms between roughly 1 and 15 Mbps around a
// 5 Mbps mean.
func DefaultLTE(seed uint64) LTEConfig {
	return LTEConfig{
		Mean:       5e6,
		Min:        1e6,
		Max:        15e6,
		Interval:   500 * time.Millisecond,
		Length:     60 * time.Second,
		Volatility: 0.4,
		Seed:       seed,
	}
}

// SynthesizeLTE builds a looping step trace via a mean-reverting bounded
// random walk, the standard synthetic stand-in for recorded cellular traces.
func SynthesizeLTE(cfg LTEConfig) (*Step, error) {
	if cfg.Mean <= 0 || cfg.Min <= 0 || cfg.Max < cfg.Min {
		return nil, fmt.Errorf("traces: invalid LTE config %+v", cfg)
	}
	if cfg.Interval <= 0 || cfg.Length < cfg.Interval {
		return nil, fmt.Errorf("traces: LTE interval %v / length %v invalid", cfg.Interval, cfg.Length)
	}
	rng := simcore.NewRNG(cfg.Seed)
	n := int(cfg.Length / cfg.Interval)
	points := make([]Point, 0, n)
	rate := cfg.Mean
	for i := 0; i < n; i++ {
		points = append(points, Point{At: time.Duration(i) * cfg.Interval, Rate: rate})
		// Mean-reverting step: pull 30% back toward the mean, then jitter.
		rate += 0.3*(cfg.Mean-rate) + rng.Norm(0, cfg.Volatility*cfg.Mean)
		if rate < cfg.Min {
			rate = cfg.Min
		}
		if rate > cfg.Max {
			rate = cfg.Max
		}
	}
	s := NewStep(points)
	s.Loop = cfg.Length
	return s, nil
}

// Jittered wraps a base trace with multiplicative noise resampled on a fixed
// period — used by the emulated "real-world WAN" profiles (Fig. 13), where
// cross-traffic makes the available capacity non-stationary.
type Jittered struct {
	Base   Trace
	Period time.Duration
	// Amplitude is the max fractional deviation, e.g. 0.15 for ±15%.
	Amplitude float64
	Seed      uint64
}

// RateAt implements Trace. The jitter factor is a pure function of the
// period index, so the trace is deterministic and needs no state.
func (j *Jittered) RateAt(t time.Duration) float64 {
	base := j.Base.RateAt(t)
	if j.Period <= 0 || j.Amplitude <= 0 {
		return base
	}
	idx := uint64(t / j.Period)
	r := simcore.NewRNG(j.Seed ^ (idx+1)*0x9e3779b97f4a7c15)
	f := 1 + j.Amplitude*(2*r.Float64()-1)
	return base * f
}

// MeanRate reports the time-average capacity of tr over [0, horizon],
// sampled at the given resolution. Useful for computing link utilization on
// variable links.
func MeanRate(tr Trace, horizon, resolution time.Duration) float64 {
	if horizon <= 0 || resolution <= 0 {
		return tr.RateAt(0)
	}
	var sum float64
	var n int
	for t := time.Duration(0); t < horizon; t += resolution {
		sum += tr.RateAt(t)
		n++
	}
	return sum / float64(n)
}
