package simcore

import (
	"fmt"
	"sort"
	"time"
)

// This file implements conservative space-parallel discrete-event execution
// (classic null-message / time-window DES): a Coordinator advances a set of
// Engines — one per topology shard, each on its own goroutine — in lock-step
// half-open windows [W, W+L), where the window L is the minimum inter-shard
// lookahead (for the network emulator: the smallest propagation delay of any
// link whose far end lives in another shard). Any event one shard emits for
// another therefore fires at least one full window in the future, so shards
// never need to see each other's state mid-window; cross-shard events are
// exchanged only at window barriers.
//
// Determinism: within a shard, execution is the ordinary sequential engine.
// Across shards, everything that crosses a barrier is ordered by a total
// key before it touches a destination engine — injected events by
// (at, schedule time, source shard, per-source emission order), and the
// observed event stream by (at, shard) — so a sharded run is bit-reproducible
// regardless
// of goroutine scheduling, and its merged event stream folds to the same
// digest as the sequential run of the same scenario (the stream digest
// folds firing times in nondecreasing order, which both executions share;
// see internal/simcheck).

// xev is one cross-shard event waiting at a barrier.
type xev struct {
	at      time.Duration
	schedAt time.Duration // emission virtual time, preserved across the barrier
	src     int32         // emitting shard — tie-break after (at, schedAt)
	ord     uint32        // per-source emission order — final tie-break
	fn      func(any)
	arg     any
}

// evRec is one executed event buffered for merged hook delivery.
type evRec struct {
	at  time.Duration
	seq uint64
}

// xevSorter orders barrier injections by (at, schedAt, src, ord) — the same
// (at, schedAt) key the destination heap sorts by, then a deterministic
// source tie-break so insertion order (which decides residual ties) never
// depends on goroutine scheduling. It is a named pointer receiver so
// sort.Sort gets an already-boxed interface value and the per-window sort
// allocates nothing.
type xevSorter struct{ v []xev }

func (s *xevSorter) Len() int      { return len(s.v) }
func (s *xevSorter) Swap(i, j int) { s.v[i], s.v[j] = s.v[j], s.v[i] }
func (s *xevSorter) Less(i, j int) bool {
	a, b := &s.v[i], &s.v[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.ord < b.ord
}

// Shard is one partition's handle: its private engine plus the outgoing
// cross-shard buffers. Exactly one goroutine (the shard's worker, inside
// Coordinator.Run) touches a Shard during a window; the coordinator drains
// it at barriers. All buffers are reused window to window, so steady-state
// cross-shard traffic allocates nothing.
type Shard struct {
	id  int
	eng *Engine
	out [][]xev // per destination shard
	win []evRec // events executed this window, for merged hook delivery
	ord uint32  // emission counter for deterministic tie-breaks

	executed int64
	work     chan time.Duration
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's private engine.
func (s *Shard) Engine() *Engine { return s.eng }

// Send queues fn(arg) to fire at absolute virtual time at on shard dst. The
// event is injected into dst's engine at the next window barrier; at must be
// no earlier than the end of the current window (emission time plus the
// inter-shard lookahead guarantees this), which the coordinator verifies at
// the barrier. Call only from the emitting shard's own events.
func (s *Shard) Send(dst int, at time.Duration, fn func(any), arg any) {
	s.out[dst] = append(s.out[dst], xev{
		at: at, schedAt: s.eng.Now(),
		src: int32(s.id), ord: s.ord,
		fn: fn, arg: arg,
	})
	s.ord++
}

// Coordinator advances a fixed set of shards in conservative lock-step
// windows. Construct with NewCoordinator; Run may be called once.
type Coordinator struct {
	shards []*Shard
	window time.Duration

	// merged is the event hook stolen from the primary engine (shard 0) at
	// construction: the coordinator feeds it the k-way time-ordered merge of
	// every shard's window stream, so observers attached to the primary
	// engine (the simcheck checker, telemetry) see one globally ordered
	// event stream exactly as they would in a sequential run.
	merged func(at time.Duration, seq uint64)

	inbox  xevSorter // per-destination injection scratch, reused
	cursor []int     // k-way merge cursors, reused
	done   chan int
	ran    bool
}

// NewCoordinator wraps engines (one per shard) for windowed execution.
// window is the global lookahead: every cross-shard Send must land at least
// one window after its emission. window <= 0 means the shards provably never
// exchange events, and each runs straight to the horizon in one window. Any
// event hook installed on engines[0] is taken over and fed the merged
// stream; hooks on other engines are rejected, since their events would
// bypass the merge.
func NewCoordinator(engines []*Engine, window time.Duration) *Coordinator {
	if len(engines) == 0 {
		panic("simcore: NewCoordinator with no engines")
	}
	c := &Coordinator{
		window: window,
		merged: engines[0].EventHook(),
		cursor: make([]int, len(engines)),
		done:   make(chan int, len(engines)),
	}
	for i, eng := range engines {
		if i > 0 && eng.EventHook() != nil {
			panic("simcore: NewCoordinator: event hook on a non-primary engine")
		}
		s := &Shard{
			id:   i,
			eng:  eng,
			out:  make([][]xev, len(engines)),
			work: make(chan time.Duration),
		}
		if c.merged != nil {
			s := s
			eng.SetEventHook(func(at time.Duration, seq uint64) {
				s.win = append(s.win, evRec{at: at, seq: seq})
			})
		}
		c.shards = append(c.shards, s)
	}
	return c
}

// Shard returns shard i's handle (for wiring emitters before Run).
func (c *Coordinator) Shard(i int) *Shard { return c.shards[i] }

// ExecutedPerShard returns how many events each shard executed. Valid after
// Run returns.
func (c *Coordinator) ExecutedPerShard() []int64 {
	out := make([]int64, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.executed
	}
	return out
}

// Run executes all shards to the horizon (events at exactly the horizon
// fire, matching Engine.Run) and returns the total number of events
// executed. Afterwards every engine's clock sits at exactly the horizon and
// the primary engine's original event hook is restored.
func (c *Coordinator) Run(horizon time.Duration) int64 {
	if c.ran {
		panic("simcore: Coordinator.Run re-entered")
	}
	c.ran = true

	for _, s := range c.shards {
		s := s
		go func() {
			for stop := range s.work {
				s.executed += int64(s.eng.RunUntil(stop))
				c.done <- s.id
			}
		}()
	}

	stop := horizon + 1 // exclusive bound: events at exactly horizon fire
	if stop < horizon {
		stop = horizon // Duration overflow guard; unreachable in practice
	}
	window := c.window
	if window <= 0 {
		// No cross-shard edges exist: one window to the end, fully parallel.
		window = stop
	}
	w := time.Duration(0)
	for {
		// Skip idle stretches: no shard has an event before m, and with no
		// events there can be no cross-shard sends, so jumping the window
		// start to m is free and keeps sparse phases (startup, drained
		// endgames) from costing one barrier per empty window.
		m, any := c.minNextAt()
		if !any || m >= stop {
			break
		}
		if m > w {
			w = m
		}
		end := w + window
		if end > stop || end < w {
			end = stop
		}
		for _, s := range c.shards {
			s.work <- end
		}
		for range c.shards {
			<-c.done
		}
		c.deliverMerged()
		c.exchange(end)
		w = end
	}
	for _, s := range c.shards {
		close(s.work)
		if s.eng.Now() < horizon {
			s.eng.AdvanceTo(horizon)
		}
	}
	var total int64
	for _, s := range c.shards {
		total += s.executed
	}
	if c.merged != nil {
		c.shards[0].eng.SetEventHook(c.merged)
	}
	return total
}

// minNextAt reports the earliest queued event across all shards.
func (c *Coordinator) minNextAt() (time.Duration, bool) {
	var m time.Duration
	any := false
	for _, s := range c.shards {
		if at, ok := s.eng.NextAt(); ok && (!any || at < m) {
			m, any = at, true
		}
	}
	return m, any
}

// deliverMerged feeds the window's executed events to the stolen primary
// hook in global (at, shard) order. Each shard's buffer is already
// nondecreasing in at, so a k-way merge suffices; ties across shards are
// broken by shard id, which keeps delivery deterministic (equal-time events
// fold identically into the stream digest in any order).
func (c *Coordinator) deliverMerged() {
	if c.merged == nil {
		return
	}
	for i := range c.cursor {
		c.cursor[i] = 0
	}
	for {
		best := -1
		var bestAt time.Duration
		for i, s := range c.shards {
			if j := c.cursor[i]; j < len(s.win) {
				if best < 0 || s.win[j].at < bestAt {
					best, bestAt = i, s.win[j].at
				}
			}
		}
		if best < 0 {
			break
		}
		rec := c.shards[best].win[c.cursor[best]]
		c.cursor[best]++
		c.merged(rec.at, rec.seq)
	}
	for _, s := range c.shards {
		s.win = s.win[:0]
	}
}

// exchange drains every shard's outgoing buffers and injects the events
// into their destination engines in (at, schedAt, src, ord) order. end is the window
// boundary just executed: every injection must fire at or after it, or the
// emitting shard under-estimated its lookahead — a programming error worth
// dying loudly for, because the destination may already have executed past
// the event's time.
func (c *Coordinator) exchange(end time.Duration) {
	for dst, d := range c.shards {
		c.inbox.v = c.inbox.v[:0]
		for _, src := range c.shards {
			buf := src.out[dst]
			if len(buf) == 0 {
				continue
			}
			c.inbox.v = append(c.inbox.v, buf...)
			src.out[dst] = buf[:0]
		}
		if len(c.inbox.v) == 0 {
			continue
		}
		sort.Sort(&c.inbox)
		for i := range c.inbox.v {
			ev := &c.inbox.v[i]
			if ev.at < end {
				panic(fmt.Sprintf("simcore: cross-shard event at %v delivered after window end %v (lookahead violated)", ev.at, end))
			}
			d.eng.InjectArg(ev.at, ev.schedAt, ev.fn, ev.arg)
			ev.fn, ev.arg = nil, nil
		}
	}
}
