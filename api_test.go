package jury_test

import (
	"math"
	"testing"
	"time"

	jury "repro"
)

// TestPublicAPIQuickstart exercises the facade exactly the way README's
// quick start does.
func TestPublicAPIQuickstart(t *testing.T) {
	net := jury.NewNetwork(jury.NetworkConfig{Seed: 1})
	link := net.AddLink(jury.LinkConfig{
		Rate:        50e6,
		Delay:       15 * time.Millisecond,
		BufferBytes: 375_000,
	})
	flow := net.AddFlow(jury.FlowConfig{
		Name: "demo",
		Path: []*jury.Link{link},
		CC:   func() jury.CC { return jury.NewController(1) },
	})
	net.Run(30 * time.Second)
	st := flow.Stats()
	if st.AvgThroughputBps < 0.7*50e6 {
		t.Fatalf("quickstart throughput %v", st.AvgThroughputBps)
	}
	if st.MinRTT < 30*time.Millisecond {
		t.Fatalf("min RTT %v below propagation", st.MinRTT)
	}
}

func TestPublicAPIMathHelpers(t *testing.T) {
	// Eq. 5 inversion through the facade.
	est, ok := jury.EstimateOccupancy(1.1, 1.1/(1+0.1*0.5))
	if !ok || math.Abs(est-0.5) > 1e-9 {
		t.Fatalf("EstimateOccupancy = %v, %v", est, ok)
	}
	// Eq. 6 through the facade.
	if a := jury.PostProcess(0.2, 0.5, 0.5); a != 0.2 {
		t.Fatalf("PostProcess = %v", a)
	}
	// Eq. 9 through the facade.
	cfg := jury.DefaultConfig()
	r := jury.Reward(cfg, 0.8, 30*time.Millisecond, 30*time.Millisecond, 0, 0)
	if math.IsNaN(r) {
		t.Fatal("reward NaN")
	}
}

func TestPublicAPIConfigs(t *testing.T) {
	cfg := jury.DefaultConfig()
	if cfg.Interval != 30*time.Millisecond || cfg.Alpha != 0.025 {
		t.Fatalf("Table 2 defaults wrong: %+v", cfg)
	}
	d := jury.DefaultTrainingDomain()
	if d.MaxBandwidth != 100e6 || d.MaxFlows != 10 {
		t.Fatalf("Table 1 defaults wrong: %+v", d)
	}
	if opts := jury.DefaultTrainOptions(1); opts.Actors != 8 {
		t.Fatalf("train options wrong: %+v", opts)
	}
}

func TestPublicAPICustomPolicy(t *testing.T) {
	cfg := jury.DefaultConfig()
	cfg.Seed = 9
	ctrl := jury.NewControllerWithPolicy(cfg, jury.NewReferencePolicy())
	if ctrl.Name() != "jury" {
		t.Fatal("controller identity wrong")
	}
	var _ jury.Policy = jury.NewReferencePolicy()
	var _ jury.Policy = &jury.NNPolicy{}
}
