// Package orca implements the Orca baseline (Abbasloo et al., SIGCOMM'20):
// hybrid congestion control in which classic CUBIC runs underneath and a
// DRL agent periodically rescales the congestion window, cwnd ←
// cwnd_cubic · 2^a with a ∈ [−1, 1]. The paper's critique (§2.2, Fig. 7h,
// Fig. 10) is that the two layers interleave unscrutinized: the RL override
// erodes CUBIC's fairness guarantees, while CUBIC's loss response drags
// performance down on lossy links, and the learned component collapses when
// the delay leaves its training range. The SurrogatePolicy encodes that
// converged behaviour (see DESIGN.md).
package orca

import (
	"math"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
)

// HistoryLen is the number of stacked monitor intervals in the state.
const HistoryLen = 8

// FeaturesPerInterval is the per-interval feature count: delivery rate
// normalized by the observed max, latency ratio, latency gradient, loss.
const FeaturesPerInterval = 4

// StateDim is the policy input width.
const StateDim = HistoryLen * FeaturesPerInterval

// Policy maps Orca's state to the cwnd exponent a in [-1, 1].
type Policy interface {
	Act(state []float64) float64
}

// Config parameterizes the controller.
type Config struct {
	// Interval is Orca's monitor period (coarser than Jury's: 200 ms).
	Interval time.Duration
	// TrainedMaxRTT is the largest base RTT in the training domain
	// (Table 1: 60 ms); beyond ~2x the learned component misbehaves
	// (Fig. 10f shows <20% utilization at high base delay).
	TrainedMaxRTT time.Duration
	Seed          uint64
}

// DefaultConfig mirrors the §5 retraining setup.
func DefaultConfig() Config {
	return Config{Interval: 200 * time.Millisecond, TrainedMaxRTT: 60 * time.Millisecond}
}

// Orca is the hybrid controller. Construct with New.
type Orca struct {
	cfg    Config
	policy Policy
	cubic  *cubic.Cubic

	minRTT  time.Duration
	prevRTT time.Duration
	maxThr  float64

	history   []float64
	lastState []float64
	lastExp   float64
}

// New returns an Orca controller (nil policy selects the surrogate).
func New(cfg Config, policy Policy) *Orca {
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.TrainedMaxRTT <= 0 {
		cfg.TrainedMaxRTT = 60 * time.Millisecond
	}
	o := &Orca{
		cfg:     cfg,
		cubic:   cubic.New(),
		policy:  policy,
		history: make([]float64, StateDim),
	}
	if o.policy == nil {
		o.policy = NewSurrogatePolicy(cfg)
	}
	return o
}

// Name implements cc.Algorithm.
func (o *Orca) Name() string { return "orca" }

// Init implements cc.Algorithm.
func (o *Orca) Init(now time.Duration) { o.cubic.Init(now) }

// OnAck implements cc.Algorithm: the classic layer stays ack-clocked.
func (o *Orca) OnAck(a cc.Ack) {
	if o.minRTT == 0 || a.RTT < o.minRTT {
		o.minRTT = a.RTT
	}
	o.cubic.OnAck(a)
}

// OnLoss implements cc.Algorithm.
func (o *Orca) OnLoss(l cc.Loss) { o.cubic.OnLoss(l) }

// ControlInterval implements cc.IntervalAlgorithm.
func (o *Orca) ControlInterval() time.Duration { return o.cfg.Interval }

// OnInterval implements cc.IntervalAlgorithm: the learned layer rescales
// CUBIC's window once per monitor period.
func (o *Orca) OnInterval(s cc.IntervalStats) {
	if s.AckedPackets == 0 {
		return
	}
	thr := s.DeliveryRate()
	if thr > o.maxThr {
		o.maxThr = thr
	}
	var latGrad float64
	if o.prevRTT > 0 {
		latGrad = (s.AvgRTT - o.prevRTT).Seconds() / s.Interval.Seconds()
	}
	o.prevRTT = s.AvgRTT
	latRatio := 1.0
	if o.minRTT > 0 {
		latRatio = float64(s.AvgRTT) / float64(o.minRTT)
	}

	copy(o.history, o.history[FeaturesPerInterval:])
	n := len(o.history)
	thrNorm := 0.0
	if o.maxThr > 0 {
		thrNorm = thr / o.maxThr
	}
	o.history[n-4] = cc.Clamp(thrNorm, 0, 1)
	o.history[n-3] = cc.Clamp(latRatio-1, 0, 10)
	o.history[n-2] = cc.Clamp(latGrad, -1, 1)
	o.history[n-1] = cc.Clamp(s.LossRate(), 0, 1)

	o.lastState = append(o.lastState[:0], o.history...)
	// Out-of-domain detection happens in the surrogate via the latency
	// features; trained policies would see the same saturated inputs.
	exp := cc.Clamp(o.policy.Act(o.lastState), -1, 1)
	if sp, ok := o.policy.(*SurrogatePolicy); ok && sp.outOfDomain(o) {
		exp = -1 // collapsed learned component (Fig. 10f)
	}
	o.lastExp = exp
	target := o.cubic.CWND() * math.Pow(2, exp)
	if exp < -0.5 {
		// A large decrease sets both cwnd and ssthresh in the kernel,
		// re-anchoring CUBIC at the reduced window — the interleaving that
		// lets a misbehaving learned layer drag the hybrid down (§2.2).
		o.cubic.Rebase(target)
	} else {
		o.cubic.SetCWND(target)
	}
}

// CWND implements cc.Algorithm.
func (o *Orca) CWND() float64 { return o.cubic.CWND() }

// PacingRate implements cc.Algorithm: like CUBIC, Orca is ack-clocked.
func (o *Orca) PacingRate() float64 { return 0 }

// LastExponent exposes the last applied 2^a exponent for tests.
func (o *Orca) LastExponent() float64 { return o.lastExp }

// LastState exposes the most recent policy input (training harness).
func (o *Orca) LastState() []float64 { return o.lastState }

// SurrogatePolicy encodes a converged Orca agent: in-domain it nudges CUBIC
// toward full utilization (positive exponents while the queue is shallow,
// negative as latency climbs); out of its trained delay range the learned
// component degrades to strongly negative outputs.
type SurrogatePolicy struct {
	cfg Config
}

// NewSurrogatePolicy builds the surrogate.
func NewSurrogatePolicy(cfg Config) *SurrogatePolicy {
	return &SurrogatePolicy{cfg: cfg}
}

// outOfDomain reports whether the flow's base RTT left the training range.
func (p *SurrogatePolicy) outOfDomain(o *Orca) bool {
	return o.minRTT > 2*p.cfg.TrainedMaxRTT
}

// Act implements Policy.
func (p *SurrogatePolicy) Act(state []float64) float64 {
	n := len(state)
	thrNorm := state[n-4]
	latRatio := state[n-3]
	loss := state[n-1]
	var grad float64
	var cnt int
	for i := 2; i < n; i += FeaturesPerInterval {
		grad += state[i]
		cnt++
	}
	if cnt > 0 {
		grad /= float64(cnt)
	}
	switch {
	case loss > 0.02 || grad > 0.05 || latRatio > 0.6:
		return cc.Clamp(-4*grad-0.8*(latRatio-0.3)-5*loss, -1, 0)
	case thrNorm < 0.9 && latRatio < 0.2:
		// CUBIC below the observed ceiling with an empty queue: boost.
		return 0.7
	default:
		return 0.1
	}
}
