// Record wire format. Hand-rolled little-endian encoding in the style of
// agentrpc's request framing: a pure append function and a pure decoder that
// are exact inverses (decodeRecord(b) == rec ⇒ appendRecord(nil, rec) == b),
// which is the round-trip property FuzzWALDecode drives. The decoder is
// strict — unknown versions, non-canonical booleans, oversized counts, and
// trailing bytes are all errors — so every payload has exactly one valid
// encoding and a corrupted record can never silently decode into a
// different one.
package runstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/netsim"
)

const (
	// recVersion 2 added FlowRecord.LateMeanBps and the optional Record
	// .Stream summary. The decoder is strict-single-version: v1 records fail
	// decode (the store treats them as missing and re-runs the experiment),
	// which keeps the encode/decode bijection exact.
	recVersion = 2

	// Frame layout: u32 payload length, u32 CRC32C of the payload, payload.
	frameHdrLen = 8
	// maxFrame bounds a single record. Series-heavy records of huge sweeps
	// run to megabytes; anything beyond this is torn or corrupt framing.
	maxFrame = 64 << 20

	// Per-element minimum encoded sizes, used to bound count fields against
	// the remaining input before allocating.
	minStrBytes   = 4
	minFlowBytes  = 4 + 8 + 9*8 + 2*8 + 2*8 + 8 + 4
	minPointBytes = 7 * 8
	minShardBytes = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendRecord serializes rec's payload (without framing) onto dst.
func appendRecord(dst []byte, rec *Record) []byte {
	dst = append(dst, recVersion)
	dst = append(dst, rec.Key[:]...)
	dst = appendStr(dst, rec.Scenario)
	dst = appendU32(dst, uint32(len(rec.Schemes)))
	for _, s := range rec.Schemes {
		dst = appendStr(dst, s)
	}
	dst = appendU64(dst, rec.Seed)
	dst = appendI64(dst, rec.AppendedAt)
	dst = appendI64(dst, int64(rec.Horizon))
	dst = appendU64(dst, rec.Digest)
	dst = appendBool(dst, rec.Checked)
	dst = appendF64(dst, rec.Utilization)
	dst = appendI64(dst, rec.FaultDrops)
	dst = appendI64(dst, rec.Reordered)
	dst = appendI64(dst, rec.Duplicated)
	dst = appendU32(dst, uint32(len(rec.Flows)))
	for i := range rec.Flows {
		f := &rec.Flows[i]
		dst = appendStr(dst, f.Stats.Name)
		dst = appendI64(dst, int64(f.BaseRTT))
		dst = appendI64(dst, int64(f.Stats.Start))
		dst = appendI64(dst, int64(f.Stats.ActiveFor))
		dst = appendI64(dst, f.Stats.SentPackets)
		dst = appendI64(dst, f.Stats.SentBytes)
		dst = appendI64(dst, f.Stats.AckedPackets)
		dst = appendI64(dst, f.Stats.AckedBytes)
		dst = appendI64(dst, f.Stats.LostPackets)
		dst = appendI64(dst, int64(f.Stats.MinRTT))
		dst = appendI64(dst, int64(f.Stats.AvgRTT))
		dst = appendF64(dst, f.Stats.AvgThroughputBps)
		dst = appendF64(dst, f.Stats.LossRate)
		dst = appendI64(dst, f.Degraded)
		dst = appendI64(dst, f.NonFinite)
		dst = appendF64(dst, f.LateMeanBps)
		dst = appendU32(dst, uint32(len(f.Series)))
		for _, p := range f.Series {
			dst = appendI64(dst, int64(p.T))
			dst = appendF64(dst, p.ThroughputBps)
			dst = appendF64(dst, p.SendRateBps)
			dst = appendI64(dst, int64(p.AvgRTT))
			dst = appendF64(dst, p.LossRate)
			dst = appendF64(dst, p.Cwnd)
			dst = appendF64(dst, p.PacingBps)
		}
	}
	dst = appendI64(dst, rec.Events)
	dst = appendU32(dst, uint32(len(rec.ShardExecuted)))
	for _, e := range rec.ShardExecuted {
		dst = appendI64(dst, e)
	}
	dst = appendBool(dst, rec.Stream != nil)
	if s := rec.Stream; s != nil {
		dst = appendF64(dst, s.FinalJain)
		dst = appendF64(dst, s.MinWindowJain)
		dst = appendI64(dst, s.Snapshots)
		dst = appendI64(dst, s.Samples)
		dst = appendF64(dst, s.RateP50)
		dst = appendF64(dst, s.RateP95)
		dst = appendF64(dst, s.RateP99)
		dst = appendF64(dst, s.RTTP50)
		dst = appendF64(dst, s.RTTP95)
		dst = appendF64(dst, s.RTTP99)
		dst = appendI64(dst, s.Drops)
		dst = appendI64(dst, s.Faults)
		dst = appendI64(dst, s.Degraded)
	}
	return dst
}

// reader is a cursor over an untrusted payload; the first failure latches.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.fail("runstore: truncated payload at offset %d (want %d bytes, %d left)", r.off, n, r.remaining())
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64         { return int64(r.u64()) }
func (r *reader) f64() float64       { return math.Float64frombits(r.u64()) }
func (r *reader) dur() time.Duration { return time.Duration(r.i64()) }

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if int64(n) > int64(r.remaining()) {
		r.fail("runstore: string length %d exceeds %d remaining bytes", n, r.remaining())
		return ""
	}
	return string(r.bytes(int(n)))
}

func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("runstore: non-canonical boolean")
		return false
	}
}

// count validates an element count against the remaining bytes so a
// corrupted length field cannot drive an outsized allocation.
func (r *reader) count(what string, minBytes int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minBytes) > int64(r.remaining()) {
		r.fail("runstore: %s count %d exceeds %d remaining bytes", what, n, r.remaining())
		return 0
	}
	return int(n)
}

// decodeRecord parses one framed payload. It fails on any structural error
// and on trailing bytes, so decode∘encode is the identity on valid records
// and encode∘decode is the identity on valid payloads.
func decodeRecord(b []byte) (*Record, error) {
	r := &reader{b: b}
	if v := r.u8(); r.err == nil && v != recVersion {
		return nil, fmt.Errorf("runstore: record version %d, want %d", v, recVersion)
	}
	rec := &Record{}
	copy(rec.Key[:], r.bytes(len(rec.Key)))
	rec.Scenario = r.str()
	if n := r.count("scheme", minStrBytes); n > 0 {
		rec.Schemes = make([]string, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			rec.Schemes = append(rec.Schemes, r.str())
		}
	}
	rec.Seed = r.u64()
	rec.AppendedAt = r.i64()
	rec.Horizon = r.dur()
	rec.Digest = r.u64()
	rec.Checked = r.boolean()
	rec.Utilization = r.f64()
	rec.FaultDrops = r.i64()
	rec.Reordered = r.i64()
	rec.Duplicated = r.i64()
	if n := r.count("flow", minFlowBytes); n > 0 {
		rec.Flows = make([]FlowRecord, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var f FlowRecord
			f.Stats.Name = r.str()
			f.BaseRTT = r.dur()
			f.Stats.Start = r.dur()
			f.Stats.ActiveFor = r.dur()
			f.Stats.SentPackets = r.i64()
			f.Stats.SentBytes = r.i64()
			f.Stats.AckedPackets = r.i64()
			f.Stats.AckedBytes = r.i64()
			f.Stats.LostPackets = r.i64()
			f.Stats.MinRTT = r.dur()
			f.Stats.AvgRTT = r.dur()
			f.Stats.AvgThroughputBps = r.f64()
			f.Stats.LossRate = r.f64()
			f.Degraded = r.i64()
			f.NonFinite = r.i64()
			f.LateMeanBps = r.f64()
			if m := r.count("series point", minPointBytes); m > 0 {
				f.Series = make([]netsim.SeriesPoint, 0, m)
				for j := 0; j < m && r.err == nil; j++ {
					f.Series = append(f.Series, netsim.SeriesPoint{
						T:             r.dur(),
						ThroughputBps: r.f64(),
						SendRateBps:   r.f64(),
						AvgRTT:        r.dur(),
						LossRate:      r.f64(),
						Cwnd:          r.f64(),
						PacingBps:     r.f64(),
					})
				}
			}
			rec.Flows = append(rec.Flows, f)
		}
	}
	rec.Events = r.i64()
	if n := r.count("shard", minShardBytes); n > 0 {
		rec.ShardExecuted = make([]int64, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			rec.ShardExecuted = append(rec.ShardExecuted, r.i64())
		}
	}
	if r.boolean() {
		s := &StreamSummary{}
		s.FinalJain = r.f64()
		s.MinWindowJain = r.f64()
		s.Snapshots = r.i64()
		s.Samples = r.i64()
		s.RateP50 = r.f64()
		s.RateP95 = r.f64()
		s.RateP99 = r.f64()
		s.RTTP50 = r.f64()
		s.RTTP95 = r.f64()
		s.RTTP99 = r.f64()
		s.Drops = r.i64()
		s.Faults = r.i64()
		s.Degraded = r.i64()
		if r.err == nil {
			rec.Stream = s
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("runstore: %d trailing bytes after record", r.remaining())
	}
	return rec, nil
}

// appendFrame wraps one encoded payload in the length+CRC32C frame.
func appendFrame(dst, payload []byte) []byte {
	dst = appendU32(dst, uint32(len(payload)))
	dst = appendU32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// scanReport is the outcome of walking a file's record region.
type scanReport struct {
	recs     []*Record
	validLen int64  // bytes (from the region start) that framed and decoded cleanly
	tornLen  int64  // bytes dropped after validLen
	note     string // description of the first corruption ("" when clean)
}

// scanRecords walks framed records until the data ends or the first
// invalid frame. Everything after the first damage is untrusted — record
// boundaries downstream of a corrupt length field cannot be recovered — so
// repair truncates there, exactly like a torn tail.
func scanRecords(data []byte) scanReport {
	var rep scanReport
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < frameHdrLen {
			rep.note = fmt.Sprintf("torn frame header at offset %d (%d bytes)", off, rest)
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrame || int64(n) > int64(rest-frameHdrLen) {
			rep.note = fmt.Sprintf("torn or corrupt record at offset %d (frame length %d, %d bytes left)", off, n, rest-frameHdrLen)
			break
		}
		payload := data[off+frameHdrLen : off+frameHdrLen+int(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			rep.note = fmt.Sprintf("CRC mismatch at offset %d", off)
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			rep.note = fmt.Sprintf("undecodable record at offset %d: %v", off, err)
			break
		}
		rep.recs = append(rep.recs, rec)
		off += frameHdrLen + int(n)
		rep.validLen = int64(off)
	}
	rep.tornLen = int64(len(data)) - rep.validLen
	return rep
}

// File headers: an 8-byte magic, a u32 format version, and a u32 CRC32C of
// the first 12 bytes, so corruption of the header itself is detected.
const (
	headerLen     = 16
	formatVersion = 1
	magicWAL      = "JURYWAL1"
	magicSnap     = "JURYSNP1"
)

func fileHeader(magic string) []byte {
	b := make([]byte, 0, headerLen)
	b = append(b, magic...)
	b = appendU32(b, formatVersion)
	return appendU32(b, crc32.Checksum(b, crcTable))
}

func checkHeader(data []byte, magic string) error {
	if len(data) < headerLen {
		return fmt.Errorf("runstore: torn file header (%d bytes)", len(data))
	}
	if string(data[:8]) != magic {
		return fmt.Errorf("runstore: bad magic %q, want %q", data[:8], magic)
	}
	if crc32.Checksum(data[:12], crcTable) != binary.LittleEndian.Uint32(data[12:]) {
		return fmt.Errorf("runstore: corrupt file header")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return fmt.Errorf("runstore: file format version %d, want %d", v, formatVersion)
	}
	return nil
}
