// Package astraea implements the Astraea baseline (Liao et al.,
// EuroSys'24): a fairness-oriented DRL congestion controller whose state
// includes throughput-related features — the flow's throughput, its
// historical maximum thr_max, and the ratio thr/thr_max — on top of delay
// and loss signals. The multi-agent training reward teaches flows to yield
// according to their throughput, which gives excellent fairness *inside*
// the training domain.
//
// Those same throughput features are exactly what breaks generalization
// (the paper's Fig. 1 and §2.2): normalized against the training-domain
// maximum, they saturate on faster links, so all flows on a 350 Mbps
// bottleneck look identically "large" and the learned differentiation
// vanishes. The SurrogatePolicy encodes that converged behaviour, with the
// saturation made explicit via TrainedMaxThr (see DESIGN.md).
package astraea

import (
	"time"

	"repro/internal/cc"
)

// HistoryLen is the number of stacked intervals in the state.
const HistoryLen = 8

// FeaturesPerInterval is the per-interval feature count: throughput
// (normalized by the training max), thr/thr_max, latency ratio, latency
// gradient, loss rate.
const FeaturesPerInterval = 5

// StateDim is the policy input width.
const StateDim = HistoryLen * FeaturesPerInterval

// Policy maps Astraea's state to a rate-change action in [-1, 1].
type Policy interface {
	Act(state []float64) float64
}

// Config parameterizes the controller.
type Config struct {
	Interval time.Duration
	Alpha    float64 // multiplicative step size
	// TrainedMaxThr is the maximum throughput seen in training (Table 1:
	// 100 Mbps); throughput features are normalized against it and clamp
	// at 1 beyond it.
	TrainedMaxThr float64
	Seed          uint64
}

// DefaultConfig mirrors the §5 retraining setup.
func DefaultConfig() Config {
	return Config{
		Interval:      30 * time.Millisecond,
		Alpha:         0.025,
		TrainedMaxThr: 100e6,
	}
}

// Astraea is the controller. Construct with New.
type Astraea struct {
	cfg    Config
	policy Policy

	cwnd     float64
	pacing   float64
	mss      float64
	minRTT   time.Duration
	prevRTT  time.Duration
	thrMax   float64 // the flow's historically observed max throughput
	lastGrow time.Duration

	history   []float64
	lastState []float64
}

// New returns an Astraea controller (nil policy selects the surrogate).
func New(cfg Config, policy Policy) *Astraea {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Millisecond
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.025
	}
	if cfg.TrainedMaxThr <= 0 {
		cfg.TrainedMaxThr = 100e6
	}
	a := &Astraea{
		cfg:      cfg,
		cwnd:     10,
		mss:      1500,
		history:  make([]float64, StateDim),
		policy:   policy,
		lastGrow: -time.Hour, // first startup doubling is always allowed
	}
	if a.policy == nil {
		a.policy = NewSurrogatePolicy(cfg)
	}
	return a
}

// Name implements cc.Algorithm.
func (a *Astraea) Name() string { return "astraea" }

// Init implements cc.Algorithm.
func (a *Astraea) Init(time.Duration) {}

// OnAck implements cc.Algorithm.
func (a *Astraea) OnAck(k cc.Ack) {
	if k.Bytes > 0 {
		a.mss = float64(k.Bytes)
	}
}

// OnLoss implements cc.Algorithm.
func (a *Astraea) OnLoss(cc.Loss) {}

// ControlInterval implements cc.IntervalAlgorithm.
func (a *Astraea) ControlInterval() time.Duration { return a.cfg.Interval }

// OnInterval implements cc.IntervalAlgorithm.
func (a *Astraea) OnInterval(s cc.IntervalStats) {
	if s.FlowMinRTT > 0 {
		a.minRTT = s.FlowMinRTT
	}
	if s.AckedPackets == 0 {
		if s.LostPackets > 0 {
			a.applyAction(-1)
		} else {
			// Startup doubling, at most once per RTT (feedback lags one
			// round trip; doubling per 30 ms interval would overshoot
			// blindly) and bounded.
			period := a.cfg.Interval
			if a.minRTT > period {
				period = a.minRTT
			}
			if s.Now-a.lastGrow >= period {
				a.lastGrow = s.Now
				a.cwnd *= 2
				if a.cwnd > 1<<17 {
					a.cwnd = 1 << 17
				}
			}
		}
		a.updatePacing(s)
		return
	}

	thr := s.DeliveryRate()
	if thr > a.thrMax {
		a.thrMax = thr
	}
	var latGrad float64
	if a.prevRTT > 0 {
		latGrad = (s.AvgRTT - a.prevRTT).Seconds() / s.Interval.Seconds()
	}
	a.prevRTT = s.AvgRTT
	latRatio := 1.0
	if a.minRTT > 0 {
		latRatio = float64(s.AvgRTT) / float64(a.minRTT)
	}

	// The throughput features that anchor Astraea's fairness — and clamp
	// outside the training domain.
	thrNorm := cc.Clamp(thr/a.cfg.TrainedMaxThr, 0, 1)
	thrRel := 0.0
	if a.thrMax > 0 {
		thrRel = thr / a.thrMax
	}

	copy(a.history, a.history[FeaturesPerInterval:])
	n := len(a.history)
	a.history[n-5] = thrNorm
	a.history[n-4] = cc.Clamp(thrRel, 0, 1)
	a.history[n-3] = cc.Clamp(latRatio-1, 0, 10)
	a.history[n-2] = cc.Clamp(latGrad, -1, 1)
	a.history[n-1] = cc.Clamp(s.LossRate(), 0, 1)

	a.lastState = append(a.lastState[:0], a.history...)
	act := cc.Clamp(a.policy.Act(a.lastState), -1, 1)
	a.applyAction(act)
	a.updatePacing(s)
}

func (a *Astraea) applyAction(act float64) {
	if act >= 0 {
		a.cwnd *= 1 + a.cfg.Alpha*act
	} else {
		a.cwnd /= 1 - a.cfg.Alpha*act
	}
	if a.cwnd < 2 {
		a.cwnd = 2
	}
	if a.cwnd > 1<<20 {
		a.cwnd = 1 << 20
	}
}

func (a *Astraea) updatePacing(s cc.IntervalStats) {
	rtt := s.AvgRTT
	if rtt == 0 {
		rtt = a.minRTT
	}
	if rtt == 0 {
		return
	}
	a.pacing = a.cwnd * a.mss * 8 / rtt.Seconds()
}

// CWND implements cc.Algorithm.
func (a *Astraea) CWND() float64 { return a.cwnd }

// PacingRate implements cc.Algorithm.
func (a *Astraea) PacingRate() float64 { return a.pacing }

// LastState exposes the most recent policy input (training harness).
func (a *Astraea) LastState() []float64 { return a.lastState }

// Reward is Astraea's per-flow reward shape: throughput (normalized to the
// training domain) minus delay and loss penalties; the published system
// adds a multi-agent fairness term computed across co-trained flows, which
// the training harness supplies externally.
func Reward(cfg Config, thrBps float64, rtt, rttMin time.Duration, loss float64) float64 {
	queue := (rtt - rttMin).Seconds()
	return thrBps/cfg.TrainedMaxThr - 5*queue - 10*loss
}

// SurrogatePolicy encodes the converged Astraea behaviour: inside the
// training domain, flows respond to congestion in proportion to their
// throughput features (large flows yield, small flows push — near-perfect
// fairness); beyond the domain the clamped thrNorm feature makes every flow
// look maximal and the differentiation disappears, freezing whatever
// unequal shares the flows happened to hold (Fig. 1b).
type SurrogatePolicy struct {
	cfg Config
}

// NewSurrogatePolicy builds the surrogate.
func NewSurrogatePolicy(cfg Config) *SurrogatePolicy {
	return &SurrogatePolicy{cfg: cfg}
}

// Act implements Policy.
func (p *SurrogatePolicy) Act(state []float64) float64 {
	n := len(state)
	thrNorm := state[n-5]
	latRatio := state[n-3]
	loss := state[n-1]
	var grad float64
	var cnt int
	for i := 3; i < n; i += FeaturesPerInterval {
		grad += state[i]
		cnt++
	}
	if cnt > 0 {
		grad /= float64(cnt)
	}
	congestion := 6*cc.Clamp(grad, 0, 1) + 2*cc.Clamp(latRatio-0.15, 0, 2) + 30*loss
	if congestion > 0.05 {
		// Yield in proportion to the (clamped) throughput feature: in
		// domain this is the fairness differentiation; out of domain
		// thrNorm == 1 for everyone and the differentiation is gone.
		return cc.Clamp(-congestion*(0.25+0.75*thrNorm), -1, 0)
	}
	// Probe harder the smaller the flow believes itself to be.
	return cc.Clamp(0.2+0.8*(1-thrNorm), 0, 1)
}
