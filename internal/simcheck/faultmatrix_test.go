package simcheck

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
)

// faultMatrix is the canonical set of fault configurations every invariant
// must survive. scripts/check.sh runs this test under -race as the
// fault-injection smoke.
func faultMatrix() []struct {
	name string
	cfg  *faults.Config
} {
	return []struct {
		name string
		cfg  *faults.Config
	}{
		{"burst-loss", &faults.Config{
			GE: &faults.GEConfig{PGoodBad: 0.005, PBadGood: 0.25, LossBad: 1},
		}},
		{"reorder", &faults.Config{
			ReorderProb: 0.03, ReorderMaxDelay: 15 * time.Millisecond,
		}},
		{"duplicate", &faults.Config{DupProb: 0.03}},
		{"jitter", &faults.Config{
			JitterProb: 0.05, JitterMax: 8 * time.Millisecond,
		}},
		{"link-flap", &faults.Config{
			Flap: &faults.FlapConfig{MeanUp: 1500 * time.Millisecond, MeanDown: 120 * time.Millisecond},
		}},
		{"combined", &faults.Config{
			GE:          &faults.GEConfig{PGoodBad: 0.003, PBadGood: 0.3, LossBad: 1},
			ReorderProb: 0.01, ReorderMaxDelay: 10 * time.Millisecond,
			DupProb:    0.01,
			JitterProb: 0.02, JitterMax: 5 * time.Millisecond,
			Flap: &faults.FlapConfig{MeanUp: 3 * time.Second, MeanDown: 100 * time.Millisecond},
		}},
	}
}

// faultedDumbbell builds a jury+cubic dumbbell (the mixed pair exercises
// both the interval-driven pipeline and per-ACK controllers) with the fault
// config installed on the bottleneck, runs it checked, and returns the
// checker.
func faultedDumbbell(t *testing.T, seed uint64, fc *faults.Config) *Checker {
	t.Helper()
	n := netsim.New(netsim.Config{Seed: seed})
	l := n.AddLink(netsim.LinkConfig{
		Rate:        30e6,
		Delay:       10 * time.Millisecond,
		BufferBytes: bdpBytes(30e6, 20*time.Millisecond),
		Faults:      fc,
	})
	mk := []func() cc.Algorithm{
		func() cc.Algorithm { return core.NewDefault(seed + 1) },
		func() cc.Algorithm { return cubic.New() },
	}
	for i, m := range mk {
		n.AddFlow(netsim.FlowConfig{
			Name: "f" + string(rune('0'+i)),
			Path: []*netsim.Link{l},
			CC:   m,
		})
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	ck := Attach(n)
	n.Run(10 * time.Second)
	return ck
}

// TestFaultMatrixInvariants asserts that every simcheck invariant holds
// under each fault type, that the injector actually fired, and that the run
// digest is reproducible.
func TestFaultMatrixInvariants(t *testing.T) {
	seeds := []uint64{1, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, tc := range faultMatrix() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				ck := faultedDumbbell(t, seed, tc.cfg)
				if vs := ck.Finish(); len(vs) > 0 {
					t.Fatalf("seed %d: invariant violations under %s: %v", seed, tc.name, vs)
				}
				var fired bool
				for _, l := range ck.net.Links() {
					if fs := l.FaultStats(); fs != (netsim.FaultStats{}) {
						fired = true
					}
				}
				if !fired {
					t.Fatalf("seed %d: fault config %s never fired", seed, tc.name)
				}
				if again := faultedDumbbell(t, seed, tc.cfg); again.Digest() != ck.Digest() {
					t.Fatalf("seed %d: fault run digest not reproducible (%x vs %x)",
						seed, ck.Digest(), again.Digest())
				}
			}
		})
	}
}

// TestFaultCountersCrossChecked corrupts nothing but verifies the checker
// really compares its ledger against the link: a link with faults must
// report identical counters through both paths.
func TestFaultCountersCrossChecked(t *testing.T) {
	ck := faultedDumbbell(t, 5, &faults.Config{DupProb: 0.05})
	if vs := ck.Finish(); len(vs) > 0 {
		t.Fatalf("violations: %v", vs)
	}
	l := ck.net.Links()[0]
	a := ck.links[l]
	if a == nil || a.duplicated == 0 {
		t.Fatal("checker ledger saw no duplicates")
	}
	if a.duplicated != l.FaultStats().Duplicated {
		t.Fatalf("ledger %d != link %d", a.duplicated, l.FaultStats().Duplicated)
	}
}
