package vegas

import (
	"testing"
	"time"

	"repro/internal/cc"
)

// feed delivers one "RTT round" of ACKs with the given RTT.
func feed(v *Vegas, start time.Duration, rtt time.Duration, n int) time.Duration {
	for i := 0; i < n; i++ {
		now := start + time.Duration(i)*time.Millisecond
		v.OnAck(cc.Ack{Now: now, SentAt: now - rtt, RTT: rtt, Bytes: 1500})
	}
	return start + time.Duration(n)*time.Millisecond
}

func TestSlowStartExitsOnQueueBuildup(t *testing.T) {
	v := New()
	v.Init(0)
	base := 30 * time.Millisecond
	now := feed(v, time.Millisecond, base, 5)
	w1 := v.CWND()
	// No queueing: still slow-starting, window grows multiplicatively.
	now = feed(v, now+base, base, 5)
	now = feed(v, now+base, base, 5)
	if v.CWND() <= w1 {
		t.Fatalf("no slow-start growth: %v -> %v", w1, v.CWND())
	}
	// Now RTTs inflate: diff exceeds gamma, slow start must end.
	grew := v.CWND()
	now = feed(v, now+base, 2*base, 8)
	feed(v, now+2*base, 2*base, 8)
	if v.CWND() > grew {
		t.Fatalf("kept slow-starting despite queue: %v -> %v", grew, v.CWND())
	}
}

func TestHoldsWindowInsideAlphaBeta(t *testing.T) {
	v := New()
	v.Init(0)
	v.inSlow = false
	v.cwnd = 30
	base := 30 * time.Millisecond
	// diff = cwnd(1 − base/RTT) = 30(1−30/33) ≈ 2.7 packets: inside [2,4].
	rtt := 33 * time.Millisecond
	now := feed(v, time.Millisecond, base, 3) // establish baseRTT
	v.cwnd = 30
	for r := 0; r < 10; r++ {
		now = feed(v, now+base, rtt, 8)
	}
	if v.CWND() < 28 || v.CWND() > 32 {
		t.Fatalf("window moved out of the alpha-beta band: %v", v.CWND())
	}
}

func TestIncreasesWhenDiffBelowAlpha(t *testing.T) {
	v := New()
	v.Init(0)
	v.inSlow = false
	v.cwnd = 10
	base := 30 * time.Millisecond
	now := feed(v, time.Millisecond, base, 3)
	w := v.CWND()
	// RTT == baseRTT: diff = 0 < alpha, so the window must climb.
	for r := 0; r < 8; r++ {
		now = feed(v, now+base, base, 5)
	}
	if v.CWND() <= w {
		t.Fatalf("no increase with empty queue: %v -> %v", w, v.CWND())
	}
}

func TestDecreasesWhenDiffAboveBeta(t *testing.T) {
	v := New()
	v.Init(0)
	v.inSlow = false
	base := 30 * time.Millisecond
	now := feed(v, time.Millisecond, base, 3)
	v.cwnd = 40
	// diff = 40(1−30/60) = 20 > beta: window must fall.
	w := v.CWND()
	for r := 0; r < 8; r++ {
		now = feed(v, now+base, 2*base, 5)
	}
	if v.CWND() >= w {
		t.Fatalf("no decrease with a deep queue: %v -> %v", w, v.CWND())
	}
}

func TestLossHalving(t *testing.T) {
	v := New()
	v.Init(0)
	v.cwnd = 20
	v.OnLoss(cc.Loss{Now: time.Second, SentAt: 990 * time.Millisecond})
	if v.CWND() != 10 {
		t.Fatalf("post-loss cwnd %v, want 10", v.CWND())
	}
	// Same-flight loss coalesced.
	v.OnLoss(cc.Loss{Now: 1010 * time.Millisecond, SentAt: 995 * time.Millisecond})
	if v.CWND() != 10 {
		t.Fatalf("coalescing failed: %v", v.CWND())
	}
}

func TestVegasIdentity(t *testing.T) {
	v := New()
	if v.Name() != "vegas" || v.PacingRate() != 0 {
		t.Fatal("vegas identity wrong")
	}
}
