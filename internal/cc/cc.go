// Package cc defines the congestion-control algorithm interface shared by
// every scheme in this repository (Jury, CUBIC, BBR, Vegas, Reno, Vivace,
// Copa, Remy, Aurora, Astraea, Orca) and the statistic types delivered to
// them by the network emulator.
//
// Conventions: rates are bits/second, congestion windows are packets
// (float64 so multiplicative updates compose), time is time.Duration.
package cc

import "time"

// Ack describes one acknowledged packet.
type Ack struct {
	Now    time.Duration // virtual time the ACK reached the sender
	SentAt time.Duration // virtual time the packet left the sender
	RTT    time.Duration // Now - SentAt
	Bytes  int           // payload size of the acknowledged packet
}

// Loss describes one packet the sender has learned was lost.
type Loss struct {
	Now    time.Duration // virtual time the loss was detected
	SentAt time.Duration // virtual time the lost packet left the sender
	Bytes  int
}

// IntervalStats aggregates the feedback a flow received during one control
// interval. Interval-based schemes (Jury and the DRL baselines) consume
// these; ack-clocked schemes ignore them.
type IntervalStats struct {
	Now      time.Duration // end of the interval
	Interval time.Duration // nominal interval length

	AckedBytes   int64
	AckedPackets int64
	SentBytes    int64
	SentPackets  int64
	LostPackets  int64

	AvgRTT time.Duration // mean RTT over ACKs in the interval (0 if none)
	MinRTT time.Duration // minimum RTT over ACKs in the interval (0 if none)

	// FlowMinRTT is the minimum RTT the flow has ever observed; schemes use
	// it as the propagation-delay estimate.
	FlowMinRTT time.Duration

	// EnforcedRateBps is the pacing rate the controller had enforced while
	// this interval's packets were being sent (bits/second; 0 if unpaced).
	EnforcedRateBps float64

	// DeliverySpan is the time between the first and last ACK of this
	// interval's packets. The delivery rate of an interval's packets —
	// AckedBytes spread over this span — is the throughput measure that
	// distinguishes "the link absorbed my extra packets" (delivery spacing
	// stretches to the bottleneck share) from "the link had headroom"
	// (delivery spacing mirrors send spacing).
	DeliverySpan time.Duration
}

// DeliveryRate reports the delivery rate of the interval's packets in
// bits/second: the acknowledged bytes spread over the ACK span (excluding
// the first packet, which opens the span). It falls back to Throughput()
// when the interval has too few ACKs to span.
func (s IntervalStats) DeliveryRate() float64 {
	if s.AckedPackets >= 2 && s.DeliverySpan > 0 {
		n := float64(s.AckedPackets)
		return float64(s.AckedBytes) * 8 * (n - 1) / n / s.DeliverySpan.Seconds()
	}
	return s.Throughput()
}

// Throughput reports the delivery rate over the interval in bits/second.
func (s IntervalStats) Throughput() float64 {
	if s.Interval <= 0 {
		return 0
	}
	return float64(s.AckedBytes) * 8 / s.Interval.Seconds()
}

// LossRate reports the fraction of feedback-bearing packets in the interval
// that were lost: lost / (acked + lost). It is 0 when there was no feedback.
func (s IntervalStats) LossRate() float64 {
	total := s.AckedPackets + s.LostPackets
	if total == 0 {
		return 0
	}
	return float64(s.LostPackets) / float64(total)
}

// Algorithm is the control interface the emulator drives. Implementations
// are single-flow and are never called concurrently.
type Algorithm interface {
	// Name identifies the scheme ("jury", "cubic", ...).
	Name() string
	// Init is called once when the flow starts sending.
	Init(now time.Duration)
	// OnAck is called for each acknowledged packet.
	OnAck(ack Ack)
	// OnLoss is called for each detected packet loss.
	OnLoss(loss Loss)
	// CWND reports the congestion window in packets. The sender never keeps
	// more than CWND packets in flight.
	CWND() float64
	// PacingRate reports the pacing rate in bits/second. Zero means
	// "unpaced": the sender is limited by CWND only.
	PacingRate() float64
}

// IntervalAlgorithm is implemented by schemes that act on periodic
// aggregated statistics rather than (or in addition to) per-ACK feedback.
type IntervalAlgorithm interface {
	Algorithm
	// ControlInterval reports how often OnInterval should run.
	ControlInterval() time.Duration
	// OnInterval delivers the aggregate statistics for the last interval.
	OnInterval(s IntervalStats)
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
