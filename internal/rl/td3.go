package rl

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/nn"
	"repro/internal/simcore"
)

// Config parameterizes a TD3 agent. Zero fields take the defaults of
// DefaultConfig, which mirror the paper's Table 2.
type Config struct {
	StateDim  int
	ActionDim int
	Hidden    []int // hidden layer widths (paper: two 128-wide layers)

	ActorLR  float64 // σ in the paper: 5e-4
	CriticLR float64 // η in the paper: 1e-3
	Gamma    float64 // discount: 0.98
	Tau      float64 // soft target update rate
	Batch    int     // 64

	// TD3 additions (§3.5): delayed policy updates, target policy
	// smoothing, clipped double-Q is always on.
	PolicyDelay int
	TargetNoise float64
	NoiseClip   float64

	GradClip float64
	Seed     uint64

	// Workers shards Update's batch across this many goroutines. The batch
	// is always split into fixed shardRows-row shards whose gradients are
	// folded in a fixed pairwise order, so the updated weights are
	// bit-identical for every worker count; 0/1 runs the shards serially on
	// the calling goroutine (and allocates nothing).
	Workers int
}

// DefaultConfig returns the paper's hyperparameters (Table 2) for the given
// state/action dimensions.
func DefaultConfig(stateDim, actionDim int) Config {
	return Config{
		StateDim:    stateDim,
		ActionDim:   actionDim,
		Hidden:      []int{128, 128},
		ActorLR:     5e-4,
		CriticLR:    1e-3,
		Gamma:       0.98,
		Tau:         0.005,
		Batch:       64,
		PolicyDelay: 2,
		TargetNoise: 0.2,
		NoiseClip:   0.5,
		GradClip:    10,
		Seed:        1,
	}
}

// shardRows is the fixed shard height of the batched update. It is part of
// the determinism contract: shard boundaries depend only on the batch size,
// never on Config.Workers, so the per-shard gradient sums (and their fixed
// pairwise reduction) are identical no matter how many goroutines run them.
const shardRows = 16

// updateShard holds one shard's private buffers: a contiguous row range of
// the batch plus the traces, scratches, and gradient accumulators its
// backward passes write. Shards share no mutable state, so any assignment
// of shards to workers is race-free and order-independent.
type updateShard struct {
	r0, r1 int

	c1Tr, c2Tr, actorTr *nn.BatchTrace // row-range views of the full-batch traces

	c1G, c2G, actorG *nn.Grads

	criticS, actorS *nn.BatchScratch
	dAct            []float64 // rows×A: dQ/dAction gathered from the critic's input grads
}

// TD3 is a deterministic-policy actor-critic agent with clipped double
// Q-learning, delayed policy updates, and target policy smoothing. Update
// processes the whole minibatch as matrix products over the batched nn
// kernels (see internal/nn/gemm.go and DESIGN.md).
type TD3 struct {
	cfg Config
	rng *simcore.RNG

	Actor       *nn.MLP
	actorTarget *nn.MLP
	critic1     *nn.MLP
	critic2     *nn.MLP
	c1Target    *nn.MLP
	c2Target    *nn.MLP

	actorOpt *nn.Adam
	c1Opt    *nn.Adam
	c2Opt    *nn.Adam

	// Batched-update state, preallocated so a training step allocates
	// nothing in steady state. Matrices are flat row-major; W = S+A is the
	// critic input width.
	nextStates []float64 // B×S gather of the batch's next states
	states     []float64 // B×S gather of the batch's states
	saNext     []float64 // B×W: next-state ++ smoothed target action
	saCur      []float64 // B×W: state ++ action
	rewards    []float64 // B
	done       []bool    // B
	yBuf       []float64 // B: clipped double-Q TD targets
	dOut1      []float64 // B×1: critic-1 output gradients (reused as -1s in the actor phase)
	dOut2      []float64 // B×1: critic-2 output gradients
	actorBS    *nn.BatchScratch
	criticBS   *nn.BatchScratch

	shards  []updateShard
	tdShard []float64 // per-shard Σ|TD error|, summed in shard order

	// Method values bound once so the serial runShards path passes a
	// prebuilt func and stays allocation-free.
	criticShardFn func(int)
	actorShardFn  func(int)

	// pool holds the persistent helper goroutines of a multi-worker agent
	// (nil until the first Workers>1 Update; see shardPool).
	pool *shardPool

	updates        int
	skippedUpdates int64
}

// SkippedUpdates counts optimizer steps discarded because the batch produced
// non-finite gradients (e.g. a NaN reward that slipped into the replay
// buffer). Skipping keeps one poisoned transition from destroying the
// weights; the soft target updates still run, so training continues.
func (t *TD3) SkippedUpdates() int64 { return t.skippedUpdates }

// NewTD3 builds an agent. The actor ends in tanh (actions in [-1,1]^d); the
// critics map (state ++ action) to a scalar value.
func NewTD3(cfg Config) *TD3 {
	if cfg.StateDim <= 0 || cfg.ActionDim <= 0 {
		panic(fmt.Sprintf("rl: bad dims %d/%d", cfg.StateDim, cfg.ActionDim))
	}
	def := DefaultConfig(cfg.StateDim, cfg.ActionDim)
	if cfg.Hidden == nil {
		cfg.Hidden = def.Hidden
	}
	if cfg.ActorLR == 0 {
		cfg.ActorLR = def.ActorLR
	}
	if cfg.CriticLR == 0 {
		cfg.CriticLR = def.CriticLR
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = def.Gamma
	}
	if cfg.Tau == 0 {
		cfg.Tau = def.Tau
	}
	if cfg.Batch == 0 {
		cfg.Batch = def.Batch
	}
	if cfg.PolicyDelay == 0 {
		cfg.PolicyDelay = def.PolicyDelay
	}
	if cfg.TargetNoise == 0 {
		cfg.TargetNoise = def.TargetNoise
	}
	if cfg.NoiseClip == 0 {
		cfg.NoiseClip = def.NoiseClip
	}
	if cfg.GradClip == 0 {
		cfg.GradClip = def.GradClip
	}

	rng := simcore.NewRNG(cfg.Seed)
	actorSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	actorSizes = append(actorSizes, cfg.ActionDim)
	actorActs := make([]nn.Activation, len(actorSizes)-1)
	for i := range actorActs {
		actorActs[i] = nn.ReLU
	}
	actorActs[len(actorActs)-1] = nn.Tanh

	criticSizes := append([]int{cfg.StateDim + cfg.ActionDim}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)
	criticActs := make([]nn.Activation, len(criticSizes)-1)
	for i := range criticActs {
		criticActs[i] = nn.ReLU
	}
	criticActs[len(criticActs)-1] = nn.Linear

	t := &TD3{
		cfg:     cfg,
		rng:     rng,
		Actor:   nn.NewMLP(rng.Split(1), actorSizes, actorActs),
		critic1: nn.NewMLP(rng.Split(2), criticSizes, criticActs),
		critic2: nn.NewMLP(rng.Split(3), criticSizes, criticActs),
	}
	t.actorTarget = t.Actor.Clone()
	t.c1Target = t.critic1.Clone()
	t.c2Target = t.critic2.Clone()
	t.actorOpt = nn.NewAdam(t.Actor, cfg.ActorLR)
	t.c1Opt = nn.NewAdam(t.critic1, cfg.CriticLR)
	t.c2Opt = nn.NewAdam(t.critic2, cfg.CriticLR)

	B, S, A := cfg.Batch, cfg.StateDim, cfg.ActionDim
	W := S + A
	t.nextStates = make([]float64, B*S)
	t.states = make([]float64, B*S)
	t.saNext = make([]float64, B*W)
	t.saCur = make([]float64, B*W)
	t.rewards = make([]float64, B)
	t.done = make([]bool, B)
	t.yBuf = make([]float64, B)
	t.dOut1 = make([]float64, B)
	t.dOut2 = make([]float64, B)
	t.actorBS = nn.NewBatchScratch(t.Actor, B)
	t.criticBS = nn.NewBatchScratch(t.critic1, B)

	c1Tr := nn.NewBatchTrace(t.critic1, B)
	c2Tr := nn.NewBatchTrace(t.critic2, B)
	aTr := nn.NewBatchTrace(t.Actor, B)
	n := (B + shardRows - 1) / shardRows
	t.shards = make([]updateShard, n)
	t.tdShard = make([]float64, n)
	for s := range t.shards {
		r0 := s * shardRows
		r1 := r0 + shardRows
		if r1 > B {
			r1 = B
		}
		t.shards[s] = updateShard{
			r0: r0, r1: r1,
			c1Tr:    c1Tr.Slice(r0, r1),
			c2Tr:    c2Tr.Slice(r0, r1),
			actorTr: aTr.Slice(r0, r1),
			c1G:     nn.NewGrads(t.critic1),
			c2G:     nn.NewGrads(t.critic2),
			actorG:  nn.NewGrads(t.Actor),
			criticS: nn.NewBatchScratch(t.critic1, r1-r0),
			actorS:  nn.NewBatchScratch(t.Actor, r1-r0),
			dAct:    make([]float64, (r1-r0)*A),
		}
	}
	t.criticShardFn = t.criticShard
	t.actorShardFn = t.actorShard
	return t
}

// Act returns the deterministic policy action for state, plus Gaussian
// exploration noise of the given standard deviation, clipped to [-1, 1].
func (t *TD3) Act(state []float64, noiseStd float64) []float64 {
	a := t.Actor.Forward(state)
	for i := range a {
		if noiseStd > 0 {
			a[i] += t.rng.Norm(0, noiseStd)
		}
		a[i] = clip(a[i], -1, 1)
	}
	return a
}

func clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Q1 evaluates the first critic (exposed for tests and diagnostics).
func (t *TD3) Q1(state, action []float64) float64 {
	return t.critic1.Forward(concat(state, action))[0]
}

func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Update performs one TD3 training step on a batch sampled from buf and
// returns the mean critic TD error (diagnostic). Every PolicyDelay-th call
// also updates the actor and the target networks.
//
// The step runs in three phases. Phase A is sequential because it consumes
// the agent RNG: sample indices, gather the batch into flat matrices, and
// compute the clipped double-Q targets with batched target-network
// forwards. Phases B (critic forward/backward) and C (actor phase, every
// PolicyDelay-th call) run per shard — serially or on Config.Workers
// goroutines — and fold the per-shard gradients pairwise; see shardRows for
// why the result is independent of the worker count.
func (t *TD3) Update(buf *ReplayBuffer) float64 {
	if buf.Len() < t.cfg.Batch {
		return 0
	}
	B, S, A := t.cfg.Batch, t.cfg.StateDim, t.cfg.ActionDim
	W := S + A
	idx := buf.SampleIndices(t.rng, B)
	for k, j := range idx {
		tr := buf.At(j)
		copy(t.states[k*S:(k+1)*S], tr.State)
		copy(t.nextStates[k*S:(k+1)*S], tr.NextState)
		copy(t.saCur[k*W:k*W+S], tr.State)
		copy(t.saCur[k*W+S:(k+1)*W], tr.Action)
		t.rewards[k] = tr.Reward
		t.done[k] = tr.Done
	}

	// Target actions with smoothing noise (TD3 trick #3), batched; the
	// noise stream is drawn in row-major order, matching the retired
	// per-sample path draw for draw.
	aT := t.actorTarget.ForwardBatchInto(t.nextStates, B, t.actorBS)
	for k := 0; k < B; k++ {
		copy(t.saNext[k*W:k*W+S], t.nextStates[k*S:(k+1)*S])
		for i := 0; i < A; i++ {
			noise := clip(t.rng.Norm(0, t.cfg.TargetNoise), -t.cfg.NoiseClip, t.cfg.NoiseClip)
			t.saNext[k*W+S+i] = clip(aT[k*A+i]+noise, -1, 1)
		}
	}
	// Clipped double-Q targets (trick #1). The second forward reuses the
	// critic scratch, so the first result is copied out before it runs.
	q1 := t.c1Target.ForwardBatchInto(t.saNext, B, t.criticBS)
	copy(t.yBuf, q1[:B])
	q2 := t.c2Target.ForwardBatchInto(t.saNext, B, t.criticBS)
	for k := 0; k < B; k++ {
		y := t.rewards[k]
		if !t.done[k] {
			y += t.cfg.Gamma * math.Min(t.yBuf[k], q2[k])
		}
		t.yBuf[k] = y
	}

	t.runShards(t.criticShardFn)
	var tdErr float64
	for _, td := range t.tdShard {
		tdErr += td
	}
	c1G := t.reduceShards(pickC1)
	c2G := t.reduceShards(pickC2)
	inv := 1 / float64(B)
	c1G.Scale(inv)
	c2G.Scale(inv)
	c1G.ClipNorm(t.cfg.GradClip)
	c2G.ClipNorm(t.cfg.GradClip)
	if c1G.AllFinite() && c2G.AllFinite() {
		t.c1Opt.Step(t.critic1, c1G)
		t.c2Opt.Step(t.critic2, c2G)
	} else {
		t.skippedUpdates++
		tdErr = 0 // the TD error of a poisoned batch is meaningless
	}

	t.updates++
	if t.updates%t.cfg.PolicyDelay == 0 { // delayed policy update (TD3 trick #2)
		t.runShards(t.actorShardFn)
		aG := t.reduceShards(pickActor)
		aG.Scale(inv)
		aG.ClipNorm(t.cfg.GradClip)
		if aG.AllFinite() {
			t.actorOpt.Step(t.Actor, aG)
		} else {
			t.skippedUpdates++
		}

		nn.SoftUpdate(t.actorTarget, t.Actor, t.cfg.Tau)
		nn.SoftUpdate(t.c1Target, t.critic1, t.cfg.Tau)
		nn.SoftUpdate(t.c2Target, t.critic2, t.cfg.Tau)
	}
	return tdErr * inv
}

// criticShard runs the critic phase for shard si: forward-trace both
// critics over the shard's rows, derive the squared-TD-error output
// gradients against the precomputed targets, and backpropagate into the
// shard's private gradient accumulators.
func (t *TD3) criticShard(si int) {
	sh := &t.shards[si]
	rows := sh.r1 - sh.r0
	W := t.cfg.StateDim + t.cfg.ActionDim
	sa := t.saCur[sh.r0*W : sh.r1*W]
	t.critic1.ForwardBatchTraceInto(sa, rows, sh.c1Tr)
	t.critic2.ForwardBatchTraceInto(sa, rows, sh.c2Tr)
	out1 := sh.c1Tr.Output()
	out2 := sh.c2Tr.Output()
	var td float64
	for r := 0; r < rows; r++ {
		y := t.yBuf[sh.r0+r]
		e1 := out1[r] - y
		e2 := out2[r] - y
		td += math.Abs(e1)
		t.dOut1[sh.r0+r] = 2 * e1
		t.dOut2[sh.r0+r] = 2 * e2
	}
	t.tdShard[si] = td
	t.critic1.BackwardBatchParams(sh.c1Tr, rows, t.dOut1[sh.r0:sh.r1], sh.c1G, sh.criticS)
	t.critic2.BackwardBatchParams(sh.c2Tr, rows, t.dOut2[sh.r0:sh.r1], sh.c2G, sh.criticS)
}

// actorShard runs the deterministic-policy-gradient phase for shard si:
// maximize Q1(s, π(s)) by pushing dQ1/dAction through the actor.
func (t *TD3) actorShard(si int) {
	sh := &t.shards[si]
	rows := sh.r1 - sh.r0
	S, A := t.cfg.StateDim, t.cfg.ActionDim
	W := S + A
	xs := t.states[sh.r0*S : sh.r1*S]
	t.Actor.ForwardBatchTraceInto(xs, rows, sh.actorTr)
	a := sh.actorTr.Output()
	// Rebuild state ++ action rows with the current policy's actions,
	// reusing saNext's shard rows (their TD-target contents are spent).
	sa := t.saNext[sh.r0*W : sh.r1*W]
	for r := 0; r < rows; r++ {
		copy(sa[r*W:r*W+S], xs[r*S:(r+1)*S])
		copy(sa[r*W+S:(r+1)*W], a[r*A:(r+1)*A])
	}
	t.critic1.ForwardBatchTraceInto(sa, rows, sh.c1Tr)
	dq := t.dOut1[sh.r0:sh.r1]
	for r := range dq {
		dq[r] = -1 // maximize Q: dLoss/dQ = -1
	}
	dIn := t.critic1.BackwardBatchInput(sh.c1Tr, rows, dq, sh.criticS)
	// Gather the action columns of the critic's input gradients into a
	// dense rows×A matrix before the actor backward reuses any scratch.
	for r := 0; r < rows; r++ {
		copy(sh.dAct[r*A:(r+1)*A], dIn[r*W+S:(r+1)*W])
	}
	t.Actor.BackwardBatchParams(sh.actorTr, rows, sh.dAct, sh.actorG, sh.actorS)
}

// runShards executes fn(s) for every shard. Workers ≤ 1 runs them on the
// calling goroutine; otherwise the calling goroutine and up to Workers-1
// pooled helpers pull shard indices from an atomic counter. Work stealing is
// safe because shards are mutually independent and the reduction order is
// fixed afterwards.
func (t *TD3) runShards(fn func(int)) {
	n := len(t.shards)
	w := t.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for s := 0; s < n; s++ {
			fn(s)
		}
		return
	}
	if t.pool == nil {
		t.pool = newShardPool(t.cfg.Workers - 1)
	}
	t.pool.run(fn, n, w-1)
}

// shardPool keeps Workers-1 helper goroutines alive across Update calls so a
// multi-worker step costs two channel operations per helper instead of a
// goroutine spawn — the per-call closure and WaitGroup allocations of the
// spawn-per-Update scheme were the only thing separating Workers>1 from the
// serial path's zero-allocation contract.
type shardPool struct {
	fn   func(int)    // the current round's shard body
	n    int32        // shards in the current round
	next atomic.Int32 // work-stealing shard cursor
	left atomic.Int32 // round participants (helpers + caller) still running

	start   chan struct{} // each token wakes one helper for one round
	done    chan struct{} // posted by the round's last finisher
	closed  chan struct{}
	spawned int // helpers launched so far (lazy, grows toward cap(start))
}

func newShardPool(maxHelpers int) *shardPool {
	return &shardPool{
		start:  make(chan struct{}, maxHelpers),
		done:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
}

// run executes fn over n shards on the calling goroutine plus helpers pooled
// goroutines, returning when all shards are done. The start-token send
// happens-before a helper's reads of fn/n, and the last finisher's done send
// happens-before run's return, so rounds never overlap and fn's effects are
// visible to the caller.
func (p *shardPool) run(fn func(int), n, helpers int) {
	for p.spawned < helpers {
		p.spawned++
		go p.loop()
	}
	p.fn, p.n = fn, int32(n)
	p.next.Store(0)
	p.left.Store(int32(helpers) + 1)
	for i := 0; i < helpers; i++ {
		p.start <- struct{}{}
	}
	for {
		s := p.next.Add(1) - 1
		if s >= int32(n) {
			break
		}
		fn(int(s))
	}
	if p.left.Add(-1) == 0 {
		p.done <- struct{}{}
	}
	<-p.done
	p.fn = nil
}

// loop is one helper: sleep until a round token arrives, steal shards until
// the cursor drains, signal if last out, repeat. A helper that drains the
// cursor and loops around may consume a second token of the same round and
// find no work — harmless, since tokens and left-decrements stay one-to-one.
func (p *shardPool) loop() {
	for {
		select {
		case <-p.closed:
			return
		case <-p.start:
		}
		fn, n := p.fn, p.n
		for {
			s := p.next.Add(1) - 1
			if s >= n {
				break
			}
			fn(int(s))
		}
		if p.left.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// Close releases the helper goroutines of a multi-worker agent. The agent
// stays usable — the next multi-worker Update lazily respawns the pool — so
// Close is only about not parking idle goroutines past the agent's working
// life. Serial agents never spawn any, and Close on them is a no-op.
func (t *TD3) Close() {
	if t.pool != nil {
		close(t.pool.closed)
		t.pool = nil
	}
}

// reduceShards folds the per-shard gradients selected by pick into shard
// 0's accumulator with a fixed pairwise (stride-doubling) tree, then
// returns it. The fold order depends only on the shard count, never on
// which worker produced which shard, so the summed gradient is
// bit-identical for every Config.Workers.
func (t *TD3) reduceShards(pick func(*updateShard) *nn.Grads) *nn.Grads {
	n := len(t.shards)
	for stride := 1; stride < n; stride *= 2 {
		for i := 0; i+stride < n; i += 2 * stride {
			pick(&t.shards[i]).Add(pick(&t.shards[i+stride]))
		}
	}
	return pick(&t.shards[0])
}

func pickC1(s *updateShard) *nn.Grads    { return s.c1G }
func pickC2(s *updateShard) *nn.Grads    { return s.c2G }
func pickActor(s *updateShard) *nn.Grads { return s.actorG }
