// Package simcore provides a deterministic discrete-event simulation engine:
// a virtual clock, a time-ordered event queue, and seeded random number
// generation. It is the foundation of the network emulator in
// internal/netsim and of the RL training environments.
package simcore

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (FIFO), which keeps simulations deterministic.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()

	index     int // heap index; -1 when not queued
	cancelled bool
}

// At reports the virtual time at which the event fires.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	nextSeq uint64
	running bool
	stopped bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending reports how many events are queued (including cancelled ones that
// have not yet been drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it always indicates a simulation bug, and
// silently clamping would corrupt causality.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("simcore: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter queues fn to run after delay d from the current time.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue empties, the horizon is
// reached, or Stop is called. Events scheduled exactly at the horizon still
// fire; events strictly after it remain queued. It returns the number of
// events executed.
func (e *Engine) Run(horizon time.Duration) int {
	if e.running {
		panic("simcore: Run re-entered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	executed := 0
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		executed++
	}
	if e.now < horizon && !e.stopped {
		// Advance the clock to the horizon so repeated Run calls observe
		// monotonic time even when the queue drains early.
		e.now = horizon
	}
	return executed
}
