package runstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzWALDecode drives the codec's bijectivity and safety properties on
// arbitrary bytes:
//
//  1. decodeRecord never panics, whatever the input;
//  2. if a payload decodes, re-encoding the record reproduces the input
//     byte-for-byte (every record has exactly one valid encoding);
//  3. scanRecords never panics on an arbitrary framed region, and every
//     record it admits round-trips the same way.
//
// The checked-in corpus (testdata/fuzz/FuzzWALDecode) seeds full valid
// payloads, framed regions, and torn/corrupt variants; regenerate it with
// JURY_REGEN_CORPUS=1 go test -run TestRegenFuzzCorpus ./internal/runstore.
func FuzzWALDecode(f *testing.F) {
	for _, seed := range corpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if rec, err := decodeRecord(data); err == nil {
			re := appendRecord(nil, rec)
			if !bytes.Equal(re, data) {
				t.Fatalf("decode/encode not bijective:\n in  %x\n out %x", data, re)
			}
		}
		rep := scanRecords(data)
		var off int64
		for _, rec := range rep.recs {
			frame := appendFrame(nil, appendRecord(nil, rec))
			if !bytes.Equal(frame, data[off:off+int64(len(frame))]) {
				t.Fatalf("scanned record at offset %d does not re-encode to its frame", off)
			}
			off += int64(len(frame))
		}
		if off != rep.validLen || rep.validLen+rep.tornLen != int64(len(data)) {
			t.Fatalf("scan accounting broken: validLen %d, tornLen %d, len %d", rep.validLen, rep.tornLen, len(data))
		}
	})
}

// corpusSeeds builds the deterministic seed inputs: valid payloads of
// escalating shape, valid framed regions, and damaged variants.
func corpusSeeds() [][]byte {
	recs := randRecords(97, 4)
	var seeds [][]byte
	// Bare payloads (what decodeRecord sees after the frame is stripped).
	for _, r := range recs {
		seeds = append(seeds, appendRecord(nil, r))
	}
	// An empty record and a minimal one.
	seeds = append(seeds, appendRecord(nil, &Record{}))
	// A multi-record framed region, a torn tail, and a flipped byte.
	var region []byte
	for _, r := range recs[:2] {
		region = appendFrame(region, appendRecord(nil, r))
	}
	seeds = append(seeds, region, region[:len(region)-3])
	mut := append([]byte(nil), region...)
	mut[len(mut)/2] ^= 0x20
	seeds = append(seeds, mut)
	// Structurally hostile payloads: bad version, huge counts, junk.
	seeds = append(seeds,
		[]byte{},
		[]byte{recVersion},
		[]byte{99, 1, 2, 3},
		append([]byte{recVersion}, bytes.Repeat([]byte{0xff}, 60)...),
	)
	return seeds
}

// TestRegenFuzzCorpus rewrites testdata/fuzz/FuzzWALDecode from corpusSeeds
// when JURY_REGEN_CORPUS=1; otherwise it verifies the checked-in corpus is
// present and well-formed so the fuzz smoke in check.sh starts from real
// records rather than only go-fuzz minimized inputs.
func TestRegenFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWALDecode")
	if os.Getenv("JURY_REGEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range corpusSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus entries to %s", len(corpusSeeds()), dir)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing (regenerate with JURY_REGEN_CORPUS=1): %v", err)
	}
	if len(entries) < len(corpusSeeds()) {
		t.Fatalf("fuzz corpus has %d entries, want at least %d", len(entries), len(corpusSeeds()))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("go test fuzz v1\n")) {
			t.Fatalf("corpus entry %s is not in go corpus format", e.Name())
		}
	}
}
