// Package copa implements Copa (Arun & Balakrishnan, NSDI'18) in its default
// mode: the sender steers its rate toward 1/(δ·dq) where dq is the standing
// queueing delay, using velocity-doubled window steps. Copa appears in the
// paper's CPU-overhead comparison (Fig. 14).
package copa

import (
	"time"

	"repro/internal/cc"
)

const (
	// Delta trades throughput for delay; 0.5 is Copa's default.
	Delta = 0.5

	initialWindow = 10
	minWindow     = 2
)

// Copa is a Copa controller. Construct with New.
type Copa struct {
	cwnd float64
	v    float64 // velocity

	minRTT   *cc.WindowedMinRTT // propagation estimate, 10 s window
	standing *cc.WindowedMinRTT // RTT_standing: min over srtt/2
	srtt     time.Duration

	lastDir       int // +1 up, -1 down
	dirSince      time.Duration
	lastVelUpdate time.Duration

	inRecovery bool
	lastLoss   time.Duration
}

// New returns a Copa controller.
func New() *Copa {
	return &Copa{
		cwnd:     initialWindow,
		v:        1,
		minRTT:   cc.NewWindowedMinRTT(10 * time.Second),
		standing: cc.NewWindowedMinRTT(100 * time.Millisecond),
	}
}

// Name implements cc.Algorithm.
func (c *Copa) Name() string { return "copa" }

// Init implements cc.Algorithm.
func (c *Copa) Init(time.Duration) {}

// OnAck implements cc.Algorithm.
func (c *Copa) OnAck(a cc.Ack) {
	if c.srtt == 0 {
		c.srtt = a.RTT
	} else {
		c.srtt += (a.RTT - c.srtt) / 8
	}
	c.minRTT.Update(a.Now, a.RTT)
	// RTT_standing is the min RTT over the last srtt/2 — it filters ACK
	// jitter but tracks the standing queue.
	c.standing.SetWindow(c.srtt / 2)
	c.standing.Update(a.Now, a.RTT)

	if c.inRecovery {
		if a.SentAt >= c.lastLoss {
			c.inRecovery = false
		} else {
			return
		}
	}

	dq := (c.standing.Value() - c.minRTT.Value()).Seconds()
	dir := +1
	if dq > 0 {
		targetRate := 1 / (Delta * dq) // packets/second
		curRate := c.cwnd / c.standing.Value().Seconds()
		if curRate > targetRate {
			dir = -1
		}
	}
	c.updateVelocity(a.Now, dir)
	step := c.v / (Delta * c.cwnd)
	c.cwnd += float64(dir) * step
	if c.cwnd < minWindow {
		c.cwnd = minWindow
	}
}

// updateVelocity doubles v once per RTT while the direction persists and
// resets it on a direction change (Copa §2.2).
func (c *Copa) updateVelocity(now time.Duration, dir int) {
	if dir != c.lastDir {
		c.lastDir = dir
		c.dirSince = now
		c.lastVelUpdate = now
		c.v = 1
		return
	}
	// Direction must persist for 3 RTTs before velocity doubling starts.
	if now-c.dirSince < 3*c.srtt {
		return
	}
	if now-c.lastVelUpdate >= c.srtt {
		c.lastVelUpdate = now
		c.v *= 2
		if c.v > 1<<16 {
			c.v = 1 << 16
		}
	}
}

// OnLoss implements cc.Algorithm. Default-mode Copa treats loss as a mild
// congestion signal (a single multiplicative cut per event).
func (c *Copa) OnLoss(l cc.Loss) {
	if c.inRecovery && l.SentAt < c.lastLoss {
		return
	}
	c.inRecovery = true
	c.lastLoss = l.Now
	c.v = 1
	c.cwnd *= 0.7
	if c.cwnd < minWindow {
		c.cwnd = minWindow
	}
}

// CWND implements cc.Algorithm.
func (c *Copa) CWND() float64 { return c.cwnd }

// PacingRate implements cc.Algorithm: Copa paces at 2·cwnd/RTT to spread
// the window over the round trip.
func (c *Copa) PacingRate() float64 {
	if c.srtt == 0 {
		return 0
	}
	return 2 * c.cwnd * 1500 * 8 / c.srtt.Seconds()
}
