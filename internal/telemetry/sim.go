package telemetry

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

// juryCounters is the structural slice of core.Jury the sim observer
// exports (no core import: telemetry must stay below every domain package
// so all of them can depend on it).
type juryCounters interface {
	Intervals() int64
	DegradedDecisions() int64
	NonFiniteActions() int64
}

// SimObserver instruments one network: packet/queue/fault counters, a
// per-ACK RTT histogram, the virtual clock, and per-interval structured
// events. It composes with whatever Tap and engine hook are already
// installed (the simcheck invariant checker runs first, telemetry second),
// and it only reads — never schedules events or draws randomness — so an
// instrumented run is digest-identical to a bare one.
type SimObserver struct {
	net    *netsim.Network
	tracer *Tracer

	pktSent   *Counter
	pktAcked  *Counter
	pktLost   *Counter
	qDrops    *Counter
	faults    *Counter
	intervals *Counter
	events    *Counter
	ackRTT    *Histogram
	vt        *Gauge
}

// AttachSim instruments n with the hub's registry and tracer, chaining any
// previously installed tap and engine hook. It returns nil (and installs
// nothing) when the hub is disabled.
func AttachSim(n *netsim.Network, h *Hub) *SimObserver {
	if !h.Enabled() {
		return nil
	}
	r := h.Registry
	o := &SimObserver{
		net:       n,
		tracer:    h.Tracer,
		pktSent:   r.Counter("sim_packets_sent_total", "packets transmitted by all flows"),
		pktAcked:  r.Counter("sim_packets_acked_total", "acknowledgments delivered to senders"),
		pktLost:   r.Counter("sim_packets_lost_total", "sender-detected packet losses"),
		qDrops:    r.Counter("sim_queue_drops_total", "packets discarded by link queues (overflow + random)"),
		faults:    r.Counter("sim_faults_injected_total", "fault-injector actions on packets"),
		intervals: r.Counter("sim_intervals_total", "interval statistics delivered to controllers"),
		events:    r.Counter("sim_engine_events_total", "discrete events executed by instrumented engines"),
		ackRTT:    r.Histogram("sim_ack_rtt_seconds", "per-ACK round-trip time", ExpBuckets(1e-3, 2, 14)),
		vt:        r.Gauge("sim_virtual_time_seconds", "virtual clock of the most recently attached network"),
	}
	n.SetTap(netsim.Taps(n.Tap(), o))
	prev := n.Engine().EventHook()
	n.Engine().SetEventHook(func(at time.Duration, seq uint64) {
		if prev != nil {
			prev(at, seq)
		}
		o.events.Inc()
		o.vt.Set(at.Seconds())
	})
	exportJuryCounters(r, n)
	return o
}

// RecordShards exports the outcome of one sharded simulation run: a gauge
// with the shard count of the most recent run plus one cumulative per-shard
// executed-event counter (sim_shard_<i>_events_total). executed is
// ShardRun.Executed from netsim — one entry per shard, in shard order. A
// disabled hub records nothing.
func RecordShards(h *Hub, executed []int64) {
	if !h.Enabled() {
		return
	}
	h.Registry.Gauge("sim_shards", "shard count of the most recent sharded run").Set(float64(len(executed)))
	for i, e := range executed {
		h.Registry.Counter(
			fmt.Sprintf("sim_shard_%d_events_total", i),
			fmt.Sprintf("events executed by shard %d across sharded runs", i),
		).Add(e)
	}
}

// RecordCoordinator exports the synchronization economics of one sharded
// run: cumulative barrier episodes and fused windows (windows whose
// cross-shard exchange phase — and second barrier — was skipped because no
// shard had events or hook records to publish). The two together say how
// barrier-lean the coordinator ran: fused/(fused+rounds-fused) is the
// fraction of windows that cost one barrier instead of two. A disabled hub
// records nothing.
func RecordCoordinator(h *Hub, rounds, fused int64) {
	if !h.Enabled() {
		return
	}
	h.Registry.Counter("sim_barrier_rounds_total", "barrier episodes across sharded runs").Add(rounds)
	h.Registry.Counter("sim_fused_windows_total", "windows that skipped the exchange phase across sharded runs").Add(fused)
}

// exportJuryCounters registers callback gauges summing the decision-guard
// counters of every Jury controller in the network. The counters are
// atomics, so the debug endpoint reads them live while the simulation runs.
func exportJuryCounters(r *Registry, n *netsim.Network) {
	var juries []juryCounters
	for _, f := range n.Flows() {
		if j, ok := f.CC().(juryCounters); ok {
			juries = append(juries, j)
		}
	}
	if len(juries) == 0 {
		return
	}
	sum := func(read func(juryCounters) int64) func() float64 {
		return func() float64 {
			var s int64
			for _, j := range juries {
				s += read(j)
			}
			return float64(s)
		}
	}
	r.GaugeFunc("jury_intervals", "control intervals elapsed across Jury flows of the live network",
		sum(juryCounters.Intervals))
	r.GaugeFunc("jury_degraded_decisions", "AIMD fallbacks at the decision boundary (non-finite signals or policy output)",
		sum(juryCounters.DegradedDecisions))
	r.GaugeFunc("jury_nonfinite_actions", "non-finite actions that slipped past the decision guard (must stay 0)",
		sum(juryCounters.NonFiniteActions))
}

// PacketSent implements netsim.Tap.
func (o *SimObserver) PacketSent(f *netsim.Flow, bytes int) { o.pktSent.Inc() }

// PacketAcked implements netsim.Tap.
func (o *SimObserver) PacketAcked(f *netsim.Flow, bytes int, rtt time.Duration) {
	o.pktAcked.Inc()
	o.ackRTT.Observe(rtt.Seconds())
}

// PacketLost implements netsim.Tap.
func (o *SimObserver) PacketLost(f *netsim.Flow, bytes int) { o.pktLost.Inc() }

// QueueEnqueued implements netsim.Tap.
func (o *SimObserver) QueueEnqueued(l *netsim.Link, bytes int) {}

// QueueDeparted implements netsim.Tap.
func (o *SimObserver) QueueDeparted(l *netsim.Link, bytes int) {}

// QueueDropped implements netsim.Tap: a counter plus a structured event
// (drops are rare enough to log individually, and a drop timeline is
// exactly what a degrading robustness case needs explained).
func (o *SimObserver) QueueDropped(l *netsim.Link, bytes int, random bool) {
	o.qDrops.Inc()
	if o.tracer != nil {
		kind := "overflow"
		if random {
			kind = "random"
		}
		o.tracer.Event("sim", "drop", o.net.Now(), Str("kind", kind), I64("bytes", int64(bytes)))
	}
}

// IntervalDelivered implements netsim.Tap: the per-interval event stream
// behind the paper's Fig. 6/7-style dynamics (throughput, loss, RTT, cwnd
// per control interval per flow).
func (o *SimObserver) IntervalDelivered(f *netsim.Flow, s cc.IntervalStats) {
	o.intervals.Inc()
	if o.tracer == nil {
		return
	}
	thr := 0.0
	if s.Interval > 0 {
		thr = float64(s.AckedBytes) * 8 / s.Interval.Seconds()
	}
	o.tracer.Event("sim", "interval", s.Now,
		Str("flow", f.Name()),
		I64("sent", s.SentPackets),
		I64("acked", s.AckedPackets),
		I64("lost", s.LostPackets),
		F64("thr_bps", thr),
		Dur("avg_rtt_ns", s.AvgRTT),
		F64("cwnd", f.CC().CWND()),
		F64("pacing_bps", f.CC().PacingRate()),
	)
}

// SampleRecorded implements netsim.Tap. The observer's per-interval event
// stream already carries the same signal at controller granularity, so
// recorded series points are not duplicated into the trace.
func (o *SimObserver) SampleRecorded(f *netsim.Flow, p netsim.SeriesPoint) {}

// FaultInjected implements netsim.Tap.
func (o *SimObserver) FaultInjected(l *netsim.Link, f *netsim.Flow, kind netsim.FaultKind, bytes int) {
	o.faults.Inc()
	if o.tracer != nil {
		o.tracer.Event("sim", "fault", o.net.Now(),
			Str("kind", kind.String()), Str("flow", f.Name()), I64("bytes", int64(bytes)))
	}
}
