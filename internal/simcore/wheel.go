package simcore

import "time"

// timerWheel is a two-level hierarchical timer wheel (calendar queue) that
// fronts the 4-ary eventHeap. The dominant event population in large meshes
// is self-rescheduling timers — pacing ticks, send timers, interval and
// record ticks — whose firing times are spread over milliseconds to seconds.
// Keeping all of them in one heap makes every schedule/cancel O(log n) with
// n in the hundreds of thousands; the wheel parks far-out events in O(1)
// slots and only migrates them into the heap when their slot comes due, so
// the heap stays small (only events within the current ~half-millisecond
// granule) and its log factor nearly vanishes.
//
// Ordering contract. The engine's observable pop order must remain the exact
// (at, schedAt, seq) total order of a pure heap — golden simcheck digests
// and sharded-parity tests compare it bit-for-bit. The wheel preserves it
// via one invariant:
//
//	(A) every queued event with at < cur+g0 lives in the heap; an event is
//	    parked in a wheel slot only while at >= cur+g0.
//
// min() restores (A) before every peek: while the heap is empty or its top
// fires at or beyond cur+g0, it advances cur one slot at a time, flushing
// each level-0 slot into the heap (and cascading level-1 slots into level 0
// at their boundaries). Once the heap top fires inside [0, cur+g0), (A)
// says no wheel-resident event can fire earlier, so the heap top is the
// global minimum — and because migration happens strictly before the peek
// that observes it, ties re-resolve inside the heap by the full
// (at, schedAt, seq) key exactly as they would have in a heap-only engine.
// Slot membership never orders events; only the heap does.
//
// Level 0 spans slot0Count slots of slot0Gran (~524 us) each, ~134 ms total;
// level 1 spans slot1Count slots of slot1Gran (~134 ms) each, ~34 s total.
// Events beyond level 1's horizon overflow into the heap directly — they are
// rare (long idle timers), and the heap handles any time, so the wheel needs
// no wraparound bookkeeping beyond the modulo slot index: an event whose
// absolute slot number aliases an already-passed slot index just waits for
// cur to come around again, which happens before it is due.
type timerWheel struct {
	heap eventHeap

	// cur is the wheel cursor: level-0 slots at or before cur have been
	// flushed into the heap. It is aligned to slot0Gran and advances
	// monotonically, independently of (and possibly ahead of) the engine
	// clock.
	cur time.Duration

	count0 int // events parked in slot0
	count1 int // events parked in slot1

	slot0 [slot0Count][]*Event
	slot1 [slot1Count][]*Event

	// noWheel forces every push into the heap, turning the engine into the
	// pre-wheel heap-only implementation. Tests use it to prove the wheel-fed
	// pop order is identical to the reference order.
	noWheel bool
}

const (
	slot0Shift = 19                    // slot0Gran = 2^19 ns ~ 524 us
	slotBits   = 8                     // 256 slots per level
	slot1Shift = slot0Shift + slotBits // slot1Gran = slot0 span ~ 134 ms
	slot0Count = 1 << slotBits
	slot1Count = 1 << slotBits

	slot0Gran = time.Duration(1) << slot0Shift
	slot1Gran = time.Duration(1) << slot1Shift
	span0     = slot0Gran << slotBits // level-0 horizon ~ 134 ms
	span1     = slot1Gran << slotBits // level-1 horizon ~ 34 s
)

// Event index sentinels. Heap-resident events carry their heap slot (>= 0);
// wheel-resident events are parked outside the heap but still queued.
const (
	idxFree  = -1 // not queued: fired, drained, or never scheduled
	idxWheel = -2 // parked in a timer-wheel slot, not yet migrated to the heap
)

// size reports the total queued event count across heap and wheel,
// including cancelled-but-undrained events.
func (w *timerWheel) size() int {
	return len(w.heap) + w.count0 + w.count1
}

// push enqueues ev, choosing heap or wheel slot by distance from cur.
// now is the engine clock, used only to re-anchor a fully drained wheel so
// cur does not lag arbitrarily far behind virtual time (which would push
// every future event into the overflow heap).
func (w *timerWheel) push(ev *Event, now time.Duration) {
	if w.noWheel {
		w.heap.push(ev)
		return
	}
	if w.count0 == 0 && w.count1 == 0 {
		if anchor := now &^ (slot0Gran - 1); w.cur < anchor {
			w.cur = anchor
		}
	}
	d := ev.at - w.cur
	switch {
	case d < slot0Gran:
		// Inside the current granule (or behind a cursor that ran ahead of
		// the clock): invariant (A) requires the heap.
		w.heap.push(ev)
	case d < span0:
		i := int(ev.at>>slot0Shift) & (slot0Count - 1)
		ev.index = idxWheel
		w.slot0[i] = append(w.slot0[i], ev)
		w.count0++
	case d < span1:
		i := int(ev.at>>slot1Shift) & (slot1Count - 1)
		ev.index = idxWheel
		w.slot1[i] = append(w.slot1[i], ev)
		w.count1++
	default:
		// Beyond the level-1 horizon: overflow into the heap.
		w.heap.push(ev)
	}
}

// min returns the globally earliest queued event (nil when empty), migrating
// wheel slots into the heap as needed to establish invariant (A)'s guarantee
// that the heap top is the global minimum.
func (w *timerWheel) min() *Event {
	for (w.count0 > 0 || w.count1 > 0) &&
		(len(w.heap) == 0 || w.heap[0].at-w.cur >= slot0Gran) {
		w.advance()
	}
	if len(w.heap) == 0 {
		return nil
	}
	return w.heap[0]
}

// popMin removes the heap top. Callers must have called min() immediately
// before, so the heap top is the global minimum.
func (w *timerWheel) popMin() *Event {
	return w.heap.popMin()
}

// advance moves cur forward one step, migrating due slots toward the heap.
func (w *timerWheel) advance() {
	if w.count0 == 0 {
		// Level 0 is empty, so nothing can be due before the next level-1
		// boundary: jump straight there and cascade its slot down.
		w.cur = (w.cur &^ (slot1Gran - 1)) + slot1Gran
		w.cascade()
		return
	}
	w.cur += slot0Gran
	if w.cur&(slot1Gran-1) == 0 && w.count1 > 0 {
		w.cascade()
	}
	w.flush()
}

// flush migrates the level-0 slot covering [cur, cur+slot0Gran) into the
// heap, restoring invariant (A) for the newly entered granule.
func (w *timerWheel) flush() {
	i := int(w.cur>>slot0Shift) & (slot0Count - 1)
	s := w.slot0[i]
	if len(s) == 0 {
		return
	}
	for j, ev := range s {
		s[j] = nil
		w.heap.push(ev)
	}
	w.count0 -= len(s)
	w.slot0[i] = s[:0]
}

// cascade re-places the level-1 slot whose boundary cur just reached. Each
// event lands in a level-0 slot or, if due within the entered granule, the
// heap; nothing can map back into level 1, because the slot's whole range
// fits inside level 0's span.
func (w *timerWheel) cascade() {
	i := int(w.cur>>slot1Shift) & (slot1Count - 1)
	s := w.slot1[i]
	if len(s) == 0 {
		return
	}
	w.count1 -= len(s)
	w.slot1[i] = s[:0]
	for j, ev := range s {
		s[j] = nil
		if d := ev.at - w.cur; d < slot0Gran {
			w.heap.push(ev)
		} else {
			k := int(ev.at>>slot0Shift) & (slot0Count - 1)
			w.slot0[k] = append(w.slot0[k], ev)
			w.count0++
		}
	}
}

// live counts queued events that are not cancelled, scanning heap and wheel.
func (w *timerWheel) live() int {
	n := 0
	for _, ev := range w.heap {
		if !ev.cancelled {
			n++
		}
	}
	for i := range w.slot0 {
		for _, ev := range w.slot0[i] {
			if !ev.cancelled {
				n++
			}
		}
	}
	for i := range w.slot1 {
		for _, ev := range w.slot1[i] {
			if !ev.cancelled {
				n++
			}
		}
	}
	return n
}
