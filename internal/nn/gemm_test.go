package nn

import (
	"math"
	"testing"

	"repro/internal/simcore"
)

// naiveMatMul is the reference three-loop product for kernel tests.
func naiveMatMul(a, b []float64, m, k, n int, ta bool) []float64 {
	dst := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				bv := b[p*n+j]
				if ta {
					bv = b[j*k+p] // b stored n×k, used transposed
				}
				s += a[i*k+p] * bv
			}
			dst[i*n+j] = s
		}
	}
	return dst
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randMat(rng *simcore.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Range(-2, 2)
	}
	return v
}

func TestMatMulKernels(t *testing.T) {
	rng := simcore.NewRNG(41)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 64, 32}, {64, 300, 17}, {3, 257, 2}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		bt := randMat(rng, n*k)

		dst := make([]float64, m*n)
		MatMul(dst, a, b, m, k, n)
		if d := maxAbsDiff(dst, naiveMatMul(a, b, m, k, n, false)); d > 1e-9 {
			t.Fatalf("MatMul %v: max diff %g", sh, d)
		}

		MatMulT(dst, a, bt, m, k, n)
		if d := maxAbsDiff(dst, naiveMatMul(a, bt, m, k, n, true)); d > 1e-9 {
			t.Fatalf("MatMulT %v: max diff %g", sh, d)
		}

		// MatMulTAcc: dst[k×n] += aᵀ[m×k]ᵀ · b2[m×n]; run twice to cover the
		// accumulate semantics.
		b2 := randMat(rng, m*n)
		acc := make([]float64, k*n)
		MatMulTAcc(acc, a, b2, m, k, n)
		MatMulTAcc(acc, a, b2, m, k, n)
		want := make([]float64, k*n)
		for r := 0; r < m; r++ {
			for i := 0; i < k; i++ {
				for j := 0; j < n; j++ {
					want[i*n+j] += 2 * a[r*k+i] * b2[r*n+j]
				}
			}
		}
		if d := maxAbsDiff(acc, want); d > 1e-9 {
			t.Fatalf("MatMulTAcc %v: max diff %g", sh, d)
		}

		// MatMulTSet overwrites: seed dst with garbage, expect half of the
		// doubled accumulation reference.
		for i := range acc {
			acc[i] = 1e9
		}
		MatMulTSet(acc, a, b2, m, k, n)
		for i := range want {
			want[i] /= 2
		}
		if d := maxAbsDiff(acc, want); d > 1e-9 {
			t.Fatalf("MatMulTSet %v: max diff %g", sh, d)
		}
	}
}

func TestAddBiasRowsAndColSum(t *testing.T) {
	rng := simcore.NewRNG(42)
	rows, n := 5, 7
	m := randMat(rng, rows*n)
	bias := randMat(rng, n)
	got := append([]float64(nil), m...)
	AddBiasRows(got, bias, rows, n)
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			if want := m[r*n+j] + bias[j]; got[r*n+j] != want {
				t.Fatalf("AddBiasRows[%d,%d] = %v, want %v", r, j, got[r*n+j], want)
			}
		}
	}
	sums := make([]float64, n)
	ColSumAcc(sums, m, rows, n)
	for j := 0; j < n; j++ {
		var want float64
		for r := 0; r < rows; r++ {
			want += m[r*n+j]
		}
		if math.Abs(sums[j]-want) > 1e-12 {
			t.Fatalf("ColSumAcc[%d] = %v, want %v", j, sums[j], want)
		}
	}
	set := make([]float64, n)
	for j := range set {
		set[j] = 1e9 // ColSumSet must overwrite, not accumulate
	}
	ColSumSet(set, m, rows, n)
	if d := maxAbsDiff(set, sums); d > 1e-12 {
		t.Fatalf("ColSumSet differs from ColSumAcc into zeros by %g", d)
	}
}

// TestBackwardBatchVariants checks the lean backward entry points against
// the accumulating reference: BackwardBatchParams must match a zeroed
// BackwardBatchInto within 1e-9 (its overwrite kernel pairs sample rows on
// a different boundary, so the last ulp may differ) and be idempotent,
// while BackwardBatchInput must return bit-identical input gradients (that
// path shares every kernel call with the reference).
func TestBackwardBatchVariants(t *testing.T) {
	for seed := uint64(51); seed <= 60; seed++ {
		rng := simcore.NewRNG(seed)
		m := randomBatchMLP(rng)
		rows := 1 + int(rng.Intn(33))
		in, out := m.InputDim(), m.OutputDim()
		x := randMat(rng, rows*in)
		dOut := randMat(rng, rows*out)

		tr := NewBatchTrace(m, rows)
		m.ForwardBatchTraceInto(x, rows, tr)
		bs := NewBatchScratch(m, rows)

		ref := NewGrads(m)
		dInRef := append([]float64(nil), m.BackwardBatchInto(tr, rows, dOut, ref, bs)...)

		got := NewGrads(m)
		m.BackwardBatchParams(tr, rows, dOut, got, bs)
		// Run twice: Params has overwrite semantics, so the second call must
		// not double anything.
		m.BackwardBatchParams(tr, rows, dOut, got, bs)
		for li := range ref.W {
			if d := maxAbsDiff(got.W[li], ref.W[li]); d > 1e-9 {
				t.Fatalf("seed %d layer %d: Params W gradient differs by %g", seed, li, d)
			}
			if d := maxAbsDiff(got.B[li], ref.B[li]); d > 1e-9 {
				t.Fatalf("seed %d layer %d: Params B gradient differs by %g", seed, li, d)
			}
		}

		dIn := m.BackwardBatchInput(tr, rows, dOut, bs)
		if d := maxAbsDiff(dIn, dInRef); d != 0 {
			t.Fatalf("seed %d: Input-only dIn differs by %g", seed, d)
		}
	}
}

// randomBatchMLP builds a random-shape MLP mixing all activations.
func randomBatchMLP(rng *simcore.RNG) *MLP {
	depth := 2 + int(rng.Intn(3))
	sizes := make([]int, depth+1)
	acts := make([]Activation, depth)
	for i := range sizes {
		sizes[i] = 1 + int(rng.Intn(40))
	}
	for i := range acts {
		acts[i] = Activation(rng.Intn(4))
	}
	return NewMLP(rng.Split(77), sizes, acts)
}

// TestForwardBatchMatchesPerSample is the batched-vs-scalar equivalence
// property: across random shapes, activations, and seeds, the batched
// forward must reproduce the per-sample ForwardInto reference within 1e-9.
func TestForwardBatchMatchesPerSample(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := simcore.NewRNG(seed)
		m := randomBatchMLP(rng)
		rows := 1 + int(rng.Intn(65))
		in, out := m.InputDim(), m.OutputDim()
		x := randMat(rng, rows*in)

		bs := NewBatchScratch(m, rows)
		got := m.ForwardBatchInto(x, rows, bs)

		s := NewScratch(m)
		for r := 0; r < rows; r++ {
			want := m.ForwardInto(x[r*in:(r+1)*in], s)
			if d := maxAbsDiff(got[r*out:(r+1)*out], want); d > 1e-9 {
				t.Fatalf("seed %d row %d: batch forward differs by %g", seed, r, d)
			}
		}

		// The traced variant must agree exactly with the untraced one and own
		// its input.
		tr := NewBatchTrace(m, rows)
		m.ForwardBatchTraceInto(x, rows, tr)
		if d := maxAbsDiff(tr.Output()[:rows*out], got[:rows*out]); d != 0 {
			t.Fatalf("seed %d: traced batch forward differs by %g", seed, d)
		}
		x[0] = 1e9
		if tr.acts[0][0] == 1e9 {
			t.Fatalf("seed %d: batch trace aliases caller input", seed)
		}
	}
}

// TestBackwardBatchMatchesPerSample: the batched backward's parameter
// gradients must equal the sum of per-sample BackwardInto gradients, and
// its input-gradient rows must match per-sample input gradients, within
// 1e-9 across random shapes/activations/seeds.
func TestBackwardBatchMatchesPerSample(t *testing.T) {
	for seed := uint64(21); seed <= 40; seed++ {
		rng := simcore.NewRNG(seed)
		m := randomBatchMLP(rng)
		rows := 1 + int(rng.Intn(33))
		in, out := m.InputDim(), m.OutputDim()
		x := randMat(rng, rows*in)
		dOut := randMat(rng, rows*out)

		// Batched pass.
		btr := NewBatchTrace(m, rows)
		m.ForwardBatchTraceInto(x, rows, btr)
		bg := NewGrads(m)
		bs := NewBatchScratch(m, rows)
		dIn := m.BackwardBatchInto(btr, rows, dOut, bg, bs)

		// Per-sample reference, gradients summed over the batch.
		sg := NewGrads(m)
		s := NewScratch(m)
		tr := NewTrace(m)
		for r := 0; r < rows; r++ {
			m.ForwardTraceInto(x[r*in:(r+1)*in], tr)
			dInWant := m.BackwardInto(tr, dOut[r*out:(r+1)*out], sg, s)
			if d := maxAbsDiff(dIn[r*in:(r+1)*in], dInWant); d > 1e-9 {
				t.Fatalf("seed %d row %d: input gradient differs by %g", seed, r, d)
			}
		}
		for li := range sg.W {
			if d := maxAbsDiff(bg.W[li], sg.W[li]); d > 1e-9 {
				t.Fatalf("seed %d layer %d: W gradient differs by %g", seed, li, d)
			}
			if d := maxAbsDiff(bg.B[li], sg.B[li]); d > 1e-9 {
				t.Fatalf("seed %d layer %d: B gradient differs by %g", seed, li, d)
			}
		}
	}
}

// TestBatchTraceSliceViews verifies that row-range views share storage with
// the parent trace and backpropagating shard-by-shard reproduces the
// full-batch gradients (the decomposition the sharded TD3 update relies
// on).
func TestBatchTraceSliceViews(t *testing.T) {
	rng := simcore.NewRNG(99)
	m := NewMLP(rng, []int{6, 16, 3}, []Activation{ReLU, Tanh})
	const rows = 12
	x := randMat(rng, rows*6)
	dOut := randMat(rng, rows*3)

	tr := NewBatchTrace(m, rows)
	m.ForwardBatchTraceInto(x, rows, tr)
	full := NewGrads(m)
	bs := NewBatchScratch(m, rows)
	m.BackwardBatchInto(tr, rows, dOut, full, bs)

	shard := NewGrads(m)
	for r0 := 0; r0 < rows; r0 += 5 {
		r1 := r0 + 5
		if r1 > rows {
			r1 = rows
		}
		v := tr.Slice(r0, r1)
		if v.Rows() != r1-r0 {
			t.Fatalf("view rows %d, want %d", v.Rows(), r1-r0)
		}
		m.BackwardBatchInto(v, r1-r0, dOut[r0*3:r1*3], shard, bs)
	}
	for li := range full.W {
		if d := maxAbsDiff(shard.W[li], full.W[li]); d > 1e-9 {
			t.Fatalf("layer %d: sharded W gradient differs by %g", li, d)
		}
		if d := maxAbsDiff(shard.B[li], full.B[li]); d > 1e-9 {
			t.Fatalf("layer %d: sharded B gradient differs by %g", li, d)
		}
	}
}

// TestBatchKernelsAllocFree pins the steady-state allocation contract of
// the batched pipeline.
func TestBatchKernelsAllocFree(t *testing.T) {
	m := benchMLP()
	const rows = 64
	x := make([]float64, rows*m.InputDim())
	dOut := make([]float64, rows*m.OutputDim())
	bs := NewBatchScratch(m, rows)
	tr := NewBatchTrace(m, rows)
	g := NewGrads(m)
	avg := testing.AllocsPerRun(50, func() {
		m.ForwardBatchTraceInto(x, rows, tr)
		g.Zero()
		m.BackwardBatchInto(tr, rows, dOut, g, bs)
		m.ForwardBatchInto(x, rows, bs)
	})
	if avg != 0 {
		t.Fatalf("batched forward/backward allocates %v per run, want 0", avg)
	}
}

func BenchmarkMLPForwardBatch(b *testing.B) {
	m := benchMLP()
	const rows = 64
	x := make([]float64, rows*m.InputDim())
	for i := range x {
		x[i] = float64(i%31) * 0.1
	}
	bs := NewBatchScratch(m, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m.ForwardBatchInto(x, rows, bs)
		sinkF64 = out[0]
	}
}

func BenchmarkMLPBackwardBatch(b *testing.B) {
	m := benchMLP()
	const rows = 64
	x := make([]float64, rows*m.InputDim())
	for i := range x {
		x[i] = float64(i%31) * 0.1
	}
	dOut := make([]float64, rows*m.OutputDim())
	for i := range dOut {
		dOut[i] = 1
	}
	bs := NewBatchScratch(m, rows)
	tr := NewBatchTrace(m, rows)
	g := NewGrads(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatchTraceInto(x, rows, tr)
		g.Zero()
		sinkSlice = m.BackwardBatchInto(tr, rows, dOut, g, bs)
	}
}
