// Streaming-observability wiring shared by the binaries: one call builds the
// obs runtime from the -obs/-obs-window/-flight-dir flags, installs it on the
// harness, and mounts the live fairness surfaces on the telemetry debug
// server. See DESIGN.md "Streaming observability".
package exp

import (
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Obs, when non-nil, attaches a constant-memory streaming fairness observer
// to every run (Run and RunHuge): windowed Jain and rate/RTT percentile
// snapshots in virtual time, a per-shard flight recorder, and a compact
// StreamSummary on the result. Set it directly or via SetupObs. Attaching
// obs never changes what a run computes — the digest-parity tests pin that.
var Obs *obs.Runtime

// SetupObs builds the streaming-observability runtime from the shared flag
// values, installs it as the package-level Obs, and mounts the live
// /fairness (JSON) and /fairness/stream (SSE) surfaces on the hub's debug
// server when one is listening. A non-empty flightDir implies enabled.
// Returns nil — and installs nothing — when the observer is off.
func SetupObs(enabled bool, window time.Duration, flightDir string, hub *telemetry.Hub) *obs.Runtime {
	if !enabled && flightDir == "" {
		return nil
	}
	rt := obs.New(obs.Options{Window: window, FlightDir: flightDir})
	Obs = rt
	if d := hub.Debug(); d != nil {
		d.Handle("/fairness", rt.State())
		d.Handle("/fairness/stream", rt.State().StreamHandler())
	}
	return rt
}
