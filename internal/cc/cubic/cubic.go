// Package cubic implements the CUBIC congestion control algorithm
// (Ha, Rhee, Xu, 2008): a cubic window-growth function anchored at the
// window size of the last congestion event, with fast convergence and the
// TCP-friendly region. CUBIC is the strongest classic baseline in the
// paper's evaluation and the classic half of the Orca hybrid.
package cubic

import (
	"math"
	"time"

	"repro/internal/cc"
)

const (
	// Beta is the multiplicative decrease factor (Linux uses 0.7 remaining,
	// i.e. a 0.3 cut).
	Beta = 0.7
	// C scales the cubic growth function (RFC 8312 value).
	C = 0.4

	initialWindow = 10
	minWindow     = 2
)

// Cubic is a CUBIC controller. Construct with New.
type Cubic struct {
	cwnd     float64
	ssthresh float64

	wMax       float64       // window at the last congestion event
	epochStart time.Duration // start of the current cubic epoch
	k          float64       // time to regrow to wMax, seconds

	srtt       time.Duration
	inRecovery bool
	lastLoss   time.Duration

	ackedSinceGrow float64 // fractional-window accumulation for TCP-friendly growth
	wEst           float64 // TCP-friendly (AIMD) window estimate
}

// New returns a CUBIC controller in slow start.
func New() *Cubic {
	return &Cubic{cwnd: initialWindow, ssthresh: 1e9}
}

// Name implements cc.Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// Init implements cc.Algorithm.
func (c *Cubic) Init(time.Duration) {}

// OnAck implements cc.Algorithm.
func (c *Cubic) OnAck(a cc.Ack) {
	if c.srtt == 0 {
		c.srtt = a.RTT
	} else {
		c.srtt += (a.RTT - c.srtt) / 8
	}
	if c.inRecovery && a.SentAt >= c.lastLoss {
		c.inRecovery = false
	}
	if c.inRecovery {
		return
	}
	if c.cwnd < c.ssthresh {
		c.cwnd++
		return
	}
	c.congestionAvoidance(a.Now)
}

// congestionAvoidance applies the cubic growth function
// W(t) = C·(t−K)³ + Wmax, bounded below by the TCP-friendly estimate.
func (c *Cubic) congestionAvoidance(now time.Duration) {
	if c.epochStart == 0 {
		c.epochStart = now
		if c.cwnd < c.wMax {
			c.k = math.Cbrt((c.wMax - c.cwnd) / C)
		} else {
			c.k = 0
			c.wMax = c.cwnd
		}
		c.wEst = c.cwnd
		c.ackedSinceGrow = 0
	}
	t := (now - c.epochStart).Seconds()
	target := C*math.Pow(t-c.k, 3) + c.wMax

	// TCP-friendly region: emulate AIMD growth of 3(1−β)/(1+β) packets per
	// RTT; one RTT ≈ cwnd ACKs, so track elapsed "RTTs" as acked/cwnd.
	c.ackedSinceGrow++
	growPerRTT := 3 * (1 - Beta) / (1 + Beta)
	c.wEst = c.wEstStart() + growPerRTT*(c.ackedSinceGrow/c.cwnd)
	if target < c.wEst {
		target = c.wEst
	}

	if target > c.cwnd {
		// Approach the target over roughly one RTT of ACKs.
		c.cwnd += (target - c.cwnd) / c.cwnd
	} else {
		c.cwnd += 0.01 / c.cwnd // minimal probe growth at/above target
	}
	if c.cwnd > 1e9 {
		c.cwnd = 1e9
	}
}

// wEstStart is the AIMD window at the start of the epoch.
func (c *Cubic) wEstStart() float64 {
	return c.wMax * Beta
}

// OnLoss implements cc.Algorithm: multiplicative decrease with fast
// convergence, one cut per congestion event.
func (c *Cubic) OnLoss(l cc.Loss) {
	if c.inRecovery && l.SentAt < c.lastLoss {
		return
	}
	c.inRecovery = true
	c.lastLoss = l.Now
	c.epochStart = 0
	if c.cwnd < c.wMax {
		// Fast convergence: release more bandwidth when the available
		// capacity appears to have shrunk.
		c.wMax = c.cwnd * (1 + Beta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= Beta
	if c.cwnd < minWindow {
		c.cwnd = minWindow
	}
	c.ssthresh = c.cwnd
}

// CWND implements cc.Algorithm.
func (c *Cubic) CWND() float64 { return c.cwnd }

// PacingRate implements cc.Algorithm. CUBIC is ack-clocked (unpaced).
func (c *Cubic) PacingRate() float64 { return 0 }

// WMax exposes the last-event window (Orca's hybrid control reads it).
func (c *Cubic) WMax() float64 { return c.wMax }

// SetCWND overrides the window; the Orca hybrid uses this to apply its
// DRL multiplier on top of CUBIC's state. CUBIC's growth target is
// untouched, so the window converges back toward the cubic function within
// about one RTT.
func (c *Cubic) SetCWND(w float64) {
	if w < minWindow {
		w = minWindow
	}
	c.cwnd = w
}

// Rebase overrides the window *and* re-anchors CUBIC's state (wMax,
// ssthresh, epoch) at it, the effect of an external controller setting both
// snd_cwnd and snd_ssthresh: growth restarts from the new anchor instead of
// snapping back to the old target.
func (c *Cubic) Rebase(w float64) {
	if w < minWindow {
		w = minWindow
	}
	c.cwnd = w
	c.wMax = w
	c.ssthresh = w
	c.epochStart = 0
}
