package exp

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/netsim"
)

// fingerprint serializes everything a figure runner could read from a
// result, so two results compare byte-identical or not at all.
func fingerprint(r *RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "util=%v\n", r.Utilization)
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "%s stats=%+v\n", f.Name(), f.Stats())
		for _, p := range f.Series() {
			fmt.Fprintf(&b, "%+v\n", p)
		}
	}
	return b.String()
}

func runManyJobs() []Scenario {
	return []Scenario{
		{
			Name: "two-jury", Rate: 30e6, OneWayDelay: 10 * time.Millisecond,
			BufferBytes: 75_000, Horizon: 6 * time.Second, Seed: 1,
			Flows: []FlowSpec{{Scheme: "jury"}, {Scheme: "jury", Start: 2 * time.Second}},
		},
		{
			Name: "lossy-mixed", Rate: 20e6, OneWayDelay: 15 * time.Millisecond,
			BufferBytes: 75_000, LossRate: 0.005, Horizon: 5 * time.Second, Seed: 2,
			Flows: []FlowSpec{{Scheme: "cubic"}, {Scheme: "jury", ExtraOneWay: 20 * time.Millisecond}},
		},
		{
			Name: "bbr-solo", Rate: 40e6, OneWayDelay: 5 * time.Millisecond,
			BufferBytes: 50_000, Horizon: 4 * time.Second, Seed: 3,
			Flows: []FlowSpec{{Scheme: "bbr"}},
		},
	}
}

func TestRunManyMatchesSequential(t *testing.T) {
	jobs := runManyJobs()
	want := make([]string, len(jobs))
	for i, s := range jobs {
		r, err := Run(s)
		if err != nil {
			t.Fatalf("sequential Run(%q): %v", s.Name, err)
		}
		want[i] = fingerprint(r)
	}
	got, err := RunMany(jobs)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("RunMany returned %d results for %d jobs", len(got), len(jobs))
	}
	for i, r := range got {
		if fp := fingerprint(r); fp != want[i] {
			t.Errorf("job %d (%q): RunMany result differs from sequential Run", i, jobs[i].Name)
		}
	}
}

func TestRunManyFirstErrorByIndex(t *testing.T) {
	jobs := runManyJobs()
	jobs[1].Flows[0].Scheme = "no-such-scheme-b"
	jobs[2].Flows[0].Scheme = "no-such-scheme-c"
	_, seqErr := Run(jobs[1])
	if seqErr == nil {
		t.Fatal("sequential Run accepted an unknown scheme")
	}
	results, err := RunMany(jobs)
	if results != nil {
		t.Fatal("RunMany returned results alongside an error")
	}
	if err == nil || err.Error() != seqErr.Error() {
		t.Fatalf("RunMany error %v, want the first sequential error %v", err, seqErr)
	}
}

func TestRunManyEmpty(t *testing.T) {
	results, err := RunMany(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("RunMany(nil) = %v, %v; want empty, nil", results, err)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int64
	if err := parallelFor(n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	sentinel := errors.New("boom")
	err := parallelFor(n, func(i int) error {
		if i > 39 {
			return fmt.Errorf("fail %d", i)
		}
		if i == 39 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("parallelFor error %v, want the lowest-index failure %v", err, sentinel)
	}
}

// BenchmarkScenario measures a full scenario simulation — the unit of work
// RunMany distributes. Allocations here are dominated by the per-step hot
// path (event scheduling, packets, NN inference), so allocs/op tracks the
// pooling work in simcore, netsim, and nn.
func BenchmarkScenario(b *testing.B) {
	s := Scenario{
		Name: "bench", Rate: 30e6, OneWayDelay: 10 * time.Millisecond,
		BufferBytes: 75_000, Horizon: 5 * time.Second, Seed: 7,
		Flows: []FlowSpec{{Scheme: "jury"}, {Scheme: "jury", Start: time.Second}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = []*netsim.Flow(nil) // keep the import tied to the fingerprint helper

// tinyScenario builds the smallest useful run with a custom controller
// factory, for the panic-recovery tests below.
func tinyScenario(name string, mk func(seed uint64) cc.Algorithm) Scenario {
	return Scenario{
		Name: name, Rate: 10e6, OneWayDelay: 5 * time.Millisecond,
		BufferBytes: 25_000, Horizon: 2 * time.Second, Seed: 9,
		Flows: []FlowSpec{{Scheme: "custom", CC: mk}},
	}
}

// TestRunManyConvertsPanicToError: one poisoned scenario must surface a
// *PanicError naming the scenario and carrying the stack, not crash the
// whole sweep's process.
func TestRunManyConvertsPanicToError(t *testing.T) {
	jobs := []Scenario{
		tinyScenario("healthy", func(uint64) cc.Algorithm { return cubic.New() }),
		tinyScenario("poisoned", func(uint64) cc.Algorithm {
			panic("poisoned controller")
		}),
	}
	_, err := RunMany(jobs)
	if err == nil {
		t.Fatal("RunMany swallowed a panicking scenario")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError: %v", err, err)
	}
	if pe.Scenario != "poisoned" {
		t.Fatalf("PanicError names scenario %q, want %q", pe.Scenario, "poisoned")
	}
	msg := err.Error()
	if !strings.Contains(msg, "poisoned controller") {
		t.Errorf("error text lost the panic value: %q", msg)
	}
	if !strings.Contains(msg, "goroutine") {
		t.Errorf("error text lost the stack trace: %q", msg)
	}
}

// TestRunManyRetriesTransientPanic: a panic that does not recur must be
// absorbed by the single retry.
func TestRunManyRetriesTransientPanic(t *testing.T) {
	var calls atomic.Int64
	jobs := []Scenario{tinyScenario("flaky", func(uint64) cc.Algorithm {
		if calls.Add(1) == 1 {
			panic("transient")
		}
		return cubic.New()
	})}
	results, err := RunMany(jobs)
	if err != nil {
		t.Fatalf("RunMany did not retry a transient panic: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("controller factory called %d times, want 2 (initial + retry)", n)
	}
	if results[0] == nil || len(results[0].Flows) != 1 {
		t.Fatal("retry produced no usable result")
	}
}

// TestFlowSpecCCOverride: a custom factory replaces the scheme lookup and
// the flow still moves traffic.
func TestFlowSpecCCOverride(t *testing.T) {
	var calls atomic.Int64
	s := tinyScenario("override", func(uint64) cc.Algorithm {
		calls.Add(1)
		return cubic.New()
	})
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("factory called %d times, want 1", n)
	}
	if r.Flows[0].Stats().AckedBytes == 0 {
		t.Fatal("overridden flow moved no traffic")
	}
}
