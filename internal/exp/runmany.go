package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// parallelFor runs fn(i) for every i in [0, n) across up to GOMAXPROCS
// worker goroutines and returns the error of the lowest failing index (the
// same error a sequential loop would surface first). Workers pull indices
// from a shared atomic counter, so uneven per-item cost does not idle them.
// fn must be safe to call concurrently from multiple goroutines.
func parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PanicError is the error a panicking scenario run is converted into: one
// poisoned run must fail as a per-run error with its stack, not kill the
// whole figure sweep's process.
type PanicError struct {
	Scenario string
	Value    any
	Stack    []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exp: scenario %q panicked: %v\n%s", e.Scenario, e.Value, e.Stack)
}

// runSafe executes Run under a panic guard.
func runSafe(s Scenario) (r *RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			r = nil
			err = &PanicError{Scenario: s.Name, Value: p, Stack: debug.Stack()}
		}
	}()
	return Run(s)
}

// RunMany executes scenarios concurrently on a GOMAXPROCS-sized worker pool
// and returns results in input order. Every scenario builds its own network,
// event engine, and RNG (seeded from Scenario.Seed), so each result is
// bit-identical to what a sequential Run(jobs[i]) would produce; only
// wall-clock time changes. A worker that panics surfaces a *PanicError for
// that scenario (after one retry, in case the panic was transient) instead
// of crashing the process. On error, the first failure in input order is
// returned and the results are discarded.
func RunMany(jobs []Scenario) ([]*RunResult, error) {
	results := make([]*RunResult, len(jobs))
	hub := Telemetry
	var completed atomic.Int64
	var sweepStart time.Time
	if hub.Enabled() {
		sweepStart = time.Now()
		hub.Event("exp", "sweep_start", 0, telemetry.I64("total", int64(len(jobs))))
	}
	err := parallelFor(len(jobs), func(i int) error {
		r, err := runSafe(jobs[i])
		if _, panicked := err.(*PanicError); panicked {
			if hub.Enabled() {
				hub.Registry.Counter("exp_panic_retries_total", "scenario runs retried after a panic").Inc()
				hub.Event("exp", "panic_retry", 0, telemetry.Str("scenario", jobs[i].Name))
			}
			r, err = runSafe(jobs[i])
		}
		results[i] = r
		if hub.Enabled() {
			done := completed.Add(1)
			elapsed := time.Since(sweepStart)
			// Linear extrapolation from the mean per-run wall time; coarse
			// but monotone, and only emitted on the instrumented path.
			eta := time.Duration(float64(elapsed) / float64(done) * float64(int64(len(jobs))-done))
			hub.Event("exp", "progress", 0,
				telemetry.I64("completed", done),
				telemetry.I64("total", int64(len(jobs))),
				telemetry.Dur("elapsed_ns", elapsed),
				telemetry.Dur("eta_ns", eta))
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
