package nn

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simcore"
)

func newTestMLP(seed uint64) *MLP {
	rng := simcore.NewRNG(seed)
	return NewMLP(rng, []int{3, 8, 5, 2}, []Activation{ReLU, Tanh, Linear})
}

func TestForwardShapes(t *testing.T) {
	m := newTestMLP(1)
	if m.InputDim() != 3 || m.OutputDim() != 2 {
		t.Fatalf("dims %d/%d", m.InputDim(), m.OutputDim())
	}
	out := m.Forward([]float64{0.1, -0.2, 0.3})
	if len(out) != 2 {
		t.Fatalf("output len %d", len(out))
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite output %v", out)
		}
	}
}

func TestForwardTraceMatchesForward(t *testing.T) {
	m := newTestMLP(2)
	x := []float64{0.5, -1, 0.25}
	a := m.Forward(x)
	b := m.ForwardTrace(x).Output()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace output diverges: %v vs %v", a, b)
		}
	}
}

// numericalGrad estimates dLoss/dtheta for a scalar loss by central
// differences, where loss = sum(output · dOut).
func numericalGrad(m *MLP, x, dOut []float64, theta *float64) float64 {
	const h = 1e-6
	orig := *theta
	loss := func() float64 {
		out := m.Forward(x)
		var s float64
		for i, o := range out {
			s += o * dOut[i]
		}
		return s
	}
	*theta = orig + h
	lp := loss()
	*theta = orig - h
	lm := loss()
	*theta = orig
	return (lp - lm) / (2 * h)
}

func TestBackwardMatchesNumericalGradients(t *testing.T) {
	m := newTestMLP(3)
	x := []float64{0.3, -0.7, 1.1}
	dOut := []float64{1.0, -0.5}

	tr := m.ForwardTrace(x)
	g := NewGrads(m)
	m.Backward(tr, dOut, g)

	for li, l := range m.Layers {
		for wi := range l.W {
			want := numericalGrad(m, x, dOut, &l.W[wi])
			got := g.W[li][wi]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("layer %d W[%d]: analytic %v numeric %v", li, wi, got, want)
			}
		}
		for bi := range l.B {
			want := numericalGrad(m, x, dOut, &l.B[bi])
			got := g.B[li][bi]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("layer %d B[%d]: analytic %v numeric %v", li, bi, got, want)
			}
		}
	}
}

func TestBackwardInputGradientMatchesNumerical(t *testing.T) {
	m := newTestMLP(4)
	x := []float64{0.3, -0.7, 1.1}
	dOut := []float64{0.8, 0.2}
	tr := m.ForwardTrace(x)
	g := NewGrads(m)
	dIn := m.Backward(tr, dOut, g)

	const h = 1e-6
	for i := range x {
		orig := x[i]
		loss := func() float64 {
			out := m.Forward(x)
			return out[0]*dOut[0] + out[1]*dOut[1]
		}
		x[i] = orig + h
		lp := loss()
		x[i] = orig - h
		lm := loss()
		x[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(dIn[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("dInput[%d]: analytic %v numeric %v", i, dIn[i], want)
		}
	}
}

func TestGradCheckSigmoidNetwork(t *testing.T) {
	rng := simcore.NewRNG(11)
	m := NewMLP(rng, []int{2, 6, 1}, []Activation{Sigmoid, Sigmoid})
	x := []float64{0.4, -0.9}
	dOut := []float64{1}
	tr := m.ForwardTrace(x)
	g := NewGrads(m)
	m.Backward(tr, dOut, g)
	l := m.Layers[0]
	for wi := range l.W {
		want := numericalGrad(m, x, dOut, &l.W[wi])
		if math.Abs(g.W[0][wi]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("sigmoid grad mismatch at %d: %v vs %v", wi, g.W[0][wi], want)
		}
	}
}

func TestAdamLearnsXOR(t *testing.T) {
	rng := simcore.NewRNG(7)
	m := NewMLP(rng, []int{2, 16, 1}, []Activation{Tanh, Sigmoid})
	opt := NewAdam(m, 0.01)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	g := NewGrads(m)
	for epoch := 0; epoch < 3000; epoch++ {
		g.Zero()
		for i, x := range inputs {
			tr := m.ForwardTrace(x)
			out := tr.Output()[0]
			// d(MSE)/dout = 2(out - target)
			m.Backward(tr, []float64{2 * (out - targets[i])}, g)
		}
		g.Scale(1.0 / float64(len(inputs)))
		opt.Step(m, g)
	}
	for i, x := range inputs {
		out := m.Forward(x)[0]
		if math.Abs(out-targets[i]) > 0.1 {
			t.Fatalf("XOR not learned: f(%v)=%v want %v", x, out, targets[i])
		}
	}
}

func TestAdamLearnsRegression(t *testing.T) {
	// Fit y = 2x1 - 3x2 + 1 with a linear net: Adam must drive MSE ~0.
	rng := simcore.NewRNG(9)
	m := NewMLP(rng, []int{2, 1}, []Activation{Linear})
	opt := NewAdam(m, 0.05)
	g := NewGrads(m)
	data := make([][3]float64, 64)
	for i := range data {
		x1, x2 := rng.Range(-1, 1), rng.Range(-1, 1)
		data[i] = [3]float64{x1, x2, 2*x1 - 3*x2 + 1}
	}
	for epoch := 0; epoch < 500; epoch++ {
		g.Zero()
		for _, d := range data {
			tr := m.ForwardTrace([]float64{d[0], d[1]})
			m.Backward(tr, []float64{2 * (tr.Output()[0] - d[2])}, g)
		}
		g.Scale(1.0 / float64(len(data)))
		opt.Step(m, g)
	}
	l := m.Layers[0]
	if math.Abs(l.W[0]-2) > 0.05 || math.Abs(l.W[1]+3) > 0.05 || math.Abs(l.B[0]-1) > 0.05 {
		t.Fatalf("regression weights W=%v B=%v, want [2,-3],[1]", l.W, l.B)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := newTestMLP(5)
	c := m.Clone()
	m.Layers[0].W[0] += 100
	if c.Layers[0].W[0] == m.Layers[0].W[0] {
		t.Fatal("clone shares storage")
	}
	// Equal architecture and (pre-mutation) outputs.
	x := []float64{0.1, 0.2, 0.3}
	m.Layers[0].W[0] -= 100
	a, b := m.Forward(x), c.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clone output differs")
		}
	}
}

func TestSoftUpdateMovesTarget(t *testing.T) {
	m := newTestMLP(6)
	tgt := m.Clone()
	m.Layers[0].W[0] = 10
	tgt.Layers[0].W[0] = 0
	SoftUpdate(tgt, m, 0.1)
	if math.Abs(tgt.Layers[0].W[0]-1) > 1e-12 {
		t.Fatalf("soft update gave %v, want 1", tgt.Layers[0].W[0])
	}
	SoftUpdate(tgt, m, 1)
	if tgt.Layers[0].W[0] != 10 {
		t.Fatal("tau=1 should copy")
	}
}

func TestClipNorm(t *testing.T) {
	m := newTestMLP(8)
	g := NewGrads(m)
	for i := range g.W[0] {
		g.W[0][i] = 100
	}
	g.ClipNorm(1)
	var sq float64
	for i := range g.W {
		for _, v := range g.W[i] {
			sq += v * v
		}
	}
	if math.Sqrt(sq) > 1.0001 {
		t.Fatalf("clip failed: norm %v", math.Sqrt(sq))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := newTestMLP(10)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back MLP
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, -0.4, 0.6}
	a, b := m.Forward(x), back.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip output differs: %v vs %v", a, b)
		}
	}
}

func TestJSONRejectsCorruptShapes(t *testing.T) {
	bad := []string{
		`{"layers":[]}`,
		`{"layers":[{"in":2,"out":1,"act":0,"w":[1,2,3],"b":[0]}]}`,                                            // |w| != in*out
		`{"layers":[{"in":2,"out":1,"act":0,"w":[1,2],"b":[0,0]}]}`,                                            // |b| != out
		`{"layers":[{"in":2,"out":1,"act":0,"w":[1,2],"b":[0]},{"in":3,"out":1,"act":0,"w":[1,2,3],"b":[0]}]}`, // chain mismatch
	}
	for i, s := range bad {
		var m MLP
		if err := json.Unmarshal([]byte(s), &m); err == nil {
			t.Errorf("corrupt network %d accepted", i)
		}
	}
}

func TestActivationBounds(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		v := append([]float64(nil), raw...)
		for i := range v {
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				v[i] = 0
			}
		}
		tanhed := append([]float64(nil), v...)
		Tanh.apply(tanhed)
		sig := append([]float64(nil), v...)
		Sigmoid.apply(sig)
		rel := append([]float64(nil), v...)
		ReLU.apply(rel)
		for i := range v {
			if tanhed[i] < -1 || tanhed[i] > 1 {
				return false
			}
			if sig[i] < 0 || sig[i] > 1 {
				return false
			}
			if rel[i] < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewMLPPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad shape did not panic")
		}
	}()
	NewMLP(simcore.NewRNG(1), []int{3}, nil)
}

func TestDeterministicInit(t *testing.T) {
	a := newTestMLP(42)
	b := newTestMLP(42)
	x := []float64{1, 2, 3}
	oa, ob := a.Forward(x), b.Forward(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same-seed networks differ")
		}
	}
}
