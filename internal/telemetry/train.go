package telemetry

import "time"

// TrainingObserver instruments the rl.Train loop. It satisfies the
// rl.TrainObserver interface structurally (telemetry never imports rl, so
// rl is free to import telemetry-adjacent packages without a cycle). All
// methods are called from the training goroutine; a nil observer no-ops.
type TrainingObserver struct {
	tracer *Tracer

	epoch       *Gauge
	reward      *Gauge
	tdErr       *Gauge
	replay      *Gauge
	skipped     *Gauge
	epochs      *Counter
	updateDur   *Histogram
	checkpointS *Histogram
}

// Training returns the hub's training-domain observer (nil when the hub is
// disabled — callers assign it to the config only in that branch, keeping
// the interface value nil when telemetry is off).
func (h *Hub) Training() *TrainingObserver {
	if h == nil {
		return nil
	}
	r := h.Registry
	return &TrainingObserver{
		tracer:      h.Tracer,
		epoch:       r.Gauge("train_epoch", "last completed training epoch"),
		reward:      r.Gauge("train_mean_reward", "mean per-step reward of the last epoch"),
		tdErr:       r.Gauge("train_td_error", "mean TD error of the last epoch's final update"),
		replay:      r.Gauge("train_replay_occupancy", "transitions resident in the replay buffer"),
		skipped:     r.Gauge("train_skipped_updates", "optimizer steps skipped on non-finite gradients"),
		epochs:      r.Counter("train_epochs_total", "training epochs completed"),
		updateDur:   r.Histogram("train_update_phase_seconds", "wall time of each epoch's TD3 update phase", ExpBuckets(1e-3, 2, 16)),
		checkpointS: r.Histogram("train_checkpoint_seconds", "wall time of atomic checkpoint writes", ExpBuckets(1e-4, 2, 14)),
	}
}

// EpochEnd records one completed collection/update round.
func (o *TrainingObserver) EpochEnd(epoch int, meanReward, tdErr float64, replayLen int, skippedUpdates int64, collectDur, updateDur time.Duration) {
	if o == nil {
		return
	}
	o.epoch.Set(float64(epoch))
	o.reward.Set(meanReward)
	o.tdErr.Set(tdErr)
	o.replay.Set(float64(replayLen))
	o.skipped.Set(float64(skippedUpdates))
	o.epochs.Inc()
	o.updateDur.Observe(updateDur.Seconds())
	if o.tracer != nil {
		o.tracer.Event("train", "epoch", 0,
			I64("epoch", int64(epoch)),
			F64("mean_reward", meanReward),
			F64("td_error", tdErr),
			I64("replay_len", int64(replayLen)),
			I64("skipped_updates", skippedUpdates),
			Dur("collect_ns", collectDur),
			Dur("update_ns", updateDur),
		)
	}
}

// CheckpointSaved records one atomic checkpoint write.
func (o *TrainingObserver) CheckpointSaved(epoch int, dur time.Duration) {
	if o == nil {
		return
	}
	o.checkpointS.Observe(dur.Seconds())
	if o.tracer != nil {
		o.tracer.Event("train", "checkpoint", 0,
			I64("epoch", int64(epoch)), Dur("write_ns", dur))
	}
}
