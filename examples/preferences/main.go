// Multi-objective preferences: the extension the paper points to in §3.3
// (via MOCC). One Jury pipeline serves applications with different
// objectives — a throughput-hungry bulk transfer vs. a latency-sensitive
// call — by conditioning the policy (and, in training, the reward) on a
// preference vector, while the occupancy post-processing keeps the fairness
// guarantee identical for every preference.
package main

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

func run(name string, pref core.Preference) {
	n := netsim.New(netsim.Config{Seed: 5})
	l := n.AddLink(netsim.LinkConfig{
		Rate:        40e6,
		Delay:       15 * time.Millisecond,
		BufferBytes: 600_000, // 4 BDP: room for latency differences to show
	})
	f := n.AddFlow(netsim.FlowConfig{Name: name, Path: []*netsim.Link{l},
		CC: func() cc.Algorithm {
			cfg := core.DefaultConfig()
			cfg.Seed = 5
			return core.NewWithPreference(cfg, pref)
		}})
	n.Run(60 * time.Second)
	util := l.Utilization(60 * time.Second)
	queue := metrics.MeanQueuingDelayMS(f, 30*time.Second, 60*time.Second)
	p := pref.Normalize()
	fmt.Printf("%-18s (w_thr %.2f, w_delay %.2f, w_loss %.2f): util %.3f, queue %5.1f ms\n",
		name, p.Throughput, p.Delay, p.Loss, util, queue)
}

func main() {
	fmt.Println("one Jury pipeline, three application preferences (40 Mbps / 30 ms):")
	fmt.Println()
	run("bulk-transfer", core.Preference{Throughput: 0.7, Delay: 0.2, Loss: 0.1})
	run("balanced", core.DefaultPreference())
	run("interactive", core.Preference{Throughput: 0.15, Delay: 0.75, Loss: 0.1})
	fmt.Println()
	fmt.Println("the delay-weighted flow trades a little utilization for a much")
	fmt.Println("shallower queue; fairness is preference-independent because the")
	fmt.Println("occupancy post-processing is outside the preference-conditioned path")
}
