package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.Zeta = 0 },
		func(c *Config) { c.Zeta = 1.2 },
		func(c *Config) { c.HistoryLen = 0 },
		func(c *Config) { c.ExploreLow, c.ExploreHigh = 0.1, -0.1 },
		func(c *Config) { c.OccupancyWindow = 0 },
		func(c *Config) { c.OccupancyMin, c.OccupancyMax = 0.5, 0.2 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestStateDim(t *testing.T) {
	c := DefaultConfig()
	if c.StateDim() != 2*c.HistoryLen {
		t.Fatalf("state dim %d", c.StateDim())
	}
}

// stats builds one send-attributed interval record.
func stats(acked int64, avgRTT time.Duration, lost int64, sent int64, span time.Duration) cc.IntervalStats {
	return cc.IntervalStats{
		Now:          time.Second,
		Interval:     30 * time.Millisecond,
		AckedBytes:   acked * 1500,
		AckedPackets: acked,
		SentBytes:    sent * 1500,
		SentPackets:  sent,
		LostPackets:  lost,
		AvgRTT:       avgRTT,
		MinRTT:       avgRTT,
		FlowMinRTT:   30 * time.Millisecond,
		DeliverySpan: span,
	}
}

func TestTransformerSignals(t *testing.T) {
	tr := NewTransformer(DefaultConfig())
	// First interval: no previous baseline, invalid.
	sig := tr.Update(stats(100, 30*time.Millisecond, 0, 100, 30*time.Millisecond))
	if sig.Valid {
		t.Fatal("first interval produced a valid signal")
	}
	// Second interval: RTT +3ms (0.1 of the 30ms interval), rate 1.2x.
	sig = tr.Update(stats(110, 33*time.Millisecond, 0, 120, 30*time.Millisecond))
	if !sig.Valid {
		t.Fatal("second interval invalid")
	}
	if math.Abs(sig.DRTTNorm-0.1) > 1e-9 {
		t.Fatalf("DRTTNorm %v, want 0.1", sig.DRTTNorm)
	}
	if math.Abs(sig.RateChange-1.2) > 1e-9 {
		t.Fatalf("RateChange %v, want 1.2", sig.RateChange)
	}
	if sig.LossRatio != 0 {
		t.Fatalf("LossRatio %v, want 0 (no loss change)", sig.LossRatio)
	}
}

func TestTransformerLossRatioSign(t *testing.T) {
	tr := NewTransformer(DefaultConfig())
	tr.Update(stats(100, 30*time.Millisecond, 0, 100, 30*time.Millisecond))
	// 10% loss appears: (1-0.1)/(1-0) - 1 = -0.1.
	sig := tr.Update(stats(90, 30*time.Millisecond, 10, 100, 30*time.Millisecond))
	if math.Abs(sig.LossRatio+0.1) > 1e-9 {
		t.Fatalf("LossRatio %v, want -0.1", sig.LossRatio)
	}
	// Loss disappears: (1-0)/(1-0.1) - 1 = +0.111.
	sig = tr.Update(stats(100, 30*time.Millisecond, 0, 100, 30*time.Millisecond))
	if sig.LossRatio < 0.1 || sig.LossRatio > 0.12 {
		t.Fatalf("recovery LossRatio %v, want ~+0.111", sig.LossRatio)
	}
}

func TestTransformerHistoryStacking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryLen = 3
	tr := NewTransformer(cfg)
	rtts := []time.Duration{30, 33, 30, 36, 30}
	for _, r := range rtts {
		tr.Update(stats(100, r*time.Millisecond, 0, 100, 30*time.Millisecond))
	}
	st := tr.State()
	if len(st) != 6 {
		t.Fatalf("state len %d, want 6", len(st))
	}
	// Last 3 valid diffs: 33→30 (-0.1), 30→36 (+0.2), 36→30 (-0.2).
	want := []float64{-0.1, 0.2, -0.2}
	for i, w := range want {
		if math.Abs(st[2*i]-w) > 1e-9 {
			t.Fatalf("stacked ΔRTT[%d] = %v, want %v (state %v)", i, st[2*i], w, st)
		}
	}
	if !tr.Ready() {
		t.Fatal("transformer not ready after 5 intervals")
	}
}

func TestTransformerStateIsClamped(t *testing.T) {
	tr := NewTransformer(DefaultConfig())
	tr.Update(stats(100, 30*time.Millisecond, 0, 100, 30*time.Millisecond))
	tr.Update(stats(100, 300*time.Millisecond, 0, 100, 30*time.Millisecond)) // ΔRTT = 9.0
	st := tr.State()
	last := st[len(st)-2]
	if last != 1 {
		t.Fatalf("clamped ΔRTT %v, want 1", last)
	}
}

func TestEstimateOccupancyInvertsEq4(t *testing.T) {
	// Forward Eq. 4: thrRatio = a / (1 + (a-1)·ratio); Eq. 5 must invert it.
	if err := quick.Check(func(rRaw, aRaw float64) bool {
		ratio := math.Mod(math.Abs(rRaw), 1.0)
		a := 0.8 + math.Mod(math.Abs(aRaw), 0.4) // a in [0.8, 1.2]
		if math.Abs(a-1) < 0.01 {
			return true // excluded by the probe epsilon
		}
		thrRatio := a / (1 + (a-1)*ratio)
		got, ok := EstimateOccupancy(a, thrRatio)
		return ok && math.Abs(got-ratio) < 1e-9
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEstimateOccupancyRejectsUninformative(t *testing.T) {
	if _, ok := EstimateOccupancy(1.0, 1.0); ok {
		t.Fatal("a=1 accepted (0/0)")
	}
	if _, ok := EstimateOccupancy(1.002, 1.001); ok {
		t.Fatal("sub-epsilon probe accepted")
	}
	if _, ok := EstimateOccupancy(1.2, 0); ok {
		t.Fatal("zero throughput ratio accepted")
	}
}

func mkSignals(rateChange, thrChange float64) Signals {
	return Signals{Valid: true, RateChange: rateChange, ThrChange: thrChange}
}

func TestOccupancyEstimatorRegimes(t *testing.T) {
	cfg := DefaultConfig()

	// Underutilized: throughput tracks rate exactly → ratio ~0.
	e := NewOccupancyEstimator(cfg)
	for i := 0; i < 40; i++ {
		ch := 1 + 0.05*math.Sin(float64(i))
		e.Update(mkSignals(ch, ch))
	}
	if v := e.Value(); v > 0.1 {
		t.Fatalf("underutilized estimate %v, want ~0", v)
	}

	// Saturated sole flow: throughput ignores rate → ratio ~1.
	e = NewOccupancyEstimator(cfg)
	for i := 0; i < 40; i++ {
		ch := 1 + 0.05*math.Sin(float64(i))
		e.Update(mkSignals(ch, 1.0))
	}
	if v := e.Value(); v < 0.9 {
		t.Fatalf("saturated estimate %v, want ~1", v)
	}

	// Proportional sharing at share r: slope 1-r exactly (Eq. 4 linearized).
	for _, r := range []float64{0.25, 0.5, 0.75} {
		e = NewOccupancyEstimator(cfg)
		for i := 0; i < 40; i++ {
			a := 1 + 0.05*math.Sin(float64(i))
			th := a / (1 + (a-1)*r) // exact Eq. 4
			e.Update(mkSignals(a, th))
		}
		if v := e.Value(); math.Abs(v-r) > 0.05 {
			t.Fatalf("share %v estimated as %v", r, v)
		}
	}
}

func TestOccupancyEstimatorRobustToNoise(t *testing.T) {
	cfg := DefaultConfig()
	e := NewOccupancyEstimator(cfg)
	// Share 0.5 with 10% multiplicative noise on the throughput response.
	phase := 0.0
	noise := func() float64 { phase += 1.37; return 1 + 0.1*math.Sin(phase*7.3) }
	var last float64
	for i := 0; i < 200; i++ {
		a := 1 + 0.05*math.Sin(float64(i))
		th := a / (1 + (a-1)*0.5) * noise()
		last = e.Update(mkSignals(a, th))
	}
	if math.Abs(last-0.5) > 0.2 {
		t.Fatalf("noisy share 0.5 estimated as %v", last)
	}
}

func TestOccupancyEstimatorIgnoresOutliers(t *testing.T) {
	cfg := DefaultConfig()
	e := NewOccupancyEstimator(cfg)
	for i := 0; i < 20; i++ {
		e.Update(mkSignals(1.05, 1.05))
	}
	v0 := e.Value()
	e.Update(mkSignals(100, 0.001)) // pathological swing
	if e.Value() != v0 {
		t.Fatalf("outlier moved the estimate %v -> %v", v0, e.Value())
	}
	e.Update(Signals{Valid: false})
	if e.Value() != v0 {
		t.Fatal("invalid signal moved the estimate")
	}
}

func TestOccupancyEstimatorSeedsAggressive(t *testing.T) {
	cfg := DefaultConfig()
	e := NewOccupancyEstimator(cfg)
	if e.Value() != cfg.OccupancyMin {
		t.Fatalf("fresh estimator reports %v, want the aggressive floor %v", e.Value(), cfg.OccupancyMin)
	}
	if e.Samples() != 0 {
		t.Fatal("fresh estimator claims samples")
	}
}

func TestPostProcessEq6(t *testing.T) {
	// At half occupancy the action is exactly μ.
	if got := PostProcess(0.3, 0.5, 0.5); got != 0.3 {
		t.Fatalf("PostProcess(μ=0.3, r=0.5) = %v", got)
	}
	// Small flow gets μ+δ, large flow μ−δ.
	if got := PostProcess(0.1, 0.5, 0); got != 0.6 {
		t.Fatalf("small-flow action %v, want 0.6", got)
	}
	if got := PostProcess(0.1, 0.5, 1); math.Abs(got+0.4) > 1e-12 {
		t.Fatalf("large-flow action %v, want -0.4", got)
	}
	// Clamped to [-1, 1].
	if got := PostProcess(0.9, 1, 0); got != 1 {
		t.Fatalf("unclamped action %v", got)
	}
}

func TestPostProcessMonotoneInOccupancy(t *testing.T) {
	if err := quick.Check(func(muR, dR, r1R, r2R float64) bool {
		mu := math.Mod(muR, 1)
		d := math.Abs(math.Mod(dR, 1))
		r1 := math.Abs(math.Mod(r1R, 1))
		r2 := math.Abs(math.Mod(r2R, 1))
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		// Higher occupancy must never produce a larger action.
		return PostProcess(mu, d, r2) <= PostProcess(mu, d, r1)+1e-12
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRewardShape(t *testing.T) {
	cfg := DefaultConfig()
	base := 30 * time.Millisecond
	// Increasing occupancy increases reward (no penalties active).
	r1 := Reward(cfg, 0.2, base, base, 0, 0)
	r2 := Reward(cfg, 0.8, base, base, 0, 0)
	if r2 <= r1 {
		t.Fatalf("reward not increasing in occupancy: %v vs %v", r1, r2)
	}
	// Queueing decreases reward.
	rq := Reward(cfg, 0.8, base+20*time.Millisecond, base, 0, 0)
	if rq >= r2 {
		t.Fatalf("reward not penalizing queueing: %v vs %v", rq, r2)
	}
	// Loss decreases reward.
	rl := Reward(cfg, 0.8, base, base, 0.05, 0)
	if rl >= r2 {
		t.Fatalf("reward not penalizing loss: %v vs %v", rl, r2)
	}
}

func TestRewardConcaveInOccupancy(t *testing.T) {
	// The concave throughput term gives small flows more reward per unit of
	// growth — the incentive structure of §3.3.
	cfg := DefaultConfig()
	base := 30 * time.Millisecond
	gainSmall := Reward(cfg, 0.2, base, base, 0, 0) - Reward(cfg, 0.1, base, base, 0, 0)
	gainLarge := Reward(cfg, 0.9, base, base, 0, 0) - Reward(cfg, 0.8, base, base, 0, 0)
	if gainSmall <= gainLarge {
		t.Fatalf("reward not concave: small-gain %v vs large-gain %v", gainSmall, gainLarge)
	}
}

func TestRewardClampsOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	base := 30 * time.Millisecond
	if r := Reward(cfg, -0.5, base, base, 0, 0); math.IsNaN(r) {
		t.Fatal("negative occupancy produced NaN")
	}
	if Reward(cfg, 1.5, base, base, 0, 0) != Reward(cfg, 1, base, base, 0, 0) {
		t.Fatal("occupancy not clamped at 1")
	}
}

func TestApplyActionEq7Inverse(t *testing.T) {
	// Eq. 7 is constructed so +a then -a returns the window exactly.
	if err := quick.Check(func(aRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 1)
		j := NewDefault(1)
		j.cwnd = 100
		j.applyAction(a)
		j.applyAction(-a)
		return math.Abs(j.cwnd-100) < 1e-9
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestApplyActionBoundsAndFloor(t *testing.T) {
	j := NewDefault(1)
	j.cwnd = 2
	for i := 0; i < 100; i++ {
		j.applyAction(-1)
	}
	if j.cwnd < j.cfg.MinCwnd {
		t.Fatalf("cwnd %v below floor", j.cwnd)
	}
	w := j.cwnd
	j.applyAction(1)
	if math.Abs(j.cwnd-w*(1+j.cfg.Alpha)) > 1e-9 {
		t.Fatalf("max action grew %v -> %v, want x%v", w, j.cwnd, 1+j.cfg.Alpha)
	}
}

func TestExploreActionStatistics(t *testing.T) {
	j := NewDefault(7)
	var swapped, ups int
	const n = 20000
	for i := 0; i < n; i++ {
		a := j.exploreAction(0.0)
		if a == 1 || a == -1 {
			swapped++
			if a == 1 {
				ups++
			}
		} else if a != 0 {
			t.Fatalf("explore produced %v", a)
		}
	}
	frac := float64(swapped) / n
	if math.Abs(frac-j.cfg.ExploreProb) > 0.02 {
		t.Fatalf("explore rate %v, want ~%v", frac, j.cfg.ExploreProb)
	}
	if up := float64(ups) / float64(swapped); math.Abs(up-0.5) > 0.03 {
		t.Fatalf("explore direction bias: %v up", up)
	}
	// Outside the band the action passes through untouched.
	if j.exploreAction(0.5) != 0.5 || j.exploreAction(-0.5) != -0.5 {
		t.Fatal("explore touched an action outside the band")
	}
}

func TestReferencePolicyResponses(t *testing.T) {
	p := NewReferencePolicy()
	dim := DefaultConfig().StateDim()
	flat := make([]float64, dim)
	mu, delta := p.Decide(flat)
	if mu != p.ProbeGain || delta != p.Delta {
		t.Fatalf("flat-signal decision (%v, %v)", mu, delta)
	}

	// Sustained queue growth drives μ negative.
	grow := make([]float64, dim)
	for i := 0; i < dim; i += 2 {
		grow[i] = 0.2
	}
	mu, _ = p.Decide(grow)
	if mu >= 0 {
		t.Fatalf("μ %v under queue growth, want negative", mu)
	}

	// Draining queue: hold, don't re-probe.
	drain := make([]float64, dim)
	for i := 0; i < dim; i += 2 {
		drain[i] = -0.2
	}
	mu, _ = p.Decide(drain)
	if mu != 0 {
		t.Fatalf("μ %v while draining, want 0", mu)
	}

	// An unrecovered loss drop anywhere in the window suppresses μ.
	lossy := make([]float64, dim)
	lossy[1] = -0.1 // oldest slot
	mu, _ = p.Decide(lossy)
	if mu >= 0 {
		t.Fatalf("μ %v with a net loss drop, want negative", mu)
	}
	// Steady random loss produces symmetric swings whose net change is
	// zero: the policy must keep probing (Fig. 10c loss resilience).
	steady := make([]float64, dim)
	for i := 1; i < dim; i += 4 {
		steady[i] = -0.02
		if i+2 < dim {
			steady[i+2] = 0.02
		}
	}
	mu, _ = p.Decide(steady)
	if mu <= 0 {
		t.Fatalf("μ %v under steady symmetric loss noise, want probing", mu)
	}
}

func TestReferencePolicyProbeEqualsDelta(t *testing.T) {
	// The μ=δ calibration: a sole flow at its fair share holds steady under
	// flat signals (a = μ + (1-2·1)·δ = 0).
	p := NewReferencePolicy()
	flat := make([]float64, DefaultConfig().StateDim())
	mu, delta := p.Decide(flat)
	if a := PostProcess(mu, delta, 1); math.Abs(a) > 1e-12 {
		t.Fatalf("sole flow at flat signals acts %v, want 0", a)
	}
}

func TestNNPolicyAndActionToRange(t *testing.T) {
	mu, delta := ActionToRange([]float64{0.5, 0})
	if mu != 0.5 || delta != 0.5 {
		t.Fatalf("ActionToRange = (%v, %v)", mu, delta)
	}
	mu, delta = ActionToRange([]float64{-2, -2})
	if mu != -1 || delta != 0 {
		t.Fatalf("ActionToRange clamp = (%v, %v)", mu, delta)
	}
}

func TestJuryBlackoutBacksOff(t *testing.T) {
	j := NewDefault(1)
	j.cwnd = 100
	// Whole interval lost: maximal back-off.
	j.OnInterval(cc.IntervalStats{Interval: 30 * time.Millisecond, SentPackets: 10, SentBytes: 15000, LostPackets: 10})
	if j.LastAction() != -1 {
		t.Fatalf("blackout action %v, want -1", j.LastAction())
	}
	if j.CWND() >= 100 {
		t.Fatal("blackout did not shrink the window")
	}
}

func TestJurySlowStartDoublesOncePerRTT(t *testing.T) {
	j := NewDefault(1)
	w := j.CWND()
	// Insignificant statistics: 2 acked packets < MinIntervalPackets.
	s1 := stats(2, 30*time.Millisecond, 0, 2, time.Millisecond)
	s1.Now = 100 * time.Millisecond
	j.OnInterval(s1)
	if j.CWND() != 2*w {
		t.Fatalf("slow start grew %v -> %v, want double", w, j.CWND())
	}
	// A second insignificant interval within the same RTT must NOT double
	// again: feedback lags one RTT, so faster doubling is blind.
	s2 := s1
	s2.Now = 110 * time.Millisecond
	j.OnInterval(s2)
	if j.CWND() != 2*w {
		t.Fatalf("doubled twice within one RTT: %v", j.CWND())
	}
	// After a full RTT it may double again.
	s3 := s1
	s3.Now = 200 * time.Millisecond
	j.OnInterval(s3)
	if j.CWND() != 4*w {
		t.Fatalf("did not resume doubling after an RTT: %v", j.CWND())
	}
}

func TestJuryInsignificantWithLossBacksOff(t *testing.T) {
	j := NewDefault(1)
	j.cwnd = 100
	st := stats(2, 30*time.Millisecond, 3, 5, time.Millisecond)
	st.Now = 100 * time.Millisecond
	j.OnInterval(st)
	if j.LastAction() != -1 || j.CWND() >= 100 {
		t.Fatalf("lossy insignificant interval acted %v on cwnd %v", j.LastAction(), j.CWND())
	}
}

func TestJuryPacingFollowsEq8(t *testing.T) {
	j := NewDefault(1)
	j.OnAck(cc.Ack{Bytes: 1500})
	j.OnInterval(stats(100, 30*time.Millisecond, 0, 100, 30*time.Millisecond))
	want := j.CWND() * 1500 * 8 / 0.030
	if math.Abs(j.PacingRate()-want)/want > 1e-9 {
		t.Fatalf("pacing %v, want cwnd/RTT = %v", j.PacingRate(), want)
	}
}

func TestJuryRejectsInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	New(Config{}, nil)
}

func TestJuryIdentity(t *testing.T) {
	j := NewDefault(3)
	if j.Name() != "jury" {
		t.Fatal("name wrong")
	}
	if j.ControlInterval() != 30*time.Millisecond {
		t.Fatal("control interval wrong")
	}
}
