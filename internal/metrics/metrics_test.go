package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

func TestJainIndexKnownValues(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{10, 10}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{3, 1}, 0.8},
		{nil, 0},
		{[]float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := JainIndex(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJainIndexBounds(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, math.Abs(v))
		}
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		lo := 1/float64(len(xs)) - 1e-9
		return (j == 0 || j >= lo) && j <= 1+1e-9
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJainIndexScaleInvariant(t *testing.T) {
	a := []float64{2, 5, 9}
	b := []float64{20, 50, 90}
	if math.Abs(JainIndex(a)-JainIndex(b)) > 1e-12 {
		t.Fatal("Jain index not scale invariant")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got := Percentiles(xs, 0, 50, 95, 100)
	for i, p := range []float64{0, 50, 95, 100} {
		if want := Percentile(xs, p); got[i] != want {
			t.Errorf("Percentiles p%v = %v, want %v (Percentile agreement)", p, got[i], want)
		}
	}
	if xs[0] != 5 {
		t.Fatal("Percentiles sorted the caller's slice")
	}
	for _, v := range Percentiles(nil, 5, 95) {
		if v != 0 {
			t.Fatalf("empty Percentiles = %v, want zeros", v)
		}
	}
	if len(Percentiles(xs)) != 0 {
		t.Fatal("no requested percentiles should yield an empty slice")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean wrong")
	}
}

func buildTwoFlowRun(t *testing.T) []*netsim.Flow {
	t.Helper()
	n := netsim.New(netsim.Config{Seed: 1})
	l := n.AddLink(netsim.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l}, CC: func() cc.Algorithm { return cc.NewManual(8e6) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l}, CC: func() cc.Algorithm { return cc.NewManual(8e6) }})
	n.Run(10 * time.Second)
	return []*netsim.Flow{f1, f2}
}

func TestFlowSeriesMetrics(t *testing.T) {
	flows := buildTwoFlowRun(t)
	thr := MeanThroughput(flows[0], 2*time.Second, 10*time.Second)
	if thr < 3e6 || thr > 7e6 {
		t.Fatalf("mean throughput %v, want ~5e6", thr)
	}
	q := MeanQueuingDelayMS(flows[0], 2*time.Second, 10*time.Second)
	if q <= 0 || q > 200 {
		t.Fatalf("queuing delay %v ms", q)
	}
	rtt := MeanRTT(flows[0], 2*time.Second, 10*time.Second)
	if rtt < 20*time.Millisecond {
		t.Fatalf("mean RTT %v below base", rtt)
	}
	if MeanThroughput(flows[0], 50*time.Second, 60*time.Second) != 0 {
		t.Fatal("out-of-range window should be 0")
	}
}

func TestTimewiseJain(t *testing.T) {
	flows := buildTwoFlowRun(t)
	j := TimewiseJain(flows)
	// Two equal-rate manual flows: near-perfect fairness at all times.
	if j < 0.95 {
		t.Fatalf("timewise Jain %v for equal flows", j)
	}
	if TimewiseJain[FlowSeries](nil) != 1 {
		t.Fatal("no-flow timewise Jain should be 1 (vacuous)")
	}
	// A lone flow is trivially fair at every instant.
	if j := TimewiseJain(flows[:1]); j != 1 {
		t.Fatalf("single-flow timewise Jain = %v, want 1", j)
	}
}

func TestConvergenceTime(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 9})
	l := n.AddLink(netsim.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	man := cc.NewManual(1e6)
	f := n.AddFlow(netsim.FlowConfig{Name: "ramp", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return man }})
	n.Run(5 * time.Second)
	man.SetRate(9e6) // jumps to ~fair share at t=5s
	n.Run(15 * time.Second)

	got := ConvergenceTime(f, 0, 9e6, 0.8, 3)
	if got < 4*time.Second || got > 7*time.Second {
		t.Fatalf("convergence time %v, want ~5s", got)
	}
	if ConvergenceTime(f, 0, 100e6, 0.8, 3) != -1 {
		t.Fatal("unreachable share should report -1")
	}
}

// TestConvergenceTimeHoldBoundary: exactly `hold` qualifying samples succeed;
// one more than the series can supply reports -1.
func TestConvergenceTimeHoldBoundary(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 3})
	l := n.AddLink(netsim.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	f := n.AddFlow(netsim.FlowConfig{Name: "steady", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return cc.NewManual(9e6) }})
	n.Run(10 * time.Second)

	target := 0.8 * 9e6
	qualifying := 0
	for _, p := range f.Series() {
		if p.ThroughputBps >= target {
			qualifying++
		}
	}
	if qualifying < 2 {
		t.Fatalf("test setup: only %d qualifying samples", qualifying)
	}
	if got := ConvergenceTime(f, 0, 9e6, 0.8, qualifying); got < 0 {
		t.Fatalf("hold == qualifying samples (%d) should converge, got %v", qualifying, got)
	}
	if got := ConvergenceTime(f, 0, 9e6, 0.8, qualifying+1); got != -1 {
		t.Fatalf("hold > qualifying samples should report -1, got %v", got)
	}
}

// TestConvergenceTimePreStart: samples before `start` must be ignored — both
// for the clock origin and for run counting.
func TestConvergenceTimePreStart(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 4})
	l := n.AddLink(netsim.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	man := cc.NewManual(9e6)
	f := n.AddFlow(netsim.FlowConfig{Name: "fade", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return man }})
	n.Run(5 * time.Second)
	man.SetRate(0.5e6) // collapses after t=5s
	n.Run(15 * time.Second)

	// Fast only before start: the pre-start samples must not count toward
	// convergence measured from t=5s.
	if got := ConvergenceTime(f, 5*time.Second, 9e6, 0.8, 3); got != -1 {
		t.Fatalf("pre-start samples leaked into the hold run: got %v, want -1", got)
	}
	// Measured from t=0 the same flow converges almost immediately, and the
	// reported time is relative to start (never negative).
	got := ConvergenceTime(f, 0, 9e6, 0.8, 3)
	if got < 0 || got > 2*time.Second {
		t.Fatalf("convergence from t=0 = %v, want small and non-negative", got)
	}
}
