package simcore

import "math"

// RNG is a small, fast, seedable random number generator (SplitMix64 core)
// used for every stochastic component in the simulator: random packet loss,
// bandwidth traces, exploration noise, and network-weight initialization.
// Each component owns its own RNG so that enabling one source of randomness
// never perturbs another — experiments stay reproducible bit-for-bit.
//
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator. Children with distinct
// labels produce uncorrelated streams.
func (r *RNG) Split(label uint64) *RNG {
	return &RNG{state: r.nextUint64() ^ (label * 0x9e3779b97f4a7c15)}
}

// SplitValue is Split returning the child by value, for embedding in
// bulk-allocated structures without one heap allocation per child. It
// consumes the identical parent draw as Split, so swapping one for the
// other leaves every derived random stream bit-identical.
func (r *RNG) SplitValue(label uint64) RNG {
	return RNG{state: r.nextUint64() ^ (label * 0x9e3779b97f4a7c15)}
}

func (r *RNG) nextUint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.nextUint64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simcore: Intn with non-positive n")
	}
	return int(r.nextUint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.nextUint64()>>11) / (1 << 53)
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal sample (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Norm returns a normal sample with the given mean and standard deviation.
func (r *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential sample with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
