// Package agentrpc reproduces the paper's deployment architecture (§4) at
// production scale: the congestion-control datapath and the policy inference
// run in different address spaces, connected by a message channel (the paper
// uses a kernel module talking to a userspace C++ inference service over
// netlink; here a datapath-side Client talks to an inference Server over a
// stream socket with a compact binary protocol).
//
// The Server is a multi-tenant inference daemon: concurrent Decide requests
// are coalesced into minibatches executed under a latency budget (flush on
// batch-full or deadline, whichever first), ideally through a BatchDecider
// policy so one GEMM amortizes across every flow that asked in the window.
// Admission control bounds the queue — overload is answered with a typed
// BUSY response, never a silent hang — per-connection read *and* write
// deadlines reclaim stalled peers, policies hot-swap between versions with a
// health gate and automatic rollback on non-finite output, and shutdown
// drains in-flight batches before closing.
//
// The Client implements core.Policy, so a Jury controller can be pointed at
// a remote inference service transparently:
//
//	srv, _ := agentrpc.Serve("127.0.0.1:0", jury.NewReferencePolicy())
//	client, _ := agentrpc.Dial(srv.Addr(), fallback)
//	ctrl := core.New(cfg, client)
//
// The client degrades gracefully, because a congestion controller must never
// stall its datapath on a dead inference service: on any transport error it
// serves the decision from a local fallback policy, a capped exponential
// backoff with deterministic jitter paces redials, and a circuit breaker
// trips open after consecutive failures so a dead or overloaded service
// costs zero network latency per decision until a half-open probe detects
// recovery. See wire.go for the exact framing.
package agentrpc

// maxStateDim bounds request sizes; real Jury states are tens of values.
const maxStateDim = 4096

// Policy matches core.Policy without importing it (no dependency cycle and
// the package stays reusable).
type Policy interface {
	Decide(state []float64) (mu, delta float64)
}

// BatchDecider is the fast path a serving policy can implement: one batched
// forward pass over a rows×InputDim() row-major state matrix, writing the
// per-row decisions into mu and delta. core.NNPolicy implements it on the
// batched GEMM kernels; the daemon falls back to per-request Decide calls
// for policies (or mixed-dimension batches) that don't.
type BatchDecider interface {
	Policy
	InputDim() int
	DecideBatch(states []float64, rows int, mu, delta []float64)
}
