package reno

import (
	"testing"
	"time"

	"repro/internal/cc"
)

func TestSlowStartDoublesPerRTT(t *testing.T) {
	r := New()
	r.Init(0)
	start := r.CWND()
	// One window of ACKs in slow start adds one packet per ACK.
	for i := 0; i < int(start); i++ {
		r.OnAck(cc.Ack{Now: time.Duration(i) * time.Millisecond, RTT: 30 * time.Millisecond, Bytes: 1500})
	}
	if got := r.CWND(); got != 2*start {
		t.Fatalf("cwnd after one slow-start window: %v, want %v", got, 2*start)
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	r := New()
	r.Init(0)
	// Force CA by inducing a loss.
	r.OnLoss(cc.Loss{Now: time.Second, SentAt: time.Second})
	// Exit recovery.
	r.OnAck(cc.Ack{Now: 2 * time.Second, SentAt: 1500 * time.Millisecond, RTT: 30 * time.Millisecond})
	w0 := r.CWND()
	n := int(w0)
	for i := 0; i < n; i++ {
		r.OnAck(cc.Ack{Now: 2*time.Second + time.Duration(i)*time.Millisecond, SentAt: 2 * time.Second, RTT: 30 * time.Millisecond})
	}
	// One window of ACKs should grow cwnd by ~1 packet.
	if got := r.CWND(); got < w0+0.8 || got > w0+1.5 {
		t.Fatalf("CA growth over one window: %v -> %v, want +~1", w0, got)
	}
}

func TestLossHalvesWindowOncePerEvent(t *testing.T) {
	r := New()
	r.Init(0)
	for i := 0; i < 54; i++ { // grow to 64
		r.OnAck(cc.Ack{Now: time.Duration(i) * time.Millisecond, RTT: 30 * time.Millisecond})
	}
	w := r.CWND()
	r.OnLoss(cc.Loss{Now: time.Second, SentAt: 900 * time.Millisecond})
	if got := r.CWND(); got != w/2 {
		t.Fatalf("cwnd after loss: %v, want %v", got, w/2)
	}
	// A second loss from the same flight (sent before detection) is ignored.
	r.OnLoss(cc.Loss{Now: 1100 * time.Millisecond, SentAt: 950 * time.Millisecond})
	if got := r.CWND(); got != w/2 {
		t.Fatalf("same-event loss cut again: %v, want %v", got, w/2)
	}
	// A loss of a packet sent after recovery began is a new event.
	r.OnAck(cc.Ack{Now: 1200 * time.Millisecond, SentAt: 1050 * time.Millisecond, RTT: 30 * time.Millisecond})
	r.OnLoss(cc.Loss{Now: 1300 * time.Millisecond, SentAt: 1250 * time.Millisecond})
	if got := r.CWND(); got >= w/2 {
		t.Fatalf("new loss event did not cut: %v", got)
	}
}

func TestWindowNeverBelowMinimum(t *testing.T) {
	r := New()
	r.Init(0)
	for i := 0; i < 50; i++ {
		now := time.Duration(i) * time.Second
		r.OnLoss(cc.Loss{Now: now, SentAt: now - time.Millisecond})
		r.OnAck(cc.Ack{Now: now + 500*time.Millisecond, SentAt: now + 400*time.Millisecond, RTT: 30 * time.Millisecond})
	}
	if r.CWND() < 2 {
		t.Fatalf("cwnd %v below minimum", r.CWND())
	}
}

func TestRenoIsUnpaced(t *testing.T) {
	r := New()
	if r.PacingRate() != 0 {
		t.Fatal("Reno should be ack-clocked")
	}
	if r.Name() != "reno" {
		t.Fatalf("name %q", r.Name())
	}
}
