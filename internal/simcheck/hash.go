package simcheck

import "math"

// FNV-1a 64-bit constants. The digest folds fixed-width words rather than
// bytes: it is not meant to interoperate with hash/fnv, only to be a stable,
// dependency-free fingerprint of a simulation.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnvFold mixes one 64-bit word into the running FNV-1a state, byte by byte
// (little-endian) so that every bit of the word lands in a distinct step.
func fnvFold(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (w >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// StreamHash returns the FNV-1a fold of every executed event's firing time,
// in execution order. Two runs of the same scenario must produce the same
// stream hash; a divergence means the event *schedule* itself differed —
// the earliest possible observation point for nondeterminism, long before
// it shows up in summary statistics.
func (c *Checker) StreamHash() uint64 { return c.stream }

// Digest fingerprints the completed simulation: the event-stream hash plus
// every flow's lifetime counters, every recorded series point, and every
// link's counters. Pooled or parallel runs of a scenario must produce a
// digest bit-identical to a from-scratch sequential replay; the golden
// determinism tests additionally pin the digest of canonical scenarios
// across PRs.
func (c *Checker) Digest() uint64 {
	h := fnvFold(fnvOffset, c.stream)
	h = fnvFold(h, c.events)
	for _, f := range c.net.Flows() {
		st := f.Stats()
		h = fnvFold(h, uint64(st.SentPackets))
		h = fnvFold(h, uint64(st.SentBytes))
		h = fnvFold(h, uint64(st.AckedPackets))
		h = fnvFold(h, uint64(st.AckedBytes))
		h = fnvFold(h, uint64(st.LostPackets))
		h = fnvFold(h, uint64(st.MinRTT))
		h = fnvFold(h, uint64(st.AvgRTT))
		h = fnvFold(h, math.Float64bits(st.AvgThroughputBps))
		for _, p := range f.Series() {
			h = fnvFold(h, uint64(p.T))
			h = fnvFold(h, math.Float64bits(p.ThroughputBps))
			h = fnvFold(h, math.Float64bits(p.SendRateBps))
			h = fnvFold(h, uint64(p.AvgRTT))
			h = fnvFold(h, math.Float64bits(p.LossRate))
			h = fnvFold(h, math.Float64bits(p.Cwnd))
			h = fnvFold(h, math.Float64bits(p.PacingBps))
		}
	}
	for _, l := range c.net.Links() {
		st := l.Stats()
		h = fnvFold(h, uint64(st.DeliveredBytes))
		h = fnvFold(h, uint64(st.DeliveredPackets))
		h = fnvFold(h, uint64(st.OverflowDrops))
		h = fnvFold(h, uint64(st.RandomDrops))
		h = fnvFold(h, uint64(st.MaxQueueBytes))
	}
	return h
}
