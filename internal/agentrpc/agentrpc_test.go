package agentrpc

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/netsim"
)

// echoPolicy returns values derived from the state for verification.
type echoPolicy struct{}

func (echoPolicy) Decide(state []float64) (float64, float64) {
	var sum float64
	for _, v := range state {
		sum += v
	}
	return sum, float64(len(state))
}

// constPolicy is a fixed fallback.
type constPolicy struct{ mu, delta float64 }

func (p constPolicy) Decide([]float64) (float64, float64) { return p.mu, p.delta }

func TestRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), constPolicy{-9, -9})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	mu, delta := cl.Decide([]float64{0.25, 0.5, -0.25})
	if mu != 0.5 || delta != 3 {
		t.Fatalf("remote decision (%v, %v), want (0.5, 3)", mu, delta)
	}
	if cl.RemoteDecisions() != 1 || cl.FallbackDecisions() != 0 {
		t.Fatalf("decision accounting wrong: %d remote, %d fallback",
			cl.RemoteDecisions(), cl.FallbackDecisions())
	}
	if srv.Decisions() != 1 {
		t.Fatalf("server counted %d decisions", srv.Decisions())
	}
}

func TestManyDecisionsOneConnection(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), constPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 500; i++ {
		mu, _ := cl.Decide([]float64{float64(i)})
		if mu != float64(i) {
			t.Fatalf("decision %d returned %v", i, mu)
		}
	}
	if cl.RemoteDecisions() != 500 {
		t.Fatalf("remote decisions %d", cl.RemoteDecisions())
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr(), constPolicy{})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < 100; i++ {
				if mu, _ := cl.Decide([]float64{float64(w)}); mu != float64(w) {
					t.Errorf("worker %d got %v", w, mu)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if srv.Decisions() != 800 {
		t.Fatalf("server decisions %d, want 800", srv.Decisions())
	}
}

func TestFallbackOnDeadServer(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), constPolicy{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Decide([]float64{1}) // healthy round trip
	srv.Close()

	// The datapath must keep getting answers from the fallback.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu, delta := cl.Decide([]float64{1})
		if mu == 0.25 && delta == 0.75 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fallback never engaged")
		}
	}
	if cl.FallbackDecisions() == 0 {
		t.Fatal("no fallback decisions recorded")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Fatal("nil fallback accepted")
	}
	if _, err := Dial("127.0.0.1:1", constPolicy{}); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestOversizedStateFallsBack(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), constPolicy{-1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	huge := make([]float64, maxStateDim+1)
	mu, _ := cl.Decide(huge)
	if mu != -1 {
		t.Fatalf("oversized state answered remotely: %v", mu)
	}
}

func TestJuryOverRPCEndToEnd(t *testing.T) {
	// The paper's deployment shape: the emulated datapath's Jury controller
	// asks a separate inference service for every decision. The flow must
	// behave like a local-policy flow.
	srv, err := Serve("127.0.0.1:0", core.NewReferencePolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), core.NewReferencePolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	n := netsim.New(netsim.Config{Seed: 1})
	l := n.AddLink(netsim.LinkConfig{Rate: 30e6, Delay: 15 * time.Millisecond, BufferBytes: 225_000})
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	f := n.AddFlow(netsim.FlowConfig{Name: "rpc", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return core.New(cfg, cl) }})
	n.Run(30 * time.Second)

	if u := l.Utilization(30 * time.Second); u < 0.8 {
		t.Fatalf("RPC-driven Jury utilization %v", u)
	}
	if cl.RemoteDecisions() < 100 {
		t.Fatalf("only %d remote decisions over 30s of 30ms intervals", cl.RemoteDecisions())
	}
	if f.Stats().LossRate > 0.01 {
		t.Fatalf("loss rate %v", f.Stats().LossRate)
	}
}
