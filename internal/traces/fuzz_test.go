package traces

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// FuzzMahimahiParse hammers the Mahimahi trace parser with arbitrary input.
// The parser fronts files downloaded from the wild, so it must reject — not
// panic or OOM on — anything malformed. Two of the seed corpus entries are
// former crashers: a timestamp whose Duration conversion overflowed int64
// (negative bucket index → slice panic) and a multi-year span that would
// allocate gigabytes of buckets.
func FuzzMahimahiParse(f *testing.F) {
	f.Add([]byte("0\n3\n7\n120\n"), int64(100))
	f.Add([]byte("# comment\n\n5\n5\n5\n9\n"), int64(1))
	f.Add([]byte("10\n4\n"), int64(100))               // unsorted → error
	f.Add([]byte("-3\n"), int64(50))                   // negative → error
	f.Add([]byte("9223372036854775807\n"), int64(100)) // wraps to exactly -1ms
	f.Add([]byte("9300000000000\n"), int64(100))       // Duration overflow → negative index panic
	f.Add([]byte("9000000000000\n"), int64(100))       // 285-year span → bucket-count blowup
	f.Add([]byte("nonsense\n"), int64(0))              // parse error, default bucket
	f.Fuzz(func(t *testing.T, data []byte, bucketMs int64) {
		bucket := time.Duration(bucketMs) * time.Millisecond
		s, err := ParseMahimahi(bytes.NewReader(data), bucket)
		if err != nil {
			if s != nil {
				t.Fatal("non-nil trace alongside error")
			}
			return
		}
		if s == nil {
			t.Fatal("nil trace without error")
		}
		if s.Loop <= 0 {
			t.Fatalf("parsed trace does not loop: Loop=%v", s.Loop)
		}
		if len(s.Points) == 0 || len(s.Points) > maxMahimahiBuckets {
			t.Fatalf("parsed trace has %d points", len(s.Points))
		}
		for _, off := range []time.Duration{0, s.Loop / 2, s.Loop - 1, 3 * s.Loop} {
			r := s.RateAt(off)
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("RateAt(%v) = %v", off, r)
			}
		}
	})
}
