package agentrpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzAgentRPCDecode feeds arbitrary byte streams to the request-frame
// decoder the server runs against every connection. It must never panic,
// never hand the policy a state above maxStateDim, and every frame it does
// accept must re-encode to the exact bytes it was decoded from (bit-level
// round trip, NaN payloads included).
func FuzzAgentRPCDecode(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})             // ping
	f.Add([]byte{1, 0, 0, 0})             // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized count
	two := appendRequest(nil, []float64{1.5, math.NaN()})
	f.Add(two)
	f.Add(append(append([]byte{}, two...), 0, 0, 0, 0)) // frame then ping
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := newRequestReader(bytes.NewReader(data))
		off := 0 // byte offset of the current frame within data
		for {
			state, ping, err := dec.next()
			if err != nil {
				if errors.Is(err, errOversizedFrame) {
					count := binary.LittleEndian.Uint32(data[off:])
					if count <= maxStateDim {
						t.Fatalf("count %d rejected as oversized", count)
					}
				} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected decode error: %v", err)
				}
				return
			}
			if ping {
				if state != nil {
					t.Fatal("ping carried state")
				}
				off += 4
				continue
			}
			if len(state) == 0 || len(state) > maxStateDim {
				t.Fatalf("decoded state dim %d", len(state))
			}
			frameLen := 4 + len(state)*8
			if got := appendRequest(nil, state); !bytes.Equal(got, data[off:off+frameLen]) {
				t.Fatalf("re-encode of %d-dim frame at %d differs from wire bytes", len(state), off)
			}
			off += frameLen
		}
	})
}

// TestRequestRoundTrip pins the encode side against a hand-built frame so
// the fuzz property (decode∘encode = id) can't be trivially satisfied by a
// broken pair of inverse bugs.
func TestRequestRoundTrip(t *testing.T) {
	state := []float64{0, -1, math.Inf(1), 1e-300, math.Float64frombits(0x7ff8000000000001)}
	frame := appendRequest(nil, state)
	if len(frame) != 4+8*len(state) {
		t.Fatalf("frame length %d", len(frame))
	}
	dec := newRequestReader(bytes.NewReader(frame))
	got, ping, err := dec.next()
	if err != nil || ping {
		t.Fatalf("decode: ping=%v err=%v", ping, err)
	}
	if len(got) != len(state) {
		t.Fatalf("dim %d != %d", len(got), len(state))
	}
	for i := range state {
		if math.Float64bits(got[i]) != math.Float64bits(state[i]) {
			t.Fatalf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(state[i]))
		}
	}
}
