package nn

import (
	"encoding/json"
	"fmt"
)

// layerJSON is the serialized form of one Dense layer.
type layerJSON struct {
	In  int        `json:"in"`
	Out int        `json:"out"`
	Act Activation `json:"act"`
	W   []float64  `json:"w"`
	B   []float64  `json:"b"`
}

// mlpJSON is the serialized form of an MLP.
type mlpJSON struct {
	Layers []layerJSON `json:"layers"`
}

// MarshalJSON implements json.Marshaler.
func (m *MLP) MarshalJSON() ([]byte, error) {
	out := mlpJSON{}
	for _, l := range m.Layers {
		out.Layers = append(out.Layers, layerJSON{In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, validating shapes.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var in mlpJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Layers) == 0 {
		return fmt.Errorf("nn: empty network")
	}
	var layers []*Dense
	for i, l := range in.Layers {
		if l.In <= 0 || l.Out <= 0 || len(l.W) != l.In*l.Out || len(l.B) != l.Out {
			return fmt.Errorf("nn: layer %d has inconsistent shape (in=%d out=%d |w|=%d |b|=%d)",
				i, l.In, l.Out, len(l.W), len(l.B))
		}
		if i > 0 && l.In != in.Layers[i-1].Out {
			return fmt.Errorf("nn: layer %d input %d does not match previous output %d", i, l.In, in.Layers[i-1].Out)
		}
		layers = append(layers, &Dense{In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B})
	}
	m.Layers = layers
	return nil
}
