// Package report exports experiment data in machine-readable forms: CSV of
// flow time series and result rows, so figures can be re-plotted with
// external tooling (the analogue of the paper artifact's data dumps).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"repro/internal/netsim"
)

// WriteFlowSeriesCSV writes all flows' recorded series as tidy CSV:
// flow,t_seconds,throughput_bps,send_rate_bps,avg_rtt_ms,loss_rate,cwnd,pacing_bps.
func WriteFlowSeriesCSV(w io.Writer, flows []*netsim.Flow) error {
	cw := csv.NewWriter(w)
	header := []string{"flow", "t_seconds", "throughput_bps", "send_rate_bps", "avg_rtt_ms", "loss_rate", "cwnd", "pacing_bps"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, f := range flows {
		for _, p := range f.Series() {
			rec := []string{
				f.Name(),
				fmt.Sprintf("%.3f", p.T.Seconds()),
				fmt.Sprintf("%.0f", p.ThroughputBps),
				fmt.Sprintf("%.0f", p.SendRateBps),
				fmt.Sprintf("%.3f", float64(p.AvgRTT)/float64(time.Millisecond)),
				fmt.Sprintf("%.5f", p.LossRate),
				fmt.Sprintf("%.2f", p.Cwnd),
				fmt.Sprintf("%.0f", p.PacingBps),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRowsCSV writes a generic header + rows table as CSV.
func WriteRowsCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
