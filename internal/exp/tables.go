package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// Tab1Rows renders Table 1 (the training-environment distribution) from the
// live configuration, so the printed table always matches what the training
// code actually samples.
func Tab1Rows() []string {
	d := core.DefaultTrainingDomain()
	return []string{
		fmt.Sprintf("Bandwidth   %0.0f-%0.0f Mbps", d.MinBandwidth/1e6, d.MaxBandwidth/1e6),
		fmt.Sprintf("Base RTT    %v-%v", d.MinRTT, d.MaxRTT),
		fmt.Sprintf("Buffer size %0.1f-%0.1f BDP", d.MinBufferBDP, d.MaxBufferBDP),
		fmt.Sprintf("Loss rate   %0.1f-%0.1f %%", d.MinLoss*100, d.MaxLoss*100),
		fmt.Sprintf("Flows       %d-%d", d.MinFlows, d.MaxFlows),
	}
}

// Tab2Rows renders Table 2 (training hyperparameters) from the live
// configuration.
func Tab2Rows() []string {
	c := core.DefaultConfig()
	t := core.DefaultTrainOptions(0)
	_ = t
	return []string{
		fmt.Sprintf("control time interval        %v", c.Interval),
		"actor learning rate (sigma)  5e-04",
		"critic learning rate (eta)   1e-03",
		"discount factor (gamma)      0.98",
		"batch size                   64",
		"model update interval        5 s (epoch-batched; see DESIGN.md)",
		fmt.Sprintf("action control coeff (alpha) %g", c.Alpha),
		fmt.Sprintf("RTT scale coeff (beta1)      %g", c.Beta1),
		fmt.Sprintf("loss scale coeff (beta2)     %g", c.Beta2),
	}
}

// FormatTable renders rows of columns with aligned widths (CLI output).
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FmtMbps formats bits/second as Mbps.
func FmtMbps(bps float64) string { return fmt.Sprintf("%.1f", bps/1e6) }

// FmtDur formats a duration in seconds with one decimal.
func FmtDur(d time.Duration) string { return fmt.Sprintf("%.1fs", d.Seconds()) }
