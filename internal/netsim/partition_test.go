package netsim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
)

func TestPartitionSingleBottleneckIsOneShard(t *testing.T) {
	n := New(Config{Seed: 1})
	l := n.AddLink(LinkConfig{Rate: 20e6, Delay: 10 * time.Millisecond, BufferBytes: 75_000})
	n.AddFlow(FlowConfig{Name: "a", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(10e6) }})
	n.AddFlow(FlowConfig{Name: "b", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(10e6) }})
	p, err := n.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 1 {
		t.Fatalf("single bottleneck partitioned into %d shards, want 1", p.Shards)
	}
	if p.Window != 0 {
		t.Fatalf("single shard has window %v, want 0 (no synchronization)", p.Window)
	}
	// The sequential fall-through keeps every object on the primary engine:
	// no coordinator, no per-shard engines, no cross-shard handles.
	sr, err := n.RunSharded(2*time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Executed) != 1 {
		t.Fatalf("1-shard run reported %d shards", len(sr.Executed))
	}
	if l.xs != nil || l.eng != n.Engine() {
		t.Fatal("1-shard run attached sharding state to the link")
	}
}

func TestPartitionAssignRejectsZeroDelayCut(t *testing.T) {
	n := New(Config{Seed: 1})
	l0 := n.AddLink(LinkConfig{Rate: 20e6, Delay: 0, BufferBytes: 75_000})
	l1 := n.AddLink(LinkConfig{Rate: 20e6, Delay: 5 * time.Millisecond, BufferBytes: 75_000})
	n.AddFlow(FlowConfig{Name: "a", Path: []*Link{l0, l1}, CC: func() cc.Algorithm { return cc.NewManual(10e6) }})
	if _, err := n.PartitionAssign([]int{0, 1}); !errors.Is(err, ErrZeroDelayCut) {
		t.Fatalf("zero-delay cut returned %v, want ErrZeroDelayCut", err)
	}
	// The automatic partitioner must absorb the constraint instead: both
	// links end up in one shard.
	p, err := n.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 1 {
		t.Fatalf("auto partition split a zero-delay adjacency into %d shards", p.Shards)
	}
}

// parkingLot builds the canonical 3-bottleneck chain: one long flow across
// all three links plus one local flow per link. rates/delays are fixed so
// the partition and lookahead matrix are predictable.
func parkingLot(seed uint64, localRate float64) (*Network, []*Link) {
	n := New(Config{Seed: seed})
	l0 := n.AddLink(LinkConfig{Rate: 50e6, Delay: 8 * time.Millisecond, BufferBytes: 512_000})
	l1 := n.AddLink(LinkConfig{Rate: 50e6, Delay: 7 * time.Millisecond, BufferBytes: 512_000})
	l2 := n.AddLink(LinkConfig{Rate: 50e6, Delay: 6 * time.Millisecond, BufferBytes: 512_000})
	links := []*Link{l0, l1, l2}
	n.AddFlow(FlowConfig{Name: "long", Path: links, CC: func() cc.Algorithm { return cc.NewManual(8e6) }})
	for i, l := range links {
		l := l
		n.AddFlow(FlowConfig{
			Name: fmt.Sprintf("local-%d", i), Path: []*Link{l},
			Start: time.Duration(i) * 100 * time.Millisecond,
			CC:    func() cc.Algorithm { return cc.NewManual(localRate) },
		})
	}
	return n, links
}

func TestPartitionParkingLotLookahead(t *testing.T) {
	n, _ := parkingLot(3, 10e6)
	p, err := n.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 3 {
		t.Fatalf("parking lot partitioned into %d shards, want 3", p.Shards)
	}
	for i, want := range []int{0, 1, 2} {
		if p.LinkShard[i] != want {
			t.Fatalf("link shards %v, want [0 1 2]", p.LinkShard)
		}
	}
	if p.FlowShard[0] != 0 {
		t.Fatalf("long flow on shard %d, want 0 (its first link's shard)", p.FlowShard[0])
	}
	// Forward packet handoffs: cut delay of the upstream link.
	if got := p.Lookahead[0][1]; got != 8*time.Millisecond {
		t.Fatalf("lookahead 0->1 = %v, want 8ms (l0 delay)", got)
	}
	if got := p.Lookahead[1][2]; got != 7*time.Millisecond {
		t.Fatalf("lookahead 1->2 = %v, want 7ms (l1 delay)", got)
	}
	// Backward: the long flow's ACK return leg (21ms) from the last link's
	// shard beats its drop-detection bound (base RTT 42ms); from the middle
	// shard only the drop bound applies.
	if got := p.Lookahead[2][0]; got != 21*time.Millisecond {
		t.Fatalf("lookahead 2->0 = %v, want 21ms (return leg)", got)
	}
	if got := p.Lookahead[1][0]; got != 42*time.Millisecond {
		t.Fatalf("lookahead 1->0 = %v, want 42ms (base RTT drop bound)", got)
	}
	if p.Window != 7*time.Millisecond {
		t.Fatalf("window %v, want 7ms (minimum pairwise lookahead)", p.Window)
	}
}

// netFingerprint serializes everything observable about a finished run.
func netFingerprint(n *Network) string {
	var b strings.Builder
	for _, f := range n.Flows() {
		fmt.Fprintf(&b, "%s %+v\n", f.Name(), f.Stats())
		for _, pt := range f.Series() {
			fmt.Fprintf(&b, "%+v\n", pt)
		}
	}
	for i, l := range n.Links() {
		fmt.Fprintf(&b, "link%d %+v %+v\n", i, l.Stats(), l.FaultStats())
	}
	return b.String()
}

// A loss-free sharded run must be observably identical to the sequential
// run of the same topology: same flow stats, same series, same link stats.
func TestRunShardedMatchesSequential(t *testing.T) {
	const horizon = 4 * time.Second
	seq, _ := parkingLot(7, 10e6)
	seq.Run(horizon)
	want := netFingerprint(seq)

	shd, _ := parkingLot(7, 10e6)
	sr, err := shd.RunSharded(horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Partition.Shards != 3 {
		t.Fatalf("ran on %d shards, want 3", sr.Partition.Shards)
	}
	var total int64
	for i, e := range sr.Executed {
		if e == 0 {
			t.Fatalf("shard %d executed no events: %v", i, sr.Executed)
		}
		total += e
	}
	if got := netFingerprint(shd); got != want {
		t.Errorf("sharded run diverged from sequential:\n--- sequential ---\n%.600s\n--- sharded ---\n%.600s", want, got)
	}
	if now := shd.Now(); now != horizon {
		t.Fatalf("network clock %v after sharded run, want %v", now, horizon)
	}
}

// Overloaded links force DropTail drops — including drops of the long
// flow's packets on foreign shards (the send-time lossDelay path). Two runs
// at the same shard count must be bit-identical.
func TestRunShardedDeterministicUnderDrops(t *testing.T) {
	const horizon = 3 * time.Second
	run := func() (string, *ShardRun) {
		n, links := parkingLot(11, 60e6) // locals alone oversubscribe every link
		sr, err := n.RunSharded(horizon, 3)
		if err != nil {
			t.Fatal(err)
		}
		drops := int64(0)
		for _, l := range links {
			drops += l.Stats().OverflowDrops
		}
		if drops == 0 {
			t.Fatal("overload scenario produced no drops; test is vacuous")
		}
		return netFingerprint(n), sr
	}
	a, ra := run()
	b, rb := run()
	if a != b {
		t.Error("two sharded runs of the same scenario diverged")
	}
	for i := range ra.Executed {
		if ra.Executed[i] != rb.Executed[i] {
			t.Fatalf("per-shard event counts diverged: %v vs %v", ra.Executed, rb.Executed)
		}
	}
}
