package exp

import (
	"testing"
	"time"
)

// shortRobustnessOptions keeps the table affordable for the test suite
// while staying in the regime of the acceptance claim.
func shortRobustnessOptions(schemes []string, cases []RobustnessCase) RobustnessOptions {
	return RobustnessOptions{
		Schemes:  schemes,
		Cases:    cases,
		Rate:     40e6,
		OneWay:   10 * time.Millisecond,
		Flows:    3,
		Lifetime: 30 * time.Second,
		Seed:     1,
	}
}

func pickCases(t *testing.T, names ...string) []RobustnessCase {
	t.Helper()
	all := RobustnessCases()
	var out []RobustnessCase
	for _, name := range names {
		found := false
		for _, c := range all {
			if c.Name == name {
				out = append(out, c)
				found = true
			}
		}
		if !found {
			t.Fatalf("no robustness case %q", name)
		}
	}
	return out
}

// TestRobustnessJuryFairUnderBurstLossAndFlaps is the PR's acceptance
// criterion: homogeneous Jury flows keep Jain ≥ 0.9 under burst loss and
// link flaps, with zero unclamped NaN/Inf reaching a rate action. The runs
// execute under the invariant checker (Check is forced in
// RobustnessScenario), so every fault-injected packet is audited too.
func TestRobustnessJuryFairUnderBurstLossAndFlaps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario robustness table")
	}
	o := shortRobustnessOptions([]string{"jury"}, pickCases(t, "burst-loss", "link-flap"))
	rows, err := RobustnessTable(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Jain < 0.9 {
			t.Errorf("%s/%s: Jain %.3f < 0.9", r.Scheme, r.Fault, r.Jain)
		}
		if r.NonFinite != 0 {
			t.Errorf("%s/%s: %d non-finite actions reached Eq. 7", r.Scheme, r.Fault, r.NonFinite)
		}
		if r.FaultDrops == 0 {
			t.Errorf("%s/%s: fault injector never dropped anything", r.Scheme, r.Fault)
		}
		if r.Utilization < 0.4 {
			t.Errorf("%s/%s: utilization %.3f collapsed", r.Scheme, r.Fault, r.Utilization)
		}
		if r.Digest == 0 {
			t.Errorf("%s/%s: no digest — robustness run not checked", r.Scheme, r.Fault)
		}
	}
}

// TestRobustnessDigestsSequentialVsParallel is the determinism acceptance
// criterion: the same fault scenario + seed must produce an identical
// simcheck digest whether run sequentially or through the RunMany pool.
func TestRobustnessDigestsSequentialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every fault case twice")
	}
	o := shortRobustnessOptions([]string{"jury"}, nil)
	o.Lifetime = 10 * time.Second
	o.defaults()
	var jobs []Scenario
	for _, c := range o.Cases {
		jobs = append(jobs, RobustnessScenario(o, "jury", c))
	}
	parallel, err := RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		seq, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Digest == 0 {
			t.Fatalf("%s: no digest (checker not attached?)", job.Name)
		}
		if seq.Digest != parallel[i].Digest {
			t.Errorf("%s: sequential digest %x != parallel %x", job.Name, seq.Digest, parallel[i].Digest)
		}
	}
}

// TestRobustnessTableSmoke runs one fast fault case for every default
// scheme so the full table path (including non-Jury schemes and the
// formatter) is exercised even in -short mode.
func TestRobustnessTableSmoke(t *testing.T) {
	o := RobustnessOptions{
		Schemes:  []string{"jury", "cubic"},
		Cases:    pickCases(t, "duplicate"),
		Rate:     20e6,
		OneWay:   10 * time.Millisecond,
		Flows:    2,
		Lifetime: 8 * time.Second,
		Seed:     3,
	}
	rows, err := RobustnessTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Duplicated == 0 {
			t.Errorf("%s/%s: no duplicates injected", r.Scheme, r.Fault)
		}
		if r.NonFinite != 0 {
			t.Errorf("%s/%s: non-finite actions %d", r.Scheme, r.Fault, r.NonFinite)
		}
	}
	if s := FormatRobustnessTable(rows); s == "" {
		t.Error("empty formatted table")
	}
}
