package faults

import (
	"math"
	"testing"
	"time"

	"repro/internal/simcore"
)

// TestGilbertElliottMatchesConfiguredStatistics is the fault-model
// calibration test: the realized loss rate and mean burst length of the
// chain must match the closed-form values within tolerance, across seeds.
func TestGilbertElliottMatchesConfiguredStatistics(t *testing.T) {
	cfg := GEConfig{PGoodBad: 0.01, PBadGood: 0.25, LossGood: 0, LossBad: 1}
	wantLoss := cfg.MeanLoss()   // 0.01/0.26 ≈ 0.0385
	wantBurst := cfg.MeanBurst() // 4

	const samples = 200_000
	for _, seed := range []uint64{1, 7, 42} {
		g := NewGilbertElliott(cfg, simcore.NewRNG(seed))
		var drops, bursts, burstLenSum int
		inBurst := false
		for i := 0; i < samples; i++ {
			if g.Drop() {
				drops++
				if !inBurst {
					bursts++
					inBurst = true
				}
				burstLenSum++
			} else {
				inBurst = false
			}
		}
		loss := float64(drops) / samples
		if math.Abs(loss-wantLoss) > 0.1*wantLoss {
			t.Errorf("seed %d: realized loss %.4f, configured %.4f", seed, loss, wantLoss)
		}
		burst := float64(burstLenSum) / float64(bursts)
		if math.Abs(burst-wantBurst) > 0.1*wantBurst {
			t.Errorf("seed %d: mean burst %.2f, configured %.2f", seed, burst, wantBurst)
		}
	}
}

func TestGilbertElliottDeterministic(t *testing.T) {
	cfg := GEConfig{PGoodBad: 0.05, PBadGood: 0.3, LossBad: 1}
	a := NewGilbertElliott(cfg, simcore.NewRNG(9))
	b := NewGilbertElliott(cfg, simcore.NewRNG(9))
	for i := 0; i < 10_000; i++ {
		if a.Drop() != b.Drop() {
			t.Fatalf("drop sequences diverged at packet %d", i)
		}
	}
}

// TestFlapDutyCycle checks that the fraction of time spent down matches
// MeanDown/(MeanUp+MeanDown) and that lazy advancement is query-invariant:
// sampling the process sparsely or densely must see the same schedule.
func TestFlapDutyCycle(t *testing.T) {
	cfg := FlapConfig{MeanUp: 800 * time.Millisecond, MeanDown: 200 * time.Millisecond}
	want := 0.2
	const horizon = 400 * time.Second
	const step = time.Millisecond
	var downTicks, ticks int
	f := NewFlap(cfg, simcore.NewRNG(3))
	for now := time.Duration(0); now < horizon; now += step {
		ticks++
		if f.Down(now) {
			downTicks++
		}
	}
	got := float64(downTicks) / float64(ticks)
	if math.Abs(got-want) > 0.25*want {
		t.Errorf("down fraction %.3f, want ≈ %.3f", got, want)
	}
}

func TestFlapQueryInvariant(t *testing.T) {
	cfg := FlapConfig{MeanUp: 100 * time.Millisecond, MeanDown: 30 * time.Millisecond}
	dense := NewFlap(cfg, simcore.NewRNG(5))
	sparse := NewFlap(cfg, simcore.NewRNG(5))
	// Dense queries every 1 ms; sparse only every 17 ms. At the shared query
	// instants both must agree: the schedule is a function of the RNG stream,
	// not the query pattern.
	for now := time.Duration(0); now < 10*time.Second; now += time.Millisecond {
		d := dense.Down(now)
		if now%(17*time.Millisecond) == 0 {
			if s := sparse.Down(now); s != d {
				t.Fatalf("at %v dense says %v, sparse says %v", now, d, s)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &Config{}, true},
		{"ge", &Config{GE: &GEConfig{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 1}}, true},
		{"ge-absorbing", &Config{GE: &GEConfig{PGoodBad: 0.01, PBadGood: 0, LossBad: 1}}, false},
		{"ge-range", &Config{GE: &GEConfig{PGoodBad: 1.5, PBadGood: 0.2, LossBad: 1}}, false},
		{"reorder", &Config{ReorderProb: 0.02, ReorderMaxDelay: 10 * time.Millisecond}, true},
		{"reorder-no-delay", &Config{ReorderProb: 0.02}, false},
		{"dup-range", &Config{DupProb: -0.1}, false},
		{"jitter-no-max", &Config{JitterProb: 0.1}, false},
		{"flap", &Config{Flap: &FlapConfig{MeanUp: time.Second, MeanDown: 100 * time.Millisecond}}, true},
		{"flap-degenerate", &Config{Flap: &FlapConfig{MeanUp: time.Second}}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if (&Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(&Config{DupProb: 0.1}).Enabled() {
		t.Error("dup config not Enabled")
	}
}
