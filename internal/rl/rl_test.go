package rl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simcore"
)

func TestReplayBufferRingEviction(t *testing.T) {
	b := NewReplayBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(Transition{Reward: float64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("len %d, want 3", b.Len())
	}
	rng := simcore.NewRNG(1)
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		for _, tr := range b.Sample(rng, 3, nil) {
			seen[tr.Reward] = true
		}
	}
	for _, old := range []float64{0, 1} {
		if seen[old] {
			t.Fatalf("evicted transition %v still sampled", old)
		}
	}
	for _, kept := range []float64{2, 3, 4} {
		if !seen[kept] {
			t.Fatalf("live transition %v never sampled", kept)
		}
	}
}

func TestReplayBufferSampleEmpty(t *testing.T) {
	b := NewReplayBuffer(4)
	if got := b.Sample(simcore.NewRNG(1), 2, nil); len(got) != 0 {
		t.Fatalf("sampling empty buffer returned %d items", len(got))
	}
}

func TestReplayBufferSampleUniform(t *testing.T) {
	b := NewReplayBuffer(10)
	for i := 0; i < 10; i++ {
		b.Add(Transition{Reward: float64(i)})
	}
	rng := simcore.NewRNG(2)
	counts := map[float64]int{}
	const draws = 20000
	for i := 0; i < draws/10; i++ {
		for _, tr := range b.Sample(rng, 10, nil) {
			counts[tr.Reward]++
		}
	}
	for r, c := range counts {
		freq := float64(c) / draws
		if math.Abs(freq-0.1) > 0.02 {
			t.Fatalf("transition %v sampled with freq %v, want ~0.1", r, freq)
		}
	}
}

func TestActClipsToActionBox(t *testing.T) {
	agent := NewTD3(Config{StateDim: 3, ActionDim: 2, Hidden: []int{8}, Seed: 3})
	if err := quick.Check(func(a, b, c float64) bool {
		s := []float64{sane(a), sane(b), sane(c)}
		act := agent.Act(s, 2.0) // huge exploration noise
		for _, v := range act {
			if v < -1 || v > 1 {
				return false
			}
		}
		return len(act) == 2
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sane(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 10)
}

func TestActDeterministicWithoutNoise(t *testing.T) {
	agent := NewTD3(Config{StateDim: 2, ActionDim: 1, Hidden: []int{8}, Seed: 4})
	s := []float64{0.5, -0.5}
	a1 := agent.Act(s, 0)
	a2 := agent.Act(s, 0)
	if a1[0] != a2[0] {
		t.Fatal("noiseless policy not deterministic")
	}
}

func TestUpdateNoopWhenBufferSmall(t *testing.T) {
	agent := NewTD3(Config{StateDim: 2, ActionDim: 1, Hidden: []int{8}, Batch: 64, Seed: 5})
	buf := NewReplayBuffer(128)
	buf.Add(Transition{State: []float64{0, 0}, Action: []float64{0}, NextState: []float64{0, 0}})
	if got := agent.Update(buf); got != 0 {
		t.Fatalf("update on tiny buffer returned %v", got)
	}
}

// banditEnv is a one-step environment with known optimum: reward is
// -(a - target(s))^2, where target depends on the (single) state bit.
type banditEnv struct {
	rng   *simcore.RNG
	state []float64
}

func (e *banditEnv) target() float64 {
	if e.state[0] > 0 {
		return 0.6
	}
	return -0.4
}

func (e *banditEnv) Reset() []float64 {
	if e.rng.Bernoulli(0.5) {
		e.state = []float64{1}
	} else {
		e.state = []float64{-1}
	}
	return e.state
}

func (e *banditEnv) Step(action []float64) ([]float64, float64, bool) {
	d := action[0] - e.target()
	return e.state, -d * d, true
}

func TestTD3SolvesContextualBandit(t *testing.T) {
	if testing.Short() {
		t.Skip("learning-convergence test")
	}
	agent := NewTD3(Config{
		StateDim: 1, ActionDim: 1, Hidden: []int{32, 32},
		ActorLR: 1e-3, CriticLR: 2e-3, Gamma: 0.0 /* one-step */, Batch: 64, Seed: 6,
	})
	// Gamma 0 is replaced by the default (0.98) in NewTD3 because of the
	// zero-means-default convention; for a done-terminated one-step env the
	// discount never applies, so this is harmless.
	res, err := Train(TrainConfig{
		Agent:           agent,
		EnvFactory:      func(i int) Env { return &banditEnv{rng: simcore.NewRNG(uint64(i) + 10)} },
		Actors:          4,
		Epochs:          60,
		StepsPerActor:   64,
		UpdatesPerEpoch: 64,
		WarmupEpochs:    2,
		NoiseStd:        0.4,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	early := res.EpochRewards[2]
	late := res.EpochRewards[len(res.EpochRewards)-1]
	if late < early {
		t.Fatalf("reward did not improve: early %v late %v", early, late)
	}
	// The learned policy must pick near-optimal actions for both contexts.
	if a := agent.Act([]float64{1}, 0)[0]; math.Abs(a-0.6) > 0.15 {
		t.Fatalf("action for s=+1 is %v, want ~0.6", a)
	}
	if a := agent.Act([]float64{-1}, 0)[0]; math.Abs(a+0.4) > 0.15 {
		t.Fatalf("action for s=-1 is %v, want ~-0.4", a)
	}
	// Epoch rewards include exploration noise (std ~0.3 at the end, i.e.
	// E[-noise²] ≈ -0.09), so only require the noisy mean to be in that
	// ballpark; the noiseless policy checks above are the real assertion.
	if late < -0.2 {
		t.Fatalf("final mean (noisy) reward %v, want ≳ -0.2", late)
	}
}

// chainEnv tests multi-step credit assignment: the agent must push the
// 1-D state toward +1 (reward = state each step, action moves the state).
type chainEnv struct {
	pos   float64
	steps int
}

func (e *chainEnv) Reset() []float64 {
	e.pos = 0
	e.steps = 0
	return []float64{e.pos}
}

func (e *chainEnv) Step(a []float64) ([]float64, float64, bool) {
	e.pos += 0.2 * a[0]
	if e.pos > 1 {
		e.pos = 1
	}
	if e.pos < -1 {
		e.pos = -1
	}
	e.steps++
	return []float64{e.pos}, e.pos, e.steps >= 20
}

func TestTD3LearnsMultiStepCredit(t *testing.T) {
	if testing.Short() {
		t.Skip("learning-convergence test")
	}
	agent := NewTD3(Config{StateDim: 1, ActionDim: 1, Hidden: []int{32, 32}, Batch: 64, Seed: 8})
	res, err := Train(TrainConfig{
		Agent:           agent,
		EnvFactory:      func(i int) Env { return &chainEnv{} },
		Actors:          4,
		Epochs:          50,
		StepsPerActor:   100,
		UpdatesPerEpoch: 50,
		WarmupEpochs:    2,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.EpochRewards[len(res.EpochRewards)-1]
	// Optimal policy reaches pos=1 quickly: mean reward ~0.85+. Anything
	// clearly positive shows credit assignment through the chain.
	if last < 0.5 {
		t.Fatalf("final mean reward %v, want ≥0.5", last)
	}
	if a := agent.Act([]float64{0.5}, 0)[0]; a < 0.5 {
		t.Fatalf("policy at pos 0.5 should push hard positive, got %v", a)
	}
}

func TestTrainValidatesConfig(t *testing.T) {
	if _, err := Train(TrainConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestNewTD3PanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad dims did not panic")
		}
	}()
	NewTD3(Config{})
}

func TestCriticLearnsValueOfFixedPolicy(t *testing.T) {
	// Terminal one-step transitions with fixed reward 1: Q(s,a) must
	// converge to ~1 everywhere it is trained.
	agent := NewTD3(Config{StateDim: 1, ActionDim: 1, Hidden: []int{16}, Batch: 32, Seed: 11})
	buf := NewReplayBuffer(1024)
	rng := simcore.NewRNG(12)
	for i := 0; i < 512; i++ {
		s := []float64{rng.Range(-1, 1)}
		a := []float64{rng.Range(-1, 1)}
		buf.Add(Transition{State: s, Action: a, Reward: 1, NextState: s, Done: true})
	}
	for i := 0; i < 3000; i++ {
		agent.Update(buf)
	}
	if q := agent.Q1([]float64{0.3}, []float64{-0.2}); math.Abs(q-1) > 0.2 {
		t.Fatalf("critic value %v, want ~1", q)
	}
}
