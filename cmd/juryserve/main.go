// Command juryserve runs the standalone policy-inference daemon: the
// deployment shape of the paper's architecture, where one inference service
// feeds congestion decisions to many datapath flows over the agentrpc wire
// protocol (request batching, admission control, per-tenant accounting).
//
//	juryserve -addr 127.0.0.1:9000                     # reference policy
//	juryserve -actor actor.json -debug-addr :9090      # trained actor + metrics
//	juryserve -checkpoint ck.json -batch 128 -batch-delay 300us
//
// SIGHUP hot-swaps the policy by reloading -actor/-checkpoint through the
// health gate (a rejected or later-misbehaving version is rolled back
// automatically); SIGINT/SIGTERM drain gracefully: in-flight requests are
// answered before the process exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/agentrpc"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// loadPolicy builds the serving policy from the artifact flags. With neither
// set, the tuned reference policy serves — useful for wiring tests and as a
// known-good SIGHUP rollback target.
func loadPolicy(actor, checkpoint string) (agentrpc.Policy, string, error) {
	switch {
	case actor != "" && checkpoint != "":
		return nil, "", fmt.Errorf("-actor and -checkpoint are mutually exclusive")
	case actor != "":
		p, err := core.PolicyFromActorFile(actor)
		return p, "actor " + actor, err
	case checkpoint != "":
		p, err := core.PolicyFromCheckpoint(checkpoint)
		return p, "checkpoint " + checkpoint, err
	default:
		return core.NewReferencePolicy(), "reference policy", nil
	}
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9000", "listen address for the inference service")
		actor      = flag.String("actor", "", "serve a JSON actor network (jurytrain -out artifact)")
		checkpoint = flag.String("checkpoint", "", "serve the actor inside a TD3 training checkpoint")
		batch      = flag.Int("batch", 0, "max requests per policy execution (0 = default)")
		batchDelay = flag.Duration("batch-delay", 0, "batch coalescing latency budget (0 = default)")
		maxQueue   = flag.Int("max-queue", 0, "admission-control queue bound (0 = default, negative = shed unless idle)")
		drainWait  = flag.Duration("drain", 5*time.Second, "graceful-drain budget on SIGINT/SIGTERM")

		telemetryOn = flag.Bool("telemetry", false, "enable the telemetry hub (implied by -trace-out/-debug-addr)")
		traceOut    = flag.String("trace-out", "", `write JSONL spans/events to this path ("-" for stderr)`)
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /metrics.json, /debug/pprof, /debug/vars on this address")
		obsOn       = flag.Bool("obs", false, "mount the /fairness live surfaces on -debug-addr (populated when a co-process run attaches)")
		obsWindow   = flag.Duration("obs-window", 500*time.Millisecond, "fairness snapshot cadence in virtual time")
	)
	flag.Parse()

	hub, err := telemetry.Setup(telemetry.Options{Enabled: *telemetryOn, TraceOut: *traceOut, DebugAddr: *debugAddr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "juryserve:", err)
		os.Exit(1)
	}
	defer hub.Close()
	if *obsOn {
		rt := obs.New(obs.Options{Window: *obsWindow})
		if d := hub.Debug(); d != nil {
			d.Handle("/fairness", rt.State())
			d.Handle("/fairness/stream", rt.State().StreamHandler())
		}
	}
	if a := hub.DebugAddr(); a != "" {
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/\n", a)
	}

	p, desc, err := loadPolicy(*actor, *checkpoint)
	if err != nil {
		fmt.Fprintln(os.Stderr, "juryserve:", err)
		os.Exit(1)
	}
	srv, err := agentrpc.ServeConfig(*addr, p, agentrpc.Config{
		MaxBatch:   *batch,
		BatchDelay: *batchDelay,
		MaxQueue:   *maxQueue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "juryserve:", err)
		os.Exit(1)
	}
	hub.ExportRPCDaemon(srv)
	fmt.Fprintf(os.Stderr, "juryserve: serving %s on %s (version %d)\n", desc, srv.Addr(), srv.PolicyVersion())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			next, desc, err := loadPolicy(*actor, *checkpoint)
			if err != nil {
				fmt.Fprintf(os.Stderr, "juryserve: reload failed, keeping version %d: %v\n", srv.PolicyVersion(), err)
				continue
			}
			id, err := srv.Swap(next)
			if err != nil {
				fmt.Fprintf(os.Stderr, "juryserve: swap refused, keeping version %d: %v\n", srv.PolicyVersion(), err)
				continue
			}
			fmt.Fprintf(os.Stderr, "juryserve: hot-swapped to %s (version %d)\n", desc, id)
			continue
		}
		fmt.Fprintf(os.Stderr, "juryserve: %v — draining (budget %v)\n", sig, *drainWait)
		if err := srv.Drain(*drainWait); err != nil {
			fmt.Fprintln(os.Stderr, "juryserve: drain:", err)
		}
		fmt.Fprintf(os.Stderr, "juryserve: served %d decisions in %d batches (%d shed, %d timeouts, %d rollbacks)\n",
			srv.Decisions(), srv.Batches(), srv.Shed(), srv.Timeouts(), srv.Rollbacks())
		return
	}
}
