package core

import (
	"math"
	"time"
)

// Reward computes Eq. 9:
//
//	R = ratio_bw^ζ − ratio_bw · (β1·(RTT−RTT_min) − β2·(1−L)/(1−L_min))
//
// with the RTT difference measured in microseconds (so β1 = 1e-5 weights a
// 10 ms queue as 0.1). The throughput term is concave in the occupancy
// (0 < ζ < 1), which rewards small flows more per unit of growth, and the
// penalty terms scale with the occupancy so large flows bear more of the
// responsibility for congestion (§3.3).
func Reward(cfg Config, ratioBW float64, rtt, rttMin time.Duration, loss, lossMin float64) float64 {
	if ratioBW < 0 {
		ratioBW = 0
	}
	if ratioBW > 1 {
		ratioBW = 1
	}
	drttUS := float64(rtt-rttMin) / float64(time.Microsecond)
	if drttUS < 0 {
		drttUS = 0
	}
	lossTerm := (1 - clampLoss(loss)) / (1 - clampLoss(lossMin))
	return math.Pow(ratioBW, cfg.Zeta) - ratioBW*(cfg.Beta1*drttUS-cfg.Beta2*lossTerm)
}
