#!/bin/sh
# check.sh — the repository's fast verification gate.
#
# Runs formatting, vet, build, the short test suite, the race detector over
# every package, and short fuzz smokes on the wire/trace parsers. The full
# suite (go test ./...) adds the full-scale emulation tests gated behind
# -short; JURY_SIMCHECK=1 additionally audits every experiment scenario with
# the simcheck invariant checker (exp's own tests always do).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -short ./..."
go test -short ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== fault-matrix smoke under the race detector"
go test -race -short -run '^TestFaultMatrix' ./internal/simcheck

echo "== sharded engine: digest parity (canonical scenarios, -shards=1 vs 4)"
go test -run '^(TestShardedDigestParity|TestHugeShardedDigestParity)$' -count=1 ./internal/exp

echo "== sharded engine: reduced-flow parity smoke (JURY_HUGE_FLOWS=5000, -race)"
JURY_HUGE_FLOWS=5000 go test -race -run '^TestHugeEnvShardedDigestParity$' -count=1 -timeout 20m ./internal/exp

echo "== shard coordinator race smoke"
go test -race -run '^TestCoordinator' -count=1 ./internal/simcore
go test -race -run '^(TestRunSharded|TestPartition)' -count=1 ./internal/netsim
go test -race -run '^TestSharded' -count=1 ./internal/simcheck

echo "== telemetry: disabled-path zero-alloc + digest parity"
go test -run '^(TestDisabledZeroAlloc|TestEnabledEventZeroAlloc|TestNilSafety|TestTelemetryDigestParity)$' -count=1 ./internal/telemetry

echo "== telemetry: metric-family get-or-create race + histogram bucket validation"
go test -race -run '^(TestRegistryConcurrentGetOrCreate|TestHistogramBucketValidation|TestTenantMetricNameCollision)$' -count=1 ./internal/telemetry

echo "== streaming obs: zero-alloc hot path + streaming-vs-post-hoc Jain + digest parity"
go test -run '^(TestSampleRecordedAllocs|TestSketchObserveAllocs|TestStreamingJainMatchesPostHoc)' -count=1 ./internal/obs
go test -run '^(TestObsStreamingJainMatchesPostHoc|TestObsDigestParity|TestObsShardedDigestParity|TestObsFlightRecorderOnFaults)$' -count=1 ./internal/exp

echo "== inference daemon: chaos matrix under the race detector"
go test -race -run '^(TestChaos|TestClientShedsAboveMaxPending|TestServerWriteDeadlineDropsStalledReader|TestDialBackoffJitterDesynchronizes|TestRuntimeNonFiniteRollsBack|TestDrainAnswersInFlight)' -count=1 ./internal/agentrpc

echo "== run store: crash matrix + bit-flip sweep under the race detector"
go test -race -short -run '^(TestCrashMatrix|TestCompactionCrashMatrix|TestBitFlipSweep)$' -count=1 ./internal/runstore

echo "== run store: warm-sweep skip + kill-and-resume"
go test -run '^(TestRunManyWarmStoreSkipsSimulation|TestKillAndResumeSweep|TestRetryPathLeavesStoreIntact|TestScenarioKeyStability)$' -count=1 ./internal/exp

echo "== bench harness smoke (1 iteration per benchmark)"
scripts/bench.sh --smoke

echo "== fuzz smoke (10s each)"
go test -run='^$' -fuzz='^FuzzMahimahiParse$' -fuzztime=10s ./internal/traces
go test -run='^$' -fuzz='^FuzzAgentRPCDecode$' -fuzztime=10s ./internal/agentrpc
go test -run='^$' -fuzz='^FuzzWALDecode$' -fuzztime=10s ./internal/runstore

echo "OK"
