package cc

import "time"

// Manual is a directly steered controller used by experiments that probe the
// network with scripted sending rates (the paper's Fig. 4 ramp and Fig. 5
// +10% occupancy probes) and by emulator tests. It never reacts to feedback;
// callers set the rate and window explicitly.
type Manual struct {
	rate float64
	cwnd float64
}

// NewManual returns a controller pinned at the given pacing rate
// (bits/second) with a window large enough to keep the rate unconstrained.
func NewManual(rate float64) *Manual {
	return &Manual{rate: rate, cwnd: 1 << 20}
}

// Name implements Algorithm.
func (m *Manual) Name() string { return "manual" }

// Init implements Algorithm.
func (m *Manual) Init(time.Duration) {}

// OnAck implements Algorithm.
func (m *Manual) OnAck(Ack) {}

// OnLoss implements Algorithm.
func (m *Manual) OnLoss(Loss) {}

// CWND implements Algorithm.
func (m *Manual) CWND() float64 { return m.cwnd }

// PacingRate implements Algorithm.
func (m *Manual) PacingRate() float64 { return m.rate }

// SetRate changes the pacing rate (bits/second).
func (m *Manual) SetRate(rate float64) { m.rate = rate }

// SetCWND changes the window (packets).
func (m *Manual) SetCWND(cwnd float64) { m.cwnd = cwnd }
