package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba, 2015) bound to one MLP.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t  int
	mW [][]float64
	vW [][]float64
	mB [][]float64
	vB [][]float64
}

// NewAdam returns an Adam optimizer for m with the given learning rate and
// standard moment decay rates.
func NewAdam(m *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
	for _, l := range m.Layers {
		a.mW = append(a.mW, make([]float64, len(l.W)))
		a.vW = append(a.vW, make([]float64, len(l.W)))
		a.mB = append(a.mB, make([]float64, len(l.B)))
		a.vB = append(a.vB, make([]float64, len(l.B)))
	}
	return a
}

// Step applies one gradient-descent update to m using g.
func (a *Adam) Step(m *MLP, g *Grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for li, l := range m.Layers {
		a.stepSlice(l.W, g.W[li], a.mW[li], a.vW[li], c1, c2)
		a.stepSlice(l.B, g.B[li], a.mB[li], a.vB[li], c1, c2)
	}
}

func (a *Adam) stepSlice(p, g, m, v []float64, c1, c2 float64) {
	for i := range p {
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
		mHat := m[i] / c1
		vHat := v[i] / c2
		p[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
	}
}
