// The `juryplot fairness` subcommand renders a streaming fairness capture —
// the /fairness JSON page, a /fairness/stream SSE capture, or plain JSONL of
// snapshots — as an SVG chart of windowed and cumulative Jain over virtual
// time. See EXPERIMENTS.md "Live fairness observatory" for the capture
// recipes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/plot"
)

// runFairness is the `juryplot fairness` entry point.
func runFairness(args []string) {
	fs := flag.NewFlagSet("fairness", flag.ExitOnError)
	var (
		in  = fs.String("in", "", "capture file: /fairness JSON, an SSE capture, or snapshot JSONL (required)")
		out = fs.String("out", "fairness.svg", "output SVG path")
	)
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	chart, err := fairnessChart(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "juryplot:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, []byte(chart.SVG()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "juryplot:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// parseFairnessCapture accepts the three shapes a fairness capture comes in:
//
//   - the /fairness page: one JSON object with a "recent" array;
//   - an SSE capture of /fairness/stream: `data: {...}` frames;
//   - plain JSONL: one snapshot object per line (flight-style captures).
func parseFairnessCapture(path string) ([]obs.FairnessSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snaps []obs.FairnessSnapshot
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	lines := 0
	for sc.Scan() {
		lines++
		line := strings.TrimSpace(sc.Text())
		line = strings.TrimPrefix(line, "data:")
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if lines == 1 && strings.HasPrefix(line, "{") && strings.Contains(line, `"recent"`) {
			// Single-line /fairness page.
			var page struct {
				Recent []obs.FairnessSnapshot `json:"recent"`
			}
			if err := json.Unmarshal([]byte(line), &page); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return page.Recent, nil
		}
		var snap obs.FairnessSnapshot
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			// Not line-oriented: fall back to decoding the whole file as one
			// (possibly indented) /fairness page.
			return parseFairnessPage(path)
		}
		snaps = append(snaps, snap)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snaps, nil
}

func parseFairnessPage(path string) ([]obs.FairnessSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var page struct {
		Recent []obs.FairnessSnapshot `json:"recent"`
	}
	if err := json.Unmarshal(data, &page); err != nil {
		return nil, fmt.Errorf("%s: not a /fairness page, SSE capture, or snapshot JSONL: %w", path, err)
	}
	return page.Recent, nil
}

// fairnessChart renders windowed and cumulative Jain over virtual time.
func fairnessChart(path string) (*plot.Chart, error) {
	snaps, err := parseFairnessCapture(path)
	if err != nil {
		return nil, err
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("%s: no fairness snapshots (was the run launched with -obs?)", path)
	}
	win := plot.Series{Name: "windowed Jain"}
	cum := plot.Series{Name: "cumulative Jain"}
	for _, s := range snaps {
		t := s.T.Seconds()
		win.X = append(win.X, t)
		win.Y = append(win.Y, s.WindowJain)
		cum.X = append(cum.X, t)
		cum.Y = append(cum.Y, s.CumJain)
	}
	c := &plot.Chart{
		Title:  "streaming fairness: " + path,
		XLabel: "virtual time (s)",
		YLabel: "Jain index",
		Series: []plot.Series{win, cum},
	}
	return c, nil
}
