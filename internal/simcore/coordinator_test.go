package simcore

import (
	"sync/atomic"
	"testing"
	"time"
)

// Two shards ping-ponging an event back and forth with a 10ms one-way
// lookahead must execute alternately and deterministically.
func TestCoordinatorPingPong(t *testing.T) {
	engs := []*Engine{NewEngine(), NewEngine()}
	c := NewCoordinator(engs, 10*time.Millisecond)
	s0, s1 := c.Shard(0), c.Shard(1)

	var trace []string
	var bounce0, bounce1 func(any)
	bounce0 = func(any) { // runs on shard 0
		trace = append(trace, "s0@"+engs[0].Now().String())
		s0.Send(1, engs[0].Now()+10*time.Millisecond, bounce1, nil)
	}
	bounce1 = func(any) { // runs on shard 1
		trace = append(trace, "s1@"+engs[1].Now().String())
		s1.Send(0, engs[1].Now()+10*time.Millisecond, bounce0, nil)
	}
	engs[0].Schedule(0, func() { bounce0(nil) })

	total := c.Run(45 * time.Millisecond)
	if total != 5 {
		t.Fatalf("executed %d events, want 5", total)
	}
	want := []string{"s0@0s", "s1@10ms", "s0@20ms", "s1@30ms", "s0@40ms"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
	for i, e := range engs {
		if e.Now() != 45*time.Millisecond {
			t.Fatalf("shard %d clock %v, want 45ms", i, e.Now())
		}
	}
	per := c.ExecutedPerShard()
	if per[0] != 3 || per[1] != 2 {
		t.Fatalf("per-shard executed %v, want [3 2]", per)
	}
}

// The merged hook on the primary engine must observe every event from every
// shard in nondecreasing time order, and be restored after Run.
func TestCoordinatorMergedHookOrderAndRestore(t *testing.T) {
	engs := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	var ats []time.Duration
	orig := func(at time.Duration, seq uint64) { ats = append(ats, at) }
	engs[0].SetEventHook(orig)

	c := NewCoordinator(engs, 5*time.Millisecond)
	nop := func() {}
	// Interleaved local events on all shards, no cross traffic.
	for i, e := range engs {
		for k := 0; k < 10; k++ {
			e.Schedule(time.Duration(i+3*k)*time.Millisecond, nop)
		}
	}
	total := c.Run(50 * time.Millisecond)
	if total != 30 {
		t.Fatalf("executed %d, want 30", total)
	}
	if len(ats) != 30 {
		t.Fatalf("hook saw %d events, want 30", len(ats))
	}
	for i := 1; i < len(ats); i++ {
		if ats[i] < ats[i-1] {
			t.Fatalf("merged stream went backwards at %d: %v -> %v", i, ats[i-1], ats[i])
		}
	}
	// Hook restored: a direct event on the primary engine still reaches orig.
	n := len(ats)
	engs[0].Schedule(60*time.Millisecond, nop)
	engs[0].Run(60 * time.Millisecond)
	if len(ats) != n+1 {
		t.Fatal("primary engine hook not restored after coordinator run")
	}
}

// A hook on a non-primary engine would silently bypass the merge; the
// constructor must reject it.
func TestCoordinatorRejectsSecondaryHook(t *testing.T) {
	engs := []*Engine{NewEngine(), NewEngine()}
	engs[1].SetEventHook(func(time.Duration, uint64) {})
	defer func() {
		if recover() == nil {
			t.Fatal("hook on non-primary engine did not panic")
		}
	}()
	NewCoordinator(engs, time.Millisecond)
}

// A cross-shard send that lands inside the already-executed window is a
// lookahead violation and must panic at the barrier.
func TestCoordinatorLookaheadViolationPanics(t *testing.T) {
	engs := []*Engine{NewEngine(), NewEngine()}
	c := NewCoordinator(engs, 10*time.Millisecond)
	s0 := c.Shard(0)
	engs[0].Schedule(0, func() {
		s0.Send(1, 2*time.Millisecond, func(any) {}, nil) // < window end
	})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	c.Run(20 * time.Millisecond)
}

// window <= 0 declares the shards independent: they run to the horizon in
// one window, fully parallel, with correct totals.
func TestCoordinatorIndependentShards(t *testing.T) {
	engs := []*Engine{NewEngine(), NewEngine(), NewEngine(), NewEngine()}
	var fired atomic.Int64
	for _, e := range engs {
		for k := 0; k < 100; k++ {
			e.Schedule(time.Duration(k)*time.Millisecond, func() { fired.Add(1) })
		}
	}
	c := NewCoordinator(engs, 0)
	total := c.Run(200 * time.Millisecond)
	if total != 400 || fired.Load() != 400 {
		t.Fatalf("executed %d (fired %d), want 400", total, fired.Load())
	}
}

// Same-time cross-shard sends from different sources must be injected in
// (at, src, ord) order, independent of goroutine scheduling.
func TestCoordinatorCrossEventTieBreak(t *testing.T) {
	run := func() []int {
		engs := []*Engine{NewEngine(), NewEngine(), NewEngine()}
		c := NewCoordinator(engs, 10*time.Millisecond)
		var got []int
		rec := func(arg any) { got = append(got, arg.(int)) }
		for src := 1; src <= 2; src++ {
			src := src
			s := c.Shard(src)
			engs[src].Schedule(0, func() {
				// Two sends per source, all landing at the same instant on shard 0.
				s.Send(0, 15*time.Millisecond, rec, src*10)
				s.Send(0, 15*time.Millisecond, rec, src*10+1)
			})
		}
		c.Run(20 * time.Millisecond)
		return got
	}
	want := []int{10, 11, 20, 21}
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: injection order %v, want %v", trial, got, want)
			}
		}
	}
}

// Events scheduled exactly at the horizon fire, matching Engine.Run.
func TestCoordinatorHorizonInclusive(t *testing.T) {
	engs := []*Engine{NewEngine(), NewEngine()}
	c := NewCoordinator(engs, time.Millisecond)
	fired := 0
	engs[1].Schedule(30*time.Millisecond, func() { fired++ })
	engs[1].Schedule(30*time.Millisecond+1, func() { fired++ }) // past horizon
	c.Run(30 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired %d, want 1 (horizon-inclusive, not beyond)", fired)
	}
}

// Satellite: equal-timestamp FIFO must hold across the 64-event slab
// boundary — more than one slab's worth of same-time events, interleaved
// with enough churn that the free-list and a second slab both get exercised.
func TestEngineFIFOAcrossSlabBoundary(t *testing.T) {
	e := NewEngine()
	var got []int
	const n = 200 // > 3 slabs of 64
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	if e.Len() != n {
		t.Fatalf("Len %d, want %d", e.Len(), n)
	}
	e.Run(time.Millisecond)
	if len(got) != n {
		t.Fatalf("fired %d, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of order at %d: %v...", i, got[:i+1])
		}
	}
	// Second wave at one timestamp, now served from the free-list: FIFO must
	// still follow scheduling order, not free-list (LIFO) order.
	got = got[:0]
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(2*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(2 * time.Millisecond)
	for i := range got {
		if got[i] != i {
			t.Fatalf("recycled same-time events out of order at %d", i)
		}
	}
}

func TestEnginePendingEventsExcludesCancelled(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	t3 := e.Schedule(30, func() {})
	_ = a
	t3.Cancel()
	if e.Len() != 3 {
		t.Fatalf("Len %d, want 3 (cancelled still queued)", e.Len())
	}
	if e.PendingEvents() != 2 {
		t.Fatalf("PendingEvents %d, want 2", e.PendingEvents())
	}
}

func TestEngineNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt ok on empty queue")
	}
	e.Schedule(25, func() {})
	e.Schedule(15, func() {})
	if at, ok := e.NextAt(); !ok || at != 15 {
		t.Fatalf("NextAt = %v,%v, want 15,true", at, ok)
	}
}

func TestEngineRunUntilExclusive(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ }) // exactly at stop: must NOT fire
	n := e.RunUntil(20)
	if n != 1 || fired != 1 {
		t.Fatalf("RunUntil fired %d, want 1", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock %v, want 10 (RunUntil does not advance past last event)", e.Now())
	}
	// The boundary event is still schedulable-for and fires on the next window.
	n = e.RunUntil(21)
	if n != 1 || fired != 2 {
		t.Fatalf("second window fired %d, want 1 more", n)
	}
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(50)
	if e.Now() != 50 {
		t.Fatalf("clock %v, want 50", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards AdvanceTo did not panic")
		}
	}()
	e.AdvanceTo(10)
}
