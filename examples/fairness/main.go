// Fairness generalization: the paper's headline result. Three Jury flows
// join a 350 Mbps bottleneck at staggered times — 3.5x the training-domain
// maximum bandwidth (Table 1 caps training at 100 Mbps) — and still
// converge to equal shares, because the fairness mechanism lives in the
// occupancy post-processing, not in the learned policy (compare Fig. 1 vs
// Fig. 7(b) in the paper).
package main

import (
	"fmt"
	"time"

	jury "repro"
	"repro/internal/metrics"
)

func main() {
	const (
		rate    = 350e6
		stagger = 30 * time.Second
		horizon = 150 * time.Second
	)
	net := jury.NewNetwork(jury.NetworkConfig{Seed: 7})
	link := net.AddLink(jury.LinkConfig{
		Rate:        rate,
		Delay:       15 * time.Millisecond,
		BufferBytes: int(rate / 8 * 0.030), // 1 BDP
	})

	flows := make([]*jury.Flow, 3)
	for i := range flows {
		seed := uint64(i) + 1
		flows[i] = net.AddFlow(jury.FlowConfig{
			Name:  fmt.Sprintf("flow-%d", i),
			Path:  []*jury.Link{link},
			Start: time.Duration(i) * stagger,
			CC:    func() jury.CC { return jury.NewController(seed) },
		})
	}

	fmt.Printf("three Jury flows on a %0.0f Mbps link (training max was 100 Mbps)\n\n", rate/1e6)
	fmt.Println("t(s)   flow-0   flow-1   flow-2   (Mbps)")
	for s := 10; s <= int(horizon.Seconds()); s += 10 {
		net.Run(time.Duration(s) * time.Second)
		fmt.Printf("%4d ", s)
		for _, f := range flows {
			from := time.Duration(s-10) * time.Second
			fmt.Printf(" %8.1f", metrics.MeanThroughput(f, from, time.Duration(s)*time.Second)/1e6)
		}
		fmt.Println()
	}

	var shares []float64
	for _, f := range flows {
		shares = append(shares, metrics.MeanThroughput(f, horizon-30*time.Second, horizon))
	}
	fmt.Printf("\nlate-window Jain index: %.3f (1.0 = perfectly fair)\n", metrics.JainIndex(shares))
	fmt.Printf("link utilization:       %.3f\n", link.Utilization(horizon))
}
