package agentrpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzAgentRPCDecode feeds arbitrary byte streams to the request-frame
// decoder the server runs against every connection. It must never panic,
// never hand the policy a state above maxStateDim, and every frame it does
// accept must re-encode to the exact bytes it was decoded from (bit-level
// round trip, NaN payloads included).
func FuzzAgentRPCDecode(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})             // ping
	f.Add([]byte{1, 0, 0, 0})             // truncated body
	f.Add([]byte{0xfe, 0xff, 0xff, 0xff}) // oversized count
	two := appendRequest(nil, []float64{1.5, math.NaN()})
	f.Add(two)
	f.Add(append(append([]byte{}, two...), 0, 0, 0, 0)) // frame then ping
	f.Add(appendHello(nil, "tenant-a"))                 // tenant hello
	f.Add(append(appendHello(nil, ""), two...))         // empty hello then frame
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := newRequestReader(bytes.NewReader(data))
		off := 0 // byte offset of the current frame within data
		for {
			fr, err := dec.next()
			if err != nil {
				if errors.Is(err, errOversizedFrame) {
					count := binary.LittleEndian.Uint32(data[off:])
					if count <= maxStateDim || count == helloMagic {
						t.Fatalf("count %d rejected as oversized", count)
					}
				} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected decode error: %v", err)
				}
				return
			}
			switch fr.kind {
			case framePing:
				if fr.state != nil {
					t.Fatal("ping carried state")
				}
				off += 4
			case frameHello:
				if len(fr.tenant) > maxTenantLen {
					t.Fatalf("tenant length %d", len(fr.tenant))
				}
				if got := appendHello(nil, fr.tenant); !bytes.Equal(got, data[off:off+len(got)]) {
					t.Fatalf("re-encode of hello at %d differs from wire bytes", off)
				}
				off += 4 + 1 + len(fr.tenant)
			case frameDecide:
				state := fr.state
				if len(state) == 0 || len(state) > maxStateDim {
					t.Fatalf("decoded state dim %d", len(state))
				}
				frameLen := 4 + len(state)*8
				if got := appendRequest(nil, state); !bytes.Equal(got, data[off:off+frameLen]) {
					t.Fatalf("re-encode of %d-dim frame at %d differs from wire bytes", len(state), off)
				}
				off += frameLen
			default:
				t.Fatalf("unknown frame kind %d", fr.kind)
			}
		}
	})
}

// TestRequestRoundTrip pins the encode side against a hand-built frame so
// the fuzz property (decode∘encode = id) can't be trivially satisfied by a
// broken pair of inverse bugs.
func TestRequestRoundTrip(t *testing.T) {
	state := []float64{0, -1, math.Inf(1), 1e-300, math.Float64frombits(0x7ff8000000000001)}
	raw := appendRequest(nil, state)
	if len(raw) != 4+8*len(state) {
		t.Fatalf("frame length %d", len(raw))
	}
	dec := newRequestReader(bytes.NewReader(raw))
	fr, err := dec.next()
	if err != nil || fr.kind != frameDecide {
		t.Fatalf("decode: kind=%v err=%v", fr.kind, err)
	}
	if len(fr.state) != len(state) {
		t.Fatalf("dim %d != %d", len(fr.state), len(state))
	}
	for i := range state {
		if math.Float64bits(fr.state[i]) != math.Float64bits(state[i]) {
			t.Fatalf("value %d: %x != %x", i, math.Float64bits(fr.state[i]), math.Float64bits(state[i]))
		}
	}
}

// TestResponseRoundTrip pins the typed response frame both ways.
func TestResponseRoundTrip(t *testing.T) {
	for _, status := range []byte{statusOK, statusBusy, statusErr} {
		raw := appendResponse(nil, status, 1.25, -0.5)
		if len(raw) != respSize {
			t.Fatalf("response length %d", len(raw))
		}
		var buf [respSize]byte
		got, mu, delta, err := readResponse(bytes.NewReader(raw), &buf)
		if err != nil || got != status || mu != 1.25 || delta != -0.5 {
			t.Fatalf("round trip: status=%d mu=%v delta=%v err=%v", got, mu, delta, err)
		}
	}
}

// TestHelloRoundTrip pins the tenant frame, including truncation at
// maxTenantLen.
func TestHelloRoundTrip(t *testing.T) {
	long := string(bytes.Repeat([]byte{'x'}, maxTenantLen+10))
	for _, tenant := range []string{"", "flows-a", long} {
		raw := appendHello(nil, tenant)
		dec := newRequestReader(bytes.NewReader(raw))
		fr, err := dec.next()
		if err != nil || fr.kind != frameHello {
			t.Fatalf("decode hello: kind=%v err=%v", fr.kind, err)
		}
		want := tenant
		if len(want) > maxTenantLen {
			want = want[:maxTenantLen]
		}
		if fr.tenant != want {
			t.Fatalf("tenant %q != %q", fr.tenant, want)
		}
	}
}
