// Package exp is the experiment harness: it maps every table and figure of
// the paper's evaluation (§5) to a runnable experiment over the emulator,
// with typed result rows. Each experiment accepts an options struct whose
// zero value reproduces a scaled-down but shape-faithful version of the
// paper's setup (this repository runs on a single CPU, whereas the paper
// used a testbed; see DESIGN.md); crank the fields up for full scale.
package exp

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/astraea"
	"repro/internal/cc/aurora"
	"repro/internal/cc/bbr"
	"repro/internal/cc/copa"
	"repro/internal/cc/cubic"
	"repro/internal/cc/orca"
	"repro/internal/cc/remy"
	"repro/internal/cc/reno"
	"repro/internal/cc/vegas"
	"repro/internal/cc/vivace"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/simcheck"
	"repro/internal/telemetry"
	"repro/internal/traces"
)

// Telemetry, when set to a live hub by a binary's -telemetry/-trace-out/
// -debug-addr flags, instruments every Run: run lifecycle counters and
// spans, plus a SimObserver attached to each scenario's network. A nil hub
// (the default) keeps the harness on its uninstrumented fast path — Run
// does one nil check and nothing else.
var Telemetry *telemetry.Hub

// DefaultShards is the shard count scenarios with Shards == 0 run at. The
// binaries' -shards flag sets it; 1 (the default) is plain sequential
// execution, so existing goldens and scripts are untouched unless a caller
// opts in.
var DefaultShards = 1

// ForceCheck attaches a simcheck invariant checker to every scenario Run
// executes, regardless of Scenario.Check. It is initialized from the
// JURY_SIMCHECK environment variable so production figure runs can be
// audited without code changes (see EXPERIMENTS.md), and the experiment
// package's own tests turn it on in TestMain so the whole short suite runs
// under the invariant checker.
var ForceCheck = os.Getenv("JURY_SIMCHECK") != ""

// Schemes lists every congestion-control scheme the harness can run.
var Schemes = []string{
	"jury", "astraea", "orca", "aurora", "vivace",
	"bbr", "cubic", "vegas", "reno", "copa", "remy",
}

// Fig6Schemes is the baseline set of the fairness comparison (Fig. 6).
var Fig6Schemes = []string{"jury", "astraea", "orca", "aurora", "vivace", "bbr", "cubic", "vegas"}

// NewScheme constructs a controller by name. Each flow gets its own seed so
// stochastic components (exploration, probing order) are independent.
func NewScheme(name string, seed uint64) (cc.Algorithm, error) {
	switch name {
	case "jury":
		return core.NewDefault(seed), nil
	case "astraea":
		cfg := astraea.DefaultConfig()
		cfg.Seed = seed
		return astraea.New(cfg, nil), nil
	case "orca":
		cfg := orca.DefaultConfig()
		cfg.Seed = seed
		return orca.New(cfg, nil), nil
	case "aurora":
		cfg := aurora.DefaultConfig()
		cfg.Seed = seed
		return aurora.New(cfg, nil), nil
	case "vivace":
		return vivace.New(seed), nil
	case "bbr":
		return bbr.New(), nil
	case "cubic":
		return cubic.New(), nil
	case "vegas":
		return vegas.New(), nil
	case "reno":
		return reno.New(), nil
	case "copa":
		return copa.New(), nil
	case "remy":
		return remy.New(nil), nil
	default:
		return nil, fmt.Errorf("exp: unknown scheme %q", name)
	}
}

// FlowSpec describes one flow of a scenario.
type FlowSpec struct {
	Scheme      string
	Start       time.Duration
	Duration    time.Duration // 0 = until horizon
	ExtraOneWay time.Duration
	// CC, if non-nil, overrides Scheme with a custom controller factory
	// (Scheme then only labels the flow). Tests use it to inject adversarial
	// controllers into scenarios.
	CC func(seed uint64) cc.Algorithm
}

// Scenario is a single-bottleneck dumbbell setup.
type Scenario struct {
	Name        string
	Rate        float64      // bits/second (ignored if Trace set)
	Trace       traces.Trace // optional time-varying capacity
	OneWayDelay time.Duration
	BufferBytes int
	LossRate    float64
	PacketSize  int // 0 = default MSS; raise for ≥1 Gbps runs
	// Faults attaches deterministic fault processes (burst loss, reordering,
	// duplication, jitter spikes, blackouts) to the bottleneck link. See
	// internal/faults and the robustness experiments.
	Faults  *faults.Config
	Flows   []FlowSpec
	Horizon time.Duration
	Seed    uint64
	// Check attaches a simcheck invariant checker to the run; Run fails if
	// any invariant is violated. Overridden to true globally by ForceCheck.
	Check bool
	// Shards caps the shard count for space-parallel execution (see
	// netsim.Network.RunSharded). 0 means DefaultShards; 1 runs sequentially.
	// A single-bottleneck dumbbell always partitions into one shard, so the
	// setting only changes execution — never results — for the scenarios this
	// struct describes; multi-bottleneck topologies (RunMultiBottleneck,
	// RunHuge) are where extra shards buy wall-clock time.
	Shards int
}

// BufferBDP returns the byte size of n bandwidth-delay products for the
// scenario's rate and round-trip time.
func (s Scenario) BufferBDP(n float64) int {
	return int(n * s.Rate / 8 * (2 * s.OneWayDelay).Seconds())
}

// FlowSummary is the serializable read-only view of one flow of a run:
// everything the figure and table consumers read, detached from the live
// simulator objects so a result loaded from the run store (internal/
// runstore) is indistinguishable from a fresh one. It satisfies
// metrics.FlowSeries.
type FlowSummary struct {
	name        string
	baseRTT     time.Duration
	stats       netsim.FlowStats
	series      []netsim.SeriesPoint
	degraded    int64
	nonFinite   int64
	lateMeanBps float64
}

// Name returns the flow's label.
func (f *FlowSummary) Name() string { return f.name }

// BaseRTT returns the flow's propagation round-trip floor.
func (f *FlowSummary) BaseRTT() time.Duration { return f.baseRTT }

// Stats returns the flow's lifetime counters.
func (f *FlowSummary) Stats() netsim.FlowStats { return f.stats }

// Series returns the recorded per-interval samples.
func (f *FlowSummary) Series() []netsim.SeriesPoint { return f.series }

// JuryCounters returns the Jury decision-guard counters (degraded
// AIMD-fallback decisions, non-finite actions that reached Eq. 7); both are
// zero for non-Jury schemes.
func (f *FlowSummary) JuryCounters() (degraded, nonFinite int64) {
	return f.degraded, f.nonFinite
}

// LateMeanBps returns the flow's mean throughput over the late window
// [Horizon/3, Horizon], precomputed by summarize so fairness shares survive
// a compact record whose Series was dropped (see StoreCompact).
func (f *FlowSummary) LateMeanBps() float64 { return f.lateMeanBps }

// LinkSummary carries the bottleneck-link counters a stored run preserves.
type LinkSummary struct {
	FaultDrops int64
	Reordered  int64
	Duplicated int64
}

// RunResult holds everything the figure runners need from one simulation.
// FlowSummaries and LinkSummary are always populated; Flows and Link are
// the live simulator objects and are nil when the result was served from
// the run store (Cached) rather than simulated.
type RunResult struct {
	Scenario    Scenario
	Flows       []*netsim.Flow
	Link        *netsim.Link
	Utilization float64
	// FlowSummaries is the detached per-flow view (stats, series, Jury
	// counters) that every figure/table consumer reads.
	FlowSummaries []*FlowSummary
	LinkSummary   LinkSummary
	// Digest fingerprints the run (event stream + final statistics) when
	// the invariant checker was attached; zero otherwise.
	Digest uint64
	// Checked reports whether the run executed under the invariant checker.
	Checked bool
	// Cached reports that the result was loaded from the run store instead
	// of simulated.
	Cached bool
	// Stream is the streaming-observability summary; nil unless the run
	// executed with the Obs runtime attached (or was restored from a record
	// that carried one).
	Stream *obs.StreamSummary
}

// summarize detaches the result's flow and link state into FlowSummaries /
// LinkSummary once the simulation is over.
func (r *RunResult) summarize() {
	r.FlowSummaries = make([]*FlowSummary, 0, len(r.Flows))
	for _, f := range r.Flows {
		fs := &FlowSummary{
			name:    f.Name(),
			baseRTT: f.BaseRTT(),
			stats:   f.Stats(),
			series:  f.Series(),
		}
		fs.lateMeanBps = metrics.MeanThroughput(fs, r.Scenario.Horizon/3, r.Scenario.Horizon)
		if j, ok := f.CC().(*core.Jury); ok {
			fs.degraded = j.DegradedDecisions()
			fs.nonFinite = j.NonFiniteActions()
		}
		r.FlowSummaries = append(r.FlowSummaries, fs)
	}
	if r.Link != nil {
		st := r.Link.FaultStats()
		r.LinkSummary = LinkSummary{
			FaultDrops: st.Drops(),
			Reordered:  st.Reordered,
			Duplicated: st.Duplicated,
		}
	}
}

// Run executes a scenario. When a run store is attached (see AttachStore),
// the completed result is appended to it; in resume mode a scenario whose
// content key is already stored is served from the store without touching
// the simulator.
func Run(s Scenario) (*RunResult, error) {
	if s.Horizon <= 0 {
		return nil, fmt.Errorf("exp: scenario %q without horizon", s.Name)
	}
	st := Store
	key, cacheable := runstore.Key{}, false
	if st != nil {
		key, cacheable = ScenarioKey(s)
		if cacheable && StoreResume {
			if rec, ok := st.Get(key); ok {
				storeCounter("runstore_hits_total", "sweep runs served from the run store").Inc()
				return resultFromRecord(s, rec), nil
			}
			storeCounter("runstore_misses_total", "sweep runs not found in the run store").Inc()
		}
	}
	liveRuns.Add(1)
	n := netsim.New(netsim.Config{Seed: s.Seed})
	link := n.AddLink(netsim.LinkConfig{
		Rate:        s.Rate,
		Trace:       s.Trace,
		Delay:       s.OneWayDelay,
		BufferBytes: s.BufferBytes,
		LossRate:    s.LossRate,
		Faults:      s.Faults,
	})
	for i, fs := range s.Flows {
		fs := fs
		seed := s.Seed*1000 + uint64(i) + 1
		var alg cc.Algorithm
		if fs.CC != nil {
			alg = fs.CC(seed)
		} else {
			var err error
			alg, err = NewScheme(fs.Scheme, seed)
			if err != nil {
				return nil, err
			}
		}
		n.AddFlow(netsim.FlowConfig{
			Name:        fmt.Sprintf("%s-%d", fs.Scheme, i),
			Path:        []*netsim.Link{link},
			Start:       fs.Start,
			Duration:    fs.Duration,
			ExtraOneWay: fs.ExtraOneWay,
			PacketSize:  s.PacketSize,
			CC:          func() cc.Algorithm { return alg },
		})
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	var ck *simcheck.Checker
	if s.Check || ForceCheck {
		ck = simcheck.Attach(n)
	}
	hub := Telemetry
	var span telemetry.Span
	var runSeconds *telemetry.Histogram
	var started time.Time
	if hub.Enabled() {
		// The checker's tap and engine hook are installed first; AttachSim
		// chains them, so checking and telemetry compose.
		telemetry.AttachSim(n, hub)
		hub.Registry.Counter("exp_runs_started_total", "scenario runs started").Inc()
		runSeconds = hub.Registry.Histogram("exp_run_seconds", "wall time of one scenario run", telemetry.ExpBuckets(1e-3, 2, 18))
		span = hub.StartSpan("run:"+s.Name, 0)
		hub.Event("exp", "run_start", 0,
			telemetry.Str("scenario", s.Name),
			telemetry.I64("flows", int64(len(s.Flows))),
			telemetry.I64("seed", int64(s.Seed)))
		started = time.Now()
	}
	shards := s.Shards
	if shards == 0 {
		shards = DefaultShards
	}
	var ob *obs.Observer
	if Obs != nil {
		// The observatory chains behind checker and telemetry taps and claims
		// the network's window hook. The violation hook and the panic dump
		// are wired here so obs never imports simcheck or the harness.
		ob = Obs.Attach(n, shards)
		if ck != nil {
			ck.SetViolationHook(func(v simcheck.Violation) { ob.NoteViolation(v.Time, v.Rule) })
		}
		defer func() {
			if r := recover(); r != nil {
				ob.DumpFlight("panic")
				panic(r)
			}
		}()
	}
	if shards > 1 {
		sr, err := n.RunSharded(s.Horizon, shards)
		if err != nil {
			return nil, fmt.Errorf("exp: scenario %q: %w", s.Name, err)
		}
		telemetry.RecordShards(hub, sr.Executed)
		telemetry.RecordCoordinator(hub, sr.BarrierRounds, sr.FusedWindows)
	} else {
		n.Run(s.Horizon)
	}
	res := &RunResult{
		Scenario:    s,
		Flows:       n.Flows(),
		Link:        link,
		Utilization: link.Utilization(s.Horizon),
	}
	res.Stream = ob.Finish(s.Horizon)
	if ck != nil {
		ck.Finish()
		if err := ck.Err(); err != nil {
			if hub.Enabled() {
				hub.Registry.Counter("exp_runs_failed_total", "scenario runs that returned an error").Inc()
				span.End(s.Horizon, telemetry.Str("outcome", "invariant_violation"))
			}
			return nil, fmt.Errorf("exp: scenario %q: %w", s.Name, err)
		}
		res.Digest = ck.Digest()
		res.Checked = true
	}
	res.summarize()
	if st != nil && cacheable {
		if err := st.Put(recordFromResult(key, s, res)); err != nil {
			return nil, fmt.Errorf("exp: scenario %q: %w", s.Name, err)
		}
		storeCounter("runstore_appends_total", "run records appended to the run store").Inc()
	}
	if hub.Enabled() {
		runSeconds.Observe(time.Since(started).Seconds())
		hub.Registry.Counter("exp_runs_finished_total", "scenario runs finished successfully").Inc()
		span.End(s.Horizon, telemetry.Str("outcome", "ok"))
		hub.Event("exp", "run_finish", s.Horizon,
			telemetry.Str("scenario", s.Name),
			telemetry.F64("utilization", res.Utilization),
			telemetry.Str("digest", fmt.Sprintf("%016x", res.Digest)))
	}
	return res, nil
}
