package core

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/cc"
	"repro/internal/simcore"
)

// Jury is the full controller: signal transformation → policy decision
// range → occupancy post-processing → multiplicative cwnd/pacing update.
// It implements cc.IntervalAlgorithm and can run against any policy — a
// trained actor (NNPolicy), the deterministic ReferencePolicy, or a
// training harness (capturedPolicy via NewTrainable).
type Jury struct {
	cfg    Config
	policy Policy
	rng    *simcore.RNG

	transformer *Transformer
	occ         *OccupancyEstimator

	cwnd   float64
	pacing float64
	mss    float64

	minRTT      time.Duration
	lossMin     float64
	haveLossMin bool
	lastGrowAt  time.Duration

	// Introspection for training, experiments, and tests. lastState is a
	// buffer reused across intervals: it always holds the *most recent*
	// policy input, and holders of an older return value from LastState
	// observe the refreshed contents, not a snapshot.
	lastSignals Signals
	lastState   []float64
	lastMu      float64
	lastDelta   float64
	lastAction  float64
	lastReward  float64
	lastOcc     float64
	intervals   atomic.Int64

	// Non-finite guard counters (see decide and applyAction): a congestion
	// controller facing an adversarial network must never let NaN/Inf drive
	// the window, it degrades to plain AIMD instead — the same shape as the
	// agentrpc client falling back to a local policy on transport failure.
	// These three are atomics so the telemetry debug endpoint can export
	// them from another goroutine while the simulation runs.
	degradedDecisions atomic.Int64
	nonfiniteActions  atomic.Int64

	// Decision-range trace (EnableRangeTrace): one point per control
	// interval in which the policy was consulted. The metamorphic tests in
	// internal/simcheck compare these trajectories across environments —
	// bandwidth-agnostic signals must make them invariant under bandwidth
	// scaling (§4, Eq. 5–7).
	rangeTrace    []RangePoint
	rangeTraceCap int
}

// RangePoint is one recorded policy decision: the interval it was taken in,
// the decision range (μ, δ), the flow's occupancy estimate, and the
// post-processed action that was applied.
type RangePoint struct {
	Interval  int64
	Mu        float64
	Delta     float64
	Occupancy float64
	Action    float64
}

// New returns a Jury controller with the given configuration and policy.
// It panics on an invalid config (a programming error, not runtime input).
func New(cfg Config, policy Policy) *Jury {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if policy == nil {
		policy = NewReferencePolicy()
	}
	// Zero means "default" so hand-rolled Configs predating these fields
	// keep working.
	if cfg.MaxCwnd == 0 {
		cfg.MaxCwnd = 1 << 17
	}
	if cfg.CollapseLoss == 0 {
		cfg.CollapseLoss = 0.1
	}
	return &Jury{
		cfg:         cfg,
		policy:      policy,
		rng:         simcore.NewRNG(cfg.Seed ^ 0xa5a5a5a5),
		transformer: NewTransformer(cfg),
		occ:         NewOccupancyEstimator(cfg),
		cwnd:        10,
		mss:         1500,
	}
}

// NewDefault returns a Jury controller with Table 2 hyperparameters and the
// reference policy, seeded for the given flow.
func NewDefault(seed uint64) *Jury {
	cfg := DefaultConfig()
	cfg.Seed = seed
	return New(cfg, NewReferencePolicy())
}

// Name implements cc.Algorithm.
func (j *Jury) Name() string { return "jury" }

// Init implements cc.Algorithm.
func (j *Jury) Init(time.Duration) {}

// OnAck implements cc.Algorithm (Jury is interval-driven; per-ACK state is
// aggregated by the sender).
func (j *Jury) OnAck(a cc.Ack) {
	if a.Bytes > 0 {
		j.mss = float64(a.Bytes)
	}
}

// OnLoss implements cc.Algorithm (losses enter via interval statistics).
func (j *Jury) OnLoss(cc.Loss) {}

// ControlInterval implements cc.IntervalAlgorithm.
func (j *Jury) ControlInterval() time.Duration { return j.cfg.Interval }

// OnInterval implements cc.IntervalAlgorithm: one full pass of the Fig. 2
// pipeline.
func (j *Jury) OnInterval(s cc.IntervalStats) {
	j.intervals.Add(1)
	if s.FlowMinRTT > 0 {
		j.minRTT = s.FlowMinRTT
	}
	loss := s.LossRate()
	if s.AckedPackets+s.LostPackets > 0 {
		if !j.haveLossMin || loss < j.lossMin {
			j.lossMin = loss
			j.haveLossMin = true
		}
	}

	sig := j.transformer.Update(s)
	j.lastSignals = sig
	j.lastOcc = j.occ.Update(sig)

	switch {
	case s.AckedPackets == 0 && s.LostPackets > 0:
		// Blackout under loss: everything sent in the interval died. Back
		// off maximally rather than consulting a model with no signal.
		j.applyAction(-1)
	case s.AckedPackets < j.cfg.MinIntervalPackets && s.LostPackets > 0:
		// Too few samples to trust the model, and losses present: retreat.
		j.applyAction(-1)
	case loss >= j.cfg.CollapseLoss:
		// Congestion collapse: the window is far beyond what the path
		// delivers. The policy cannot react — at a saturated buffer the
		// RTT difference is flat and the loss-ratio signal only carries
		// changes, so a steady severe loss level is invisible to it —
		// which otherwise lets Eq. 7 ratchet the window upward while
		// every surplus packet is dropped, starving competing flows.
		j.applyAction(-1)
	case s.AckedPackets < j.cfg.MinIntervalPackets:
		// Statistics-significance rule (§3.4): too few samples for a
		// reliable decision — keep maximally increasing the sending rate.
		// This doubles as the slow-start phase and lets short flows skip
		// model inference entirely.
		j.slowStartStep(s)
	default:
		j.decide(s)
	}

	j.updatePacing(s)
	j.lastReward = Reward(j.cfg, j.lastOcc, s.AvgRTT, j.minRTT, loss, j.lossMin)
}

// decide is the model path of the Fig. 2 pipeline, hardened at the decision
// boundary: non-finite signals or occupancy never reach the policy,
// non-finite or out-of-range policy output never reaches Eq. 7. Both cases
// degrade to the AIMD fallback and bump DegradedDecisions.
func (j *Jury) decide(s cc.IntervalStats) {
	state := j.transformer.StateInto(j.lastState)
	j.lastState = state
	if !finiteFloats(state) || !isFinite(j.lastOcc) {
		j.degradedDecisions.Add(1)
		j.applyAction(j.aimdFallback(s))
		return
	}
	mu, delta := j.policy.Decide(state)
	if !isFinite(mu) || !isFinite(delta) {
		j.degradedDecisions.Add(1)
		j.applyAction(j.aimdFallback(s))
		return
	}
	mu = cc.Clamp(mu, -1, 1)
	delta = cc.Clamp(delta, 0, 1)
	j.lastMu, j.lastDelta = mu, delta
	a := PostProcess(mu, delta, j.lastOcc)
	a = j.exploreAction(a)
	j.applyAction(a)
	if j.rangeTraceCap != 0 && len(j.rangeTrace) < j.rangeTraceCap {
		j.rangeTrace = append(j.rangeTrace, RangePoint{
			Interval:  j.intervals.Load(),
			Mu:        mu,
			Delta:     delta,
			Occupancy: j.lastOcc,
			Action:    a,
		})
	}
}

// aimdFallback is the degraded decision: multiplicative retreat when the
// interval saw losses, otherwise a full additive-style probe — plain AIMD,
// safe in any network and independent of every transformed signal.
func (j *Jury) aimdFallback(s cc.IntervalStats) float64 {
	if s.LostPackets > 0 {
		return -1
	}
	return 1
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func finiteFloats(vs []float64) bool {
	for _, v := range vs {
		if !isFinite(v) {
			return false
		}
	}
	return true
}

// PostProcess implements Eq. 6: pick the action inside the decision range
// according to the flow's bandwidth occupancy, clamped to [−1, 1].
func PostProcess(mu, delta, ratioBW float64) float64 {
	return cc.Clamp(mu+(1-2*ratioBW)*delta, -1, 1)
}

// exploreAction implements the §3.4 exploration rule: near-zero actions are
// replaced, with probability ExploreProb, by ±1 with equal probability so
// the action-feedback signals keep carrying information while the
// expectation stays unchanged.
func (j *Jury) exploreAction(a float64) float64 {
	if a > j.cfg.ExploreLow && a < j.cfg.ExploreHigh && j.rng.Bernoulli(j.cfg.ExploreProb) {
		if j.rng.Bernoulli(0.5) {
			return 1
		}
		return -1
	}
	return a
}

// applyAction implements Eq. 7, the multiplicative window update. The
// non-finite check is the last line of defense (decide() should have caught
// everything upstream, so NonFiniteActions staying zero is the proof that
// the decision-boundary guard is airtight).
func (j *Jury) applyAction(a float64) {
	if !isFinite(a) {
		j.nonfiniteActions.Add(1)
		a = -1 // fail toward retreat: never grow the window on garbage
	}
	j.lastAction = a
	if a >= 0 {
		j.cwnd *= 1 + j.cfg.Alpha*a
	} else {
		j.cwnd /= 1 - j.cfg.Alpha*a
	}
	if j.cwnd < j.cfg.MinCwnd {
		j.cwnd = j.cfg.MinCwnd
	}
	if j.cwnd > j.cfg.MaxCwnd {
		j.cwnd = j.cfg.MaxCwnd
	}
	if !isFinite(j.cwnd) {
		// NaN survives both clamps (every comparison is false); a corrupted
		// window restarts from the floor rather than poisoning the flow.
		j.nonfiniteActions.Add(1)
		j.cwnd = j.cfg.MinCwnd
	}
}

// slowStartStep doubles the window while the flow is too small to produce
// significant statistics — at most once per round trip, like TCP slow
// start: feedback lags by an RTT, so doubling any faster overshoots
// blindly.
func (j *Jury) slowStartStep(s cc.IntervalStats) {
	period := j.cfg.Interval
	if j.minRTT > period {
		period = j.minRTT
	}
	if s.Now-j.lastGrowAt < period {
		return
	}
	j.lastGrowAt = s.Now
	j.lastAction = 1
	j.cwnd *= 2
	if j.cwnd > j.cfg.MaxCwnd {
		j.cwnd = j.cfg.MaxCwnd
	}
}

// updatePacing implements Eq. 8: x = cwnd / RTT, using the mean RTT of the
// last interval (falling back to the flow minimum before feedback exists).
func (j *Jury) updatePacing(s cc.IntervalStats) {
	rtt := s.AvgRTT
	if rtt == 0 {
		rtt = j.minRTT
	}
	if rtt == 0 {
		return // no RTT sample yet: stay cwnd-limited and unpaced
	}
	j.pacing = j.cwnd * j.mss * 8 / rtt.Seconds()
}

// CWND implements cc.Algorithm.
func (j *Jury) CWND() float64 { return j.cwnd }

// PacingRate implements cc.Algorithm.
func (j *Jury) PacingRate() float64 { return j.pacing }

// Introspection accessors (used by training, experiments, and tests).

// LastState returns the most recent policy input (nil before ready). The
// slice is reused across intervals; copy it to keep a snapshot.
func (j *Jury) LastState() []float64 { return j.lastState }

// LastRange returns the most recent decision range (μ, δ).
func (j *Jury) LastRange() (float64, float64) { return j.lastMu, j.lastDelta }

// LastAction returns the most recent post-processed action.
func (j *Jury) LastAction() float64 { return j.lastAction }

// LastReward returns the most recent Eq. 9 reward.
func (j *Jury) LastReward() float64 { return j.lastReward }

// Occupancy returns the current filtered bandwidth-occupancy estimate.
func (j *Jury) Occupancy() float64 { return j.lastOcc }

// Signals returns the most recent transformed signals.
func (j *Jury) Signals() Signals { return j.lastSignals }

// Intervals returns how many control intervals have elapsed.
func (j *Jury) Intervals() int64 { return j.intervals.Load() }

// DegradedDecisions returns how many control intervals fell back to the
// AIMD action because non-finite signals or policy output reached the
// decision boundary. Safe to call from any goroutine (the telemetry layer
// exports it live).
func (j *Jury) DegradedDecisions() int64 { return j.degradedDecisions.Load() }

// NonFiniteActions returns how many non-finite actions (or windows) slipped
// past the decision-boundary guard into Eq. 7. It must stay zero; the
// robustness experiments assert it. Safe to call from any goroutine.
func (j *Jury) NonFiniteActions() int64 { return j.nonfiniteActions.Load() }

// EnableRangeTrace starts recording one RangePoint per policy decision, up
// to max points (memory bound: a 60 s run at the default 30 ms interval
// records ≤2000 points per flow). Call before the flow starts.
func (j *Jury) EnableRangeTrace(max int) {
	if max <= 0 {
		max = 1 << 16
	}
	j.rangeTraceCap = max
	j.rangeTrace = make([]RangePoint, 0, min(max, 4096))
}

// RangeTrace returns the recorded decision-range trajectory (nil unless
// EnableRangeTrace was called).
func (j *Jury) RangeTrace() []RangePoint { return j.rangeTrace }
