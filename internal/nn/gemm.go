// Batched dense kernels: the minibatch-as-matrix layer the TD3 update is
// built on. A minibatch of B states is one B×in row-major matrix, a Dense
// layer is one (B×in)·(in×out) product plus a bias row-add and an
// elementwise activation — B separate vector passes collapse into a handful
// of kernels whose inner loops are independent multiply-adds (no serial
// dot-product dependency chain) walking rows sequentially.
//
// Layout convention: every matrix is a flat row-major []float64; a "B×n"
// buffer holds row r at [r*n : (r+1)*n]. Weights keep the Dense layout
// (Out rows of In columns), so the forward product is MatMulT against W and
// the backward input-gradient product is MatMul against W — neither ever
// materializes a transpose.
//
// The kernels are cache-blocked along the k (reduction) dimension: one
// block of the B matrix row is reused across all m rows of A while it is
// hot, which keeps the working set inside L1 even for wide layers. For the
// layer sizes the training stack uses (≤ a few hundred columns) a single
// block suffices and the blocking collapses to the plain loop.
package nn

import "math"

// gemmBlockK is the reduction-dimension block size. 256 float64 columns are
// 2 KiB per row — several rows of both operands fit in L1 alongside the
// accumulator row.
const gemmBlockK = 256

// MatMul computes dst[m×n] = a[m×k] · b[k×n], overwriting dst. All slices
// are flat row-major; dst must not alias a or b.
func MatMul(dst, a, b []float64, m, k, n int) {
	for k0 := 0; k0 < k; k0 += gemmBlockK {
		k1 := k0 + gemmBlockK
		if k1 > k {
			k1 = k
		}
		// Row pairs share each streamed b-row. Every output element keeps
		// its own accumulator updated in p order, so the pairing is
		// bit-identical to the single-row loop.
		i := 0
		for ; i+2 <= m; i += 2 {
			d0 := dst[i*n : (i+1)*n]
			d1 := dst[(i+1)*n : (i+2)*n]
			if k0 == 0 {
				clearSlice(d0)
				clearSlice(d1)
			}
			a0 := a[i*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			for p := k0; p < k1; p++ {
				axpy2(a0[p], a1[p], b[p*n:(p+1)*n], d0, d1)
			}
		}
		for ; i < m; i++ {
			drow := dst[i*n : (i+1)*n]
			if k0 == 0 {
				clearSlice(drow)
			}
			arow := a[i*k : (i+1)*k]
			for p := k0; p < k1; p++ {
				axpy(arow[p], b[p*n:(p+1)*n], drow)
			}
		}
	}
}

// MatMulT computes dst[m×n] = a[m×k] · b[n×k]ᵀ, overwriting dst: b holds
// the right operand already transposed (n rows of k columns — the Dense
// weight layout). dst must not alias a or b.
//
// The kernel walks four b-rows (four output columns) per pass: the a-row is
// streamed once per pass and the four accumulator chains are independent,
// so the loop is latency-bound on neither loads nor adds.
func MatMulT(dst, a, b []float64, m, k, n int) {
	// 2×4 register blocking: a pair of a-rows shares each loaded b-column
	// block, so the inner loop retires 8 independent multiply-adds per 6
	// loads instead of 8 per 10, and every output keeps its own serial
	// accumulator (results are bit-identical to the single-row path).
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a[i*k : (i+1)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k : (i+2)*k]
		d0 := dst[i*n : (i+1)*n : (i+1)*n]
		d1 := dst[(i+1)*n : (i+2)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k : (j+4)*k]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for p, av0 := range a0 {
				av1 := a1[p]
				bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			bcol := b[j*k : (j+1)*k]
			d0[j] = dot(a0, bcol)
			d1[j] = dot(a1, bcol)
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : (i+1)*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k : (j+4)*k]
			var s0, s1, s2, s3 float64
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			drow[j] = s0
			drow[j+1] = s1
			drow[j+2] = s2
			drow[j+3] = s3
		}
		for ; j < n; j++ {
			drow[j] = dot(arow, b[j*k:(j+1)*k])
		}
	}
}

// MatMulTAcc computes dst[k×n] += a[m×k]ᵀ · b[m×n], accumulating into dst
// (the weight-gradient product: dW += deltaᵀ·input with a, b swapped into
// this shape). dst must not alias a or b.
func MatMulTAcc(dst, a, b []float64, m, k, n int) {
	matMulTAccRows(dst, a, b, 0, m, k, n)
}

// matMulTAccRows accumulates rows [r0, m) of the MatMulTAcc product.
// Sample-row pairs share each dst row's load/store pass; a is a ReLU-masked delta
// in the backward pass, so the per-scale zero-skips in axpy/axpy21 matter.
func matMulTAccRows(dst, a, b []float64, r0, m, k, n int) {
	r := r0
	for ; r+2 <= m; r += 2 {
		a0 := a[r*k : (r+1)*k]
		a1 := a[(r+1)*k : (r+2)*k]
		b0 := b[r*n : (r+1)*n]
		b1 := b[(r+1)*n : (r+2)*n]
		for i := 0; i < k; i++ {
			axpy21(a0[i], b0, a1[i], b1, dst[i*n:(i+1)*n])
		}
	}
	for ; r < m; r++ {
		arow := a[r*k : (r+1)*k]
		brow := b[r*n : (r+1)*n]
		for i := 0; i < k; i++ {
			axpy(arow[i], brow, dst[i*n:(i+1)*n])
		}
	}
}

// MatMulTSet computes dst[k×n] = a[m×k]ᵀ · b[m×n], overwriting dst. It is
// MatMulTAcc without the pre-zeroing a caller would otherwise need — the
// first row assigns, the rest accumulate — so single-shot weight-gradient
// products skip a Grads.Zero pass.
func MatMulTSet(dst, a, b []float64, m, k, n int) {
	if m == 0 {
		clearSlice(dst[:k*n])
		return
	}
	arow := a[:k]
	brow := b[:n]
	for i := 0; i < k; i++ {
		axpySet(arow[i], brow, dst[i*n:(i+1)*n])
	}
	matMulTAccRows(dst, a, b, 1, m, k, n)
}

// AddBiasRows adds bias (length n) to every row of dst[rows×n].
func AddBiasRows(dst, bias []float64, rows, n int) {
	for r := 0; r < rows; r++ {
		drow := dst[r*n : (r+1)*n]
		for j, bj := range bias {
			drow[j] += bj
		}
	}
}

// ColSumAcc accumulates the column sums of a[rows×n] into dst (length n) —
// the bias-gradient kernel.
func ColSumAcc(dst, a []float64, rows, n int) {
	for r := 0; r < rows; r++ {
		arow := a[r*n : (r+1)*n]
		for j, v := range arow {
			dst[j] += v
		}
	}
}

// ColSumSet overwrites dst (length n) with the column sums of a[rows×n].
func ColSumSet(dst, a []float64, rows, n int) {
	if rows == 0 {
		clearSlice(dst[:n])
		return
	}
	copy(dst[:n], a[:n])
	for r := 1; r < rows; r++ {
		arow := a[r*n : (r+1)*n]
		for j, v := range arow {
			dst[j] += v
		}
	}
}

// axpy computes dst += s * x elementwise. The iterations are independent,
// so the loop retires ~1 FMA per cycle instead of serializing on one
// accumulator the way a dot product does; the 4-way unroll keeps bounds
// checks out of the hot path.
func axpy(s float64, x, dst []float64) {
	if s == 0 {
		return
	}
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		xv := x[i : i+4 : i+4]
		d[0] += s * xv[0]
		d[1] += s * xv[1]
		d[2] += s * xv[2]
		d[3] += s * xv[3]
	}
	for ; i < n; i++ {
		dst[i] += s * x[i]
	}
}

// axpy2 computes d0 += s0 * x and d1 += s1 * x, streaming x once for both
// destinations. Falls back to axpy (with its zero-skip) when either scale
// is zero — ReLU-masked deltas make that common.
func axpy2(s0, s1 float64, x, d0, d1 []float64) {
	if s0 == 0 {
		axpy(s1, x, d1)
		return
	}
	if s1 == 0 {
		axpy(s0, x, d0)
		return
	}
	n := len(d0)
	i := 0
	for ; i+4 <= n; i += 4 {
		xv := x[i : i+4 : i+4]
		e0 := d0[i : i+4 : i+4]
		e1 := d1[i : i+4 : i+4]
		e0[0] += s0 * xv[0]
		e1[0] += s1 * xv[0]
		e0[1] += s0 * xv[1]
		e1[1] += s1 * xv[1]
		e0[2] += s0 * xv[2]
		e1[2] += s1 * xv[2]
		e0[3] += s0 * xv[3]
		e1[3] += s1 * xv[3]
	}
	for ; i < n; i++ {
		d0[i] += s0 * x[i]
		d1[i] += s1 * x[i]
	}
}

// axpy21 computes dst += s0 * x0 + s1 * x1, streaming dst once for both
// sources (the transposed-product dual of axpy2). The two contributions
// fold in a fixed order, so results depend only on the row pairing, not on
// which worker ran it.
func axpy21(s0 float64, x0 []float64, s1 float64, x1, dst []float64) {
	if s0 == 0 {
		axpy(s1, x1, dst)
		return
	}
	if s1 == 0 {
		axpy(s0, x0, dst)
		return
	}
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		u := x0[i : i+4 : i+4]
		v := x1[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] += s0*u[0] + s1*v[0]
		d[1] += s0*u[1] + s1*v[1]
		d[2] += s0*u[2] + s1*v[2]
		d[3] += s0*u[3] + s1*v[3]
	}
	for ; i < n; i++ {
		dst[i] += s0*x0[i] + s1*x1[i]
	}
}

// axpySet computes dst = s * x elementwise (no early-out on s == 0: the
// overwrite must happen even for a zero scale).
func axpySet(s float64, x, dst []float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		xv := x[i : i+4 : i+4]
		d[0] = s * xv[0]
		d[1] = s * xv[1]
		d[2] = s * xv[2]
		d[3] = s * xv[3]
	}
	for ; i < n; i++ {
		dst[i] = s * x[i]
	}
}

// dot computes the inner product of a and b using four parallel
// accumulators, breaking the add-latency dependency chain of the naive
// loop. The final reduction order (0+2)+(1+3) is fixed, so results are
// deterministic (though not bit-identical to the serial scalar loop —
// callers comparing against ForwardInto use a small tolerance).
func dot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		av := a[i : i+4 : i+4]
		bv := b[i : i+4 : i+4]
		s0 += av[0] * bv[0]
		s1 += av[1] * bv[1]
		s2 += av[2] * bv[2]
		s3 += av[3] * bv[3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s2) + (s1 + s3)
}

// applyRows applies the activation elementwise over a flat rows×n matrix
// (every activation is elementwise, so the flat buffer is enough). ReLU
// clamps via a sign-bit mask: pre-activation signs are effectively random,
// so a compare-and-store loop would mispredict on half the elements.
func (a Activation) applyRows(m []float64) {
	if a != ReLU {
		a.apply(m)
		return
	}
	for i, x := range m {
		b := math.Float64bits(x)
		m[i] = math.Float64frombits(b &^ uint64(int64(b)>>63))
	}
}

// mulDerivRows multiplies delta elementwise by dact/dz computed from the
// activated outputs y (delta, y are flat rows×n matrices).
func (a Activation) mulDerivRows(delta, y []float64) {
	switch a {
	case Linear:
		return
	case ReLU:
		// y is a post-ReLU output, so y > 0 exactly when y's bits are
		// nonzero; build an all-ones mask from that predicate and clear
		// delta branchlessly (same misprediction argument as applyRows).
		for i, yi := range y {
			t := math.Float64bits(yi)
			mask := uint64(int64(t|-t) >> 63)
			delta[i] = math.Float64frombits(math.Float64bits(delta[i]) & mask)
		}
	case Tanh:
		for i, yi := range y {
			delta[i] *= 1 - yi*yi
		}
	case Sigmoid:
		for i, yi := range y {
			delta[i] *= yi * (1 - yi)
		}
	default:
		for i := range delta {
			delta[i] *= a.derivFromOutput(y[i])
		}
	}
}

// BatchScratch holds the ping-pong row-matrix buffers for ForwardBatchInto
// and BackwardBatchInto, sized for a fixed maximum batch (rows) and the
// widest layer of the MLP it was built for. Not safe for concurrent use;
// give each goroutine (or gradient shard) its own.
type BatchScratch struct {
	rows int
	a, b []float64
}

// NewBatchScratch allocates batch scratch for up to rows samples of m.
func NewBatchScratch(m *MLP, rows int) *BatchScratch {
	w := maxWidth(m)
	return &BatchScratch{rows: rows, a: make([]float64, rows*w), b: make([]float64, rows*w)}
}

// Rows reports the maximum batch size the scratch was built for.
func (s *BatchScratch) Rows() int { return s.rows }

func maxWidth(m *MLP) int {
	w := m.Layers[0].In
	for _, l := range m.Layers {
		if l.In > w {
			w = l.In
		}
		if l.Out > w {
			w = l.Out
		}
	}
	return w
}

// BatchTrace caches the per-layer activation matrices of one batched
// forward pass. acts[0] is the (copied) rows×in input; acts[i+1] is layer
// i's rows×out output.
type BatchTrace struct {
	rows int
	acts [][]float64
}

// NewBatchTrace allocates a reusable trace for batches of up to rows
// samples of m. ForwardBatchTraceInto may be called with fewer rows; the
// buffers are simply underfilled.
func NewBatchTrace(m *MLP, rows int) *BatchTrace {
	tr := &BatchTrace{rows: rows, acts: make([][]float64, len(m.Layers)+1)}
	tr.acts[0] = make([]float64, rows*m.Layers[0].In)
	for i, l := range m.Layers {
		tr.acts[i+1] = make([]float64, rows*l.Out)
	}
	return tr
}

// Rows reports the maximum batch size the trace was built for.
func (t *BatchTrace) Rows() int { return t.rows }

// Output returns the rows×out output matrix of the traced pass, valid for
// the row count of the last ForwardBatchTraceInto call.
func (t *BatchTrace) Output() []float64 { return t.acts[len(t.acts)-1] }

// Slice returns a view of rows [r0, r1) sharing t's storage: the gradient
// shards of a worker-split backward pass each backpropagate through their
// own contiguous row range of one full-batch trace. Views must be built
// with the layer widths of the MLP the trace was made for, so Slice derives
// them from the parent's buffers and t.rows.
func (t *BatchTrace) Slice(r0, r1 int) *BatchTrace {
	v := &BatchTrace{rows: r1 - r0, acts: make([][]float64, len(t.acts))}
	for i, act := range t.acts {
		w := len(act) / t.rows
		v.acts[i] = act[r0*w : r1*w]
	}
	return v
}

// ForwardBatchInto runs batched inference over the rows×in matrix x using
// s's buffers and returns the rows×out output matrix, which aliases the
// scratch and is valid until the next use of s. rows must not exceed the
// scratch capacity.
func (m *MLP) ForwardBatchInto(x []float64, rows int, s *BatchScratch) []float64 {
	cur := x
	useA := true
	for _, l := range m.Layers {
		next := s.b[:rows*l.Out]
		if useA {
			next = s.a[:rows*l.Out]
		}
		useA = !useA
		MatMulT(next, cur, l.W, rows, l.In, l.Out)
		AddBiasRows(next, l.B, rows, l.Out)
		l.Act.applyRows(next)
		cur = next
	}
	return cur
}

// ForwardBatchTraceInto runs batched inference over the rows×in matrix x,
// recording every layer's activation matrix into tr (the input is copied,
// so tr never aliases x). Returns tr.
func (m *MLP) ForwardBatchTraceInto(x []float64, rows int, tr *BatchTrace) *BatchTrace {
	in := m.Layers[0].In
	copy(tr.acts[0][:rows*in], x[:rows*in])
	cur := tr.acts[0][:rows*in]
	for li, l := range m.Layers {
		next := tr.acts[li+1][:rows*l.Out]
		MatMulT(next, cur, l.W, rows, l.In, l.Out)
		AddBiasRows(next, l.B, rows, l.Out)
		l.Act.applyRows(next)
		cur = next
	}
	return tr
}

// BackwardBatchInto accumulates parameter gradients into g for the traced
// batched pass over rows samples, given the rows×out matrix dOut =
// dLoss/dOutput, and returns the rows×in input-gradient matrix (aliasing
// the scratch, valid until the next use of s). The per-parameter result
// equals summing the per-sample BackwardInto gradients over the rows (up to
// floating-point reassociation).
func (m *MLP) BackwardBatchInto(tr *BatchTrace, rows int, dOut []float64, g *Grads, s *BatchScratch) []float64 {
	return m.backwardBatch(tr, rows, dOut, g, s, false, true)
}

// BackwardBatchParams overwrites g with the parameter gradients of the
// traced batched pass, skipping both the caller-side Grads.Zero an
// accumulating backward would require and the layer-0 input-gradient
// product nobody reads. It is the cheap path for gradient shards that own
// their accumulator outright (the TD3 critic and actor updates).
func (m *MLP) BackwardBatchParams(tr *BatchTrace, rows int, dOut []float64, g *Grads, s *BatchScratch) {
	m.backwardBatch(tr, rows, dOut, g, s, true, false)
}

// BackwardBatchInput returns only the rows×in input-gradient matrix of the
// traced batched pass (aliasing the scratch), skipping every parameter
// product — the deterministic-policy-gradient step needs dQ/dAction but
// discards the critic's own gradients.
func (m *MLP) BackwardBatchInput(tr *BatchTrace, rows int, dOut []float64, s *BatchScratch) []float64 {
	return m.backwardBatch(tr, rows, dOut, nil, s, false, true)
}

// backwardBatch is the shared batched backward pass. g == nil skips the
// parameter products entirely; set overwrites g instead of accumulating;
// needInput == false stops before the layer-0 input-gradient product (the
// inter-layer ones always run — they carry the recursion).
func (m *MLP) backwardBatch(tr *BatchTrace, rows int, dOut []float64, g *Grads, s *BatchScratch, set, needInput bool) []float64 {
	last := m.Layers[len(m.Layers)-1]
	delta := s.a[:rows*last.Out]
	copy(delta, dOut[:rows*last.Out])
	useA := false // delta occupies a; the first input-gradient buffer is b
	for li := len(m.Layers) - 1; li >= 0; li-- {
		l := m.Layers[li]
		in := tr.acts[li][:rows*l.In]
		out := tr.acts[li+1][:rows*l.Out]
		l.Act.mulDerivRows(delta, out)
		if g != nil {
			// Parameter gradients: dW[out×in] (+)= deltaᵀ·in, db column sums.
			if set {
				MatMulTSet(g.W[li], delta, in, rows, l.Out, l.In)
				ColSumSet(g.B[li], delta, rows, l.Out)
			} else {
				MatMulTAcc(g.W[li], delta, in, rows, l.Out, l.In)
				ColSumAcc(g.B[li], delta, rows, l.Out)
			}
		}
		if li == 0 && !needInput {
			return nil
		}
		// Input gradients for the next (previous) layer: dIn = delta·W.
		next := s.b[:rows*l.In]
		if useA {
			next = s.a[:rows*l.In]
		}
		useA = !useA
		MatMul(next, delta, l.W, rows, l.Out, l.In)
		delta = next
	}
	return delta
}
