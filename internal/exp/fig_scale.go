package exp

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simcore"
)

// Tab3Row is one row of Table 3: the mean per-flow throughput and delay
// ratio for one class of flows in a large-scale mix.
type Tab3Row struct {
	Experiment string // "long-short" or "hetero-rtt"
	Class      string // "overall", "long", "short", "small-rtt", "large-rtt"
	ThrMbps    float64
	DelayRatio float64 // mean RTT / base RTT
	Flows      int
}

// Tab3Options scales the Table 3 experiments. The paper uses a 100-second
// trace repeated 20 times on a ~200 Mbps aggregate; the zero value runs a
// reduced repetition count.
type Tab3Options struct {
	Rate     float64
	Repeats  int
	Lifetime time.Duration
	Seed     uint64
}

func (o *Tab3Options) defaults() {
	if o.Rate == 0 {
		o.Rate = 200e6
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Lifetime == 0 {
		o.Lifetime = 100 * time.Second
	}
}

// flowAgg accumulates per-class results across repeats.
type flowAgg struct {
	thr   []float64
	ratio []float64
	n     int
}

func (a *flowAgg) add(f *netsim.Flow, from, to time.Duration) {
	thr := metrics.MeanThroughput(f, from, to)
	if thr <= 0 {
		return
	}
	a.thr = append(a.thr, thr)
	if rtt := metrics.MeanRTT(f, from, to); rtt > 0 && f.BaseRTT() > 0 {
		a.ratio = append(a.ratio, float64(rtt)/float64(f.BaseRTT()))
	}
	a.n++
}

func (a *flowAgg) row(exp, class string) Tab3Row {
	return Tab3Row{
		Experiment: exp,
		Class:      class,
		ThrMbps:    metrics.Mean(a.thr) / 1e6,
		DelayRatio: metrics.Mean(a.ratio),
		Flows:      a.n,
	}
}

// Tab3LongShort runs experiment (i): 4 long-running Jury flows plus a churn
// of short flows with Poisson arrivals (λ=4/s) and N(4,1)-second lifetimes.
func Tab3LongShort(o Tab3Options) ([]Tab3Row, error) {
	o.defaults()
	// Each repeat owns its engine and RNG, so repeats fan out across the
	// worker pool; aggregation below walks them in repeat order, keeping the
	// result identical to the sequential loop.
	type repFlows struct {
		longs, shorts []*netsim.Flow
	}
	reps := make([]repFlows, o.Repeats)
	err := parallelFor(o.Repeats, func(rep int) error {
		rng := simcore.NewRNG(o.Seed + uint64(rep)*77)
		n := netsim.New(netsim.Config{Seed: rng.Uint64()})
		link := n.AddLink(netsim.LinkConfig{
			Rate: o.Rate, Delay: 15 * time.Millisecond,
			BufferBytes: int(o.Rate / 8 * 0.030),
		})
		r := &reps[rep]
		for i := 0; i < 4; i++ {
			seed := rng.Uint64()
			r.longs = append(r.longs, n.AddFlow(netsim.FlowConfig{
				Name: fmt.Sprintf("long-%d", i), Path: []*netsim.Link{link},
				CC: func() cc.Algorithm { return core.NewDefault(seed) },
			}))
		}
		// Poisson short-flow arrivals.
		for t := 0.0; t < o.Lifetime.Seconds(); t += rng.ExpFloat64() / 4 {
			life := rng.Norm(4, 1)
			if life < 0.5 {
				life = 0.5
			}
			seed := rng.Uint64()
			r.shorts = append(r.shorts, n.AddFlow(netsim.FlowConfig{
				Name: fmt.Sprintf("short-%d", len(r.shorts)), Path: []*netsim.Link{link},
				Start:    time.Duration(t * float64(time.Second)),
				Duration: time.Duration(life * float64(time.Second)),
				CC:       func() cc.Algorithm { return core.NewDefault(seed) },
			}))
		}
		n.Run(o.Lifetime)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var long, short, overall flowAgg
	warm := o.Lifetime / 5
	for _, r := range reps {
		for _, f := range r.longs {
			long.add(f, warm, o.Lifetime)
			overall.add(f, warm, o.Lifetime)
		}
		for _, f := range r.shorts {
			short.add(f, 0, o.Lifetime)
			overall.add(f, 0, o.Lifetime)
		}
	}
	return []Tab3Row{
		overallRow(&overall, "long-short", o),
		long.row("long-short", "long"),
		short.row("long-short", "short"),
	}, nil
}

// overallRow reports the aggregate throughput (sum across concurrently
// active flows approximates link usage; the paper reports ~192 Mbps on the
// 200 Mbps link).
func overallRow(a *flowAgg, exp string, o Tab3Options) Tab3Row {
	r := a.row(exp, "overall")
	return r
}

// Tab3HeteroRTT runs experiment (ii): 20 Jury flows, half with 30 ms and
// half with 90 ms base RTT.
func Tab3HeteroRTT(o Tab3Options) ([]Tab3Row, error) {
	o.defaults()
	type repFlows struct {
		smalls, larges []*netsim.Flow
	}
	reps := make([]repFlows, o.Repeats)
	err := parallelFor(o.Repeats, func(rep int) error {
		rng := simcore.NewRNG(o.Seed + uint64(rep)*133)
		n := netsim.New(netsim.Config{Seed: rng.Uint64()})
		link := n.AddLink(netsim.LinkConfig{
			Rate: o.Rate, Delay: 15 * time.Millisecond,
			BufferBytes: int(o.Rate / 8 * 0.090),
		})
		r := &reps[rep]
		for i := 0; i < 20; i++ {
			seed := rng.Uint64()
			fc := netsim.FlowConfig{
				Name: fmt.Sprintf("f%d", i), Path: []*netsim.Link{link},
				Start: time.Duration(i) * 500 * time.Millisecond,
				CC:    func() cc.Algorithm { return core.NewDefault(seed) },
			}
			if i%2 == 1 {
				fc.ExtraOneWay = 30 * time.Millisecond // 90 ms base RTT
				r.larges = append(r.larges, n.AddFlow(fc))
			} else {
				r.smalls = append(r.smalls, n.AddFlow(fc))
			}
		}
		n.Run(o.Lifetime)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var small, large flowAgg
	warm := o.Lifetime / 3
	for _, r := range reps {
		for _, f := range r.smalls {
			small.add(f, warm, o.Lifetime)
		}
		for _, f := range r.larges {
			large.add(f, warm, o.Lifetime)
		}
	}
	return []Tab3Row{
		small.row("hetero-rtt", "small-rtt"),
		large.row("hetero-rtt", "large-rtt"),
	}, nil
}
