package copa

import (
	"testing"
	"time"

	"repro/internal/cc"
)

func drive(c *Copa, start, dur time.Duration, rtt time.Duration) time.Duration {
	gap := 2 * time.Millisecond
	for now := start; now < start+dur; now += gap {
		c.OnAck(cc.Ack{Now: now, SentAt: now - rtt, RTT: rtt, Bytes: 1500})
	}
	return start + dur
}

func TestGrowsWhenQueueEmpty(t *testing.T) {
	c := New()
	c.Init(0)
	w := c.CWND()
	// RTT pinned at base: dq=0, target infinite, window must climb.
	drive(c, time.Millisecond, time.Second, 30*time.Millisecond)
	if c.CWND() <= w {
		t.Fatalf("no growth on empty queue: %v -> %v", w, c.CWND())
	}
}

func TestShrinksWhenQueueDeep(t *testing.T) {
	c := New()
	c.Init(0)
	// Establish the base RTT first.
	now := drive(c, time.Millisecond, 200*time.Millisecond, 30*time.Millisecond)
	c.cwnd = 200
	// Deep standing queue: rate 200/0.09 ≈ 2222 pkt/s far above target
	// 1/(0.5·0.06) ≈ 33 pkt/s.
	drive(c, now, time.Second, 90*time.Millisecond)
	if c.CWND() >= 200 {
		t.Fatalf("no backoff with deep queue: %v", c.CWND())
	}
}

func TestVelocityDoublesOnPersistentDirection(t *testing.T) {
	c := New()
	c.Init(0)
	drive(c, time.Millisecond, 2*time.Second, 30*time.Millisecond)
	if c.v < 2 {
		t.Fatalf("velocity %v never doubled despite persistent direction", c.v)
	}
}

func TestVelocityResetsOnDirectionFlip(t *testing.T) {
	c := New()
	c.Init(0)
	now := drive(c, time.Millisecond, 2*time.Second, 30*time.Millisecond)
	if c.v < 2 {
		t.Skip("velocity did not build up")
	}
	c.cwnd = 500 // force the down direction
	drive(c, now, 100*time.Millisecond, 90*time.Millisecond)
	if c.v > 2 {
		t.Fatalf("velocity %v not reset on direction flip", c.v)
	}
}

func TestLossCutOncePerEvent(t *testing.T) {
	c := New()
	c.Init(0)
	c.cwnd = 100
	c.OnLoss(cc.Loss{Now: time.Second, SentAt: 990 * time.Millisecond})
	w := c.CWND()
	if w != 70 {
		t.Fatalf("post-loss cwnd %v, want 70", w)
	}
	c.OnLoss(cc.Loss{Now: 1010 * time.Millisecond, SentAt: 995 * time.Millisecond})
	if c.CWND() != w {
		t.Fatalf("coalescing failed: %v", c.CWND())
	}
}

func TestPacingTwiceWindowOverRTT(t *testing.T) {
	c := New()
	c.Init(0)
	if c.PacingRate() != 0 {
		t.Fatal("pacing before first RTT sample should be 0")
	}
	drive(c, time.Millisecond, 100*time.Millisecond, 30*time.Millisecond)
	want := 2 * c.CWND() * 1500 * 8 / c.srtt.Seconds()
	if got := c.PacingRate(); got != want {
		t.Fatalf("pacing %v, want %v", got, want)
	}
}

func TestCopaIdentity(t *testing.T) {
	if New().Name() != "copa" {
		t.Fatal("name wrong")
	}
}
