package simcheck

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/core"
	"repro/internal/netsim"
)

// buildDumbbell wires a single-bottleneck network with nFlows instances from
// the factory and a checker attached.
func buildDumbbell(seed uint64, rate float64, owd time.Duration, buf int, loss float64, nFlows int, mk func(i int) cc.Algorithm) (*netsim.Network, *Checker) {
	n := netsim.New(netsim.Config{Seed: seed})
	l := n.AddLink(netsim.LinkConfig{Rate: rate, Delay: owd, BufferBytes: buf, LossRate: loss})
	for i := 0; i < nFlows; i++ {
		i := i
		n.AddFlow(netsim.FlowConfig{
			Name: "f" + string(rune('0'+i)),
			Path: []*netsim.Link{l},
			CC:   func() cc.Algorithm { return mk(i) },
		})
	}
	return n, Attach(n)
}

func bdpBytes(rate float64, rtt time.Duration) int {
	return int(rate / 8 * rtt.Seconds())
}

func TestCheckerCleanOnCanonicalScenarios(t *testing.T) {
	cases := []struct {
		name string
		loss float64
		mk   func(i int) cc.Algorithm
	}{
		{"cubic", 0, func(int) cc.Algorithm { return cubic.New() }},
		{"cubic-lossy", 0.01, func(int) cc.Algorithm { return cubic.New() }},
		{"jury", 0.001, func(i int) cc.Algorithm { return core.NewDefault(uint64(i) + 1) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			n, ck := buildDumbbell(3, 30e6, 10*time.Millisecond, bdpBytes(30e6, 20*time.Millisecond), tc.loss, 2, tc.mk)
			n.Run(15 * time.Second)
			if vs := ck.Finish(); len(vs) > 0 {
				t.Fatalf("violations on clean scenario: %v", vs)
			}
			if ck.Events() == 0 {
				t.Fatal("checker observed no events")
			}
			if ck.Digest() == 0 {
				t.Fatal("zero digest")
			}
		})
	}
}

// brokenCC reports a negative window, which the emulator clamps for sending
// but the checker must flag as controller corruption.
type brokenCC struct{}

func (brokenCC) Name() string        { return "broken" }
func (brokenCC) Init(time.Duration)  {}
func (brokenCC) OnAck(cc.Ack)        {}
func (brokenCC) OnLoss(cc.Loss)      {}
func (brokenCC) CWND() float64       { return -5 }
func (brokenCC) PacingRate() float64 { return 1e6 }

func TestCheckerFlagsNegativeCwnd(t *testing.T) {
	n, ck := buildDumbbell(1, 10e6, 5*time.Millisecond, 100_000, 0, 1, func(int) cc.Algorithm { return brokenCC{} })
	n.Run(2 * time.Second)
	ck.Finish()
	if ck.Count() == 0 {
		t.Fatal("checker missed negative cwnd")
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Rule == "control" && strings.Contains(v.Detail, "cwnd") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no control violation recorded: %v", ck.Violations())
	}
}

func TestCheckerErrSummarizes(t *testing.T) {
	n, ck := buildDumbbell(1, 10e6, 5*time.Millisecond, 100_000, 0, 1, func(int) cc.Algorithm { return brokenCC{} })
	n.Run(time.Second)
	ck.Finish()
	err := ck.Err()
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("Err() = %v", err)
	}
}

// blast is an interval-driven sender pinned far above capacity. On a slow
// link with a huge buffer, its feedback lags by tens of seconds, forcing the
// send-interval ring to wrap and force-deliver: the regression scenario for
// the stale-feedback misattribution bug in netsim's interval tracker (an ACK
// for a force-delivered interval used to be folded into whatever newer
// interval had reused the ring slot, corrupting its accounting).
type blast struct {
	interval  time.Duration
	delivered []cc.IntervalStats
}

func (b *blast) Name() string                   { return "blast" }
func (b *blast) Init(time.Duration)             {}
func (b *blast) OnAck(cc.Ack)                   {}
func (b *blast) OnLoss(cc.Loss)                 {}
func (b *blast) CWND() float64                  { return 1 << 20 }
func (b *blast) PacingRate() float64            { return 1e6 } // 5× the link
func (b *blast) ControlInterval() time.Duration { return b.interval }
func (b *blast) OnInterval(s cc.IntervalStats)  { b.delivered = append(b.delivered, s) }

func TestIntervalRingWrapKeepsAccountingClosed(t *testing.T) {
	if testing.Short() {
		t.Skip("40 s deep-buffer scenario")
	}
	// 200 kbps bottleneck with a 2 MB buffer: 80 s of drain time, so ACK
	// feedback lags far beyond the 1024-slot interval ring (5 ms intervals
	// wrap after 5.12 s).
	b := &blast{interval: 5 * time.Millisecond}
	n, ck := buildDumbbell(9, 2e5, 10*time.Millisecond, 2_000_000, 0, 1, func(int) cc.Algorithm { return b })
	n.Run(40 * time.Second)
	if vs := ck.Finish(); len(vs) > 0 {
		t.Fatalf("ring wrap corrupted accounting: %v", vs)
	}
	if len(b.delivered) < 1024 {
		t.Fatalf("only %d intervals delivered; ring never wrapped", len(b.delivered))
	}
	var sent, acked, lost int64
	for _, s := range b.delivered {
		sent += s.SentPackets
		acked += s.AckedPackets
		lost += s.LostPackets
	}
	if acked+lost > sent {
		t.Fatalf("interval totals do not close: sent %d acked %d lost %d", sent, acked, lost)
	}
}
