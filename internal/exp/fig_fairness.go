package exp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/simcore"
)

// threeFlowScenario builds the canonical fairness scenario: three
// homogeneous flows, staggered starts, each running Lifetime.
func threeFlowScenario(scheme string, rate float64, owd time.Duration, loss float64, bufBDP float64, stagger, lifetime time.Duration, seed uint64) Scenario {
	s := Scenario{
		Name:        fmt.Sprintf("3x%s@%0.0fMbps", scheme, rate/1e6),
		Rate:        rate,
		OneWayDelay: owd,
		LossRate:    loss,
		Seed:        seed,
		Horizon:     2*stagger + lifetime,
	}
	s.BufferBytes = s.BufferBDP(bufBDP)
	for i := 0; i < 3; i++ {
		s.Flows = append(s.Flows, FlowSpec{
			Scheme:   scheme,
			Start:    time.Duration(i) * stagger,
			Duration: lifetime,
		})
	}
	return s
}

// FlowSeriesRow is one plotted point of a throughput-dynamics figure.
type FlowSeriesRow struct {
	T    time.Duration
	Flow string
	Mbps float64
}

// seriesRows flattens flow series for plotting/printing. It is generic over
// metrics.FlowSeries so both live flows and stored run summaries plot.
func seriesRows[F metrics.FlowSeries](flows []F, every time.Duration) []FlowSeriesRow {
	var rows []FlowSeriesRow
	for _, f := range flows {
		var acc float64
		var n int
		next := every
		for _, p := range f.Series() {
			acc += p.ThroughputBps
			n++
			if p.T >= next {
				rows = append(rows, FlowSeriesRow{T: next, Flow: f.Name(), Mbps: acc / float64(n) / 1e6})
				acc, n = 0, 0
				next += every
			}
		}
	}
	return rows
}

// Fig1Result holds the Astraea generalization-failure demonstration.
type Fig1Result struct {
	InDomainJain    float64 // 100 Mbps (trained region)
	OutOfDomainJain float64 // 350 Mbps (unseen)
	InDomainSeries  []FlowSeriesRow
	OutDomainSeries []FlowSeriesRow
}

// Fig1Options parameterizes the experiment; the zero value uses the paper's
// panels (100 vs 350 Mbps, 30 ms RTT, 3 flows, 60 s stagger).
type Fig1Options struct {
	Stagger  time.Duration
	Lifetime time.Duration
	Seed     uint64
}

func (o *Fig1Options) defaults() {
	if o.Stagger == 0 {
		o.Stagger = 60 * time.Second
	}
	if o.Lifetime == 0 {
		o.Lifetime = 180 * time.Second
	}
}

// Fig1AstraeaGeneralization reproduces Fig. 1: Astraea is fair in its
// training region and fails to converge on an unseen 350 Mbps link.
func Fig1AstraeaGeneralization(o Fig1Options) (*Fig1Result, error) {
	o.defaults()
	jobs := make([]Scenario, 0, 2)
	for _, rate := range []float64{100e6, 350e6} {
		jobs = append(jobs, threeFlowScenario("astraea", rate, 15*time.Millisecond, 0, 1.5, o.Stagger, o.Lifetime, o.Seed+uint64(rate/1e6)))
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{
		InDomainJain:    metrics.TimewiseJain(results[0].FlowSummaries),
		OutOfDomainJain: metrics.TimewiseJain(results[1].FlowSummaries),
		InDomainSeries:  seriesRows(results[0].FlowSummaries, 5*time.Second),
		OutDomainSeries: seriesRows(results[1].FlowSummaries, 5*time.Second),
	}, nil
}

// Fig6Row is one scheme's aggregate fairness over the random environments.
type Fig6Row struct {
	Scheme   string
	MeanJain float64
	P5       float64
	P95      float64
	Runs     int
}

// Fig6Options parameterizes the Jain-index comparison. The paper runs 60
// repetitions of 3 staggered flows over bandwidths 20-400 Mbps, one-way
// delays 10-75 ms, and loss up to 0.3%; the zero value runs a reduced but
// identically distributed sample (single-CPU budget; see DESIGN.md).
type Fig6Options struct {
	Runs     int
	Stagger  time.Duration
	Lifetime time.Duration
	MaxRate  float64
	Schemes  []string
	Seed     uint64
}

func (o *Fig6Options) defaults() {
	if o.Runs == 0 {
		o.Runs = 10
	}
	if o.Stagger == 0 {
		o.Stagger = 20 * time.Second
	}
	if o.Lifetime == 0 {
		o.Lifetime = 60 * time.Second
	}
	if o.MaxRate == 0 {
		o.MaxRate = 400e6
	}
	if o.Schemes == nil {
		o.Schemes = Fig6Schemes
	}
}

// Fig6JainIndex runs the homogeneous 3-flow fairness comparison across
// randomly sampled environments and reports mean/5th/95th-percentile
// time-averaged Jain indices per scheme.
func Fig6JainIndex(o Fig6Options) ([]Fig6Row, error) {
	o.defaults()
	// Sample every environment first, sequentially, so each scheme's RNG
	// stream is consumed in the same order as the original nested loops;
	// only the simulation runs fan out.
	jobs := make([]Scenario, 0, len(o.Schemes)*o.Runs)
	for _, scheme := range o.Schemes {
		rng := simcore.NewRNG(o.Seed ^ hash(scheme))
		for r := 0; r < o.Runs; r++ {
			rate := rng.Range(20e6, o.MaxRate)
			owd := time.Duration(rng.Range(float64(10*time.Millisecond), float64(75*time.Millisecond)))
			loss := rng.Range(0, 0.003)
			jobs = append(jobs, threeFlowScenario(scheme, rate, owd, loss, 1.5, o.Stagger, o.Lifetime, o.Seed+uint64(r)))
		}
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, 0, len(o.Schemes))
	for si, scheme := range o.Schemes {
		var jains []float64
		for r := 0; r < o.Runs; r++ {
			jains = append(jains, metrics.TimewiseJain(results[si*o.Runs+r].FlowSummaries))
		}
		pcts := metrics.Percentiles(jains, 5, 95)
		rows = append(rows, Fig6Row{
			Scheme:   scheme,
			MeanJain: metrics.Mean(jains),
			P5:       pcts[0],
			P95:      pcts[1],
			Runs:     len(jains),
		})
	}
	return rows, nil
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Fig7Panel identifies one panel of the convergence-dynamics figure.
type Fig7Panel struct {
	ID     string // "a".."h"
	Scheme string
	Rate   float64
	RTT    time.Duration // full base round-trip
	Loss   float64
}

// Fig7Panels returns the eight published panels.
func Fig7Panels() []Fig7Panel {
	return []Fig7Panel{
		{"a", "jury", 50e6, 30 * time.Millisecond, 0},
		{"b", "jury", 350e6, 30 * time.Millisecond, 0},
		{"c", "jury", 350e6, 150 * time.Millisecond, 0},
		{"d", "jury", 350e6, 150 * time.Millisecond, 0.002},
		{"e", "astraea", 350e6, 30 * time.Millisecond, 0},
		{"f", "vivace", 350e6, 150 * time.Millisecond, 0},
		{"g", "bbr", 350e6, 150 * time.Millisecond, 0.002},
		{"h", "orca", 350e6, 150 * time.Millisecond, 0.002},
	}
}

// Fig7Result is one panel's outcome.
type Fig7Result struct {
	Panel       Fig7Panel
	Jain        float64 // time-averaged Jain over the run
	Utilization float64 // bottleneck utilization over the run
	// LastJoinConvergence is how long the last-joining flow took to first
	// sustain 80%% of its fair share (−1 if never) — the paper's
	// "convergence speed" reading of the Fig. 7 panels.
	LastJoinConvergence time.Duration
	Series              []FlowSeriesRow
}

// Fig7Options scales the convergence panels.
type Fig7Options struct {
	Stagger  time.Duration
	Lifetime time.Duration
	Seed     uint64
}

func (o *Fig7Options) defaults() {
	if o.Stagger == 0 {
		o.Stagger = 60 * time.Second
	}
	if o.Lifetime == 0 {
		o.Lifetime = 180 * time.Second
	}
}

// Fig7Convergence runs one panel of Fig. 7.
func Fig7Convergence(p Fig7Panel, o Fig7Options) (*Fig7Result, error) {
	o.defaults()
	s := threeFlowScenario(p.Scheme, p.Rate, p.RTT/2, p.Loss, 1.5, o.Stagger, o.Lifetime, o.Seed+hash(p.ID))
	res, err := Run(s)
	if err != nil {
		return nil, err
	}
	return fig7Result(p, o, res), nil
}

func fig7Result(p Fig7Panel, o Fig7Options, res *RunResult) *Fig7Result {
	last := res.FlowSummaries[len(res.FlowSummaries)-1]
	return &Fig7Result{
		Panel:               p,
		Jain:                metrics.TimewiseJain(res.FlowSummaries),
		Utilization:         res.Utilization,
		LastJoinConvergence: metrics.ConvergenceTime(last, 2*o.Stagger, p.Rate/3, 0.8, 5),
		Series:              seriesRows(res.FlowSummaries, 5*time.Second),
	}
}

// Fig7AllPanels runs every published panel of Fig. 7, fanning the
// simulations out over the parallel runner.
func Fig7AllPanels(o Fig7Options) ([]*Fig7Result, error) {
	o.defaults()
	panels := Fig7Panels()
	jobs := make([]Scenario, len(panels))
	for i, p := range panels {
		jobs[i] = threeFlowScenario(p.Scheme, p.Rate, p.RTT/2, p.Loss, 1.5, o.Stagger, o.Lifetime, o.Seed+hash(p.ID))
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*Fig7Result, len(panels))
	for i, p := range panels {
		out[i] = fig7Result(p, o, results[i])
	}
	return out, nil
}

// Fig8Result is the RTT-fairness experiment outcome.
type Fig8Result struct {
	Series     []FlowSeriesRow
	LateShares []float64 // per-flow mean throughput in the all-active window
	LateJain   float64
	AvgRTTms   []float64
}

// Fig8Options scales the RTT-fairness run.
type Fig8Options struct {
	Rate     float64
	Stagger  time.Duration
	Lifetime time.Duration
	Seed     uint64
}

func (o *Fig8Options) defaults() {
	if o.Rate == 0 {
		o.Rate = 100e6
	}
	if o.Stagger == 0 {
		o.Stagger = 60 * time.Second
	}
	if o.Lifetime == 0 {
		o.Lifetime = 300 * time.Second
	}
}

// Fig8RTTFairness launches five Jury flows with base RTTs of 70, 110, 150,
// 190, and 210 ms at staggered starts and reports their shares.
func Fig8RTTFairness(o Fig8Options) (*Fig8Result, error) {
	o.defaults()
	baseRTTs := []time.Duration{70, 110, 150, 190, 210}
	s := Scenario{
		Name:        "fig8-rtt-fairness",
		Rate:        o.Rate,
		OneWayDelay: 5 * time.Millisecond,
		Seed:        o.Seed,
	}
	s.BufferBytes = int(1.0 * o.Rate / 8 * 0.210)
	lastStart := time.Duration(len(baseRTTs)-1) * o.Stagger
	s.Horizon = lastStart + o.Lifetime
	for i, ms := range baseRTTs {
		extra := ms*time.Millisecond/2 - s.OneWayDelay
		s.Flows = append(s.Flows, FlowSpec{
			Scheme:      "jury",
			Start:       time.Duration(i) * o.Stagger,
			ExtraOneWay: extra,
		})
	}
	res, err := Run(s)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{Series: seriesRows(res.FlowSummaries, 5*time.Second)}
	from, to := lastStart+o.Lifetime/3, s.Horizon
	for _, f := range res.FlowSummaries {
		out.LateShares = append(out.LateShares, metrics.MeanThroughput(f, from, to))
		out.AvgRTTms = append(out.AvgRTTms, float64(metrics.MeanRTT(f, from, to))/1e6)
	}
	out.LateJain = metrics.JainIndex(out.LateShares)
	return out, nil
}

// Fig9Row is one scheme's friendliness measurement at one RTT.
type Fig9Row struct {
	Scheme string
	RTT    time.Duration
	// Ratio is scheme throughput / Cubic throughput when sharing the link;
	// 1 is ideal friendliness.
	Ratio float64
}

// Fig9Options scales the friendliness sweep.
type Fig9Options struct {
	Rate     float64
	RTTs     []time.Duration
	Lifetime time.Duration
	Schemes  []string
	Seed     uint64
}

func (o *Fig9Options) defaults() {
	if o.Rate == 0 {
		o.Rate = 100e6
	}
	if o.RTTs == nil {
		o.RTTs = []time.Duration{50, 100, 150, 200, 250, 300}
		for i := range o.RTTs {
			o.RTTs[i] *= time.Millisecond
		}
	}
	if o.Lifetime == 0 {
		o.Lifetime = 120 * time.Second
	}
	if o.Schemes == nil {
		o.Schemes = []string{"jury", "aurora", "orca", "vivace", "bbr", "vegas", "astraea"}
	}
}

// Fig9Friendliness runs each scheme against one Cubic flow on a 1-BDP
// buffer and reports the throughput ratio across base RTTs.
func Fig9Friendliness(o Fig9Options) ([]Fig9Row, error) {
	o.defaults()
	var jobs []Scenario
	var rows []Fig9Row
	for _, scheme := range o.Schemes {
		for _, rtt := range o.RTTs {
			s := Scenario{
				Name:        fmt.Sprintf("fig9-%s-%v", scheme, rtt),
				Rate:        o.Rate,
				OneWayDelay: rtt / 2,
				Seed:        o.Seed + hash(scheme) + uint64(rtt),
				Horizon:     o.Lifetime,
				Flows: []FlowSpec{
					{Scheme: scheme},
					{Scheme: "cubic"},
				},
			}
			s.BufferBytes = s.BufferBDP(1)
			jobs = append(jobs, s)
			rows = append(rows, Fig9Row{Scheme: scheme, RTT: rtt})
		}
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		from := o.Lifetime / 3
		a := metrics.MeanThroughput(res.FlowSummaries[0], from, o.Lifetime)
		b := metrics.MeanThroughput(res.FlowSummaries[1], from, o.Lifetime)
		rows[i].Ratio = math.Inf(1)
		if b > 0 {
			rows[i].Ratio = a / b
		}
	}
	return rows, nil
}
