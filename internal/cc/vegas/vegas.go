// Package vegas implements TCP Vegas (Brakmo & Peterson, 1994), the classic
// delay-based scheme in the paper's baseline set. Vegas keeps the number of
// packets queued at the bottleneck between alpha and beta by comparing the
// expected rate (cwnd/baseRTT) with the actual rate (cwnd/RTT).
package vegas

import (
	"time"

	"repro/internal/cc"
)

const (
	// Alpha and Beta are the queue-occupancy thresholds in packets.
	Alpha = 2
	Beta  = 4
	// Gamma is the slow-start exit threshold.
	Gamma = 1

	initialWindow = 10
	minWindow     = 2
)

// Vegas is a TCP Vegas controller. Construct with New.
type Vegas struct {
	cwnd     float64
	baseRTT  time.Duration
	inSlow   bool
	lastAdj  time.Duration // last once-per-RTT adjustment
	rttSum   time.Duration
	rttCount int

	inRecovery bool
	lastLoss   time.Duration
}

// New returns a Vegas controller in slow start.
func New() *Vegas {
	return &Vegas{cwnd: initialWindow, inSlow: true}
}

// Name implements cc.Algorithm.
func (v *Vegas) Name() string { return "vegas" }

// Init implements cc.Algorithm.
func (v *Vegas) Init(time.Duration) {}

// OnAck implements cc.Algorithm. Window adjustments happen once per RTT
// based on the mean RTT observed during that RTT.
func (v *Vegas) OnAck(a cc.Ack) {
	if v.baseRTT == 0 || a.RTT < v.baseRTT {
		v.baseRTT = a.RTT
	}
	if v.inRecovery && a.SentAt >= v.lastLoss {
		v.inRecovery = false
	}
	if v.inRecovery {
		return
	}
	v.rttSum += a.RTT
	v.rttCount++
	if v.lastAdj == 0 {
		v.lastAdj = a.Now
		return
	}
	if a.Now-v.lastAdj < v.baseRTT {
		return
	}
	avgRTT := v.rttSum / time.Duration(v.rttCount)
	v.rttSum, v.rttCount = 0, 0
	v.lastAdj = a.Now

	// diff = cwnd · (1 − baseRTT/RTT): packets sitting in the queue.
	diff := v.cwnd * (1 - v.baseRTT.Seconds()/avgRTT.Seconds())
	switch {
	case v.inSlow:
		if diff > Gamma {
			v.inSlow = false
			v.cwnd--
		} else {
			v.cwnd *= 2 // slow start doubles every other RTT in Vegas; we double per RTT like practical stacks
		}
	case diff < Alpha:
		v.cwnd++
	case diff > Beta:
		v.cwnd--
	}
	if v.cwnd < minWindow {
		v.cwnd = minWindow
	}
}

// OnLoss implements cc.Algorithm: Vegas falls back to a Reno-style halving.
func (v *Vegas) OnLoss(l cc.Loss) {
	if v.inRecovery && l.SentAt < v.lastLoss {
		return
	}
	v.inRecovery = true
	v.lastLoss = l.Now
	v.inSlow = false
	v.cwnd /= 2
	if v.cwnd < minWindow {
		v.cwnd = minWindow
	}
}

// CWND implements cc.Algorithm.
func (v *Vegas) CWND() float64 { return v.cwnd }

// PacingRate implements cc.Algorithm. Vegas is ack-clocked (unpaced).
func (v *Vegas) PacingRate() float64 { return 0 }
