package cubic

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
)

func ack(now time.Duration) cc.Ack {
	return cc.Ack{Now: now, SentAt: now - 30*time.Millisecond, RTT: 30 * time.Millisecond, Bytes: 1500}
}

func TestSlowStartThenLoss(t *testing.T) {
	c := New()
	c.Init(0)
	for i := 0; i < 90; i++ {
		c.OnAck(ack(time.Duration(i) * time.Millisecond))
	}
	w := c.CWND()
	if w != 100 {
		t.Fatalf("slow-start cwnd %v, want 100", w)
	}
	c.OnLoss(cc.Loss{Now: 100 * time.Millisecond, SentAt: 95 * time.Millisecond})
	if got := c.CWND(); math.Abs(got-Beta*w) > 1e-9 {
		t.Fatalf("post-loss cwnd %v, want %v", got, Beta*w)
	}
}

func TestCubicRegrowthTowardWMax(t *testing.T) {
	c := New()
	c.Init(0)
	for i := 0; i < 90; i++ {
		c.OnAck(ack(time.Duration(i) * time.Millisecond))
	}
	c.OnLoss(cc.Loss{Now: 100 * time.Millisecond, SentAt: 95 * time.Millisecond})
	wCut := c.CWND()
	// Feed ACKs for several seconds; cubic must regrow toward wMax=100.
	now := 200 * time.Millisecond
	for i := 0; i < 4000; i++ {
		now += 2 * time.Millisecond
		c.OnAck(ack(now))
	}
	w := c.CWND()
	if w <= wCut {
		t.Fatalf("cubic did not regrow: %v <= %v", w, wCut)
	}
	if w < 90 {
		t.Fatalf("cubic regrew only to %v after 8s, want ≥90", w)
	}
}

func TestCubicPlateausNearWMax(t *testing.T) {
	// Near t=K the growth function flattens: window change per second is
	// much smaller around wMax than at the start of the epoch.
	c := New()
	c.Init(0)
	for i := 0; i < 90; i++ {
		c.OnAck(ack(time.Duration(i) * time.Millisecond))
	}
	c.OnLoss(cc.Loss{Now: 100 * time.Millisecond, SentAt: 95 * time.Millisecond})
	now := 200 * time.Millisecond
	var wPrev, earlyRate, lateRate float64
	wPrev = c.CWND()
	for i := 0; i < 2000; i++ {
		now += 2 * time.Millisecond
		c.OnAck(ack(now))
		if i == 250 {
			earlyRate = c.CWND() - wPrev
			wPrev = c.CWND()
		}
		if i == 1999 {
			lateRate = c.CWND() - wPrev
		}
		if i == 1749 {
			wPrev = c.CWND()
		}
	}
	if earlyRate <= 0 {
		t.Fatalf("no early growth (%v)", earlyRate)
	}
	if lateRate > earlyRate {
		t.Fatalf("growth accelerated near wMax: early %v late %v", earlyRate, lateRate)
	}
}

func TestFastConvergenceLowersWMax(t *testing.T) {
	c := New()
	c.Init(0)
	for i := 0; i < 90; i++ {
		c.OnAck(ack(time.Duration(i) * time.Millisecond))
	}
	c.OnLoss(cc.Loss{Now: time.Second, SentAt: 999 * time.Millisecond})
	firstWMax := c.WMax()
	// Second loss while still below the old wMax: fast convergence shrinks
	// the anchor below the current window.
	c.OnAck(ack(1200 * time.Millisecond))
	c.OnLoss(cc.Loss{Now: 1300 * time.Millisecond, SentAt: 1250 * time.Millisecond})
	if c.WMax() >= firstWMax {
		t.Fatalf("fast convergence did not lower wMax: %v -> %v", firstWMax, c.WMax())
	}
}

func TestLossEventCoalescing(t *testing.T) {
	c := New()
	c.Init(0)
	for i := 0; i < 50; i++ {
		c.OnAck(ack(time.Duration(i) * time.Millisecond))
	}
	c.OnLoss(cc.Loss{Now: 100 * time.Millisecond, SentAt: 90 * time.Millisecond})
	w := c.CWND()
	for i := 0; i < 10; i++ {
		c.OnLoss(cc.Loss{Now: 101 * time.Millisecond, SentAt: 91 * time.Millisecond})
	}
	if c.CWND() != w {
		t.Fatalf("burst losses cut repeatedly: %v -> %v", w, c.CWND())
	}
}

func TestSetCWNDClampsToMinimum(t *testing.T) {
	c := New()
	c.SetCWND(0.1)
	if c.CWND() < 2 {
		t.Fatalf("SetCWND allowed %v", c.CWND())
	}
	c.SetCWND(42)
	if c.CWND() != 42 {
		t.Fatalf("SetCWND(42) = %v", c.CWND())
	}
}

func TestCubicUnpacedName(t *testing.T) {
	c := New()
	if c.PacingRate() != 0 || c.Name() != "cubic" {
		t.Fatal("cubic identity wrong")
	}
}
