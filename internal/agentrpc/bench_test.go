package agentrpc

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/simcore"
)

// BenchmarkServeBatch measures the daemon's execution core — the batched
// GEMM serving path — at the batch sizes that matter: 1 (a lone flow, pure
// per-request overhead), 64 (the default MaxBatch) and 1024 (a million-flow
// daemon under full coalescing). The figure of merit is decisions/sec; the
// batch sizes show how far one policy execution amortizes.
func BenchmarkServeBatch(b *testing.B) {
	const dim = 16
	net := nn.NewMLP(simcore.NewRNG(7), []int{dim, 32, 32, 2}, []nn.Activation{nn.ReLU, nn.ReLU, nn.Tanh})
	for _, rows := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("batch=%d", rows), func(b *testing.B) {
			s := &Server{}
			s.pv.Store(newPolicyVersion(1, &core.NNPolicy{Net: net}, nil))
			batch := make([]*pending, rows)
			for i := range batch {
				p := newPending()
				p.state = make([]float64, dim)
				for j := range p.state {
					p.state[j] = 0.01*float64(i%17) + 0.001*float64(j)
				}
				batch[i] = p
			}
			xbuf := make([]float64, 0, rows*dim)
			mus := make([]float64, rows)
			deltas := make([]float64, rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xbuf = s.execute(batch, xbuf, mus, deltas)
				for _, p := range batch {
					<-p.done // finish() hands each decision back via done
				}
			}
			b.StopTimer()
			for i, p := range batch {
				if p.status != statusOK {
					b.Fatalf("row %d finished with status %d", i, p.status)
				}
			}
			if got := s.batchedRequests.Load(); got != int64(b.N*rows) {
				b.Fatalf("batched %d requests, want %d", got, b.N*rows)
			}
			b.ReportMetric(float64(b.N*rows)/b.Elapsed().Seconds(), "decisions/sec")
		})
	}
}
