package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) across up to GOMAXPROCS
// worker goroutines and returns the error of the lowest failing index (the
// same error a sequential loop would surface first). Workers pull indices
// from a shared atomic counter, so uneven per-item cost does not idle them.
// fn must be safe to call concurrently from multiple goroutines.
func parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunMany executes scenarios concurrently on a GOMAXPROCS-sized worker pool
// and returns results in input order. Every scenario builds its own network,
// event engine, and RNG (seeded from Scenario.Seed), so each result is
// bit-identical to what a sequential Run(jobs[i]) would produce; only
// wall-clock time changes. On error, the first failure in input order is
// returned and the results are discarded.
func RunMany(jobs []Scenario) ([]*RunResult, error) {
	results := make([]*RunResult, len(jobs))
	err := parallelFor(len(jobs), func(i int) error {
		r, err := Run(jobs[i])
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
