// Command jurytrain trains a Jury actor with TD3 on emulated Table 1
// environments (§3.5/§4) and writes the actor weights as JSON. The weights
// can be loaded back with -eval to run the trained policy on a test link.
//
// Examples:
//
//	jurytrain -epochs 40 -out jury-actor.json
//	jurytrain -eval jury-actor.json -rate 350 -rtt 30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	var (
		epochs  = flag.Int("epochs", 40, "training epochs")
		actors  = flag.Int("actors", 8, "parallel experience collectors")
		steps   = flag.Int("steps", 512, "environment steps per actor per epoch")
		updates = flag.Int("updates", 128, "TD3 updates per epoch")
		workers = flag.Int("workers", 1, "goroutines per TD3 update (results are worker-count independent)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "jury-actor.json", "output weights path")
		eval    = flag.String("eval", "", "evaluate a weights file instead of training")
		rate    = flag.Float64("rate", 100, "eval: link rate, Mbps")
		rtt     = flag.Float64("rtt", 30, "eval: base RTT, ms")

		telemetryOn = flag.Bool("telemetry", false, "enable the telemetry hub (implied by -trace-out/-debug-addr)")
		traceOut    = flag.String("trace-out", "", `write JSONL spans/events to this path ("-" for stderr)`)
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /metrics.json, /debug/pprof, /debug/vars on this address")
		obsOn       = flag.Bool("obs", false, "attach the streaming fairness observer to -eval runs (live /fairness on -debug-addr)")
		obsWindow   = flag.Duration("obs-window", 500*time.Millisecond, "fairness snapshot cadence in virtual time")
		flightDir   = flag.String("flight-dir", "", "write flight-recorder JSONL dumps here on anomaly triggers (implies -obs)")
	)
	flag.Parse()
	hub, err := telemetry.Setup(telemetry.Options{Enabled: *telemetryOn, TraceOut: *traceOut, DebugAddr: *debugAddr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurytrain:", err)
		os.Exit(1)
	}
	defer hub.Close()
	var obsRT *obs.Runtime
	if *obsOn || *flightDir != "" {
		obsRT = obs.New(obs.Options{Window: *obsWindow, FlightDir: *flightDir})
		if d := hub.Debug(); d != nil {
			d.Handle("/fairness", obsRT.State())
			d.Handle("/fairness/stream", obsRT.State().StreamHandler())
		}
	}
	if addr := hub.DebugAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/\n", addr)
	}

	if *eval != "" {
		if err := evaluate(*eval, *rate*1e6, time.Duration(*rtt)*time.Millisecond, *seed, hub, obsRT); err != nil {
			fmt.Fprintln(os.Stderr, "jurytrain:", err)
			os.Exit(1)
		}
		return
	}

	opts := core.DefaultTrainOptions(*seed)
	opts.Epochs = *epochs
	opts.Actors = *actors
	opts.StepsPerActor = *steps
	opts.UpdatesPerEpoch = *updates
	opts.UpdateWorkers = *workers
	opts.Progress = func(epoch int, meanReward, tdErr float64) {
		fmt.Printf("epoch %3d  mean reward %8.4f  TD error %8.4f\n", epoch, meanReward, tdErr)
	}
	if hub.Enabled() {
		opts.Observer = hub.Training()
	}
	fmt.Printf("training Jury: %d epochs x %d actors x %d steps (Table 1 domain)\n",
		opts.Epochs, opts.Actors, opts.StepsPerActor)
	agent, res, err := core.TrainPolicy(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurytrain:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(agent.Actor, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurytrain:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "jurytrain:", err)
		os.Exit(1)
	}
	last := res.EpochRewards[len(res.EpochRewards)-1]
	fmt.Printf("done: final epoch mean reward %.4f, weights -> %s\n", last, *out)
}

// evaluate runs a 2-flow fairness check with the trained policy.
func evaluate(path string, rateBps float64, rtt time.Duration, seed uint64, hub *telemetry.Hub, obsRT *obs.Runtime) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var actor nn.MLP
	if err := json.Unmarshal(data, &actor); err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	mkJury := func(s uint64) cc.Algorithm {
		cfg := core.DefaultConfig()
		cfg.Seed = s
		return core.New(cfg, &core.NNPolicy{Net: &actor})
	}
	n := netsim.New(netsim.Config{Seed: seed})
	l := n.AddLink(netsim.LinkConfig{
		Rate: rateBps, Delay: rtt / 2,
		BufferBytes: int(1.5 * rateBps / 8 * rtt.Seconds()),
	})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return mkJury(seed + 1) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l}, Start: 20 * time.Second,
		CC: func() cc.Algorithm { return mkJury(seed + 2) }})
	telemetry.AttachSim(n, hub)
	ob := obsRT.Attach(n, 1)
	n.Run(80 * time.Second)
	s1, s2 := f1.Stats(), f2.Stats()
	fmt.Printf("trained policy on %.0f Mbps / %v:\n", rateBps/1e6, rtt)
	fmt.Printf("  flow a: %.1f Mbps (avg RTT %.1f ms)\n", s1.AvgThroughputBps/1e6, float64(s1.AvgRTT)/1e6)
	fmt.Printf("  flow b: %.1f Mbps (avg RTT %.1f ms)\n", s2.AvgThroughputBps/1e6, float64(s2.AvgRTT)/1e6)
	fmt.Printf("  link utilization: %.3f\n", l.Utilization(80*time.Second))
	if sum := ob.Finish(80 * time.Second); sum != nil {
		fmt.Printf("  streaming fairness: final Jain %.3f (worst window %.3f over %d snapshots)\n",
			sum.FinalJain, sum.MinWindowJain, sum.Snapshots)
	}
	return nil
}
