// Package netsim is a deterministic packet-level network emulator built on
// the discrete-event engine in internal/simcore. It plays the role Mahimahi
// and Pantheon-tunnel play in the paper (§4): bottleneck links with DropTail
// byte buffers, configurable capacity (fixed or trace-driven), one-way
// propagation delay, i.i.d. random loss, multi-hop paths, and paced
// congestion-window-limited senders that drive cc.Algorithm implementations
// with per-ACK and per-interval feedback.
//
// A simulation is assembled from a Network, Links, and Flows:
//
//	net := netsim.New(netsim.Config{Seed: 1})
//	link := net.AddLink(netsim.LinkConfig{Rate: 100e6, Delay: 15 * time.Millisecond, BufferBytes: 750_000})
//	net.AddFlow(netsim.FlowConfig{Name: "f0", Path: []*netsim.Link{link}, CC: func() cc.Algorithm { return cubic.New() }})
//	net.Run(120 * time.Second)
//
// All randomness derives from the Network seed, so runs are reproducible.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/simcore"
)

// Tap observes packet- and interval-level emulator events. All methods run
// synchronously on the simulation goroutine at the instant the event occurs,
// so implementations may read the current state of the flow, link, and
// engine (Flow.CC(), Link.QueueBytes(), Network.Now(), ...). The primary
// implementation is the runtime invariant checker in internal/simcheck;
// taps cost one nil-check per packet event when disabled.
type Tap interface {
	// PacketSent fires when a flow transmits a packet.
	PacketSent(f *Flow, bytes int)
	// PacketAcked fires when a packet's acknowledgment reaches the sender
	// (even if the flow has already stopped sending).
	PacketAcked(f *Flow, bytes int, rtt time.Duration)
	// PacketLost fires when the sender detects a packet loss.
	PacketLost(f *Flow, bytes int)
	// QueueEnqueued fires after a packet joins a link's DropTail queue.
	QueueEnqueued(l *Link, bytes int)
	// QueueDeparted fires after a packet finishes serialization and leaves
	// the queue.
	QueueDeparted(l *Link, bytes int)
	// QueueDropped fires when a link discards an arriving packet; random
	// distinguishes loss-rate drops from buffer overflow.
	QueueDropped(l *Link, bytes int, random bool)
	// IntervalDelivered fires when send-attributed interval statistics are
	// handed to an interval-driven controller.
	IntervalDelivered(f *Flow, s cc.IntervalStats)
	// SampleRecorded fires when a flow appends one point to its recorded
	// time series (every RecordInterval while the flow is active). It is
	// the streaming seam for fairness metrics: the per-instant throughput
	// samples it carries are exactly what metrics.TimewiseJain groups
	// post-hoc.
	SampleRecorded(f *Flow, p SeriesPoint)
	// FaultInjected fires when a link's fault injector acts on a packet of
	// flow f: for FaultBurstLoss and FaultBlackout the packet was dropped
	// before queueing (the sender's loss detection is engaged), for
	// FaultReorder its enqueue was deferred, for FaultDuplicate a copy
	// joined the queue, and for FaultJitter its propagation gained a delay
	// spike.
	FaultInjected(l *Link, f *Flow, kind FaultKind, bytes int)
}

// Config parameterizes a Network.
type Config struct {
	// Seed drives every random component (loss, traces via callers, CC
	// exploration if the CC asks the flow for an RNG).
	Seed uint64
	// RecordInterval is the granularity of per-flow time series
	// (default 200 ms).
	RecordInterval time.Duration
}

// Network owns the event engine, links, and flows of one simulation.
type Network struct {
	eng   *simcore.Engine
	rng   *simcore.RNG
	cfg   Config
	links []*Link
	flows []*Flow
	tap   Tap

	// Window hook (SetWindowHook): a virtual-time boundary observer that
	// both execution modes honor — sequentially via a chained engine event
	// hook, sharded via the coordinator's barrier-synchronized window hook.
	whDue       func(at time.Duration) bool
	whFire      func(end time.Duration)
	whInstalled bool // sequential engine-hook chain installed (once)

	// seqArena is the packet pool every flow and link starts wired to; a
	// sharded run replaces those pointers with per-shard arenas (see
	// RunSharded), so pool access always stays single-goroutine.
	seqArena    pktArena
	shardArenas []pktArena

	// flowSlab bulk-allocates Flow structs (AddFlow carves from it) and
	// seriesFree bulk-allocates series backing storage (reserveSeries carves
	// from it): at scale, per-flow allocations dominate setup cost and heap
	// fragmentation, so both come in large blocks.
	flowSlab   []Flow
	seriesFree []SeriesPoint
}

// flowSlabBlock is how many Flow structs one slab allocation holds.
const flowSlabBlock = 512

// carveSeries hands out a zero-length slice with exactly need capacity from
// the shared backing block. The three-index slice caps the result so an
// overflowing append falls back to a private reallocation instead of
// clobbering a neighbour's samples.
func (n *Network) carveSeries(need int) []SeriesPoint {
	if len(n.seriesFree) < need {
		size := 16384
		if size < need {
			size = need
		}
		n.seriesFree = make([]SeriesPoint, size)
	}
	out := n.seriesFree[0:0:need]
	n.seriesFree = n.seriesFree[need:]
	return out
}

// New returns an empty network.
func New(cfg Config) *Network {
	if cfg.RecordInterval <= 0 {
		cfg.RecordInterval = 200 * time.Millisecond
	}
	return &Network{
		eng: simcore.NewEngine(),
		rng: simcore.NewRNG(cfg.Seed),
		cfg: cfg,
	}
}

// Engine exposes the underlying event engine (for experiment scripts that
// schedule custom probes, e.g. the Fig. 4/5 signal studies).
func (n *Network) Engine() *simcore.Engine { return n.eng }

// SetTap installs an event observer (nil detaches it). Call it before Run;
// installing a tap mid-simulation observes only subsequent events.
func (n *Network) SetTap(t Tap) { n.tap = t }

// Tap returns the installed observer (nil if none).
func (n *Network) Tap() Tap { return n.tap }

// RecordInterval reports the per-flow series sampling granularity.
func (n *Network) RecordInterval() time.Duration { return n.cfg.RecordInterval }

// SetWindowHook installs a virtual-time window observer: once the clock has
// provably passed a point where due(at) reports true, fire(end) runs with
// every event before end executed — sequentially it is chained onto the
// engine's event hook (fire runs on the simulation goroutine), in a sharded
// run it rides the coordinator's exchange barrier (fire runs on shard 0's
// worker with all other workers parked, so it may merge state written by
// any shard). Both callbacks must only observe — no event scheduling, no
// randomness — so a hooked run stays digest-identical to a bare one. Call
// before Run/RunSharded.
func (n *Network) SetWindowHook(due func(at time.Duration) bool, fire func(end time.Duration)) {
	n.whDue, n.whFire = due, fire
}

// installWindowHook chains the sequential form of the window hook onto the
// engine's event hook (idempotent). Sharded runs must not call this: the
// coordinator provides the barrier-synchronized form instead.
func (n *Network) installWindowHook() {
	if n.whDue == nil || n.whInstalled {
		return
	}
	n.whInstalled = true
	prev := n.eng.EventHook()
	due, fire := n.whDue, n.whFire
	n.eng.SetEventHook(func(at time.Duration, seq uint64) {
		if prev != nil {
			prev(at, seq)
		}
		// Events execute in nondecreasing time order, so when an event at
		// `at` runs, everything strictly before `at` is final.
		if due(at) {
			fire(at)
		}
	})
}

// teeTap fans every Tap callback out to two observers in order. It exists
// so the invariant checker (internal/simcheck) and the telemetry layer can
// observe the same run through the single tap slot.
type teeTap struct{ a, b Tap }

func (t teeTap) PacketSent(f *Flow, bytes int) { t.a.PacketSent(f, bytes); t.b.PacketSent(f, bytes) }
func (t teeTap) PacketLost(f *Flow, bytes int) { t.a.PacketLost(f, bytes); t.b.PacketLost(f, bytes) }
func (t teeTap) QueueEnqueued(l *Link, bytes int) {
	t.a.QueueEnqueued(l, bytes)
	t.b.QueueEnqueued(l, bytes)
}
func (t teeTap) QueueDeparted(l *Link, bytes int) {
	t.a.QueueDeparted(l, bytes)
	t.b.QueueDeparted(l, bytes)
}
func (t teeTap) PacketAcked(f *Flow, bytes int, rtt time.Duration) {
	t.a.PacketAcked(f, bytes, rtt)
	t.b.PacketAcked(f, bytes, rtt)
}
func (t teeTap) QueueDropped(l *Link, bytes int, random bool) {
	t.a.QueueDropped(l, bytes, random)
	t.b.QueueDropped(l, bytes, random)
}
func (t teeTap) IntervalDelivered(f *Flow, s cc.IntervalStats) {
	t.a.IntervalDelivered(f, s)
	t.b.IntervalDelivered(f, s)
}
func (t teeTap) SampleRecorded(f *Flow, p SeriesPoint) {
	t.a.SampleRecorded(f, p)
	t.b.SampleRecorded(f, p)
}
func (t teeTap) FaultInjected(l *Link, f *Flow, kind FaultKind, bytes int) {
	t.a.FaultInjected(l, f, kind, bytes)
	t.b.FaultInjected(l, f, kind, bytes)
}

// Taps composes observers into one Tap, dropping nils: Taps() is nil,
// Taps(a) is a, Taps(a, b) observes a first then b.
func Taps(taps ...Tap) Tap {
	var out Tap
	for _, t := range taps {
		switch {
		case t == nil:
		case out == nil:
			out = t
		default:
			out = teeTap{a: out, b: t}
		}
	}
	return out
}

// Now reports current virtual time.
func (n *Network) Now() time.Duration { return n.eng.Now() }

// AddLink creates a link and registers it with the network.
func (n *Network) AddLink(cfg LinkConfig) *Link {
	l := newLink(n, cfg, n.rng.Split(uint64(len(n.links))+0x11))
	n.links = append(n.links, l)
	return l
}

// AddFlow creates a flow and registers it with the network. It panics on a
// structurally invalid config (no path, no controller): those are
// programming errors, not runtime conditions. Flow storage is carved from
// the network's slab, so bulk scenario construction costs one allocation
// per flowSlabBlock flows rather than one per flow.
func (n *Network) AddFlow(cfg FlowConfig) *Flow {
	if len(cfg.Path) == 0 {
		panic("netsim: flow with empty path")
	}
	if cfg.CC == nil && cfg.Alg == nil {
		panic("netsim: flow without CC factory or Alg")
	}
	if len(n.flowSlab) == 0 {
		n.flowSlab = make([]Flow, flowSlabBlock)
	}
	f := &n.flowSlab[0]
	n.flowSlab = n.flowSlab[1:]
	initFlow(f, n, cfg, n.rng.SplitValue(uint64(len(n.flows))+0x8000))
	n.flows = append(n.flows, f)
	return f
}

// Flows returns the registered flows in creation order.
func (n *Network) Flows() []*Flow { return n.flows }

// Links returns the registered links in creation order.
func (n *Network) Links() []*Link { return n.links }

// Run executes the simulation until the horizon and returns the number of
// events executed. It may be called multiple times with increasing horizons.
func (n *Network) Run(horizon time.Duration) int {
	n.installWindowHook()
	for _, f := range n.flows {
		f.armStart()
		f.reserveSeries(horizon)
	}
	return n.eng.Run(horizon)
}

// Validate performs basic sanity checks and returns an error describing the
// first problem found. Experiments call this before running.
func (n *Network) Validate() error {
	if len(n.links) == 0 {
		return fmt.Errorf("netsim: no links")
	}
	if len(n.flows) == 0 {
		return fmt.Errorf("netsim: no flows")
	}
	for i, l := range n.links {
		if l.cfg.Trace == nil && l.cfg.Rate <= 0 {
			return fmt.Errorf("netsim: link %d has no capacity", i)
		}
		if l.cfg.BufferBytes <= 0 {
			return fmt.Errorf("netsim: link %d has no buffer", i)
		}
		if err := l.cfg.Faults.Validate(); err != nil {
			return fmt.Errorf("netsim: link %d: %w", i, err)
		}
	}
	return nil
}
