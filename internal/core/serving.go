package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/cc"
	"repro/internal/nn"
	"repro/internal/rl"
)

// This file is the serving-side glue between trained policies and the
// agentrpc inference daemon: batched NNPolicy inference (the daemon's
// minibatch fast path), an AIMD-safe fallback policy for degraded clients,
// and loaders that turn on-disk artifacts (training checkpoints, exported
// actor files) into servable policies.

// InputDim reports the actor's state dimension; the daemon only batches
// requests whose states match it.
func (p *NNPolicy) InputDim() int { return p.Net.InputDim() }

// DecideBatch runs one batched forward pass over the rows×InputDim()
// row-major state matrix, writing the per-row decisions into mu and delta.
// Together with InputDim it implements agentrpc.BatchDecider: one GEMM
// amortizes the weight traffic across every flow that asked within the
// daemon's latency budget.
//
// Like Decide, it is not safe for concurrent use — the daemon's single
// batcher goroutine is the intended caller.
func (p *NNPolicy) DecideBatch(states []float64, rows int, mu, delta []float64) {
	if p.bscratch == nil || p.bscratch.Rows() < rows {
		p.bscratch = nn.NewBatchScratch(p.Net, rows)
	}
	out := p.Net.ForwardBatchInto(states, rows, p.bscratch)
	w := p.Net.OutputDim()
	for r := 0; r < rows; r++ {
		mu[r] = cc.Clamp(out[r*w], -1, 1)
		delta[r] = cc.Clamp((out[r*w+1]+1)/2, 0, 1)
	}
}

// AIMDPolicy is the conservative fallback served while the learned policy is
// unreachable or unhealthy. It mirrors the Jury controller's own AIMD safe
// mode (core.jury aimdFallback): back off on net loss, otherwise probe
// additively — TCP-friendly by construction, so a degraded flow coexists
// fairly with both healthy Jury flows and classical TCP instead of freezing
// its cwnd at whatever the last learned decision was.
//
// δ = 0 keeps the decision a point, not a range: a fallback flow does not
// participate in the occupancy differentiation it can no longer see.
type AIMDPolicy struct{}

// Decide implements Policy. The state layout is the standard pair stream
// (ΔRTT_norm, lossRatio): any net loss across the window backs off, else
// probe. Works for any even-length state, including an empty one.
func (AIMDPolicy) Decide(state []float64) (float64, float64) {
	var lossSum float64
	for i := 1; i < len(state); i += 2 {
		lossSum += state[i]
	}
	if lossSum < 0 { // net drop over the window
		return -1, 0
	}
	return 1, 0
}

// PolicyFromCheckpoint loads a training checkpoint (rl.SaveCheckpoint) and
// wraps its actor as a servable policy. The weights are validated finite —
// a checkpoint that would trip the daemon's health gate is rejected here,
// at load time, with a useful path in the error.
func PolicyFromCheckpoint(path string) (*NNPolicy, error) {
	ck, err := rl.LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if ck.Actor == nil {
		return nil, fmt.Errorf("checkpoint %s has no actor network", path)
	}
	if !ck.Actor.AllFinite() {
		return nil, fmt.Errorf("checkpoint %s actor has non-finite weights", path)
	}
	return &NNPolicy{Net: ck.Actor}, nil
}

// PolicyFromActorFile loads a bare actor network exported as JSON (the
// jurytrain -out artifact) and wraps it as a servable policy.
func PolicyFromActorFile(path string) (*NNPolicy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var net nn.MLP
	if err := json.Unmarshal(data, &net); err != nil {
		return nil, fmt.Errorf("parse actor %s: %w", path, err)
	}
	if len(net.Layers) == 0 {
		return nil, fmt.Errorf("actor %s has no layers", path)
	}
	if !net.AllFinite() {
		return nil, fmt.Errorf("actor %s has non-finite weights", path)
	}
	return &NNPolicy{Net: &net}, nil
}

// NonFiniteProbePolicy wraps a policy and corrupts its μ output whenever the
// first state value exceeds the trigger — a test hook for exercising the
// daemon's non-finite rollback path with a policy that passes the health
// probe. Exported because the chaos harness lives in another package.
type NonFiniteProbePolicy struct {
	Inner   Policy
	Trigger float64
}

// Decide implements Policy.
func (p NonFiniteProbePolicy) Decide(state []float64) (float64, float64) {
	mu, delta := p.Inner.Decide(state)
	if len(state) > 0 && state[0] > p.Trigger {
		return math.NaN(), delta
	}
	return mu, delta
}
