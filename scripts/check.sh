#!/bin/sh
# check.sh — the repository's fast verification gate.
#
# Runs formatting, vet, build, the short test suite, and the race detector
# over the concurrent packages (the parallel experiment harness and the
# multi-goroutine trainer). The full suite (go test ./...) adds the
# full-scale emulation tests gated behind -short.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -short ./..."
go test -short ./...

echo "== go test -race ./internal/exp ./internal/rl"
go test -short -race ./internal/exp ./internal/rl

echo "OK"
