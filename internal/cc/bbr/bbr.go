// Package bbr implements a faithful simplification of BBRv1 (Cardwell et
// al., 2016): model-based congestion control that paces at the estimated
// bottleneck bandwidth and bounds inflight to a gain times the
// bandwidth-delay product. The state machine covers STARTUP, DRAIN,
// PROBE_BW with the eight-phase gain cycle, and PROBE_RTT.
package bbr

import (
	"time"

	"repro/internal/cc"
)

// state is the BBR state machine phase.
type state int

const (
	stateStartup state = iota
	stateDrain
	stateProbeBW
	stateProbeRTT
)

const (
	highGain      = 2.885 // 2/ln(2)
	drainGain     = 1 / highGain
	cwndGain      = 2.0
	minCwnd       = 4
	probeRTTEvery = 10 * time.Second
	probeRTTHold  = 200 * time.Millisecond
)

// pacingGainCycle is the PROBE_BW gain sequence: probe up, drain the probe,
// then cruise.
var pacingGainCycle = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// rateSample is one point of the delivery-rate history.
type rateSample struct {
	at        time.Duration
	delivered int64
}

// BBR is a BBRv1 controller. Construct with New.
type BBR struct {
	st         state
	pacingGain float64

	btlBw  *cc.WindowedMax    // bits/second
	minRTT *cc.WindowedMinRTT // 10 s window

	delivered int64
	history   []rateSample

	mss        int
	srtt       time.Duration
	roundStart time.Duration
	fullBw     float64
	fullBwCnt  int

	cycleIdx     int
	cycleStart   time.Duration
	probeRTTAt   time.Duration // when PROBE_RTT last completed
	probeRTTDone time.Duration // when the current PROBE_RTT hold ends

	cwnd float64
}

// New returns a BBR controller in STARTUP.
func New() *BBR {
	return &BBR{
		st:         stateStartup,
		pacingGain: highGain,
		btlBw:      cc.NewWindowedMax(10 * time.Second),
		minRTT:     cc.NewWindowedMinRTT(10 * time.Second),
		mss:        1500,
		cwnd:       10,
	}
}

// Name implements cc.Algorithm.
func (b *BBR) Name() string { return "bbr" }

// Init implements cc.Algorithm.
func (b *BBR) Init(now time.Duration) {
	b.roundStart = now
	b.probeRTTAt = now
}

// OnAck implements cc.Algorithm.
func (b *BBR) OnAck(a cc.Ack) {
	b.mss = a.Bytes
	b.minRTT.Update(a.Now, a.RTT)
	if b.srtt == 0 {
		b.srtt = a.RTT
	} else {
		b.srtt += (a.RTT - b.srtt) / 8
	}

	// Delivery-rate sample over a trailing RTT of history.
	b.delivered += int64(a.Bytes)
	b.history = append(b.history, rateSample{a.Now, b.delivered})
	window := b.srtt
	if window < time.Millisecond {
		window = time.Millisecond
	}
	for len(b.history) > 2 && a.Now-b.history[0].at > window {
		b.history = b.history[1:]
	}
	if oldest := b.history[0]; a.Now > oldest.at {
		rate := float64(b.delivered-oldest.delivered) * 8 / (a.Now - oldest.at).Seconds()
		b.btlBw.SetWindow(10 * window)
		b.btlBw.Update(a.Now, rate)
	}

	b.advanceStateMachine(a.Now)
	b.updateCwnd()
}

func (b *BBR) advanceStateMachine(now time.Duration) {
	rtt := b.minRTT.Value()
	if rtt == 0 {
		return
	}
	// Round boundaries are RTT-timed.
	newRound := now-b.roundStart >= rtt
	if newRound {
		b.roundStart = now
	}

	switch b.st {
	case stateStartup:
		if newRound {
			bw := b.btlBw.Value()
			if bw > b.fullBw*1.25 {
				b.fullBw = bw
				b.fullBwCnt = 0
			} else {
				b.fullBwCnt++
			}
			if b.fullBwCnt >= 3 {
				b.st = stateDrain
				b.pacingGain = drainGain
			}
		}
	case stateDrain:
		// Exit once the queue built in startup has drained: RTT back near
		// the floor, or a safety bound of rounds.
		if b.srtt <= rtt+rtt/5 || (newRound && b.fullBwCnt > 8) {
			b.enterProbeBW(now)
		} else if newRound {
			b.fullBwCnt++
		}
	case stateProbeBW:
		if now-b.cycleStart >= rtt {
			b.cycleStart = now
			b.cycleIdx = (b.cycleIdx + 1) % len(pacingGainCycle)
			b.pacingGain = pacingGainCycle[b.cycleIdx]
		}
		if now-b.probeRTTAt > probeRTTEvery {
			b.st = stateProbeRTT
			b.probeRTTDone = now + probeRTTHold
			b.pacingGain = 1
		}
	case stateProbeRTT:
		if now >= b.probeRTTDone {
			b.probeRTTAt = now
			b.enterProbeBW(now)
		}
	}
}

func (b *BBR) enterProbeBW(now time.Duration) {
	b.st = stateProbeBW
	b.cycleStart = now
	b.cycleIdx = 2 // start in a cruise phase
	b.pacingGain = pacingGainCycle[b.cycleIdx]
}

func (b *BBR) updateCwnd() {
	if b.st == stateProbeRTT {
		b.cwnd = minCwnd
		return
	}
	bw := b.btlBw.Value()
	rtt := b.minRTT.Value()
	if bw == 0 || rtt == 0 {
		return
	}
	gain := cwndGain
	if b.st == stateStartup {
		gain = highGain
	}
	bdpPackets := bw * rtt.Seconds() / 8 / float64(b.mss)
	b.cwnd = gain * bdpPackets
	if b.cwnd < minCwnd {
		b.cwnd = minCwnd
	}
}

// OnLoss implements cc.Algorithm. BBRv1 deliberately ignores packet loss as
// a congestion signal (its robustness on lossy links in Fig. 10(c) and its
// slow fairness convergence in Fig. 7(g) both stem from the bandwidth-model
// control).
func (b *BBR) OnLoss(cc.Loss) {}

// CWND implements cc.Algorithm.
func (b *BBR) CWND() float64 { return b.cwnd }

// PacingRate implements cc.Algorithm.
func (b *BBR) PacingRate() float64 {
	bw := b.btlBw.Value()
	if bw == 0 {
		return 0 // unpaced until the first delivery-rate sample
	}
	return b.pacingGain * bw
}

// State exposes the current phase for tests.
func (b *BBR) State() int { return int(b.st) }
