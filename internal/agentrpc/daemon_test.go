package agentrpc

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/simcore"
)

// nanPolicy always answers NaN — a swap candidate the health gate must veto.
type nanPolicy struct{}

func (nanPolicy) Decide([]float64) (float64, float64) { return math.NaN(), 0 }

// probeBomb panics on any decision — poisoned weights at their worst.
type probeBomb struct{}

func (probeBomb) Decide([]float64) (float64, float64) { panic("poisoned candidate") }

func testActor(t *testing.T, dim int) *core.NNPolicy {
	t.Helper()
	net := nn.NewMLP(simcore.NewRNG(7), []int{dim, 32, 32, 2}, []nn.Activation{nn.ReLU, nn.ReLU, nn.Tanh})
	return &core.NNPolicy{Net: net}
}

func TestHotSwapServesNewVersion(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", constPolicy{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), constPolicy{-9, -9})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if mu, delta := cl.Decide([]float64{1}); mu != 0.1 || delta != 0.2 {
		t.Fatalf("v1 answered (%v, %v)", mu, delta)
	}
	id, err := srv.Swap(constPolicy{0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 || srv.PolicyVersion() != 2 || srv.Swaps() != 1 {
		t.Fatalf("swap bookkeeping: id=%d version=%d swaps=%d", id, srv.PolicyVersion(), srv.Swaps())
	}
	if mu, delta := cl.Decide([]float64{1}); mu != 0.3 || delta != 0.4 {
		t.Fatalf("post-swap decision (%v, %v), want (0.3, 0.4)", mu, delta)
	}
}

func TestSwapHealthGateRejectsUnhealthyCandidates(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", constPolicy{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, bad := range []Policy{nanPolicy{}, probeBomb{}} {
		if _, err := srv.Swap(bad); !errors.Is(err, ErrUnhealthyPolicy) {
			t.Fatalf("unhealthy candidate %T accepted (err=%v)", bad, err)
		}
	}
	if srv.PolicyVersion() != 1 || srv.Swaps() != 0 {
		t.Fatalf("rejected swaps mutated serving state: version=%d swaps=%d",
			srv.PolicyVersion(), srv.Swaps())
	}
	// The original policy must still be serving.
	cl, err := Dial(srv.Addr(), constPolicy{-9, -9})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if mu, _ := cl.Decide([]float64{1}); mu != 0.1 {
		t.Fatalf("v1 not serving after rejected swaps: mu=%v", mu)
	}
}

func TestRuntimeNonFiniteRollsBack(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", constPolicy{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The trap policy is finite on the canonical probe states (small values)
	// but NaNs once the first state value exceeds the trigger — the failure
	// mode a load-time health gate cannot catch.
	trap := core.NonFiniteProbePolicy{Inner: constPolicy{0.3, 0.4}, Trigger: 100}
	if _, err := srv.Swap(trap); err != nil {
		t.Fatalf("trap policy failed the probe: %v", err)
	}
	cl, err := Dial(srv.Addr(), constPolicy{-9, -9})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if mu, _ := cl.Decide([]float64{1}); mu != 0.3 {
		t.Fatalf("v2 not serving: mu=%v", mu)
	}
	// Trip the guard: the poisoned decision is suppressed (client falls
	// back), the version rolls back automatically.
	if mu, delta := cl.Decide([]float64{1000}); mu != -9 || delta != -9 {
		t.Fatalf("poisoned decision leaked to the datapath: (%v, %v)", mu, delta)
	}
	if srv.NonFinite() != 1 || srv.Rollbacks() != 1 {
		t.Fatalf("guard bookkeeping: nonfinite=%d rollbacks=%d", srv.NonFinite(), srv.Rollbacks())
	}
	if srv.PolicyVersion() != 1 {
		t.Fatalf("still serving version %d after rollback", srv.PolicyVersion())
	}
	if mu, _ := cl.Decide([]float64{1000}); mu != 0.1 {
		t.Fatalf("rolled-back version not serving: mu=%v", mu)
	}
}

// TestBatchCoalescing: concurrent clients against an NNPolicy must be served
// through the batched GEMM path (fewer executions than requests) and every
// batched decision must match the scalar path within float tolerance.
func TestBatchCoalescing(t *testing.T) {
	const dim = 16
	srv, err := ServeConfig("127.0.0.1:0", testActor(t, dim), Config{MaxBatch: 64, BatchDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers = 8
	const perWorker = 50
	// Each worker verifies against its own deterministically-identical
	// network: MLP forward scratch is not goroutine-safe, and the serving
	// copy is concurrently exercised by the daemon's batcher.
	locals := make([]*core.NNPolicy, workers)
	for w := range locals {
		locals[w] = testActor(t, dim)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := DialConfig(srv.Addr(), constPolicy{-9, -9}, ClientConfig{Timeout: 2 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			state := make([]float64, dim)
			for i := 0; i < perWorker; i++ {
				for j := range state {
					state[j] = 0.05*float64(w+1) - 0.01*float64(i%7) + 0.001*float64(j)
				}
				mu, delta := cl.Decide(state)
				wantMu, wantDelta := locals[w].Decide(state)
				if math.Abs(mu-wantMu) > 1e-9 || math.Abs(delta-wantDelta) > 1e-9 {
					errs <- errors.New("batched decision diverged from the scalar path")
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	total := int64(workers * perWorker)
	if srv.BatchedRequests() != total {
		t.Fatalf("batched %d requests, want %d", srv.BatchedRequests(), total)
	}
	if srv.Batches() >= total {
		t.Fatalf("%d executions for %d requests — no coalescing happened", srv.Batches(), total)
	}
	if srv.Decisions() != total {
		t.Fatalf("decisions %d, want %d", srv.Decisions(), total)
	}
}

// TestBatchFullFlushesEarly: with a prohibitive latency budget, filling the
// batch must flush it immediately — the budget is a deadline, not a sleep.
func TestBatchFullFlushesEarly(t *testing.T) {
	const dim = 8
	srv, err := ServeConfig("127.0.0.1:0", testActor(t, dim),
		Config{MaxBatch: 4, BatchDelay: 10 * time.Second, WaitTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := DialConfig(srv.Addr(), constPolicy{-9, -9}, ClientConfig{Timeout: 4 * time.Second})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			state := make([]float64, dim)
			if mu, _ := cl.Decide(state); mu == -9 {
				t.Error("decision fell back — batch never flushed")
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("4 decisions with a 10s budget took %v — batch-full flush broken", elapsed)
	}
}

// TestServingDeadlineAnswersERR: a policy execution outliving WaitTimeout
// must cost that request a typed ERR (client falls back), never a wedged
// connection — and the late batcher result lands harmlessly in the
// abandoned pending.
func TestServingDeadlineAnswersERR(t *testing.T) {
	gate := make(chan struct{})
	srv, err := ServeConfig("127.0.0.1:0", gatePolicy{gate}, Config{MaxBatch: 1, WaitTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialConfig(srv.Addr(), constPolicy{0.25, 0.75}, ClientConfig{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if mu, delta := cl.Decide([]float64{jamMarker}); mu != 0.25 || delta != 0.75 {
		t.Fatalf("jammed decision answered (%v, %v), want the fallback", mu, delta)
	}
	if srv.Timeouts() != 1 {
		t.Fatalf("server recorded %d serving timeouts, want 1", srv.Timeouts())
	}
	close(gate)
	// The same connection must serve the next (healthy) request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if mu, _ := cl.Decide([]float64{1}); mu == 0.5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never served again after a serving timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainAnswersInFlight: a graceful drain must answer the request already
// inside the batcher before shutting down.
func TestDrainAnswersInFlight(t *testing.T) {
	gate := make(chan struct{})
	srv, err := ServeConfig("127.0.0.1:0", gatePolicy{gate}, Config{MaxBatch: 1, WaitTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialConfig(srv.Addr(), constPolicy{-9, -9}, ClientConfig{Timeout: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	type result struct{ mu, delta float64 }
	got := make(chan result, 1)
	go func() {
		mu, delta := cl.Decide([]float64{jamMarker})
		got <- result{mu, delta}
	}()
	// Wait for the request to be inside the policy, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveConns() == 0 || srv.QueueDepth() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the batcher")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the batcher enter Decide
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(5 * time.Second) }()
	time.Sleep(20 * time.Millisecond)
	close(gate)

	select {
	case r := <-got:
		if r.mu != 0.5 || r.delta != 0.5 {
			t.Fatalf("in-flight decision answered (%v, %v) during drain, want (0.5, 0.5)", r.mu, r.delta)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight decision never answered")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if srv.ActiveConns() != 0 {
		t.Fatalf("%d connections survived the drain", srv.ActiveConns())
	}
}

// TestTenantAccounting: hello-labelled connections are accounted per tenant
// and the OnTenant hook fires for existing and future labels exactly once.
func TestTenantAccounting(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	alpha, err := DialConfig(srv.Addr(), constPolicy{}, ClientConfig{Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	defer alpha.Close()
	for i := 0; i < 3; i++ {
		alpha.Decide([]float64{1})
	}

	var mu sync.Mutex
	seen := map[string]int{}
	srv.OnTenant(func(name string) {
		mu.Lock()
		seen[name]++
		mu.Unlock()
	})

	beta, err := DialConfig(srv.Addr(), constPolicy{}, ClientConfig{Tenant: "beta"})
	if err != nil {
		t.Fatal(err)
	}
	defer beta.Close()
	for i := 0; i < 2; i++ {
		beta.Decide([]float64{1})
	}

	if got := srv.TenantDecisions("alpha"); got != 3 {
		t.Fatalf("alpha decisions %d, want 3", got)
	}
	if got := srv.TenantDecisions("beta"); got != 2 {
		t.Fatalf("beta decisions %d, want 2", got)
	}
	if got := srv.TenantDecisions("nobody"); got != 0 {
		t.Fatalf("unknown tenant reports %d decisions", got)
	}
	names := srv.Tenants()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("tenants %v", names)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen["alpha"] != 1 || seen["beta"] != 1 {
		t.Fatalf("tenant hook fired %v, want once per label", seen)
	}
}
