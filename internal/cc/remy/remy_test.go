package remy

import (
	"testing"
	"time"

	"repro/internal/cc"
)

func TestLookupMatchesByRTTRatio(t *testing.T) {
	r := New(nil)
	probe := r.Lookup(State{AckEWMA: 1, SendEWMA: 1, RTTRatio: 1.0})
	if probe.WindowInc <= 0 {
		t.Fatalf("no-queue state should probe, got %+v", probe)
	}
	backoff := r.Lookup(State{AckEWMA: 1, SendEWMA: 1, RTTRatio: 3.0})
	if backoff.WindowMult >= 1 {
		t.Fatalf("deep-queue state should back off, got %+v", backoff)
	}
}

func TestLookupFallbackOutOfTable(t *testing.T) {
	r := New([]Rule{{Lo: State{0, 0, 0}, Hi: State{1, 1, 1}, Act: Action{WindowMult: 2}}})
	act := r.Lookup(State{AckEWMA: 5, SendEWMA: 5, RTTRatio: 5})
	if act.WindowMult != 1 || act.WindowInc != 0 {
		t.Fatalf("fallback action %+v, want conservative hold", act)
	}
}

func TestStateEWMAUpdates(t *testing.T) {
	r := New(nil)
	r.Init(0)
	rtt := 30 * time.Millisecond
	for i := 1; i <= 50; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		r.OnAck(cc.Ack{Now: now, SentAt: now - rtt, RTT: rtt, Bytes: 1500})
	}
	s := r.StateSnapshot()
	if s.AckEWMA < 8 || s.AckEWMA > 12 {
		t.Fatalf("ack EWMA %v, want ~10ms", s.AckEWMA)
	}
	if s.SendEWMA < 8 || s.SendEWMA > 12 {
		t.Fatalf("send EWMA %v, want ~10ms", s.SendEWMA)
	}
	if s.RTTRatio != 1 {
		t.Fatalf("RTT ratio %v, want 1", s.RTTRatio)
	}
}

func TestWindowGrowsWhenUncongested(t *testing.T) {
	r := New(nil)
	r.Init(0)
	w := r.CWND()
	rtt := 30 * time.Millisecond
	for i := 1; i <= 100; i++ {
		now := time.Duration(i) * 5 * time.Millisecond
		r.OnAck(cc.Ack{Now: now, SentAt: now - rtt, RTT: rtt, Bytes: 1500})
	}
	if r.CWND() <= w {
		t.Fatalf("window did not grow: %v -> %v", w, r.CWND())
	}
}

func TestWindowShrinksOnDeepQueue(t *testing.T) {
	r := New(nil)
	r.Init(0)
	// Establish minRTT, then feed 3x inflated RTTs.
	r.OnAck(cc.Ack{Now: 10 * time.Millisecond, SentAt: 0, RTT: 30 * time.Millisecond, Bytes: 1500})
	r.cwnd = 100
	for i := 2; i <= 50; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		r.OnAck(cc.Ack{Now: now, SentAt: now - 90*time.Millisecond, RTT: 90 * time.Millisecond, Bytes: 1500})
	}
	if r.CWND() >= 100 {
		t.Fatalf("window did not shrink on deep queue: %v", r.CWND())
	}
}

func TestLossCutCoalesced(t *testing.T) {
	r := New(nil)
	r.cwnd = 40
	r.OnLoss(cc.Loss{Now: time.Second, SentAt: 990 * time.Millisecond})
	if r.CWND() != 20 {
		t.Fatalf("post-loss %v, want 20", r.CWND())
	}
	r.OnLoss(cc.Loss{Now: 1010 * time.Millisecond, SentAt: 995 * time.Millisecond})
	if r.CWND() != 20 {
		t.Fatalf("coalescing failed: %v", r.CWND())
	}
}

func TestPacingFromIntersend(t *testing.T) {
	r := New(nil)
	if r.PacingRate() != 0 {
		t.Fatal("zero intersend should be unpaced")
	}
	r.intersend = 1 // 1 ms per 1500B packet = 12 Mbit/s
	if got := r.PacingRate(); got != 12e6 {
		t.Fatalf("pacing %v, want 12e6", got)
	}
}

func TestRemyIdentity(t *testing.T) {
	if New(nil).Name() != "remy" {
		t.Fatal("name wrong")
	}
}
