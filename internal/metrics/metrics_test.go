package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

func TestJainIndexKnownValues(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{10, 10}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{3, 1}, 0.8},
		{nil, 0},
		{[]float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := JainIndex(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJainIndexBounds(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, math.Abs(v))
		}
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		lo := 1/float64(len(xs)) - 1e-9
		return (j == 0 || j >= lo) && j <= 1+1e-9
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJainIndexScaleInvariant(t *testing.T) {
	a := []float64{2, 5, 9}
	b := []float64{20, 50, 90}
	if math.Abs(JainIndex(a)-JainIndex(b)) > 1e-12 {
		t.Fatal("Jain index not scale invariant")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean wrong")
	}
}

func buildTwoFlowRun(t *testing.T) []*netsim.Flow {
	t.Helper()
	n := netsim.New(netsim.Config{Seed: 1})
	l := n.AddLink(netsim.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l}, CC: func() cc.Algorithm { return cc.NewManual(8e6) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l}, CC: func() cc.Algorithm { return cc.NewManual(8e6) }})
	n.Run(10 * time.Second)
	return []*netsim.Flow{f1, f2}
}

func TestFlowSeriesMetrics(t *testing.T) {
	flows := buildTwoFlowRun(t)
	thr := MeanThroughput(flows[0], 2*time.Second, 10*time.Second)
	if thr < 3e6 || thr > 7e6 {
		t.Fatalf("mean throughput %v, want ~5e6", thr)
	}
	q := MeanQueuingDelayMS(flows[0], 2*time.Second, 10*time.Second)
	if q <= 0 || q > 200 {
		t.Fatalf("queuing delay %v ms", q)
	}
	rtt := MeanRTT(flows[0], 2*time.Second, 10*time.Second)
	if rtt < 20*time.Millisecond {
		t.Fatalf("mean RTT %v below base", rtt)
	}
	if MeanThroughput(flows[0], 50*time.Second, 60*time.Second) != 0 {
		t.Fatal("out-of-range window should be 0")
	}
}

func TestTimewiseJain(t *testing.T) {
	flows := buildTwoFlowRun(t)
	j := TimewiseJain(flows)
	// Two equal-rate manual flows: near-perfect fairness at all times.
	if j < 0.95 {
		t.Fatalf("timewise Jain %v for equal flows", j)
	}
	if TimewiseJain(nil) != 1 {
		t.Fatal("no-flow timewise Jain should be 1 (vacuous)")
	}
}

func TestConvergenceTime(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 9})
	l := n.AddLink(netsim.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 100_000})
	man := cc.NewManual(1e6)
	f := n.AddFlow(netsim.FlowConfig{Name: "ramp", Path: []*netsim.Link{l},
		CC: func() cc.Algorithm { return man }})
	n.Run(5 * time.Second)
	man.SetRate(9e6) // jumps to ~fair share at t=5s
	n.Run(15 * time.Second)

	got := ConvergenceTime(f, 0, 9e6, 0.8, 3)
	if got < 4*time.Second || got > 7*time.Second {
		t.Fatalf("convergence time %v, want ~5s", got)
	}
	if ConvergenceTime(f, 0, 100e6, 0.8, 3) != -1 {
		t.Fatal("unreachable share should report -1")
	}
}
