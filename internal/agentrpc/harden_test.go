package agentrpc

import (
	"io"
	"net"
	"testing"
	"time"
)

// panicPolicy panics when the first state value is negative — a stand-in
// for poisoned weights or buggy experiment code inside the service.
type panicPolicy struct{}

func (panicPolicy) Decide(state []float64) (float64, float64) {
	if len(state) > 0 && state[0] < 0 {
		panic("poisoned inference")
	}
	return 0.5, 0.5
}

// TestDialBackoffSuppressesDialStorm: with the service dead, a burst of
// decisions must not pay one connect timeout each — after the first failed
// dial, redials are suppressed until the backoff window expires.
func TestDialBackoffSuppressesDialStorm(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), constPolicy{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Decide([]float64{1}) // healthy round trip
	srv.Close()

	before := cl.DialAttempts()
	start := time.Now()
	for i := 0; i < 50; i++ {
		mu, delta := cl.Decide([]float64{1})
		if cl.RemoteDecisions() > 1 && (mu != 0.25 || delta != 0.75) {
			t.Fatalf("decision %d not from fallback: (%v, %v)", i, mu, delta)
		}
	}
	// 50 calls, each would previously have paid up to a full dial timeout.
	// With backoff, at most a handful of dials fit in the elapsed window
	// (jittered waits are at least half the nominal backoff, hence base/2).
	attempts := cl.DialAttempts() - before
	elapsed := time.Since(start)
	if max := 2 + int64(elapsed/(dialBackoffBase/2)); attempts > max {
		t.Fatalf("%d dial attempts in %v — backoff not suppressing the storm (max %d)",
			attempts, elapsed, max)
	}
	if cl.FallbackDecisions() == 0 {
		t.Fatal("no fallback decisions recorded")
	}
}

// TestDialBackoffJitterDesynchronizes: a fleet of clients entering backoff
// together must not redial in lockstep — each client's deterministic jitter
// stream spreads the first retry across [base/2, base).
func TestDialBackoffJitterDesynchronizes(t *testing.T) {
	const fleet = 16
	waits := make([]time.Duration, fleet)
	distinct := map[time.Duration]bool{}
	min, max := dialBackoffBase, time.Duration(0)
	for i := 0; i < fleet; i++ {
		c := &Client{rngState: uint64(i + 1)}
		w := c.jitterBackoff(dialBackoffBase)
		if w < dialBackoffBase/2 || w >= dialBackoffBase {
			t.Fatalf("seed %d: wait %v outside [base/2, base)", i+1, w)
		}
		waits[i] = w
		distinct[w] = true
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if len(distinct) < fleet-2 {
		t.Fatalf("only %d distinct waits across %d seeds — fleet still synchronized", len(distinct), fleet)
	}
	if spread := max - min; spread < dialBackoffBase/8 {
		t.Fatalf("waits clustered within %v — jitter too weak to desynchronize", spread)
	}
	// Determinism: the same seed replays the same wait sequence.
	a, b := &Client{rngState: 42}, &Client{rngState: 42}
	for i := 0; i < 10; i++ {
		if wa, wb := a.jitterBackoff(dialBackoffBase), b.jitterBackoff(dialBackoffBase); wa != wb {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, wa, wb)
		}
	}
}

// TestServerWriteDeadlineDropsStalledReader: a client that sends requests
// but never drains its socket must cost the server one connection, not a
// goroutine blocked in Write forever. net.Pipe is the vehicle because its
// writes are synchronous — a real TCP socket buffers a 17-byte response and
// the bug would never surface.
func TestServerWriteDeadlineDropsStalledReader(t *testing.T) {
	pl := newPipeListener()
	srv := NewServer(pl, echoPolicy{}, Config{WriteTimeout: 50 * time.Millisecond})
	defer srv.Close()

	conn, err := pl.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One decide request, then stall: never read the response.
	if _, err := conn.Write(appendRequest(nil, []float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.WriteDrops() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never dropped the stalled reader")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The drop must reclaim the connection goroutine.
	for srv.ActiveConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled connection still active after write drop")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientReconnectsAfterServerReturns: backoff must delay redials, not
// prevent them — when the service comes back, remote decisions resume.
func TestClientReconnectsAfterServerReturns(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cl, err := Dial(addr, constPolicy{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Decide([]float64{1})
	srv.Close()
	for i := 0; i < 3; i++ {
		cl.Decide([]float64{1}) // fail, enter backoff
	}

	srv2, err := Serve(addr, echoPolicy{})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	remoteBefore := cl.RemoteDecisions()
	deadline := time.Now().Add(10 * time.Second)
	for cl.RemoteDecisions() == remoteBefore {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected to the returned service")
		}
		cl.Decide([]float64{1})
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerSurvivesPanickingPolicy: a panic costs the offending connection
// only; the listener keeps serving and the client recovers by redialing.
func TestServerSurvivesPanickingPolicy(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", panicPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), constPolicy{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if mu, _ := cl.Decide([]float64{1}); mu != 0.5 {
		t.Fatalf("healthy decision answered %v, want 0.5", mu)
	}
	// Poisoned state: the server connection dies mid-request, the client
	// must fall back rather than hang or crash.
	if mu, delta := cl.Decide([]float64{-1}); mu != 0.25 || delta != 0.75 {
		t.Fatalf("poisoned decision (%v, %v), want the fallback (0.25, 0.75)", mu, delta)
	}
	if got := srv.Panics(); got != 1 {
		t.Fatalf("server recorded %d panics, want 1", got)
	}
	// The service itself must still be alive for a fresh (healthy) request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if mu, _ := cl.Decide([]float64{1}); mu == 0.5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never answered again after a policy panic")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDropsHungConnection: a connected peer that never sends a request
// must be reclaimed by the read deadline, not hold its goroutine forever.
func TestServerDropsHungConnection(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetReadTimeout(50 * time.Millisecond)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must close the connection, observed here as
	// EOF (or a reset) on our read within a few timeout periods.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil || err == io.ErrNoProgress {
		t.Fatalf("hung connection read returned %v, want closed-by-server", err)
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never dropped the hung connection")
	}
}
