package telemetry_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/agentrpc"
	"repro/internal/telemetry"
)

type fixedPolicy struct{ mu, delta float64 }

func (p fixedPolicy) Decide([]float64) (float64, float64) { return p.mu, p.delta }

// TestRPCInstrumentation wires a real client/server pair through the hub:
// the latency hook feeds the histogram and remote/fallback counters, and
// ExportRPCServer mirrors the server's own accounting onto the registry.
func TestRPCInstrumentation(t *testing.T) {
	srv, err := agentrpc.Serve("127.0.0.1:0", fixedPolicy{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := agentrpc.Dial(srv.Addr(), fixedPolicy{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hub := &telemetry.Hub{Registry: telemetry.NewRegistry()}
	hub.ExportRPCServer(srv)
	cl.SetLatencyHook(hub.RPCClientHook())

	for i := 0; i < 3; i++ {
		if mu, _ := cl.Decide([]float64{0.1, 0.2}); mu != 0.5 {
			t.Fatalf("decision %d: mu = %v, want remote 0.5", i, mu)
		}
	}
	srv.Close() // force the fallback path
	if mu, _ := cl.Decide([]float64{0.1}); mu != -1 {
		t.Fatalf("post-close decision mu = %v, want fallback -1", mu)
	}

	r := hub.Registry
	if got := r.Counter("rpc_remote_decisions_total", "").Value(); got != 3 {
		t.Errorf("rpc_remote_decisions_total = %d, want 3", got)
	}
	if got := r.Counter("rpc_fallback_decisions_total", "").Value(); got != 1 {
		t.Errorf("rpc_fallback_decisions_total = %d, want 1", got)
	}
	if got := r.Histogram("rpc_decide_seconds", "", nil).Count(); got != 4 {
		t.Errorf("rpc_decide_seconds count = %d, want 4", got)
	}

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rpc_server_decisions 3") {
		t.Errorf("exposition missing live server gauge:\n%s", b.String())
	}
}

// TestRPCDaemonInstrumentation exports the full daemon surface: batching,
// hot-swap, and lazily registered per-tenant decision gauges.
func TestRPCDaemonInstrumentation(t *testing.T) {
	srv, err := agentrpc.Serve("127.0.0.1:0", fixedPolicy{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hub := &telemetry.Hub{Registry: telemetry.NewRegistry()}
	hub.ExportRPCDaemon(srv)

	// One labelled tenant (hook fires lazily on its hello) and one swap.
	cl, err := agentrpc.DialConfig(srv.Addr(), fixedPolicy{-1, 0}, agentrpc.ClientConfig{Tenant: "flow a"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		if mu, _ := cl.Decide([]float64{0.1}); mu != 0.5 {
			t.Fatalf("decision %d: mu = %v", i, mu)
		}
	}
	if _, err := srv.Swap(fixedPolicy{0.7, 0.25}); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := hub.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"rpc_server_batched_requests 2",
		"rpc_server_swaps 1",
		"rpc_server_policy_version 2",
		// Label sanitized for the exposition; sanitization altered it, so it
		// carries the disambiguating hash of the original "flow a".
		"rpc_tenant_decisions_flow_a_fc43aa 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
