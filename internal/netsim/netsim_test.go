package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/traces"
)

// buildSingle creates one flow over one link and returns (net, link, flow).
func buildSingle(t *testing.T, lc LinkConfig, fc FlowConfig) (*Network, *Link, *Flow) {
	t.Helper()
	n := New(Config{Seed: 1})
	l := n.AddLink(lc)
	fc.Path = []*Link{l}
	if fc.Name == "" {
		fc.Name = "f0"
	}
	f := n.AddFlow(fc)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n, l, f
}

func TestSingleFlowFillsLink(t *testing.T) {
	// 10 Mbps, 20 ms one-way. A manual sender at 20 Mbps must saturate the
	// link: utilization ~1, and the observed throughput equals capacity.
	n, l, f := buildSingle(t,
		LinkConfig{Rate: 10e6, Delay: 20 * time.Millisecond, BufferBytes: 100_000},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(20e6) }})
	n.Run(10 * time.Second)

	if u := l.Utilization(10 * time.Second); u < 0.95 || u > 1.01 {
		t.Fatalf("utilization %v, want ~1", u)
	}
	s := f.Stats()
	if thr := s.AvgThroughputBps; math.Abs(thr-10e6)/10e6 > 0.05 {
		t.Fatalf("avg throughput %v, want ~10e6", thr)
	}
	// Oversending into a finite buffer must drop packets.
	if s.LostPackets == 0 {
		t.Fatal("no losses despite 2x oversending into a finite buffer")
	}
}

func TestUnderloadedLinkDeliversOfferedRate(t *testing.T) {
	n, _, f := buildSingle(t,
		LinkConfig{Rate: 100e6, Delay: 10 * time.Millisecond, BufferBytes: 1_000_000},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(30e6) }})
	n.Run(10 * time.Second)
	s := f.Stats()
	if math.Abs(s.AvgThroughputBps-30e6)/30e6 > 0.05 {
		t.Fatalf("throughput %v, want ~30e6", s.AvgThroughputBps)
	}
	if s.LostPackets != 0 {
		t.Fatalf("unexpected losses on an underloaded link: %d", s.LostPackets)
	}
	// RTT should stay at base (40 ms) plus a hair of serialization.
	if s.AvgRTT < 20*time.Millisecond || s.AvgRTT > 22*time.Millisecond {
		t.Fatalf("avg RTT %v, want ~20ms (base 2*10ms)", s.AvgRTT)
	}
}

func TestRTTReflectsQueueing(t *testing.T) {
	// Saturating sender: the queue fills, so RTT = base + buffer/capacity.
	const bufBytes = 125_000 // at 10 Mbps: 100 ms of queueing
	n, _, f := buildSingle(t,
		LinkConfig{Rate: 10e6, Delay: 15 * time.Millisecond, BufferBytes: bufBytes},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(50e6) }})
	n.Run(10 * time.Second)
	s := f.Stats()
	// Steady state: queue pinned at ~full -> RTT ~ 30ms + 100ms.
	series := f.Series()
	late := series[len(series)/2:]
	var sum time.Duration
	var cnt int
	for _, p := range late {
		if p.AvgRTT > 0 {
			sum += p.AvgRTT
			cnt++
		}
	}
	avgLate := sum / time.Duration(cnt)
	if avgLate < 110*time.Millisecond || avgLate > 140*time.Millisecond {
		t.Fatalf("late-half RTT %v, want ~130ms (30ms base + 100ms queue)", avgLate)
	}
	if s.MinRTT < 30*time.Millisecond {
		t.Fatalf("min RTT %v below propagation floor", s.MinRTT)
	}
}

func TestPacketConservation(t *testing.T) {
	n, l, f := buildSingle(t,
		LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond, BufferBytes: 30_000, LossRate: 0.01},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(15e6) }})
	n.Run(20 * time.Second)
	// Let in-flight feedback drain.
	n.Run(21 * time.Second)
	s := f.Stats()
	ls := l.Stats()
	if s.AckedPackets > s.SentPackets {
		t.Fatalf("acked %d > sent %d", s.AckedPackets, s.SentPackets)
	}
	drops := ls.OverflowDrops + ls.RandomDrops
	// Every sent packet is eventually acked or dropped (modulo packets still
	// in flight at the horizon, bounded by the window).
	missing := s.SentPackets - s.AckedPackets - drops
	if missing < 0 || missing > 2000 {
		t.Fatalf("conservation violated: sent=%d acked=%d drops=%d", s.SentPackets, s.AckedPackets, drops)
	}
	if ls.RandomDrops == 0 {
		t.Fatal("1% random loss produced no drops")
	}
}

func TestRandomLossRateCalibrated(t *testing.T) {
	n, l, f := buildSingle(t,
		LinkConfig{Rate: 50e6, Delay: 5 * time.Millisecond, BufferBytes: 10_000_000, LossRate: 0.02},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(20e6) }})
	n.Run(30 * time.Second)
	s := f.Stats()
	arrived := float64(l.Stats().DeliveredPackets + l.Stats().RandomDrops)
	got := float64(l.Stats().RandomDrops) / arrived
	if math.Abs(got-0.02) > 0.005 {
		t.Fatalf("random loss rate %v, want ~0.02", got)
	}
	if math.Abs(s.LossRate-0.02) > 0.01 {
		t.Fatalf("flow loss rate %v, want ~0.02", s.LossRate)
	}
}

func TestTwoFlowsShareCapacity(t *testing.T) {
	// Two identical paced flows at 20 Mbps each over a 10 Mbps bottleneck
	// drain the queue at the same per-flow rate: ~5 Mbps each.
	n := New(Config{Seed: 2})
	l := n.AddLink(LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 60_000})
	f1 := n.AddFlow(FlowConfig{Name: "a", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(20e6) }})
	f2 := n.AddFlow(FlowConfig{Name: "b", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(20e6) }})
	n.Run(20 * time.Second)
	t1 := f1.Stats().AvgThroughputBps
	t2 := f2.Stats().AvgThroughputBps
	if math.Abs(t1-t2)/(t1+t2) > 0.05 {
		t.Fatalf("equal-rate flows got unequal shares: %v vs %v", t1, t2)
	}
	if math.Abs(t1+t2-10e6)/10e6 > 0.05 {
		t.Fatalf("combined throughput %v, want ~10e6", t1+t2)
	}
}

func TestProportionalShareUnderOverload(t *testing.T) {
	// With DropTail and Poisson-ish arrivals, flows receive roughly
	// send-rate-proportional shares (Eq. 2 of the paper).
	n := New(Config{Seed: 3})
	l := n.AddLink(LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 60_000})
	f1 := n.AddFlow(FlowConfig{Name: "a", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(30e6) }})
	f2 := n.AddFlow(FlowConfig{Name: "b", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(10e6) }})
	n.Run(20 * time.Second)
	t1 := f1.Stats().AvgThroughputBps
	t2 := f2.Stats().AvgThroughputBps
	ratio := t1 / t2
	if ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("3:1 offered load produced share ratio %v", ratio)
	}
}

func TestFlowStartStop(t *testing.T) {
	n, _, f := buildSingle(t,
		LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond, BufferBytes: 100_000},
		FlowConfig{
			Start:    2 * time.Second,
			Duration: 3 * time.Second,
			CC:       func() cc.Algorithm { return cc.NewManual(5e6) },
		})
	n.Run(10 * time.Second)
	s := f.Stats()
	if s.ActiveFor != 3*time.Second {
		t.Fatalf("active for %v, want 3s", s.ActiveFor)
	}
	// ~5 Mbps for 3 s = 1.875 MB.
	wantBytes := 5e6 / 8 * 3
	if math.Abs(float64(s.AckedBytes)-wantBytes)/wantBytes > 0.05 {
		t.Fatalf("acked %d bytes, want ~%v", s.AckedBytes, wantBytes)
	}
	// No series points before start or after stop (+ one tick of slack).
	for _, p := range f.Series() {
		if p.T < 2*time.Second || p.T > 5*time.Second+300*time.Millisecond {
			t.Fatalf("series point at %v outside active window", p.T)
		}
	}
}

func TestHeterogeneousBaseRTT(t *testing.T) {
	n := New(Config{Seed: 4})
	l := n.AddLink(LinkConfig{Rate: 100e6, Delay: 10 * time.Millisecond, BufferBytes: 1_000_000})
	f1 := n.AddFlow(FlowConfig{Name: "near", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(1e6) }})
	f2 := n.AddFlow(FlowConfig{Name: "far", Path: []*Link{l}, ExtraOneWay: 40 * time.Millisecond,
		CC: func() cc.Algorithm { return cc.NewManual(1e6) }})
	if f1.BaseRTT() != 20*time.Millisecond {
		t.Fatalf("near base RTT %v, want 20ms", f1.BaseRTT())
	}
	if f2.BaseRTT() != 100*time.Millisecond {
		t.Fatalf("far base RTT %v, want 100ms", f2.BaseRTT())
	}
	n.Run(5 * time.Second)
	if f1.Stats().MinRTT >= f2.Stats().MinRTT {
		t.Fatalf("min RTTs %v >= %v, want near < far", f1.Stats().MinRTT, f2.Stats().MinRTT)
	}
	if f2.Stats().MinRTT < 100*time.Millisecond {
		t.Fatalf("far flow min RTT %v below its propagation floor", f2.Stats().MinRTT)
	}
}

func TestMultiBottleneckPath(t *testing.T) {
	// Parking lot: flow A crosses both links; the second is the bottleneck.
	n := New(Config{Seed: 5})
	l1 := n.AddLink(LinkConfig{Rate: 100e6, Delay: 5 * time.Millisecond, BufferBytes: 500_000})
	l2 := n.AddLink(LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond, BufferBytes: 100_000})
	f := n.AddFlow(FlowConfig{Name: "a", Path: []*Link{l1, l2}, CC: func() cc.Algorithm { return cc.NewManual(50e6) }})
	n.Run(10 * time.Second)
	s := f.Stats()
	if math.Abs(s.AvgThroughputBps-10e6)/10e6 > 0.05 {
		t.Fatalf("throughput %v, want bottleneck 10e6", s.AvgThroughputBps)
	}
	// Base RTT over both links: 2*(5+5) = 20 ms.
	if f.BaseRTT() != 20*time.Millisecond {
		t.Fatalf("base RTT %v, want 20ms", f.BaseRTT())
	}
}

func TestTraceDrivenLink(t *testing.T) {
	tr := traces.NewStep([]traces.Point{
		{At: 0, Rate: 10e6},
		{At: 5 * time.Second, Rate: 2e6},
	})
	n := New(Config{Seed: 6})
	l := n.AddLink(LinkConfig{Trace: tr, Delay: 5 * time.Millisecond, BufferBytes: 50_000})
	f := n.AddFlow(FlowConfig{Name: "a", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(50e6) }})
	n.Run(10 * time.Second)
	series := f.Series()
	var early, late, earlyN, lateN float64
	for _, p := range series {
		if p.T < 5*time.Second {
			early += p.ThroughputBps
			earlyN++
		} else if p.T > 6*time.Second {
			late += p.ThroughputBps
			lateN++
		}
	}
	early /= earlyN
	late /= lateN
	if math.Abs(early-10e6)/10e6 > 0.1 {
		t.Fatalf("pre-step throughput %v, want ~10e6", early)
	}
	if math.Abs(late-2e6)/2e6 > 0.15 {
		t.Fatalf("post-step throughput %v, want ~2e6", late)
	}
}

func TestLargePacketSizeScaling(t *testing.T) {
	// MSS scaling for high-speed runs: 1 Gbps with 15000-byte packets.
	n, l, _ := buildSingle(t,
		LinkConfig{Rate: 1e9, Delay: 5 * time.Millisecond, BufferBytes: 10_000_000},
		FlowConfig{PacketSize: 15000, CC: func() cc.Algorithm { return cc.NewManual(2e9) }})
	n.Run(3 * time.Second)
	if u := l.Utilization(3 * time.Second); u < 0.95 {
		t.Fatalf("1 Gbps utilization %v with scaled MSS", u)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		n, l, f := buildSingle(t,
			LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 40_000, LossRate: 0.005},
			FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(15e6) }})
		n.Run(5 * time.Second)
		return f.Stats().AckedBytes, l.Stats().RandomDrops
	}
	a1, d1 := run()
	a2, d2 := run()
	if a1 != a2 || d1 != d2 {
		t.Fatalf("same-seed runs diverged: (%d,%d) vs (%d,%d)", a1, d1, a2, d2)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	n := New(Config{})
	if err := n.Validate(); err == nil {
		t.Error("empty network validated")
	}
	l := n.AddLink(LinkConfig{Rate: 0, BufferBytes: 100})
	n.AddFlow(FlowConfig{Name: "x", Path: []*Link{l}, CC: func() cc.Algorithm { return cc.NewManual(1e6) }})
	if err := n.Validate(); err == nil {
		t.Error("zero-capacity link validated")
	}
}

func TestAddFlowPanicsOnMissingPath(t *testing.T) {
	n := New(Config{})
	defer func() {
		if recover() == nil {
			t.Error("empty path did not panic")
		}
	}()
	n.AddFlow(FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(1) }})
}

func TestQueueHighWaterMark(t *testing.T) {
	n, l, _ := buildSingle(t,
		LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond, BufferBytes: 50_000},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(30e6) }})
	n.Run(5 * time.Second)
	hw := l.Stats().MaxQueueBytes
	if hw < 45_000 || hw > 50_000 {
		t.Fatalf("queue high-water %d, want near buffer size 50000", hw)
	}
}

func TestSeriesSendRateTracksManualRate(t *testing.T) {
	n, _, f := buildSingle(t,
		LinkConfig{Rate: 100e6, Delay: 10 * time.Millisecond, BufferBytes: 1_000_000},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(8e6) }})
	n.Run(5 * time.Second)
	pts := f.Series()
	var sum float64
	for _, p := range pts[2:] {
		// Individual 200 ms windows carry Poisson pacing noise; each must
		// still be in the right ballpark.
		if math.Abs(p.SendRateBps-8e6)/8e6 > 0.5 {
			t.Fatalf("send rate %v at %v, want ~8e6", p.SendRateBps, p.T)
		}
		sum += p.SendRateBps
	}
	mean := sum / float64(len(pts)-2)
	if math.Abs(mean-8e6)/8e6 > 0.05 {
		t.Fatalf("mean send rate %v, want ~8e6", mean)
	}
}

func TestJitterInflatesRTTAndPreservesConservation(t *testing.T) {
	n, l, f := buildSingle(t,
		LinkConfig{Rate: 20e6, Delay: 10 * time.Millisecond, BufferBytes: 200_000, JitterStd: 3 * time.Millisecond},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(10e6) }})
	n.Run(10 * time.Second)
	s := f.Stats()
	// Mean extra one-way delay of |N(0,3ms)| is ~2.4ms.
	if s.AvgRTT < 21*time.Millisecond || s.AvgRTT > 28*time.Millisecond {
		t.Fatalf("jittered avg RTT %v, want ~22-24ms", s.AvgRTT)
	}
	drops := l.Stats().OverflowDrops + l.Stats().RandomDrops
	if s.AckedPackets+drops > s.SentPackets {
		t.Fatalf("conservation violated under jitter")
	}
	if s.LostPackets != 0 {
		t.Fatalf("jitter produced loss: %d", s.LostPackets)
	}
}

func TestZeroJitterIsExactPropagation(t *testing.T) {
	n, _, f := buildSingle(t,
		LinkConfig{Rate: 100e6, Delay: 10 * time.Millisecond, BufferBytes: 500_000},
		FlowConfig{CC: func() cc.Algorithm { return cc.NewManual(5e6) }})
	n.Run(3 * time.Second)
	if f.Stats().MinRTT < 20*time.Millisecond || f.Stats().MinRTT > 21*time.Millisecond {
		t.Fatalf("min RTT %v, want ~20ms + serialization", f.Stats().MinRTT)
	}
}

func TestRandomScenarioInvariants(t *testing.T) {
	// Fuzz the emulator across random scenarios; physics invariants must
	// hold in all of them: conservation, utilization ≤ 1, RTT ≥ propagation.
	if err := quick.Check(func(seed uint64, rateRaw, lossRaw, bufRaw, sendRaw uint16, flowsRaw uint8) bool {
		rate := 1e6 + float64(rateRaw%200)*1e6 // 1-200 Mbps
		loss := float64(lossRaw%30) / 1000     // 0-2.9%
		buf := 10_000 + int(bufRaw)*20         // 10KB-1.3MB
		nFlows := int(flowsRaw%4) + 1          // 1-4 flows
		n := New(Config{Seed: seed})
		l := n.AddLink(LinkConfig{Rate: rate, Delay: 10 * time.Millisecond, BufferBytes: buf, LossRate: loss})
		flows := make([]*Flow, nFlows)
		for i := range flows {
			send := 0.2*rate + float64(sendRaw%100)/100*rate
			flows[i] = n.AddFlow(FlowConfig{
				Name: "f", Path: []*Link{l},
				CC: func() cc.Algorithm { return cc.NewManual(send) },
			})
		}
		n.Run(3 * time.Second)
		if u := l.Utilization(3 * time.Second); u > 1.02 {
			t.Logf("utilization %v > 1", u)
			return false
		}
		drops := l.Stats().OverflowDrops + l.Stats().RandomDrops
		var sent, acked int64
		for _, f := range flows {
			s := f.Stats()
			sent += s.SentPackets
			acked += s.AckedPackets
			if s.AckedPackets > 0 && s.MinRTT < 20*time.Millisecond {
				t.Logf("min RTT %v below propagation", s.MinRTT)
				return false
			}
		}
		// inflight at the horizon is bounded by the windows (Manual: 1<<20
		// each, but practically by BDP+buffer); allow generous slack.
		missing := sent - acked - drops
		if missing < 0 {
			t.Logf("acked+drops exceed sent: %d", missing)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
