// Package cctest holds emulator-driven integration tests for the classic
// congestion-control schemes: each scheme runs on realistic bottlenecks and
// must exhibit its published macroscopic behaviour (utilization, queueing,
// fairness convergence, loss response).
package cctest

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/bbr"
	"repro/internal/cc/copa"
	"repro/internal/cc/cubic"
	"repro/internal/cc/reno"
	"repro/internal/cc/vegas"
	"repro/internal/cc/vivace"
	"repro/internal/netsim"
	"repro/internal/simcheck"
)

// runSingle runs one flow of the given scheme over a bottleneck and returns
// (utilization, mean queuing delay ms in the second half, loss rate).
func runSingle(t *testing.T, mk func() cc.Algorithm, rate float64, owd time.Duration, bufBytes int, lossRate float64, horizon time.Duration) (float64, float64, float64) {
	t.Helper()
	n := netsim.New(netsim.Config{Seed: 42})
	l := n.AddLink(netsim.LinkConfig{Rate: rate, Delay: owd, BufferBytes: bufBytes, LossRate: lossRate})
	f := n.AddFlow(netsim.FlowConfig{Name: "f", Path: []*netsim.Link{l}, CC: mk})
	ck := simcheck.Attach(n)
	n.Run(horizon)
	if vs := ck.Finish(); len(vs) > 0 {
		t.Fatalf("invariant violations: %v", vs)
	}

	util := l.Utilization(horizon)
	base := f.BaseRTT()
	var qSum float64
	var qN int
	for _, p := range f.Series() {
		if p.T > horizon/2 && p.AvgRTT > 0 {
			qSum += float64(p.AvgRTT-base) / float64(time.Millisecond)
			qN++
		}
	}
	q := 0.0
	if qN > 0 {
		q = qSum / float64(qN)
	}
	return util, q, f.Stats().LossRate
}

// bdpBytes computes the bandwidth-delay product in bytes for rate (bits/s)
// and round-trip time.
func bdpBytes(rate float64, rtt time.Duration) int {
	return int(rate / 8 * rtt.Seconds())
}

func TestCubicSaturatesCleanLink(t *testing.T) {
	buf := bdpBytes(50e6, 30*time.Millisecond)
	util, _, _ := runSingle(t, func() cc.Algorithm { return cubic.New() }, 50e6, 15*time.Millisecond, buf, 0, 60*time.Second)
	if util < 0.85 {
		t.Fatalf("cubic utilization %v on a clean 50 Mbps link", util)
	}
}

func TestCubicCollapsesOnLossyLink(t *testing.T) {
	// The paper (Fig. 10c) relies on CUBIC's inability to distinguish
	// random loss from congestion: at 1% loss it badly underutilizes.
	buf := bdpBytes(50e6, 30*time.Millisecond)
	util, _, _ := runSingle(t, func() cc.Algorithm { return cubic.New() }, 50e6, 15*time.Millisecond, buf, 0.01, 60*time.Second)
	if util > 0.6 {
		t.Fatalf("cubic utilization %v at 1%% loss, expected collapse", util)
	}
}

func TestCubicFillsBufferQueue(t *testing.T) {
	// Loss-based control keeps the buffer mostly full: queueing delay must
	// be a large fraction of the buffer drain time.
	buf := 4 * bdpBytes(20e6, 30*time.Millisecond) // 4 BDP = 120 ms drain
	_, q, _ := runSingle(t, func() cc.Algorithm { return cubic.New() }, 20e6, 15*time.Millisecond, buf, 0, 60*time.Second)
	if q < 40 {
		t.Fatalf("cubic queuing delay %v ms on a 4-BDP buffer, want deep queue", q)
	}
}

func TestRenoSaturatesCleanLink(t *testing.T) {
	buf := bdpBytes(20e6, 30*time.Millisecond)
	util, _, _ := runSingle(t, func() cc.Algorithm { return reno.New() }, 20e6, 15*time.Millisecond, buf, 0, 60*time.Second)
	if util < 0.75 {
		t.Fatalf("reno utilization %v", util)
	}
}

func TestVegasKeepsQueueShallow(t *testing.T) {
	buf := 4 * bdpBytes(20e6, 30*time.Millisecond)
	util, q, _ := runSingle(t, func() cc.Algorithm { return vegas.New() }, 20e6, 15*time.Millisecond, buf, 0, 60*time.Second)
	if util < 0.8 {
		t.Fatalf("vegas utilization %v", util)
	}
	// Vegas targets alpha..beta packets of queue: a few ms, not the 120 ms
	// the buffer would allow.
	if q > 15 {
		t.Fatalf("vegas queuing delay %v ms, want shallow queue", q)
	}
}

func TestBBRSaturatesWithBoundedQueue(t *testing.T) {
	buf := 8 * bdpBytes(50e6, 30*time.Millisecond)
	util, q, _ := runSingle(t, func() cc.Algorithm { return bbr.New() }, 50e6, 15*time.Millisecond, buf, 0, 60*time.Second)
	if util < 0.8 {
		t.Fatalf("bbr utilization %v", util)
	}
	// BBR bounds inflight to 2 BDP: the queue can hold ~1 BDP (30 ms), far
	// below the 240 ms the buffer would allow.
	if q > 60 {
		t.Fatalf("bbr queuing delay %v ms, want bounded", q)
	}
}

func TestBBRRobustToRandomLoss(t *testing.T) {
	buf := 2 * bdpBytes(50e6, 30*time.Millisecond)
	util, _, _ := runSingle(t, func() cc.Algorithm { return bbr.New() }, 50e6, 15*time.Millisecond, buf, 0.01, 60*time.Second)
	if util < 0.8 {
		t.Fatalf("bbr utilization %v at 1%% loss, should shrug it off", util)
	}
}

func TestCopaHighUtilLowDelay(t *testing.T) {
	buf := 4 * bdpBytes(20e6, 30*time.Millisecond)
	util, q, _ := runSingle(t, func() cc.Algorithm { return copa.New() }, 20e6, 15*time.Millisecond, buf, 0, 60*time.Second)
	if util < 0.7 {
		t.Fatalf("copa utilization %v", util)
	}
	if q > 40 {
		t.Fatalf("copa queuing delay %v ms", q)
	}
}

func TestVivaceConvergesToCapacity(t *testing.T) {
	buf := 2 * bdpBytes(50e6, 30*time.Millisecond)
	util, _, _ := runSingle(t, func() cc.Algorithm { return vivace.New(1) }, 50e6, 15*time.Millisecond, buf, 0, 60*time.Second)
	if util < 0.7 {
		t.Fatalf("vivace utilization %v", util)
	}
}

func TestVivaceToleratesRandomLoss(t *testing.T) {
	// Vivace's loss term is mild (11.35·x·L): ~1% random loss should not
	// collapse it the way it collapses CUBIC.
	buf := 2 * bdpBytes(50e6, 30*time.Millisecond)
	util, _, _ := runSingle(t, func() cc.Algorithm { return vivace.New(1) }, 50e6, 15*time.Millisecond, buf, 0.005, 60*time.Second)
	if util < 0.6 {
		t.Fatalf("vivace utilization %v at 0.5%% loss", util)
	}
}

// fairShareLate runs two same-scheme flows (second joins at t=30s) and
// returns their late-window throughput ratio (bigger/smaller).
func fairShareLate(t *testing.T, mk func(i int) cc.Algorithm, rate float64, horizon time.Duration) float64 {
	t.Helper()
	n := netsim.New(netsim.Config{Seed: 7})
	buf := bdpBytes(rate, 30*time.Millisecond) * 2
	l := n.AddLink(netsim.LinkConfig{Rate: rate, Delay: 15 * time.Millisecond, BufferBytes: buf})
	f1 := n.AddFlow(netsim.FlowConfig{Name: "a", Path: []*netsim.Link{l}, CC: func() cc.Algorithm { return mk(0) }})
	f2 := n.AddFlow(netsim.FlowConfig{Name: "b", Path: []*netsim.Link{l}, Start: 30 * time.Second, CC: func() cc.Algorithm { return mk(1) }})
	ck := simcheck.Attach(n)
	n.Run(horizon)
	if vs := ck.Finish(); len(vs) > 0 {
		t.Fatalf("invariant violations: %v", vs)
	}
	late := func(f *netsim.Flow) float64 {
		var sum float64
		var c int
		for _, p := range f.Series() {
			if p.T > horizon-30*time.Second {
				sum += p.ThroughputBps
				c++
			}
		}
		return sum / float64(c)
	}
	a, b := late(f1), late(f2)
	return math.Max(a, b) / math.Min(a, b)
}

func TestCubicFlowsConverge(t *testing.T) {
	ratio := fairShareLate(t, func(int) cc.Algorithm { return cubic.New() }, 30e6, 150*time.Second)
	if ratio > 1.6 {
		t.Fatalf("two cubic flows late-window ratio %v, want ≲1.6", ratio)
	}
}

func TestRenoFlowsConverge(t *testing.T) {
	ratio := fairShareLate(t, func(int) cc.Algorithm { return reno.New() }, 20e6, 150*time.Second)
	if ratio > 1.8 {
		t.Fatalf("two reno flows late-window ratio %v", ratio)
	}
}

func TestBBRFlowsRoughlyShare(t *testing.T) {
	ratio := fairShareLate(t, func(int) cc.Algorithm { return bbr.New() }, 30e6, 150*time.Second)
	if ratio > 2.5 {
		t.Fatalf("two bbr flows late-window ratio %v", ratio)
	}
}
