package agentrpc

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultReadTimeout bounds how long a connection may sit idle between
// requests before the server reclaims it. Healthy datapaths decide every
// control interval (~30 ms); a connection silent for minutes is a hung or
// half-closed peer holding a goroutine hostage.
const defaultReadTimeout = 2 * time.Minute

// Serving defaults; see Config.
const (
	defaultMaxBatch     = 64
	defaultBatchDelay   = 200 * time.Microsecond
	defaultWriteTimeout = 2 * time.Second
	defaultWaitTimeout  = time.Second
)

// Config tunes the inference daemon. The zero value selects the defaults.
type Config struct {
	// MaxBatch is the largest minibatch one policy execution may serve; a
	// batch is flushed the moment it fills.
	MaxBatch int
	// BatchDelay is the coalescing latency budget: after the first request
	// of a batch arrives, the batcher waits at most this long for the batch
	// to fill before executing what it has.
	BatchDelay time.Duration
	// MaxQueue bounds the admitted-but-unexecuted request queue. A request
	// arriving with the queue full is shed with a typed BUSY response
	// instead of waiting. Zero selects 4×MaxBatch; negative means no queue
	// at all (every request not immediately claimed by the batcher is shed
	// — a test knob for BUSY storms).
	MaxQueue int
	// ReadTimeout is the per-connection idle limit between requests
	// (defaultReadTimeout when zero; SetReadTimeout(0) disables it).
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write, so a client that stops
	// draining its socket costs one connection, not a goroutine forever.
	WriteTimeout time.Duration
	// WaitTimeout bounds how long a connection waits for the batcher to
	// answer its request before giving up with a typed ERR response — the
	// per-request serving deadline.
	WaitTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = defaultMaxBatch
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = defaultBatchDelay
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 4 * c.MaxBatch
	case c.MaxQueue < 0:
		c.MaxQueue = 0 // unbuffered: shed unless the batcher is receiving
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = defaultReadTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = defaultWriteTimeout
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = defaultWaitTimeout
	}
	return c
}

// ErrUnhealthyPolicy reports a Swap candidate that failed the health probe
// (panicked or produced non-finite output); the serving version is kept.
var ErrUnhealthyPolicy = errors.New("agentrpc: policy failed the health probe")

// policyVersion is one immutable entry in the hot-swap chain. prev links to
// the version it replaced so a runtime non-finite guard can roll back.
type policyVersion struct {
	id    int64
	p     Policy
	batch BatchDecider // non-nil when p implements the batched fast path
	dim   int          // batch input dimension (0 when batch is nil)
	prev  *policyVersion
}

func newPolicyVersion(id int64, p Policy, prev *policyVersion) *policyVersion {
	pv := &policyVersion{id: id, p: p, prev: prev}
	if bd, ok := p.(BatchDecider); ok {
		pv.batch = bd
		pv.dim = bd.InputDim()
	}
	return pv
}

// pending is one admitted request travelling from a connection goroutine to
// the batcher and back. The connection goroutine owns it except between
// enqueue and the done signal; if the wait deadline expires first, the
// goroutine abandons it (the batcher's eventual done send lands in the
// buffered channel and the object is garbage).
type pending struct {
	state     []float64
	mu, delta float64
	status    byte
	done      chan struct{}
}

func newPending() *pending {
	return &pending{state: make([]float64, 0, 64), done: make(chan struct{}, 1)}
}

// Server is the multi-tenant inference daemon around a hot-swappable Policy.
type Server struct {
	cfg   Config // immutable after withDefaults (ReadTimeout lives under mu)
	ln    net.Listener
	pv    atomic.Pointer[policyVersion]
	queue chan *pending

	mu          sync.Mutex
	closed      bool
	draining    bool
	readTimeout time.Duration
	conns       map[net.Conn]struct{}
	tenants     map[string]*atomic.Int64
	tenantHook  func(name string)

	connWG     sync.WaitGroup
	batchDone  chan struct{}
	closeQueue sync.Once

	// Serving counters (see the accessor docs).
	decisions       atomic.Int64
	batches         atomic.Int64
	batchedRequests atomic.Int64
	shed            atomic.Int64
	panics          atomic.Int64
	nonfinite       atomic.Int64
	swaps           atomic.Int64
	rollbacks       atomic.Int64
	timeouts        atomic.Int64
	writeDrops      atomic.Int64
}

// Serve starts a daemon with default Config on addr ("127.0.0.1:0" for an
// ephemeral port).
func Serve(addr string, p Policy) (*Server, error) {
	return ServeConfig(addr, p, Config{})
}

// ServeConfig starts a daemon on addr with the given tuning.
func ServeConfig(addr string, p Policy, cfg Config) (*Server, error) {
	if p == nil {
		return nil, errors.New("agentrpc: nil policy")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServer(ln, p, cfg), nil
}

// NewServer runs a daemon over an existing listener (chaos tests inject
// fault-wrapped and in-memory listeners here). The server owns ln.
func NewServer(ln net.Listener, p Policy, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		ln:          ln,
		queue:       make(chan *pending, cfg.MaxQueue),
		readTimeout: cfg.ReadTimeout,
		conns:       map[net.Conn]struct{}{},
		tenants:     map[string]*atomic.Int64{},
		batchDone:   make(chan struct{}),
	}
	s.pv.Store(newPolicyVersion(1, p, nil))
	go s.batchLoop()
	go s.acceptLoop()
	return s
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetReadTimeout changes the per-request idle limit (0 disables it). It
// applies to connections accepted after the call.
func (s *Server) SetReadTimeout(d time.Duration) {
	s.mu.Lock()
	s.readTimeout = d
	s.mu.Unlock()
}

// Decisions reports how many inference requests have been answered OK.
func (s *Server) Decisions() int64 { return s.decisions.Load() }

// Batches reports how many policy executions served those decisions; the
// coalescing ratio is BatchedRequests()/Batches().
func (s *Server) Batches() int64 { return s.batches.Load() }

// BatchedRequests reports how many requests entered batch execution.
func (s *Server) BatchedRequests() int64 { return s.batchedRequests.Load() }

// Shed reports how many requests admission control answered with BUSY.
func (s *Server) Shed() int64 { return s.shed.Load() }

// Panics reports how many batch executions died in a panicking policy (each
// costs the batch a typed ERR response, never the daemon).
func (s *Server) Panics() int64 { return s.panics.Load() }

// NonFinite reports decisions suppressed by the non-finite output guard.
func (s *Server) NonFinite() int64 { return s.nonfinite.Load() }

// Swaps reports successful policy hot-swaps.
func (s *Server) Swaps() int64 { return s.swaps.Load() }

// Rollbacks reports automatic reversions to the previous policy version
// after a swapped-in policy tripped the non-finite guard.
func (s *Server) Rollbacks() int64 { return s.rollbacks.Load() }

// Timeouts reports requests whose batch execution outlived WaitTimeout.
func (s *Server) Timeouts() int64 { return s.timeouts.Load() }

// WriteDrops reports connections dropped by the response write deadline.
func (s *Server) WriteDrops() int64 { return s.writeDrops.Load() }

// PolicyVersion reports the id of the currently serving policy (the version
// installed at construction is 1; every successful Swap increments it).
func (s *Server) PolicyVersion() int64 { return s.pv.Load().id }

// QueueDepth reports how many admitted requests await batch execution.
func (s *Server) QueueDepth() int { return len(s.queue) }

// ActiveConns reports the number of currently served connections.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// TenantDecisions reports decisions served for one tenant label.
func (s *Server) TenantDecisions(name string) int64 {
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t == nil {
		return 0
	}
	return t.Load()
}

// Tenants lists the tenant labels seen so far, sorted.
func (s *Server) Tenants() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// OnTenant registers fn to run once per tenant label — immediately for the
// labels already seen, then on each first hello of a new one. The telemetry
// layer uses it to lazily register per-tenant gauges.
func (s *Server) OnTenant(fn func(name string)) {
	s.mu.Lock()
	s.tenantHook = fn
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		fn(n)
	}
}

// tenant returns (creating if needed) the counter for a tenant label.
func (s *Server) tenant(name string) *atomic.Int64 {
	s.mu.Lock()
	t, ok := s.tenants[name]
	var hook func(string)
	if !ok {
		t = &atomic.Int64{}
		s.tenants[name] = t
		hook = s.tenantHook
	}
	s.mu.Unlock()
	if hook != nil {
		hook(name)
	}
	return t
}

// Swap installs a new policy version after a health probe: the candidate
// must answer a canonical probe batch with finite outputs and no panic, or
// the swap is refused with ErrUnhealthyPolicy and the serving version is
// untouched. On success the new version starts serving immediately and the
// returned id identifies it; the previous version is retained for automatic
// rollback should the runtime non-finite guard trip.
func (s *Server) Swap(p Policy) (int64, error) {
	if p == nil {
		return 0, errors.New("agentrpc: nil policy")
	}
	if err := probePolicy(p); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrUnhealthyPolicy, err)
	}
	for {
		cur := s.pv.Load()
		next := newPolicyVersion(cur.id+1, p, cur)
		if s.pv.CompareAndSwap(cur, next) {
			s.swaps.Add(1)
			return next.id, nil
		}
	}
}

// probePolicy exercises a candidate policy on canonical states (zeros, a
// small positive ramp, an alternating ± pattern) through both the scalar
// and, when implemented, the batched path. Any panic or non-finite output
// fails the probe.
func probePolicy(p Policy) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe panicked: %v", r)
		}
	}()
	dim := 16
	if bd, ok := p.(BatchDecider); ok {
		if d := bd.InputDim(); d > 0 && d <= maxStateDim {
			dim = d
		}
	}
	probes := make([][]float64, 3)
	for i := range probes {
		probes[i] = make([]float64, dim)
	}
	for j := 0; j < dim; j++ {
		probes[1][j] = 0.01 * float64(j+1)
		probes[2][j] = 0.5
		if j%2 == 1 {
			probes[2][j] = -0.5
		}
	}
	for _, st := range probes {
		mu, delta := p.Decide(st)
		if !finite(mu) || !finite(delta) {
			return fmt.Errorf("non-finite scalar decision (%v, %v)", mu, delta)
		}
	}
	if bd, ok := p.(BatchDecider); ok {
		x := make([]float64, 0, len(probes)*dim)
		for _, st := range probes {
			x = append(x, st...)
		}
		mus := make([]float64, len(probes))
		deltas := make([]float64, len(probes))
		bd.DecideBatch(x, len(probes), mus, deltas)
		for i := range mus {
			if !finite(mus[i]) || !finite(deltas[i]) {
				return fmt.Errorf("non-finite batch decision row %d (%v, %v)", i, mus[i], deltas[i])
			}
		}
	}
	return nil
}

// rollbackFrom reverts to the version pv replaced. A CAS guards against
// racing rollbacks and concurrent Swaps; the founding version (no prev) is
// never rolled back — with nowhere to go, the guard keeps answering ERR and
// clients fall back locally.
func (s *Server) rollbackFrom(pv *policyVersion) {
	if pv.prev == nil {
		return
	}
	if s.pv.CompareAndSwap(pv, pv.prev) {
		s.rollbacks.Add(1)
	}
}

// Close abruptly stops the daemon: listener and connections are torn down,
// then the batcher is stopped once every connection goroutine has exited.
// In-flight requests still get their done signal (the batcher outlives the
// connections), their responses just have nowhere to go.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.connWG.Wait()
	s.closeQueue.Do(func() { close(s.queue) })
	<-s.batchDone
	return err
}

// Drain shuts the daemon down gracefully: stop accepting, let each
// connection finish (and be answered for) its in-flight request, flush the
// remaining batches, then close. Connections blocked reading their next
// request are released immediately by an expired read deadline — a half-read
// frame is not yet in flight. Connections that have not finished within
// timeout are closed forcibly.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	err := s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.closeQueue.Do(func() { close(s.queue) })
	<-s.batchDone
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn owns one connection: read a frame, admit it (or shed with
// BUSY), wait for the batcher under the serving deadline, write the response
// under the write deadline. One request is in flight per connection, so the
// pending object and its state buffer are reused across requests.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.connWG.Done()
	}()
	dec := newRequestReader(conn)
	p := newPending()
	wait := time.NewTimer(time.Hour)
	if !wait.Stop() {
		<-wait.C
	}
	var tenant *atomic.Int64
	var resp []byte
	for {
		// The deadline is set under the same lock Drain uses to expire every
		// connection's read: either this loop observes draining and returns,
		// or Drain's immediate deadline lands after ours and wins.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return
		}
		var deadline time.Time // zero clears any previous deadline
		if s.readTimeout > 0 {
			deadline = time.Now().Add(s.readTimeout)
		}
		err := conn.SetReadDeadline(deadline)
		s.mu.Unlock()
		if err != nil {
			return
		}
		f, err := dec.next()
		if err != nil {
			return // io error, idle timeout, drain, or protocol violation
		}
		switch f.kind {
		case frameHello:
			tenant = s.tenant(f.tenant)
			continue
		case framePing:
			if !s.writeResponse(conn, &resp, statusOK, 0, 0) {
				return
			}
			continue
		}
		p.state = append(p.state[:0], f.state...)

		// Admission control: a full queue sheds with a typed BUSY response
		// instead of stalling the datapath's control loop.
		select {
		case s.queue <- p:
		default:
			s.shed.Add(1)
			if !s.writeResponse(conn, &resp, statusBusy, 0, 0) {
				return
			}
			continue
		}

		// The serving deadline: if the batcher cannot answer in time, give
		// up with a typed ERR. The batcher still owns the abandoned pending
		// (its late done signal lands in the buffered channel), so the
		// connection switches to a fresh one.
		wait.Reset(s.cfg.WaitTimeout)
		status, mu, delta := statusErr, 0.0, 0.0
		select {
		case <-p.done:
			status, mu, delta = p.status, p.mu, p.delta
			if !wait.Stop() {
				<-wait.C
			}
		case <-wait.C:
			s.timeouts.Add(1)
			p = newPending()
		}
		if status == statusOK {
			s.decisions.Add(1)
			if tenant != nil {
				tenant.Add(1)
			}
		}
		if !s.writeResponse(conn, &resp, status, mu, delta) {
			return
		}
	}
}

// writeResponse writes one response frame under the write deadline. It
// reports false when the connection must be dropped — a peer that stops
// draining its socket costs one connection, not a wedged goroutine.
func (s *Server) writeResponse(conn net.Conn, buf *[]byte, status byte, mu, delta float64) bool {
	if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		return false
	}
	*buf = appendResponse((*buf)[:0], status, mu, delta)
	if _, err := conn.Write(*buf); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			s.writeDrops.Add(1)
		}
		return false
	}
	return true
}

// batchLoop is the daemon's single executor: block for the first request,
// coalesce until the batch fills or the latency budget expires, execute.
// It exits when the queue is closed (after every connection goroutine has),
// flushing whatever is still queued first.
func (s *Server) batchLoop() {
	defer close(s.batchDone)
	cfg := s.cfg
	batch := make([]*pending, 0, cfg.MaxBatch)
	xbuf := make([]float64, 0, cfg.MaxBatch*64)
	mus := make([]float64, cfg.MaxBatch)
	deltas := make([]float64, cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		p, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], p)
		if cfg.MaxBatch > 1 {
			timer.Reset(cfg.BatchDelay)
		collect:
			for len(batch) < cfg.MaxBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break collect
					}
					batch = append(batch, q)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		xbuf = s.execute(batch, xbuf, mus, deltas)
	}
}

// execute answers one batch against the current policy version. A panicking
// policy costs the batch typed ERR responses, never the daemon; a non-finite
// decision is suppressed (ERR) and, when the serving version was hot-swapped
// in, automatically rolled back to the version it replaced.
func (s *Server) execute(batch []*pending, xbuf, mus, deltas []float64) []float64 {
	pv := s.pv.Load()
	answered := 0
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			for _, p := range batch[answered:] {
				p.status = statusErr
				p.done <- struct{}{}
			}
		}
	}()
	s.batches.Add(1)
	s.batchedRequests.Add(int64(len(batch)))

	if pv.batch != nil && sameDim(batch, pv.dim) {
		rows := len(batch)
		xbuf = xbuf[:0]
		for _, p := range batch {
			xbuf = append(xbuf, p.state...)
		}
		pv.batch.DecideBatch(xbuf, rows, mus[:rows], deltas[:rows])
		for i, p := range batch {
			s.finish(p, pv, mus[i], deltas[i])
			answered++
		}
		return xbuf
	}
	for _, p := range batch {
		mu, delta := pv.p.Decide(p.state)
		s.finish(p, pv, mu, delta)
		answered++
	}
	return xbuf
}

func (s *Server) finish(p *pending, pv *policyVersion, mu, delta float64) {
	if !finite(mu) || !finite(delta) {
		s.nonfinite.Add(1)
		s.rollbackFrom(pv)
		p.status = statusErr
	} else {
		p.status = statusOK
		p.mu, p.delta = mu, delta
	}
	p.done <- struct{}{}
}

func sameDim(batch []*pending, dim int) bool {
	if dim <= 0 {
		return false
	}
	for _, p := range batch {
		if len(p.state) != dim {
			return false
		}
	}
	return true
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
