// Package runstore is a WAL-backed, content-addressed store of experiment
// run records. Sweeps (exp.RunMany, exp.RobustnessTable, exp.RunHuge) append
// one record per completed simulation, keyed by a content hash over the
// run's inputs (scenario fingerprint, scheme, seed, faults, shards — see
// exp.ScenarioKey); on restart the store replays its log and the sweep skips
// every run whose key is already present, making multi-hour fairness
// matrices resumable after a crash.
//
// Storage discipline (see DESIGN.md "Run store"): an append-only write-ahead
// log with CRC32C per-record framing and a configurable fsync policy
// (always/interval/never), torn-tail truncation and startup repair, and
// periodic compaction of the log into an index snapshot. Every byte of both
// files is covered by a checksum (header CRC or record CRC), so any
// single-bit corruption is either detected or repaired by dropping the
// damaged suffix — a property the crash/corruption test harness in this
// package proves exhaustively.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/netsim"
)

// Key is the 256-bit content address of a run: a SHA-256 over the canonical
// serialization of everything that determines the run's outcome. Two runs
// with equal keys are the same experiment; the store keeps one record per
// key (last write wins).
type Key [32]byte

// KeyOf hashes a canonical key buffer.
func KeyOf(b []byte) Key { return sha256.Sum256(b) }

// String returns the full lowercase-hex key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns a 12-hex-digit prefix for display.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// ParseKey parses the hex form produced by String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("runstore: bad key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("runstore: key %q is %d bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// FlowRecord is the stored summary of one flow of a run: lifetime stats,
// the recorded throughput/RTT series, and the Jury guard counters. It is
// exactly the data exp.FlowSummary serves back to the figure runners, so a
// cache hit is indistinguishable from a live run to every consumer.
type FlowRecord struct {
	BaseRTT   time.Duration
	Stats     netsim.FlowStats
	Degraded  int64 // core.Jury degraded (AIMD-fallback) decisions; 0 for other schemes
	NonFinite int64 // core.Jury non-finite actions that reached Eq. 7 (must be 0)
	// LateMeanBps is the flow's mean throughput over the late window
	// [Horizon/3, Horizon], precomputed at record time so fairness tables
	// still work for compact records whose Series was dropped.
	LateMeanBps float64
	Series      []netsim.SeriesPoint
}

// StreamSummary is the compact streaming-observability digest of a run
// (obs.StreamSummary, mirrored here so the store stays free of upper-layer
// imports): the final and worst windowed Jain, sketch percentiles of rate
// and RTT, and the fault/degradation counters. It is what a million-flow
// record keeps instead of per-flow series.
type StreamSummary struct {
	FinalJain     float64
	MinWindowJain float64
	Snapshots     int64
	Samples       int64
	RateP50       float64
	RateP95       float64
	RateP99       float64
	RTTP50        float64
	RTTP95        float64
	RTTP99        float64
	Drops         int64
	Faults        int64
	Degraded      int64
}

// Record is one stored run.
type Record struct {
	Key      Key
	Scenario string   // scenario label (not part of the key)
	Schemes  []string // distinct CC schemes of the run, in flow order
	Seed     uint64
	// AppendedAt is the wall-clock unix-nanosecond timestamp of the append;
	// Put stamps it when zero. It drives the time-range query only — it is
	// deliberately excluded from the key and from any result data.
	AppendedAt int64
	Horizon    time.Duration
	Digest     uint64 // simcheck digest (zero unless Checked)
	Checked    bool

	// Scenario-run payload.
	Utilization float64
	FaultDrops  int64
	Reordered   int64
	Duplicated  int64
	Flows       []FlowRecord

	// Huge-run payload (exp.RunHuge): total executed events and the
	// per-shard breakdown. Zero/empty for dumbbell scenario records.
	Events        int64
	ShardExecuted []int64

	// Stream is the streaming-observability summary of the run; nil when the
	// run executed without the obs layer attached.
	Stream *StreamSummary
}

// Policy selects when the WAL is fsynced.
type Policy int

const (
	// FsyncInterval (the default) syncs at most once per FsyncInterval of
	// wall time, amortizing the flush over many appends.
	FsyncInterval Policy = iota
	// FsyncAlways syncs after every append: a crash loses at most the
	// record being written.
	FsyncAlways
	// FsyncNever leaves flushing to Close/Compact and the OS.
	FsyncNever
)

// ParsePolicy maps the -store-fsync flag values onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("runstore: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}
