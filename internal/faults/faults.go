// Package faults defines deterministic network fault processes for the
// emulator: Gilbert–Elliott burst loss, packet reordering, duplication,
// delay-jitter spikes, and link blackouts/flaps. The package only holds the
// configuration types and the stochastic processes themselves; the hook
// points that apply them to packets live in internal/netsim (see
// netsim/faults.go and DESIGN.md "Fault injection").
//
// Every process draws exclusively from a *simcore.RNG handed to it at
// construction, so fault-injected runs are reproducible bit-for-bit: the
// same scenario and seed produce the same drops, delays, and outages
// regardless of wall-clock time or execution order of other scenarios.
package faults

import (
	"fmt"
	"time"

	"repro/internal/simcore"
)

// GEConfig parameterizes a Gilbert–Elliott two-state Markov loss process.
// The chain advances one step per arriving packet: from Good it moves to Bad
// with probability PGoodBad, from Bad back to Good with probability
// PBadGood; the packet is then dropped with the loss probability of the
// state the chain landed in. With LossBad=1 and LossGood=0 this produces
// loss bursts whose mean length is 1/PBadGood at a stationary loss rate of
// PGoodBad/(PGoodBad+PBadGood).
type GEConfig struct {
	PGoodBad float64 // per-packet Good→Bad transition probability
	PBadGood float64 // per-packet Bad→Good transition probability
	LossGood float64 // drop probability while Good (usually 0)
	LossBad  float64 // drop probability while Bad (usually 1)
}

// Validate rejects out-of-range parameters.
func (c GEConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodBad", c.PGoodBad},
		{"PBadGood", c.PBadGood},
		{"LossGood", c.LossGood},
		{"LossBad", c.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: GE %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.PGoodBad == 0 && c.LossGood == 0 {
		return fmt.Errorf("faults: GE process can never drop (PGoodBad = LossGood = 0)")
	}
	if c.PBadGood == 0 && c.PGoodBad > 0 {
		return fmt.Errorf("faults: GE Bad state is absorbing (PBadGood = 0)")
	}
	return nil
}

// MeanLoss returns the stationary per-packet loss probability of the chain.
func (c GEConfig) MeanLoss() float64 {
	if c.PGoodBad+c.PBadGood == 0 {
		return c.LossGood
	}
	pBad := c.PGoodBad / (c.PGoodBad + c.PBadGood)
	return pBad*c.LossBad + (1-pBad)*c.LossGood
}

// MeanBurst returns the expected length of a loss burst (consecutive
// dropped packets) for the common LossBad=1, LossGood=0 configuration: the
// geometric mean sojourn time of the Bad state.
func (c GEConfig) MeanBurst() float64 {
	if c.PBadGood == 0 {
		return 0
	}
	return 1 / c.PBadGood
}

// GilbertElliott is a running instance of the two-state loss chain.
type GilbertElliott struct {
	cfg GEConfig
	rng *simcore.RNG
	bad bool
}

// NewGilbertElliott starts the chain in the Good state with its own RNG
// stream.
func NewGilbertElliott(cfg GEConfig, rng *simcore.RNG) *GilbertElliott {
	return &GilbertElliott{cfg: cfg, rng: rng}
}

// Drop advances the chain one packet and reports whether that packet is
// dropped.
func (g *GilbertElliott) Drop() bool {
	if g.bad {
		if g.rng.Bernoulli(g.cfg.PBadGood) {
			g.bad = false
		}
	} else {
		if g.rng.Bernoulli(g.cfg.PGoodBad) {
			g.bad = true
		}
	}
	if g.bad {
		return g.rng.Bernoulli(g.cfg.LossBad)
	}
	return g.rng.Bernoulli(g.cfg.LossGood)
}

// Bad reports whether the chain is currently in the Bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// FlapConfig parameterizes a link blackout process: an alternating renewal
// process of exponentially distributed up and down periods. While down, the
// link drops every arriving packet (a hard outage, as produced by a flapping
// radio link or a rerouting event).
type FlapConfig struct {
	MeanUp   time.Duration // mean duration of an up period
	MeanDown time.Duration // mean duration of an outage
}

// Validate rejects degenerate flap parameters.
func (c FlapConfig) Validate() error {
	if c.MeanUp <= 0 || c.MeanDown <= 0 {
		return fmt.Errorf("faults: flap periods must be positive (up %v, down %v)", c.MeanUp, c.MeanDown)
	}
	return nil
}

// Flap is a running blackout process. State transitions are computed lazily
// as queries advance virtual time, so the process costs nothing while no
// packets arrive and stays deterministic: the realized up/down schedule is a
// pure function of the config and the RNG stream, independent of when (or
// how often) Down is called.
type Flap struct {
	cfg    FlapConfig
	rng    *simcore.RNG
	down   bool
	nextAt time.Duration // virtual time of the next state flip
}

// NewFlap starts the process in the up state; the first outage begins after
// an exponential up period.
func NewFlap(cfg FlapConfig, rng *simcore.RNG) *Flap {
	f := &Flap{cfg: cfg, rng: rng}
	f.nextAt = f.sample(cfg.MeanUp)
	return f
}

func (f *Flap) sample(mean time.Duration) time.Duration {
	d := time.Duration(float64(mean) * f.rng.ExpFloat64())
	if d < time.Nanosecond {
		d = time.Nanosecond // the renewal process must always advance
	}
	return d
}

// Down reports whether the link is in an outage at virtual time now,
// advancing the renewal process up to that instant. Queries must use
// non-decreasing times (the discrete-event engine guarantees this).
func (f *Flap) Down(now time.Duration) bool {
	for now >= f.nextAt {
		f.down = !f.down
		mean := f.cfg.MeanUp
		if f.down {
			mean = f.cfg.MeanDown
		}
		f.nextAt += f.sample(mean)
	}
	return f.down
}

// Config bundles every fault process attachable to one link. A nil *Config
// (or the zero value) injects nothing; each non-zero field enables one
// process with its own RNG stream, so enabling one fault type never perturbs
// the realization of another.
type Config struct {
	// GE enables Gilbert–Elliott burst loss on packet arrival.
	GE *GEConfig

	// ReorderProb is the per-packet probability that an arriving packet's
	// enqueue is deferred by a uniform delay in (0, ReorderMaxDelay],
	// letting later arrivals overtake it.
	ReorderProb     float64
	ReorderMaxDelay time.Duration

	// DupProb is the per-packet probability that an arriving packet is
	// accompanied by a duplicate copy. The copy occupies buffer space and
	// serialization time (modeling the capacity a real duplicate wastes) and
	// is discarded at the receiver side of the link.
	DupProb float64

	// JitterProb is the per-packet probability of a propagation delay spike
	// of uniform size in (0, JitterMax], on top of any configured
	// LinkConfig.JitterStd noise.
	JitterProb float64
	JitterMax  time.Duration

	// Flap enables link blackouts: while down, every arrival is dropped.
	Flap *FlapConfig
}

// Enabled reports whether any fault process is configured.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.GE != nil || c.ReorderProb > 0 || c.DupProb > 0 || c.JitterProb > 0 || c.Flap != nil
}

// Validate rejects inconsistent configurations. A nil config is valid.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.GE != nil {
		if err := c.GE.Validate(); err != nil {
			return err
		}
	}
	if c.ReorderProb < 0 || c.ReorderProb > 1 {
		return fmt.Errorf("faults: ReorderProb %v outside [0, 1]", c.ReorderProb)
	}
	if c.ReorderProb > 0 && c.ReorderMaxDelay <= 0 {
		return fmt.Errorf("faults: reordering enabled with no ReorderMaxDelay")
	}
	if c.DupProb < 0 || c.DupProb > 1 {
		return fmt.Errorf("faults: DupProb %v outside [0, 1]", c.DupProb)
	}
	if c.JitterProb < 0 || c.JitterProb > 1 {
		return fmt.Errorf("faults: JitterProb %v outside [0, 1]", c.JitterProb)
	}
	if c.JitterProb > 0 && c.JitterMax <= 0 {
		return fmt.Errorf("faults: jitter spikes enabled with no JitterMax")
	}
	if c.Flap != nil {
		if err := c.Flap.Validate(); err != nil {
			return err
		}
	}
	return nil
}
