package runstore

import (
	"testing"
	"time"
)

// queryRecord builds a minimal record with the query-relevant fields pinned.
func queryRecord(scenario string, schemes []string, digest uint64, checked bool, at time.Time) *Record {
	rec := &Record{
		Scenario:   scenario,
		Schemes:    schemes,
		Digest:     digest,
		Checked:    checked,
		AppendedAt: at.UnixNano(),
		Seed:       digest ^ 0x5a5a,
	}
	rec.Key = KeyOf(appendRecord(nil, rec))
	return rec
}

func keysOf(recs []*Record) map[Key]bool {
	out := make(map[Key]bool, len(recs))
	for _, r := range recs {
		out[r.Key] = true
	}
	return out
}

// TestQueriesOnEmptyStore: every query on a fresh store answers empty, not
// nil-panics or phantom records.
func TestQueriesOnEmptyStore(t *testing.T) {
	st := mustOpen(t, Options{Dir: t.TempDir()})
	defer st.Close()
	if got := st.ByScenario("anything"); len(got) != 0 {
		t.Fatalf("ByScenario on empty store returned %d records", len(got))
	}
	if got := st.ByScheme("jury"); len(got) != 0 {
		t.Fatalf("ByScheme on empty store returned %d records", len(got))
	}
	if got := st.ByDigest(42); len(got) != 0 {
		t.Fatalf("ByDigest on empty store returned %d records", len(got))
	}
	if got := st.Between(time.Unix(0, 0), time.Now()); len(got) != 0 {
		t.Fatalf("Between on empty store returned %d records", len(got))
	}
}

// TestQueriesNoMatch: a populated store must answer empty for labels,
// schemes, and digests it has never seen — including a digest value that IS
// present but on an unchecked record (ByDigest only trusts checked runs).
func TestQueriesNoMatch(t *testing.T) {
	st := mustOpen(t, Options{Dir: t.TempDir()})
	defer st.Close()
	at := time.Unix(1700000000, 0)
	putAll(t, st, []*Record{
		queryRecord("fig6", []string{"jury", "cubic"}, 111, true, at),
		queryRecord("fig10", []string{"bbr"}, 222, false, at.Add(time.Minute)),
	})

	if got := st.ByScenario("fig99"); len(got) != 0 {
		t.Fatalf("unknown scenario matched %d records", len(got))
	}
	if got := st.ByScheme("vegas"); len(got) != 0 {
		t.Fatalf("unknown scheme matched %d records", len(got))
	}
	if got := st.ByDigest(333); len(got) != 0 {
		t.Fatalf("unknown digest matched %d records", len(got))
	}
	// Digest 222 exists but only on an unchecked record: it must not match.
	if got := st.ByDigest(222); len(got) != 0 {
		t.Fatalf("unchecked digest matched %d records", len(got))
	}
	if got := st.ByDigest(111); len(got) != 1 {
		t.Fatalf("checked digest matched %d records, want 1", len(got))
	}
	// ByScheme matches membership, not the whole set.
	if got := st.ByScheme("cubic"); len(got) != 1 || got[0].Scenario != "fig6" {
		t.Fatalf("ByScheme(cubic) = %d records", len(got))
	}
}

// TestBetweenBoundaries pins the [from, to) contract at exact nanosecond
// boundaries: a record stamped at `from` is included, one at `to` is not.
func TestBetweenBoundaries(t *testing.T) {
	st := mustOpen(t, Options{Dir: t.TempDir()})
	defer st.Close()
	t0 := time.Unix(1700000000, 123456789)
	t1 := t0.Add(time.Hour)
	before := queryRecord("s", []string{"jury"}, 1, true, t0.Add(-time.Nanosecond))
	atFrom := queryRecord("s", []string{"jury"}, 2, true, t0)
	inside := queryRecord("s", []string{"jury"}, 3, true, t0.Add(30*time.Minute))
	atTo := queryRecord("s", []string{"jury"}, 4, true, t1)
	putAll(t, st, []*Record{before, atFrom, inside, atTo})

	got := st.Between(t0, t1)
	if len(got) != 2 {
		t.Fatalf("Between returned %d records, want 2", len(got))
	}
	keys := keysOf(got)
	if !keys[atFrom.Key] {
		t.Fatal("record stamped exactly at `from` excluded — Between must be closed on the left")
	}
	if !keys[inside.Key] {
		t.Fatal("record inside the window excluded")
	}
	if keys[atTo.Key] {
		t.Fatal("record stamped exactly at `to` included — Between must be open on the right")
	}
	if keys[before.Key] {
		t.Fatal("record before the window included")
	}
	// Degenerate windows are empty, never inverted.
	if got := st.Between(t0, t0); len(got) != 0 {
		t.Fatalf("empty window matched %d records", len(got))
	}
	if got := st.Between(t1, t0); len(got) != 0 {
		t.Fatalf("inverted window matched %d records", len(got))
	}
}

// TestQueriesSurviveCompaction: every query must answer identically before
// compaction (records in the WAL), after Compact (records in the snapshot),
// and after reopening from that snapshot.
func TestQueriesSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	recs := randRecords(99, 40)
	base := time.Unix(1700000000, 0)
	for i, r := range recs {
		// Deterministic, distinct timestamps so Between slices mid-set.
		r.AppendedAt = base.Add(time.Duration(i) * time.Second).UnixNano()
	}
	putAll(t, st, recs)

	// Pick nontrivial query targets from the generated set, so the
	// equivalence below is not an empty-vs-empty tautology.
	scheme, digest := "", uint64(0)
	for _, r := range recs {
		if scheme == "" && len(r.Schemes) > 0 {
			scheme = r.Schemes[0]
		}
		if digest == 0 && r.Checked {
			digest = r.Digest
		}
	}
	if scheme == "" || digest == 0 {
		t.Fatal("generated set has no scheme or no checked record")
	}

	type snapshot struct {
		scenario, scheme, digest, between map[Key]bool
	}
	capture := func(s *Store) snapshot {
		return snapshot{
			scenario: keysOf(s.ByScenario(recs[0].Scenario)),
			scheme:   keysOf(s.ByScheme(scheme)),
			digest:   keysOf(s.ByDigest(digest)),
			between:  keysOf(s.Between(base.Add(10*time.Second), base.Add(30*time.Second))),
		}
	}
	assertSame := func(label string, a, b map[Key]bool) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d records != %d", label, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("%s: record %v missing after compaction", label, k)
			}
		}
	}
	pre := capture(st)
	if len(pre.between) != 20 {
		t.Fatalf("Between window holds %d records, want 20", len(pre.between))
	}

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	post := capture(st)
	assertSame("ByScenario", pre.scenario, post.scenario)
	assertSame("ByScheme", pre.scheme, post.scheme)
	assertSame("ByDigest", pre.digest, post.digest)
	assertSame("Between", pre.between, post.between)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, Options{Dir: dir})
	defer st2.Close()
	reopened := capture(st2)
	assertSame("ByScenario/reopen", pre.scenario, reopened.scenario)
	assertSame("ByScheme/reopen", pre.scheme, reopened.scheme)
	assertSame("ByDigest/reopen", pre.digest, reopened.digest)
	assertSame("Between/reopen", pre.between, reopened.between)
}
