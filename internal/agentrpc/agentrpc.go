// Package agentrpc reproduces the paper's deployment architecture (§4): the
// congestion-control datapath and the policy inference run in different
// address spaces, connected by a message channel (the paper uses a kernel
// module talking to a userspace C++ inference service over netlink; here a
// datapath-side Client talks to an inference Server over a stream socket
// with a compact binary protocol).
//
// The Client implements core.Policy, so a Jury controller can be pointed at
// a remote inference service transparently:
//
//	srv, _ := agentrpc.Serve("127.0.0.1:0", jury.NewReferencePolicy())
//	client, _ := agentrpc.Dial(srv.Addr(), fallback)
//	ctrl := core.New(cfg, client)
//
// Wire format (little endian):
//
//	request:  u32 count | count × f64 state
//	response: f64 mu | f64 delta
//
// A count of 0 is a ping. The client degrades gracefully: on any transport
// error it falls back to a local policy and tries to redial in the
// background of subsequent decisions, because a congestion controller must
// never stall its datapath on a dead inference service.
package agentrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// maxStateDim bounds request sizes; real Jury states are tens of values.
const maxStateDim = 4096

// Policy matches core.Policy without importing it (no dependency cycle and
// the package stays reusable).
type Policy interface {
	Decide(state []float64) (mu, delta float64)
}

// defaultReadTimeout bounds how long a connection may sit idle between
// requests before the server reclaims it. Healthy datapaths decide every
// control interval (~30 ms); a connection silent for minutes is a hung or
// half-closed peer holding a goroutine hostage.
const defaultReadTimeout = 2 * time.Minute

// Server runs an inference service around a Policy.
type Server struct {
	policy      Policy
	ln          net.Listener
	readTimeout time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	// Decisions counts served requests (atomically guarded by mu; the
	// request rate is ~33/s per flow, contention is irrelevant).
	decisions int64
	// panics counts connections dropped because the policy panicked.
	panics int64
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, p Policy) (*Server, error) {
	if p == nil {
		return nil, errors.New("agentrpc: nil policy")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{policy: p, ln: ln, readTimeout: defaultReadTimeout, conns: map[net.Conn]struct{}{}}
	go s.acceptLoop()
	return s, nil
}

// SetReadTimeout changes the per-request idle limit (0 disables it). It
// applies to connections accepted after the call.
func (s *Server) SetReadTimeout(d time.Duration) {
	s.mu.Lock()
	s.readTimeout = d
	s.mu.Unlock()
}

// Panics reports how many connections were dropped by a panicking policy.
func (s *Server) Panics() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panics
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Decisions reports how many inference requests have been served.
func (s *Server) Decisions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decisions
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		// A panicking policy (poisoned weights, buggy experiment code) must
		// cost one connection, not the whole inference service: the client
		// falls back locally and redials.
		if p := recover(); p != nil {
			s.mu.Lock()
			s.panics++
			s.mu.Unlock()
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.mu.Lock()
	readTimeout := s.readTimeout
	s.mu.Unlock()
	dec := newRequestReader(conn)
	for {
		if readTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(readTimeout)); err != nil {
				return
			}
		}
		state, ping, err := dec.next()
		if err != nil {
			return // io error, idle timeout, or protocol violation: drop the connection
		}
		if ping {
			var resp [16]byte
			if _, err := conn.Write(resp[:]); err != nil {
				return
			}
			continue
		}
		mu, delta := s.policy.Decide(state)
		var resp [16]byte
		binary.LittleEndian.PutUint64(resp[0:], math.Float64bits(mu))
		binary.LittleEndian.PutUint64(resp[8:], math.Float64bits(delta))
		if _, err := conn.Write(resp[:]); err != nil {
			return
		}
		s.mu.Lock()
		s.decisions++
		s.mu.Unlock()
	}
}

// Dial backoff bounds: the first retry after a failed dial waits
// dialBackoffBase, doubling per consecutive failure up to dialBackoffCap.
// Without this, a dead service costs every decision a ~100 ms connect
// timeout — a 3000× stall of the 30 ms control loop turns into one stall
// every few seconds.
const (
	dialBackoffBase = 100 * time.Millisecond
	dialBackoffCap  = 5 * time.Second
)

// errDialBackoff reports a redial suppressed by the backoff window; the
// caller serves the decision from the fallback policy without touching the
// network.
var errDialBackoff = errors.New("agentrpc: dial suppressed by backoff")

// Client is a core.Policy backed by a remote inference service, with a
// local fallback policy for transport failures.
type Client struct {
	addr     string
	fallback Policy
	timeout  time.Duration

	mu   sync.Mutex
	conn net.Conn

	// Capped exponential dial backoff state.
	dialBackoff time.Duration
	nextDialAt  time.Time

	// Stats for tests and monitoring.
	remoteDecisions   int64
	fallbackDecisions int64
	dialAttempts      int64

	// latencyHook, when non-nil, observes every Decide's round-trip wall
	// time and whether the remote service (vs the local fallback) answered.
	// The telemetry layer points it at a latency histogram.
	latencyHook func(d time.Duration, remote bool)
}

// Dial connects to a server. The fallback policy (required) answers while
// the service is unreachable.
func Dial(addr string, fallback Policy) (*Client, error) {
	if fallback == nil {
		return nil, errors.New("agentrpc: nil fallback policy")
	}
	c := &Client{addr: addr, fallback: fallback, timeout: 100 * time.Millisecond}
	if err := c.redial(); err != nil {
		return nil, fmt.Errorf("agentrpc: initial dial: %w", err)
	}
	return c, nil
}

func (c *Client) redial() error {
	if !c.nextDialAt.IsZero() && time.Now().Before(c.nextDialAt) {
		return errDialBackoff
	}
	c.dialAttempts++
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		if c.dialBackoff == 0 {
			c.dialBackoff = dialBackoffBase
		} else if c.dialBackoff *= 2; c.dialBackoff > dialBackoffCap {
			c.dialBackoff = dialBackoffCap
		}
		c.nextDialAt = time.Now().Add(c.dialBackoff)
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // one request per control interval: latency over batching
	}
	c.conn = conn
	c.dialBackoff = 0
	c.nextDialAt = time.Time{}
	return nil
}

// DialAttempts reports how many times the client actually tried to connect
// (suppressed backoff attempts are not counted).
func (c *Client) DialAttempts() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dialAttempts
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// RemoteDecisions reports how many decisions the service answered.
func (c *Client) RemoteDecisions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remoteDecisions
}

// FallbackDecisions reports how many decisions fell back locally.
func (c *Client) FallbackDecisions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fallbackDecisions
}

// SetLatencyHook registers fn to observe every Decide's wall-clock latency
// (nil detaches it). The hook runs with the client lock held; keep it
// cheap — a histogram observation, not I/O.
func (c *Client) SetLatencyHook(fn func(d time.Duration, remote bool)) {
	c.mu.Lock()
	c.latencyHook = fn
	c.mu.Unlock()
}

// Decide implements core.Policy: one round trip to the service, falling
// back to the local policy on any error.
func (c *Client) Decide(state []float64) (float64, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var start time.Time
	if c.latencyHook != nil {
		start = time.Now()
	}
	mu, delta, err := c.decideRemote(state)
	if err != nil {
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
		c.fallbackDecisions++
		mu, delta = c.fallback.Decide(state)
		if c.latencyHook != nil {
			c.latencyHook(time.Since(start), false)
		}
		return mu, delta
	}
	c.remoteDecisions++
	if c.latencyHook != nil {
		c.latencyHook(time.Since(start), true)
	}
	return mu, delta
}

func (c *Client) decideRemote(state []float64) (float64, float64, error) {
	if len(state) > maxStateDim {
		return 0, 0, fmt.Errorf("state dim %d exceeds protocol max", len(state))
	}
	if c.conn == nil {
		if err := c.redial(); err != nil {
			return 0, 0, err
		}
	}
	deadline := time.Now().Add(c.timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		return 0, 0, err
	}
	req := appendRequest(make([]byte, 0, 4+len(state)*8), state)
	if _, err := c.conn.Write(req); err != nil {
		return 0, 0, err
	}
	var resp [16]byte
	if _, err := io.ReadFull(c.conn, resp[:]); err != nil {
		return 0, 0, err
	}
	mu := math.Float64frombits(binary.LittleEndian.Uint64(resp[0:]))
	delta := math.Float64frombits(binary.LittleEndian.Uint64(resp[8:]))
	if math.IsNaN(mu) || math.IsNaN(delta) {
		return 0, 0, errors.New("agentrpc: non-finite response")
	}
	return mu, delta, nil
}
