// Package telemetry is the repository's zero-dependency observability
// layer: a metric registry (atomic counters, gauges, fixed-bucket
// histograms) with Prometheus-text and JSON exposition, lightweight tracing
// spans that carry both wall-clock and simcore virtual time, structured
// JSONL event logs for the sim/training/experiment domains, and a live
// debug HTTP endpoint (pprof, expvar, metrics).
//
// The layer is nil-by-default: every instrument and every hub method is a
// safe no-op on a nil receiver, so instrumented code pays one nil check —
// and zero allocations — when telemetry is disabled. Telemetry only ever
// *observes* a simulation (no RNG draws, no event-queue writes), so a
// deterministic run produces a bit-identical simcheck digest with telemetry
// on or off; TestTelemetryDigestParity pins that guarantee.
package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// ErrBadBuckets reports a histogram bucket slice that cannot define a valid
// partition: empty, not strictly increasing, or containing NaN. Observe
// depends on a strictly increasing bound slice (it binary-searches it), so a
// bad slice would silently misbucket every sample; construction rejects it
// instead.
var ErrBadBuckets = errors.New("telemetry: histogram buckets must be non-empty, finite-or-+Inf-free of NaN, and strictly increasing")

// validateBuckets returns ErrBadBuckets (wrapped with the offending detail)
// unless bounds is non-empty, NaN-free, and strictly increasing.
func validateBuckets(bounds []float64) error {
	if len(bounds) == 0 {
		return fmt.Errorf("%w: empty slice", ErrBadBuckets)
	}
	for i, b := range bounds {
		if math.IsNaN(b) {
			return fmt.Errorf("%w: NaN at index %d", ErrBadBuckets, i)
		}
		if i > 0 && bounds[i-1] >= b {
			return fmt.Errorf("%w: bounds[%d]=%v not above bounds[%d]=%v", ErrBadBuckets, i, b, i-1, bounds[i-1])
		}
	}
	return nil
}

// Counter is a monotonically increasing atomic counter. The zero value is
// usable; a nil Counter is a no-op.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge. A nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram (cumulative exposition, like
// Prometheus): bounds are inclusive upper bucket limits, with an implicit
// +Inf bucket at the end. A nil Histogram is a no-op. Observe is lock-free
// and allocation-free.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	name   string
	help   string
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; len(bounds) is the +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n strictly increasing bucket bounds starting at start
// and growing by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// gaugeFunc is a read-on-exposition gauge backed by a callback, used to
// export counters owned by other subsystems (Jury decision guards, RPC
// server panics) without polling loops. The callback must be safe to call
// from the debug HTTP goroutine (read atomics or take the owner's lock).
type gaugeFunc struct {
	name string
	help string

	mu sync.Mutex
	fn func() float64
}

func (g *gaugeFunc) value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Registry holds named instruments and renders them as Prometheus text or
// JSON. All methods are safe for concurrent use; instrument constructors are
// get-or-create, so attaching telemetry to many runs reuses one instrument
// per name. A nil Registry hands out nil instruments, keeping every
// downstream operation a no-op.
type Registry struct {
	mu     sync.Mutex
	names  []string // registration order; sorted at exposition time
	counts map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]*gaugeFunc
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		funcs:  map[string]*gaugeFunc{},
		hists:  map[string]*Histogram{},
	}
}

func (r *Registry) addName(name string) {
	r.names = append(r.names, name)
}

// Counter returns the counter registered under name, creating it on first
// use. Nil registries return nil (a no-op counter).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counts[name] = c
	r.addName(name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	r.addName(name)
	return g
}

// GaugeFunc registers (or re-points) a callback-backed gauge. Re-pointing is
// deliberate: each experiment run re-attaches its own live network, and the
// debug page should show the most recent one. A callback also takes over a
// plain Gauge pre-registered under the same name (preRegister publishes the
// schema before the owning subsystem runs): the plain instrument is dropped
// so exposition resolves the live callback instead of a stale zero, and the
// name stays single in the exposition order.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	g, ok := r.funcs[name]
	if !ok {
		g = &gaugeFunc{name: name, help: help}
		r.funcs[name] = g
		if _, shadowed := r.gauges[name]; shadowed {
			delete(r.gauges, name)
		} else {
			r.addName(name)
		}
	}
	r.mu.Unlock()
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (bounds are ignored on reuse). It
// panics on invalid bounds — histogram schemas are compile-time constants in
// this repository, so a bad slice is a programming error; callers taking
// bounds from config should use TryHistogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h, err := r.TryHistogram(name, help, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// TryHistogram is Histogram returning ErrBadBuckets (wrapped) instead of
// panicking when bounds is empty, unsorted, or contains NaN. Validation
// happens at construction only: on reuse, bounds are ignored (passing nil
// to look up an existing histogram is the read-path idiom), and on a nil
// registry the disabled no-op contract wins — nil instrument, no error.
func (r *Registry) TryHistogram(name, help string, bounds []float64) (*Histogram, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h, nil
	}
	if err := validateBuckets(bounds); err != nil {
		return nil, err
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		name:   name,
		help:   help,
	}
	r.hists[name] = h
	r.addName(name)
	return h, nil
}

// snapshot returns the registered names in sorted order plus the lookup
// maps, under one lock acquisition.
func (r *Registry) snapshot() []string {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (metrics sorted by name). A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, name := range r.snapshot() {
		r.mu.Lock()
		c := r.counts[name]
		g := r.gauges[name]
		gf := r.funcs[name]
		h := r.hists[name]
		r.mu.Unlock()
		switch {
		case c != nil:
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, c.help, name, name, c.Value())
		case g != nil:
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, g.help, name, name, fmtFloat(g.Value()))
		case gf != nil:
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, gf.help, name, name, fmtFloat(gf.value()))
		case h != nil:
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", name, h.help, name)
			var cum int64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
			fmt.Fprintf(bw, "%s_sum %s\n%s_count %d\n", name, fmtFloat(h.Sum()), name, h.Count())
		}
	}
	return bw.Flush()
}

// histJSON is the JSON exposition shape of one histogram.
type histJSON struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // non-cumulative; last entry is +Inf
}

// WriteJSON renders every instrument as one JSON object keyed by metric
// name. A nil registry writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]any{}
	if r != nil {
		for _, name := range r.snapshot() {
			r.mu.Lock()
			c := r.counts[name]
			g := r.gauges[name]
			gf := r.funcs[name]
			h := r.hists[name]
			r.mu.Unlock()
			switch {
			case c != nil:
				out[name] = c.Value()
			case g != nil:
				out[name] = g.Value()
			case gf != nil:
				out[name] = gf.value()
			case h != nil:
				hj := histJSON{Count: h.Count(), Sum: h.Sum(), Bounds: h.bounds}
				for i := range h.counts {
					hj.Buckets = append(hj.Buckets, h.counts[i].Load())
				}
				out[name] = hj
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
