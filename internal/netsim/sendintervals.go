package netsim

import (
	"time"

	"repro/internal/cc"
)

// Interval-driven schemes (Jury and the DRL baselines) consume statistics
// attributed to the control interval in which packets were *sent*, exactly
// as the paper's Fig. 3 action-feedback mechanism prescribes: the action
// enforced for interval t is paired with the ACK statistics of the packets
// transmitted during interval t, which arrive roughly one RTT later. The
// sender therefore buckets every packet by its send-interval index and
// delivers each interval's aggregate to the controller once all of the
// interval's packets have been acknowledged or declared lost.
//
// This matters for Jury specifically: the occupancy estimator (Eq. 5)
// inverts the relation between a rate change and *its own* throughput
// response — pairing a rate change with feedback from an earlier interval
// (as naive wall-clock aggregation would) decorrelates the two signals.

// sendIntervalRing is the maximum window of in-flight send intervals.
// 1024 intervals of 30 ms cover ~30 s of feedback delay, far beyond any
// emulated RTT; the ring force-delivers if it ever wraps at full size. The
// ring starts small (sendIntervalMin) and doubles on demand: typical flows
// have a handful of intervals in flight, so the full-size ring (~114 KB per
// flow) would be almost entirely dead weight.
const (
	sendIntervalRing = 1024
	sendIntervalMin  = 64
)

// sendInterval aggregates the fate of packets sent during one interval.
type sendInterval struct {
	used bool
	// idx is the interval index this slot currently represents. Ring slots
	// are reused once the window wraps, so feedback carries the interval
	// index it was stamped with at send time and is matched against idx on
	// arrival: an ACK or loss for a force-delivered interval whose slot now
	// belongs to a newer interval is stale and must be ignored, not folded
	// into (and mis-counted against) the newer interval's statistics.
	idx          int64
	ended        bool
	endedAt      time.Duration
	sentBytes    int64
	sentPackets  int64
	ackedBytes   int64
	ackedPackets int64
	lostPackets  int64
	rttSum       time.Duration
	rttMin       time.Duration
	outstanding  int64
	enforcedBps  float64 // controller pacing rate while this interval was open
	firstAckAt   time.Duration
	lastAckAt    time.Duration
}

// intervalTracker drives one cc.IntervalAlgorithm with send-attributed
// statistics.
type intervalTracker struct {
	ia       cc.IntervalAlgorithm
	interval time.Duration

	idx  int64 // current (open) send interval
	next int64 // next interval to deliver
	ring []sendInterval
}

func newIntervalTracker(ia cc.IntervalAlgorithm) *intervalTracker {
	iv := ia.ControlInterval()
	if iv <= 0 {
		iv = 30 * time.Millisecond
	}
	t := &intervalTracker{ia: ia, interval: iv, ring: make([]sendInterval, sendIntervalMin)}
	t.ring[0].used = true
	return t
}

func (t *intervalTracker) slot(idx int64) *sendInterval {
	return &t.ring[idx%int64(len(t.ring))]
}

// grow doubles the ring (capped at sendIntervalRing) and rehashes the live
// slots to their positions under the new modulus.
func (t *intervalTracker) grow() {
	old := t.ring
	n := 2 * len(old)
	if n > sendIntervalRing {
		n = sendIntervalRing
	}
	t.ring = make([]sendInterval, n)
	for i := range old {
		if old[i].used {
			t.ring[old[i].idx%int64(n)] = old[i]
		}
	}
}

// onSend records a packet leaving during the current interval and returns
// the interval index to stamp on the packet.
func (t *intervalTracker) onSend(size int) int64 {
	s := t.slot(t.idx)
	s.sentBytes += int64(size)
	s.sentPackets++
	s.outstanding++
	return t.idx
}

// onAck folds an acknowledgment into its send interval.
func (t *intervalTracker) onAck(idx int64, now time.Duration, bytes int, rtt time.Duration) {
	s := t.slot(idx)
	if !s.used || s.idx != idx {
		return // force-delivered long ago (slot may belong to a newer interval)
	}
	s.ackedBytes += int64(bytes)
	s.ackedPackets++
	if s.firstAckAt == 0 {
		s.firstAckAt = now
	}
	s.lastAckAt = now
	s.rttSum += rtt
	if s.rttMin == 0 || rtt < s.rttMin {
		s.rttMin = rtt
	}
	s.outstanding--
}

// onLoss folds a detected loss into its send interval.
func (t *intervalTracker) onLoss(idx int64) {
	s := t.slot(idx)
	if !s.used || s.idx != idx {
		return
	}
	s.lostPackets++
	s.outstanding--
}

// closeCurrent ends the open interval and opens the next; the flow calls it
// on every control tick. If the ring is about to wrap onto an undelivered
// interval, that interval is force-delivered first.
func (t *intervalTracker) closeCurrent(f *Flow, now time.Duration) {
	s := t.slot(t.idx)
	s.ended = true
	s.endedAt = now
	s.enforcedBps = f.alg.PacingRate()
	t.idx++
	for t.idx-t.next >= int64(len(t.ring)) && len(t.ring) < sendIntervalRing {
		t.grow()
	}
	if t.idx-t.next >= sendIntervalRing {
		t.deliver(f, t.next, now) // should not happen; safety valve
	}
	ns := t.slot(t.idx)
	*ns = sendInterval{used: true, idx: t.idx}
}

// tryDeliver hands every completed interval (ended, nothing outstanding) to
// the controller, in order.
func (t *intervalTracker) tryDeliver(f *Flow, now time.Duration) {
	for t.next < t.idx {
		s := t.slot(t.next)
		if !s.ended || s.outstanding > 0 {
			return
		}
		t.deliver(f, t.next, now)
	}
}

// deliver builds the IntervalStats for interval idx and invokes the
// controller.
func (t *intervalTracker) deliver(f *Flow, idx int64, now time.Duration) {
	s := t.slot(idx)
	stats := cc.IntervalStats{
		Now:             now,
		Interval:        t.interval,
		AckedBytes:      s.ackedBytes,
		AckedPackets:    s.ackedPackets,
		SentBytes:       s.sentBytes,
		SentPackets:     s.sentPackets,
		LostPackets:     s.lostPackets,
		MinRTT:          s.rttMin,
		FlowMinRTT:      f.minRTT,
		EnforcedRateBps: s.enforcedBps,
		DeliverySpan:    s.lastAckAt - s.firstAckAt,
	}
	if s.ackedPackets > 0 {
		stats.AvgRTT = s.rttSum / time.Duration(s.ackedPackets)
	}
	*s = sendInterval{}
	t.next = idx + 1
	if tap := f.net.tap; tap != nil {
		tap.IntervalDelivered(f, stats)
	}
	if f.active {
		t.ia.OnInterval(stats)
		f.trySend()
	}
}
