#!/bin/sh
# profile.sh — capture a CPU profile from a live run through the telemetry
# debug endpoint. Builds jurysim, starts a long scenario with -debug-addr,
# waits for /metrics to come up, pulls /debug/pprof/profile?seconds=N, and
# writes the profile for `go tool pprof`.
#
#   scripts/profile.sh                                    # 10s of the default scenario
#   PROF_SECONDS=30 OUT=/tmp/cpu.pprof scripts/profile.sh
#   scripts/profile.sh -scheme cubic,jury -rate 200 -duration 600s
#
# Extra arguments replace the default jurysim scenario flags. Virtual time
# runs much faster than wall time (~600 virtual seconds per wall second per
# 100 Mbps-class flow pair is typical), so pick a -duration whose *wall*
# time outlives the profile window; the default scenario lasts a few wall
# minutes and is killed once the profile is captured.
set -eu
cd "$(dirname "$0")/.."

PROF_SECONDS=${PROF_SECONDS:-10}
OUT=${OUT:-cpu.pprof}
ADDR=${ADDR:-127.0.0.1:8791}

BINDIR=$(mktemp -d)
go build -o "$BINDIR/jurysim" ./cmd/jurysim

if [ $# -eq 0 ]; then
    set -- -scheme cubic,jury -rate 100 -duration 36000s
fi
"$BINDIR/jurysim" "$@" -debug-addr "$ADDR" >/dev/null 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$BINDIR"' EXIT

i=0
until curl -sf "http://$ADDR/metrics" >/dev/null 2>&1; do
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "profile.sh: jurysim exited before the debug endpoint came up" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "profile.sh: debug endpoint never came up on $ADDR" >&2
        exit 1
    fi
    sleep 0.2
done

echo "profiling http://$ADDR for ${PROF_SECONDS}s..."
curl -sf -o "$OUT" "http://$ADDR/debug/pprof/profile?seconds=$PROF_SECONDS"
echo "wrote $OUT  (inspect: go tool pprof $OUT)"
