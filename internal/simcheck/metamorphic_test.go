package simcheck

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// runJuryScaled runs two Jury flows over a dumbbell whose capacity, packet
// size, and buffer are all scaled by k (a power of two). Because Jury's
// policy inputs are bandwidth-agnostic — ΔRTT and the loss ratio (Eq. 5–7
// of the paper) — and the emulation's timing is invariant under joint
// (rate, MSS, buffer) scaling, the recorded (μ, δ) trajectories must be
// bit-identical across scales.
func runJuryScaled(t *testing.T, k int) ([][]core.RangePoint, *Checker) {
	t.Helper()
	const (
		baseRate = 16e6
		basePkt  = 1500
		owd      = 10 * time.Millisecond
	)
	rate := baseRate * float64(k)
	baseBuf := bdpBytes(baseRate, 2*owd) * 3 / 2 // 1.5 BDP at scale 1
	n := netsim.New(netsim.Config{Seed: 11})
	l := n.AddLink(netsim.LinkConfig{
		Rate:        rate,
		Delay:       owd,
		BufferBytes: baseBuf * k,
		LossRate:    0.002,
	})
	juries := make([]*core.Jury, 2)
	for i := range juries {
		cfg := core.DefaultConfig()
		cfg.Seed = uint64(i) + 21
		j := core.New(cfg, core.NewReferencePolicy())
		j.EnableRangeTrace(0)
		juries[i] = j
		n.AddFlow(netsim.FlowConfig{
			Name:       "jury",
			Path:       []*netsim.Link{l},
			PacketSize: basePkt * k,
			CC:         func() cc.Algorithm { return j },
		})
	}
	ck := Attach(n)
	n.Run(20 * time.Second)
	if vs := ck.Finish(); len(vs) > 0 {
		t.Fatalf("scale %d: invariant violations: %v", k, vs)
	}
	out := make([][]core.RangePoint, len(juries))
	for i, j := range juries {
		out[i] = j.RangeTrace()
	}
	return out, ck
}

// TestBandwidthScalingRangeInvariant is the paper's central metamorphic
// property as an executable test: scaling the bottleneck bandwidth (here
// jointly with MSS and buffer so packet-level timing is preserved) leaves
// the policy's decision-range trajectory (μ_t, δ_t) exactly invariant,
// because nothing the policy or the occupancy estimator consumes carries
// absolute bandwidth. A single mis-scaled signal anywhere in the
// transformer, occupancy estimator, or post-processing breaks this test.
func TestBandwidthScalingRangeInvariant(t *testing.T) {
	scales := []int{1, 2, 4} // ≥3 capacity scales, powers of two for exact FP
	ref, _ := runJuryScaled(t, scales[0])
	if len(ref[0]) < 100 {
		t.Fatalf("reference run recorded only %d decisions", len(ref[0]))
	}
	for _, k := range scales[1:] {
		got, _ := runJuryScaled(t, k)
		for fi := range ref {
			if len(got[fi]) != len(ref[fi]) {
				t.Fatalf("scale %d flow %d: %d decisions vs %d at scale 1",
					k, fi, len(got[fi]), len(ref[fi]))
			}
			for pi := range ref[fi] {
				a, b := ref[fi][pi], got[fi][pi]
				if a != b {
					t.Fatalf("scale %d flow %d decision %d diverged:\n  scale1: %+v\n  scale%d: %+v",
						k, fi, pi, a, k, b)
				}
			}
		}
	}
}

// TestBandwidthScalingDecisionStatsStable is the pure-bandwidth variant
// (fixed 1500 B MSS, so packet granularity genuinely changes): the decision
// trajectories are no longer bit-identical, but their statistics must stay
// in the same regime across a 4× capacity range — Jury's learned behaviour
// does not depend on the absolute link speed.
func TestBandwidthScalingDecisionStatsStable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale emulation")
	}
	means := make([]float64, 0, 3)
	for _, rate := range []float64{20e6, 40e6, 80e6} {
		n := netsim.New(netsim.Config{Seed: 5})
		l := n.AddLink(netsim.LinkConfig{
			Rate:        rate,
			Delay:       10 * time.Millisecond,
			BufferBytes: bdpBytes(rate, 20*time.Millisecond),
		})
		cfg := core.DefaultConfig()
		cfg.Seed = 31
		j := core.New(cfg, core.NewReferencePolicy())
		j.EnableRangeTrace(0)
		n.AddFlow(netsim.FlowConfig{
			Name: "jury",
			Path: []*netsim.Link{l},
			CC:   func() cc.Algorithm { return j },
		})
		ck := Attach(n)
		n.Run(20 * time.Second)
		if vs := ck.Finish(); len(vs) > 0 {
			t.Fatalf("rate %.0f: violations: %v", rate, vs)
		}
		tr := j.RangeTrace()
		if len(tr) < 100 {
			t.Fatalf("rate %.0f: only %d decisions", rate, len(tr))
		}
		// Skip the first quarter (slow-start transient).
		var mu float64
		pts := tr[len(tr)/4:]
		for _, p := range pts {
			mu += p.Mu
		}
		means = append(means, mu/float64(len(pts)))
	}
	for i := 1; i < len(means); i++ {
		if d := math.Abs(means[i] - means[0]); d > 0.25 {
			t.Fatalf("mean μ drifts with bandwidth: %v", means)
		}
	}
}

// TestJuryHomogeneousJainConverges asserts the fairness end of the paper's
// claim: N homogeneous Jury flows on one bottleneck converge to a Jain
// index near 1, with the invariant checker attached throughout.
func TestJuryHomogeneousJainConverges(t *testing.T) {
	const (
		nFlows  = 4
		rate    = 48e6
		horizon = 40 * time.Second
	)
	n := netsim.New(netsim.Config{Seed: 17})
	l := n.AddLink(netsim.LinkConfig{
		Rate:        rate,
		Delay:       10 * time.Millisecond,
		BufferBytes: bdpBytes(rate, 20*time.Millisecond),
	})
	flows := make([]*netsim.Flow, nFlows)
	for i := 0; i < nFlows; i++ {
		j := core.NewDefault(uint64(i) + 1)
		flows[i] = n.AddFlow(netsim.FlowConfig{
			Name:  "jury",
			Path:  []*netsim.Link{l},
			Start: time.Duration(i) * time.Second,
			CC:    func() cc.Algorithm { return j },
		})
	}
	ck := Attach(n)
	n.Run(horizon)
	if vs := ck.Finish(); len(vs) > 0 {
		t.Fatalf("violations: %v", vs)
	}
	shares := make([]float64, nFlows)
	for i, f := range flows {
		shares[i] = metrics.MeanThroughput(f, horizon-15*time.Second, horizon)
	}
	if jain := metrics.JainIndex(shares); jain < 0.9 {
		t.Fatalf("late Jain %v (shares %v)", jain, shares)
	}
}

// TestParallelRunsMatchSequentialReplay runs the same scenario once alone
// and then concurrently from several goroutines (the RunMany regime), and
// requires every digest — event stream plus final statistics — to be
// bit-identical to the sequential replay. Any leakage through pooled
// events, packet free-lists, or shared scratch state shows up here.
func TestParallelRunsMatchSequentialReplay(t *testing.T) {
	run := func() uint64 {
		n, ck := buildDumbbell(23, 24e6, 12*time.Millisecond, bdpBytes(24e6, 24*time.Millisecond), 0.001, 3,
			func(i int) cc.Algorithm { return core.NewDefault(uint64(i) + 7) })
		n.Run(10 * time.Second)
		if vs := ck.Finish(); len(vs) > 0 {
			t.Errorf("violations: %v", vs)
		}
		return ck.Digest()
	}
	want := run()
	const workers = 4
	got := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = run()
		}(w)
	}
	wg.Wait()
	for w, d := range got {
		if d != want {
			t.Fatalf("parallel run %d digest %#x != sequential replay %#x", w, d, want)
		}
	}
}
