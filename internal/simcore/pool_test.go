package simcore

import (
	"testing"
	"time"
)

// TestEventPoolRecycles verifies that steady-state scheduling reuses event
// storage instead of growing the heap: after a warm-up, a schedule/fire
// cycle must not allocate.
func TestEventPoolRecycles(t *testing.T) {
	e := NewEngine()
	var fired int
	var tick func()
	tick = func() {
		fired++
		if fired < 1000 {
			e.ScheduleAfter(time.Millisecond, tick)
		}
	}
	e.ScheduleAfter(time.Millisecond, tick)
	e.Run(2 * time.Second)
	if fired != 1000 {
		t.Fatalf("fired %d, want 1000", fired)
	}
	// One event is in flight at a time, so the pool should hold roughly one
	// recycled event — not a thousand.
	if n := len(e.free); n > 4 {
		t.Fatalf("free-list holds %d events after a 1-in-flight run", n)
	}
}

// TestTimerStaleHandleIsInert verifies the generation counter: a handle to
// an event whose storage has been recycled must not cancel the new tenant.
func TestTimerStaleHandleIsInert(t *testing.T) {
	e := NewEngine()
	var stale Timer
	secondFired := false
	e.Schedule(10, func() {
		// stale's event has fired and its storage may back the later event;
		// cancelling through the old handle must be a no-op.
		stale.Cancel()
		if stale.Active() {
			t.Error("stale handle reports Active")
		}
		if stale.At() != 0 {
			t.Errorf("stale handle At() = %v, want 0", stale.At())
		}
	})
	stale = e.Schedule(5, func() {})
	e.Run(15)

	// Force recycling: the new event must fire even though a stale handle to
	// its storage was cancelled.
	ev := e.Schedule(20, func() { secondFired = true })
	_ = ev
	e.Run(30)
	if !secondFired {
		t.Fatal("event sharing recycled storage with a stale handle did not fire")
	}
}

func TestTimerCancelStopsRescheduledStorage(t *testing.T) {
	e := NewEngine()
	firedA, firedB := false, false
	a := e.Schedule(5, func() { firedA = true })
	a.Cancel()
	b := e.Schedule(7, func() { firedB = true })
	if a.Active() {
		t.Fatal("cancelled handle reports Active")
	}
	if !b.Active() {
		t.Fatal("fresh handle not Active")
	}
	e.Run(10)
	if firedA || !firedB {
		t.Fatalf("firedA=%v firedB=%v, want false/true", firedA, firedB)
	}
}

// BenchmarkEngineSchedule measures the hot path of the simulator: schedule
// one event, run it, recycle it. After warm-up this must be allocation-free.
func BenchmarkEngineSchedule(b *testing.B) {
	b.Run("closure", func(b *testing.B) {
		e := NewEngine()
		n := 0
		fn := func() { n++ }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(e.Now()+time.Microsecond, fn)
			e.Run(e.Now() + time.Microsecond)
		}
	})
	b.Run("arg", func(b *testing.B) {
		e := NewEngine()
		n := 0
		fn := func(any) { n++ }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.ScheduleArg(e.Now()+time.Microsecond, fn, nil)
			e.Run(e.Now() + time.Microsecond)
		}
	})
	b.Run("deep-queue", func(b *testing.B) {
		// 1024 pending events approximates a busy multi-flow simulation.
		e := NewEngine()
		fn := func(any) {}
		for i := 0; i < 1024; i++ {
			e.ScheduleArg(e.Now()+time.Hour+time.Duration(i), fn, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tm := e.ScheduleArg(e.Now()+time.Minute, fn, nil)
			tm.Cancel()
			e.Run(e.Now() + time.Minute)
		}
	})
}
