package agentrpc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Dial backoff bounds: the first retry after a failed dial waits a jittered
// dialBackoffBase, doubling per consecutive failure up to dialBackoffCap.
// Without the backoff, a dead service costs every decision a ~100 ms connect
// timeout — a 3000× stall of the 30 ms control loop turns into one stall
// every few seconds. Without the jitter, a fleet of clients restarting
// against a recovering server redials in lockstep and knocks it over again;
// each client draws its waits from its own deterministic (seeded) stream, so
// the retries desynchronize while staying reproducible.
const (
	dialBackoffBase = 100 * time.Millisecond
	dialBackoffCap  = 5 * time.Second
)

// errDialBackoff reports a redial suppressed by the backoff window; the
// caller serves the decision from the fallback policy without touching the
// network.
var errDialBackoff = errors.New("agentrpc: dial suppressed by backoff")

// Typed server responses: the stream stays usable, only this decision falls
// back. Both still count as failures toward the circuit breaker — a BUSY
// storm must trip it just like timeouts do, so a saturated service stops
// paying per-decision round trips.
var (
	errServerBusy = errors.New("agentrpc: server shed the request (BUSY)")
	errServerErr  = errors.New("agentrpc: server failed the request (ERR)")
)

// Circuit breaker states.
const (
	breakerClosed   = iota // healthy: every decision goes remote
	breakerOpen            // tripped: serve fallback instantly, no network
	breakerHalfOpen        // cooldown expired: one probe decision in flight
)

// Client defaults; see ClientConfig.
const (
	defaultClientTimeout   = 100 * time.Millisecond
	defaultBreakerTrip     = 5
	defaultBreakerCooldown = 250 * time.Millisecond
	defaultMaxPending      = 64
)

// ClientConfig tunes a Client. The zero value selects the defaults.
type ClientConfig struct {
	// Timeout is the per-decision transport deadline, covering the request
	// write and the response read.
	Timeout time.Duration
	// DialTimeout bounds connection establishment (defaults to Timeout).
	DialTimeout time.Duration
	// BreakerTrip is the number of consecutive failures (timeouts, transport
	// errors, BUSY/ERR responses) after which the breaker opens.
	BreakerTrip int
	// BreakerCooldown is how long an open breaker serves the fallback
	// instantly before letting one half-open probe decision go remote.
	BreakerCooldown time.Duration
	// MaxPending bounds concurrent Decide callers: excess callers are served
	// from the fallback immediately instead of queueing behind a slow
	// server, so back-pressure never balloons into unbounded waiters.
	MaxPending int
	// Tenant, when non-empty, labels this client's connections for the
	// daemon's per-tenant accounting.
	Tenant string
	// JitterSeed seeds the deterministic dial-backoff jitter stream. Zero
	// derives a per-client seed from the address and a process-local
	// counter, so a fleet of zero-config clients still desynchronizes.
	JitterSeed uint64
}

func (c ClientConfig) withDefaults(addr string) ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = defaultClientTimeout
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = c.Timeout
	}
	if c.BreakerTrip <= 0 {
		c.BreakerTrip = defaultBreakerTrip
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = defaultBreakerCooldown
	}
	if c.MaxPending <= 0 {
		c.MaxPending = defaultMaxPending
	}
	if c.JitterSeed == 0 {
		h := fnv.New64a()
		h.Write([]byte(addr))
		c.JitterSeed = h.Sum64() ^ clientSeq.Add(1)<<32
		if c.JitterSeed == 0 {
			c.JitterSeed = 1
		}
	}
	return c
}

// clientSeq desynchronizes the default jitter seeds of same-address clients.
var clientSeq atomic.Uint64

// Client is a core.Policy backed by a remote inference daemon, with a local
// fallback policy for transport failures and a circuit breaker so a dead
// service costs zero network latency per decision.
type Client struct {
	addr     string
	fallback Policy
	cfg      ClientConfig

	// dialFn is the connection seam the chaos harness replaces with
	// fault-injecting wrappers.
	dialFn func(addr string, timeout time.Duration) (net.Conn, error)

	// pendingN counts in-flight Decide callers (bounded by cfg.MaxPending).
	pendingN atomic.Int64

	mu      sync.Mutex
	conn    net.Conn
	respBuf [respSize]byte
	reqBuf  []byte

	// Capped exponential dial backoff state (jittered; see jitterBackoff).
	rngState    uint64
	dialBackoff time.Duration
	nextDialAt  time.Time

	// Circuit breaker state.
	breaker     int
	consecFails int
	openUntil   time.Time

	// Stats for tests and monitoring.
	remoteDecisions   int64
	fallbackDecisions atomic.Int64
	dialAttempts      int64
	busyResponses     int64
	breakerTrips      int64
	breakerRecoveries int64
	shedDecisions     atomic.Int64

	// latencyHook, when non-nil, observes every Decide's round-trip wall
	// time and whether the remote service (vs the local fallback) answered.
	// The telemetry layer points it at a latency histogram.
	latencyHook func(d time.Duration, remote bool)
}

// Dial connects to a daemon with default ClientConfig. The fallback policy
// (required) answers while the service is unreachable.
func Dial(addr string, fallback Policy) (*Client, error) {
	return DialConfig(addr, fallback, ClientConfig{})
}

// DialConfig connects to a daemon with the given tuning.
func DialConfig(addr string, fallback Policy, cfg ClientConfig) (*Client, error) {
	return dialWith(addr, fallback, cfg, tcpDial)
}

func tcpDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// dialWith is the constructor behind DialConfig; the chaos harness injects
// fault-wrapping dial functions here.
func dialWith(addr string, fallback Policy, cfg ClientConfig, dialFn func(string, time.Duration) (net.Conn, error)) (*Client, error) {
	if fallback == nil {
		return nil, errors.New("agentrpc: nil fallback policy")
	}
	cfg = cfg.withDefaults(addr)
	c := &Client{
		addr:     addr,
		fallback: fallback,
		cfg:      cfg,
		dialFn:   dialFn,
		rngState: cfg.JitterSeed,
	}
	if err := c.redial(); err != nil {
		return nil, fmt.Errorf("agentrpc: initial dial: %w", err)
	}
	return c, nil
}

// jitterBackoff draws the next wait from [d/2, d) using the client's
// deterministic splitmix64 stream.
func (c *Client) jitterBackoff(d time.Duration) time.Duration {
	c.rngState += 0x9e3779b97f4a7c15
	z := c.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / float64(uint64(1)<<53) // [0, 1)
	return d/2 + time.Duration(frac*float64(d/2))
}

func (c *Client) redial() error {
	if !c.nextDialAt.IsZero() && time.Now().Before(c.nextDialAt) {
		return errDialBackoff
	}
	c.dialAttempts++
	conn, err := c.dialFn(c.addr, c.cfg.DialTimeout)
	if err != nil {
		if c.dialBackoff == 0 {
			c.dialBackoff = dialBackoffBase
		} else if c.dialBackoff *= 2; c.dialBackoff > dialBackoffCap {
			c.dialBackoff = dialBackoffCap
		}
		c.nextDialAt = time.Now().Add(c.jitterBackoff(c.dialBackoff))
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // one request per control interval: latency over batching
	}
	c.conn = conn
	c.dialBackoff = 0
	c.nextDialAt = time.Time{}
	if c.cfg.Tenant != "" {
		conn.SetWriteDeadline(time.Now().Add(c.cfg.Timeout))
		c.reqBuf = appendHello(c.reqBuf[:0], c.cfg.Tenant)
		if _, err := conn.Write(c.reqBuf); err != nil {
			conn.Close()
			c.conn = nil
			return err
		}
	}
	return nil
}

// DialAttempts reports how many times the client actually tried to connect
// (suppressed backoff attempts are not counted).
func (c *Client) DialAttempts() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dialAttempts
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// RemoteDecisions reports how many decisions the service answered.
func (c *Client) RemoteDecisions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remoteDecisions
}

// FallbackDecisions reports how many decisions fell back locally (including
// shed ones). Every Decide is counted exactly once: RemoteDecisions +
// FallbackDecisions equals the number of calls.
func (c *Client) FallbackDecisions() int64 { return c.fallbackDecisions.Load() }

// BusyResponses reports decisions the daemon answered with BUSY.
func (c *Client) BusyResponses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busyResponses
}

// BreakerTrips reports closed→open breaker transitions.
func (c *Client) BreakerTrips() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakerTrips
}

// BreakerRecoveries reports half-open probes that found the service healthy
// and closed the breaker again.
func (c *Client) BreakerRecoveries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakerRecoveries
}

// ShedDecisions reports decisions served from the fallback because more
// than MaxPending callers were already in flight.
func (c *Client) ShedDecisions() int64 { return c.shedDecisions.Load() }

// BreakerOpen reports whether the breaker is currently open (fast-failing).
func (c *Client) BreakerOpen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breaker == breakerOpen && time.Now().Before(c.openUntil)
}

// SetLatencyHook registers fn to observe every Decide's wall-clock latency
// (nil detaches it). The hook runs with the client lock held; keep it
// cheap — a histogram observation, not I/O.
func (c *Client) SetLatencyHook(fn func(d time.Duration, remote bool)) {
	c.mu.Lock()
	c.latencyHook = fn
	c.mu.Unlock()
}

// Decide implements core.Policy: one round trip to the service, falling
// back to the local policy on any error — and instantly, without touching
// the network, while the breaker is open or the in-flight bound is hit.
func (c *Client) Decide(state []float64) (float64, float64) {
	if n := c.pendingN.Add(1); n > int64(c.cfg.MaxPending) {
		c.pendingN.Add(-1)
		c.shedDecisions.Add(1)
		c.fallbackDecisions.Add(1)
		return c.fallback.Decide(state)
	}
	defer c.pendingN.Add(-1)

	c.mu.Lock()
	defer c.mu.Unlock()
	var start time.Time
	if c.latencyHook != nil {
		start = time.Now()
	}

	// Breaker gate: open serves the fallback with zero network latency;
	// once the cooldown expires this call becomes the half-open probe.
	if c.breaker == breakerOpen {
		if time.Now().Before(c.openUntil) {
			c.fallbackDecisions.Add(1)
			mu, delta := c.fallback.Decide(state)
			if c.latencyHook != nil {
				c.latencyHook(time.Since(start), false)
			}
			return mu, delta
		}
		c.breaker = breakerHalfOpen
	}

	mu, delta, err := c.decideRemote(state)
	if err != nil {
		c.onFailure(err)
		c.fallbackDecisions.Add(1)
		mu, delta = c.fallback.Decide(state)
		if c.latencyHook != nil {
			c.latencyHook(time.Since(start), false)
		}
		return mu, delta
	}
	c.onSuccess()
	c.remoteDecisions++
	if c.latencyHook != nil {
		c.latencyHook(time.Since(start), true)
	}
	return mu, delta
}

// onFailure updates the breaker after a failed remote decision. Typed
// BUSY/ERR responses leave the (healthy, in-sync) stream open; everything
// else poisons the connection.
func (c *Client) onFailure(err error) {
	switch {
	case errors.Is(err, errServerBusy):
		c.busyResponses++
	case errors.Is(err, errServerErr):
	default:
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
	}
	c.consecFails++
	if c.breaker == breakerHalfOpen || c.consecFails >= c.cfg.BreakerTrip {
		if c.breaker == breakerClosed {
			c.breakerTrips++
		}
		c.breaker = breakerOpen
		c.openUntil = time.Now().Add(c.cfg.BreakerCooldown)
	}
}

// onSuccess closes the breaker after a healthy remote decision.
func (c *Client) onSuccess() {
	if c.breaker == breakerHalfOpen {
		c.breakerRecoveries++
	}
	c.breaker = breakerClosed
	c.consecFails = 0
	c.openUntil = time.Time{}
}

func (c *Client) decideRemote(state []float64) (float64, float64, error) {
	if len(state) > maxStateDim {
		return 0, 0, fmt.Errorf("state dim %d exceeds protocol max", len(state))
	}
	if c.conn == nil {
		if err := c.redial(); err != nil {
			return 0, 0, err
		}
	}
	// One deadline covers the request write and the response read — the
	// per-decision transport budget.
	deadline := time.Now().Add(c.cfg.Timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		return 0, 0, err
	}
	c.reqBuf = appendRequest(c.reqBuf[:0], state)
	if _, err := c.conn.Write(c.reqBuf); err != nil {
		return 0, 0, err
	}
	status, mu, delta, err := readResponse(c.conn, &c.respBuf)
	if err != nil {
		return 0, 0, err
	}
	switch status {
	case statusOK:
	case statusBusy:
		return 0, 0, errServerBusy
	case statusErr:
		return 0, 0, errServerErr
	default:
		return 0, 0, fmt.Errorf("agentrpc: unknown response status %#x", status)
	}
	if !finite(mu) || !finite(delta) {
		return 0, 0, errors.New("agentrpc: non-finite response")
	}
	return mu, delta, nil
}
