package exp

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// RobustnessCase pairs a named fault configuration with the adversarial
// network it emulates. The family deliberately sits outside Jury's Table 1
// training distribution: the paper's generalizability claim is that the
// (μ, δ) decision range stays well-behaved in environments the policy never
// saw, which is exactly what learning-based schemes are known to fail at.
type RobustnessCase struct {
	Name   string
	Faults *faults.Config
}

// RobustnessCases returns the canonical fault family of the `jurysim
// faults` robustness table: a clean baseline plus one case per fault type
// and a combined worst-case.
func RobustnessCases() []RobustnessCase {
	return []RobustnessCase{
		{Name: "clean"},
		{Name: "burst-loss", Faults: &faults.Config{
			// ~0.8% stationary loss in mean bursts of 4 packets: the bursty
			// counterpart of Fig. 10c's ≤1% i.i.d. random-loss sweep.
			GE: &faults.GEConfig{PGoodBad: 0.002, PBadGood: 0.25, LossBad: 1},
		}},
		{Name: "reorder", Faults: &faults.Config{
			ReorderProb: 0.02, ReorderMaxDelay: 20 * time.Millisecond,
		}},
		{Name: "duplicate", Faults: &faults.Config{DupProb: 0.01}},
		{Name: "jitter", Faults: &faults.Config{
			JitterProb: 0.05, JitterMax: 10 * time.Millisecond,
		}},
		{Name: "link-flap", Faults: &faults.Config{
			Flap: &faults.FlapConfig{MeanUp: 8 * time.Second, MeanDown: 200 * time.Millisecond},
		}},
		{Name: "combined", Faults: &faults.Config{
			GE:          &faults.GEConfig{PGoodBad: 0.001, PBadGood: 0.25, LossBad: 1},
			ReorderProb: 0.01, ReorderMaxDelay: 10 * time.Millisecond,
			DupProb:    0.005,
			JitterProb: 0.02, JitterMax: 5 * time.Millisecond,
			Flap: &faults.FlapConfig{MeanUp: 15 * time.Second, MeanDown: 150 * time.Millisecond},
		}},
	}
}

// RobustnessRow is one (scheme, fault) cell of the robustness table.
type RobustnessRow struct {
	Scheme string
	Fault  string

	Jain        float64 // homogeneous-flow Jain index over the late window
	Utilization float64
	MeanLoss    float64 // mean lifetime loss rate across flows

	// Jury guard counters, summed over the scenario's flows (zero for
	// non-Jury schemes). NonFinite must stay zero: no unclamped NaN/Inf may
	// ever reach a rate action.
	Degraded  int64
	NonFinite int64

	// Fault-injector counters from the bottleneck link.
	FaultDrops int64
	Reordered  int64
	Duplicated int64

	Digest uint64 // simcheck digest (all robustness runs execute checked)
}

// RobustnessOptions parameterizes RobustnessTable. The zero value runs the
// default homogeneous-flow dumbbell: 60 Mbps, 30 ms RTT, 1 BDP buffer,
// 3 flows, 60 s.
type RobustnessOptions struct {
	Schemes  []string // default: jury, bbr, cubic
	Cases    []RobustnessCase
	Rate     float64
	OneWay   time.Duration
	Flows    int
	Lifetime time.Duration
	Seed     uint64
}

func (o *RobustnessOptions) defaults() {
	if len(o.Schemes) == 0 {
		o.Schemes = []string{"jury", "bbr", "cubic"}
	}
	if len(o.Cases) == 0 {
		o.Cases = RobustnessCases()
	}
	if o.Rate == 0 {
		o.Rate = 60e6
	}
	if o.OneWay == 0 {
		o.OneWay = 15 * time.Millisecond
	}
	if o.Flows == 0 {
		o.Flows = 3
	}
	if o.Lifetime == 0 {
		o.Lifetime = 60 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RobustnessScenario builds the checked scenario for one (scheme, case)
// cell.
func RobustnessScenario(o RobustnessOptions, scheme string, c RobustnessCase) Scenario {
	o.defaults()
	s := Scenario{
		Name:        fmt.Sprintf("robust-%s-%s", scheme, c.Name),
		Rate:        o.Rate,
		OneWayDelay: o.OneWay,
		Horizon:     o.Lifetime,
		Seed:        o.Seed,
		Faults:      c.Faults,
		Check:       true, // robustness claims are only as good as the emulator: always audit
	}
	s.BufferBytes = s.BufferBDP(1)
	for i := 0; i < o.Flows; i++ {
		s.Flows = append(s.Flows, FlowSpec{Scheme: scheme})
	}
	return s
}

// RobustnessTable runs every scheme under every fault case (in parallel via
// RunMany) and reports fairness, efficiency, and degradation counters: the
// reproducible form of the paper's "robust in unseen environments" claim.
func RobustnessTable(o RobustnessOptions) ([]RobustnessRow, error) {
	o.defaults()
	var jobs []Scenario
	for _, scheme := range o.Schemes {
		for _, c := range o.Cases {
			jobs = append(jobs, RobustnessScenario(o, scheme, c))
		}
	}
	results, err := RunMany(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]RobustnessRow, 0, len(results))
	i := 0
	for _, scheme := range o.Schemes {
		for _, c := range o.Cases {
			rows = append(rows, robustnessRow(scheme, c, results[i], o))
			i++
		}
	}
	return rows, nil
}

func robustnessRow(scheme string, c RobustnessCase, r *RunResult, o RobustnessOptions) RobustnessRow {
	row := RobustnessRow{
		Scheme:      scheme,
		Fault:       c.Name,
		Utilization: r.Utilization,
		Digest:      r.Digest,
	}
	// Late-window shares: ignore the convergence transient, like Fig. 8.
	from := o.Lifetime / 3
	shares := make([]float64, 0, len(r.FlowSummaries))
	var lossSum float64
	for _, f := range r.FlowSummaries {
		share := metrics.MeanThroughput(f, from, o.Lifetime)
		if len(f.Series()) == 0 {
			// Compact record (StoreCompact dropped the series): fall back on
			// the late-window mean precomputed at record time.
			share = f.LateMeanBps()
		}
		shares = append(shares, share)
		lossSum += f.Stats().LossRate
		deg, nf := f.JuryCounters()
		row.Degraded += deg
		row.NonFinite += nf
	}
	row.Jain = metrics.JainIndex(shares)
	row.MeanLoss = lossSum / float64(len(r.FlowSummaries))
	row.FaultDrops = r.LinkSummary.FaultDrops
	row.Reordered = r.LinkSummary.Reordered
	row.Duplicated = r.LinkSummary.Duplicated
	return row
}

// FormatRobustnessTable renders rows for the CLI.
func FormatRobustnessTable(rows []RobustnessRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Scheme,
			r.Fault,
			fmt.Sprintf("%.3f", r.Jain),
			fmt.Sprintf("%.3f", r.Utilization),
			fmt.Sprintf("%.3f%%", r.MeanLoss*100),
			fmt.Sprintf("%d", r.Degraded),
			fmt.Sprintf("%d", r.NonFinite),
			fmt.Sprintf("%d", r.FaultDrops),
			fmt.Sprintf("%d", r.Reordered),
			fmt.Sprintf("%d", r.Duplicated),
			fmt.Sprintf("%016x", r.Digest),
		})
	}
	return FormatTable([]string{
		"scheme", "fault", "jain", "util", "loss", "degraded", "nonfinite",
		"fdrops", "reorder", "dup", "digest",
	}, out)
}
